package omxsim

// The documentation checks behind CI's docs job: every relative
// markdown link resolves, and the README's scenario table matches the
// registry (`omxsim list -markdown`). Run with:
//
//	go test -run TestDocs .

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"omxsim/internal/scenario"
)

// docFiles returns every tracked markdown file at the repo root and
// under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, glob := range []string{"*.md", "docs/*.md"} {
		m, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, m...)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found; is the test running at the repo root?")
	}
	return files
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinks checks that every relative link in the markdown docs
// points at a file or directory that exists.
func TestDocsLinks(t *testing.T) {
	for _, f := range docFiles(t) {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(f), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%s does not exist)", f, m[1], resolved)
			}
		}
	}
}

const (
	tableBegin = "<!-- BEGIN SCENARIO TABLE"
	tableEnd   = "<!-- END SCENARIO TABLE -->"
)

// TestDocsScenarioTable checks that the README's generated scenario
// table is in sync with the registry. Regenerate with:
//
//	go run ./cmd/omxsim list -markdown
func TestDocsScenarioTable(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	begin := strings.Index(s, tableBegin)
	end := strings.Index(s, tableEnd)
	if begin < 0 || end < 0 || end < begin {
		t.Fatalf("README.md is missing the scenario-table markers (%q ... %q)", tableBegin, tableEnd)
	}
	block := s[begin:end]
	// Drop the marker line itself; what remains must equal the generator's
	// output exactly.
	if nl := strings.Index(block, "\n"); nl >= 0 {
		block = block[nl+1:]
	}
	want := scenario.MarkdownTable()
	if block != want {
		t.Errorf("README scenario table is stale; regenerate with `go run ./cmd/omxsim list -markdown`\n--- README ---\n%s\n--- registry ---\n%s", block, want)
	}
}

// TestDocsExampleSpecs validates every shipped spec file the docs point
// at — the same strict check CI runs as `omxsim validate examples/*.yaml`.
func TestDocsExampleSpecs(t *testing.T) {
	files, err := filepath.Glob("examples/*.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no example specs found under examples/")
	}
	for _, f := range files {
		if _, err := scenario.ValidateSpecFile(f); err != nil {
			t.Errorf("%s does not validate: %v", f, err)
		}
	}
}

// TestDocsRequiredFiles pins the documentation surface this repo
// promises: the paper map, the architecture guide, the authoring guide,
// and their links from the README.
func TestDocsRequiredFiles(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"PAPER.md", "ARCHITECTURE.md", "docs/scenario-authoring.md", "PERFORMANCE.md"} {
		if _, err := os.Stat(f); err != nil {
			t.Errorf("required doc %s missing", f)
		}
		if !strings.Contains(string(readme), f) {
			t.Errorf("README.md does not link %s", f)
		}
	}
}
