// Command omxsim is the umbrella runner: it regenerates the paper's entire
// evaluation section in one invocation.
//
// Usage:
//
//	omxsim              # everything (Table 1, Figures 6+7, §4.3, Table 2, NPB)
//	omxsim -quick       # reduced sweeps
//	omxsim -only table1,fig7
package main

import (
	"flag"
	"fmt"
	"strings"

	"omxsim/internal/cpu"
	"omxsim/internal/experiments"
	"omxsim/internal/imb"
	"omxsim/internal/npb"
)

func cpuSpec() cpu.Spec { return cpu.XeonE5460 }

func main() {
	quick := flag.Bool("quick", false, "reduced size schedules")
	only := flag.String("only", "", "comma-separated subset: table1,fig6,fig7,sec43,table2,npb")
	flag.Parse()

	want := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s = strings.TrimSpace(strings.ToLower(s)); s != "" {
			want[s] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	figSizes := imb.LargeSizes()
	tblSizes := imb.DefaultSizes()
	isClass := npb.ClassCSim
	if *quick {
		figSizes = []int{64 * 1024, 1 << 20, 16 << 20}
		tblSizes = []int{4096, 256 * 1024, 4 << 20}
		isClass = npb.ClassA
	}

	if sel("table1") {
		fmt.Println("== Table 1: pin+unpin overhead per host ==")
		fmt.Printf("%-14s %5s %9s %9s %7s\n", "Processor", "GHz", "Base µs", "ns/page", "GB/s")
		for _, r := range experiments.Table1() {
			fmt.Printf("%-14s %5.2f %9.1f %9.0f %7.1f\n", r.Host, r.GHz, r.BaseMicros, r.NsPerPage, r.GBps)
		}
		fmt.Println()
	}
	if sel("fig6") {
		fmt.Println("== Figure 6: PingPong MiB/s, pin-per-comm vs permanent, ±I/OAT ==")
		printCurves(experiments.Figure6(figSizes, cpuSpec()), figSizes)
	}
	if sel("fig7") {
		fmt.Println("== Figure 7: PingPong MiB/s, regular/overlapped/cache/both ==")
		printCurves(experiments.Figure7(figSizes, cpuSpec()), figSizes)
	}
	if sel("sec43") {
		fmt.Println("== Section 4.3: overlap misses ==")
		for _, r := range experiments.OverlapMissSection43() {
			fmt.Printf("%-50s misses=%d/%d (rate %.2e) rereq=%d  %.1f MiB/s\n",
				r.Label, r.OverlapMisses, r.PullReplies+r.OverlapMisses, r.MissRate, r.ReRequests, r.MBps)
		}
		fmt.Println()
	}
	if sel("table2") {
		fmt.Println("== Table 2 (IMB): execution-time improvement vs regular pinning ==")
		fmt.Printf("%-22s %14s %14s\n", "Application", "Pinning-cache", "Overlapping")
		for _, r := range experiments.Table2IMB(tblSizes) {
			fmt.Printf("%-22s %13.1f%% %13.1f%%\n", r.Application, r.CachePct, r.OverlappingPct)
		}
		fmt.Println()
	}
	if sel("npb") {
		fmt.Println("== Table 2 (NPB IS) ==")
		row, res := experiments.NPBIS(isClass)
		fmt.Println(res)
		fmt.Printf("%-22s %13.1f%% %13.1f%%\n", row.Application, row.CachePct, row.OverlappingPct)
	}
}

func printCurves(curves []experiments.Curve, sizes []int) {
	for i, c := range curves {
		fmt.Printf("  curve%d = %s\n", i+1, c.Label)
	}
	fmt.Printf("%-10s", "size")
	for i := range curves {
		fmt.Printf("  %10s", fmt.Sprintf("curve%d", i+1))
	}
	fmt.Println()
	for i, s := range sizes {
		label := fmt.Sprintf("%dkB", s>>10)
		if s >= 1<<20 {
			label = fmt.Sprintf("%dMB", s>>20)
		}
		fmt.Printf("%-10s", label)
		for _, c := range curves {
			fmt.Printf("  %10.1f", c.Points[i].MBps)
		}
		fmt.Println()
	}
	fmt.Println()
}
