// Command omxsim is the single entry point to the simulation: every
// experiment — the paper's tables and figures, the lifecycle walkthroughs,
// the fault-injection runs — is a registered scenario.
//
// Usage:
//
//	omxsim list [-markdown]         # registered scenarios (+ source, policy labels)
//	omxsim policies                 # registered pinning-policy backends
//	omxsim run <scenario|spec.yaml>... [-policy lbl] [-seed N] [-quick] [-shards N] [-json]
//	omxsim validate <spec.yaml>...  # strict-parse scenario spec files
//	omxsim sweep [-quick] [-shards N] [-json]  # run every registered scenario
//	omxsim bench [-quick] [-pr N] [-out FILE]  # simulator meta-benchmarks
//
// Exit status is non-zero when any scenario assertion fails, so CI can
// gate on `omxsim run`.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"omxsim/internal/bench"
	"omxsim/internal/core"
	"omxsim/internal/policy"
	"omxsim/internal/report"
	"omxsim/internal/scenario"
)

func usage() {
	fmt.Fprintf(os.Stderr, `omxsim — Open-MX decoupled-pinning simulator

Usage:
  omxsim list                list registered scenarios (source + policy labels)
  omxsim policies            list registered pinning-policy backends
  omxsim run <name|file>...  run scenarios by registry name or spec file
                             (arguments ending in .yaml/.yml load as specs)
  omxsim validate <file>...  strict-parse and compile spec files without
                             running them (file:line errors, exit 1 on failure)
  omxsim sweep               run every registered scenario
  omxsim bench               run the simulator meta-benchmark suite and
                             write BENCH_PR<N>.json (ns/op + metrics)

Flags for list:
  -markdown        emit the README scenario table (docs/scenario-authoring.md)

Flags for run/sweep:
  -policy string   restrict the case matrix to one label or backend name
  -seed int        simulation seed (default 1)
  -quick           reduced size schedules
  -shards int      run each cluster on N parallel engine shards (clamped to
                   its node count; results are shard-count invariant)
  -chaos-seed int  reseed the chaos fault schedule independently of -seed
                   (0 = derive from -seed; chaos-profile scenarios only)
  -json            emit machine-readable JSON instead of tables

Flags for bench:
  -quick           short measurement windows (CI profile)
  -pr int          PR number in the output filename (default: from CHANGES.md)
  -out string      output path (default BENCH_PR<pr>.json; "-" for stdout)
  -guard string    prior BENCH_PR<N>.json to gate against (fail on regression)
  -guard-slack f   allowed SimWallClock slowdown vs -guard (default 1.75)
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		list(os.Args[2:])
	case "policies":
		listPolicies()
	case "run":
		run(os.Args[2:])
	case "validate":
		validate(os.Args[2:])
	case "sweep":
		sweep(os.Args[2:])
	case "bench":
		benchCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "omxsim: unknown command %q\n\n", os.Args[1])
		usage()
	}
}

func list(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	markdown := fs.Bool("markdown", false, "emit the README scenario table (generated form)")
	fs.Parse(args)
	if *markdown {
		fmt.Print(scenario.MarkdownTable())
		return
	}
	scenarios := scenario.All()
	wid, swid := 0, 0
	for _, s := range scenarios {
		if len(s.Name) > wid {
			wid = len(s.Name)
		}
		if len(s.Source) > swid {
			swid = len(s.Source)
		}
	}
	for _, s := range scenarios {
		fmt.Printf("%-*s  %-*s  %s\n", wid, s.Name, swid, s.Source, s.Description)
		pols := strings.Join(s.PolicyLabels(), ", ")
		if pols == "" {
			pols = "custom sweep (fixed matrix)"
		}
		fmt.Printf("%-*s  %-*s  policies: %s\n", wid, "", swid, "", pols)
		if s.Chaos != nil {
			fmt.Printf("%-*s  %-*s  chaos: %s\n", wid, "", swid, "", s.Chaos.Summary())
		}
	}
}

// validate strict-parses and compiles each spec file without running or
// registering it, reporting every file's verdict before exiting.
func validate(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "omxsim validate: no spec files given")
		os.Exit(2)
	}
	failed := false
	for _, path := range args {
		s, err := scenario.ValidateSpecFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			failed = true
			continue
		}
		fmt.Printf("%s: OK (scenario %q, %d cases)\n", path, s.Name, len(s.Cases))
	}
	if failed {
		os.Exit(1)
	}
}

// isSpecPath reports whether a run argument names a spec file rather
// than a registry entry.
func isSpecPath(name string) bool {
	return strings.HasSuffix(name, ".yaml") || strings.HasSuffix(name, ".yml")
}

// listPolicies prints the pinning-policy backend registry — every name
// `-policy` accepts (as a backend name; case labels are per scenario) —
// and the cache eviction policies omx.Config.CacheEviction selects.
func listPolicies() {
	wid := 0
	for _, p := range policy.All() {
		if len(p.Name()) > wid {
			wid = len(p.Name())
		}
	}
	for _, p := range policy.All() {
		fmt.Printf("%-*s  %s\n", wid, p.Name(), p.Description())
	}
	fmt.Printf("\ncache eviction policies (omx.Config.CacheEviction): %s\n",
		strings.Join(core.EvictorNames(), ", "))
}

// runFlags parses the shared run/sweep flags. Scenario names and flags may
// be interleaved freely (`run -json pingpong -quick`): the standard flag
// package stops at the first positional argument, so parsing restarts
// after peeling each name, with the shared variables keeping earlier flag
// values.
func runFlags(name string, args []string) (scenario.Options, bool, []string) {
	opts := scenario.Options{Seed: 1}
	jsonOut := false
	var names []string
	for {
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		fs.StringVar(&opts.Policy, "policy", opts.Policy, "restrict the case matrix to one label or pin-policy name")
		fs.Int64Var(&opts.Seed, "seed", opts.Seed, "simulation seed")
		fs.BoolVar(&opts.Quick, "quick", opts.Quick, "reduced size schedules")
		fs.IntVar(&opts.Shards, "shards", opts.Shards, "parallel engine shards per cluster (0 = legacy single engine)")
		fs.Int64Var(&opts.ChaosSeed, "chaos-seed", opts.ChaosSeed, "chaos fault-schedule seed (0 = derive from -seed)")
		fs.BoolVar(&jsonOut, "json", jsonOut, "emit JSON instead of tables")
		fs.Parse(args)
		rest := fs.Args()
		if len(rest) == 0 {
			return opts, jsonOut, names
		}
		names = append(names, rest[0])
		args = rest[1:]
	}
}

func run(args []string) {
	opts, jsonOut, names := runFlags("run", args)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "omxsim run: no scenario given; `omxsim list` shows the registry")
		os.Exit(2)
	}
	var results []*report.Result
	for _, n := range names {
		// A .yaml/.yml argument is a spec file: load and register it (a
		// name collision with a builtin is a hard error), then run it
		// through the same path as any registered scenario.
		if isSpecPath(n) {
			s, err := scenario.LoadAndRegisterSpecFile(n)
			if err != nil {
				fmt.Fprintf(os.Stderr, "omxsim: %v\n", err)
				os.Exit(1)
			}
			n = s.Name
		}
		res, err := scenario.RunByName(n, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omxsim: %v\n", err)
			os.Exit(1)
		}
		results = append(results, res)
	}
	emit(results, jsonOut)
}

func sweep(args []string) {
	opts, jsonOut, rest := runFlags("sweep", args)
	if len(rest) > 0 {
		fmt.Fprintf(os.Stderr, "omxsim sweep: unexpected arguments %v\n", rest)
		os.Exit(2)
	}
	var results []*report.Result
	for _, s := range scenario.All() {
		res, err := s.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omxsim: %v\n", err)
			os.Exit(1)
		}
		results = append(results, res)
	}
	emit(results, jsonOut)
}

// benchCmd runs the meta-benchmark suite and writes the JSON artifact CI
// uploads, printing a short human summary to stderr.
func benchCmd(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "short measurement windows (CI profile)")
	pr := fs.Int("pr", 0, "PR number used in the output filename (default: inferred from CHANGES.md)")
	out := fs.String("out", "", `output path (default BENCH_PR<pr>.json; "-" for stdout)`)
	guard := fs.String("guard", "", "prior BENCH_PR<N>.json to gate against: fail when SimWallClock regresses past -guard-slack")
	guardSlack := fs.Float64("guard-slack", 1.75, "allowed SimWallClock slowdown factor vs the -guard artifact")
	fs.Parse(args)
	if *pr == 0 {
		*pr = inferPRNumber()
	}

	// Load the guard artifact before measuring: the output path may be the
	// same file (guarding the checked-in BENCH_PR<N>.json of the current
	// PR), and the comparison must see the committed numbers, not ours.
	var prior bench.Report
	if *guard != "" {
		p, err := bench.LoadReport(*guard)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omxsim bench: %v\n", err)
			os.Exit(1)
		}
		prior = p
	}

	rep := bench.Run(*pr, *quick)

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_PR%d.json", *pr)
	}
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omxsim bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "omxsim bench: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rep.Benchmarks {
		fmt.Fprintf(os.Stderr, "%-20s %12.0f ns/op  %8.0f allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(os.Stderr, "  %s=%.1f", k, r.Metrics[k])
		}
		fmt.Fprintln(os.Stderr)
	}
	if rep.SpeedupVsBaseline > 0 {
		fmt.Fprintf(os.Stderr, "SimWallClock speedup vs %s baseline (%s): %.2fx\n",
			rep.Baseline.Commit, rep.Baseline.Name, rep.SpeedupVsBaseline)
	}
	if *guard != "" {
		if err := bench.Guard(rep, prior, *guardSlack); err != nil {
			fmt.Fprintf(os.Stderr, "omxsim bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench guard: gated benchmarks within %.2fx of %s\n", *guardSlack, *guard)
	}
}

// inferPRNumber reads CHANGES.md (one line per PR, each starting
// "- PR <n>:", with the in-flight PR's entry appended before it lands) and
// returns the highest recorded number. Returns 0 when nothing is readable,
// leaving the artifact named BENCH_PR0.json as an explicit signal.
func inferPRNumber() int {
	data, err := os.ReadFile("CHANGES.md")
	if err != nil {
		return 0
	}
	max := 0
	for _, line := range strings.Split(string(data), "\n") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(line), "- PR %d:", &n); err == nil && n > max {
			max = n
		}
	}
	return max
}

func emit(results []*report.Result, jsonOut bool) {
	var err error
	if jsonOut {
		err = report.WriteJSON(os.Stdout, results...)
	} else {
		err = report.WriteText(os.Stdout, results...)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "omxsim: %v\n", err)
		os.Exit(1)
	}
	for _, r := range results {
		if r.Failed() {
			os.Exit(1)
		}
	}
}
