// Command imbbench regenerates the IMB rows of Table 2 of the paper: the
// execution-time improvement brought by the pinning cache or by overlapped
// pinning, relative to regular per-communication pinning, on the Intel MPI
// Benchmarks between two nodes.
//
// Usage:
//
//	imbbench              # full Table 2 sweep (4 B .. 4 MiB)
//	imbbench -quick       # reduced size schedule, faster
//	imbbench -bench SendRecv,Exchange
package main

import (
	"flag"
	"fmt"
	"strings"

	"omxsim/internal/experiments"
	"omxsim/internal/imb"
)

func main() {
	quick := flag.Bool("quick", false, "use a reduced size schedule")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: Table 2 set)")
	all := flag.Bool("all", false, "also run the kernels beyond Table 2 (PingPing, Alltoall, Gather, Scatter, Barrier)")
	flag.Parse()

	sizes := imb.DefaultSizes()
	if *quick {
		sizes = []int{4096, 256 * 1024, 4 << 20}
	}

	want := map[string]bool{}
	for _, b := range strings.Split(*benchList, ",") {
		if b = strings.TrimSpace(b); b != "" {
			want[strings.ToLower(b)] = true
		}
	}

	fmt.Println("Table 2 (IMB rows). Execution time improvement brought by the")
	fmt.Println("Open-MX pinning cache or the overlapped pinning, between 2 nodes.")
	fmt.Println()
	fmt.Printf("%-22s %14s %14s\n", "Application", "Pinning-cache", "Overlapping")
	keep := func(name string) bool {
		return len(want) == 0 || want[strings.ToLower(name)]
	}
	var rows []experiments.Table2Row
	if *all {
		rows = experiments.Table2AllIMB(sizes, keep)
	} else {
		rows = experiments.Table2IMBFiltered(sizes, keep)
	}
	for _, r := range rows {
		fmt.Printf("%-22s %13.1f%% %13.1f%%\n", r.Application, r.CachePct, r.OverlappingPct)
	}
}
