// Command pinbench regenerates Table 1 of the paper: base and per-page
// overhead of Open-MX pinning+unpinning, and the corresponding pinning
// throughput, for each of the four evaluation hosts.
//
// Usage:
//
//	pinbench
package main

import (
	"fmt"

	"omxsim/internal/experiments"
)

func main() {
	fmt.Println("Table 1. Base and per-page overhead of the Open-MX pinning+unpinning,")
	fmt.Println("and the corresponding pinning throughput (measured in simulation).")
	fmt.Println()
	fmt.Printf("%-14s %5s %9s %9s %7s\n", "Processor", "GHz", "Base µs", "ns/page", "GB/s")
	for _, r := range experiments.Table1() {
		fmt.Printf("%-14s %5.2f %9.1f %9.0f %7.1f\n",
			r.Host, r.GHz, r.BaseMicros, r.NsPerPage, r.GBps)
	}
}
