// Command overlapmiss regenerates the Section 4.3 analysis: the probability
// of an overlap miss (a packet arriving before its target page is pinned)
// under regular load, and the throughput collapse when the application and
// the receive bottom halves share one overloaded core.
//
// Usage:
//
//	overlapmiss
//	overlapmiss -flood 0.95     # custom overload level
package main

import (
	"flag"
	"fmt"

	"omxsim/internal/experiments"
)

func main() {
	flood := flag.Float64("flood", experiments.DefaultOverloadFlood,
		"synthetic bottom-half utilization for the overload case")
	sweep := flag.Bool("sweep", false, "sweep interrupt-flood levels instead of the two paper points")
	flag.Parse()

	fmt.Println("Section 4.3. Overlap-miss behaviour of overlapped pinning.")
	fmt.Println()
	var results []experiments.OverlapMissResult
	if *sweep {
		results = experiments.FloodSweep(nil)
	} else {
		results = []experiments.OverlapMissResult{
			experiments.OverlapMiss("normal load (app on own core)", 0, false, 30),
			experiments.OverlapMiss(fmt.Sprintf("overloaded core (flood %.0f%%)", *flood*100), *flood, true, 10),
		}
	}
	fmt.Printf("%-45s %12s %10s %10s %10s %10s\n",
		"scenario", "pull replies", "misses", "miss rate", "re-reqs", "MiB/s")
	for _, r := range results {
		fmt.Printf("%-45s %12d %10d %10.2e %10d %10.1f\n",
			r.Label, r.PullReplies, r.OverlapMisses, r.MissRate, r.ReRequests, r.MBps)
	}
	fmt.Println()
	fmt.Println("Paper: <1 miss per 10^4 packets under regular load; throughput")
	fmt.Println("degradation from ~1 GB/s down to ~50 MB/s on an overloaded core.")
}
