// Command pingpong regenerates Figures 6 and 7 of the paper: IMB PingPong
// throughput between two nodes over simulated Open-MX, for each pinning
// configuration.
//
// Usage:
//
//	pingpong -figure 6        # pin-per-comm vs permanent, with/without I/OAT
//	pingpong -figure 7        # regular / overlapped / cache / overlapped+cache
//	pingpong -figure 7 -csv   # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"omxsim/internal/cpu"
	"omxsim/internal/experiments"
	"omxsim/internal/imb"
)

// hostByName resolves a Table 1 host preset ("e5460", "opteron265", ...).
func hostByName(name string) (cpu.Spec, bool) {
	key := strings.ToLower(strings.ReplaceAll(name, " ", ""))
	for _, spec := range cpu.Table1Hosts() {
		k := strings.ToLower(strings.ReplaceAll(spec.Name, " ", ""))
		if k == key || strings.Contains(k, key) {
			return spec, true
		}
	}
	return cpu.Spec{}, false
}

func main() {
	figure := flag.Int("figure", 7, "which paper figure to regenerate (6 or 7)")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	host := flag.String("host", "e5460",
		"host preset: opteron265, opteron8347, e5435, e5460 (slower hosts show the paper's larger gaps)")
	flag.Parse()

	spec, ok := hostByName(*host)
	if !ok {
		fmt.Fprintf(os.Stderr, "pingpong: unknown host %q\n", *host)
		os.Exit(2)
	}
	var curves []experiments.Curve
	switch *figure {
	case 6:
		curves = experiments.Figure6(nil, spec)
	case 7:
		curves = experiments.Figure7(nil, spec)
	default:
		fmt.Fprintln(os.Stderr, "pingpong: -figure must be 6 or 7")
		os.Exit(2)
	}

	sizes := imb.LargeSizes()
	if *csv {
		fmt.Print("size")
		for _, c := range curves {
			fmt.Printf(",%q", c.Label)
		}
		fmt.Println()
		for i, s := range sizes {
			fmt.Printf("%d", s)
			for _, c := range curves {
				fmt.Printf(",%.1f", c.Points[i].MBps)
			}
			fmt.Println()
		}
		return
	}

	fmt.Printf("Figure %d. IMB Pingpong throughput (MiB/s) on top of Open-MX, host %s.\n\n",
		*figure, spec.Name)
	for i, c := range curves {
		fmt.Printf("  curve%d = %s\n", i+1, c.Label)
	}
	fmt.Println()
	fmt.Printf("%-10s", "size")
	for i := range curves {
		fmt.Printf("  %12s", fmt.Sprintf("curve%d", i+1))
	}
	fmt.Println()
	for i, s := range sizes {
		fmt.Printf("%-10s", sizeLabel(s))
		for _, c := range curves {
			fmt.Printf("  %12.1f", c.Points[i].MBps)
		}
		fmt.Println()
	}
}

func sizeLabel(s int) string {
	switch {
	case s >= 1<<20:
		return fmt.Sprintf("%dMB", s>>20)
	case s >= 1024:
		return fmt.Sprintf("%dkB", s>>10)
	default:
		return fmt.Sprintf("%dB", s)
	}
}
