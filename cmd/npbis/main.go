// Command npbis regenerates the NPB IS row of Table 2: the integer-sort
// benchmark on 4 ranks across 2 nodes, comparing regular pinning against
// the pinning cache and overlapped pinning.
//
// Usage:
//
//	npbis                 # C-shaped scaled class (default)
//	npbis -class A        # smaller classes: S, W, A
package main

import (
	"flag"
	"fmt"
	"os"

	"omxsim/internal/experiments"
	"omxsim/internal/npb"
)

func main() {
	className := flag.String("class", "C-sim", "problem class: S, W, A, or C-sim")
	cg := flag.Bool("cg", false, "also run the CG-like small-message surrogate (the paper's 'other NAS tests do not vary' observation)")
	flag.Parse()

	var class npb.Class
	switch *className {
	case "S":
		class = npb.ClassS
	case "W":
		class = npb.ClassW
	case "A":
		class = npb.ClassA
	case "C-sim", "C":
		class = npb.ClassCSim
	default:
		fmt.Fprintf(os.Stderr, "npbis: unknown class %q\n", *className)
		os.Exit(2)
	}

	row, res := experiments.NPBIS(class)
	fmt.Println(res)
	fmt.Println()
	fmt.Println("Table 2 (NPB row). Execution time improvement vs regular pinning:")
	fmt.Printf("%-22s %14s %14s\n", "Application", "Pinning-cache", "Overlapping")
	fmt.Printf("%-22s %13.1f%% %13.1f%%\n", row.Application, row.CachePct, row.OverlappingPct)

	if *cg {
		fmt.Println()
		cgRow, cgRes := experiments.NPBCG(npb.CGClassA)
		fmt.Println(cgRes)
		fmt.Printf("%-22s %13.1f%% %13.1f%%   (paper: 'does not vary much')\n",
			cgRow.Application, cgRow.CachePct, cgRow.OverlappingPct)
	}
}
