// Quickstart: build a two-node simulated cluster, send one large message
// through the Open-MX stack with the decoupled pinning cache, and print
// what the driver did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
)

func main() {
	// A cluster is two Xeon E5460 hosts on a 10G link by default — the
	// paper's testbed. The OMX config selects the pinning model: here the
	// decoupled on-demand policy with the user-space region cache
	// (Figure 7's "Pinning Cache").
	cl, err := cluster.New(cluster.Config{
		Nodes: 2,
		OMX:   omx.DefaultConfig(core.OnDemand, true),
	})
	if err != nil {
		log.Fatal(err)
	}

	const n = 4 << 20 // 4 MiB: well above the 32 KiB eager threshold
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	// Each rank runs as a simulated process; Run drives the event loop
	// until everyone finishes.
	cl.Run(func(c *mpi.Comm) {
		buf := c.Malloc(n)
		switch c.Rank() {
		case 0:
			c.WriteBytes(buf, payload)
			start := c.Now()
			for i := 0; i < 3; i++ { // reuse the same buffer: cache hits
				c.Send(buf, n, 1, 42)
			}
			fmt.Printf("rank 0: sent 3 x %d MiB in %v (simulated)\n", n>>20, c.Now()-start)
		case 1:
			for i := 0; i < 3; i++ {
				st := c.Recv(buf, n, 0, 42)
				got := c.ReadBytes(buf, 16)
				fmt.Printf("rank 1: received %d bytes from rank %d, first bytes % x\n",
					st.Len, st.Source, got[:8])
			}
		}
	})

	// Driver-side evidence of the decoupling: one declaration, one pin,
	// then cache hits — no per-message pinning.
	for rank, ep := range cl.Endpoints {
		m := ep.Manager().Stats()
		c := ep.Cache().Stats()
		fmt.Printf("rank %d: declares=%d pins=%d cache hits/misses=%d/%d pinned pages now=%d\n",
			rank, m.Declares, m.PinOps, c.Hits, c.Misses, ep.Manager().PinnedPages())
	}
}
