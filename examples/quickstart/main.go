// Quickstart: send one large message three times through the Open-MX
// stack with the decoupled pinning cache and see what the driver did —
// one declaration, one pin, then cache hits.
//
// The workload is the registered "quickstart" scenario: the same entry the
// omxsim CLI runs (`omxsim run quickstart`), so this example carries no
// cluster wiring of its own.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"omxsim/internal/report"
	"omxsim/internal/scenario"
)

func main() {
	res, err := scenario.RunByName("quickstart", scenario.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report.WriteText(os.Stdout, res)
	if res.Failed() {
		os.Exit(1)
	}
}
