// Adaptive: the paper's §5 proposal, live — "blocking operations benefit
// more from overlapped pinning while overlap-aware applications may prefer
// a simple model with lower overhead". The case matrix crosses the
// application pattern (blocking MPI_Send vs MPI_Isend+compute) with the
// AdaptiveOverlap switch.
//
// The workload is the registered "adaptive" scenario; `omxsim run
// adaptive` renders the same run.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"os"

	"omxsim/internal/report"
	"omxsim/internal/scenario"
)

func main() {
	res, err := scenario.RunByName("adaptive", scenario.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report.WriteText(os.Stdout, res)
	if res.Failed() {
		os.Exit(1)
	}
}
