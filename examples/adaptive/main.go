// Adaptive: the paper's §5 proposal, live — "blocking operations benefit
// more from overlapped pinning while overlap-aware applications may prefer
// a simple model with lower overhead". With AdaptiveOverlap enabled, a
// blocking MPI_Send overlaps its pin with the rendezvous round trip, while
// MPI_Isend (whose caller overlaps communication with its own compute) pins
// synchronously and stays out of the way.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
)

// measure runs an app pattern and returns rank 0's elapsed time.
func measure(adaptive bool, blockingApp bool) sim.Duration {
	cfg := omx.DefaultConfig(core.Overlapped, false)
	cfg.AdaptiveOverlap = adaptive
	cl, err := cluster.New(cluster.Config{Nodes: 2, OMX: cfg})
	if err != nil {
		log.Fatal(err)
	}
	const n = 8 << 20
	const iters = 6
	var elapsed sim.Duration
	cl.Run(func(c *mpi.Comm) {
		buf := c.Malloc(n)
		c.Barrier()
		t0 := c.Now()
		for i := 0; i < iters; i++ {
			if c.Rank() == 0 {
				if blockingApp {
					// Blocking pattern: the app waits on the send, so
					// overlapped pinning hides the pin inside the wait.
					c.Send(buf, n, 1, 1)
				} else {
					// Overlap-aware pattern: the app computes while the
					// transfer runs; it wants the CPU for itself.
					req := c.Isend(buf, n, 1, 1)
					c.Compute(2 * sim.Millisecond)
					c.Wait(req)
				}
			} else {
				st := c.Recv(buf, n, 0, 1)
				_ = st
			}
		}
		c.Barrier()
		elapsed = c.Now() - t0
	})
	return elapsed
}

func main() {
	fmt.Println("Adaptive per-request pinning policy (paper §5).")
	fmt.Println()
	for _, app := range []struct {
		name     string
		blocking bool
	}{
		{"blocking app (MPI_Send + wait)", true},
		{"overlap-aware app (MPI_Isend + compute)", false},
	} {
		plain := measure(false, app.blocking)
		adaptive := measure(true, app.blocking)
		fmt.Printf("%-42s plain-overlapped=%-12v adaptive=%-12v (%+.1f%%)\n",
			app.name, plain, adaptive,
			(float64(plain)-float64(adaptive))/float64(plain)*100)
	}
	fmt.Println()
	fmt.Println("Blocking traffic keeps the overlap either way; non-blocking traffic")
	fmt.Println("pins synchronously under the adaptive policy, trading a little")
	fmt.Println("latency for not competing with the application's own overlap.")
}
