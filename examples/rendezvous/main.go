// Rendezvous: one 8 MiB large-message pull under synchronous pinning
// (the paper's Figure 2 timeline) and under overlapped pinning (Figure 5,
// where the transfer starts immediately and pinning races the incoming
// fragments).
//
// The workload is the registered "rendezvous" scenario; `omxsim run
// rendezvous` renders the same run, and `-policy overlapped` selects one
// side of the comparison.
//
//	go run ./examples/rendezvous
package main

import (
	"fmt"
	"os"

	"omxsim/internal/report"
	"omxsim/internal/scenario"
)

func main() {
	res, err := scenario.RunByName("rendezvous", scenario.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report.WriteText(os.Stdout, res)
	if res.Failed() {
		os.Exit(1)
	}
}
