// Rendezvous: trace the large-message pull protocol and watch overlapped
// pinning race the wire — the paper's Figure 5 timeline, reconstructed from
// a live run. The pin-progress cursor is sampled while the transfer runs,
// for both the synchronous (Figure 2) and overlapped (Figure 5) models.
//
//	go run ./examples/rendezvous
package main

import (
	"fmt"
	"log"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
)

func run(policy core.PinPolicy) {
	cl, err := cluster.New(cluster.Config{
		Nodes: 2,
		OMX:   omx.DefaultConfig(policy, false),
	})
	if err != nil {
		log.Fatal(err)
	}
	const n = 8 << 20

	fmt.Printf("\n=== policy: %v ===\n", policy)
	// Sample the receiver's pin cursor and received bytes every 200us.
	recvEP := cl.Endpoints[1]
	var samples []string
	var sample func()
	sample = func() {
		mgr := recvEP.Manager()
		st := cl.Nodes[1].Stats()
		samples = append(samples, fmt.Sprintf("  t=%-10v pinned=%5d pages  frags received=%d",
			cl.Eng.Now(), mgr.PinnedPages(), st.PullRepliesRx))
		if cl.Eng.Now() < 4*sim.Millisecond {
			cl.Eng.After(400*sim.Microsecond, sample)
		}
	}
	cl.Eng.After(0, sample)

	var elapsed sim.Duration
	cl.Run(func(c *mpi.Comm) {
		buf := c.Malloc(n)
		if c.Rank() == 0 {
			start := c.Now()
			c.Send(buf, n, 1, 7)
			elapsed = c.Now() - start
		} else {
			c.Recv(buf, n, 0, 7)
		}
	})

	for _, s := range samples {
		fmt.Println(s)
	}
	st := cl.Stats()
	fmt.Printf("  transfer of %d MiB took %v  (%.0f MiB/s); overlap misses snd/rcv = %d/%d\n",
		n>>20, elapsed, float64(n)/elapsed.Seconds()/(1<<20),
		st.OverlapMissSender, st.OverlapMissReceiver)
}

func main() {
	fmt.Println("Large-message rendezvous + pull, with the pin cursor sampled mid-flight.")
	fmt.Println("Under PinEachComm the cursor jumps to full before data flows (Figure 2);")
	fmt.Println("under Overlapped the transfer starts immediately and pinning races ahead")
	fmt.Println("of the incoming fragments (Figure 5).")
	run(core.PinEachComm)
	run(core.Overlapped)
}
