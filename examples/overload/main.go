// Overload: the paper's §4.3 failure mode, live. The application (and its
// pinning work) shares a core with the NIC bottom halves; a synthetic
// interrupt flood starves the pinning, incoming fragments outrun the pin
// cursor, and throughput collapses.
//
// The sweep is the registered "overload" scenario; `omxsim run overload`
// renders the same run (add -quick for the three-level sweep).
//
//	go run ./examples/overload
package main

import (
	"fmt"
	"os"

	"omxsim/internal/report"
	"omxsim/internal/scenario"
)

func main() {
	res, err := scenario.RunByName("overload", scenario.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report.WriteText(os.Stdout, res)
	if res.Failed() {
		os.Exit(1)
	}
}
