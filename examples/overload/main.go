// Overload: the paper's §4.3 failure mode, live. The application (and its
// pinning work) shares a core with the NIC bottom halves; a synthetic
// interrupt flood starves the pinning, incoming fragments outrun the pin
// cursor and get dropped (overlap misses), and throughput collapses.
//
//	go run ./examples/overload
package main

import (
	"fmt"

	"omxsim/internal/experiments"
)

func main() {
	fmt.Println("Overlapped pinning vs an interrupt-flooded core (paper §4.3).")
	fmt.Println()
	fmt.Printf("%-10s %-12s %12s %10s %12s %12s\n",
		"flood", "app core", "replies", "misses", "miss rate", "goodput")
	for _, r := range experiments.FloodSweep([]float64{0, 0.5, 0.8, 0.9, 0.95, 0.99}) {
		where := "own core"
		if r.AppOnRxCore {
			where = "RX core"
		}
		fmt.Printf("%-10.2f %-12s %12d %10d %12.2e %9.1f MiB/s\n",
			r.FloodUtilization, where, r.PullReplies, r.OverlapMisses, r.MissRate, r.MBps)
	}
	fmt.Println()
	fmt.Println("The paper reports <1 miss per 10^4 packets under regular load, and")
	fmt.Println("degradation from ~1 GB/s to ~50 MB/s when a single core is overloaded.")
}
