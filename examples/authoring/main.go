// Authoring: the runnable companion to docs/scenario-authoring.md — a
// complete scenario registered from scratch in ~40 lines: a case matrix
// spanning three pinning backends, a fault injection, a workload that
// issues a pin-ahead hint, and assertions that gate the exit status.
//
// Run it, then read the guide with the output next to it:
//
//	go run ./examples/authoring
package main

import (
	"fmt"
	"os"

	"omxsim/internal/core"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/report"
	"omxsim/internal/scenario"
	"omxsim/internal/sim"
)

func init() {
	scenario.MustRegister(&scenario.Scenario{
		Name:        "authoring-demo",
		Description: "docs/scenario-authoring.md's example: one buffer, three backends, one fault",
		// The case matrix: each case is a pinning backend plus free-form
		// params the workload can branch on.
		Cases: []scenario.Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
			{Label: "odp", OMX: omx.DefaultConfig(core.NoPinODP, true)},
			{Label: "pin-ahead", OMX: omx.DefaultConfig(core.PinAhead, true),
				Params: map[string]string{"advise": "1"}},
		},
		Sizes:      []int{1 << 20, 4 << 20},
		QuickSizes: []int{1 << 20},
		Metric:     "mbps",
		// The workload runs once per rank per (case, size) cell.
		Workload: func(c *mpi.Comm, cr *scenario.CaseRun) {
			n := cr.Size
			buf := c.Malloc(n)
			cr.RegisterBuffer(c.Rank(), "payload", buf, n) // fault target
			if cr.Param("advise") != "" {
				c.Advise(buf, n) // user-guided pin-ahead hint
			}
			c.Barrier()
			start := c.Now()
			const iters = 4
			for i := 0; i < iters; i++ {
				if c.Rank() == 0 {
					c.Send(buf, n, 1, 7)
				} else {
					c.Recv(buf, n, 0, 7)
				}
			}
			c.Barrier()
			if c.Rank() == 0 {
				cr.Metric("mbps", float64(iters)*float64(n)/(c.Now()-start).Seconds()/(1<<20))
			}
		},
		// Swap pressure lands on rank 1's buffer as soon as the workload
		// registers it.
		Faults: []scenario.Fault{
			{At: 200 * sim.Microsecond, Kind: scenario.FaultSwapOut, Rank: 1, Buffer: "payload"},
		},
		Assertions: []scenario.Assertion{
			scenario.Completed(),
			scenario.MetricPositive("mbps"),
			scenario.PinAccountingBalanced(),
		},
	})
}

func main() {
	res, err := scenario.RunByName("authoring-demo", scenario.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report.WriteText(os.Stdout, res)
	if res.Failed() {
		os.Exit(1)
	}
}
