// Pincache: the full lifecycle of the paper's Figure 3 — malloc,
// communicate (declare + pin), communicate again (cache hit, still
// pinned), free (MMU notifier unpins, region stays declared), realloc the
// same buffer, communicate (cache hit again, driver repins transparently).
//
// The workload is the registered "pincache" scenario; `omxsim run
// pincache` renders the same run.
//
//	go run ./examples/pincache
package main

import (
	"fmt"
	"os"

	"omxsim/internal/report"
	"omxsim/internal/scenario"
)

func main() {
	res, err := scenario.RunByName("pincache", scenario.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report.WriteText(os.Stdout, res)
	if res.Failed() {
		os.Exit(1)
	}
}
