// Pincache: the full lifecycle of the paper's Figure 3 — malloc,
// communicate (declare + pin), communicate again (cache hit, still pinned),
// free (MMU notifier unpins, region stays declared), realloc the same
// buffer, communicate (cache hit again, driver repins transparently).
//
//	go run ./examples/pincache
package main

import (
	"fmt"
	"log"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
)

func main() {
	cl, err := cluster.New(cluster.Config{
		Nodes: 2,
		OMX:   omx.DefaultConfig(core.OnDemand, true),
	})
	if err != nil {
		log.Fatal(err)
	}
	const n = 2 << 20

	report := func(label string, c *mpi.Comm) {
		ep := cl.Endpoints[0]
		m := ep.Manager().Stats()
		cs := ep.Cache().Stats()
		fmt.Printf("%-34s declares=%d pins=%d repins=%d invalidations=%d hits=%d misses=%d pinnedNow=%d\n",
			label, m.Declares, m.PinOps, m.Repins, m.InvalidateHits,
			cs.Hits, cs.Misses, ep.Manager().PinnedPages())
	}

	cl.Run(func(c *mpi.Comm) {
		if c.Rank() == 1 {
			for i := 0; i < 3; i++ {
				buf := c.Malloc(n)
				c.Recv(buf, n, 0, 1)
				c.Free(buf)
			}
			return
		}
		buf := c.Malloc(n)
		c.Send(buf, n, 1, 1)
		report("after first send (declare+pin):", c)
		c.Send(buf, n, 1, 1)
		report("after second send (cache hit):", c)

		// Free fires the MMU notifier: the driver unpins, but the
		// declaration survives in the cache.
		c.Free(buf)
		c.Compute(1000)
		report("after free (notifier unpinned):", c)

		// The allocator reuses the address, so the cache hits again and
		// the driver repins on demand — user space never knew.
		buf2 := c.Malloc(n)
		if buf2 != buf {
			fmt.Println("allocator did not reuse the address (unexpected)")
		}
		c.Send(buf2, n, 1, 1)
		report("after realloc+send (repin):", c)
	})
}
