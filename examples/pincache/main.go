// Pincache: the full lifecycle of the paper's Figure 3 — malloc,
// communicate (declare + pin), communicate again (cache hit, still
// pinned), then both invalidation classes: an mprotect fires the MMU
// notifier and the driver unpins while the cached declaration survives
// (the next use hits and repins transparently — the decoupling), and a
// free drops the cached declaration entirely, so the realloc'd buffer is
// declared afresh instead of served from a stale entry.
//
// The workload is the registered "pincache" scenario; `omxsim run
// pincache` renders the same run.
//
//	go run ./examples/pincache
package main

import (
	"fmt"
	"os"

	"omxsim/internal/report"
	"omxsim/internal/scenario"
)

func main() {
	res, err := scenario.RunByName("pincache", scenario.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report.WriteText(os.Stdout, res)
	if res.Failed() {
		os.Exit(1)
	}
}
