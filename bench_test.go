// Package omxsim's benchmark harness regenerates every table and figure of
// the paper's evaluation (§4) as Go benchmarks:
//
//	BenchmarkTable1PinOverhead — Table 1 (per-host pin+unpin overheads)
//	BenchmarkFigure6           — Figure 6 (PingPong, pin-per-comm vs permanent, ±I/OAT)
//	BenchmarkFigure7           — Figure 7 (regular/overlapped/cache/both)
//	BenchmarkOverlapMiss       — §4.3 (miss rate, overloaded-core collapse)
//	BenchmarkTable2IMB         — Table 2 IMB rows (improvement percentages)
//	BenchmarkNPBIS             — Table 2 NPB IS row
//
// plus ablations for the design parameters DESIGN.md calls out (pull window,
// pin chunk size, eager threshold, interrupt latency).
//
// Each benchmark runs whole simulations per iteration and attaches the
// paper-comparable quantity via b.ReportMetric (MiB/s, percent, ns/page),
// so `go test -bench . -benchmem` prints the reproduced numbers directly.
package omxsim

import (
	"fmt"
	"testing"

	"omxsim/internal/bench"
	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/cpu"
	"omxsim/internal/experiments"
	"omxsim/internal/imb"
	"omxsim/internal/mpi"
	"omxsim/internal/npb"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
)

// BenchmarkTable1PinOverhead measures the pin+unpin cost per host through
// the full driver path. Metrics: base-us and ns/page (Table 1 columns).
func BenchmarkTable1PinOverhead(b *testing.B) {
	for _, spec := range cpu.Table1Hosts() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			var rows []experiments.Table1Row
			for i := 0; i < b.N; i++ {
				rows = experiments.Table1()
			}
			for _, r := range rows {
				if r.Host == spec.Name {
					b.ReportMetric(r.BaseMicros, "base-us")
					b.ReportMetric(r.NsPerPage, "ns/page")
					b.ReportMetric(r.GBps, "GB/s")
				}
			}
		})
	}
}

// pingPongMBps runs one PingPong config at one size and returns MiB/s.
func pingPongMBps(b *testing.B, cfg omx.Config, size int) float64 {
	b.Helper()
	cl, err := cluster.New(cluster.Config{Nodes: 2, OMX: cfg})
	if err != nil {
		b.Fatal(err)
	}
	var mbps float64
	cl.Run(func(c *mpi.Comm) {
		r := imb.PingPong(c, size, imb.Iterations(size))
		if c.Rank() == 0 {
			mbps = r.MBps
		}
	})
	return mbps
}

// figureCases returns the (label, config) set for a figure.
func figure6Cases() []struct {
	name string
	cfg  omx.Config
} {
	mk := func(p core.PinPolicy, cache, ioat bool) omx.Config {
		c := omx.DefaultConfig(p, cache)
		c.UseIOAT = ioat
		return c
	}
	return []struct {
		name string
		cfg  omx.Config
	}{
		{"PinPerComm", mk(core.PinEachComm, false, false)},
		{"Permanent", mk(core.Permanent, true, false)},
		{"PinPerComm+IOAT", mk(core.PinEachComm, false, true)},
		{"Permanent+IOAT", mk(core.Permanent, true, true)},
	}
}

func figure7Cases() []struct {
	name string
	cfg  omx.Config
} {
	return []struct {
		name string
		cfg  omx.Config
	}{
		{"Regular", omx.DefaultConfig(core.PinEachComm, false)},
		{"Overlapped", omx.DefaultConfig(core.Overlapped, false)},
		{"Cache", omx.DefaultConfig(core.OnDemand, true)},
		{"OverlappedCache", omx.DefaultConfig(core.Overlapped, true)},
	}
}

// benchFigureSizes is the size subset benchmarked per curve (the cmd tool
// sweeps the full 64 KiB..16 MiB schedule).
var benchFigureSizes = []int{64 * 1024, 1 << 20, 16 << 20}

// BenchmarkFigure6 regenerates Figure 6's curves; metric MiB/s per
// (curve, size).
func BenchmarkFigure6(b *testing.B) {
	for _, c := range figure6Cases() {
		for _, size := range benchFigureSizes {
			c, size := c, size
			b.Run(fmt.Sprintf("%s/%s", c.name, sizeName(size)), func(b *testing.B) {
				var mbps float64
				for i := 0; i < b.N; i++ {
					mbps = pingPongMBps(b, c.cfg, size)
				}
				b.ReportMetric(mbps, "MiB/s")
			})
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7's curves; metric MiB/s per
// (curve, size).
func BenchmarkFigure7(b *testing.B) {
	for _, c := range figure7Cases() {
		for _, size := range benchFigureSizes {
			c, size := c, size
			b.Run(fmt.Sprintf("%s/%s", c.name, sizeName(size)), func(b *testing.B) {
				var mbps float64
				for i := 0; i < b.N; i++ {
					mbps = pingPongMBps(b, c.cfg, size)
				}
				b.ReportMetric(mbps, "MiB/s")
			})
		}
	}
}

// BenchmarkOverlapMiss regenerates §4.3: metrics are the overlap-miss rate
// (misses per accepted packet) and goodput.
func BenchmarkOverlapMiss(b *testing.B) {
	cases := []struct {
		name  string
		flood float64
		onRx  bool
		iters int
	}{
		{"NormalLoad", 0, false, 20},
		{"OverloadedCore", experiments.DefaultOverloadFlood, true, 10},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var r experiments.OverlapMissResult
			for i := 0; i < b.N; i++ {
				r = experiments.OverlapMiss(c.name, c.flood, c.onRx, c.iters)
			}
			b.ReportMetric(r.MissRate, "miss-rate")
			b.ReportMetric(r.MBps, "MiB/s")
		})
	}
}

// benchTable2Sizes is the reduced sweep used for the Table 2 benchmark (the
// cmd tool runs the full IMB schedule).
var benchTable2Sizes = []int{4096, 256 * 1024, 4 << 20}

// BenchmarkTable2IMB regenerates the IMB rows of Table 2; metrics are the
// cache and overlap improvement percentages vs regular pinning.
func BenchmarkTable2IMB(b *testing.B) {
	for _, k := range imb.Table2Kernels() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			var rows []experiments.Table2Row
			for i := 0; i < b.N; i++ {
				rows = experiments.Table2IMBFiltered(benchTable2Sizes,
					func(name string) bool { return name == k.Name })
			}
			if len(rows) == 1 {
				b.ReportMetric(rows[0].CachePct, "cache-%")
				b.ReportMetric(rows[0].OverlappingPct, "overlap-%")
			}
		})
	}
}

// BenchmarkNPBIS regenerates the NPB IS row of Table 2 on 4 ranks.
func BenchmarkNPBIS(b *testing.B) {
	var row experiments.Table2Row
	var res npb.Result
	for i := 0; i < b.N; i++ {
		row, res = experiments.NPBIS(npb.ClassA)
	}
	if !res.Verified {
		b.Fatal("IS verification failed")
	}
	b.ReportMetric(row.CachePct, "cache-%")
	b.ReportMetric(row.OverlappingPct, "overlap-%")
	b.ReportMetric(res.MopsTotal, "Mop/s")
}

// BenchmarkAblationPullWindow varies the number of outstanding pull blocks:
// too small starves the wire, large enough saturates it.
func BenchmarkAblationPullWindow(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8, 16} {
		w := w
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			cfg := omx.DefaultConfig(core.OnDemand, true)
			cfg.PullWindow = w
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = pingPongMBps(b, cfg, 4<<20)
			}
			b.ReportMetric(mbps, "MiB/s")
		})
	}
}

// BenchmarkAblationPinChunk varies the pin work granularity (DESIGN.md:
// chunking lets bottom halves interleave with a large pin; bigger chunks
// amortize better but block the core longer).
func BenchmarkAblationPinChunk(b *testing.B) {
	for _, pages := range []int{8, 32, 128, 512} {
		pages := pages
		b.Run(fmt.Sprintf("chunk=%dpages", pages), func(b *testing.B) {
			cfg := omx.DefaultConfig(core.Overlapped, false)
			cfg.PinChunkPages = pages
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = pingPongMBps(b, cfg, 4<<20)
			}
			b.ReportMetric(mbps, "MiB/s")
		})
	}
}

// BenchmarkAblationEagerThreshold varies the eager/rendezvous switch point
// around the MXoE-mandated 32 KiB.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	for _, thr := range []int{8 * 1024, 32 * 1024, 128 * 1024} {
		thr := thr
		b.Run(fmt.Sprintf("thr=%dKiB", thr/1024), func(b *testing.B) {
			cfg := omx.DefaultConfig(core.OnDemand, true)
			cfg.EagerThreshold = thr
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = pingPongMBps(b, cfg, 64*1024)
			}
			b.ReportMetric(mbps, "MiB/s")
		})
	}
}

// BenchmarkAblationHosts runs the Figure 7 comparison on each Table 1 host:
// the paper's "5 to 20% depending on the host frequency" claim.
func BenchmarkAblationHosts(b *testing.B) {
	for _, spec := range cpu.Table1Hosts() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			var gapPct float64
			for i := 0; i < b.N; i++ {
				regular := pingPongHost(b, omx.DefaultConfig(core.PinEachComm, false), spec, 4<<20)
				cached := pingPongHost(b, omx.DefaultConfig(core.OnDemand, true), spec, 4<<20)
				gapPct = (cached - regular) / regular * 100
			}
			b.ReportMetric(gapPct, "cache-gain-%")
		})
	}
}

func pingPongHost(b *testing.B, cfg omx.Config, spec cpu.Spec, size int) float64 {
	b.Helper()
	cl, err := cluster.New(cluster.Config{Nodes: 2, Spec: spec, OMX: cfg})
	if err != nil {
		b.Fatal(err)
	}
	var mbps float64
	cl.Run(func(c *mpi.Comm) {
		r := imb.PingPong(c, size, 8)
		if c.Rank() == 0 {
			mbps = r.MBps
		}
	})
	return mbps
}

// BenchmarkEngineOverhead puts the simulator's own dispatch speed on the
// benchmark trajectory: raw event throughput (events/sec) and allocations
// per scheduled event across the three queue tiers — the zero-delay fast
// path, the timer wheel, and the far-future overflow heap. The cell bodies
// live in internal/bench, shared with `omxsim bench`.
func BenchmarkEngineOverhead(b *testing.B) {
	b.Run("After0", func(b *testing.B) {
		// Zero-delay schedule+fire: the fast-path ring with pooled events.
		b.ReportAllocs()
		bench.EngineAfter0Cell(b.N)
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	})
	b.Run("TimerWheel", func(b *testing.B) {
		// Timed events across all wheel levels (150ns..20ms, the delays the
		// protocol stack actually uses).
		b.ReportAllocs()
		bench.EngineTimerWheelCell(b.N)
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	})
	b.Run("TimerCancel", func(b *testing.B) {
		// The timer-heavy protocol pattern: arm a coarse timeout, cancel it
		// before it fires (retransmit timers almost never expire).
		eng := sim.NewEngine(1)
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := eng.After(20_000_000, fn)
			eng.After(100, fn)
			ev.Cancel()
			eng.Step()
		}
		b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "events/sec")
	})
}

// BenchmarkSimWallClock is the meta-benchmark the perf acceptance gate
// tracks: one full Figure 7 OverlappedCache 4 MiB PingPong cell per
// iteration (body shared with `omxsim bench` via internal/bench), reporting
// host ns per simulated µs (how much real time the simulator burns per unit
// of simulated time) and events/sec alongside the model's MiB/s.
func BenchmarkSimWallClock(b *testing.B) {
	b.ReportAllocs()
	var mbps, nsPerSimUs, eventsPerSec float64
	for i := 0; i < b.N; i++ {
		m, simUs, events := bench.SimWallClockCell()
		mbps = m
		if simUs > 0 {
			nsPerSimUs = b.Elapsed().Seconds() * 1e9 / float64(b.N) / simUs
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			eventsPerSec = float64(events) * float64(b.N) / secs
		}
	}
	b.ReportMetric(mbps, "MiB/s")
	b.ReportMetric(nsPerSimUs, "ns/sim-us")
	b.ReportMetric(eventsPerSec, "events/sec")
}

// BenchmarkSimWallClockParallel drives the 8-node fleet cell on
// GOMAXPROCS engine shards (body shared with `omxsim bench`, which also
// measures the 1-shard reference and reports parallel_speedup). Compare
// against BenchmarkSimWallClockParallelSerial for the parallel engine's
// wall-clock win on this machine.
func BenchmarkSimWallClockParallel(b *testing.B) {
	benchSimWallClockParallel(b, bench.ParallelShards())
}

// BenchmarkSimWallClockParallelSerial is the same cell on one shard —
// the windowed coordinator without concurrency, the speedup denominator.
func BenchmarkSimWallClockParallelSerial(b *testing.B) {
	benchSimWallClockParallel(b, 1)
}

func benchSimWallClockParallel(b *testing.B, shards int) {
	b.ReportAllocs()
	var mbps, nsPerSimUs, eventsPerSec float64
	for i := 0; i < b.N; i++ {
		m, simUs, events := bench.SimWallClockParallelCell(shards)
		mbps = m
		if simUs > 0 {
			nsPerSimUs = b.Elapsed().Seconds() * 1e9 / float64(b.N) / simUs
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			eventsPerSec = float64(events) * float64(b.N) / secs
		}
	}
	b.ReportMetric(float64(shards), "shards")
	b.ReportMetric(mbps, "MiB/s")
	b.ReportMetric(nsPerSimUs, "ns/sim-us")
	b.ReportMetric(eventsPerSec, "events/sec")
}

func sizeName(s int) string {
	if s >= 1<<20 {
		return fmt.Sprintf("%dMB", s>>20)
	}
	return fmt.Sprintf("%dkB", s>>10)
}

// BenchmarkAblationPolicies compares all five pinning models (including the
// QsNet-style NoPinning upper bound the paper's conclusion points at) on a
// 4 MiB PingPong.
func BenchmarkAblationPolicies(b *testing.B) {
	cases := []struct {
		name string
		cfg  omx.Config
	}{
		{"PinEachComm", omx.DefaultConfig(core.PinEachComm, false)},
		{"OnDemandCache", omx.DefaultConfig(core.OnDemand, true)},
		{"Overlapped", omx.DefaultConfig(core.Overlapped, false)},
		{"Permanent", omx.DefaultConfig(core.Permanent, true)},
		{"NoPinning", omx.DefaultConfig(core.NoPinning, true)},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = pingPongMBps(b, c.cfg, 4<<20)
			}
			b.ReportMetric(mbps, "MiB/s")
		})
	}
}

// BenchmarkAblationSyncPrefix varies the §4.3 sync-prefix mitigation under
// overlapped pinning.
func BenchmarkAblationSyncPrefix(b *testing.B) {
	for _, prefix := range []int{-1, 8, 64, 512} {
		prefix := prefix
		name := fmt.Sprintf("prefix=%d", prefix)
		if prefix < 0 {
			name = "prefix=off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := omx.DefaultConfig(core.Overlapped, false)
			cfg.SyncPrefixPages = prefix
			var mbps float64
			for i := 0; i < b.N; i++ {
				mbps = pingPongMBps(b, cfg, 4<<20)
			}
			b.ReportMetric(mbps, "MiB/s")
		})
	}
}
