module omxsim

go 1.24
