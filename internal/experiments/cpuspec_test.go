package experiments

import "omxsim/internal/cpu"

func cpuSpec() cpu.Spec { return cpu.XeonE5460 }
