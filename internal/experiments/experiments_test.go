package experiments

import (
	"testing"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/cpu"
	"omxsim/internal/imb"
	"omxsim/internal/mpi"
	"omxsim/internal/npb"
	"omxsim/internal/omx"
)

// TestTable1MatchesPaper checks that measuring pin+unpin through the full
// driver machinery recovers the constants of the paper's Table 1 within 15%
// (chunking adds small rounding).
func TestTable1MatchesPaper(t *testing.T) {
	want := map[string]struct {
		base float64 // µs
		per  float64 // ns/page
		gbps float64
	}{
		"Opteron 265":  {4.2, 720, 5.5},
		"Opteron 8347": {2.2, 330, 12},
		"Xeon E5435":   {2.3, 250, 16},
		"Xeon E5460":   {1.3, 150, 26.5},
	}
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		w, ok := want[r.Host]
		if !ok {
			t.Errorf("unexpected host %q", r.Host)
			continue
		}
		if !within(r.BaseMicros, w.base, 0.15) {
			t.Errorf("%s base = %.2f us, paper %.1f", r.Host, r.BaseMicros, w.base)
		}
		if !within(r.NsPerPage, w.per, 0.15) {
			t.Errorf("%s per-page = %.0f ns, paper %.0f", r.Host, r.NsPerPage, w.per)
		}
		if !within(r.GBps, w.gbps, 0.20) {
			t.Errorf("%s throughput = %.1f GB/s, paper %.1f", r.Host, r.GBps, w.gbps)
		}
	}
}

func within(got, want, tol float64) bool {
	return got >= want*(1-tol) && got <= want*(1+tol)
}

// TestFigure6Shape checks the paper's Figure 6 claims: permanent pinning
// beats pin-per-communication by roughly 5% on the E5460, at every size;
// I/OAT lifts both curves; curves increase with message size.
func TestFigure6Shape(t *testing.T) {
	sizes := []int{256 * 1024, 1 << 20, 4 << 20, 16 << 20}
	curves := Figure6(sizes, cpuSpec())
	byLabel := indexCurves(curves)
	pin := byLabel["Open-MX - Pin once per Communication"]
	perm := byLabel["Open-MX - Permanent Pinning"]
	pinIOAT := byLabel["Open-MX + I/OAT - Pin once per Communication"]
	permIOAT := byLabel["Open-MX + I/OAT - Permanent Pinning"]
	for i := range sizes {
		gap := (perm.Points[i].MBps - pin.Points[i].MBps) / perm.Points[i].MBps * 100
		if gap < 2 || gap > 12 {
			t.Errorf("size %d: permanent-vs-pin gap = %.1f%%, paper ~5%%", sizes[i], gap)
		}
		if permIOAT.Points[i].MBps <= perm.Points[i].MBps {
			t.Errorf("size %d: I/OAT did not improve permanent pinning", sizes[i])
		}
		if pinIOAT.Points[i].MBps <= pin.Points[i].MBps {
			t.Errorf("size %d: I/OAT did not improve pin-per-comm", sizes[i])
		}
	}
	// Monotone-ish growth with size.
	if perm.Points[len(sizes)-1].MBps < perm.Points[0].MBps {
		t.Error("throughput decreased with message size")
	}
	// Peak in the right regime (paper: ~1100-1200 MiB/s with I/OAT).
	peak := permIOAT.Points[len(sizes)-1].MBps
	if peak < 900 || peak > 1300 {
		t.Errorf("I/OAT peak = %.0f MiB/s, expected ~1150", peak)
	}
}

// TestFigure7Shape checks the paper's Figure 7 claims: both the pinning
// cache and overlapped pinning recover (most of) the gap to permanent
// pinning, individually and combined.
func TestFigure7Shape(t *testing.T) {
	sizes := []int{256 * 1024, 1 << 20, 4 << 20, 16 << 20}
	curves := Figure7(sizes, cpuSpec())
	byLabel := indexCurves(curves)
	regular := byLabel["Open-MX - Regular Pinning"]
	overlapped := byLabel["Open-MX - Overlapped Pinning"]
	cache := byLabel["Open-MX - Pinning Cache"]
	both := byLabel["Open-MX - Overlapped Pinning Cache"]
	for i := range sizes {
		r := regular.Points[i].MBps
		for _, opt := range []Curve{overlapped, cache, both} {
			gain := (opt.Points[i].MBps - r) / r * 100
			if gain < 1 {
				t.Errorf("size %d: %s gains only %.1f%% over regular", sizes[i], opt.Label, gain)
			}
			if gain > 15 {
				t.Errorf("size %d: %s gains %.1f%%, implausibly large", sizes[i], opt.Label, gain)
			}
		}
		// Cache and overlap end up within a few percent of each other
		// (paper: "the same performance improvement is brought by
		// overlapped memory pinning").
		diff := (cache.Points[i].MBps - overlapped.Points[i].MBps) / cache.Points[i].MBps * 100
		if diff > 5 || diff < -5 {
			t.Errorf("size %d: cache vs overlap differ by %.1f%%", sizes[i], diff)
		}
	}
}

// TestOverlapMissRates checks §4.3: under normal load misses are rarer than
// 1 in 10^4 packets; on an overloaded core the throughput collapses by more
// than an order of magnitude and misses become common.
func TestOverlapMissRates(t *testing.T) {
	normal := OverlapMiss("normal", 0, false, 20)
	if normal.MissRate > 1e-4 {
		t.Errorf("normal-load miss rate = %.2e, paper says < 1e-4", normal.MissRate)
	}
	if normal.MBps < 800 {
		t.Errorf("normal-load throughput = %.0f MiB/s, want ~1 GB/s", normal.MBps)
	}
	over := OverlapMiss("overload", DefaultOverloadFlood, true, 10)
	if over.OverlapMisses == 0 {
		t.Error("overloaded core produced no overlap misses")
	}
	if over.MBps <= 0 {
		t.Error("overload throughput measured as zero; budget mode broken")
	}
	if over.MBps > normal.MBps/10 {
		t.Errorf("overload throughput %.0f vs normal %.0f: collapse factor only %.1fx, paper shows ~20x",
			over.MBps, normal.MBps, normal.MBps/over.MBps)
	}
	if over.ReRequests == 0 {
		t.Error("no re-requests despite overlap misses")
	}
}

// TestNPBISRowShape checks the NPB IS row of Table 2: the sort verifies and
// both optimizations help a large-message-intensive code, cache >= overlap.
func TestNPBISRowShape(t *testing.T) {
	row, res := NPBIS(npb.ClassA)
	if !res.Verified {
		t.Fatal("IS verification failed")
	}
	if row.CachePct < 0.5 || row.CachePct > 15 {
		t.Errorf("cache improvement = %.1f%%, paper 4.2%%", row.CachePct)
	}
	if row.OverlappingPct < -1 || row.OverlappingPct > 10 {
		t.Errorf("overlap improvement = %.1f%%, paper 1.9%%", row.OverlappingPct)
	}
	if row.CachePct < row.OverlappingPct-1 {
		t.Errorf("cache (%.1f%%) should be at least as good as overlap (%.1f%%) for IS",
			row.CachePct, row.OverlappingPct)
	}
}

func indexCurves(cs []Curve) map[string]Curve {
	m := make(map[string]Curve, len(cs))
	for _, c := range cs {
		m[c.Label] = c
	}
	return m
}

// TestHostFrequencySensitivity checks the paper's headline range: the
// pinning-cache gain over regular pinning grows from ~5% on the fastest
// host to the high teens on the slowest (abstract: "from 5 to 20%
// depending on the host frequency").
func TestHostFrequencySensitivity(t *testing.T) {
	gain := func(spec cpu.Spec) float64 {
		measure := func(cfg omx.Config) float64 {
			cl, err := cluster.New(cluster.Config{Nodes: 2, Spec: spec, OMX: cfg})
			if err != nil {
				t.Fatal(err)
			}
			var mbps float64
			cl.Run(func(c *mpi.Comm) {
				r := imb.PingPong(c, 4<<20, 8)
				if c.Rank() == 0 {
					mbps = r.MBps
				}
			})
			return mbps
		}
		base := measure(omx.DefaultConfig(core.PinEachComm, false))
		cached := measure(omx.DefaultConfig(core.OnDemand, true))
		return (cached - base) / base * 100
	}
	fast := gain(cpu.XeonE5460)
	slow := gain(cpu.Opteron265)
	if fast < 3 || fast > 10 {
		t.Errorf("E5460 cache gain = %.1f%%, paper ~5%%", fast)
	}
	if slow < 12 || slow > 25 {
		t.Errorf("Opteron 265 cache gain = %.1f%%, paper up to ~20%%", slow)
	}
	if slow <= fast {
		t.Errorf("gain did not grow on the slower host (%.1f%% vs %.1f%%)", slow, fast)
	}
}
