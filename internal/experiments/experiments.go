// Package experiments reproduces every table and figure of the paper's
// evaluation section (§4) on the simulated cluster:
//
//	Table 1  — pin+unpin base/per-page overhead per host        (Table1)
//	Figure 6 — PingPong throughput, pin-per-comm vs permanent   (Figure6)
//	Figure 7 — regular / overlapped / cache / overlapped+cache  (Figure7)
//	§4.3     — overlap-miss rate and overloaded-core collapse   (OverlapMiss, Overload)
//	Table 2  — IMB + NPB IS execution-time improvements         (Table2, NPBIS)
//
// Each function builds fresh clusters, runs the workload, and returns
// structured rows; the scenario registry and bench_test.go render them.
// These sweeps fix their config matrices to the paper's policies;
// comparisons across the full pluggable-backend registry (ODP,
// pin-ahead, ...) live in the scenario layer's policy-* and multitenant
// scenarios instead.
package experiments

import (
	"fmt"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/cpu"
	"omxsim/internal/imb"
	"omxsim/internal/mpi"
	"omxsim/internal/npb"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// Table1Row is one host's pinning overhead, measured through the full
// driver path (declare/acquire/release on a simulated core), not computed
// from the spec.
type Table1Row struct {
	Host       string  `json:"host"`
	GHz        float64 `json:"ghz"`
	BaseMicros float64 `json:"base_us"`     // pin+unpin base overhead, µs
	NsPerPage  float64 `json:"ns_per_page"` // pin+unpin marginal cost per page
	GBps       float64 `json:"pin_gbps"`    // pinning throughput, pagesize/perpage
}

// Table1 measures pin+unpin cost on each of the paper's hosts by pinning
// regions of 1 page and `bigPages` pages through the region manager and
// differencing the kernel-time deltas.
func Table1() []Table1Row {
	const bigPages = 4096
	var rows []Table1Row
	for _, spec := range cpu.Table1Hosts() {
		t1 := measurePinUnpin(spec, 1)
		tN := measurePinUnpin(spec, bigPages)
		perPage := float64(tN-t1) / float64(bigPages-1)
		base := float64(t1) - perPage
		rows = append(rows, Table1Row{
			Host:       spec.Name,
			GHz:        spec.GHz,
			BaseMicros: base / 1000,
			NsPerPage:  perPage,
			GBps:       float64(vm.PageSize) / perPage,
		})
	}
	return rows
}

// measurePinUnpin returns the kernel CPU time consumed by one full
// pin+unpin cycle of a region of `pages` pages.
func measurePinUnpin(spec cpu.Spec, pages int) sim.Duration {
	eng := sim.NewEngine(1)
	machine := cpu.NewMachine(eng, spec)
	as := vm.NewAddressSpace(1, vm.NewPhysMem(0))
	al, err := vm.NewAllocator(as, 0, 0)
	if err != nil {
		panic(err)
	}
	c := machine.Core(0)
	mgr := core.NewManager(eng, as, c, core.ManagerConfig{Policy: core.PinEachComm})
	addr, err := al.Malloc(pages * vm.PageSize)
	if err != nil {
		panic(err)
	}
	r, err := mgr.Declare([]core.Segment{{Addr: addr, Len: pages * vm.PageSize}})
	if err != nil {
		panic(err)
	}
	before := c.BusyTime(cpu.Kernel)
	done := mgr.Acquire(r)
	eng.Run()
	if done.Err() != nil {
		panic(done.Err())
	}
	mgr.Release(r)
	eng.Run()
	return c.BusyTime(cpu.Kernel) - before
}

// CurvePoint is one (message size, throughput) sample of a PingPong curve.
type CurvePoint struct {
	Size int     `json:"size"`
	MBps float64 `json:"mbps"`
}

// Curve is one labelled line of Figure 6 or 7.
type Curve struct {
	Label  string       `json:"label"`
	Config omx.Config   `json:"-"`
	Points []CurvePoint `json:"points"`
}

// pingPongCurve measures IMB PingPong throughput across sizes under cfg.
func pingPongCurve(label string, cfg omx.Config, sizes []int, spec cpu.Spec) Curve {
	cv := Curve{Label: label, Config: cfg}
	for _, size := range sizes {
		cl, err := cluster.New(cluster.Config{Nodes: 2, Spec: spec, OMX: cfg})
		if err != nil {
			panic(err)
		}
		var mbps float64
		cl.Run(func(c *mpi.Comm) {
			r := imb.PingPong(c, size, imb.Iterations(size))
			if c.Rank() == 0 {
				mbps = r.MBps
			}
		})
		cv.Points = append(cv.Points, CurvePoint{Size: size, MBps: mbps})
	}
	return cv
}

// Figure6 reproduces the paper's Figure 6: pin-once-per-communication vs
// permanent pinning, with and without I/OAT copy offload.
func Figure6(sizes []int, spec cpu.Spec) []Curve {
	if sizes == nil {
		sizes = imb.LargeSizes()
	}
	if spec.Cores == 0 {
		spec = cpu.XeonE5460
	}
	mk := func(policy core.PinPolicy, cacheOn, ioat bool) omx.Config {
		cfg := omx.DefaultConfig(policy, cacheOn)
		cfg.UseIOAT = ioat
		return cfg
	}
	return []Curve{
		pingPongCurve("Open-MX - Pin once per Communication", mk(core.PinEachComm, false, false), sizes, spec),
		pingPongCurve("Open-MX - Permanent Pinning", mk(core.Permanent, true, false), sizes, spec),
		pingPongCurve("Open-MX + I/OAT - Pin once per Communication", mk(core.PinEachComm, false, true), sizes, spec),
		pingPongCurve("Open-MX + I/OAT - Permanent Pinning", mk(core.Permanent, true, true), sizes, spec),
	}
}

// Figure7 reproduces the paper's Figure 7: regular vs overlapped pinning vs
// pinning cache vs overlapped pinning cache (no I/OAT, as in the paper).
func Figure7(sizes []int, spec cpu.Spec) []Curve {
	if sizes == nil {
		sizes = imb.LargeSizes()
	}
	if spec.Cores == 0 {
		spec = cpu.XeonE5460
	}
	return []Curve{
		pingPongCurve("Open-MX - Regular Pinning", omx.DefaultConfig(core.PinEachComm, false), sizes, spec),
		pingPongCurve("Open-MX - Overlapped Pinning", omx.DefaultConfig(core.Overlapped, false), sizes, spec),
		pingPongCurve("Open-MX - Pinning Cache", omx.DefaultConfig(core.OnDemand, true), sizes, spec),
		pingPongCurve("Open-MX - Overlapped Pinning Cache", omx.DefaultConfig(core.Overlapped, true), sizes, spec),
	}
}

// Table2Row is one benchmark's execution-time improvement relative to the
// regular-pinning baseline, as in the paper's Table 2.
type Table2Row struct {
	Application    string  `json:"application"`
	CachePct       float64 `json:"cache_pct"`   // improvement with the pinning cache
	OverlappingPct float64 `json:"overlap_pct"` // improvement with overlapped pinning
}

// table2Configs returns (baseline, cache, overlap) configurations.
func table2Configs() (omx.Config, omx.Config, omx.Config) {
	return omx.DefaultConfig(core.PinEachComm, false),
		omx.DefaultConfig(core.OnDemand, true),
		omx.DefaultConfig(core.Overlapped, false)
}

// runIMBTotal runs one IMB kernel sweep under cfg and returns rank 0's
// total timed duration.
func runIMBTotal(k imb.Kernel, cfg omx.Config, ranksPerNode int, sizes []int) sim.Duration {
	cl, err := cluster.New(cluster.Config{
		Nodes: 2, RanksPerNode: ranksPerNode, OMX: cfg,
	})
	if err != nil {
		panic(err)
	}
	var total sim.Duration
	cl.Run(func(c *mpi.Comm) {
		t, _ := imb.RunSweep(c, k, sizes)
		if c.Rank() == 0 {
			total = t
		}
	})
	return total
}

// Table2IMB computes the IMB rows of Table 2 (2 nodes, 1 rank each, full
// size sweep).
func Table2IMB(sizes []int) []Table2Row {
	return Table2IMBFiltered(sizes, func(string) bool { return true })
}

// Table2IMBFiltered is Table2IMB restricted to kernels accepted by keep.
func Table2IMBFiltered(sizes []int, keep func(name string) bool) []Table2Row {
	return table2Rows(imb.Table2Kernels(), sizes, keep)
}

// Table2AllIMB extends the Table 2 comparison to every implemented IMB
// kernel (the paper's set plus PingPing, Alltoall, Gather, Scatter,
// Barrier).
func Table2AllIMB(sizes []int, keep func(name string) bool) []Table2Row {
	return table2Rows(imb.AllKernels(), sizes, keep)
}

func table2Rows(kernels []imb.Kernel, sizes []int, keep func(name string) bool) []Table2Row {
	if sizes == nil {
		sizes = imb.DefaultSizes()
	}
	base, cache, overlap := table2Configs()
	var rows []Table2Row
	for _, k := range kernels {
		if !keep(k.Name) {
			continue
		}
		tBase := runIMBTotal(k, base, 1, sizes)
		tCache := runIMBTotal(k, cache, 1, sizes)
		tOver := runIMBTotal(k, overlap, 1, sizes)
		rows = append(rows, Table2Row{
			Application:    "IMB " + k.Name,
			CachePct:       improvement(tBase, tCache),
			OverlappingPct: improvement(tBase, tOver),
		})
	}
	return rows
}

// NPBIS computes the NPB IS row of Table 2 (4 ranks on 2 nodes, like the
// paper's is.C.4) and returns the row plus the verified baseline result.
func NPBIS(class npb.Class) (Table2Row, npb.Result) {
	base, cache, overlap := table2Configs()
	run := func(cfg omx.Config) (sim.Duration, npb.Result) {
		cl, err := cluster.New(cluster.Config{Nodes: 2, RanksPerNode: 2, OMX: cfg})
		if err != nil {
			panic(err)
		}
		var res npb.Result
		cl.Run(func(c *mpi.Comm) {
			r := npb.Run(c, class)
			if c.Rank() == 0 {
				res = r
			}
		})
		if !res.Verified {
			panic(fmt.Sprintf("NPB IS verification failed under %v", cfg.Policy))
		}
		return res.Elapsed, res
	}
	tBase, resBase := run(base)
	tCache, _ := run(cache)
	tOver, _ := run(overlap)
	row := Table2Row{
		Application:    fmt.Sprintf("NPB is.%s.4", class.Name),
		CachePct:       improvement(tBase, tCache),
		OverlappingPct: improvement(tBase, tOver),
	}
	return row, resBase
}

// NPBCG runs the small-message CG surrogate under the three pinning
// configurations — the paper's §4.4 negative result ("the performance of
// other NAS tests does not vary much since they mostly rely on small
// messages").
func NPBCG(class npb.CGClass) (Table2Row, npb.CGResult) {
	base, cache, overlap := table2Configs()
	run := func(cfg omx.Config) (sim.Duration, npb.CGResult) {
		cl, err := cluster.New(cluster.Config{Nodes: 2, RanksPerNode: 2, OMX: cfg})
		if err != nil {
			panic(err)
		}
		var res npb.CGResult
		cl.Run(func(c *mpi.Comm) {
			r := npb.RunCG(c, class)
			if c.Rank() == 0 {
				res = r
			}
		})
		if !res.Verified {
			panic(fmt.Sprintf("NPB CG verification failed under %v", cfg.Policy))
		}
		return res.Elapsed, res
	}
	tBase, resBase := run(base)
	tCache, _ := run(cache)
	tOver, _ := run(overlap)
	row := Table2Row{
		Application:    fmt.Sprintf("NPB cg-like.%s.4", class.Name),
		CachePct:       improvement(tBase, tCache),
		OverlappingPct: improvement(tBase, tOver),
	}
	return row, resBase
}

func improvement(base, opt sim.Duration) float64 {
	if base == 0 {
		return 0
	}
	return (float64(base) - float64(opt)) / float64(base) * 100
}
