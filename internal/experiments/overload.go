package experiments

import (
	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/cpu"
	"omxsim/internal/imb"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
)

// OverlapMissResult reports the §4.3 counters: how often a packet arrived
// before its target pages were pinned, and the throughput that resulted.
type OverlapMissResult struct {
	Label string `json:"label"`
	// FloodUtilization is the synthetic bottom-half load applied to the
	// application/pinning core (0 = normal operation).
	FloodUtilization float64 `json:"flood_utilization"`
	AppOnRxCore      bool    `json:"app_on_rx_core"`
	PullReplies      uint64  `json:"pull_replies"`
	OverlapMisses    uint64  `json:"overlap_misses"` // receiver + sender side
	MissRate         float64 `json:"miss_rate"`
	ReRequests       uint64  `json:"rereqs"`
	MBps             float64 `json:"mbps"`
}

// StartFlood submits synthetic bottom-half work on c at the target
// utilization, modelling a core saturated by incoming-network interrupt
// processing (10G of small packets, paper §4.3). Returns a stop function.
// The scenario runner's flood fault injector reuses it.
func StartFlood(eng *sim.Engine, c *cpu.Core, utilization float64) func() {
	const quantum = 10 * sim.Microsecond
	stopped := false
	var pending *sim.Event
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		c.Submit(cpu.BottomHalf, sim.Duration(float64(quantum)*utilization), nil)
		pending = eng.After(quantum, tick)
	}
	eng.After(0, tick)
	return func() {
		stopped = true
		// Cancel the armed timer so a stopped flood leaves no pending event
		// behind (Cancel is O(1) on every queue tier).
		pending.Cancel()
	}
}

// OverlapMiss runs a 1 MiB PingPong under overlapped pinning, optionally
// with the application pinned to the interrupt core and a synthetic
// interrupt flood — the paper's §4.3 scenario. With flood=0 and the app on
// its own core this measures the normal-load miss rate (paper: < 1 packet
// in 10^4); with the app on the RX core and a heavy flood it reproduces the
// 1 GB/s -> ~50 MB/s collapse.
func OverlapMiss(label string, flood float64, appOnRxCore bool, iters int) OverlapMissResult {
	cfg := omx.DefaultConfig(core.Overlapped, false)
	cl, err := cluster.New(cluster.Config{Nodes: 2, OMX: cfg, AppsOnRxCore: appOnRxCore})
	if err != nil {
		panic(err)
	}
	var stops []func()
	if flood > 0 {
		for _, n := range cl.Nodes {
			stops = append(stops, StartFlood(cl.Eng, n.RxCore(), flood))
		}
	}
	const size = 1 << 20
	var mbps float64
	body := func(c *mpi.Comm) {
		r := imb.PingPong(c, size, iters)
		if c.Rank() == 0 {
			mbps = r.MBps
		}
	}
	if flood > 0 {
		// Saturation may never terminate (bottom halves can starve pinning
		// indefinitely under strict priority — the live-lock the paper's 50
		// MB/s floor hints at). Run a fixed budget and derive goodput from
		// the fragments actually accepted into receive regions.
		const budget = 100 * sim.Millisecond
		done := cl.RunFor(budget, body)
		st := cl.Stats()
		if !done {
			frag := float64(cl.Nodes[0].NIC.MTU() - 32)
			mbps = float64(st.PullRepliesRx) * frag / budget.Seconds() / (1 << 20)
		}
		for _, stop := range stops {
			stop()
		}
		return buildOverlapResult(label, flood, appOnRxCore, st, mbps)
	}
	cl.Run(body)
	for _, stop := range stops {
		stop()
	}
	st := cl.Stats()
	return buildOverlapResult(label, flood, appOnRxCore, st, mbps)
}

func buildOverlapResult(label string, flood float64, appOnRxCore bool, st omx.NodeStats, mbps float64) OverlapMissResult {
	misses := st.OverlapMissReceiver + st.OverlapMissSender
	total := st.PullRepliesRx + misses
	rate := 0.0
	if total > 0 {
		rate = float64(misses) / float64(total)
	}
	return OverlapMissResult{
		Label:            label,
		FloodUtilization: flood,
		AppOnRxCore:      appOnRxCore,
		PullReplies:      st.PullRepliesRx,
		OverlapMisses:    misses,
		MissRate:         rate,
		ReRequests:       st.ReRequests,
		MBps:             mbps,
	}
}

// DefaultOverloadFlood is the bottom-half utilization that reproduces the
// paper's "1 GB/s down to 50 MB/s" data point (calibrated by FloodSweep).
const DefaultOverloadFlood = 0.95

// OverlapMissSection43 runs the two §4.3 data points: normal load and the
// overloaded single core. Iteration counts of 0 select the defaults
// (30 normal / 10 overloaded); smaller counts make quick runs.
func OverlapMissSection43(itersNormal, itersOverload int) []OverlapMissResult {
	if itersNormal <= 0 {
		itersNormal = 30
	}
	if itersOverload <= 0 {
		itersOverload = 10
	}
	return []OverlapMissResult{
		OverlapMiss("normal load (app on own core)", 0, false, itersNormal),
		OverlapMiss("overloaded core (app on RX core, interrupt flood)", DefaultOverloadFlood, true, itersOverload),
	}
}

// FloodSweep measures goodput and miss rate across a range of interrupt
// loads — the ablation behind §4.3's qualitative claim that the collapse
// appears only when the pinning core is severely overloaded.
func FloodSweep(levels []float64) []OverlapMissResult {
	if levels == nil {
		levels = []float64{0, 0.5, 0.7, 0.8, 0.85, 0.9, 0.92, 0.95, 0.99}
	}
	var out []OverlapMissResult
	for _, u := range levels {
		label := "normal load"
		onRx := false
		iters := 20
		if u > 0 {
			label = "overloaded"
			onRx = true
			iters = 10
		}
		out = append(out, OverlapMiss(label, u, onRx, iters))
	}
	return out
}
