package yamlite

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *Node {
	t.Helper()
	n, err := Parse([]byte(src), "test.yaml")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestParseNestedDocument(t *testing.T) {
	n := parseOK(t, `
name: fleet
description: "a: quoted description"  # trailing comment
cluster:
  nodes: 4
  link:
    prop_delay_us: 2
sizes: [256KiB, 1MiB]
cases:
  - label: cache
    policy: on-demand
    cache: true
  - label: odp
    policy: odp
events:
  -
    at_us: 100
    kind: crash
`)
	if n.Kind != Map {
		t.Fatalf("root kind = %v", n.Kind)
	}
	if v, _ := n.Get("name"); v.Value != "fleet" {
		t.Fatalf("name = %q", v.Value)
	}
	if v, _ := n.Get("description"); v.Value != "a: quoted description" {
		t.Fatalf("description = %q", v.Value)
	}
	cl, ok := n.Get("cluster")
	if !ok || cl.Kind != Map {
		t.Fatalf("cluster = %+v", cl)
	}
	link, _ := cl.Get("link")
	if v, _ := link.Get("prop_delay_us"); v.Value != "2" {
		t.Fatalf("prop_delay_us = %q", v.Value)
	}
	sizes, _ := n.Get("sizes")
	if sizes.Kind != Seq || len(sizes.Items) != 2 || sizes.Items[1].Value != "1MiB" {
		t.Fatalf("sizes = %+v", sizes)
	}
	cases, _ := n.Get("cases")
	if cases.Kind != Seq || len(cases.Items) != 2 {
		t.Fatalf("cases = %+v", cases)
	}
	if v, _ := cases.Items[0].Get("cache"); v.Value != "true" {
		t.Fatalf("case[0].cache = %q", v.Value)
	}
	if v, _ := cases.Items[1].Get("policy"); v.Value != "odp" {
		t.Fatalf("case[1].policy = %q", v.Value)
	}
	events, _ := n.Get("events")
	if len(events.Items) != 1 {
		t.Fatalf("events = %+v", events)
	}
	if v, _ := events.Items[0].Get("kind"); v.Value != "crash" {
		t.Fatalf("event kind = %q", v.Value)
	}
}

func TestParseLineNumbers(t *testing.T) {
	n := parseOK(t, "a: 1\n\n# comment\nb:\n  c: 2\n")
	b, _ := n.Get("b")
	c, _ := b.Get("c")
	if c.Line != 5 {
		t.Fatalf("c.Line = %d, want 5", c.Line)
	}
	var bLine int
	for _, p := range n.Pairs {
		if p.Key == "b" {
			bLine = p.Line
		}
	}
	if bLine != 4 {
		t.Fatalf("b pair line = %d, want 4", bLine)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"a: 1\na: 2\n", "duplicate key"},
		{"\tkey: 1\n", "tab in indentation"},
		{"", "empty document"},
		{"a: [1, 2\n", "unterminated flow list"},
		{"a: {b: 1}\n", "flow mappings are not supported"},
		{"just a scalar line\n", "expected `key: value`"},
		{"a:\n  - 1\n  b: 2\n", "unexpected indent"}, // seq then map at one indent
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.src), "t.yaml"); err == nil {
			t.Errorf("Parse(%q): no error, want %q", tc.src, tc.want)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q): error %q, want substring %q", tc.src, err, tc.want)
		}
	}
}

func TestParseScalarSeq(t *testing.T) {
	n := parseOK(t, "nodes:\n  - 1\n  - 2\n  - 3\n")
	nodes, _ := n.Get("nodes")
	if nodes.Kind != Seq || len(nodes.Items) != 3 || nodes.Items[2].Value != "3" {
		t.Fatalf("nodes = %+v", nodes)
	}
}

func TestCommentInsideQuotes(t *testing.T) {
	n := parseOK(t, `a: "not # a comment"`+"\n")
	if v, _ := n.Get("a"); v.Value != "not # a comment" {
		t.Fatalf("a = %q", v.Value)
	}
}
