// Package yamlite is a small, dependency-free parser for the YAML subset
// the scenario spec format uses: indentation-nested maps and sequences,
// scalars, flow lists (`[a, b, c]`), quoted strings, and `#` comments.
// Every node carries its source line so decoders can report errors with
// file:line context — the strictness `omxsim validate` is built on.
//
// Deliberately unsupported (parse errors, not silent acceptance): tab
// indentation, duplicate map keys, anchors/aliases, multi-document
// streams, flow maps, and block scalars. Specs that need none of those
// stay readable and decode unambiguously.
package yamlite

import (
	"fmt"
	"strings"
)

// Kind discriminates the node variants.
type Kind int

// Node kinds.
const (
	Scalar Kind = iota
	Map
	Seq
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case Scalar:
		return "scalar"
	case Map:
		return "mapping"
	case Seq:
		return "sequence"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Node is one parsed value. Exactly one of Value/Pairs/Items is
// meaningful, per Kind; Line is the 1-based source line the node starts
// on.
type Node struct {
	Kind  Kind
	Line  int
	Value string // Scalar
	Pairs []Pair // Map, in source order
	Items []*Node
}

// Pair is one map entry.
type Pair struct {
	Key  string
	Line int
	Val  *Node
}

// Get returns the value for key ("" handling is the caller's business)
// and whether the key is present.
func (n *Node) Get(key string) (*Node, bool) {
	if n == nil || n.Kind != Map {
		return nil, false
	}
	for _, p := range n.Pairs {
		if p.Key == key {
			return p.Val, true
		}
	}
	return nil, false
}

// line is one significant source line after comment stripping.
type line struct {
	indent int
	text   string
	num    int
}

type parser struct {
	file  string
	lines []line
	pos   int
}

// Parse parses src. file names the source in error messages.
func Parse(src []byte, file string) (*Node, error) {
	p := &parser{file: file}
	if err := p.split(src); err != nil {
		return nil, err
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("%s: empty document", file)
	}
	root, err := p.parseBlock(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("%s:%d: unexpected content at indent %d (outdented past the document root?)", file, l.num, l.indent)
	}
	return root, nil
}

// split breaks src into significant lines, stripping comments and
// rejecting tab indentation.
func (p *parser) split(src []byte) error {
	for i, raw := range strings.Split(string(src), "\n") {
		num := i + 1
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent < len(raw) && raw[indent] == '\t' {
			return fmt.Errorf("%s:%d: tab in indentation (use spaces)", p.file, num)
		}
		text := strings.TrimRight(stripComment(raw[indent:]), " \t")
		if text == "" {
			continue
		}
		p.lines = append(p.lines, line{indent: indent, text: text, num: num})
	}
	return nil
}

// stripComment removes a trailing ` # ...` comment outside quotes. A `#`
// at the start of the content is a whole-line comment.
func stripComment(s string) string {
	if strings.HasPrefix(s, "#") {
		return ""
	}
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && i > 0 && (s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i]
		}
	}
	return s
}

// parseBlock parses the map or sequence whose entries sit at exactly
// `indent`.
func (p *parser) parseBlock(indent int) (*Node, error) {
	l := p.lines[p.pos]
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

func (p *parser) parseMap(indent int) (*Node, error) {
	n := &Node{Kind: Map, Line: p.lines[p.pos].num}
	seen := make(map[string]bool)
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("%s:%d: unexpected indent %d (expected %d)", p.file, l.num, l.indent, indent)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("%s:%d: sequence item in a mapping block", p.file, l.num)
		}
		key, rest, err := p.splitKey(l)
		if err != nil {
			return nil, err
		}
		if seen[key] {
			return nil, fmt.Errorf("%s:%d: duplicate key %q", p.file, l.num, key)
		}
		seen[key] = true
		p.pos++
		var val *Node
		if rest != "" {
			val, err = p.inlineValue(rest, l.num)
			if err != nil {
				return nil, err
			}
		} else if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			val, err = p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
		} else {
			val = &Node{Kind: Scalar, Line: l.num, Value: ""}
		}
		n.Pairs = append(n.Pairs, Pair{Key: key, Line: l.num, Val: val})
	}
	return n, nil
}

func (p *parser) parseSeq(indent int) (*Node, error) {
	n := &Node{Kind: Seq, Line: p.lines[p.pos].num}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, fmt.Errorf("%s:%d: unexpected indent %d (expected %d)", p.file, l.num, l.indent, indent)
			}
			break
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		itemIndent := indent + 2
		switch {
		case rest == "":
			// `-` alone: the item is the nested block below.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("%s:%d: empty sequence item", p.file, l.num)
			}
			item, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			n.Items = append(n.Items, item)
		case isKeyLine(rest):
			// Compact mapping: `- key: value` starts a map whose further
			// entries are indented to the content column.
			p.lines[p.pos] = line{indent: itemIndent, text: rest, num: l.num}
			item, err := p.parseMap(itemIndent)
			if err != nil {
				return nil, err
			}
			n.Items = append(n.Items, item)
		default:
			p.pos++
			item, err := p.inlineValue(rest, l.num)
			if err != nil {
				return nil, err
			}
			n.Items = append(n.Items, item)
		}
	}
	return n, nil
}

// splitKey splits a `key: rest` line.
func (p *parser) splitKey(l line) (key, rest string, err error) {
	i := keyColon(l.text)
	if i < 0 {
		return "", "", fmt.Errorf("%s:%d: expected `key: value`, got %q", p.file, l.num, l.text)
	}
	key = strings.TrimSpace(l.text[:i])
	if key == "" {
		return "", "", fmt.Errorf("%s:%d: empty key", p.file, l.num)
	}
	key = unquote(key)
	rest = strings.TrimSpace(l.text[i+1:])
	return key, rest, nil
}

// isKeyLine reports whether s starts a `key: ...` mapping entry.
func isKeyLine(s string) bool { return keyColon(s) >= 0 }

// keyColon finds the colon terminating a map key: the first `:` outside
// quotes that ends the line or is followed by a space.
func keyColon(s string) int {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == ':':
			if i+1 == len(s) || s[i+1] == ' ' {
				return i
			}
		}
	}
	return -1
}

// inlineValue parses a scalar or flow list appearing after `key:` or `-`.
func (p *parser) inlineValue(s string, num int) (*Node, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("%s:%d: unterminated flow list %q", p.file, num, s)
		}
		n := &Node{Kind: Seq, Line: num}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return n, nil
		}
		for _, part := range strings.Split(inner, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				return nil, fmt.Errorf("%s:%d: empty element in flow list %q", p.file, num, s)
			}
			n.Items = append(n.Items, &Node{Kind: Scalar, Line: num, Value: unquote(part)})
		}
		return n, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("%s:%d: flow mappings are not supported (use an indented block)", p.file, num)
	}
	return &Node{Kind: Scalar, Line: num, Value: unquote(s)}, nil
}

// unquote strips one level of matching quotes.
func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
