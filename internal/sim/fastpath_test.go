package sim

import (
	"math/rand"
	"testing"
)

// buildWorkload drives an engine through a randomized schedule exercising
// every queue tier (zero-delay fast path, all wheel levels incl. block
// boundaries, far-future overflow heap) plus cancellations and nested
// scheduling, recording the (time, id) trace of fired events.
func buildWorkload(e *Engine, seed int64) ([]Time, []int, uint64) {
	rng := rand.New(rand.NewSource(seed))
	var times []Time
	var ids []int
	var live []*Event
	id := 0
	deltas := []Duration{0, 1, 100, 255, 256, 257, 5000, 65_535, 65_536, 1 << 20,
		(1 << 24) - 1, 1 << 24, 200_000_000, (1 << 32) + 12345, 6_000_000_000}
	var schedule func(depth int)
	schedule = func(depth int) {
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			d := deltas[rng.Intn(len(deltas))]
			myID := id
			id++
			ev := e.After(d, func() {
				times = append(times, e.Now())
				ids = append(ids, myID)
				if depth < 3 && rng.Intn(3) == 0 {
					schedule(depth + 1)
				}
			})
			if rng.Intn(6) == 0 {
				live = append(live, ev)
			}
		}
		// Cancel a random remembered event (it may have fired already, in
		// which case Cancel must be a no-op). Zero-delay events are excluded:
		// they are pooled and must not be cancelled after their instant.
		if len(live) > 0 && rng.Intn(4) == 0 {
			i := rng.Intn(len(live))
			if live[i].When() > e.Now() {
				live[i].Cancel()
			}
			live = append(live[:i], live[i+1:]...)
		}
	}
	for i := 0; i < 40; i++ {
		schedule(0)
	}
	// Mix RunUntil slices with full Run to cover the clock-bump path.
	e.RunUntil(1_000_000)
	e.RunUntil(300_000_000)
	e.Run()
	return times, ids, e.EventsFired()
}

// TestGoldenTraceFastVsLegacyHeap asserts that the tiered queue (fast path
// + timer wheel + overflow heap) fires exactly the same events in exactly
// the same order as the reference single-tier heap implementation.
func TestGoldenTraceFastVsLegacyHeap(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		fast := NewEngine(seed)
		ft, fi, ff := buildWorkload(fast, seed)

		legacy := NewEngine(seed)
		legacy.legacyHeap = true
		lt, li, lf := buildWorkload(legacy, seed)

		if ff != lf {
			t.Fatalf("seed %d: EventsFired fast=%d legacy=%d", seed, ff, lf)
		}
		if len(ft) != len(lt) {
			t.Fatalf("seed %d: trace length fast=%d legacy=%d", seed, len(ft), len(lt))
		}
		for i := range ft {
			if ft[i] != lt[i] || fi[i] != li[i] {
				t.Fatalf("seed %d: trace diverges at %d: fast=(%v,%d) legacy=(%v,%d)",
					seed, i, ft[i], fi[i], lt[i], li[i])
			}
		}
		if ff == 0 {
			t.Fatalf("seed %d: workload fired nothing", seed)
		}
	}
}

// TestGoldenTraceDeterminism asserts run-to-run reproducibility of the
// tiered engine itself.
func TestGoldenTraceDeterminism(t *testing.T) {
	t1, i1, f1 := buildWorkload(NewEngine(7), 7)
	t2, i2, f2 := buildWorkload(NewEngine(7), 7)
	if f1 != f2 || len(t1) != len(t2) {
		t.Fatalf("runs differ: %d/%d events", f1, f2)
	}
	for i := range t1 {
		if t1[i] != t2[i] || i1[i] != i2[i] {
			t.Fatalf("trace diverges at %d", i)
		}
	}
}

// TestCancelFastPathEvent asserts Event.Cancel works on the zero-delay
// queue tier: the event must not fire, must not advance the clock, and
// must update Pending.
func TestCancelFastPathEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(0, func() { fired = true })
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	if !ev.Cancel() {
		t.Fatal("Cancel returned false for pending fast-path event")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after cancel, want 0", e.Pending())
	}
	e.Run()
	if fired {
		t.Fatal("cancelled fast-path event fired")
	}
	if e.EventsFired() != 0 {
		t.Fatalf("EventsFired = %d, want 0", e.EventsFired())
	}
}

// TestPendingCounterAcrossTiers asserts the O(1) live-event counter stays
// exact across scheduling, firing, and cancelling on every tier.
func TestPendingCounterAcrossTiers(t *testing.T) {
	e := NewEngine(1)
	evZero := e.After(0, func() {})
	evWheel := e.After(5000, func() {})
	evDeep := e.After(200_000_000, func() {})
	evHeap := e.After(6_000_000_000, func() {})
	if e.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", e.Pending())
	}
	evWheel.Cancel()
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d after wheel cancel, want 3", e.Pending())
	}
	e.Step() // fires the zero-delay event
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d after step, want 2", e.Pending())
	}
	evDeep.Cancel()
	evHeap.Cancel()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after cancels, want 0", e.Pending())
	}
	e.Run()
	if e.EventsFired() != 1 {
		t.Fatalf("EventsFired = %d, want 1", e.EventsFired())
	}
	_ = evZero
}

// TestOverflowHeapOrdering covers events beyond the wheel horizon (~4.3 s):
// they must interleave correctly with wheel events.
func TestOverflowHeapOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	rec := func() { got = append(got, e.Now()) }
	e.After(6_000_000_000, rec)
	e.After(5_000_000_000, rec)
	e.After(100, rec)
	e.After(4_999_999_999, rec)
	e.Run()
	want := []Time{100, 4_999_999_999, 5_000_000_000, 6_000_000_000}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestRunUntilDeadlineWithStaleSlotMin: a cancelled wheel event leaves its
// slot's cached minimum stale at or below the deadline; RunUntil must still
// not fire the next live event when it lies beyond the deadline.
func TestRunUntilDeadlineWithStaleSlotMin(t *testing.T) {
	e := NewEngine(1)
	ev := e.After(15_000, func() { t.Error("cancelled event fired") })
	fired := false
	e.After(25_000, func() { fired = true })
	ev.Cancel()
	e.RunUntil(20_000)
	if fired {
		t.Fatal("RunUntil fired an event past its deadline (stale slot minimum)")
	}
	if e.Now() != 20_000 {
		t.Fatalf("Now = %v, want 20000", e.Now())
	}
	e.Run()
	if !fired {
		t.Fatal("live event never fired")
	}
	if e.Now() != 25_000 {
		t.Fatalf("Now = %v, want 25000", e.Now())
	}
}

// Allocation regressions: the zero-delay hot paths must not allocate. The
// warmup pass grows the fast-path ring, the event pool, and waiter slices
// to steady state before measuring.

func TestAllocsAfterZero(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 100; i++ { // warm pool and ring
		e.After(0, fn)
		e.Step()
	}
	if n := testing.AllocsPerRun(200, func() {
		e.After(0, fn)
		e.Step()
	}); n != 0 {
		t.Fatalf("After(0)+Step allocates %.1f/op, want 0", n)
	}
}

func TestAllocsQueuePush(t *testing.T) {
	e := NewEngine(1)
	q := &Queue[int]{}
	for i := 0; i < 100; i++ { // warm item slice
		q.Push(e, i)
	}
	for i := 0; i < 100; i++ {
		q.TryPop()
	}
	if n := testing.AllocsPerRun(200, func() {
		q.Push(e, 1)
		q.TryPop()
		e.Run()
	}); n != 0 {
		t.Fatalf("Queue.Push allocates %.1f/op, want 0", n)
	}
}

func TestAllocsCompletionComplete(t *testing.T) {
	e := NewEngine(1)
	// Pre-create completions with a registered waiter outside the measured
	// region; measure only Complete (waiter wake goes through the pooled
	// fast path).
	const runs = 200
	// AllocsPerRun invokes the closure extra times around the measured
	// window; over-provision so every call gets a fresh completion.
	cs := make([]*Completion, 2*runs+20)
	fn := func() {}
	for i := range cs {
		cs[i] = &Completion{}
		cs[i].OnDone(e, fn)
	}
	// Warm the pool.
	for i := 0; i < 5; i++ {
		cs[2*runs+i].Complete(e, nil)
		e.Run()
	}
	idx := 0
	if n := testing.AllocsPerRun(runs, func() {
		cs[idx].Complete(e, nil)
		idx++
		e.Run()
	}); n != 0 {
		t.Fatalf("Completion.Complete allocates %.1f/op, want 0", n)
	}
}

func TestAllocsSemaphoreRelease(t *testing.T) {
	e := NewEngine(1)
	s := NewSemaphore(0)
	if n := testing.AllocsPerRun(200, func() {
		s.Release(e)
		s.TryAcquire()
		e.Run()
	}); n != 0 {
		t.Fatalf("Semaphore.Release allocates %.1f/op, want 0", n)
	}
}
