// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock in nanoseconds and fires events
// ordered by (time, insertion sequence), so events scheduled for the same
// instant fire in FIFO order and every run with the same inputs produces
// exactly the same trace. All simulation state is owned by the goroutine
// that calls Run; cooperating simulated processes (see Proc) are scheduled
// one at a time, so user code never needs locks.
//
// Internally the queue is tiered by distance-to-now (see PERFORMANCE.md):
//
//   - a zero-delay FIFO ring serves After(0, …) wakeups — the vast majority
//     of events (completions, queue/semaphore wakeups, process yields) —
//     with O(1) push/pop and pooled Event objects (no allocation);
//   - a 4-level hierarchical timer wheel (256 slots per level, covering
//     2^8·2^8k ns at level k) serves timed events up to ~4.3 simulated
//     seconds out with O(1) scheduling;
//   - a binary heap holds the rare far-future events beyond the wheel.
//
// The tiers never reorder events: the dispatch loop always fires the
// globally minimal (time, seq) pair, which a golden-trace test checks
// against a heap-only reference mode.
package sim

import (
	"fmt"
	bits64 "math/bits"
	"math/rand"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations, mirroring time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders the time with an adaptive unit, e.g. "12.5us".
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/1e3)
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	default:
		return fmt.Sprintf("%.3fs", float64(t)/1e9)
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Event scheduling state.
const (
	evPending   uint8 = iota // scheduled, not yet fired
	evFired                  // callback ran (or event was recycled)
	evCancelled              // Cancel'd before firing
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it before it fires.
//
// Zero-delay events (After(0, …) and At(now, …)) are pooled: once such an
// event fires, the engine recycles the Event object for a later zero-delay
// schedule. Cancelling a zero-delay event is valid only until the instant it
// was scheduled for has been processed; retaining one across engine steps
// and cancelling it later is a bug (it may cancel an unrelated recycled
// event). Timed events (d > 0) are never recycled, so the historical
// "Cancel after fire is a no-op" contract still holds for them.
type Event struct {
	when  Time
	seq   uint64
	fn    func()
	eng   *Engine
	index int // heap index while in the overflow heap, -1 otherwise
	state uint8
	// pooled marks zero-delay events eligible for recycling after firing.
	pooled bool
	// daemon marks background events (recurring kernel work like kswapd)
	// that must not keep Run/RunUntil alive: the run loops stop once only
	// daemon events remain pending.
	daemon bool
}

// When reports the simulated time at which the event will fire.
func (ev *Event) When() Time { return ev.when }

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or was already cancelled) is a no-op. Cancel reports whether the
// event was still pending. It works on every queue tier, including the
// zero-delay fast path.
func (ev *Event) Cancel() bool {
	if ev == nil || ev.state != evPending {
		return false
	}
	ev.state = evCancelled
	ev.fn = nil
	if ev.eng != nil {
		ev.eng.pending--
		if ev.daemon {
			ev.eng.daemonPending--
		}
	}
	return true
}

// eventHeap is a binary min-heap ordered by (when, seq), specialized for
// *Event to avoid the any-boxing and interface dispatch of container/heap
// on the scheduling hot path.
type eventHeap []*Event

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) push(ev *Event) {
	ev.index = len(*h)
	*h = append(*h, ev)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() *Event {
	s := *h
	n := len(s) - 1
	s.Swap(0, n)
	ev := s[n]
	s[n] = nil
	ev.index = -1
	*h = s[:n]
	if n > 0 {
		h.down(0)
	}
	return ev
}

func (h eventHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		j = i
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		j := l
		if r := l + 1; r < n && h.Less(r, l) {
			j = r
		}
		if !h.Less(j, i) {
			return
		}
		h.Swap(i, j)
		i = j
	}
}

// Timer-wheel geometry: wheelLevels levels of wheelSlots slots; level k has
// slot granularity 2^(wheelBits·k) ns, so level k as a whole spans
// 2^(wheelBits·(k+1)) ns. Events beyond the last level go to the overflow
// heap.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits // 256
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	// wheelSpan is the horizon covered by the wheel (~4.3 s); deltas at or
	// beyond it overflow to the heap.
	wheelSpan = Time(1) << (wheelBits * wheelLevels)
)

// wheelLevel is one wheel tier: 256 slots plus an occupancy bitmap for O(1)
// next-occupied-slot scans and a cached per-slot minimum timestamp so the
// dispatch loop never walks slot contents while searching. The cached min is
// exact under inserts and may only go stale LOW when an event is cancelled;
// the dispatch loop tolerates that by extracting the slot at the stale
// instant and re-filing the leftovers (which recomputes the min).
type wheelLevel struct {
	slots   [wheelSlots][]*Event
	slotMin [wheelSlots]Time
	occupy  [wheelSlots / 64]uint64
}

func (w *wheelLevel) occupied(slot int) bool {
	return w.occupy[slot>>6]&(1<<(uint(slot)&63)) != 0
}

func (w *wheelLevel) insert(slot int, ev *Event) {
	if !w.occupied(slot) {
		w.occupy[slot>>6] |= 1 << (uint(slot) & 63)
		w.slotMin[slot] = ev.when
	} else if ev.when < w.slotMin[slot] {
		w.slotMin[slot] = ev.when
	}
	w.slots[slot] = append(w.slots[slot], ev)
}

func (w *wheelLevel) unmark(slot int) { w.occupy[slot>>6] &^= 1 << (uint(slot) & 63) }

// nextOccupied returns the first occupied slot at or after from in circular
// order, along with how many slots away it is (0..wheelSlots-1), or ok=false
// when the level is empty.
func (w *wheelLevel) nextOccupied(from int) (slot, dist int, ok bool) {
	// Scan the 4 occupancy words starting at from's word, wrapping once.
	for i := 0; i <= wheelSlots/64; i++ {
		word := (from>>6 + i) % (wheelSlots / 64)
		bits := w.occupy[word]
		if i == 0 {
			bits &= ^uint64(0) << (uint(from) & 63)
		}
		if i == wheelSlots/64 {
			// Wrapped fully: only slots strictly before from remain.
			bits &= (1 << (uint(from) & 63)) - 1
		}
		if bits != 0 {
			s := word<<6 + bits64.TrailingZeros64(bits)
			d := s - from
			if d < 0 {
				d += wheelSlots
			}
			return s, d, true
		}
	}
	return 0, 0, false
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	rng     *rand.Rand
	stopped bool
	// stepHook, when non-nil, is invoked before each event fires. Used by
	// tests to observe the trace.
	stepHook func(Time)
	fired    uint64
	// daemonFired counts the subset of fired events that were daemon work.
	// Background ticks keep firing up to whatever instant a run loop (or a
	// shard window boundary) stops at, so their count depends on the shard
	// layout; foreground-only counts are the shard-invariant quantity.
	daemonFired uint64
	pending     int // live (scheduled, not fired, not cancelled) events
	// daemonPending counts the subset of pending events that are daemon
	// (background) work; Run/RunUntil stop when pending == daemonPending.
	daemonPending int
	// recurrings tracks live Every handles so RunUntil's clock bump can
	// re-arm ticks it jumped past (see rearmStaleRecurrings).
	recurrings []*Recurring
	// lastFgTime is the timestamp of the most recent foreground (non-daemon)
	// event fired. A windowed run's clock ends at the window boundary, not at
	// the last piece of real work; ShardSet uses this to report the same
	// end-of-simulation time a plain Run would have stopped at.
	lastFgTime Time

	// Tier 0: zero-delay FIFO ring (events with when == now).
	fastq    []*Event
	fastHead int

	// cur holds the events of the instant currently being fired, extracted
	// from the wheel/heap and sorted by seq. They always precede any fastq
	// event scheduled during the same instant (their seqs are older).
	cur    []*Event
	curIdx int
	// scratch is reused by loadInstant for slot extraction.
	scratch []*Event

	// Tier 1: hierarchical timer wheel.
	wheel [wheelLevels]*wheelLevel

	// Tier 2: far-future overflow heap (also the only queue in legacy mode).
	overflow eventHeap

	// pool recycles zero-delay Event objects.
	pool []*Event

	// legacyHeap routes every event through the overflow heap, bypassing the
	// fast path and the wheel. It exists so tests can golden-trace the fast
	// engine against the reference single-tier implementation.
	legacyHeap bool
}

// NewEngine returns an engine with the clock at zero and a deterministic
// random source seeded with seed.
func NewEngine(seed int64) *Engine {
	e := &Engine{rng: rand.New(rand.NewSource(seed))}
	for i := range e.wheel {
		e.wheel[i] = &wheelLevel{}
	}
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsFired reports how many events have executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// ForegroundEventsFired reports how many non-daemon events have executed.
// Unlike EventsFired it excludes background ticks (kswapd and friends),
// whose count depends on where a run or shard window happens to stop, so
// this is the number that stays identical across shard layouts.
func (e *Engine) ForegroundEventsFired() uint64 { return e.fired - e.daemonFired }

// Pending reports how many events are scheduled and not yet fired or
// cancelled. It is O(1): the engine maintains a live-event counter updated
// on every schedule, fire, and cancel.
func (e *Engine) Pending() int { return e.pending }

// ForegroundPending reports the pending events that are not daemon work —
// the count whose reaching zero ends a Run. The shard coordinator sums it
// across engines to decide global termination.
func (e *Engine) ForegroundPending() int { return e.pending - e.daemonPending }

// LastForegroundTime reports when the most recent non-daemon event fired.
// After a drained Run this equals Now(); after a windowed run (RunUntil)
// the clock sits at the window boundary and this is the time Run would
// have stopped at.
func (e *Engine) LastForegroundTime() Time { return e.lastFgTime }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// a discrete-event simulation cannot rewind its clock, and silently clamping
// would hide bugs in the caller's time arithmetic.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *Event
	if t == e.now && !e.legacyHeap {
		// Zero-delay fast path: pooled event, FIFO ring.
		if n := len(e.pool); n > 0 {
			ev = e.pool[n-1]
			e.pool[n-1] = nil
			e.pool = e.pool[:n-1]
			ev.when, ev.seq, ev.fn, ev.state, ev.daemon = t, e.seq, fn, evPending, false
		} else {
			ev = &Event{when: t, seq: e.seq, fn: fn, eng: e, index: -1, pooled: true}
		}
		e.seq++
		e.pending++
		e.fastq = append(e.fastq, ev)
		return ev
	}
	ev = &Event{when: t, seq: e.seq, fn: fn, eng: e, index: -1}
	e.seq++
	e.pending++
	e.schedule(ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// schedule places a timed event on the wheel tier matching its delay, or the
// overflow heap beyond the wheel horizon (always the heap in legacy mode).
func (e *Engine) schedule(ev *Event) {
	if e.legacyHeap {
		e.overflow.push(ev)
		return
	}
	// Pick the shallowest level where the event's block is within the
	// 256-slot window of now's block. Comparing block indices (not raw
	// deltas) guarantees each slot ever holds a single block's events: two
	// events sharing a slot have block indices congruent mod 256 and both
	// within 255 of now's block, hence equal.
	for level := 0; level < wheelLevels; level++ {
		shift := uint(wheelBits * level)
		if (ev.when>>shift)-(e.now>>shift) < wheelSlots {
			e.wheel[level].insert(int(ev.when>>shift)&wheelMask, ev)
			return
		}
	}
	e.overflow.push(ev)
}

// nextTime reports the earliest pending event time without firing anything.
func (e *Engine) nextTime() (Time, bool) {
	if e.curIdx < len(e.cur) || e.fastHead < len(e.fastq) {
		// Skip over cancelled entries: they must not advance the clock.
		for i := e.curIdx; i < len(e.cur); i++ {
			if e.cur[i].state == evPending {
				return e.now, true
			}
		}
		for i := e.fastHead; i < len(e.fastq); i++ {
			if e.fastq[i].state == evPending {
				return e.now, true
			}
		}
	}
	best := Time(-1)
	// Each level: the first occupied slot in circular block order is the
	// level's earliest block; its cached min is the candidate. The cached
	// min is a lower bound (cancellations can leave it stale low), which the
	// caller tolerates: loading a stale instant extracts and re-files the
	// slot, firing nothing.
	for k := 0; k < wheelLevels; k++ {
		w := e.wheel[k]
		from := (int(e.now) >> (wheelBits * k)) & wheelMask
		if k == 0 {
			from = (from + 1) & wheelMask
		}
		if slot, _, ok := w.nextOccupied(from); ok {
			if t := w.slotMin[slot]; best < 0 || t < best {
				best = t
			}
		}
	}
	if t, ok := e.heapMin(); ok && (best < 0 || t < best) {
		best = t
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// clearSlot empties a slot, dropping any remaining (cancelled) events.
func (e *Engine) clearSlot(w *wheelLevel, slot int) {
	s := w.slots[slot]
	for i := range s {
		s[i] = nil
	}
	w.slots[slot] = s[:0]
	w.unmark(slot)
}

// heapMin reports the minimum live event time in the overflow heap, lazily
// removing cancelled events from its top.
func (e *Engine) heapMin() (Time, bool) {
	for len(e.overflow) > 0 {
		if e.overflow[0].state != evPending {
			e.overflow.pop()
			continue
		}
		return e.overflow[0].when, true
	}
	return 0, false
}

// loadInstant gathers every event scheduled for exactly t from the wheel
// and the heap into cur, sorted by seq, and advances the clock to t if any
// live event was found (cancelled events must not move the clock). Events
// sharing a wheel slot but scheduled for a later time are re-filed (this is
// the wheel's cascade, performed exactly when the clock reaches the slot;
// re-filing also recomputes slot minimums left stale by cancellations).
func (e *Engine) loadInstant(t Time) {
	e.cur = e.cur[:0]
	e.curIdx = 0
	for k := 0; k < wheelLevels; k++ {
		w := e.wheel[k]
		slot := int(t>>(wheelBits*k)) & wheelMask
		if len(w.slots[slot]) == 0 {
			continue
		}
		// Move the slot contents to a scratch list so re-filed leftovers can
		// reuse the slot's backing array.
		e.scratch = append(e.scratch[:0], w.slots[slot]...)
		e.clearSlot(w, slot)
		for i, ev := range e.scratch {
			e.scratch[i] = nil
			if ev.state != evPending {
				e.recycle(ev)
				continue
			}
			if ev.when == t {
				e.cur = append(e.cur, ev)
				continue
			}
			e.schedule(ev)
		}
	}
	for len(e.overflow) > 0 {
		top := e.overflow[0]
		if top.state != evPending {
			e.overflow.pop()
			continue
		}
		if top.when != t {
			break
		}
		e.cur = append(e.cur, e.overflow.pop())
	}
	// Events may come from several tiers; restore global FIFO order.
	insertionSortBySeq(e.cur)
	if len(e.cur) > 0 {
		e.now = t
	}
}

// insertionSortBySeq sorts a small, mostly-ordered batch in place without
// allocating.
func insertionSortBySeq(evs []*Event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].seq < evs[j-1].seq; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// fire runs one event's callback.
func (e *Engine) fire(ev *Event) {
	fn := ev.fn
	ev.fn = nil
	ev.state = evFired
	e.pending--
	if ev.daemon {
		e.daemonPending--
		e.daemonFired++
	} else {
		e.lastFgTime = e.now
	}
	if ev.pooled {
		e.pool = append(e.pool, ev)
	}
	if e.stepHook != nil {
		e.stepHook(e.now)
	}
	e.fired++
	fn()
}

// recycle returns a cancelled pooled event to the pool.
func (e *Engine) recycle(ev *Event) {
	if ev.pooled {
		ev.fn = nil
		e.pool = append(e.pool, ev)
	}
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool { return e.step(maxTime) }

// maxTime is the no-deadline sentinel for step.
const maxTime = Time(1<<63 - 1)

// step fires the next pending event with timestamp <= deadline. The
// deadline is re-checked every time a candidate instant is derived: the
// per-slot cached minimums are only lower bounds (cancellations leave them
// stale low), so a single nextTime() answer must never authorize firing
// whatever live event comes next — only an exact instant may fire.
func (e *Engine) step(deadline Time) bool {
	for {
		// Instant events extracted from the wheel fire before fastq events
		// of the same instant: their seqs are strictly older (they were
		// scheduled before the clock reached this instant). Both queues hold
		// events at exactly e.now.
		if (e.curIdx < len(e.cur) || e.fastHead < len(e.fastq)) && e.now > deadline {
			return false
		}
		for e.curIdx < len(e.cur) {
			ev := e.cur[e.curIdx]
			e.cur[e.curIdx] = nil
			e.curIdx++
			if ev.state != evPending {
				e.recycle(ev)
				continue
			}
			e.fire(ev)
			return true
		}
		for e.fastHead < len(e.fastq) {
			ev := e.fastq[e.fastHead]
			e.fastq[e.fastHead] = nil
			e.fastHead++
			if e.fastHead == len(e.fastq) {
				e.fastq = e.fastq[:0]
				e.fastHead = 0
			}
			if ev.state != evPending {
				e.recycle(ev)
				continue
			}
			e.fire(ev)
			return true
		}
		if e.legacyHeap {
			for len(e.overflow) > 0 {
				if e.overflow[0].state != evPending {
					e.overflow.pop()
					continue
				}
				if e.overflow[0].when > deadline {
					return false
				}
				ev := e.overflow.pop()
				e.now = ev.when
				e.fire(ev)
				return true
			}
			return false
		}
		t, ok := e.nextTime()
		if !ok || t > deadline {
			return false
		}
		if t <= e.now {
			// An instant at or before now can only hold events that were
			// cancelled before a RunUntil clock bump jumped past them
			// (the wheel's cached slot minimums do not see cancellation).
			// Sweep the instant: loadInstant drops cancelled events and
			// re-files live slot-mates with later timestamps; only a live
			// event genuinely in the past breaks the queue invariant.
			e.loadInstant(t)
			if e.curIdx < len(e.cur) {
				panic(fmt.Sprintf("sim: queue invariant broken: next event at %v with now %v", t, e.now))
			}
			continue
		}
		e.loadInstant(t)
	}
}

// Run fires events until the queue drains (only daemon events left) or
// Stop is called. Daemon events still fire while foreground events remain
// — they just cannot keep the simulation alive on their own.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.pending > e.daemonPending && e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, leaving later events
// queued, and advances the clock to deadline. Unlike Run, daemon events
// keep firing through the whole window even when no foreground work
// remains — the deadline already bounds termination, and background
// work like kswapd must run during idle windows (that is its job).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && e.step(deadline) {
	}
	if e.now < deadline {
		e.now = deadline
	}
	// A Stop() mid-window can leave daemon ticks armed at or before the
	// bumped clock; re-file them after now so a later Run/Step never
	// finds an event in the past.
	e.rearmStaleRecurrings()
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// peek reports the next event time; kept for tests mirroring the historical
// API.
func (e *Engine) peek() (Time, bool) { return e.nextTime() }
