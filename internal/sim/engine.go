// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock in nanoseconds and an event queue
// ordered by (time, insertion sequence), so events scheduled for the same
// instant fire in FIFO order and every run with the same inputs produces
// exactly the same trace. All simulation state is owned by the goroutine
// that calls Run; cooperating simulated processes (see Proc) are scheduled
// one at a time, so user code never needs locks.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Common durations, mirroring time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders the time with an adaptive unit, e.g. "12.5us".
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/1e3)
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	default:
		return fmt.Sprintf("%.3fs", float64(t)/1e9)
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it before it fires.
type Event struct {
	when      Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 once popped or cancelled
	cancelled bool
}

// When reports the simulated time at which the event will fire.
func (ev *Event) When() Time { return ev.when }

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or was already cancelled) is a no-op. Cancel reports whether the
// event was still pending.
func (ev *Event) Cancel() bool {
	if ev == nil || ev.cancelled || ev.index < 0 {
		return false
	}
	ev.cancelled = true
	return true
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
	// stepHook, when non-nil, is invoked before each event fires. Used by
	// tests to observe the trace.
	stepHook func(Time)
	fired    uint64
}

// NewEngine returns an engine with the clock at zero and a deterministic
// random source seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsFired reports how many events have executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending reports how many events are scheduled and not yet fired or
// cancelled.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// a discrete-event simulation cannot rewind its clock, and silently clamping
// would hide bugs in the caller's time arithmetic.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{when: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// Step fires the next pending event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.when
		if e.stepHook != nil {
			e.stepHook(e.now)
		}
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, leaving later events
// queued, and advances the clock to deadline.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() (Time, bool) {
	for len(e.events) > 0 {
		if e.events[0].cancelled {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0].when, true
	}
	return 0, false
}
