package sim

import "fmt"

// Proc is a simulated process: a goroutine whose execution is interleaved
// with the event loop such that exactly one of {engine, some proc} runs at a
// time. Blocking operations (Sleep, Completion.Wait, channel helpers) park
// the goroutine and hand control back to the engine, which resumes it when
// the corresponding event fires. Because handoff is strictly sequential the
// whole simulation stays deterministic and data-race free without locks.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	parked chan struct{}
	done   bool
}

// Name returns the label the process was started with.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Go starts fn as a simulated process. The process begins executing at the
// current simulated time (as an immediate event) and may outlive the caller's
// stack frame; Run drives it to completion along with everything else.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	started := false
	e.After(0, func() {
		if started {
			return
		}
		started = true
		go func() {
			<-p.resume
			fn(p)
			p.done = true
			p.parked <- struct{}{}
		}()
		p.run()
	})
	return p
}

// run transfers control to the process goroutine and waits until it parks
// again or finishes. It must be called from the event-loop goroutine.
func (p *Proc) run() {
	p.resume <- struct{}{}
	<-p.parked
}

// park suspends the process until a subsequent event calls run. It must be
// called from the process goroutine.
func (p *Proc) park() {
	p.parked <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d nanoseconds of simulated time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Proc.Sleep negative duration %d", d))
	}
	p.eng.After(d, p.run)
	p.park()
}

// Yield reschedules the process at the current time, letting other events
// and processes scheduled for this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Completion is a one-shot future that processes can block on and event
// handlers can complete. The zero value is ready to use.
type Completion struct {
	done    bool
	err     error
	waiters []func()
}

// Done reports whether Complete has been called.
func (c *Completion) Done() bool { return c.done }

// Err returns the error the completion finished with, if any.
func (c *Completion) Err() error { return c.err }

// Complete marks the completion done and wakes all waiters (as immediate
// events, preserving FIFO order). Completing twice panics: it means two
// owners thought they were responsible for the same request.
func (c *Completion) Complete(e *Engine, err error) {
	if c.done {
		panic("sim: Completion completed twice")
	}
	c.done = true
	c.err = err
	for _, w := range c.waiters {
		e.After(0, w)
	}
	c.waiters = nil
}

// OnDone registers fn to run when the completion finishes (immediately, as
// an event, if it already has).
func (c *Completion) OnDone(e *Engine, fn func()) {
	if c.done {
		e.After(0, fn)
		return
	}
	c.waiters = append(c.waiters, fn)
}

// Wait blocks the process until the completion is done and returns its error.
func (c *Completion) Wait(p *Proc) error {
	if c.done {
		return c.err
	}
	c.waiters = append(c.waiters, p.run)
	p.park()
	return c.err
}

// WaitAll blocks until every completion in cs is done and returns the first
// non-nil error encountered (in slice order).
func WaitAll(p *Proc, cs ...*Completion) error {
	for _, c := range cs {
		c.Wait(p)
	}
	for _, c := range cs {
		if c.err != nil {
			return c.err
		}
	}
	return nil
}

// Queue is an unbounded FIFO that simulated processes can block on. Items
// are delivered in insertion order; waiting processes are woken in arrival
// order.
//
// Wake-one semantics are Mesa-style: Push wakes one waiter, but the wake is
// a hint, not a handoff — a TryPop interloper (or another waiter) may take
// the item before the woken process runs. The woken process re-checks, and
// on failure re-parks on the waiter list, where the next Push wakes it
// again; a losing waiter is never stranded (see wakeone_test.go).
type Queue[T any] struct {
	items   []T
	waiters []func()
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push appends an item and wakes the oldest waiter, if any.
func (q *Queue[T]) Push(e *Engine, v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		e.After(0, w)
	}
}

// TryPop removes and returns the head item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Pop blocks the process until an item is available, then removes and
// returns it.
func (q *Queue[T]) Pop(p *Proc) T {
	for {
		if v, ok := q.TryPop(); ok {
			return v
		}
		q.waiters = append(q.waiters, p.run)
		p.park()
	}
}

// Semaphore is a counting semaphore for simulated processes. Like Queue,
// wakes are Mesa-style hints: a woken acquirer that loses its permit to a
// TryAcquire interloper re-parks and is re-woken by the next Release.
type Semaphore struct {
	avail   int
	waiters []func()
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{avail: n} }

// Available reports the current number of permits.
func (s *Semaphore) Available() int { return s.avail }

// Acquire blocks the process until a permit is available and takes it.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail <= 0 {
		s.waiters = append(s.waiters, p.run)
		p.park()
	}
	s.avail--
}

// TryAcquire takes a permit without blocking, reporting success.
func (s *Semaphore) TryAcquire() bool {
	if s.avail <= 0 {
		return false
	}
	s.avail--
	return true
}

// Release returns a permit and wakes the oldest waiter, if any.
func (s *Semaphore) Release(e *Engine) {
	s.avail++
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		e.After(0, w)
	}
}
