package sim

import "testing"

// Wake-one semantics audit: Queue.Push and Semaphore.Release wake exactly
// one waiter per item/permit, Mesa-style — the woken waiter re-checks the
// condition and may find that a TryPop/TryAcquire interloper (or an earlier
// waiter) took the item between the wake being scheduled and the waiter
// running. The contract under test: such a waiter re-parks on the waiter
// list and IS re-woken by the next Push/Release. A stranded waiter (parked
// forever while items/permits flow) would deadlock the simulation.

// TestQueueWokenWaiterLosesToTryPopInterloper: the wake is in flight when
// an interloper steals the item; the next Push must re-wake the waiter.
func TestQueueWokenWaiterLosesToTryPopInterloper(t *testing.T) {
	e := NewEngine(1)
	q := &Queue[int]{}
	var got []int
	done := false
	e.Go("waiter", func(p *Proc) {
		got = append(got, q.Pop(p))
		done = true
	})
	e.After(10, func() {
		q.Push(e, 1) // wakes the waiter (event in flight)...
		v, ok := q.TryPop()
		if !ok || v != 1 {
			t.Errorf("interloper TryPop = %d,%v, want 1,true", v, ok)
		}
	})
	e.After(20, func() {
		// The waiter saw an empty queue and re-parked; this Push must
		// re-wake it.
		q.Push(e, 2)
	})
	e.Run()
	if !done || len(got) != 1 || got[0] != 2 {
		t.Fatalf("waiter done=%v got=%v, want [2]", done, got)
	}
}

// TestQueueSecondPushWhileWakeInFlight: a Push arriving while a woken
// waiter has not yet run sees an empty waiter list and wakes nobody; the
// already-woken waiter must consume that item when it runs.
func TestQueueSecondPushWhileWakeInFlight(t *testing.T) {
	e := NewEngine(1)
	q := &Queue[int]{}
	var got []int
	e.Go("waiter", func(p *Proc) {
		got = append(got, q.Pop(p))
		got = append(got, q.Pop(p))
	})
	e.After(10, func() {
		q.Push(e, 1)
		// Steal item 1 and push 2 and 3 before the wake fires: the woken
		// waiter must find them.
		q.TryPop()
		q.Push(e, 2)
		q.Push(e, 3)
	})
	e.Run()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("got %v, want [2 3]", got)
	}
}

// TestQueueTwoWaitersInterleavedSteals: with several parked waiters and
// repeated steals, every pushed-and-not-stolen item must reach some waiter
// and no waiter may be left parked while items remain.
func TestQueueTwoWaitersInterleavedSteals(t *testing.T) {
	e := NewEngine(1)
	q := &Queue[int]{}
	var got []int
	for w := 0; w < 2; w++ {
		e.Go("waiter", func(p *Proc) {
			for i := 0; i < 2; i++ {
				got = append(got, q.Pop(p))
			}
		})
	}
	next := 1
	for i := 0; i < 4; i++ {
		steal := i%2 == 0
		e.After(Duration(10*(i+1)), func() {
			q.Push(e, next)
			next++
			if steal {
				// Steal it and push a replacement: the woken waiter races
				// the replacement's wake.
				q.TryPop()
				q.Push(e, next)
				next++
			}
		})
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("waiters consumed %d items (%v), want 4", len(got), got)
	}
	if q.Len() != 0 {
		t.Fatalf("queue still holds %d items", q.Len())
	}
}

// TestSemaphoreWokenWaiterLosesToTryAcquireInterloper: same audit for
// Semaphore.Release vs TryAcquire.
func TestSemaphoreWokenWaiterLosesToTryAcquireInterloper(t *testing.T) {
	e := NewEngine(1)
	s := NewSemaphore(0)
	acquired := false
	e.Go("waiter", func(p *Proc) {
		s.Acquire(p)
		acquired = true
	})
	e.After(10, func() {
		s.Release(e) // wakes the waiter...
		if !s.TryAcquire() {
			t.Error("interloper TryAcquire failed")
		}
	})
	e.After(20, func() {
		// Waiter re-parked; this Release must re-wake it.
		s.Release(e)
	})
	e.Run()
	if !acquired {
		t.Fatal("waiter stranded: never acquired after second Release")
	}
	if s.Available() != 0 {
		t.Fatalf("Available = %d, want 0", s.Available())
	}
}

// TestSemaphoreReleaseBurstWhileWakesInFlight: N permits released
// back-to-back with N parked waiters must unblock all of them even though
// every wake is scheduled before any waiter runs.
func TestSemaphoreReleaseBurstWhileWakesInFlight(t *testing.T) {
	e := NewEngine(1)
	s := NewSemaphore(0)
	acquired := 0
	for w := 0; w < 3; w++ {
		e.Go("waiter", func(p *Proc) {
			s.Acquire(p)
			acquired++
		})
	}
	e.After(10, func() {
		s.Release(e)
		s.Release(e)
		s.Release(e)
	})
	e.Run()
	if acquired != 3 {
		t.Fatalf("acquired = %d, want 3", acquired)
	}
}
