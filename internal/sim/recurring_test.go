package sim

import "testing"

// TestRecurringFiresWhileForegroundWorkExists: a recurring daemon ticks in
// timestamp order alongside foreground events, and Run stops as soon as the
// foreground queue drains — the daemon alone cannot keep the engine alive.
func TestRecurringFiresWhileForegroundWorkExists(t *testing.T) {
	eng := NewEngine(1)
	var ticks []Time
	r := eng.Every(100, func() { ticks = append(ticks, eng.Now()) })
	fired := false
	eng.After(350, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("foreground event did not fire")
	}
	// Ticks at 100, 200, 300 precede the foreground event at 350. The tick
	// armed for 400 must not have fired: only daemon work remained.
	want := []Time{100, 200, 300}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
	if eng.Now() != 350 {
		t.Fatalf("clock stopped at %v, want 350", eng.Now())
	}
	if r.Runs() != 3 {
		t.Fatalf("Runs() = %d, want 3", r.Runs())
	}
}

// TestRecurringForegroundWorkFromTick: foreground events scheduled by a
// daemon tick extend the run until they complete (kswapd submitting kernel
// work must see that work execute).
func TestRecurringForegroundWorkFromTick(t *testing.T) {
	eng := NewEngine(1)
	var done []Time
	eng.Every(100, func() {
		if eng.Now() == 100 {
			// Scheduled while the foreground event at 150 is still pending;
			// it lands at 300, past every other foreground event, and must
			// still execute before Run returns.
			eng.After(200, func() { done = append(done, eng.Now()) })
		}
	})
	eng.After(150, func() {})
	eng.Run()
	if len(done) != 1 || done[0] != 300 {
		t.Fatalf("daemon-scheduled foreground work = %v, want [300]", done)
	}
}

// TestRecurringStop: after Stop the callback never fires again, and the
// cancelled daemon event does not wedge the pending accounting.
func TestRecurringStop(t *testing.T) {
	eng := NewEngine(1)
	count := 0
	var r *Recurring
	r = eng.Every(10, func() {
		count++
		if count == 2 {
			r.Stop()
		}
	})
	eng.After(100, func() {})
	eng.Run()
	if count != 2 {
		t.Fatalf("ticks after Stop: count = %d, want 2", count)
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending = %d after drain", eng.Pending())
	}
}

// TestRunUntilFiresDaemonsThroughWindow: unlike Run, RunUntil keeps
// firing daemon ticks through the whole bounded window even with no
// foreground work — kswapd must reclaim during idle windows; the
// deadline already guarantees termination.
func TestRunUntilFiresDaemonsThroughWindow(t *testing.T) {
	eng := NewEngine(1)
	ticks := 0
	eng.Every(10, func() { ticks++ })
	eng.After(25, func() {})
	eng.RunUntil(100)
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10 (every 10ns through the window)", ticks)
	}
	if eng.Now() != 100 {
		t.Fatalf("clock = %v, want deadline 100", eng.Now())
	}
	// A later Run sees the tick armed for 110 but no foreground work:
	// it must return without panicking on a past event and without
	// spinning the daemon.
	eng.Run()
	if ticks != 10 {
		t.Fatalf("Run fired daemon-only ticks: %d", ticks)
	}
}

// TestRunAfterStopMidWindow: Stop() during RunUntil leaves the recurring
// tick armed inside the window while the clock bumps to the deadline;
// the tick must be re-armed past the new now so a later Run does not
// find an event in the past (queue-invariant panic).
func TestRunAfterStopMidWindow(t *testing.T) {
	eng := NewEngine(1)
	var ticks []Time
	eng.Every(100, func() { ticks = append(ticks, eng.Now()) })
	eng.After(50, func() { eng.Stop() })
	eng.RunUntil(10_000)
	if eng.Now() != 10_000 {
		t.Fatalf("clock = %v, want 10000", eng.Now())
	}
	if len(ticks) != 0 {
		t.Fatalf("ticks fired before Stop took effect: %v", ticks)
	}
	fired := false
	eng.After(500, func() { fired = true })
	eng.Run() // panicked before the re-arm fix
	if !fired {
		t.Fatal("post-bump foreground event did not fire")
	}
	want := []Time{10_100, 10_200, 10_300, 10_400}
	if len(ticks) != len(want) {
		t.Fatalf("post-bump ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("post-bump ticks = %v, want %v", ticks, want)
		}
	}
}

// TestCancelledEventSweptAfterClockBump: a plain timed event cancelled
// before a RunUntil clock bump leaves a stale entry in a past wheel
// slot; the dispatch loop must sweep it instead of panicking on the
// queue invariant.
func TestCancelledEventSweptAfterClockBump(t *testing.T) {
	eng := NewEngine(1)
	ev := eng.After(200, func() { t.Fatal("cancelled event fired") })
	eng.After(50, func() { eng.Stop() })
	ev.Cancel()
	eng.RunUntil(10_000)
	fired := false
	eng.After(500, func() { fired = true })
	eng.Run() // panicked before the past-instant sweep
	if !fired {
		t.Fatal("foreground event after the bump did not fire")
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending = %d after drain", eng.Pending())
	}
}
