package sim

import "fmt"

// Recurring is a periodic background task on the engine — the modeling
// primitive for kernel daemons like kswapd that run forever on a timer.
// Its events are daemon events: they fire in timestamp order like any
// other event while foreground work exists, but they never keep
// Run/RunUntil alive on their own, so a simulation still terminates when
// the workload drains.
type Recurring struct {
	eng     *Engine
	period  Duration
	fn      func()
	ev      *Event
	stopped bool
	runs    uint64
}

// Every schedules fn to run every period nanoseconds of simulated time,
// starting one period from now, as daemon work. Stop the returned handle
// to cancel it.
func (e *Engine) Every(period Duration, fn func()) *Recurring {
	if period <= 0 {
		panic(fmt.Sprintf("sim: recurring period %d", period))
	}
	r := &Recurring{eng: e, period: period, fn: fn}
	e.recurrings = append(e.recurrings, r)
	r.arm()
	return r
}

// rearmStaleRecurrings re-schedules recurring tasks whose pending tick
// was left at or before now by a RunUntil clock bump (RunUntil stops
// early when only daemon events remain, then advances the clock to the
// deadline). Without this, a later Run/Step would find an event in the
// past and trip the queue invariant.
func (e *Engine) rearmStaleRecurrings() {
	for _, r := range e.recurrings {
		if !r.stopped && r.ev != nil && r.ev.state == evPending && r.ev.when <= e.now {
			r.ev.Cancel()
			r.arm()
		}
	}
}

func (r *Recurring) arm() {
	r.ev = r.eng.At(r.eng.now+r.period, r.tick)
	r.ev.daemon = true
	r.eng.daemonPending++
}

func (r *Recurring) tick() {
	if r.stopped {
		return
	}
	r.runs++
	r.fn()
	if !r.stopped {
		r.arm()
	}
}

// Stop cancels the recurring task; the callback will not fire again.
// Stopping an already-stopped task is a no-op.
func (r *Recurring) Stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	r.ev.Cancel()
	for i, x := range r.eng.recurrings {
		if x == r {
			r.eng.recurrings = append(r.eng.recurrings[:i], r.eng.recurrings[i+1:]...)
			break
		}
	}
}

// Runs reports how many times the callback has fired.
func (r *Recurring) Runs() uint64 { return r.runs }
