package sim

import (
	"errors"
	"testing"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(30, func() { got = append(got, 3) })
	e.After(10, func() { got = append(got, 1) })
	e.After(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.After(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("event %d fired as %d; same-timestamp events must be FIFO", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var trace []Time
	e.After(10, func() {
		trace = append(trace, e.Now())
		e.After(5, func() { trace = append(trace, e.Now()) })
		e.After(0, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	if len(trace) != 3 || trace[0] != 10 || trace[1] != 10 || trace[2] != 15 {
		t.Fatalf("trace = %v, want [10 10 15]", trace)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(10, func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("Cancel returned false for pending event")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Now() != 0 {
		// cancelled events must not advance the clock
		t.Fatalf("Now = %v after cancelled-only run, want 0", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, d := range []Duration{5, 10, 15, 20} {
		d := d
		e.After(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(12)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Fatalf("fired = %v, want [5 10]", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %v, want 12", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("after Run fired = %v, want all 4", fired)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.After(1, func() { count++; e.Stop() })
	e.After(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt the loop)", count)
	}
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d after resuming, want 2", count)
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := NewEngine(1)
	e.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineDeterminism(t *testing.T) {
	run := func() ([]Time, uint64) {
		e := NewEngine(42)
		var trace []Time
		e.stepHook = func(tm Time) { trace = append(trace, tm) }
		for i := 0; i < 50; i++ {
			d := Duration(e.Rand().Intn(1000))
			e.After(d, func() {
				if e.Rand().Intn(2) == 0 {
					e.After(Duration(e.Rand().Intn(100)), func() {})
				}
			})
		}
		e.Run()
		return trace, e.EventsFired()
	}
	t1, n1 := run()
	t2, n2 := run()
	if n1 != n2 || len(t1) != len(t2) {
		t.Fatalf("runs differ: %d/%d events", n1, n2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestProcSleepAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(100)
		wake = p.Now()
	})
	e.Run()
	if wake != 100 {
		t.Fatalf("woke at %v, want 100", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10)
		trace = append(trace, "a10")
		p.Sleep(20)
		trace = append(trace, "a30")
	})
	e.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15)
		trace = append(trace, "b15")
	})
	e.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestCompletionWaitBeforeAndAfter(t *testing.T) {
	e := NewEngine(1)
	c := &Completion{}
	errBoom := errors.New("boom")
	var early, late error
	earlySet := false
	e.Go("early", func(p *Proc) {
		early = c.Wait(p) // parks: not yet complete
		earlySet = true
	})
	e.After(50, func() { c.Complete(e, errBoom) })
	e.Go("late", func(p *Proc) {
		p.Sleep(100)
		late = c.Wait(p) // already complete: returns immediately
	})
	e.Run()
	if !earlySet || early != errBoom || late != errBoom {
		t.Fatalf("early=%v late=%v, want both %v", early, late, errBoom)
	}
	if !c.Done() || c.Err() != errBoom {
		t.Fatal("completion state wrong")
	}
}

func TestCompletionDoubleCompletePanics(t *testing.T) {
	e := NewEngine(1)
	c := &Completion{}
	c.Complete(e, nil)
	defer func() {
		if recover() == nil {
			t.Error("double Complete did not panic")
		}
	}()
	c.Complete(e, nil)
}

func TestWaitAllReturnsFirstError(t *testing.T) {
	e := NewEngine(1)
	a, b, c := &Completion{}, &Completion{}, &Completion{}
	errB := errors.New("b failed")
	var got error
	e.Go("w", func(p *Proc) { got = WaitAll(p, a, b, c) })
	e.After(10, func() { c.Complete(e, nil) })
	e.After(20, func() { a.Complete(e, nil) })
	e.After(30, func() { b.Complete(e, errB) })
	e.Run()
	if got != errB {
		t.Fatalf("WaitAll = %v, want %v", got, errB)
	}
}

func TestQueueBlockingPop(t *testing.T) {
	e := NewEngine(1)
	q := &Queue[int]{}
	var got []int
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	e.After(10, func() { q.Push(e, 1) })
	e.After(20, func() { q.Push(e, 2); q.Push(e, 3) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestQueueTryPop(t *testing.T) {
	e := NewEngine(1)
	q := &Queue[string]{}
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue returned ok")
	}
	q.Push(e, "x")
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	v, ok := q.TryPop()
	if !ok || v != "x" {
		t.Fatalf("TryPop = %q,%v", v, ok)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine(1)
	sem := NewSemaphore(2)
	active, maxActive := 0, 0
	for i := 0; i < 5; i++ {
		e.Go("worker", func(p *Proc) {
			sem.Acquire(p)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(10)
			active--
			sem.Release(e)
		})
	}
	e.Run()
	if maxActive != 2 {
		t.Fatalf("maxActive = %d, want 2", maxActive)
	}
	if sem.Available() != 2 {
		t.Fatalf("Available = %d, want 2", sem.Available())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine(1)
	sem := NewSemaphore(1)
	if !sem.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if sem.TryAcquire() {
		t.Fatal("second TryAcquire succeeded")
	}
	sem.Release(e)
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{12_500, "12.500us"},
		{3_200_000, "3.200ms"},
		{12_000_000_000, "12.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine(1)
	a := e.After(10, func() {})
	e.After(20, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	a.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after cancel, want 1", e.Pending())
	}
}
