package sim

import (
	"fmt"
	"sort"
)

// ShardSet coordinates several engines (shards) under conservative
// parallel discrete-event synchronization. Each shard owns a disjoint
// slice of the simulated world (nodes of a cluster) and runs its own
// event queue on its own goroutine; the only interaction between shards
// is cross-shard events posted through Post, which the coordinator
// delivers at window barriers.
//
// The synchronization protocol is the classical conservative-lookahead
// window scheme: if every cross-shard interaction takes at least
// `lookahead` of simulated time to arrive (for an Ethernet fabric, the
// one-way link latency — a frame sent at t is never delivered before
// t+lookahead), then all shards can run a window [T, T+lookahead)
// concurrently without ever receiving an event in their past. At the end
// of each window the coordinator collects the events produced, sorts
// them into a canonical order, schedules them on their destination
// engines, and opens the next window at the new global minimum event
// time.
//
// Determinism. The same seed must produce the same per-node trace
// regardless of shard count or GOMAXPROCS. Two properties deliver that:
//
//  1. Window boundaries are shard-count invariant: each window starts at
//     the global minimum pending event time, which depends only on the
//     global event set — identical in every sharding.
//  2. Cross-shard events are delivered in a canonical order, never in
//     goroutine arrival order: each barrier sorts its batch by
//     (arrival time, destination node, send time, source node, source
//     sequence) before scheduling, so the (time, seq) order every engine
//     assigns to arrivals is a pure function of the simulation state.
//     Because consecutive windows are disjoint in time, batch k's send
//     times all precede batch k+1's, and arming batches in order keeps
//     same-instant arrivals from different windows in canonical order
//     too.
type ShardSet struct {
	lookahead Duration
	engines   []*Engine

	// outboxes[i] collects the cross events shard i posts during the
	// current window. Only shard i's goroutine appends during a window;
	// the coordinator drains between windows.
	outboxes [][]CrossEvent

	// windowEnd is the deadline of the window currently running; posted
	// events must arrive strictly after it (the lookahead invariant).
	windowEnd Time

	// barrierHooks run between windows, while every shard is parked.
	// Cluster glue uses them to publish cross-shard snapshots (e.g. MPI
	// rank completion flags) with a happens-before edge to the next
	// window.
	barrierHooks []func()

	workers []*shardWorker
	scratch []CrossEvent
	active  []int
}

// CrossEvent is one event crossing a shard boundary: Fn runs on the
// destination shard's engine at time When. The remaining fields order
// simultaneous arrivals canonically (see the determinism notes above).
type CrossEvent struct {
	// When is the arrival time; it must be at least lookahead after the
	// time it was posted at.
	When Time
	// SendTime is when the source shard posted the event.
	SendTime Time
	// SrcShard and DstShard address the shards; SrcNode and DstNode the
	// simulated nodes (the finer tie-break key).
	SrcShard, DstShard int
	SrcNode, DstNode   int
	// SrcSeq is a per-source-node monotonic sequence number, unique among
	// events with equal (When, DstNode, SendTime, SrcNode).
	SrcSeq uint64
	Fn     func()
}

// NewShardSet builds a coordinator over the given engines. The lookahead
// must be positive: it is the guaranteed minimum delay of every cross-
// shard event, and a zero window would serialize the shards event by
// event.
func NewShardSet(lookahead Duration, engines []*Engine) *ShardSet {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive shard lookahead %d", lookahead))
	}
	if len(engines) == 0 {
		panic("sim: shard set needs at least one engine")
	}
	return &ShardSet{
		lookahead: lookahead,
		engines:   engines,
		outboxes:  make([][]CrossEvent, len(engines)),
		windowEnd: -1,
	}
}

// NumShards reports the number of engines in the set.
func (ss *ShardSet) NumShards() int { return len(ss.engines) }

// Engine returns shard i's engine.
func (ss *ShardSet) Engine(i int) *Engine { return ss.engines[i] }

// Lookahead reports the synchronization window width.
func (ss *ShardSet) Lookahead() Duration { return ss.lookahead }

// AddBarrierHook registers fn to run at every window barrier (and once
// before the first window), on the coordinator goroutine while all
// shards are parked.
func (ss *ShardSet) AddBarrierHook(fn func()) {
	ss.barrierHooks = append(ss.barrierHooks, fn)
}

// Post queues a cross-shard event for delivery at the next barrier. It
// must be called from ev.SrcShard's goroutine (during that shard's
// window) and ev.When must respect the lookahead invariant: an event may
// never arrive inside the window that produced it.
func (ss *ShardSet) Post(ev CrossEvent) {
	if ev.When <= ss.windowEnd {
		panic(fmt.Sprintf("sim: cross-shard event at %v violates lookahead window ending %v",
			ev.When, ss.windowEnd))
	}
	ss.outboxes[ev.SrcShard] = append(ss.outboxes[ev.SrcShard], ev)
}

// LastForegroundTime reports when the last non-daemon event fired across
// all shards — the windowed-run equivalent of Engine.Now() after a
// drained Run.
func (ss *ShardSet) LastForegroundTime() Time {
	var last Time
	for _, e := range ss.engines {
		if t := e.LastForegroundTime(); t > last {
			last = t
		}
	}
	return last
}

// EventsFired sums the events dispatched across all shards.
func (ss *ShardSet) EventsFired() uint64 {
	var n uint64
	for _, e := range ss.engines {
		n += e.EventsFired()
	}
	return n
}

// ForegroundEventsFired sums the non-daemon events dispatched across all
// shards — the shard-layout-invariant event count (daemon ticks run up to
// each layout's final window boundary, so their totals differ).
func (ss *ShardSet) ForegroundEventsFired() uint64 {
	var n uint64
	for _, e := range ss.engines {
		n += e.ForegroundEventsFired()
	}
	return n
}

// foregroundPending sums the live non-daemon events across shards.
func (ss *ShardSet) foregroundPending() int {
	n := 0
	for _, e := range ss.engines {
		n += e.ForegroundPending()
	}
	return n
}

// nextTime reports the earliest pending event time across shards.
func (ss *ShardSet) nextTime() (Time, bool) {
	best, ok := Time(0), false
	for _, e := range ss.engines {
		if t, has := e.nextTime(); has && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// Run drives all shards until no foreground work remains anywhere (the
// parallel equivalent of Engine.Run on every shard).
func (ss *ShardSet) Run() { ss.run(maxTime) }

// RunUntil drives all shards until no foreground work remains or the
// deadline is reached, then advances every shard's clock to the deadline
// (the parallel equivalent of Engine.RunUntil).
func (ss *ShardSet) RunUntil(deadline Time) { ss.run(deadline) }

// run is the coordinator loop: deliver, barrier, pick window, execute.
// Every window is anchored at the global minimum pending event time and
// extends one lookahead (clamped to the deadline) — never wider, so the
// lookahead invariant holds for every event fired inside it, daemon work
// included.
func (ss *ShardSet) run(deadline Time) {
	ss.startWorkers()
	defer ss.stopWorkers()
	for {
		ss.deliver()
		for _, h := range ss.barrierHooks {
			h()
		}
		next, ok := ss.nextTime()
		if deadline == maxTime && (!ok || ss.foregroundPending() == 0) {
			// Unbounded runs stop like Engine.Run: when only daemon work
			// remains. (A daemon may revive foreground work mid-window —
			// e.g. kswapd completing a stalled allocation — which keeps
			// the loop going, exactly as a single engine would.)
			break
		}
		if !ok || next > deadline {
			// Bounded runs mirror Engine.RunUntil: daemons fire through
			// the whole budget and every clock ends at the deadline
			// (forceAll: even shards with nothing left must advance).
			ss.runWindow(deadline, true)
			ss.deliver()
			for _, h := range ss.barrierHooks {
				h()
			}
			break
		}
		end := next + ss.lookahead - 1
		if end > deadline {
			end = deadline
		}
		ss.runWindow(end, false)
	}
}

// deliver drains the outboxes into the destination engines in canonical
// order. It runs between windows, when no shard goroutine is active.
func (ss *ShardSet) deliver() {
	batch := ss.scratch[:0]
	for i, out := range ss.outboxes {
		batch = append(batch, out...)
		for j := range out {
			out[j] = CrossEvent{}
		}
		ss.outboxes[i] = out[:0]
	}
	if len(batch) == 0 {
		ss.scratch = batch
		return
	}
	sort.Slice(batch, func(i, j int) bool {
		a, b := &batch[i], &batch[j]
		if a.When != b.When {
			return a.When < b.When
		}
		if a.DstNode != b.DstNode {
			return a.DstNode < b.DstNode
		}
		if a.SendTime != b.SendTime {
			return a.SendTime < b.SendTime
		}
		if a.SrcNode != b.SrcNode {
			return a.SrcNode < b.SrcNode
		}
		return a.SrcSeq < b.SrcSeq
	})
	for i := range batch {
		ev := &batch[i]
		ss.engines[ev.DstShard].At(ev.When, ev.Fn)
		*ev = CrossEvent{}
	}
	ss.scratch = batch[:0]
}

// runWindow executes one window, dispatching only the shards that have an
// event inside it — an idle shard's clock simply stays behind until it
// next has work (cross-shard arming validates against windowEnd, never an
// engine clock, so a lagging clock is unobservable). forceAll overrides
// the skip for the bounded-run clock bump, where every shard must end at
// the deadline. A single active shard runs inline, sparing the channel
// round trip; two or more run concurrently on their workers.
func (ss *ShardSet) runWindow(end Time, forceAll bool) {
	ss.windowEnd = end
	active := ss.active[:0]
	for i, e := range ss.engines {
		if forceAll {
			active = append(active, i)
			continue
		}
		if next, has := e.nextTime(); has && next <= end {
			active = append(active, i)
		}
	}
	ss.active = active
	if len(ss.engines) == 1 || len(active) == 1 {
		for _, i := range active {
			ss.engines[i].RunUntil(end)
		}
		return
	}
	for _, i := range active {
		ss.workers[i].start <- end
	}
	var failure any
	for _, i := range active {
		if r := <-ss.workers[i].done; r != nil && failure == nil {
			failure = r
		}
	}
	if failure != nil {
		panic(failure)
	}
}

// shardWorker is one shard's persistent window-execution goroutine. A
// panic inside a window (protocol bug, simulation invariant) is captured
// and re-raised on the coordinator goroutine after the barrier, so it
// surfaces on the caller of Run like a single-engine panic would.
type shardWorker struct {
	eng   *Engine
	start chan Time
	done  chan any
}

func (ss *ShardSet) startWorkers() {
	if len(ss.engines) == 1 || ss.workers != nil {
		return
	}
	for _, e := range ss.engines {
		w := &shardWorker{eng: e, start: make(chan Time), done: make(chan any)}
		ss.workers = append(ss.workers, w)
		go func(w *shardWorker) {
			for end := range w.start {
				w.done <- w.runOne(end)
			}
		}(w)
	}
}

func (w *shardWorker) runOne(end Time) (failure any) {
	defer func() {
		if r := recover(); r != nil {
			failure = r
		}
	}()
	w.eng.RunUntil(end)
	return nil
}

func (ss *ShardSet) stopWorkers() {
	for _, w := range ss.workers {
		close(w.start)
	}
	ss.workers = nil
}
