package sim

import (
	"fmt"
	"testing"
)

// TestShardSetValidation covers the constructor's argument checks.
func TestShardSetValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("no engines", func() { NewShardSet(10, nil) })
	mustPanic("zero lookahead", func() { NewShardSet(0, []*Engine{NewEngine(1)}) })
}

// TestShardSetPingPong bounces a "message" between two shards: each hop
// posts a cross event one lookahead ahead of the sender's clock. The run
// must drain, visit both shards alternately, and advance time by exactly
// one lookahead per hop.
func TestShardSetPingPong(t *testing.T) {
	const L = Duration(100)
	const hops = 50
	a, b := NewEngine(1), NewEngine(1)
	ss := NewShardSet(L, []*Engine{a, b})
	engines := []*Engine{a, b}

	var times []Time
	var hop func(shard int)
	hop = func(shard int) {
		eng := engines[shard]
		times = append(times, eng.Now())
		if len(times) >= hops {
			return
		}
		next := 1 - shard
		ss.Post(CrossEvent{
			When:     eng.Now() + Time(L),
			SendTime: eng.Now(),
			SrcShard: shard, DstShard: next,
			SrcNode: shard, DstNode: next,
			Fn: func() { hop(next) },
		})
	}
	a.At(10, func() { hop(0) })
	ss.Run()

	if len(times) != hops {
		t.Fatalf("got %d hops, want %d", len(times), hops)
	}
	for i, got := range times {
		if want := Time(10) + Time(i)*Time(L); got != want {
			t.Fatalf("hop %d at t=%d, want %d", i, got, want)
		}
	}
	if got := ss.LastForegroundTime(); got != times[hops-1] {
		t.Errorf("LastForegroundTime = %d, want %d", got, times[hops-1])
	}
	if got := ss.EventsFired(); got != hops {
		t.Errorf("EventsFired = %d, want %d", got, hops)
	}
}

// TestShardSetMergeOrder posts same-instant cross events in scrambled
// call order and checks delivery follows the canonical
// (When, DstNode, SendTime, SrcNode, SrcSeq) sort — the tie-break that
// makes sharded traces independent of outbox arrival order.
func TestShardSetMergeOrder(t *testing.T) {
	const L = Duration(100)
	a, b := NewEngine(1), NewEngine(1)
	ss := NewShardSet(L, []*Engine{a, b})

	var got []string
	post := func(when Time, dstNode int, sendTime Time, srcNode int, seq uint64) {
		tag := fmt.Sprintf("dst%d/st%d/src%d/seq%d", dstNode, sendTime, srcNode, seq)
		ss.Post(CrossEvent{
			When: when, SendTime: sendTime,
			SrcShard: 0, DstShard: 1,
			SrcNode: srcNode, DstNode: dstNode, SrcSeq: seq,
			Fn: func() { got = append(got, tag) },
		})
	}
	a.At(5, func() {
		when := a.Now() + Time(L)
		// Scrambled: canonical order is dst0/seq1, dst0/seq2, dst2/st3,
		// dst2/st4/src0, dst2/st4/src1.
		post(when, 2, 4, 1, 9)
		post(when, 0, 3, 0, 2)
		post(when, 2, 4, 0, 7)
		post(when, 0, 3, 0, 1)
		post(when, 2, 3, 5, 1)
	})
	ss.Run()

	want := []string{
		"dst0/st3/src0/seq1",
		"dst0/st3/src0/seq2",
		"dst2/st3/src5/seq1",
		"dst2/st4/src0/seq7",
		"dst2/st4/src1/seq9",
	}
	if len(got) != len(want) {
		t.Fatalf("delivered %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery[%d] = %s, want %s (full order %v)", i, got[i], want[i], got)
		}
	}
}

// TestShardSetLookaheadViolation checks that posting an event inside the
// current window — a conservative-synchronization bug — panics rather
// than silently delivering late.
func TestShardSetLookaheadViolation(t *testing.T) {
	const L = Duration(100)
	a, b := NewEngine(1), NewEngine(1)
	ss := NewShardSet(L, []*Engine{a, b})
	a.At(10, func() {
		// When == now is inside the window the poster is running in.
		ss.Post(CrossEvent{When: a.Now(), SrcShard: 0, DstShard: 1, Fn: func() {}})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected lookahead-violation panic")
		}
	}()
	ss.Run()
}

// TestShardSetRunUntil checks bounded runs: daemons keep firing through
// the budget, and every shard clock ends exactly at the deadline.
func TestShardSetRunUntil(t *testing.T) {
	const L = Duration(100)
	a, b := NewEngine(1), NewEngine(1)
	ss := NewShardSet(L, []*Engine{a, b})
	ticksA, ticksB := 0, 0
	a.Every(30, func() { ticksA++ })
	b.Every(70, func() { ticksB++ })
	ss.RunUntil(2100)
	if a.Now() != 2100 || b.Now() != 2100 {
		t.Fatalf("clocks at %d/%d, want 2100/2100", a.Now(), b.Now())
	}
	if want := 2100 / 30; ticksA != want {
		t.Errorf("shard A daemon ticked %d times, want %d", ticksA, want)
	}
	if want := 2100 / 70; ticksB != want {
		t.Errorf("shard B daemon ticked %d times, want %d", ticksB, want)
	}
}

// TestShardSetDaemonDoesNotBlockDrain checks the unbounded-run exit
// condition: a recurring daemon alone (no foreground work left) must not
// keep the shard set spinning.
func TestShardSetDaemonDoesNotBlockDrain(t *testing.T) {
	const L = Duration(100)
	a, b := NewEngine(1), NewEngine(1)
	ss := NewShardSet(L, []*Engine{a, b})
	a.Every(10, func() {})
	fired := false
	b.At(500, func() { fired = true })
	done := make(chan struct{})
	go func() { ss.Run(); close(done) }()
	<-done
	if !fired {
		t.Fatal("foreground event never fired")
	}
}

// TestShardSetBarrierHook checks hooks run at synchronization barriers —
// at least once per window round, including the final one.
func TestShardSetBarrierHook(t *testing.T) {
	const L = Duration(100)
	a, b := NewEngine(1), NewEngine(1)
	ss := NewShardSet(L, []*Engine{a, b})
	calls := 0
	ss.AddBarrierHook(func() { calls++ })
	a.At(10, func() {
		ss.Post(CrossEvent{When: a.Now() + Time(L), SrcShard: 0, DstShard: 1, Fn: func() {}})
	})
	ss.Run()
	if calls < 2 {
		t.Fatalf("barrier hook ran %d times, want >= 2", calls)
	}
}
