// Package bench runs the simulator meta-benchmark suite outside `go test`,
// so CI (and `omxsim bench`) can track simulator speed itself — ns per
// simulated µs, events/sec, allocations — as part of the benchmark
// trajectory, writing machine-readable BENCH_PR<N>.json artifacts.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/ethernet"
	"omxsim/internal/imb"
	"omxsim/internal/kv"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/scenario"
	"omxsim/internal/sim"
)

// Baseline pins the pre-optimization reference the acceptance gate compares
// against: the meta-benchmark cell measured at the PR 2 base commit, before
// the event-engine/zero-copy/batched-range work.
type Baseline struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Commit  string  `json:"commit"`
}

// PR2Baseline is BenchmarkSimWallClock (the full Figure 7 OverlappedCache
// 4 MiB PingPong cell) measured at commit 7395822 on the CI reference
// machine class (Xeon @ 2.10GHz): 70.26 ms/op, 87.75 MB and 154266 allocs
// per op.
var PR2Baseline = Baseline{
	Name:    "SimWallClock",
	NsPerOp: 70_256_977,
	Commit:  "7395822",
}

// Result is one benchmark measurement.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_PR<N>.json document.
type Report struct {
	PR                int      `json:"pr"`
	GoOS              string   `json:"goos"`
	GoArch            string   `json:"goarch"`
	Baseline          Baseline `json:"baseline"`
	SpeedupVsBaseline float64  `json:"speedup_vs_baseline"`
	Benchmarks        []Result `json:"benchmarks"`
}

// measure runs body repeatedly until minWall elapses (at least minIters
// times) and returns per-op statistics. metrics receives the last run's
// reported values.
func measure(name string, minIters int, minWall time.Duration, body func(metrics map[string]float64)) Result {
	metrics := make(map[string]float64)
	body(metrics) // warmup, excluded from timing
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	iters := 0
	for time.Since(start) < minWall || iters < minIters {
		body(metrics)
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return Result{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(iters),
		Metrics:     metrics,
	}
}

// SimWallClockCell runs the acceptance-gate cell once — Figure 7
// OverlappedCache, 4 MiB PingPong — and returns the model throughput, the
// simulated time covered, and the events dispatched. BenchmarkSimWallClock
// and `omxsim bench` share this body so the gate benchmark and the JSON
// artifact can never measure different cells.
func SimWallClockCell() (mbps, simMicros float64, events uint64) {
	cl, err := cluster.New(cluster.Config{Nodes: 2, OMX: omx.DefaultConfig(core.Overlapped, true)})
	if err != nil {
		panic(err)
	}
	cl.Run(func(c *mpi.Comm) {
		r := imb.PingPong(c, 4<<20, imb.Iterations(4<<20))
		if c.Rank() == 0 {
			mbps = r.MBps
		}
	})
	return mbps, cl.Eng.Now().Micros(), cl.Eng.EventsFired()
}

// ParallelShards picks the shard count the parallel cell measures:
// GOMAXPROCS, clamped to the cell's 8 nodes (1 shard on a 1-core host —
// the parallel engine cannot beat serial without real cores).
func ParallelShards() int {
	s := runtime.GOMAXPROCS(0)
	if s > 8 {
		s = 8
	}
	if s < 1 {
		s = 1
	}
	return s
}

// SimWallClockParallelCell runs the parallel-engine cell once — an 8-node
// 16-rank pairwise streaming fleet (the fleet-stream scenario's shape) on
// the given shard count — and returns the model throughput, simulated
// time covered, and events dispatched. shards=1 is the serial reference
// the parallel_speedup metric divides by; the statistics are identical at
// every shard count (the determinism tests enforce it), so the two runs
// measure the same work.
func SimWallClockParallelCell(shards int) (mbps, simMicros float64, events uint64) {
	link := ethernet.DefaultLinkConfig()
	link.PropDelay = 2 * sim.Microsecond // switch-hop latency = lookahead window
	cl, err := cluster.New(cluster.Config{
		Nodes:        8,
		RanksPerNode: 2,
		Shards:       shards,
		Link:         &link,
		OMX:          omx.DefaultConfig(core.Overlapped, true),
	})
	if err != nil {
		panic(err)
	}
	const bytes = 1 << 20
	const rounds = 8
	cl.Run(func(c *mpi.Comm) {
		half := c.Size() / 2
		peer := (c.Rank() + half) % c.Size()
		tx := c.Malloc(bytes)
		rx := c.Malloc(bytes)
		c.Barrier()
		start := c.Now()
		for r := 0; r < rounds; r++ {
			if c.Rank() < half {
				c.Send(tx, bytes, peer, 7)
				c.Recv(rx, bytes, peer, 7)
			} else {
				c.Recv(rx, bytes, peer, 7)
				c.Send(tx, bytes, peer, 7)
			}
		}
		c.Barrier()
		if c.Rank() == 0 {
			elapsed := c.Now() - start
			total := float64(rounds) * float64(bytes) * float64(c.Size())
			mbps = total / elapsed.Seconds() / (1 << 20)
		}
	})
	return mbps, cl.Now().Micros(), cl.EventsFired()
}

// benchSink collects kv rank stats without pulling in the scenario layer.
type benchSink struct {
	mu    sync.Mutex
	stash map[string]any
}

func (s *benchSink) Stash(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stash == nil {
		s.stash = make(map[string]any)
	}
	s.stash[key] = v
}

func (s *benchSink) Note(string, ...any) {}

// KVServeCell runs a scaled-down kvserve cell once — one storage server,
// three open-loop Zipfian clients, pinning-cache backend — and returns
// the cluster-wide GET latency percentiles in simulated µs plus the
// events dispatched. The percentiles are simulated quantities, so they
// are deterministic: the guard can hold them to a tight band, turning
// tail-latency regressions on the serving path into bench failures.
func KVServeCell() (p50, p99, p999 float64, events uint64) {
	cl, err := cluster.New(cluster.Config{
		Nodes:        2,
		RanksPerNode: 2,
		OMX:          omx.DefaultConfig(core.Overlapped, true),
	})
	if err != nil {
		panic(err)
	}
	cfg := kv.Config{
		Servers:    1,
		Keys:       32,
		ValueBytes: 64 << 10,
		Theta:      0.9,
		Workers:    4,
		Tenants: []kv.Tenant{
			{Name: "bench", Ops: 60, Rate: 6000, GetFrac: 0.7, MaxInflight: 16},
		},
	}
	sink := &benchSink{}
	cl.Run(func(c *mpi.Comm) {
		kv.Run(c, sink, 1, cfg)
	})
	m := kv.Collect(cfg, 4, func(r int) *kv.Stats {
		st, _ := sink.stash[kv.StashKey(r)].(*kv.Stats)
		return st
	})
	return m.Get.QuantileUS(0.50), m.Get.QuantileUS(0.99), m.Get.QuantileUS(0.999),
		cl.EventsFired()
}

// KVServeFleetCell runs the replicated multi-endpoint serving cell once —
// a two-group cluster (two storage servers with two endpoint lanes each on
// 2-queue NICs, two client nodes) serving a 2-way-replicated keyspace —
// and returns the GET latency percentiles in simulated µs plus the events
// dispatched. This is the fleet-kv I/O path (lanes, RSS steering, replica
// writes) at bench scale: the percentiles are simulated and exact, so the
// guard holds the replicated serving path's tail the way KVServeTail holds
// the single-copy path's.
func KVServeFleetCell() (p50, p99, p999 float64, events uint64) {
	cl, err := cluster.New(cluster.Config{
		Groups: []cluster.NodeGroup{
			{Name: "storage", Nodes: 2, EndpointsPerNode: 2, NICQueues: 2},
			{Name: "clients", Nodes: 2},
		},
		OMX: omx.DefaultConfig(core.Overlapped, true),
	})
	if err != nil {
		panic(err)
	}
	cfg := kv.Config{
		Servers:     2,
		Keys:        64,
		ValueBytes:  64 << 10,
		Theta:       0.9,
		Workers:     4,
		Replication: 2,
		Tenants: []kv.Tenant{
			{Name: "bench", Ops: 40, Rate: 4000, GetFrac: 0.7, MaxInflight: 8},
		},
	}
	sink := &benchSink{}
	cl.Run(func(c *mpi.Comm) {
		kv.Run(c, sink, 1, cfg)
	})
	m := kv.Collect(cfg, 4, func(r int) *kv.Stats {
		st, _ := sink.stash[kv.StashKey(r)].(*kv.Stats)
		return st
	})
	return m.Get.QuantileUS(0.50), m.Get.QuantileUS(0.99), m.Get.QuantileUS(0.999),
		cl.EventsFired()
}

// EngineAfter0Cell performs n zero-delay schedule+fire round trips on a
// fresh engine (the fast-path microbenchmark body).
func EngineAfter0Cell(n int) {
	eng := sim.NewEngine(1)
	fn := func() {}
	for i := 0; i < n; i++ {
		eng.After(0, fn)
		eng.Step()
	}
}

// TimerWheelDelays are the timed-scheduling delays the wheel microbenchmark
// cycles through — the delays the protocol stack actually uses, spanning
// every wheel level.
var TimerWheelDelays = []sim.Duration{150, 5000, 65_000, 2_000_000, 20_000_000}

// EngineTimerWheelCell performs n timed schedule+fire round trips across
// the wheel levels.
func EngineTimerWheelCell(n int) {
	eng := sim.NewEngine(1)
	fn := func() {}
	for i := 0; i < n; i++ {
		eng.After(TimerWheelDelays[i%len(TimerWheelDelays)], fn)
		eng.Step()
	}
}

// SpecCompileSpec is the spec file the SpecCompile cell measures: the
// 1024-node fleet example, the largest shipped spec. The cell only runs
// when the file is present (i.e. `omxsim bench` from the repo root).
const SpecCompileSpec = "examples/fleet-1k.yaml"

// SpecCompileCell parses and compiles one spec source — the whole
// declarative front end: yamlite parse, strict decode, fleet resolution,
// and compilation down to a runnable Scenario. Returns the resolved node
// count so the metric map can record the scale.
func SpecCompileCell(src []byte, file string) int {
	s, err := scenario.LoadSpecData(src, file)
	if err != nil {
		panic(fmt.Sprintf("bench: %s does not compile: %v", file, err))
	}
	nodes := 0
	for _, g := range s.Cluster.Groups {
		nodes += g.Nodes
	}
	if nodes == 0 {
		nodes = s.Cluster.Nodes
	}
	return nodes
}

// specCompile adapts SpecCompileCell to the suite's metric map.
func specCompile(src []byte, file string, metrics map[string]float64) {
	const n = 50
	start := time.Now()
	nodes := 0
	for i := 0; i < n; i++ {
		nodes = SpecCompileCell(src, file)
	}
	wall := time.Since(start)
	metrics["nodes"] = float64(nodes)
	if s := wall.Seconds(); s > 0 {
		metrics["compiles/sec"] = n / s
	}
}

// simWallClock adapts SimWallClockCell to the suite's metric map.
func simWallClock(metrics map[string]float64) {
	start := time.Now()
	mbps, simMicros, events := SimWallClockCell()
	wall := time.Since(start)
	metrics["MiB/s"] = mbps
	if simMicros > 0 {
		metrics["ns/sim-us"] = float64(wall.Nanoseconds()) / simMicros
	}
	if s := wall.Seconds(); s > 0 {
		metrics["events/sec"] = float64(events) / s
	}
}

// simWallClockParallel adapts SimWallClockParallelCell to the suite's
// metric map.
func simWallClockParallel(shards int, metrics map[string]float64) {
	start := time.Now()
	mbps, simMicros, events := SimWallClockParallelCell(shards)
	wall := time.Since(start)
	metrics["MiB/s"] = mbps
	if simMicros > 0 {
		metrics["ns/sim-us"] = float64(wall.Nanoseconds()) / simMicros
	}
	if s := wall.Seconds(); s > 0 {
		metrics["events/sec"] = float64(events) / s
	}
}

// kvServeTail adapts KVServeCell to the suite's metric map. The *_us
// metrics are simulated time — identical every run — while ns_per_op and
// events/sec track how fast the host executes the cell.
func kvServeTail(metrics map[string]float64) {
	start := time.Now()
	p50, p99, p999, events := KVServeCell()
	wall := time.Since(start)
	metrics["p50_us"] = p50
	metrics["p99_us"] = p99
	metrics["p999_us"] = p999
	if s := wall.Seconds(); s > 0 {
		metrics["events/sec"] = float64(events) / s
	}
}

// kvServeFleet adapts KVServeFleetCell to the suite's metric map.
func kvServeFleet(metrics map[string]float64) {
	start := time.Now()
	p50, p99, p999, events := KVServeFleetCell()
	wall := time.Since(start)
	metrics["p50_us"] = p50
	metrics["p99_us"] = p99
	metrics["p999_us"] = p999
	if s := wall.Seconds(); s > 0 {
		metrics["events/sec"] = float64(events) / s
	}
}

// engineAfter0 measures the zero-delay fast path in isolation.
func engineAfter0(metrics map[string]float64) {
	const n = 2_000_000
	start := time.Now()
	EngineAfter0Cell(n)
	metrics["events/sec"] = n / time.Since(start).Seconds()
}

// engineTimerWheel measures timed scheduling across the wheel levels.
func engineTimerWheel(metrics map[string]float64) {
	const n = 500_000
	start := time.Now()
	EngineTimerWheelCell(n)
	metrics["events/sec"] = n / time.Since(start).Seconds()
}

// figure7Cell runs one extra trajectory cell (Regular policy) so the JSON
// tracks the unoptimized-policy path too.
func figure7Regular(metrics map[string]float64) {
	cl, err := cluster.New(cluster.Config{Nodes: 2, OMX: omx.DefaultConfig(core.PinEachComm, false)})
	if err != nil {
		panic(err)
	}
	var mbps float64
	cl.Run(func(c *mpi.Comm) {
		r := imb.PingPong(c, 1<<20, imb.Iterations(1<<20))
		if c.Rank() == 0 {
			mbps = r.MBps
		}
	})
	metrics["MiB/s"] = mbps
}

// Run executes the suite. quick shortens the measurement windows (for CI);
// the acceptance-relevant numbers are identical in shape.
func Run(pr int, quick bool) Report {
	minWall := 3 * time.Second
	minIters := 10
	if quick {
		minWall = 500 * time.Millisecond
		minIters = 3
	}
	// The parallel cell is measured twice — once on one shard (the serial
	// reference) and once on GOMAXPROCS shards — so the artifact carries
	// parallel_speedup as data wherever it ran (≈1.0 on a single-core
	// host, the real multiplier on multi-core CI).
	shards := ParallelShards()
	serial := measure("SimWallClockParallelSerial", minIters, minWall/2, func(m map[string]float64) {
		simWallClockParallel(1, m)
	})
	par := measure("SimWallClockParallel", minIters, minWall/2, func(m map[string]float64) {
		simWallClockParallel(shards, m)
	})
	par.Metrics["shards"] = float64(shards)
	if par.NsPerOp > 0 {
		par.Metrics["parallel_speedup"] = serial.NsPerOp / par.NsPerOp
	}
	results := []Result{
		measure("SimWallClock", minIters, minWall, simWallClock),
		serial,
		par,
		measure("EngineAfter0", 1, minWall/4, engineAfter0),
		measure("EngineTimerWheel", 1, minWall/4, engineTimerWheel),
		measure("Figure7Regular1MB", minIters, minWall/2, figure7Regular),
		measure("KVServeTail", minIters, minWall/2, kvServeTail),
		measure("KVServeFleet", minIters, minWall/2, kvServeFleet),
	}
	// The declarative front end: parse+compile the 1024-node fleet spec.
	// Only measured when the file is reachable (bench from the repo root),
	// so the artifact stays producible from other working directories.
	if src, err := os.ReadFile(SpecCompileSpec); err == nil {
		results = append(results, measure("SpecCompile", minIters, minWall/4,
			func(m map[string]float64) { specCompile(src, SpecCompileSpec, m) }))
	}
	rep := Report{
		PR:         pr,
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		Baseline:   PR2Baseline,
		Benchmarks: results,
	}
	for _, r := range results {
		if r.Name == rep.Baseline.Name && r.NsPerOp > 0 {
			rep.SpeedupVsBaseline = rep.Baseline.NsPerOp / r.NsPerOp
		}
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadReport reads a previously written BENCH_PR<N>.json artifact.
func LoadReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return r, nil
}

// Guard compares the current measurements against a prior artifact and
// errors when a gated benchmark is more than slack times slower — the
// perf-acceptance gate that keeps changes on the fault/pin hot path (like
// the reclaim hooks) from silently eroding the engine-overhaul win.
// SimWallClock is mandatory in both reports; SimWallClockParallel is
// gated only when the baseline artifact carries it (pre-parallel-engine
// artifacts like BENCH_PR2.json do not). Slack absorbs CI machine-class
// variance; 1.75 is generous enough that only a genuine regression (not
// noise) trips it.
func Guard(cur, prior Report, slack float64) error {
	if slack <= 0 {
		slack = 1.75
	}
	find := func(r Report, name string) (Result, bool) {
		for _, b := range r.Benchmarks {
			if b.Name == name {
				return b, true
			}
		}
		return Result{}, false
	}
	gate := func(name string) error {
		p, ok := find(prior, name)
		if !ok || p.NsPerOp <= 0 {
			return fmt.Errorf("bench guard: baseline artifact has no usable %s measurement", name)
		}
		c, ok := find(cur, name)
		if !ok {
			return fmt.Errorf("bench guard: current run has no %s measurement", name)
		}
		if c.NsPerOp > p.NsPerOp*slack {
			return fmt.Errorf("bench guard: %s %.1f ms/op is %.2fx the %.1f ms/op baseline (allowed %.2fx)",
				name, c.NsPerOp/1e6, c.NsPerOp/p.NsPerOp, p.NsPerOp/1e6, slack)
		}
		return nil
	}
	if err := gate("SimWallClock"); err != nil {
		return err
	}
	if _, ok := find(prior, "SimWallClockParallel"); ok {
		if err := gate("SimWallClockParallel"); err != nil {
			return err
		}
	}
	// SpecCompile is gated only when both artifacts carry it: the cell is
	// skipped entirely when examples/fleet-1k.yaml is out of reach, and
	// pre-spec artifacts (BENCH_PR8.json and earlier) never measured it.
	if _, ok := find(prior, "SpecCompile"); ok {
		if _, cok := find(cur, "SpecCompile"); cok {
			if err := gate("SpecCompile"); err != nil {
				return err
			}
		}
	}
	// KVServeTail's p99_us is simulated time, not wall clock: it is exactly
	// reproducible, so any growth at all is a real serving-path tail
	// regression, not machine noise. A hair of slack (5%) still absorbs
	// intentional protocol retunes that legitimately shift one bucket.
	if p, ok := find(prior, "KVServeTail"); ok && p.Metrics["p99_us"] > 0 {
		c, ok := find(cur, "KVServeTail")
		if !ok {
			return fmt.Errorf("bench guard: current run has no KVServeTail measurement")
		}
		if got, base := c.Metrics["p99_us"], p.Metrics["p99_us"]; got > base*1.05 {
			return fmt.Errorf("bench guard: KVServeTail p99 %.1fus is %.2fx the %.1fus baseline (simulated, allowed 1.05x)",
				got, got/base, base)
		}
	}
	// KVServeFleet gates the replicated multi-endpoint serving path the
	// same way, but only when both artifacts carry the cell (pre-replication
	// artifacts, BENCH_PR9.json and earlier, never measured it).
	if p, ok := find(prior, "KVServeFleet"); ok && p.Metrics["p99_us"] > 0 {
		if c, cok := find(cur, "KVServeFleet"); cok {
			if got, base := c.Metrics["p99_us"], p.Metrics["p99_us"]; got > base*1.05 {
				return fmt.Errorf("bench guard: KVServeFleet p99 %.1fus is %.2fx the %.1fus baseline (simulated, allowed 1.05x)",
					got, got/base, base)
			}
		}
	}
	return nil
}
