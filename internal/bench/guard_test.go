package bench

import (
	"strings"
	"testing"
)

func reportWith(ns float64) Report {
	return Report{Benchmarks: []Result{{Name: "SimWallClock", NsPerOp: ns}}}
}

func TestGuardPassesWithinSlack(t *testing.T) {
	if err := Guard(reportWith(20e6), reportWith(18e6), 1.75); err != nil {
		t.Fatalf("guard tripped inside slack: %v", err)
	}
}

func TestGuardTripsOnRegression(t *testing.T) {
	err := Guard(reportWith(40e6), reportWith(18e6), 1.75)
	if err == nil {
		t.Fatal("2.2x regression passed the guard")
	}
	if !strings.Contains(err.Error(), "SimWallClock") {
		t.Fatalf("unhelpful guard error: %v", err)
	}
}

func TestGuardRejectsUnusableBaseline(t *testing.T) {
	if err := Guard(reportWith(20e6), Report{}, 1.75); err == nil {
		t.Fatal("missing baseline measurement accepted")
	}
	if err := Guard(Report{}, reportWith(18e6), 1.75); err == nil {
		t.Fatal("missing current measurement accepted")
	}
}

func TestGuardAgainstCheckedInArtifact(t *testing.T) {
	prior, err := LoadReport("../../BENCH_PR2.json")
	if err != nil {
		t.Fatalf("checked-in artifact unreadable: %v", err)
	}
	if _, ok := func() (Result, bool) {
		for _, b := range prior.Benchmarks {
			if b.Name == "SimWallClock" {
				return b, true
			}
		}
		return Result{}, false
	}(); !ok {
		t.Fatal("BENCH_PR2.json lost its SimWallClock entry — the CI guard would be vacuous")
	}
}
