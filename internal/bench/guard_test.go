package bench

import (
	"strings"
	"testing"
)

func reportWith(ns float64) Report {
	return Report{Benchmarks: []Result{{Name: "SimWallClock", NsPerOp: ns}}}
}

func TestGuardPassesWithinSlack(t *testing.T) {
	if err := Guard(reportWith(20e6), reportWith(18e6), 1.75); err != nil {
		t.Fatalf("guard tripped inside slack: %v", err)
	}
}

func TestGuardTripsOnRegression(t *testing.T) {
	err := Guard(reportWith(40e6), reportWith(18e6), 1.75)
	if err == nil {
		t.Fatal("2.2x regression passed the guard")
	}
	if !strings.Contains(err.Error(), "SimWallClock") {
		t.Fatalf("unhelpful guard error: %v", err)
	}
}

func TestGuardRejectsUnusableBaseline(t *testing.T) {
	if err := Guard(reportWith(20e6), Report{}, 1.75); err == nil {
		t.Fatal("missing baseline measurement accepted")
	}
	if err := Guard(Report{}, reportWith(18e6), 1.75); err == nil {
		t.Fatal("missing current measurement accepted")
	}
}

func reportWithKV(ns, p99 float64) Report {
	r := reportWith(ns)
	r.Benchmarks = append(r.Benchmarks, Result{
		Name:    "KVServeTail",
		NsPerOp: ns,
		Metrics: map[string]float64{"p99_us": p99},
	})
	return r
}

func TestGuardKVServeTail(t *testing.T) {
	// Identical simulated p99: passes.
	if err := Guard(reportWithKV(20e6, 800), reportWithKV(18e6, 800), 1.75); err != nil {
		t.Fatalf("guard tripped on identical simulated tail: %v", err)
	}
	// >5% simulated-tail growth: trips even though wall clock is fine.
	err := Guard(reportWithKV(20e6, 900), reportWithKV(18e6, 800), 1.75)
	if err == nil {
		t.Fatal("12% simulated p99 regression passed the guard")
	}
	if !strings.Contains(err.Error(), "KVServeTail") {
		t.Fatalf("unhelpful guard error: %v", err)
	}
	// Baseline without the cell (pre-kvserve artifacts): not gated.
	if err := Guard(reportWithKV(20e6, 900), reportWith(18e6), 1.75); err != nil {
		t.Fatalf("pre-kvserve baseline should not gate the tail: %v", err)
	}
	// Baseline has the cell, current run lost it: that is an error.
	if err := Guard(reportWith(20e6), reportWithKV(18e6, 800), 1.75); err == nil {
		t.Fatal("dropped KVServeTail measurement passed the guard")
	}
}

func TestGuardAgainstCheckedInArtifact(t *testing.T) {
	prior, err := LoadReport("../../BENCH_PR2.json")
	if err != nil {
		t.Fatalf("checked-in artifact unreadable: %v", err)
	}
	if _, ok := func() (Result, bool) {
		for _, b := range prior.Benchmarks {
			if b.Name == "SimWallClock" {
				return b, true
			}
		}
		return Result{}, false
	}(); !ok {
		t.Fatal("BENCH_PR2.json lost its SimWallClock entry — the CI guard would be vacuous")
	}
}
