// reclaim.go makes memory pressure emergent instead of injected: a
// bounded PhysMem keeps active/inactive frame LRU lists (maintained on
// fault and access), exposes kswapd-style watermarks, and reclaims
// unpinned frames to swap when allocations approach capacity — either
// proactively (a kswapd pass driven by recurring kernel work at a higher
// layer) or synchronously (direct reclaim inside the fault path when
// alloc hits capacity). Pinned frames resist: reclaim scans them, counts
// the resist, and rotates them back — which is exactly the paper's cost
// model (pinned pages are unreclaimable, so pinning fights the kernel's
// memory manager). Every reclaimed page fires the InvalidateSwap MMU
// notifier before the mapping changes, so the driver/cache/ODP machinery
// reacts just as it does for injected swap-outs.
//
// Like the rest of the package this is state and semantics only: CPU
// time for scanning and writeback is charged by the caller through the
// reclaim hook (see PhysMem.SetReclaimHook).
package vm

// Frame LRU list membership.
const (
	lruNone uint8 = iota
	lruInactive
	lruActive
)

// lruList is an intrusive doubly-linked list of frames, newest at head.
type lruList struct {
	head, tail *Frame
	count      int
}

func (l *lruList) pushFront(f *Frame) {
	f.lruPrev = nil
	f.lruNext = l.head
	if l.head != nil {
		l.head.lruPrev = f
	}
	l.head = f
	if l.tail == nil {
		l.tail = f
	}
	l.count++
}

func (l *lruList) remove(f *Frame) {
	if f.lruPrev != nil {
		f.lruPrev.lruNext = f.lruNext
	} else {
		l.head = f.lruNext
	}
	if f.lruNext != nil {
		f.lruNext.lruPrev = f.lruPrev
	} else {
		l.tail = f.lruPrev
	}
	f.lruPrev, f.lruNext = nil, nil
	l.count--
}

// ReclaimStats counts the reclaim subsystem's activity, mirroring the
// /proc/vmstat fields the eBPF-mm instrumentation reads.
type ReclaimStats struct {
	PgScan        uint64 // frames examined by reclaim scans
	PgSteal       uint64 // frames reclaimed to swap
	PinnedResists uint64 // scanned frames that resisted because they were pinned
	KswapdRuns    uint64 // kswapd passes that found the low watermark breached
	KswapdSteals  uint64 // frames stolen by kswapd passes
	DirectStalls  uint64 // direct-reclaim stalls on the allocation path
	DirectSteals  uint64 // frames stolen by direct reclaim
	Failures      uint64 // allocations that failed even after direct reclaim
}

// directReclaimBatch is how many frames one direct-reclaim stall tries to
// steal (Linux's SWAP_CLUSTER_MAX): enough headroom that the faulting
// path does not stall on every single allocation.
const directReclaimBatch = 32

// SetWatermarks configures the free-frame thresholds in frames: kswapd
// should run while free < low and reclaim until free >= high. Zero values
// pick defaults from the capacity (low = capacity/8, high = capacity/4,
// both at least 1); panics on an unbounded PhysMem or low > high.
func (pm *PhysMem) SetWatermarks(low, high int) {
	if pm.capacity <= 0 {
		panic("vm: watermarks on unbounded physical memory")
	}
	if low <= 0 {
		low = pm.capacity / 8
		if low < 1 {
			low = 1
		}
	}
	if high <= 0 {
		high = pm.capacity / 4
		if high < low {
			high = low
		}
	}
	if low > high {
		panic("vm: low watermark above high watermark")
	}
	pm.lowWater, pm.highWater = low, high
}

// LowWatermark reports the kswapd wake threshold in free frames.
func (pm *PhysMem) LowWatermark() int { return pm.lowWater }

// HighWatermark reports the kswapd reclaim target in free frames.
func (pm *PhysMem) HighWatermark() int { return pm.highWater }

// FreeFrames reports capacity - FramesInUse (meaningless when unbounded).
func (pm *PhysMem) FreeFrames() int { return pm.capacity - pm.inUse }

// NeedsKswapd reports whether free frames sit below the low watermark —
// the wake condition a recurring kswapd checks each tick.
func (pm *PhysMem) NeedsKswapd() bool {
	return pm.capacity > 0 && pm.lowWater > 0 && pm.FreeFrames() < pm.lowWater
}

// ReclaimStats returns a snapshot of the reclaim counters.
func (pm *PhysMem) ReclaimStats() ReclaimStats { return pm.rstats }

// SwappedPages reports PTEs currently holding swapped-out contents —
// per-reference, like swap_duplicate'd slots across mms: a fork-shared
// swap slot counts once per aliasing address space (the copy-on-reference
// data itself is stored once). The count balances to exactly zero at
// teardown, which is what the leak assertions rely on.
func (pm *PhysMem) SwappedPages() int { return pm.swappedPages }

// SwappedBytes reports the bytes of page data referenced from swap,
// counted per swap reference like SwappedPages (zero-fill pages swap out
// without materializing data and contribute nothing).
func (pm *PhysMem) SwappedBytes() int { return pm.swappedBytes }

// OccupiedPages reports memory occupancy the frame counter alone
// under-reports during pressure: live frames plus swap references. After
// a fork, COW-shared swap slots count once per address space (see
// SwappedPages), so this is an upper bound on unique resident+swapped
// data.
func (pm *PhysMem) OccupiedPages() int { return pm.inUse + pm.swappedPages }

// PeakOccupied reports the high-water mark of OccupiedPages.
func (pm *PhysMem) PeakOccupied() int { return pm.peakOccupied }

// SetReclaimHook registers fn to run after every reclaim pass with the
// scan/steal counts (direct marks allocation-path stalls, as opposed to
// kswapd passes). The node layer uses it to charge the scan and writeback
// CPU time as kernel work — state changes here are immediate, cost is the
// caller's, like everywhere else in the package.
func (pm *PhysMem) SetReclaimHook(fn func(scanned, stolen int, direct bool)) {
	pm.onReclaim = fn
}

// swapAdded accounts one PTE entering swap.
func (pm *PhysMem) swapAdded(data []byte) {
	pm.swappedPages++
	pm.swappedBytes += len(data)
	if occ := pm.OccupiedPages(); occ > pm.peakOccupied {
		pm.peakOccupied = occ
	}
}

// swapRemoved accounts one PTE leaving swap (swap-in or teardown).
func (pm *PhysMem) swapRemoved(data []byte) {
	pm.swappedPages--
	pm.swappedBytes -= len(data)
}

// lruTracked reports whether frame LRU maintenance is on: only bounded
// memory pays the (small) list cost on the fault path.
func (pm *PhysMem) lruTracked() bool { return pm.capacity > 0 }

// installFrame records the frame's reverse mapping (owner address space
// and virtual address) and enters it on the active LRU list, as the fault
// path does for new anonymous pages.
func (as *AddressSpace) installFrame(f *Frame, a Addr) {
	pm := as.phys
	if !pm.lruTracked() {
		return
	}
	f.owner = as
	f.vaddr = PageAlignDown(a)
	if f.onLRU != lruNone {
		pm.lruRemove(f)
	}
	pm.active.pushFront(f)
	f.onLRU = lruActive
}

// touchFrame records an access: frames aged into the inactive list are
// promoted back to active (the second-touch working-set signal), and the
// reverse mapping is refreshed to the last accessor — so a frame whose
// original owner unmapped it (e.g. a fork child now sole mapper) becomes
// reclaimable again at its next touch instead of rotating forever. A
// frame whose surviving mapper never touches it keeps a cleared/stale
// reverse mapping and stays resident; a full rmap would be needed to
// reclaim it.
func (as *AddressSpace) touchFrame(f *Frame, a Addr) {
	f.owner = as
	f.vaddr = PageAlignDown(a)
	if f.onLRU == lruInactive {
		pm := as.phys
		pm.inactive.remove(f)
		pm.active.pushFront(f)
		f.onLRU = lruActive
	}
}

// lruRemove detaches the frame from whichever list holds it.
func (pm *PhysMem) lruRemove(f *Frame) {
	switch f.onLRU {
	case lruInactive:
		pm.inactive.remove(f)
	case lruActive:
		pm.active.remove(f)
	}
	f.onLRU = lruNone
}

// rotate moves a scanned-but-unreclaimable frame to the active head so
// the scan cursor makes progress past it.
func (pm *PhysMem) rotate(f *Frame) {
	pm.lruRemove(f)
	pm.active.pushFront(f)
	f.onLRU = lruActive
}

// shrink is the core reclaim loop: it scans the inactive list from the
// oldest end (refilling it from the active list as needed), reclaims
// frames with no pins, and rotates resisting frames. It stops after
// stealing target frames or scanning every frame once.
func (pm *PhysMem) shrink(target int) (scanned, stolen int) {
	if target <= 0 {
		return 0, 0
	}
	max := pm.inactive.count + pm.active.count
	for stolen < target && scanned < max {
		f := pm.inactive.tail
		if f == nil {
			// Refill: age the oldest active frames into the inactive list.
			if pm.active.tail == nil {
				break
			}
			for i := 0; i < target*2 && pm.active.tail != nil; i++ {
				g := pm.active.tail
				pm.active.remove(g)
				pm.inactive.pushFront(g)
				g.onLRU = lruInactive
			}
			continue
		}
		scanned++
		pm.rstats.PgScan++
		if f.pinRefs > 0 {
			// The paper's core claim: pinned pages are unreclaimable. The
			// scan pays for visiting them and moves on.
			pm.rstats.PinnedResists++
			pm.rotate(f)
			continue
		}
		if f.kernRefs > 0 {
			// Transient in-kernel reference (breakCOW/Migrate mid-copy):
			// unreclaimable right now, but not a user pin — no resist.
			pm.rotate(f)
			continue
		}
		if f.mapRefs != 1 || f.owner == nil || !f.owner.reclaimFrame(f) {
			// COW-shared, unmapped-in-flight, or stale reverse mapping:
			// not reclaimable through the single-owner fast path.
			pm.rotate(f)
			continue
		}
		stolen++
		pm.rstats.PgSteal++
	}
	return scanned, stolen
}

// KswapdPass is one wakeup of the background reclaimer: if free frames
// sit below the low watermark it reclaims toward the high watermark. The
// caller (recurring kernel work on the sim engine) charges the CPU time
// reported through the reclaim hook.
func (pm *PhysMem) KswapdPass() (scanned, stolen int) {
	if !pm.NeedsKswapd() {
		return 0, 0
	}
	pm.rstats.KswapdRuns++
	pm.inReclaim = true
	scanned, stolen = pm.shrink(pm.highWater - pm.FreeFrames())
	pm.inReclaim = false
	pm.rstats.KswapdSteals += uint64(stolen)
	if pm.onReclaim != nil {
		pm.onReclaim(scanned, stolen, false)
	}
	return scanned, stolen
}

// reclaimFrame swaps out the single mapping of f, verifying the reverse
// mapping is current and firing the InvalidateSwap notifier before the
// mapping changes. It reports whether the frame was reclaimed.
func (as *AddressSpace) reclaimFrame(f *Frame) bool {
	a := f.vaddr
	vi, ok := as.findVMA(a)
	if !ok {
		return false
	}
	p := as.vmas[vi].pteAt(a)
	if !p.present || p.frame != f {
		return false // stale reverse mapping
	}
	as.notify(a, a+PageSize, InvalidateSwap)
	// The notifier may have unpinned other pages but cannot have pinned
	// this one (callbacks only drop pins); re-check defensively anyway.
	if f.pinRefs != 0 || f.kernRefs != 0 || p.frame != f || !p.present {
		return false
	}
	as.swapOutPTE(p)
	return true
}

// allocFrame is the allocation entry for every fault-path caller: it
// tries the plain allocator first and falls back to synchronous direct
// reclaim when physical memory is exhausted — the stall Linux charges to
// the faulting thread. Reclaim's own allocations never recurse
// (PF_MEMALLOC semantics): a nested failure propagates ErrNoMemory.
func (as *AddressSpace) allocFrame() (*Frame, error) {
	pm := as.phys
	f, err := pm.alloc()
	if err == nil {
		return f, nil
	}
	if pm.inReclaim {
		return nil, err
	}
	pm.inReclaim = true
	pm.rstats.DirectStalls++
	scanned, stolen := pm.shrink(directReclaimBatch)
	pm.inReclaim = false
	pm.rstats.DirectSteals += uint64(stolen)
	if pm.onReclaim != nil {
		pm.onReclaim(scanned, stolen, true)
	}
	if stolen == 0 {
		pm.rstats.Failures++
		return nil, err
	}
	return pm.alloc()
}
