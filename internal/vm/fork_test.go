package vm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForkSharesThenIsolates(t *testing.T) {
	phys := NewPhysMem(0)
	parent := NewAddressSpace(1, phys)
	addr, _ := parent.Mmap(4 * PageSize)
	data := []byte("shared between parent and child")
	parent.Write(addr, data)
	framesBefore := phys.FramesInUse()

	child, err := parent.Fork(2)
	if err != nil {
		t.Fatal(err)
	}
	// COW: no new frames yet.
	if phys.FramesInUse() != framesBefore {
		t.Fatalf("fork allocated %d frames eagerly", phys.FramesInUse()-framesBefore)
	}
	got := make([]byte, len(data))
	child.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatal("child does not see parent data")
	}
	// Child write isolates; parent unaffected.
	child.Write(addr, []byte("CHILD"))
	parent.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatal("child write leaked into parent")
	}
	if child.COWBreaks() != 1 {
		t.Fatalf("child COW breaks = %d, want 1", child.COWBreaks())
	}
	// Parent write on another page also COW-breaks.
	parent.Write(addr+PageSize, []byte("PARENT"))
	ccheck := make([]byte, 6)
	child.Read(addr+PageSize, ccheck)
	if string(ccheck) == "PARENT" {
		t.Fatal("parent write leaked into child")
	}
}

func TestForkFiresCOWNotifierOnParentWrite(t *testing.T) {
	// The §2.1 scenario: a registered driver must hear about the COW
	// duplication triggered by a post-fork write.
	parent := NewAddressSpace(1, NewPhysMem(0))
	addr, _ := parent.Mmap(PageSize)
	parent.Write(addr, []byte("x"))
	rec := &recordingNotifier{}
	parent.RegisterNotifier(rec)
	if _, err := parent.Fork(2); err != nil {
		t.Fatal(err)
	}
	parent.Write(addr, []byte("y"))
	if len(rec.ranges) != 1 || rec.ranges[0].Reason != InvalidateCOW {
		t.Fatalf("notifications = %+v, want one COW", rec.ranges)
	}
}

func TestForkCopiesPinnedPagesEagerly(t *testing.T) {
	phys := NewPhysMem(0)
	parent := NewAddressSpace(1, phys)
	addr, _ := parent.Mmap(2 * PageSize)
	parent.Write(addr, []byte("dma-target"))
	pin, _ := parent.Pin(addr, PageSize) // pin page 0 only
	defer pin.Unpin()
	f0 := pin.Frame(0)

	child, err := parent.Fork(2)
	if err != nil {
		t.Fatal(err)
	}
	// Parent's pinned frame unchanged and still writable (no COW break on
	// parent write).
	breaks := parent.COWBreaks()
	parent.Write(addr, []byte("DMA-TARGET"))
	if parent.COWBreaks() != breaks {
		t.Fatal("parent write to pinned page broke COW")
	}
	if f, _ := parent.FrameAt(addr); f != f0 {
		t.Fatal("parent's pinned frame changed across fork")
	}
	// Child has its own copy with the pre-fork contents.
	got := make([]byte, 10)
	child.Read(addr, got)
	if string(got) != "dma-target" {
		t.Fatalf("child sees %q", got)
	}
	if f, _ := child.FrameAt(addr); f == f0 {
		t.Fatal("child shares the pinned frame")
	}
}

func TestForkSwappedPages(t *testing.T) {
	parent := NewAddressSpace(1, NewPhysMem(0))
	addr, _ := parent.Mmap(PageSize)
	parent.Write(addr, []byte("swapped"))
	parent.SwapOut(addr, PageSize)
	child, err := parent.Fork(2)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 7)
	child.Read(addr, got)
	if string(got) != "swapped" {
		t.Fatalf("child read %q from swapped page", got)
	}
	// Independent copies: child write doesn't touch parent's swap image.
	child.Write(addr, []byte("CHANGED"))
	parent.Read(addr, got)
	if string(got) != "swapped" {
		t.Fatal("child write reached parent's swapped page")
	}
}

// TestPropForkIsolation: after a fork and arbitrary interleaved writes on
// both sides, each side reads back exactly what it wrote (or the pre-fork
// data where it didn't write).
func TestPropForkIsolation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parent := NewAddressSpace(1, NewPhysMem(0))
		const pages = 8
		addr, _ := parent.Mmap(pages * PageSize)
		initial := make([]byte, pages*PageSize)
		rng.Read(initial)
		parent.Write(addr, initial)
		child, err := parent.Fork(2)
		if err != nil {
			return false
		}
		pExpect := append([]byte(nil), initial...)
		cExpect := append([]byte(nil), initial...)
		for i := 0; i < 40; i++ {
			off := rng.Intn(pages*PageSize - 64)
			n := 1 + rng.Intn(64)
			buf := make([]byte, n)
			rng.Read(buf)
			if rng.Intn(2) == 0 {
				parent.Write(addr+Addr(off), buf)
				copy(pExpect[off:], buf)
			} else {
				child.Write(addr+Addr(off), buf)
				copy(cExpect[off:], buf)
			}
		}
		pGot := make([]byte, pages*PageSize)
		cGot := make([]byte, pages*PageSize)
		parent.Read(addr, pGot)
		child.Read(addr, cGot)
		return bytes.Equal(pGot, pExpect) && bytes.Equal(cGot, cExpect)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
