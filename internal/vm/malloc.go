package vm

import (
	"fmt"
	"sort"
)

// MmapThreshold is the default allocation size above which Malloc uses a
// dedicated mapping (so Free munmaps it and fires MMU notifiers), mirroring
// glibc's M_MMAP_THRESHOLD. Smaller allocations come from a heap arena that
// is never returned to the OS — freeing them is invisible to the kernel,
// which is exactly why user-space symbol interception (the registration
// caches the paper criticizes in §2.1) sees far more events than a
// kernel-based cache does.
const MmapThreshold = 128 * 1024

// Allocator is a malloc/free implementation on top of an AddressSpace.
type Allocator struct {
	as        *AddressSpace
	threshold int

	// Large allocations: dedicated mappings, with freed ranges kept for
	// address reuse (so a freed-then-reallocated buffer usually returns at
	// the same virtual address, the paper's repin-after-free scenario).
	large      map[Addr]int // addr -> mapped length
	freeRanges []freeRange

	// Small allocations: a simple first-fit arena.
	arenaBase Addr
	arenaSize int
	blocks    []block // sorted by offset; covers the whole arena

	mallocs, frees uint64
}

type freeRange struct {
	addr Addr
	size int // page-aligned size
}

type block struct {
	off  int
	size int
	used bool
}

// NewAllocator returns an allocator for as. threshold <= 0 selects
// MmapThreshold. arenaSize is the heap arena for small allocations
// (<= 0 selects 16 MiB).
func NewAllocator(as *AddressSpace, threshold, arenaSize int) (*Allocator, error) {
	if threshold <= 0 {
		threshold = MmapThreshold
	}
	if arenaSize <= 0 {
		arenaSize = 16 << 20
	}
	arenaSize = int(PageAlignUp(Addr(arenaSize)))
	base, err := as.Mmap(arenaSize)
	if err != nil {
		return nil, err
	}
	return &Allocator{
		as:        as,
		threshold: threshold,
		large:     make(map[Addr]int),
		arenaBase: base,
		arenaSize: arenaSize,
		blocks:    []block{{off: 0, size: arenaSize}},
	}, nil
}

// Mallocs reports the number of successful Malloc calls.
func (al *Allocator) Mallocs() uint64 { return al.mallocs }

// Frees reports the number of successful Free calls.
func (al *Allocator) Frees() uint64 { return al.frees }

// Malloc allocates size bytes and returns the address. Large requests get a
// dedicated mapping (16-byte-aligned by construction: page aligned).
func (al *Allocator) Malloc(size int) (Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("vm: malloc(%d)", size)
	}
	if size >= al.threshold {
		addr, err := al.mallocLarge(size)
		if err == nil {
			al.mallocs++
		}
		return addr, err
	}
	addr, err := al.mallocArena(size)
	if err == nil {
		al.mallocs++
	}
	return addr, err
}

func (al *Allocator) mallocLarge(size int) (Addr, error) {
	mapped := int(PageAlignUp(Addr(size)))
	// First-fit over freed ranges: exact-size reuse keeps addresses stable
	// across free/malloc cycles.
	for i, fr := range al.freeRanges {
		if fr.size == mapped {
			al.freeRanges = append(al.freeRanges[:i], al.freeRanges[i+1:]...)
			if err := al.as.MmapFixed(fr.addr, mapped); err != nil {
				return 0, err
			}
			al.large[fr.addr] = mapped
			return fr.addr, nil
		}
	}
	addr, err := al.as.Mmap(mapped)
	if err != nil {
		return 0, err
	}
	al.large[addr] = mapped
	return addr, nil
}

const arenaAlign = 64

func (al *Allocator) mallocArena(size int) (Addr, error) {
	size = (size + arenaAlign - 1) &^ (arenaAlign - 1)
	for i := range al.blocks {
		if al.blocks[i].used || al.blocks[i].size < size {
			continue
		}
		if al.blocks[i].size > size {
			rest := block{off: al.blocks[i].off + size, size: al.blocks[i].size - size}
			al.blocks[i].size = size
			tail := append([]block{rest}, al.blocks[i+1:]...)
			al.blocks = append(al.blocks[:i+1], tail...)
		}
		al.blocks[i].used = true
		return al.arenaBase + Addr(al.blocks[i].off), nil
	}
	return 0, fmt.Errorf("vm: arena exhausted allocating %d bytes: %w", size, ErrNoMemory)
}

// Free releases the allocation at addr. Freeing a large allocation unmaps
// it, which fires MMU notifiers — the event the driver's pinning cache
// relies on (paper §3.1). Freeing an arena allocation just returns it to
// the free list; the kernel never hears about it.
func (al *Allocator) Free(addr Addr) error {
	if size, ok := al.large[addr]; ok {
		delete(al.large, addr)
		if err := al.as.Munmap(addr, size); err != nil {
			return err
		}
		al.freeRanges = append(al.freeRanges, freeRange{addr: addr, size: size})
		al.frees++
		return nil
	}
	if addr >= al.arenaBase && addr < al.arenaBase+Addr(al.arenaSize) {
		off := int(addr - al.arenaBase)
		for i := range al.blocks {
			if al.blocks[i].off == off && al.blocks[i].used {
				al.blocks[i].used = false
				al.coalesce()
				al.frees++
				return nil
			}
		}
	}
	return fmt.Errorf("vm: free(%#x): not an allocation", uint64(addr))
}

func (al *Allocator) coalesce() {
	sort.Slice(al.blocks, func(i, j int) bool { return al.blocks[i].off < al.blocks[j].off })
	out := al.blocks[:0]
	for _, b := range al.blocks {
		if n := len(out); n > 0 && !out[n-1].used && !b.used && out[n-1].off+out[n-1].size == b.off {
			out[n-1].size += b.size
			continue
		}
		out = append(out, b)
	}
	al.blocks = out
}

// AllocSize reports the usable size of the allocation at addr, if known.
func (al *Allocator) AllocSize(addr Addr) (int, bool) {
	if size, ok := al.large[addr]; ok {
		return size, true
	}
	if addr >= al.arenaBase && addr < al.arenaBase+Addr(al.arenaSize) {
		off := int(addr - al.arenaBase)
		for _, b := range al.blocks {
			if b.off == off && b.used {
				return b.size, true
			}
		}
	}
	return 0, false
}
