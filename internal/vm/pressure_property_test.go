package vm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropPressureInterleavings drives random fault / pin / unpin / fork /
// munmap / swap / migrate sequences against a tight-capacity PhysMem, so
// direct reclaim and kswapd passes fire constantly underneath the
// workload, and asserts the three invariants the reclaim subsystem must
// never break:
//
//  1. pinned frames are never reclaimed: every handle's frames are
//     pointer-stable from pin to unpin and read back the model's bytes;
//  2. reference counts balance at teardown: with every handle unpinned,
//     every child dropped, and every mapping gone, no frames remain in
//     use and no swap slots stay accounted;
//  3. data survives swap-out/swap-in round trips: reads through live
//     mappings always match a plain in-memory model.
func TestPropPressureInterleavings(t *testing.T) {
	const (
		nMaps    = 8
		mapPages = 8
		capacity = 40 // < nMaps*mapPages: overcommitted by construction
	)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pm := NewPhysMem(capacity)
		pm.SetWatermarks(0, 0)
		as := NewAddressSpace(1, pm)

		type pin struct {
			h      *Pinned
			frames []*Frame
			mi     int
			off    int // byte offset of the pinned range in the mapping
			length int
			frozen []byte // expected bytes once the mapping dies (nil while alive)
		}
		addrs := make([]Addr, nMaps)
		model := make([][]byte, nMaps) // nil = mapping dead
		for i := range addrs {
			a, err := as.Mmap(mapPages * PageSize)
			if err != nil {
				t.Fatalf("mmap: %v", err)
			}
			addrs[i] = a
			model[i] = make([]byte, mapPages*PageSize)
		}
		var pins []*pin
		var children []*AddressSpace
		pinnedPages := 0

		liveMap := func() int {
			for tries := 0; tries < 2*nMaps; tries++ {
				if mi := rng.Intn(nMaps); model[mi] != nil {
					return mi
				}
			}
			return -1
		}
		checkPin := func(p *pin) bool {
			for i, fr := range p.h.Frames() {
				if fr != p.frames[i] {
					t.Logf("seed %d: pinned frame %d changed under pressure", seed, i)
					return false
				}
			}
			want := p.frozen
			if want == nil {
				want = model[p.mi][p.off : p.off+p.length]
			}
			got := make([]byte, p.length)
			pageOff := p.off & (PageSize - 1)
			if err := p.h.ReadAt(pageOff, got); err != nil {
				t.Logf("seed %d: pinned read: %v", seed, err)
				return false
			}
			if !bytes.Equal(got, want) {
				t.Logf("seed %d: pinned data diverged from model", seed)
				return false
			}
			return true
		}
		dropChild := func(i int) {
			child := children[i]
			for _, v := range append([]*vma(nil), child.vmas...) {
				if err := child.Munmap(v.start, int(v.end-v.start)); err != nil {
					t.Fatalf("seed %d: child munmap: %v", seed, err)
				}
			}
			children = append(children[:i], children[i+1:]...)
		}

		for op := 0; op < 300; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2: // write random bytes (faults, COW breaks, reclaim)
				mi := liveMap()
				if mi < 0 {
					continue
				}
				off := rng.Intn(mapPages*PageSize - 1)
				n := 1 + rng.Intn(mapPages*PageSize-off)
				data := make([]byte, n)
				rng.Read(data)
				// Page at a time, updating the model only for pages that
				// landed: with fork children alive most frames are
				// COW-shared and unreclaimable, so an allocation can
				// legitimately fail mid-range — the model must not drift.
				done := 0
				for done < n {
					a := addrs[mi] + Addr(off+done)
					chunk := PageSize - int(a&(PageSize-1))
					if chunk > n-done {
						chunk = n - done
					}
					if err := as.Write(a, data[done:done+chunk]); err != nil {
						break // ErrNoMemory under extreme sharing: tolerated
					}
					copy(model[mi][off+done:], data[done:done+chunk])
					done += chunk
				}
			case 3: // read back a whole mapping (swap-ins) and verify
				mi := liveMap()
				if mi < 0 {
					continue
				}
				got := make([]byte, mapPages*PageSize)
				if err := as.Read(addrs[mi], got); err != nil {
					continue // swap-in allocation failed under pressure
				}
				if !bytes.Equal(got, model[mi]) {
					t.Logf("seed %d: mapping %d diverged from model", seed, mi)
					return false
				}
			case 4: // pin a range (bounded so reclaim always has prey)
				mi := liveMap()
				if mi < 0 || len(pins) >= 4 || pinnedPages+4 > capacity/2 {
					continue
				}
				first := rng.Intn(mapPages - 1)
				count := 1 + rng.Intn(4)
				if first+count > mapPages {
					count = mapPages - first
				}
				h, err := as.PinPages(addrs[mi], first, count)
				if err != nil {
					continue // pressure may legitimately defeat the pin
				}
				pins = append(pins, &pin{
					h:      h,
					frames: append([]*Frame(nil), h.Frames()...),
					mi:     mi,
					off:    first * PageSize,
					length: count * PageSize,
				})
				pinnedPages += count
			case 5: // unpin (verifying stability + data first)
				if len(pins) == 0 {
					continue
				}
				i := rng.Intn(len(pins))
				p := pins[i]
				if !checkPin(p) {
					return false
				}
				if err := p.h.Unpin(); err != nil {
					t.Logf("seed %d: unpin: %v", seed, err)
					return false
				}
				pinnedPages -= p.length / PageSize
				pins = append(pins[:i], pins[i+1:]...)
			case 6: // fork (children only ever read)
				if len(children) >= 2 {
					dropChild(rng.Intn(len(children)))
				}
				child, err := as.Fork(100 + op)
				if err != nil {
					continue // alloc failure under pressure: rolled back
				}
				children = append(children, child)
			case 7: // munmap a whole mapping; pins over it freeze
				mi := liveMap()
				if mi < 0 {
					continue
				}
				for _, p := range pins {
					if p.mi == mi && p.frozen == nil {
						p.frozen = append([]byte(nil), model[mi][p.off:p.off+p.length]...)
					}
				}
				if err := as.Munmap(addrs[mi], mapPages*PageSize); err != nil {
					t.Logf("seed %d: munmap: %v", seed, err)
					return false
				}
				model[mi] = nil
			case 8: // injected swap pressure on top of the emergent kind
				mi := liveMap()
				if mi < 0 {
					continue
				}
				if _, err := as.SwapOut(addrs[mi], mapPages*PageSize); err != nil {
					t.Logf("seed %d: swapout: %v", seed, err)
					return false
				}
			case 9: // migration plus an explicit kswapd pass
				if mi := liveMap(); mi >= 0 {
					// Partial migration under allocation failure is fine;
					// contents are preserved either way.
					_, _ = as.Migrate(addrs[mi], mapPages*PageSize)
				}
				pm.KswapdPass()
			}
			if pm.FramesInUse() > capacity {
				t.Logf("seed %d: FramesInUse %d exceeds capacity", seed, pm.FramesInUse())
				return false
			}
		}

		// Teardown: verify and release everything, then the ledger must be
		// exactly empty.
		for _, p := range pins {
			if !checkPin(p) {
				return false
			}
			if err := p.h.Unpin(); err != nil {
				t.Logf("seed %d: teardown unpin: %v", seed, err)
				return false
			}
		}
		for len(children) > 0 {
			dropChild(0)
		}
		for mi := range addrs {
			if model[mi] == nil {
				continue
			}
			got := make([]byte, mapPages*PageSize)
			if err := as.Read(addrs[mi], got); err != nil || !bytes.Equal(got, model[mi]) {
				t.Logf("seed %d: final verify of mapping %d failed (%v)", seed, mi, err)
				return false
			}
			if err := as.Munmap(addrs[mi], mapPages*PageSize); err != nil {
				t.Logf("seed %d: final munmap: %v", seed, err)
				return false
			}
		}
		if pm.FramesInUse() != 0 || pm.SwappedPages() != 0 || pm.SwappedBytes() != 0 {
			t.Logf("seed %d: teardown leak: frames=%d swapped=%d bytes=%d",
				seed, pm.FramesInUse(), pm.SwappedPages(), pm.SwappedBytes())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
