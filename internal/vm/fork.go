package vm

// Fork clones the address space into a child, copy-on-write style: present,
// unpinned pages become read-only shares of the same frame in both parent
// and child; the first write on either side duplicates the page (firing the
// COW MMU notifier, the invalidation source the paper calls out in §2.1:
// "the application may ... cause the operating system to duplicate a page
// on Copy-on-write").
//
// Pinned pages are copied eagerly into the child instead of shared: a
// device may be DMA-ing into the parent's frame, so the parent must keep
// exclusive writable ownership — this mirrors how Linux fork treats pages
// with elevated GUP counts.
func (as *AddressSpace) Fork(childPID int) (*AddressSpace, error) {
	child := NewAddressSpace(childPID, as.phys)
	child.vmas = append([]vma(nil), as.vmas...)
	child.mmapNext = as.mmapNext

	for a, p := range as.pages {
		switch {
		case p.present && p.frame.pinRefs > 0:
			// Eager copy for the child; parent stays writable and pinned.
			f, err := as.phys.alloc()
			if err != nil {
				return nil, err
			}
			if p.frame.data != nil {
				f.data = make([]byte, PageSize)
				copy(f.data, p.frame.data)
			}
			f.mapRefs++
			child.pages[a] = &pte{frame: f, present: true, writable: true}
		case p.present:
			// Share read-only; either side's next write breaks COW.
			p.writable = false
			p.frame.mapRefs++
			child.pages[a] = &pte{frame: p.frame, present: true, writable: false}
		case p.swapped:
			// The child gets its own copy of the swapped contents.
			cp := &pte{swapped: true}
			if p.swapData != nil {
				cp.swapData = append([]byte(nil), p.swapData...)
			}
			child.pages[a] = cp
		}
	}
	return child, nil
}
