package vm

// Fork clones the address space into a child, copy-on-write style: present,
// unpinned pages become read-only shares of the same frame in both parent
// and child; the first write on either side duplicates the page (firing the
// COW MMU notifier, the invalidation source the paper calls out in §2.1:
// "the application may ... cause the operating system to duplicate a page
// on Copy-on-write").
//
// Pinned pages are copied into the child instead of shared: a device may be
// DMA-ing into the parent's frame, so the parent must keep exclusive
// writable ownership — this mirrors how Linux fork treats pages with
// elevated GUP counts. The copy is taken by reference (copy-on-reference):
// the child frame aliases the parent's contents until either side writes.
func (as *AddressSpace) Fork(childPID int) (*AddressSpace, error) {
	child := NewAddressSpace(childPID, as.phys)
	child.mmapNext = as.mmapNext
	child.vmas = make([]*vma, 0, len(as.vmas))

	for _, v := range as.vmas {
		cv := &vma{start: v.start, end: v.end, ptes: make([]pte, len(v.ptes))}
		child.vmas = append(child.vmas, cv)
		for i := range v.ptes {
			p := &v.ptes[i]
			switch {
			case p.present && p.frame.pinRefs > 0:
				// Child gets its own frame; parent stays writable and pinned.
				f, err := as.phys.alloc()
				if err != nil {
					return nil, err
				}
				if p.frame.data != nil {
					f.data = p.frame.refData()
					f.shared = true
				}
				f.mapRefs++
				cv.ptes[i] = pte{frame: f, present: true, writable: true}
			case p.present:
				// Share read-only; either side's next write breaks COW.
				p.writable = false
				p.frame.mapRefs++
				cv.ptes[i] = pte{frame: p.frame, present: true, writable: false}
			case p.swapped:
				// The child aliases the swapped contents copy-on-reference.
				cp := pte{swapped: true}
				if p.swapData != nil {
					cp.swapData = p.swapData
					cp.swapShared = true
					p.swapShared = true
				}
				cv.ptes[i] = cp
			}
		}
	}
	return child, nil
}
