package vm

// Fork clones the address space into a child, copy-on-write style: present,
// unpinned pages become read-only shares of the same frame in both parent
// and child; the first write on either side duplicates the page (firing the
// COW MMU notifier, the invalidation source the paper calls out in §2.1:
// "the application may ... cause the operating system to duplicate a page
// on Copy-on-write").
//
// Pinned pages are copied into the child instead of shared: a device may be
// DMA-ing into the parent's frame, so the parent must keep exclusive
// writable ownership — this mirrors how Linux fork treats pages with
// elevated GUP counts. The copy is taken by reference (copy-on-reference):
// the child frame aliases the parent's contents until either side writes.
func (as *AddressSpace) Fork(childPID int) (*AddressSpace, error) {
	child := NewAddressSpace(childPID, as.phys)
	child.mmapNext = as.mmapNext
	child.vmas = make([]*vma, 0, len(as.vmas))

	for _, v := range as.vmas {
		cv := &vma{start: v.start, end: v.end, ptes: make([]pte, len(v.ptes))}
		child.vmas = append(child.vmas, cv)
		for i := range v.ptes {
			p := &v.ptes[i]
			switch {
			case p.present && p.frame.pinRefs > 0:
				// Child gets its own frame; parent stays writable and pinned.
				f, err := as.allocFrame()
				if err != nil {
					// Roll the half-built child back (Linux tears down the
					// partial mm on fork failure): drop every reference the
					// child's PTEs took so no frames or swap slots leak.
					child.abortFork()
					return nil, err
				}
				if p.frame.data != nil {
					f.data = p.frame.refData()
					f.shared = true
				}
				f.mapRefs++
				cv.ptes[i] = pte{frame: f, present: true, writable: true}
				child.installFrame(f, v.start+Addr(i)<<PageShift)
			case p.present:
				// Share read-only; either side's next write breaks COW.
				p.writable = false
				p.frame.mapRefs++
				cv.ptes[i] = pte{frame: p.frame, present: true, writable: false}
			case p.swapped:
				// The child aliases the swapped contents copy-on-reference.
				// Both sides come back from swap read-only, like the
				// present COW case: the first write after swap-in breaks
				// the share.
				p.swapWritable = false
				cp := pte{swapped: true}
				if p.swapData != nil {
					cp.swapData = p.swapData
					cp.swapShared = true
					p.swapShared = true
				}
				cv.ptes[i] = cp
				as.phys.swapAdded(cp.swapData)
			}
		}
	}
	return child, nil
}

// abortFork releases everything a partially-built child holds, so a fork
// that fails under memory pressure leaks neither frames nor swap slots.
// Parent pages already marked read-only for the aborted share stay
// read-only — conservative but safe: the next parent write takes a
// (spurious) COW break on a now-exclusive frame.
func (child *AddressSpace) abortFork() {
	for _, cv := range child.vmas {
		for i := range cv.ptes {
			child.dropPTE(&cv.ptes[i])
		}
	}
	child.vmas = nil
}
