package vm

import "fmt"

// Buf is a zero-copy, copy-on-reference view of byte contents assembled
// from page frames (and literal byte runs). It is what the simulated wire
// carries instead of materialized []byte payloads: building a Buf from
// pinned frames is O(chunks) — no 4 KiB copies, no zero-fill — and writing
// one into destination frames adopts whole-page chunks by reference.
//
// Snapshot semantics: referenced frames are marked shared, so a later write
// to the source frame clones the page first (Frame copy-on-write). A Buf
// therefore always reads as the data at reference time, exactly like the
// eager copy it replaces, while the common case (page never rewritten
// mid-flight, or all-zero pages that were never materialized) moves no
// bytes at all.
type Buf struct {
	length int
	chunks []bufChunk
}

// bufChunk is one contiguous piece: n bytes at data[off:]. A nil data slice
// reads as zeros (an unmaterialized page).
type bufChunk struct {
	data []byte
	off  int
	n    int
}

// Len reports the byte length of the view.
func (b *Buf) Len() int { return b.length }

// AppendFrame appends n bytes at offset off of frame f, by reference.
func (b *Buf) AppendFrame(f *Frame, off, n int) {
	if n <= 0 {
		return
	}
	if off < 0 || off+n > PageSize {
		panic(fmt.Sprintf("vm: buf chunk [%d,%d) outside page", off, off+n))
	}
	data := f.refData() // nil for an unmaterialized (all-zero) page
	if data == nil {
		b.AppendZeros(n)
		return
	}
	b.chunks = append(b.chunks, bufChunk{data: data, off: off, n: n})
	b.length += n
}

// AppendZeros appends n zero bytes without materializing them.
func (b *Buf) AppendZeros(n int) {
	if n <= 0 {
		return
	}
	if last := len(b.chunks) - 1; last >= 0 && b.chunks[last].data == nil {
		b.chunks[last].n += n
	} else {
		b.chunks = append(b.chunks, bufChunk{n: n})
	}
	b.length += n
}

// AppendBytes appends a literal byte slice by reference (the caller must
// not mutate it afterwards).
func (b *Buf) AppendBytes(data []byte) {
	if len(data) == 0 {
		return
	}
	b.chunks = append(b.chunks, bufChunk{data: data, n: len(data)})
	b.length += len(data)
}

// BufOf returns a Buf viewing the given bytes (by reference).
func BufOf(data []byte) Buf {
	var b Buf
	b.AppendBytes(data)
	return b
}

// CopyTo materializes the view into dst, which must be at least Len bytes.
func (b *Buf) CopyTo(dst []byte) {
	pos := 0
	for _, c := range b.chunks {
		if c.data == nil {
			for i := pos; i < pos+c.n; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst[pos:pos+c.n], c.data[c.off:c.off+c.n])
		}
		pos += c.n
	}
}

// Bytes materializes the view into a fresh slice.
func (b *Buf) Bytes() []byte {
	dst := make([]byte, b.length)
	b.CopyTo(dst)
	return dst
}

// BufWriter consumes a Buf sequentially, writing it into frames. It adopts
// whole-page chunks (and whole-page zero runs) by reference and falls back
// to copying for partial pages.
type BufWriter struct {
	b  *Buf
	ci int // current chunk
	co int // offset consumed within current chunk
}

// NewBufWriter returns a sequential writer over b.
func NewBufWriter(b *Buf) BufWriter { return BufWriter{b: b} }

// WriteTo writes the next n bytes of the Buf into frame f at frameOff.
func (w *BufWriter) WriteTo(f *Frame, frameOff, n int) {
	for n > 0 {
		c := &w.b.chunks[w.ci]
		m := c.n - w.co
		if m > n {
			m = n
		}
		if m == 0 {
			w.ci++
			w.co = 0
			continue
		}
		if c.data == nil {
			if frameOff == 0 && m == PageSize {
				f.adopt(nil) // full zero page: drop any materialized data
			} else {
				f.writeZeros(frameOff, m)
			}
		} else if frameOff == 0 && m == PageSize && c.off+w.co == 0 && len(c.data) == PageSize {
			// The chunk piece is exactly a page buffer: share it.
			f.adopt(c.data)
		} else {
			f.Write(frameOff, c.data[c.off+w.co:c.off+w.co+m])
		}
		frameOff += m
		n -= m
		w.co += m
		if w.co == c.n {
			w.ci++
			w.co = 0
		}
	}
}

// writeZeros zeroes [off, off+n) of the frame. Unmaterialized frames are
// already zero, so this is free for them.
func (f *Frame) writeZeros(off, n int) {
	if f.freed {
		panic(fmt.Sprintf("vm: write to freed frame %d", f.pfn))
	}
	if f.data == nil || n <= 0 {
		return
	}
	f.ensureOwned()
	if f.data == nil {
		return
	}
	for i := off; i < off+n; i++ {
		f.data[i] = 0
	}
}
