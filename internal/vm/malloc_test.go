package vm

import "testing"

func newAlloc(t *testing.T) (*AddressSpace, *Allocator) {
	t.Helper()
	as := NewAddressSpace(1, NewPhysMem(0))
	al, err := NewAllocator(as, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return as, al
}

func TestMallocSmallUsesArenaNoNotifier(t *testing.T) {
	as, al := newAlloc(t)
	n := &recordingNotifier{}
	as.RegisterNotifier(n)
	a, err := al.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Write(a, []byte("small")); err != nil {
		t.Fatal(err)
	}
	if err := al.Free(a); err != nil {
		t.Fatal(err)
	}
	if len(n.ranges) != 0 {
		t.Fatal("small free reached the kernel (fired notifier)")
	}
}

func TestMallocLargeFreeFiresUnmapNotifier(t *testing.T) {
	as, al := newAlloc(t)
	n := &recordingNotifier{}
	as.RegisterNotifier(n)
	a, err := al.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.Free(a); err != nil {
		t.Fatal(err)
	}
	if len(n.ranges) != 1 || n.ranges[0].Reason != InvalidateUnmap {
		t.Fatalf("notifications = %+v, want one unmap", n.ranges)
	}
	if n.ranges[0].Start != a {
		t.Fatal("notification range does not start at the buffer")
	}
}

func TestLargeFreeThenMallocReusesAddress(t *testing.T) {
	// The paper's repin scenario: the same buffer may be reallocated at the
	// same address after free, and the still-declared region repins it.
	_, al := newAlloc(t)
	a1, _ := al.Malloc(1 << 20)
	if err := al.Free(a1); err != nil {
		t.Fatal(err)
	}
	a2, _ := al.Malloc(1 << 20)
	if a2 != a1 {
		t.Fatalf("realloc returned %#x, want reused %#x", uint64(a2), uint64(a1))
	}
}

func TestMallocDistinctAddresses(t *testing.T) {
	_, al := newAlloc(t)
	seen := map[Addr]bool{}
	for i := 0; i < 10; i++ {
		a, err := al.Malloc(256 * 1024)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a] {
			t.Fatalf("address %#x handed out twice while live", uint64(a))
		}
		seen[a] = true
	}
}

func TestArenaReuseAndCoalesce(t *testing.T) {
	_, al := newAlloc(t)
	a, _ := al.Malloc(4096)
	b, _ := al.Malloc(4096)
	c, _ := al.Malloc(4096)
	al.Free(a)
	al.Free(b)
	// a+b coalesced: an 8KiB alloc should fit at a's offset.
	d, err := al.Malloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	if d != a {
		t.Fatalf("coalesced alloc at %#x, want %#x", uint64(d), uint64(a))
	}
	al.Free(c)
	al.Free(d)
}

func TestFreeUnknownFails(t *testing.T) {
	_, al := newAlloc(t)
	if err := al.Free(0xdead000); err == nil {
		t.Fatal("free of unknown address succeeded")
	}
}

func TestAllocSize(t *testing.T) {
	_, al := newAlloc(t)
	a, _ := al.Malloc(300 * 1024)
	if sz, ok := al.AllocSize(a); !ok || sz < 300*1024 {
		t.Fatalf("AllocSize = %d,%v", sz, ok)
	}
	b, _ := al.Malloc(100)
	if sz, ok := al.AllocSize(b); !ok || sz < 100 {
		t.Fatalf("AllocSize small = %d,%v", sz, ok)
	}
	if _, ok := al.AllocSize(0x42); ok {
		t.Fatal("AllocSize of bogus address ok")
	}
}

func TestMallocCounters(t *testing.T) {
	_, al := newAlloc(t)
	a, _ := al.Malloc(1 << 20)
	b, _ := al.Malloc(64)
	al.Free(a)
	al.Free(b)
	if al.Mallocs() != 2 || al.Frees() != 2 {
		t.Fatalf("counters = %d/%d, want 2/2", al.Mallocs(), al.Frees())
	}
}

func TestMallocZeroFails(t *testing.T) {
	_, al := newAlloc(t)
	if _, err := al.Malloc(0); err == nil {
		t.Fatal("malloc(0) succeeded")
	}
}
