package vm

import (
	"bytes"
	"testing"
)

func newAS(t *testing.T) *AddressSpace {
	t.Helper()
	return NewAddressSpace(1, NewPhysMem(0))
}

func TestMmapAndReadWrite(t *testing.T) {
	as := newAS(t)
	addr, err := as.Mmap(3 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello across a page boundary")
	if err := as.Write(addr+PageSize-5, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.Read(addr+PageSize-5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}

func TestDemandZeroReads(t *testing.T) {
	as := newAS(t)
	addr, _ := as.Mmap(PageSize)
	got := make([]byte, 64)
	for i := range got {
		got[i] = 0xff
	}
	if err := as.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("fresh anonymous memory not zero")
		}
	}
}

func TestUnmappedAccessFails(t *testing.T) {
	as := newAS(t)
	if err := as.Write(0x1000, []byte{1}); err == nil {
		t.Fatal("write to unmapped address succeeded")
	}
	addr, _ := as.Mmap(PageSize)
	if err := as.Write(addr+PageSize, []byte{1}); err == nil {
		t.Fatal("write past end of mapping succeeded")
	}
}

func TestMunmapFreesFrames(t *testing.T) {
	phys := NewPhysMem(0)
	as := NewAddressSpace(1, phys)
	addr, _ := as.Mmap(4 * PageSize)
	if err := as.Write(addr, make([]byte, 4*PageSize)); err != nil {
		t.Fatal(err)
	}
	if phys.FramesInUse() != 4 {
		t.Fatalf("FramesInUse = %d, want 4", phys.FramesInUse())
	}
	if err := as.Munmap(addr, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if phys.FramesInUse() != 0 {
		t.Fatalf("FramesInUse = %d after munmap, want 0", phys.FramesInUse())
	}
	if as.Mapped(addr, PageSize) {
		t.Fatal("range still mapped after munmap")
	}
}

func TestPartialMunmapSplitsVMA(t *testing.T) {
	as := newAS(t)
	addr, _ := as.Mmap(4 * PageSize)
	if err := as.Munmap(addr+PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	if !as.Mapped(addr, PageSize) || !as.Mapped(addr+2*PageSize, 2*PageSize) {
		t.Fatal("surviving halves not mapped")
	}
	if as.Mapped(addr+PageSize, PageSize) {
		t.Fatal("hole still mapped")
	}
	if as.Mapped(addr, 4*PageSize) {
		t.Fatal("full range reported mapped despite hole")
	}
}

func TestMunmapUnmappedFails(t *testing.T) {
	as := newAS(t)
	if err := as.Munmap(0x5000, PageSize); err == nil {
		t.Fatal("munmap of unmapped range succeeded")
	}
}

type recordingNotifier struct {
	ranges []NotifierRange
}

func (r *recordingNotifier) InvalidateRange(nr NotifierRange) {
	r.ranges = append(r.ranges, nr)
}

func TestNotifierFiresOnMunmap(t *testing.T) {
	as := newAS(t)
	n := &recordingNotifier{}
	as.RegisterNotifier(n)
	addr, _ := as.Mmap(2 * PageSize)
	if err := as.Munmap(addr, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if len(n.ranges) != 1 {
		t.Fatalf("got %d notifications, want 1", len(n.ranges))
	}
	nr := n.ranges[0]
	if nr.Start != addr || nr.End != addr+2*PageSize || nr.Reason != InvalidateUnmap {
		t.Fatalf("notification = %+v", nr)
	}
	if as.Notifications(InvalidateUnmap) != 1 {
		t.Fatal("notification counter wrong")
	}
}

func TestNotifierFiresBeforeTeardown(t *testing.T) {
	// The contract that makes kernel pinning caches sound: at callback time
	// the old translation is still intact, so the listener can unpin.
	as := newAS(t)
	addr, _ := as.Mmap(PageSize)
	pin, err := as.Pin(addr, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	var sawLiveTranslation bool
	as.RegisterNotifier(notifierFunc(func(nr NotifierRange) {
		if _, ok := as.FrameAt(addr); ok {
			sawLiveTranslation = true
		}
		if err := pin.Unpin(); err != nil {
			t.Errorf("unpin in callback: %v", err)
		}
	}))
	if err := as.Munmap(addr, PageSize); err != nil {
		t.Fatal(err)
	}
	if !sawLiveTranslation {
		t.Fatal("notifier fired after translation was torn down")
	}
	if as.Phys().FramesInUse() != 0 {
		t.Fatalf("frames leaked: %d", as.Phys().FramesInUse())
	}
}

type notifierFunc func(NotifierRange)

func (f notifierFunc) InvalidateRange(nr NotifierRange) { f(nr) }

func TestUnregisterNotifier(t *testing.T) {
	as := newAS(t)
	n := &recordingNotifier{}
	as.RegisterNotifier(n)
	as.UnregisterNotifier(n)
	addr, _ := as.Mmap(PageSize)
	as.Munmap(addr, PageSize)
	if len(n.ranges) != 0 {
		t.Fatal("unregistered notifier still called")
	}
}

func TestPinFaultsPagesIn(t *testing.T) {
	phys := NewPhysMem(0)
	as := NewAddressSpace(1, phys)
	addr, _ := as.Mmap(8 * PageSize)
	pin, err := as.Pin(addr, 8*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if pin.NumPages() != 8 {
		t.Fatalf("NumPages = %d, want 8", pin.NumPages())
	}
	if phys.FramesInUse() != 8 {
		t.Fatalf("FramesInUse = %d, want 8", phys.FramesInUse())
	}
	for i := 0; i < 8; i++ {
		if pin.Frame(i).PinCount() != 1 {
			t.Fatalf("page %d pin count = %d", i, pin.Frame(i).PinCount())
		}
	}
	if err := pin.Unpin(); err != nil {
		t.Fatal(err)
	}
	if pin.Active() {
		t.Fatal("handle still active after Unpin")
	}
	if err := pin.Unpin(); err != ErrDoubleUnpin {
		t.Fatalf("double unpin error = %v, want ErrDoubleUnpin", err)
	}
}

func TestPinUnalignedRange(t *testing.T) {
	as := newAS(t)
	addr, _ := as.Mmap(4 * PageSize)
	// 2 bytes spanning a page boundary must pin both pages.
	pin, err := as.Pin(addr+PageSize-1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pin.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", pin.NumPages())
	}
	pin.Unpin()
}

func TestPinInvalidRangeRollsBack(t *testing.T) {
	phys := NewPhysMem(0)
	as := NewAddressSpace(1, phys)
	addr, _ := as.Mmap(2 * PageSize)
	// Third page is unmapped: pin must fail and release the partial pins.
	if _, err := as.Pin(addr, 3*PageSize); err == nil {
		t.Fatal("pin of partly-unmapped range succeeded")
	}
	if phys.FramesInUse() != 2 {
		// The two mapped pages were faulted in but must not be left pinned.
		t.Fatalf("FramesInUse = %d, want 2", phys.FramesInUse())
	}
	for a := addr; a < addr+2*PageSize; a += PageSize {
		if f, ok := as.FrameAt(a); ok && f.PinCount() != 0 {
			t.Fatal("rollback left pages pinned")
		}
	}
}

func TestPinnedPageNotMigratable(t *testing.T) {
	as := newAS(t)
	addr, _ := as.Mmap(2 * PageSize)
	as.Write(addr, make([]byte, 2*PageSize)) // fault both pages in
	pin, _ := as.Pin(addr, PageSize)         // pin only page 0
	f0, _ := as.FrameAt(addr)
	moved, err := as.Migrate(addr, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("moved = %d, want 1 (only the unpinned page)", moved)
	}
	if f, _ := as.FrameAt(addr); f != f0 {
		t.Fatal("pinned page was migrated")
	}
	pin.Unpin()
	moved, _ = as.Migrate(addr, PageSize)
	if moved != 1 {
		t.Fatal("page not migratable after unpin")
	}
}

func TestPinnedPageNotSwappable(t *testing.T) {
	as := newAS(t)
	addr, _ := as.Mmap(2 * PageSize)
	as.Write(addr, make([]byte, 2*PageSize))
	pin, _ := as.Pin(addr, PageSize)
	swapped, err := as.SwapOut(addr, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if swapped != 1 {
		t.Fatalf("swapped = %d, want 1", swapped)
	}
	pin.Unpin()
}

func TestSwapRoundTripPreservesData(t *testing.T) {
	phys := NewPhysMem(0)
	as := NewAddressSpace(1, phys)
	addr, _ := as.Mmap(PageSize)
	data := []byte("swap me out and back")
	as.Write(addr, data)
	if n, _ := as.SwapOut(addr, PageSize); n != 1 {
		t.Fatal("swap out failed")
	}
	if phys.FramesInUse() != 0 {
		t.Fatal("frame not freed at swap out")
	}
	got := make([]byte, len(data))
	if err := as.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("after swap-in got %q, want %q", got, data)
	}
	if as.SwapIns() != 1 {
		t.Fatal("swap-in counter wrong")
	}
}

func TestSwapFiresNotifier(t *testing.T) {
	as := newAS(t)
	n := &recordingNotifier{}
	as.RegisterNotifier(n)
	addr, _ := as.Mmap(PageSize)
	as.Write(addr, []byte{1})
	as.SwapOut(addr, PageSize)
	if len(n.ranges) != 1 || n.ranges[0].Reason != InvalidateSwap {
		t.Fatalf("notifications = %+v", n.ranges)
	}
}

func TestCOWBreakOnWrite(t *testing.T) {
	as := newAS(t)
	n := &recordingNotifier{}
	addr, _ := as.Mmap(PageSize)
	as.Write(addr, []byte("original"))
	f0, _ := as.FrameAt(addr)
	if err := as.MarkCOW(addr, PageSize); err != nil {
		t.Fatal(err)
	}
	as.RegisterNotifier(n)
	// Read does not break COW.
	got := make([]byte, 8)
	as.Read(addr, got)
	if f, _ := as.FrameAt(addr); f != f0 {
		t.Fatal("read broke COW")
	}
	// Write does, and fires the notifier first.
	as.Write(addr, []byte("modified"))
	f1, _ := as.FrameAt(addr)
	if f1 == f0 {
		t.Fatal("write did not break COW")
	}
	if len(n.ranges) != 1 || n.ranges[0].Reason != InvalidateCOW {
		t.Fatalf("notifications = %+v", n.ranges)
	}
	as.Read(addr, got)
	if string(got) != "modified" {
		t.Fatalf("after COW break read %q", got)
	}
	if as.COWBreaks() != 1 {
		t.Fatal("COW counter wrong")
	}
}

func TestPinBreaksCOWEagerly(t *testing.T) {
	// A device may DMA into pinned pages, so pinning must perform the COW
	// duplication up front.
	as := newAS(t)
	addr, _ := as.Mmap(PageSize)
	as.Write(addr, []byte("shared"))
	as.MarkCOW(addr, PageSize)
	f0, _ := as.FrameAt(addr)
	pin, err := as.Pin(addr, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Unpin()
	if pin.Frame(0) == f0 {
		t.Fatal("pin returned the COW-shared frame")
	}
	if f, _ := as.FrameAt(addr); f != pin.Frame(0) {
		t.Fatal("page table does not point at the pinned frame")
	}
}

func TestPinnedFrameSurvivesMunmap(t *testing.T) {
	// If a driver fails to unpin in the notifier callback, the frame must
	// stay alive (the pin holds a reference) even though the translation is
	// gone. Freed only at last unpin.
	phys := NewPhysMem(0)
	as := NewAddressSpace(1, phys)
	addr, _ := as.Mmap(PageSize)
	as.Write(addr, []byte("payload"))
	pin, _ := as.Pin(addr, PageSize)
	f := pin.Frame(0)
	if err := as.Munmap(addr, PageSize); err != nil {
		t.Fatal(err)
	}
	if phys.FramesInUse() != 1 {
		t.Fatalf("FramesInUse = %d, want 1 (pinned frame alive)", phys.FramesInUse())
	}
	buf := make([]byte, 7)
	f.Read(0, buf)
	if string(buf) != "payload" {
		t.Fatal("pinned frame lost its data")
	}
	pin.Unpin()
	if phys.FramesInUse() != 0 {
		t.Fatalf("FramesInUse = %d after final unpin, want 0", phys.FramesInUse())
	}
}

func TestPinnedReadWriteAt(t *testing.T) {
	as := newAS(t)
	addr, _ := as.Mmap(3 * PageSize)
	pin, _ := as.Pin(addr, 3*PageSize)
	defer pin.Unpin()
	data := make([]byte, 2*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := pin.WriteAt(100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := pin.ReadAt(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pinned read-back mismatch")
	}
	// And the application view agrees (same frames).
	via := make([]byte, len(data))
	as.Read(addr+100, via)
	if !bytes.Equal(via, data) {
		t.Fatal("virtual view disagrees with pinned view")
	}
	if err := pin.ReadAt(3*PageSize-1, make([]byte, 2)); err == nil {
		t.Fatal("out-of-range pinned access succeeded")
	}
}

func TestPinPagesIncremental(t *testing.T) {
	as := newAS(t)
	addr, _ := as.Mmap(10 * PageSize)
	var handles []*Pinned
	for i := 0; i < 10; i += 2 {
		h, err := as.PinPages(addr, i, 2)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for a := addr; a < addr+10*PageSize; a += PageSize {
		f, ok := as.FrameAt(a)
		if !ok || f.PinCount() != 1 {
			t.Fatalf("page at %#x not singly pinned", uint64(a))
		}
	}
	for _, h := range handles {
		h.Unpin()
	}
	if as.Phys().FramesInUse() != 10 {
		t.Fatal("frames should remain mapped after unpin")
	}
}

func TestFrameLimitEnforced(t *testing.T) {
	// Overcommitting a bounded PhysMem no longer fails outright: the
	// allocation path enters direct reclaim and swaps the coldest pages
	// out, so the write succeeds while FramesInUse never exceeds the
	// capacity and the displaced pages show up in the swap accounting.
	phys := NewPhysMem(4)
	as := NewAddressSpace(1, phys)
	addr, _ := as.Mmap(8 * PageSize)
	payload := make([]byte, 8*PageSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := as.Write(addr, payload); err != nil {
		t.Fatalf("overcommitted write did not reclaim: %v", err)
	}
	if phys.FramesInUse() > 4 {
		t.Fatalf("FramesInUse = %d exceeds capacity 4", phys.FramesInUse())
	}
	if phys.OccupiedPages() != 8 {
		t.Fatalf("OccupiedPages = %d, want 8", phys.OccupiedPages())
	}
	rs := phys.ReclaimStats()
	if rs.DirectStalls == 0 || rs.PgSteal == 0 {
		t.Fatalf("expected direct-reclaim activity, got %+v", rs)
	}
	// Data survives the swap round trips.
	got := make([]byte, len(payload))
	if err := as.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("byte %d = %d, want %d after reclaim round trip", i, got[i], payload[i])
		}
	}
}

func TestFrameLimitPinnedPagesCannotBeReclaimed(t *testing.T) {
	// When every frame is pinned, reclaim has nothing to steal and the
	// allocation fails with ErrNoMemory — pinned pages are unreclaimable,
	// the paper's core claim.
	phys := NewPhysMem(4)
	as := NewAddressSpace(1, phys)
	addr, _ := as.Mmap(8 * PageSize)
	h, err := as.PinPages(addr, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Write(addr+4*PageSize, []byte{1}); err == nil {
		t.Fatal("allocation succeeded with every frame pinned")
	}
	if rs := phys.ReclaimStats(); rs.Failures == 0 || rs.PgSteal != 0 {
		t.Fatalf("expected failed reclaim with no steals, got %+v", rs)
	}
	if phys.FramesInUse() != 4 {
		t.Fatalf("FramesInUse = %d, want 4", phys.FramesInUse())
	}
	h.Unpin()
}

func TestPageHelpers(t *testing.T) {
	if PageAlignDown(PageSize+1) != PageSize || PageAlignUp(PageSize+1) != 2*PageSize {
		t.Fatal("alignment helpers wrong")
	}
	if PageAlignUp(PageSize) != PageSize {
		t.Fatal("PageAlignUp not idempotent on aligned value")
	}
	if PageCount(0, 1) != 1 || PageCount(PageSize-1, 2) != 2 || PageCount(0, 0) != 0 {
		t.Fatal("PageCount wrong")
	}
	if PageCount(0, 3*PageSize) != 3 {
		t.Fatal("PageCount wrong for aligned range")
	}
}

func TestMigratePreservesData(t *testing.T) {
	as := newAS(t)
	addr, _ := as.Mmap(PageSize)
	as.Write(addr, []byte("migrant"))
	f0, _ := as.FrameAt(addr)
	moved, err := as.Migrate(addr, PageSize)
	if err != nil || moved != 1 {
		t.Fatalf("Migrate = %d, %v", moved, err)
	}
	f1, _ := as.FrameAt(addr)
	if f1 == f0 {
		t.Fatal("frame did not change")
	}
	got := make([]byte, 7)
	as.Read(addr, got)
	if string(got) != "migrant" {
		t.Fatalf("after migrate read %q", got)
	}
}

func TestMProtectReadOnlyFiresNotifier(t *testing.T) {
	as := newAS(t)
	n := &recordingNotifier{}
	as.RegisterNotifier(n)
	addr, _ := as.Mmap(2 * PageSize)
	as.Write(addr, []byte("data"))
	if err := as.MProtect(addr, 2*PageSize, false); err != nil {
		t.Fatal(err)
	}
	if len(n.ranges) != 1 || n.ranges[0].Reason != InvalidateProtect {
		t.Fatalf("notifications = %+v", n.ranges)
	}
	// Reads still work; a write breaks COW-style into a fresh frame.
	f0, _ := as.FrameAt(addr)
	as.Write(addr, []byte("more"))
	f1, _ := as.FrameAt(addr)
	if f0 == f1 {
		t.Fatal("write to protected page did not duplicate the frame")
	}
	// Restoring write access notifies nobody.
	if err := as.MProtect(addr, 2*PageSize, true); err != nil {
		t.Fatal(err)
	}
	if len(n.ranges) != 2 { // 1 protect + 1 COW break from the write above
		t.Fatalf("got %d notifications", len(n.ranges))
	}
}

func TestMProtectUnmappedFails(t *testing.T) {
	as := newAS(t)
	if err := as.MProtect(0x4000, PageSize, false); err == nil {
		t.Fatal("mprotect of unmapped range succeeded")
	}
}

func TestMProtectUnpinsDriverRegion(t *testing.T) {
	// End-to-end with a pin: protecting a pinned buffer read-only must
	// invalidate (the device might write), and the notifier lets the
	// listener unpin before the permission change.
	as := newAS(t)
	addr, _ := as.Mmap(PageSize)
	pin, _ := as.Pin(addr, PageSize)
	as.RegisterNotifier(notifierFunc(func(nr NotifierRange) {
		if nr.Reason == InvalidateProtect {
			pin.Unpin()
		}
	}))
	if err := as.MProtect(addr, PageSize, false); err != nil {
		t.Fatal(err)
	}
	if pin.Active() {
		t.Fatal("pin survived mprotect")
	}
}
