package vm

import "fmt"

// Pinned is a get_user_pages-style handle: a set of page frames whose
// physical location is guaranteed stable until Unpin. The handle holds one
// pin reference per page; while any pin reference exists the frame cannot be
// migrated, swapped, or freed (even if the mapping goes away, the frame
// itself survives until the last unpin).
type Pinned struct {
	as     *AddressSpace
	start  Addr // page aligned
	frames []*Frame
	active bool
}

// Pin pins the pages covering [addr, addr+length), faulting them in as
// needed, and returns a handle exposing their frames. It fails with
// ErrBadAddress if any page is outside a mapping — the paper's "application
// gave an invalid segment" case, detected at pin time rather than at region
// declaration (§3.1).
func (as *AddressSpace) Pin(addr Addr, length int) (*Pinned, error) {
	if length <= 0 {
		return nil, fmt.Errorf("vm: pin of %d bytes: %w", length, ErrBadAddress)
	}
	start := PageAlignDown(addr)
	end := PageAlignUp(addr + Addr(length))
	n := int((end - start) >> PageShift)
	p := &Pinned{as: as, start: start, frames: make([]*Frame, 0, n), active: true}
	for a := start; a < end; a += PageSize {
		f, err := as.pinOne(a)
		if err != nil {
			p.unpinAll() // roll back partial pin
			return nil, err
		}
		p.frames = append(p.frames, f)
	}
	return p, nil
}

// PinPages pins exactly count pages starting at the page containing addr,
// beginning at page index first. It is the incremental primitive behind
// overlapped pinning: the driver pins a region in chunks, advancing a
// progress cursor. The returned handle covers only the requested pages.
func (as *AddressSpace) PinPages(addr Addr, first, count int) (*Pinned, error) {
	if count <= 0 || first < 0 {
		return nil, fmt.Errorf("vm: pin pages first=%d count=%d: %w", first, count, ErrBadAddress)
	}
	start := PageAlignDown(addr) + Addr(first)<<PageShift
	p := &Pinned{as: as, start: start, frames: make([]*Frame, 0, count), active: true}
	for i := 0; i < count; i++ {
		f, err := as.pinOne(start + Addr(i)<<PageShift)
		if err != nil {
			p.unpinAll()
			return nil, err
		}
		p.frames = append(p.frames, f)
	}
	return p, nil
}

func (as *AddressSpace) pinOne(a Addr) (*Frame, error) {
	// Pinning faults for write: the device may DMA into the page, so a
	// COW-shared page must be broken now, not when the DMA lands.
	f, err := as.fault(a, true)
	if err != nil {
		return nil, err
	}
	f.pinRefs++
	p := as.pages[a]
	p.pins++
	return f, nil
}

// NumPages reports the number of pinned pages.
func (p *Pinned) NumPages() int { return len(p.frames) }

// Start returns the first pinned page's virtual address.
func (p *Pinned) Start() Addr { return p.start }

// Active reports whether the handle still holds its pins.
func (p *Pinned) Active() bool { return p.active }

// Frame returns pinned page i's frame. This is the translation a driver
// uses for device access: stable for the lifetime of the handle.
func (p *Pinned) Frame(i int) *Frame { return p.frames[i] }

// Unpin drops all pin references. Frames whose mappings are already gone
// are freed here (the put_page of the last reference).
func (p *Pinned) Unpin() error {
	if !p.active {
		return ErrDoubleUnpin
	}
	p.unpinAll()
	return nil
}

func (p *Pinned) unpinAll() {
	for i, f := range p.frames {
		if f == nil {
			continue
		}
		f.pinRefs--
		if f.pinRefs < 0 {
			panic(fmt.Sprintf("vm: negative pin count on frame %d", f.pfn))
		}
		a := p.start + Addr(i)<<PageShift
		if pte, ok := p.as.pages[a]; ok && pte.present && pte.frame == f && pte.pins > 0 {
			pte.pins--
		}
		if f.mapRefs == 0 && f.pinRefs == 0 {
			p.as.phys.release(f)
		}
	}
	p.frames = nil
	p.active = false
}

// ReadAt copies length bytes starting at byte offset off within the pinned
// range into dst, going through the stable frame translations (this is what
// device/bottom-half code does: physical access, no page-table walk).
func (p *Pinned) ReadAt(off int, dst []byte) error {
	return p.access(off, len(dst), func(f *Frame, fo int, n int, done int) {
		f.Read(fo, dst[done:done+n])
	})
}

// WriteAt copies src into the pinned range at byte offset off.
func (p *Pinned) WriteAt(off int, src []byte) error {
	return p.access(off, len(src), func(f *Frame, fo int, n int, done int) {
		f.Write(fo, src[done:done+n])
	})
}

func (p *Pinned) access(off, length int, fn func(f *Frame, frameOff, n, done int)) error {
	if !p.active {
		return fmt.Errorf("vm: access through inactive pin handle: %w", ErrDoubleUnpin)
	}
	if off < 0 || off+length > len(p.frames)*PageSize {
		return fmt.Errorf("vm: pinned access [%d,%d) outside %d pages: %w",
			off, off+length, len(p.frames), ErrBadAddress)
	}
	done := 0
	for done < length {
		idx := (off + done) >> PageShift
		fo := (off + done) & (PageSize - 1)
		n := PageSize - fo
		if n > length-done {
			n = length - done
		}
		fn(p.frames[idx], fo, n, done)
		done += n
	}
	return nil
}
