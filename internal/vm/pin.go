package vm

import "fmt"

// Pinned is a get_user_pages-style handle: a set of page frames whose
// physical location is guaranteed stable until Unpin. The handle holds one
// pin reference per page; while any pin reference exists the frame cannot be
// migrated, swapped, or freed (even if the mapping goes away, the frame
// itself survives until the last unpin).
type Pinned struct {
	as     *AddressSpace
	start  Addr // page aligned
	frames []*Frame
	active bool
}

// Pin pins the pages covering [addr, addr+length), faulting them in as
// needed, and returns a handle exposing their frames. It fails with
// ErrBadAddress if any page is outside a mapping — the paper's "application
// gave an invalid segment" case, detected at pin time rather than at region
// declaration (§3.1).
func (as *AddressSpace) Pin(addr Addr, length int) (*Pinned, error) {
	if length <= 0 {
		return nil, fmt.Errorf("vm: pin of %d bytes: %w", length, ErrBadAddress)
	}
	start := PageAlignDown(addr)
	end := PageAlignUp(addr + Addr(length))
	return as.pinRange(start, int((end-start)>>PageShift))
}

// PinPages pins exactly count pages starting at the page containing addr,
// beginning at page index first. It is the incremental primitive behind
// overlapped pinning: the driver pins a region in chunks, advancing a
// progress cursor. The returned handle covers only the requested pages.
func (as *AddressSpace) PinPages(addr Addr, first, count int) (*Pinned, error) {
	if count <= 0 || first < 0 {
		return nil, fmt.Errorf("vm: pin pages first=%d count=%d: %w", first, count, ErrBadAddress)
	}
	start := PageAlignDown(addr) + Addr(first)<<PageShift
	return as.pinRange(start, count)
}

// pinRange is the range-based get_user_pages: it resolves the mapping once
// per vma and pins pages by walking the PTE slice directly — one traversal,
// no per-page lookups (the batching NP-RDMA and eBPF-mm identify as the
// difference between per-page and per-range costs).
func (as *AddressSpace) pinRange(start Addr, count int) (*Pinned, error) {
	p := &Pinned{as: as, start: start, frames: make([]*Frame, 0, count), active: true}
	a := start
	end := start + Addr(count)<<PageShift
	for a < end {
		vi, ok := as.findVMA(a)
		if !ok {
			p.unpinAll() // roll back partial pin
			return nil, fmt.Errorf("vm: pin at %#x: %w", uint64(a), ErrBadAddress)
		}
		v := as.vmas[vi]
		idx := int((a - v.start) >> PageShift)
		for ; a < end && a < v.end; a += PageSize {
			// Pinning faults for write: the device may DMA into the page, so
			// a COW-shared page must be broken now, not when the DMA lands.
			pt := &v.ptes[idx]
			f, err := as.faultPTE(a, pt, true)
			if err != nil {
				p.unpinAll()
				return nil, err
			}
			f.pinRefs++
			pt.pins++
			p.frames = append(p.frames, f)
			idx++
		}
	}
	return p, nil
}

// NumPages reports the number of pinned pages.
func (p *Pinned) NumPages() int { return len(p.frames) }

// Start returns the first pinned page's virtual address.
func (p *Pinned) Start() Addr { return p.start }

// Active reports whether the handle still holds its pins.
func (p *Pinned) Active() bool { return p.active }

// Frame returns pinned page i's frame. This is the translation a driver
// uses for device access: stable for the lifetime of the handle.
func (p *Pinned) Frame(i int) *Frame { return p.frames[i] }

// Frames returns the handle's frame slice (one entry per pinned page). The
// slice is owned by the handle; callers must not modify it. It lets the
// driver bulk-extend its own translation tables instead of copying frame by
// frame.
func (p *Pinned) Frames() []*Frame { return p.frames }

// Unpin drops all pin references. Frames whose mappings are already gone
// are freed here (the put_page of the last reference).
func (p *Pinned) Unpin() error {
	if !p.active {
		return ErrDoubleUnpin
	}
	p.unpinAll()
	return nil
}

func (p *Pinned) unpinAll() {
	for i, f := range p.frames {
		if f == nil {
			continue
		}
		f.pinRefs--
		if f.pinRefs < 0 {
			panic(fmt.Sprintf("vm: negative pin count on frame %d", f.pfn))
		}
		a := p.start + Addr(i)<<PageShift
		if vi, ok := p.as.findVMA(a); ok {
			if pt := p.as.vmas[vi].pteAt(a); pt.present && pt.frame == f && pt.pins > 0 {
				pt.pins--
			}
		}
		if f.mapRefs == 0 && f.pinRefs == 0 {
			p.as.phys.release(f)
		}
	}
	p.frames = nil
	p.active = false
}

// ReadAt copies length bytes starting at byte offset off within the pinned
// range into dst, going through the stable frame translations (this is what
// device/bottom-half code does: physical access, no page-table walk).
func (p *Pinned) ReadAt(off int, dst []byte) error {
	return p.access(off, len(dst), func(f *Frame, fo int, n int, done int) {
		f.Read(fo, dst[done:done+n])
	})
}

// WriteAt copies src into the pinned range at byte offset off.
func (p *Pinned) WriteAt(off int, src []byte) error {
	return p.access(off, len(src), func(f *Frame, fo int, n int, done int) {
		f.Write(fo, src[done:done+n])
	})
}

func (p *Pinned) access(off, length int, fn func(f *Frame, frameOff, n, done int)) error {
	if !p.active {
		return fmt.Errorf("vm: access through inactive pin handle: %w", ErrDoubleUnpin)
	}
	if off < 0 || off+length > len(p.frames)*PageSize {
		return fmt.Errorf("vm: pinned access [%d,%d) outside %d pages: %w",
			off, off+length, len(p.frames), ErrBadAddress)
	}
	done := 0
	for done < length {
		idx := (off + done) >> PageShift
		fo := (off + done) & (PageSize - 1)
		n := PageSize - fo
		if n > length-done {
			n = length - done
		}
		fn(p.frames[idx], fo, n, done)
		done += n
	}
	return nil
}
