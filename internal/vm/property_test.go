package vm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropPinCountsBalance drives a random sequence of pin/unpin operations
// and verifies the core accounting invariant: after releasing every handle,
// no frame carries a pin reference and frame counts return to the mapped
// baseline.
func TestPropPinCountsBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phys := NewPhysMem(0)
		as := NewAddressSpace(1, phys)
		const pages = 32
		addr, _ := as.Mmap(pages * PageSize)
		var handles []*Pinned
		for op := 0; op < 100; op++ {
			if rng.Intn(2) == 0 || len(handles) == 0 {
				first := rng.Intn(pages)
				count := 1 + rng.Intn(pages-first)
				h, err := as.PinPages(addr, first, count)
				if err != nil {
					return false
				}
				handles = append(handles, h)
			} else {
				i := rng.Intn(len(handles))
				handles[i].Unpin()
				handles = append(handles[:i], handles[i+1:]...)
			}
		}
		for _, h := range handles {
			if h.Unpin() != nil {
				return false
			}
		}
		for a := addr; a < addr+pages*PageSize; a += PageSize {
			if f, ok := as.FrameAt(a); ok && f.PinCount() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropPinnedFramesStableUnderVMPressure checks the paper's fundamental
// pinning guarantee: whatever mix of migration and swap pressure the OS
// applies, the frames under an active pin handle never change and their data
// stays intact.
func TestPropPinnedFramesStableUnderVMPressure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		as := NewAddressSpace(1, NewPhysMem(0))
		const pages = 16
		addr, _ := as.Mmap(pages * PageSize)
		payload := make([]byte, pages*PageSize)
		rng.Read(payload)
		as.Write(addr, payload)

		first := rng.Intn(pages)
		count := 1 + rng.Intn(pages-first)
		pin, err := as.PinPages(addr, first, count)
		if err != nil {
			return false
		}
		before := make([]*Frame, count)
		for i := 0; i < count; i++ {
			before[i] = pin.Frame(i)
		}
		for i := 0; i < 20; i++ {
			switch rng.Intn(2) {
			case 0:
				as.Migrate(addr, pages*PageSize)
			case 1:
				as.SwapOut(addr, pages*PageSize)
				// Touch a random page to force swap-ins interleaved with pins.
				a := addr + Addr(rng.Intn(pages))<<PageShift
				as.Read(a, make([]byte, 8))
			}
		}
		for i := 0; i < count; i++ {
			if pin.Frame(i) != before[i] {
				return false
			}
		}
		got := make([]byte, count*PageSize)
		if pin.ReadAt(0, got) != nil {
			return false
		}
		want := payload[first*PageSize : (first+count)*PageSize]
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		pin.Unpin()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropMallocFreeNoLeaks runs random malloc/free sequences and verifies
// that all frames are reclaimed once everything is freed and unmapped
// regions reject access.
func TestPropMallocFreeNoLeaks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phys := NewPhysMem(0)
		as := NewAddressSpace(1, phys)
		al, err := NewAllocator(as, 0, 1<<20)
		if err != nil {
			return false
		}
		type alloc struct {
			addr Addr
			size int
		}
		var live []alloc
		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				var size int
				if rng.Intn(3) == 0 {
					size = MmapThreshold + rng.Intn(1<<20)
				} else {
					size = 1 + rng.Intn(8192)
				}
				a, err := al.Malloc(size)
				if err != nil {
					continue // arena may fill up; that's fine
				}
				// Touch the first and last byte so frames materialize.
				if as.Write(a, []byte{1}) != nil {
					return false
				}
				if as.Write(a+Addr(size-1), []byte{2}) != nil {
					return false
				}
				live = append(live, alloc{a, size})
			} else {
				i := rng.Intn(len(live))
				if al.Free(live[i].addr) != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		for _, a := range live {
			if al.Free(a.addr) != nil {
				return false
			}
		}
		// Only arena frames may remain (the arena itself stays mapped).
		return phys.FramesInUse() <= (1<<20)/PageSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropWriteReadRoundTrip: arbitrary writes at arbitrary offsets read
// back exactly, across page boundaries.
func TestPropWriteReadRoundTrip(t *testing.T) {
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		as := NewAddressSpace(1, NewPhysMem(0))
		size := int(off) + len(data) + PageSize
		addr, err := as.Mmap(size)
		if err != nil {
			return false
		}
		if as.Write(addr+Addr(off), data) != nil {
			return false
		}
		got := make([]byte, len(data))
		if as.Read(addr+Addr(off), got) != nil {
			return false
		}
		for i := range got {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropMunmapAlwaysNotifiesWholeRange: for random mapped layouts, every
// munmap fires exactly one unmap notification covering the range, before
// the pages disappear.
func TestPropMunmapAlwaysNotifiesWholeRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		as := NewAddressSpace(1, NewPhysMem(0))
		rec := &recordingNotifier{}
		as.RegisterNotifier(rec)
		var addrs []Addr
		var sizes []int
		for i := 0; i < 5; i++ {
			size := PageSize * (1 + rng.Intn(8))
			a, err := as.Mmap(size)
			if err != nil {
				return false
			}
			addrs = append(addrs, a)
			sizes = append(sizes, size)
		}
		for i := range addrs {
			n := len(rec.ranges)
			if as.Munmap(addrs[i], sizes[i]) != nil {
				return false
			}
			if len(rec.ranges) != n+1 {
				return false
			}
			nr := rec.ranges[n]
			if nr.Start != addrs[i] || nr.End != addrs[i]+Addr(sizes[i]) || nr.Reason != InvalidateUnmap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
