package vm

import "testing"

// fillPages writes one distinct byte per page so round trips are checkable.
func fillPages(t *testing.T, as *AddressSpace, addr Addr, pages int) {
	t.Helper()
	for i := 0; i < pages; i++ {
		if err := as.Write(addr+Addr(i)<<PageShift, []byte{byte(i + 1)}); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}
}

func TestWatermarkDefaults(t *testing.T) {
	pm := NewPhysMem(64)
	pm.SetWatermarks(0, 0)
	if pm.LowWatermark() != 8 || pm.HighWatermark() != 16 {
		t.Fatalf("defaults = (%d, %d), want (8, 16)", pm.LowWatermark(), pm.HighWatermark())
	}
	if pm.NeedsKswapd() {
		t.Fatal("empty memory should not need kswapd")
	}
}

func TestKswapdPassReclaimsToHighWatermark(t *testing.T) {
	pm := NewPhysMem(32)
	pm.SetWatermarks(4, 8)
	as := NewAddressSpace(1, pm)
	addr, _ := as.Mmap(30 * PageSize)
	fillPages(t, as, addr, 30) // free = 2 < low
	if !pm.NeedsKswapd() {
		t.Fatalf("free = %d, watermark logic broken", pm.FreeFrames())
	}
	var hookScanned, hookStolen int
	var hookDirect bool
	pm.SetReclaimHook(func(scanned, stolen int, direct bool) {
		hookScanned, hookStolen, hookDirect = scanned, stolen, direct
	})
	scanned, stolen := pm.KswapdPass()
	if stolen == 0 || pm.FreeFrames() < pm.HighWatermark() {
		t.Fatalf("kswapd stole %d, free now %d (want >= %d)", stolen, pm.FreeFrames(), pm.HighWatermark())
	}
	if hookScanned != scanned || hookStolen != stolen || hookDirect {
		t.Fatalf("reclaim hook got (%d, %d, %v), want (%d, %d, false)",
			hookScanned, hookStolen, hookDirect, scanned, stolen)
	}
	rs := pm.ReclaimStats()
	if rs.KswapdRuns != 1 || rs.KswapdSteals != uint64(stolen) || rs.PgSteal != uint64(stolen) {
		t.Fatalf("stats %+v inconsistent with stolen=%d", rs, stolen)
	}
	if pm.OccupiedPages() != 30 {
		t.Fatalf("OccupiedPages = %d, want 30 (frames + swap)", pm.OccupiedPages())
	}
	// Satisfied kswapd does not run again.
	if s, st := pm.KswapdPass(); s != 0 || st != 0 {
		t.Fatalf("second pass did work (%d, %d) above the low watermark", s, st)
	}
}

func TestReclaimEvictsColdPagesFirst(t *testing.T) {
	pm := NewPhysMem(8)
	as := NewAddressSpace(1, pm)
	addr, _ := as.Mmap(8 * PageSize)
	fillPages(t, as, addr, 8)
	// First shrink ages the four oldest pages (0..3) onto the inactive
	// list and steals the two coldest: pages 0 and 1.
	if _, stolen := pm.shrink(2); stolen != 2 {
		t.Fatal("first shrink did not steal 2")
	}
	if as.PageResident(addr) || as.PageResident(addr+PageSize) {
		t.Fatal("oldest pages survived the first shrink")
	}
	// Second touch promotes page 2 off the inactive list...
	if err := as.Read(addr+2*PageSize, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	// ...so the next steal takes page 3, not page 2.
	if _, stolen := pm.shrink(1); stolen != 1 {
		t.Fatal("second shrink did not steal")
	}
	if !as.PageResident(addr + 2*PageSize) {
		t.Fatal("promoted (re-touched) page was reclaimed")
	}
	if as.PageResident(addr + 3*PageSize) {
		t.Fatal("cold page 3 survived ahead of the promoted page")
	}
}

func TestReclaimFiresSwapNotifier(t *testing.T) {
	pm := NewPhysMem(8)
	as := NewAddressSpace(1, pm)
	rec := &recordingNotifier{}
	as.RegisterNotifier(rec)
	addr, _ := as.Mmap(8 * PageSize)
	fillPages(t, as, addr, 8)
	if _, stolen := pm.shrink(2); stolen != 2 {
		t.Fatal("shrink did not steal")
	}
	swaps := 0
	for _, nr := range rec.ranges {
		if nr.Reason == InvalidateSwap {
			swaps++
			if nr.End-nr.Start != PageSize {
				t.Fatalf("reclaim notification spans %d bytes, want one page", nr.End-nr.Start)
			}
		}
	}
	if swaps != 2 {
		t.Fatalf("got %d swap notifications, want 2", swaps)
	}
	if as.Notifications(InvalidateSwap) != 2 {
		t.Fatalf("Notifications(swap) = %d, want 2", as.Notifications(InvalidateSwap))
	}
}

func TestReclaimSkipsPinnedFrames(t *testing.T) {
	pm := NewPhysMem(8)
	as := NewAddressSpace(1, pm)
	addr, _ := as.Mmap(8 * PageSize)
	fillPages(t, as, addr, 8)
	h, err := as.PinPages(addr, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, stolen := pm.shrink(4); stolen != 0 {
		t.Fatalf("stole %d pinned frames", stolen)
	}
	if rs := pm.ReclaimStats(); rs.PinnedResists == 0 {
		t.Fatalf("pinned frames scanned without a resist count: %+v", rs)
	}
	h.Unpin()
	if _, stolen := pm.shrink(4); stolen != 4 {
		t.Fatal("unpinned frames should reclaim")
	}
}

func TestReclaimSkipsSharedFrames(t *testing.T) {
	pm := NewPhysMem(32)
	as := NewAddressSpace(1, pm)
	addr, _ := as.Mmap(4 * PageSize)
	fillPages(t, as, addr, 4)
	child, err := as.Fork(2)
	if err != nil {
		t.Fatal(err)
	}
	// Every frame is now COW-shared (mapRefs == 2): the single-owner
	// reclaim path must leave them alone.
	if _, stolen := pm.shrink(4); stolen != 0 {
		t.Fatalf("stole %d COW-shared frames", stolen)
	}
	_ = child
}

func TestReclaimReownsFrameAfterParentUnmaps(t *testing.T) {
	pm := NewPhysMem(32)
	as := NewAddressSpace(1, pm)
	addr, _ := as.Mmap(4 * PageSize)
	fillPages(t, as, addr, 4)
	child, err := as.Fork(2)
	if err != nil {
		t.Fatal(err)
	}
	// Parent drops its mappings: the child is now sole mapper, but the
	// frames' reverse mappings pointed at the parent and were cleared.
	if err := as.Munmap(addr, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if _, stolen := pm.shrink(4); stolen != 0 {
		t.Fatalf("stole %d frames through a cleared reverse mapping", stolen)
	}
	// One child touch re-owns the frames; they reclaim normally again.
	if err := child.Read(addr, make([]byte, 4*PageSize)); err != nil {
		t.Fatal(err)
	}
	if _, stolen := pm.shrink(4); stolen != 4 {
		t.Fatalf("stole %d child frames after re-adoption, want 4", stolen)
	}
	if pm.SwappedPages() == 0 {
		t.Fatal("reclaimed child pages missing from swap accounting")
	}
}

func TestSwapAccountingAcrossTeardown(t *testing.T) {
	pm := NewPhysMem(0)
	as := NewAddressSpace(1, pm)
	addr, _ := as.Mmap(4 * PageSize)
	fillPages(t, as, addr, 4)
	if n, err := as.SwapOut(addr, 4*PageSize); err != nil || n != 4 {
		t.Fatalf("SwapOut = (%d, %v)", n, err)
	}
	if pm.SwappedPages() != 4 || pm.SwappedBytes() != 4*PageSize {
		t.Fatalf("swap accounting = (%d pages, %d bytes), want (4, %d)",
			pm.SwappedPages(), pm.SwappedBytes(), 4*PageSize)
	}
	if pm.OccupiedPages() != 4 || pm.FramesInUse() != 0 {
		t.Fatalf("occupancy = %d frames-in-use = %d", pm.OccupiedPages(), pm.FramesInUse())
	}
	// Swap one page back in; the slot empties.
	if err := as.Read(addr, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if pm.SwappedPages() != 3 {
		t.Fatalf("SwappedPages = %d after swap-in, want 3", pm.SwappedPages())
	}
	// Unmapping drops the remaining slots.
	if err := as.Munmap(addr, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if pm.SwappedPages() != 0 || pm.SwappedBytes() != 0 {
		t.Fatalf("swap accounting leaked: (%d pages, %d bytes)", pm.SwappedPages(), pm.SwappedBytes())
	}
	if pm.PeakOccupied() < 4 {
		t.Fatalf("PeakOccupied = %d, want >= 4", pm.PeakOccupied())
	}
}

func TestDirectReclaimChargesHook(t *testing.T) {
	pm := NewPhysMem(4)
	as := NewAddressSpace(1, pm)
	addr, _ := as.Mmap(6 * PageSize)
	direct := 0
	pm.SetReclaimHook(func(scanned, stolen int, isDirect bool) {
		if isDirect {
			direct++
		}
	})
	fillPages(t, as, addr, 6)
	if direct == 0 {
		t.Fatal("direct reclaim never reported through the hook")
	}
	if rs := pm.ReclaimStats(); rs.DirectStalls == 0 || rs.DirectSteals == 0 {
		t.Fatalf("direct reclaim stats empty: %+v", rs)
	}
}
