package vm

import (
	"bytes"
	"testing"
)

// pinnedPair maps and pins one page in each of two address spaces sharing
// physical memory, returning the source and destination frames.
func pinnedPair(t *testing.T) (*AddressSpace, *Pinned, *Pinned) {
	t.Helper()
	pm := NewPhysMem(0)
	as := NewAddressSpace(1, pm)
	srcAddr, err := as.Mmap(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	dstAddr, err := as.Mmap(PageSize)
	if err != nil {
		t.Fatal(err)
	}
	src, err := as.Pin(srcAddr, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := as.Pin(dstAddr, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	return as, src, dst
}

// TestBufZeroPagesStayUnmaterialized: referencing and writing all-zero
// pages must never allocate page data on either side.
func TestBufZeroPagesStayUnmaterialized(t *testing.T) {
	_, src, dst := pinnedPair(t)
	var b Buf
	b.AppendFrame(src.Frame(0), 0, PageSize)
	if b.Len() != PageSize {
		t.Fatalf("Len = %d, want %d", b.Len(), PageSize)
	}
	w := NewBufWriter(&b)
	w.WriteTo(dst.Frame(0), 0, PageSize)
	if src.Frame(0).data != nil || dst.Frame(0).data != nil {
		t.Fatal("zero pages were materialized by a Buf round trip")
	}
	got := make([]byte, 16)
	dst.Frame(0).Read(0, got)
	if !bytes.Equal(got, make([]byte, 16)) {
		t.Fatalf("dst reads %v, want zeros", got)
	}
}

// TestBufAdoptSharesAndCOWIsolates: writing a full-page chunk adopts the
// source buffer by reference; a later write to either frame clones first,
// so each side keeps its own snapshot.
func TestBufAdoptSharesAndCOWIsolates(t *testing.T) {
	_, src, dst := pinnedPair(t)
	payload := bytes.Repeat([]byte{0xAB}, PageSize)
	src.Frame(0).Write(0, payload)

	var b Buf
	b.AppendFrame(src.Frame(0), 0, PageSize)
	w := NewBufWriter(&b)
	w.WriteTo(dst.Frame(0), 0, PageSize)
	if &src.Frame(0).data[0] != &dst.Frame(0).data[0] {
		t.Fatal("full-page write did not adopt the source buffer by reference")
	}

	// Writing the source must clone, leaving the destination's snapshot
	// intact.
	src.Frame(0).Write(0, []byte{0xCD})
	got := make([]byte, 2)
	dst.Frame(0).Read(0, got)
	if got[0] != 0xAB || got[1] != 0xAB {
		t.Fatalf("dst sees source mutation: %v", got)
	}
	srcGot := make([]byte, 2)
	src.Frame(0).Read(0, srcGot)
	if srcGot[0] != 0xCD || srcGot[1] != 0xAB {
		t.Fatalf("src = %v, want [cd ab]", srcGot)
	}
}

// TestBufSnapshotSurvivesSourceRewrite: a Buf taken before a source write
// must read the referenced-time contents (the eager-copy semantics the
// zero-copy path replaces).
func TestBufSnapshotSurvivesSourceRewrite(t *testing.T) {
	_, src, _ := pinnedPair(t)
	src.Frame(0).Write(0, []byte("snapshot"))
	var b Buf
	b.AppendFrame(src.Frame(0), 0, 8)
	src.Frame(0).Write(0, []byte("REWRITE!"))
	if got := string(b.Bytes()); got != "snapshot" {
		t.Fatalf("Buf reads %q, want %q", got, "snapshot")
	}
}

// TestBufPartialPageCopies: partial-page chunks copy rather than adopt, and
// land at the right offsets.
func TestBufPartialPageCopies(t *testing.T) {
	_, src, dst := pinnedPair(t)
	src.Frame(0).Write(100, []byte("hello"))
	var b Buf
	b.AppendFrame(src.Frame(0), 100, 5)
	b.AppendZeros(3)
	b.AppendFrame(src.Frame(0), 100, 5)
	if b.Len() != 13 {
		t.Fatalf("Len = %d, want 13", b.Len())
	}
	w := NewBufWriter(&b)
	w.WriteTo(dst.Frame(0), 200, 13)
	got := make([]byte, 13)
	dst.Frame(0).Read(200, got)
	want := append(append([]byte("hello"), 0, 0, 0), []byte("hello")...)
	if !bytes.Equal(got, want) {
		t.Fatalf("dst = %q, want %q", got, want)
	}
	if dst.Frame(0).shared {
		t.Fatal("partial-page write marked destination shared")
	}
}
