package vm

import "testing"

// selfUnregisteringNotifier removes itself from the address space on its
// first callback — what a driver teardown racing an invalidation does.
type selfUnregisteringNotifier struct {
	as    *AddressSpace
	calls int
}

func (n *selfUnregisteringNotifier) InvalidateRange(NotifierRange) {
	n.calls++
	n.as.UnregisterNotifier(n)
}

// TestNotifySurvivesUnregisterDuringCallback is the regression test for
// the notifier-iteration bug: UnregisterNotifier during a callback shifts
// the notifier slice under a live range loop, which used to make notify
// skip the next listener entirely. Every registered notifier must see the
// event, regardless of what earlier callbacks do to the list.
func TestNotifySurvivesUnregisterDuringCallback(t *testing.T) {
	as := NewAddressSpace(1, NewPhysMem(0))
	first := &selfUnregisteringNotifier{as: as}
	second := &recordingNotifier{}
	third := &recordingNotifier{}
	as.RegisterNotifier(first)
	as.RegisterNotifier(second)
	as.RegisterNotifier(third)

	addr, _ := as.Mmap(PageSize)
	if err := as.Munmap(addr, PageSize); err != nil {
		t.Fatal(err)
	}
	if first.calls != 1 {
		t.Fatalf("first notifier called %d times, want 1", first.calls)
	}
	// The live-slice iteration bug skipped the listener after the
	// unregistering one and double-delivered to the stale tail slot.
	if len(second.ranges) != 1 {
		t.Fatalf("second notifier saw %d events, want 1", len(second.ranges))
	}
	if len(third.ranges) != 1 {
		t.Fatalf("third notifier saw %d events, want 1", len(third.ranges))
	}
	// The unregistration stuck: the next event reaches only the survivors.
	addr2, _ := as.Mmap(PageSize)
	if err := as.Munmap(addr2, PageSize); err != nil {
		t.Fatal(err)
	}
	if first.calls != 1 || len(second.ranges) != 2 || len(third.ranges) != 2 {
		t.Fatalf("after unregister: first = %d calls, second = %d, third = %d events",
			first.calls, len(second.ranges), len(third.ranges))
	}
}

// registeringNotifier attaches a new listener from inside a callback.
type registeringNotifier struct {
	as    *AddressSpace
	added *recordingNotifier
}

func (n *registeringNotifier) InvalidateRange(NotifierRange) {
	if n.added == nil {
		n.added = &recordingNotifier{}
		n.as.RegisterNotifier(n.added)
	}
}

// TestNotifyRegisterDuringCallback: a listener registered mid-event does
// not see the in-flight event but sees subsequent ones.
func TestNotifyRegisterDuringCallback(t *testing.T) {
	as := NewAddressSpace(1, NewPhysMem(0))
	reg := &registeringNotifier{as: as}
	as.RegisterNotifier(reg)
	addr, _ := as.Mmap(2 * PageSize)
	if err := as.Munmap(addr, PageSize); err != nil {
		t.Fatal(err)
	}
	if reg.added == nil || len(reg.added.ranges) != 0 {
		t.Fatalf("mid-event registration saw the in-flight event")
	}
	if err := as.Munmap(addr+PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	if len(reg.added.ranges) != 1 {
		t.Fatalf("late-registered notifier saw %d events, want 1", len(reg.added.ranges))
	}
}

// TestSwapRoundTripPreservesReadOnly is the regression test for the
// swap-in writability bug: a read-only (COW/mprotect-protected) page that
// takes a swap round trip used to come back silently writable, so the
// next application write skipped breakCOW — no COW notifier fired and the
// driver kept a translation that assumed the old sharing. The write after
// swap-in must still break COW.
func TestSwapRoundTripPreservesReadOnly(t *testing.T) {
	as := NewAddressSpace(1, NewPhysMem(0))
	rec := &recordingNotifier{}
	as.RegisterNotifier(rec)
	addr, _ := as.Mmap(PageSize)
	if err := as.Write(addr, []byte{42}); err != nil {
		t.Fatal(err)
	}
	if err := as.MarkCOW(addr, PageSize); err != nil {
		t.Fatal(err)
	}
	if n, err := as.SwapOut(addr, PageSize); err != nil || n != 1 {
		t.Fatalf("SwapOut = (%d, %v)", n, err)
	}
	// Read fault brings the page back; it must stay read-only.
	if err := as.Read(addr, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	cowsBefore := as.COWBreaks()
	if err := as.Write(addr, []byte{43}); err != nil {
		t.Fatal(err)
	}
	if as.COWBreaks() != cowsBefore+1 {
		t.Fatalf("write after swap round trip did not break COW (breaks %d -> %d)",
			cowsBefore, as.COWBreaks())
	}
	found := false
	for _, nr := range rec.ranges {
		if nr.Reason == InvalidateCOW && nr.Start == addr {
			found = true
		}
	}
	if !found {
		t.Fatal("no InvalidateCOW notification for the post-swap write")
	}
}

// TestSwapOutKeepsDataOfSharedFrame covers the companion sweep fix: a
// COW-shared frame (parent and child map it after fork) used to have its
// data *stolen* when one side swapped out, so the other side silently
// read zeros. Swap-out of a still-mapped frame must snapshot, not steal.
func TestSwapOutKeepsDataOfSharedFrame(t *testing.T) {
	as := NewAddressSpace(1, NewPhysMem(0))
	addr, _ := as.Mmap(PageSize)
	payload := []byte("shared-after-fork")
	if err := as.Write(addr, payload); err != nil {
		t.Fatal(err)
	}
	child, err := as.Fork(2)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := as.SwapOut(addr, PageSize); err != nil || n != 1 {
		t.Fatalf("SwapOut = (%d, %v)", n, err)
	}
	got := make([]byte, len(payload))
	if err := child.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("child read %q after parent swap-out, want %q", got, payload)
	}
	// The parent's copy survives the round trip too.
	if err := as.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("parent read %q after swap round trip, want %q", got, payload)
	}
}

// TestForkSwappedPageComesBackReadOnly: both sides of a fork-shared
// *swapped* page fault back in read-only, so the first write after
// swap-in breaks the share instead of scribbling on aliased data.
func TestForkSwappedPageComesBackReadOnly(t *testing.T) {
	as := NewAddressSpace(1, NewPhysMem(0))
	addr, _ := as.Mmap(PageSize)
	if err := as.Write(addr, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if n, err := as.SwapOut(addr, PageSize); err != nil || n != 1 {
		t.Fatalf("SwapOut = (%d, %v)", n, err)
	}
	child, err := as.Fork(2)
	if err != nil {
		t.Fatal(err)
	}
	// Parent writes after swap-in: must COW-break, leaving the child's
	// aliased swap data intact.
	if err := as.Write(addr, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if as.COWBreaks() != 1 {
		t.Fatalf("parent COWBreaks = %d, want 1", as.COWBreaks())
	}
	got := make([]byte, 1)
	if err := child.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatalf("child read %d after parent's post-swap write, want 7", got[0])
	}
}
