// Package vm simulates the virtual-memory subsystem the paper's mechanism
// lives in: per-process address spaces with demand-paged 4 KiB pages,
// physical frames carrying real data, page pinning with per-page pin counts
// (the get_user_pages/put_page analogue), copy-on-write, page migration,
// swap, and — centrally — MMU notifiers: callbacks invoked *before* any
// mapping change, which is what lets the Open-MX driver keep a reliable
// kernel-side pinning cache (paper §2.1, §3.1).
//
// The package models state and semantics only; CPU time for pinning and
// copying is charged by callers (the driver) on cpu.Core work queues.
package vm

import (
	"errors"
	"fmt"
	"sort"
)

// PageSize is the size of a virtual page and physical frame.
const (
	PageSize  = 4096
	PageShift = 12
)

// Addr is a virtual address within an AddressSpace.
type Addr uint64

// PageAlignDown rounds a down to a page boundary.
func PageAlignDown(a Addr) Addr { return a &^ (PageSize - 1) }

// PageAlignUp rounds a up to a page boundary.
func PageAlignUp(a Addr) Addr { return (a + PageSize - 1) &^ (PageSize - 1) }

// PageCount reports the number of pages spanned by [addr, addr+length).
func PageCount(addr Addr, length int) int {
	if length <= 0 {
		return 0
	}
	first := PageAlignDown(addr)
	last := PageAlignUp(addr + Addr(length))
	return int((last - first) >> PageShift)
}

// Errors returned by address-space operations.
var (
	ErrBadAddress  = errors.New("vm: address range not mapped")
	ErrPinned      = errors.New("vm: page is pinned")
	ErrNoMemory    = errors.New("vm: out of physical frames")
	ErrBadUnmap    = errors.New("vm: unmap range does not match a mapping")
	ErrNotSwapped  = errors.New("vm: page not swapped")
	ErrDoubleUnpin = errors.New("vm: unpin without matching pin")
)

// Frame is a physical page frame. Its data is allocated lazily on first
// write; unwritten frames read as zeros.
type Frame struct {
	pfn     uint64
	data    []byte
	mapRefs int // number of PTEs referencing this frame
	pinRefs int // get_user_pages-style references
	freed   bool
}

// PFN returns the frame's physical frame number.
func (f *Frame) PFN() uint64 { return f.pfn }

// PinCount returns the frame's current pin reference count.
func (f *Frame) PinCount() int { return f.pinRefs }

// Read copies min(len(dst), PageSize-off) bytes from the frame at off.
func (f *Frame) Read(off int, dst []byte) int {
	if f.freed {
		panic(fmt.Sprintf("vm: read of freed frame %d", f.pfn))
	}
	n := len(dst)
	if off+n > PageSize {
		n = PageSize - off
	}
	if n <= 0 {
		return 0
	}
	if f.data == nil {
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return n
	}
	copy(dst[:n], f.data[off:off+n])
	return n
}

// Write copies min(len(src), PageSize-off) bytes into the frame at off.
func (f *Frame) Write(off int, src []byte) int {
	if f.freed {
		panic(fmt.Sprintf("vm: write to freed frame %d", f.pfn))
	}
	n := len(src)
	if off+n > PageSize {
		n = PageSize - off
	}
	if n <= 0 {
		return 0
	}
	if f.data == nil {
		f.data = make([]byte, PageSize)
	}
	copy(f.data[off:off+n], src[:n])
	return n
}

// PhysMem is the machine's physical memory: a frame allocator with a
// capacity limit and usage accounting.
type PhysMem struct {
	capacity int // frames; 0 = unlimited
	nextPFN  uint64
	inUse    int
	peak     int
}

// NewPhysMem returns physical memory with capacity frames (0 = unlimited).
func NewPhysMem(capacity int) *PhysMem {
	return &PhysMem{capacity: capacity}
}

// FramesInUse reports the number of live frames.
func (pm *PhysMem) FramesInUse() int { return pm.inUse }

// PeakFrames reports the high-water mark of live frames.
func (pm *PhysMem) PeakFrames() int { return pm.peak }

// Capacity reports the configured frame limit (0 = unlimited).
func (pm *PhysMem) Capacity() int { return pm.capacity }

func (pm *PhysMem) alloc() (*Frame, error) {
	if pm.capacity > 0 && pm.inUse >= pm.capacity {
		return nil, ErrNoMemory
	}
	pm.nextPFN++
	pm.inUse++
	if pm.inUse > pm.peak {
		pm.peak = pm.inUse
	}
	return &Frame{pfn: pm.nextPFN}, nil
}

func (pm *PhysMem) release(f *Frame) {
	if f.freed {
		panic(fmt.Sprintf("vm: double free of frame %d", f.pfn))
	}
	if f.mapRefs != 0 || f.pinRefs != 0 {
		panic(fmt.Sprintf("vm: freeing frame %d with refs map=%d pin=%d", f.pfn, f.mapRefs, f.pinRefs))
	}
	f.freed = true
	f.data = nil
	pm.inUse--
}

// pte is a page-table entry.
type pte struct {
	frame    *Frame
	present  bool
	writable bool // false while COW-shared
	swapped  bool
	swapData []byte // contents saved at swap-out
	pins     int    // pins through *this mapping*
}

// vma is a mapped virtual region (anonymous memory only).
type vma struct {
	start, end Addr // page aligned, [start, end)
}

// NotifierRange describes an invalidated virtual range.
type NotifierRange struct {
	Start Addr
	End   Addr // exclusive
	// Reason tells the listener why the range is going away, mirroring the
	// distinct MMU-notifier call sites in Linux.
	Reason InvalidateReason
}

// InvalidateReason enumerates the mapping-change causes that fire notifiers.
type InvalidateReason int

const (
	// InvalidateUnmap: the range is being munmap'ed (e.g. free of a large
	// malloc'd buffer).
	InvalidateUnmap InvalidateReason = iota
	// InvalidateCOW: a page is being duplicated on copy-on-write.
	InvalidateCOW
	// InvalidateMigrate: the OS is moving the page to another frame.
	InvalidateMigrate
	// InvalidateSwap: the page is being written to swap.
	InvalidateSwap
	// InvalidateProtect: page permissions are changing (mprotect).
	InvalidateProtect
)

// String names the reason.
func (r InvalidateReason) String() string {
	switch r {
	case InvalidateUnmap:
		return "unmap"
	case InvalidateCOW:
		return "cow"
	case InvalidateMigrate:
		return "migrate"
	case InvalidateSwap:
		return "swap"
	case InvalidateProtect:
		return "mprotect"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// Notifier receives MMU-notifier callbacks. InvalidateRange is called
// synchronously *before* the mapping change takes effect, exactly like
// mmu_notifier invalidate_range_start in Linux 2.6.27: listeners must drop
// their use of the pages (unpin) before returning.
type Notifier interface {
	InvalidateRange(r NotifierRange)
}

// AddressSpace is a simulated process address space.
type AddressSpace struct {
	pid       int
	phys      *PhysMem
	vmas      []vma // sorted by start
	pages     map[Addr]*pte
	notifiers []Notifier

	mmapNext Addr // bump pointer for fresh mappings

	// Statistics.
	faults      uint64
	cowBreaks   uint64
	swapIns     uint64
	notifyCount map[InvalidateReason]uint64
}

// mmapBase is where anonymous mappings start; an arbitrary but recognizable
// constant well away from zero so nil-ish addresses fault loudly.
const mmapBase Addr = 0x7f00_0000_0000

// NewAddressSpace returns an empty address space for process pid backed by
// phys.
func NewAddressSpace(pid int, phys *PhysMem) *AddressSpace {
	return &AddressSpace{
		pid:         pid,
		phys:        phys,
		pages:       make(map[Addr]*pte),
		mmapNext:    mmapBase,
		notifyCount: make(map[InvalidateReason]uint64),
	}
}

// PID returns the owning process id.
func (as *AddressSpace) PID() int { return as.pid }

// Phys returns the backing physical memory.
func (as *AddressSpace) Phys() *PhysMem { return as.phys }

// Faults reports the number of demand faults served.
func (as *AddressSpace) Faults() uint64 { return as.faults }

// COWBreaks reports the number of copy-on-write duplications performed.
func (as *AddressSpace) COWBreaks() uint64 { return as.cowBreaks }

// SwapIns reports the number of pages faulted back from swap.
func (as *AddressSpace) SwapIns() uint64 { return as.swapIns }

// Notifications reports how many notifier callbacks have fired for reason r.
func (as *AddressSpace) Notifications(r InvalidateReason) uint64 { return as.notifyCount[r] }

// RegisterNotifier attaches an MMU notifier to the address space (the
// driver does this when an endpoint is opened, paper §3.1).
func (as *AddressSpace) RegisterNotifier(n Notifier) {
	as.notifiers = append(as.notifiers, n)
}

// UnregisterNotifier detaches a notifier.
func (as *AddressSpace) UnregisterNotifier(n Notifier) {
	for i, x := range as.notifiers {
		if x == n {
			as.notifiers = append(as.notifiers[:i], as.notifiers[i+1:]...)
			return
		}
	}
}

func (as *AddressSpace) notify(start, end Addr, reason InvalidateReason) {
	as.notifyCount[reason]++
	for _, n := range as.notifiers {
		n.InvalidateRange(NotifierRange{Start: start, End: end, Reason: reason})
	}
}

// Mmap maps length bytes of fresh anonymous memory at a kernel-chosen
// address and returns that address. Pages materialize on first access.
func (as *AddressSpace) Mmap(length int) (Addr, error) {
	if length <= 0 {
		return 0, fmt.Errorf("vm: mmap length %d: %w", length, ErrBadAddress)
	}
	size := Addr(PageAlignUp(Addr(length)))
	addr := as.mmapNext
	as.mmapNext += size + PageSize // guard page gap
	as.insertVMA(vma{start: addr, end: addr + size})
	return addr, nil
}

// MmapFixed maps [addr, addr+length) exactly; used by the malloc arena to
// reuse freed ranges. The range must be page aligned and unmapped.
func (as *AddressSpace) MmapFixed(addr Addr, length int) error {
	if addr != PageAlignDown(addr) || length <= 0 {
		return ErrBadAddress
	}
	end := addr + PageAlignUp(Addr(length))
	for _, v := range as.vmas {
		if addr < v.end && v.start < end {
			return fmt.Errorf("vm: fixed mapping overlaps existing vma: %w", ErrBadAddress)
		}
	}
	as.insertVMA(vma{start: addr, end: end})
	return nil
}

func (as *AddressSpace) insertVMA(v vma) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].start >= v.start })
	as.vmas = append(as.vmas, vma{})
	copy(as.vmas[i+1:], as.vmas[i:])
	as.vmas[i] = v
}

// Munmap removes the mapping covering exactly [addr, addr+length) (page
// granular). MMU notifiers fire before the teardown. Pages that are still
// pinned after the notifiers return keep their frames alive (the pinner
// holds a frame reference), but the translation is gone — exactly the
// stale-DMA hazard a correct driver avoids by unpinning in the callback.
func (as *AddressSpace) Munmap(addr Addr, length int) error {
	if length <= 0 {
		return ErrBadUnmap
	}
	start := PageAlignDown(addr)
	end := PageAlignUp(addr + Addr(length))
	// Require the range to be covered by VMAs (Linux tolerates holes; we
	// are stricter to catch allocator bugs).
	if !as.covered(start, end) {
		return ErrBadUnmap
	}
	as.notify(start, end, InvalidateUnmap)
	for a := start; a < end; a += PageSize {
		as.dropPTE(a)
	}
	as.removeVMARange(start, end)
	return nil
}

func (as *AddressSpace) covered(start, end Addr) bool {
	a := start
	for _, v := range as.vmas {
		if v.end <= a {
			continue
		}
		if v.start > a {
			return false
		}
		a = v.end
		if a >= end {
			return true
		}
	}
	return a >= end
}

func (as *AddressSpace) removeVMARange(start, end Addr) {
	var out []vma
	for _, v := range as.vmas {
		if v.end <= start || v.start >= end {
			out = append(out, v)
			continue
		}
		if v.start < start {
			out = append(out, vma{start: v.start, end: start})
		}
		if v.end > end {
			out = append(out, vma{start: end, end: v.end})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	as.vmas = out
}

// dropPTE tears down the translation for page a, releasing the frame
// reference held by the mapping.
func (as *AddressSpace) dropPTE(a Addr) {
	p, ok := as.pages[a]
	if !ok {
		return
	}
	if p.present {
		p.frame.mapRefs--
		// Pins held through this mapping keep their frame references; they
		// are tracked by the Pinned handle, not by the PTE.
		if p.frame.mapRefs == 0 && p.frame.pinRefs == 0 {
			as.phys.release(p.frame)
		}
	}
	delete(as.pages, a)
}

// Mapped reports whether every page of [addr, addr+length) lies inside a
// mapping.
func (as *AddressSpace) Mapped(addr Addr, length int) bool {
	if length <= 0 {
		return false
	}
	return as.covered(PageAlignDown(addr), PageAlignUp(addr+Addr(length)))
}

// fault materializes the PTE for page a (demand-zero, swap-in, or COW break
// on write), returning the frame. forWrite causes COW duplication.
func (as *AddressSpace) fault(a Addr, forWrite bool) (*Frame, error) {
	if !as.covered(a, a+PageSize) {
		return nil, fmt.Errorf("vm: fault at %#x: %w", uint64(a), ErrBadAddress)
	}
	p, ok := as.pages[a]
	if !ok {
		p = &pte{}
		as.pages[a] = p
	}
	if p.swapped {
		f, err := as.phys.alloc()
		if err != nil {
			return nil, err
		}
		if p.swapData != nil {
			f.data = p.swapData
		}
		p.swapData = nil
		p.swapped = false
		p.frame = f
		p.present = true
		p.writable = true
		f.mapRefs++
		as.swapIns++
		as.faults++
	}
	if !p.present {
		f, err := as.phys.alloc()
		if err != nil {
			return nil, err
		}
		p.frame = f
		p.present = true
		p.writable = true
		f.mapRefs++
		as.faults++
	}
	if forWrite && !p.writable {
		if err := as.breakCOW(a, p); err != nil {
			return nil, err
		}
	}
	return p.frame, nil
}

// breakCOW duplicates a COW-shared page into a private frame. The notifier
// fires first because any device translation pointing at the shared frame
// is about to become wrong for this process (paper §2.1).
func (as *AddressSpace) breakCOW(a Addr, p *pte) error {
	as.notify(a, a+PageSize, InvalidateCOW)
	old := p.frame
	f, err := as.phys.alloc()
	if err != nil {
		return err
	}
	if old.data != nil {
		f.data = make([]byte, PageSize)
		copy(f.data, old.data)
	}
	old.mapRefs--
	if old.mapRefs == 0 && old.pinRefs == 0 {
		as.phys.release(old)
	}
	p.frame = f
	p.writable = true
	f.mapRefs++
	as.cowBreaks++
	return nil
}

// MarkCOW makes the pages of [addr, addr+length) copy-on-write, as a fork
// would: present pages become read-only shares; the next write duplicates
// them (and fires the COW notifier).
func (as *AddressSpace) MarkCOW(addr Addr, length int) error {
	start := PageAlignDown(addr)
	end := PageAlignUp(addr + Addr(length))
	if !as.covered(start, end) {
		return ErrBadAddress
	}
	for a := start; a < end; a += PageSize {
		if p, ok := as.pages[a]; ok && p.present {
			p.writable = false
		}
	}
	return nil
}

// MProtect changes the writability of the pages covering
// [addr, addr+length). Downgrading to read-only fires MMU notifiers (as
// change_protection does in Linux): device translations that assumed write
// access must be dropped. Restoring write access notifies nobody; the next
// write simply proceeds (present read-only pages are COW-broken, which is
// the conservative but safe behaviour for shared frames).
func (as *AddressSpace) MProtect(addr Addr, length int, writable bool) error {
	start := PageAlignDown(addr)
	end := PageAlignUp(addr + Addr(length))
	if !as.covered(start, end) {
		return ErrBadAddress
	}
	if !writable {
		as.notify(start, end, InvalidateProtect)
	}
	for a := start; a < end; a += PageSize {
		if p, ok := as.pages[a]; ok && p.present {
			p.writable = writable
		}
	}
	return nil
}

// Write copies data into the address space at addr, demand-faulting and
// COW-breaking as needed (this is the application touching its buffer).
func (as *AddressSpace) Write(addr Addr, data []byte) error {
	off := 0
	for off < len(data) {
		a := addr + Addr(off)
		page := PageAlignDown(a)
		f, err := as.fault(page, true)
		if err != nil {
			return err
		}
		n := f.Write(int(a-page), data[off:])
		off += n
	}
	return nil
}

// Read copies len(dst) bytes from the address space at addr into dst.
func (as *AddressSpace) Read(addr Addr, dst []byte) error {
	off := 0
	for off < len(dst) {
		a := addr + Addr(off)
		page := PageAlignDown(a)
		f, err := as.fault(page, false)
		if err != nil {
			return err
		}
		n := f.Read(int(a-page), dst[off:])
		off += n
	}
	return nil
}

// FrameAt returns the current frame backing page-aligned address a, if
// present. Used by invariant tests to detect stale device translations.
func (as *AddressSpace) FrameAt(a Addr) (*Frame, bool) {
	p, ok := as.pages[PageAlignDown(a)]
	if !ok || !p.present {
		return nil, false
	}
	return p.frame, true
}

// Migrate moves the frames of [addr, addr+length) to fresh frames, as NUMA
// balancing or compaction would. Pinned pages are skipped — pinning exists
// precisely to prevent this (paper §2.1). Notifiers fire per migrated page.
// It returns the number of pages actually migrated.
func (as *AddressSpace) Migrate(addr Addr, length int) (int, error) {
	start := PageAlignDown(addr)
	end := PageAlignUp(addr + Addr(length))
	if !as.covered(start, end) {
		return 0, ErrBadAddress
	}
	moved := 0
	for a := start; a < end; a += PageSize {
		p, ok := as.pages[a]
		if !ok || !p.present {
			continue
		}
		if p.frame.pinRefs > 0 {
			continue // pinned: not migratable
		}
		as.notify(a, a+PageSize, InvalidateMigrate)
		old := p.frame
		f, err := as.phys.alloc()
		if err != nil {
			return moved, err
		}
		if old.data != nil {
			f.data = old.data
			old.data = nil
		}
		old.mapRefs--
		if old.mapRefs == 0 && old.pinRefs == 0 {
			as.phys.release(old)
		}
		p.frame = f
		f.mapRefs++
		moved++
	}
	return moved, nil
}

// SwapOut writes the pages of [addr, addr+length) to swap and frees their
// frames. Pinned pages are skipped. It returns the number of pages swapped.
func (as *AddressSpace) SwapOut(addr Addr, length int) (int, error) {
	start := PageAlignDown(addr)
	end := PageAlignUp(addr + Addr(length))
	if !as.covered(start, end) {
		return 0, ErrBadAddress
	}
	swapped := 0
	for a := start; a < end; a += PageSize {
		p, ok := as.pages[a]
		if !ok || !p.present {
			continue
		}
		if p.frame.pinRefs > 0 {
			continue
		}
		as.notify(a, a+PageSize, InvalidateSwap)
		old := p.frame
		p.swapData = old.data
		old.data = nil
		old.mapRefs--
		if old.mapRefs == 0 && old.pinRefs == 0 {
			as.phys.release(old)
		}
		p.frame = nil
		p.present = false
		p.swapped = true
		swapped++
	}
	return swapped, nil
}
