// Package vm simulates the virtual-memory subsystem the paper's mechanism
// lives in: per-process address spaces with demand-paged 4 KiB pages,
// physical frames carrying real data, page pinning with per-page pin counts
// (the get_user_pages/put_page analogue), copy-on-write, page migration,
// swap, and — centrally — MMU notifiers: callbacks invoked *before* any
// mapping change, which is what lets the Open-MX driver keep a reliable
// kernel-side pinning cache (paper §2.1, §3.1).
//
// The package models state and semantics only; CPU time for pinning and
// copying is charged by callers (the driver) on cpu.Core work queues.
//
// Page tables are stored as per-VMA PTE slices over a sorted VMA list, so
// every range operation (pin, fault, read, write, migrate, swap) resolves
// the mapping once with a binary search and then walks pages by direct
// indexing — no per-page map lookups. Frame contents use copy-on-reference
// sharing (see Buf): readers take O(1) references and the 4 KiB copy is
// paid only if either side writes afterwards.
package vm

import (
	"errors"
	"fmt"
	"sort"
)

// PageSize is the size of a virtual page and physical frame.
const (
	PageSize  = 4096
	PageShift = 12
)

// Addr is a virtual address within an AddressSpace.
type Addr uint64

// PageAlignDown rounds a down to a page boundary.
func PageAlignDown(a Addr) Addr { return a &^ (PageSize - 1) }

// PageAlignUp rounds a up to a page boundary.
func PageAlignUp(a Addr) Addr { return (a + PageSize - 1) &^ (PageSize - 1) }

// PageCount reports the number of pages spanned by [addr, addr+length).
func PageCount(addr Addr, length int) int {
	if length <= 0 {
		return 0
	}
	first := PageAlignDown(addr)
	last := PageAlignUp(addr + Addr(length))
	return int((last - first) >> PageShift)
}

// Errors returned by address-space operations.
var (
	ErrBadAddress  = errors.New("vm: address range not mapped")
	ErrPinned      = errors.New("vm: page is pinned")
	ErrNoMemory    = errors.New("vm: out of physical frames")
	ErrBadUnmap    = errors.New("vm: unmap range does not match a mapping")
	ErrNotSwapped  = errors.New("vm: page not swapped")
	ErrDoubleUnpin = errors.New("vm: unpin without matching pin")
)

// Frame is a physical page frame. Its data is allocated lazily on first
// write; unwritten frames read as zeros. Frame contents may be shared
// (copy-on-reference) with Buf views and with other frames; a write to a
// shared frame first clones the 4 KiB buffer, so every outstanding
// reference keeps the snapshot it was taken from.
type Frame struct {
	pfn     uint64
	data    []byte
	shared  bool // data is aliased by a Buf or another frame: copy on write
	mapRefs int  // number of PTEs referencing this frame
	pinRefs int  // get_user_pages-style references
	// kernRefs are transient in-kernel references (get_page-style) held
	// across an allocation inside breakCOW/Migrate so direct reclaim
	// cannot steal the frame mid-operation. Unlike pinRefs they are not
	// user pins: the reclaim scan skips them without counting a
	// pinned-resist, keeping the paper-facing metric honest.
	kernRefs int
	freed    bool

	// Reverse mapping and LRU linkage, maintained only on bounded PhysMem
	// (see reclaim.go): owner/vaddr record the (single) mapping reclaim
	// would tear down, lruPrev/lruNext thread the active/inactive lists.
	owner            *AddressSpace
	vaddr            Addr
	lruPrev, lruNext *Frame
	onLRU            uint8
}

// PFN returns the frame's physical frame number.
func (f *Frame) PFN() uint64 { return f.pfn }

// PinCount returns the frame's current pin reference count.
func (f *Frame) PinCount() int { return f.pinRefs }

// Read copies min(len(dst), PageSize-off) bytes from the frame at off.
func (f *Frame) Read(off int, dst []byte) int {
	if f.freed {
		panic(fmt.Sprintf("vm: read of freed frame %d", f.pfn))
	}
	n := len(dst)
	if off+n > PageSize {
		n = PageSize - off
	}
	if n <= 0 {
		return 0
	}
	if f.data == nil {
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return n
	}
	copy(dst[:n], f.data[off:off+n])
	return n
}

// refData returns a zero-copy reference to the frame's contents (nil means
// the page reads as zeros). The frame is marked shared so a later Write
// clones before mutating, preserving the reference's snapshot semantics.
func (f *Frame) refData() []byte {
	if f.freed {
		panic(fmt.Sprintf("vm: reference of freed frame %d", f.pfn))
	}
	if f.data != nil {
		f.shared = true
	}
	return f.data
}

// ensureOwned makes the frame's data private and writable, cloning it if a
// reference is outstanding (the copy-on-write half of copy-on-reference).
func (f *Frame) ensureOwned() {
	if f.shared {
		d := make([]byte, PageSize)
		copy(d, f.data)
		f.data = d
		f.shared = false
	}
}

// Write copies min(len(src), PageSize-off) bytes into the frame at off.
func (f *Frame) Write(off int, src []byte) int {
	if f.freed {
		panic(fmt.Sprintf("vm: write to freed frame %d", f.pfn))
	}
	n := len(src)
	if off+n > PageSize {
		n = PageSize - off
	}
	if n <= 0 {
		return 0
	}
	f.ensureOwned()
	if f.data == nil {
		if allZero(src[:n]) {
			// Zero pages stay materialization-free: a nil data slice already
			// reads as zeros.
			return n
		}
		f.data = make([]byte, PageSize)
	}
	copy(f.data[off:off+n], src[:n])
	return n
}

// adopt installs a full-page buffer as the frame's contents without
// copying. A nil page means all zeros. The buffer may still be referenced
// elsewhere, so the frame is marked shared.
func (f *Frame) adopt(page []byte) {
	if f.freed {
		panic(fmt.Sprintf("vm: adopt into freed frame %d", f.pfn))
	}
	if page == nil {
		f.data = nil
		f.shared = false
		return
	}
	f.data = page
	f.shared = true
}

// allZero reports whether b contains only zero bytes.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// PhysMem is the machine's physical memory: a frame allocator with a
// capacity limit and usage accounting.
type PhysMem struct {
	capacity int // frames; 0 = unlimited
	nextPFN  uint64
	inUse    int
	peak     int

	// Reclaim state (see reclaim.go). Watermarks are in free frames;
	// active/inactive are the frame LRU lists; inReclaim is the
	// PF_MEMALLOC-style recursion guard.
	lowWater, highWater int
	active, inactive    lruList
	inReclaim           bool
	onReclaim           func(scanned, stolen int, direct bool)
	rstats              ReclaimStats

	// Swap accounting: pages whose frames were released but whose bytes
	// stay alive in swapData (FramesInUse alone under-reports occupancy
	// under pressure).
	swappedPages int
	swappedBytes int
	peakOccupied int
}

// NewPhysMem returns physical memory with capacity frames (0 = unlimited).
func NewPhysMem(capacity int) *PhysMem {
	return &PhysMem{capacity: capacity}
}

// FramesInUse reports the number of live frames.
func (pm *PhysMem) FramesInUse() int { return pm.inUse }

// PeakFrames reports the high-water mark of live frames.
func (pm *PhysMem) PeakFrames() int { return pm.peak }

// Capacity reports the configured frame limit (0 = unlimited).
func (pm *PhysMem) Capacity() int { return pm.capacity }

// SetCapacity bounds a previously unbounded allocator (the node layer
// configures its memory budget right after construction). It must be
// called before any frame is allocated: frames faulted while unbounded
// carry no reverse mapping and would be invisible to reclaim.
func (pm *PhysMem) SetCapacity(frames int) {
	if pm.inUse > 0 || pm.nextPFN > 0 {
		panic("vm: SetCapacity after frames were allocated")
	}
	pm.capacity = frames
}

// Resize changes a bounded allocator's frame budget at runtime — a
// hotplug/ballooning event. Unlike SetCapacity it is legal with live
// frames: shrinking below the current population leaves FreeFrames
// negative, which reads as a breached low watermark (kswapd reclaims
// toward the new budget) while new allocations take the direct-reclaim
// path or fail. Callers should re-derive watermarks afterwards; panics on
// an unbounded allocator or a non-positive budget.
func (pm *PhysMem) Resize(frames int) {
	if frames <= 0 {
		panic("vm: Resize to non-positive capacity")
	}
	if pm.capacity <= 0 {
		panic("vm: Resize on unbounded physical memory")
	}
	pm.capacity = frames
}

func (pm *PhysMem) alloc() (*Frame, error) {
	if pm.capacity > 0 && pm.inUse >= pm.capacity {
		return nil, ErrNoMemory
	}
	pm.nextPFN++
	pm.inUse++
	if pm.inUse > pm.peak {
		pm.peak = pm.inUse
	}
	if occ := pm.OccupiedPages(); occ > pm.peakOccupied {
		pm.peakOccupied = occ
	}
	return &Frame{pfn: pm.nextPFN}, nil
}

func (pm *PhysMem) release(f *Frame) {
	if f.freed {
		panic(fmt.Sprintf("vm: double free of frame %d", f.pfn))
	}
	if f.mapRefs != 0 || f.pinRefs != 0 {
		panic(fmt.Sprintf("vm: freeing frame %d with refs map=%d pin=%d", f.pfn, f.mapRefs, f.pinRefs))
	}
	pm.lruRemove(f)
	f.owner = nil
	f.freed = true
	f.data = nil
	pm.inUse--
}

// pte is a page-table entry.
type pte struct {
	frame      *Frame
	present    bool
	writable   bool // false while COW-shared
	swapped    bool
	swapData   []byte // contents saved at swap-out
	swapShared bool   // swapData aliases a shared buffer
	// swapWritable preserves writability across a swap round trip: a
	// COW-shared read-only page must come back read-only so the next
	// write still runs breakCOW (and fires its notifier) instead of
	// silently scribbling on a shared frame.
	swapWritable bool
	pins         int // pins through *this mapping*
}

// vma is a mapped virtual region (anonymous memory only) together with its
// page-table slice: ptes[i] describes the page at start + i*PageSize.
// Splitting a vma sub-slices ptes, so outstanding PTE pointers stay valid.
type vma struct {
	start, end Addr // page aligned, [start, end)
	ptes       []pte
}

func (v *vma) pages() int { return int((v.end - v.start) >> PageShift) }

// pteAt returns the PTE for page-aligned address a, which must lie in v.
func (v *vma) pteAt(a Addr) *pte { return &v.ptes[int((a-v.start)>>PageShift)] }

// NotifierRange describes an invalidated virtual range.
type NotifierRange struct {
	Start Addr
	End   Addr // exclusive
	// Reason tells the listener why the range is going away, mirroring the
	// distinct MMU-notifier call sites in Linux.
	Reason InvalidateReason
}

// InvalidateReason enumerates the mapping-change causes that fire notifiers.
type InvalidateReason int

const (
	// InvalidateUnmap: the range is being munmap'ed (e.g. free of a large
	// malloc'd buffer).
	InvalidateUnmap InvalidateReason = iota
	// InvalidateCOW: a page is being duplicated on copy-on-write.
	InvalidateCOW
	// InvalidateMigrate: the OS is moving the page to another frame.
	InvalidateMigrate
	// InvalidateSwap: the page is being written to swap.
	InvalidateSwap
	// InvalidateProtect: page permissions are changing (mprotect).
	InvalidateProtect
)

// String names the reason.
func (r InvalidateReason) String() string {
	switch r {
	case InvalidateUnmap:
		return "unmap"
	case InvalidateCOW:
		return "cow"
	case InvalidateMigrate:
		return "migrate"
	case InvalidateSwap:
		return "swap"
	case InvalidateProtect:
		return "mprotect"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// Notifier receives MMU-notifier callbacks. InvalidateRange is called
// synchronously *before* the mapping change takes effect, exactly like
// mmu_notifier invalidate_range_start in Linux 2.6.27: listeners must drop
// their use of the pages (unpin) before returning. Contiguous runs of
// affected pages are batched into a single callback per range.
type Notifier interface {
	InvalidateRange(r NotifierRange)
}

// AddressSpace is a simulated process address space.
type AddressSpace struct {
	pid       int
	phys      *PhysMem
	vmas      []*vma // sorted by start
	notifiers []Notifier
	// notifying is the notify() recursion depth; while it is non-zero,
	// UnregisterNotifier nils the slot instead of shifting the slice
	// (notifiersDirty defers the compaction), so a callback removing a
	// listener never makes the iteration skip the next one.
	notifying      int
	notifiersDirty bool

	mmapNext Addr // bump pointer for fresh mappings

	// Statistics.
	faults      uint64
	cowBreaks   uint64
	swapIns     uint64
	notifyCount map[InvalidateReason]uint64
}

// mmapBase is where anonymous mappings start; an arbitrary but recognizable
// constant well away from zero so nil-ish addresses fault loudly.
const mmapBase Addr = 0x7f00_0000_0000

// NewAddressSpace returns an empty address space for process pid backed by
// phys.
func NewAddressSpace(pid int, phys *PhysMem) *AddressSpace {
	return &AddressSpace{
		pid:         pid,
		phys:        phys,
		mmapNext:    mmapBase,
		notifyCount: make(map[InvalidateReason]uint64),
	}
}

// PID returns the owning process id.
func (as *AddressSpace) PID() int { return as.pid }

// Phys returns the backing physical memory.
func (as *AddressSpace) Phys() *PhysMem { return as.phys }

// Faults reports the number of demand faults served.
func (as *AddressSpace) Faults() uint64 { return as.faults }

// COWBreaks reports the number of copy-on-write duplications performed.
func (as *AddressSpace) COWBreaks() uint64 { return as.cowBreaks }

// SwapIns reports the number of pages faulted back from swap.
func (as *AddressSpace) SwapIns() uint64 { return as.swapIns }

// Notifications reports how many notifier callbacks have fired for reason r.
func (as *AddressSpace) Notifications(r InvalidateReason) uint64 { return as.notifyCount[r] }

// RegisterNotifier attaches an MMU notifier to the address space (the
// driver does this when an endpoint is opened, paper §3.1).
func (as *AddressSpace) RegisterNotifier(n Notifier) {
	as.notifiers = append(as.notifiers, n)
}

// UnregisterNotifier detaches a notifier. Mid-callback removal is safe:
// the in-flight notify() sees the slot nil out instead of the list
// shifting under its cursor.
func (as *AddressSpace) UnregisterNotifier(n Notifier) {
	for i, x := range as.notifiers {
		if x == n {
			if as.notifying > 0 {
				as.notifiers[i] = nil
				as.notifiersDirty = true
			} else {
				as.notifiers = append(as.notifiers[:i], as.notifiers[i+1:]...)
			}
			return
		}
	}
}

// notify delivers one invalidation to every registered listener. It runs
// allocation-free (reclaim fires it once per stolen page): instead of
// snapshotting the list, it captures the length — listeners registered
// during a callback do not see the in-flight event, matching the
// srcu-protected semantics in Linux — and relies on UnregisterNotifier
// nil-ing slots mid-delivery. Compaction happens when the outermost
// delivery finishes.
func (as *AddressSpace) notify(start, end Addr, reason InvalidateReason) {
	as.notifyCount[reason]++
	as.notifying++
	count := len(as.notifiers)
	for i := 0; i < count; i++ {
		if n := as.notifiers[i]; n != nil {
			n.InvalidateRange(NotifierRange{Start: start, End: end, Reason: reason})
		}
	}
	as.notifying--
	if as.notifying == 0 && as.notifiersDirty {
		kept := as.notifiers[:0]
		for _, n := range as.notifiers {
			if n != nil {
				kept = append(kept, n)
			}
		}
		as.notifiers = kept
		as.notifiersDirty = false
	}
}

// findVMA returns the index of the vma containing a, or ok=false.
func (as *AddressSpace) findVMA(a Addr) (int, bool) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].end > a })
	if i < len(as.vmas) && as.vmas[i].start <= a {
		return i, true
	}
	return i, false
}

// Mmap maps length bytes of fresh anonymous memory at a kernel-chosen
// address and returns that address. Pages materialize on first access.
func (as *AddressSpace) Mmap(length int) (Addr, error) {
	if length <= 0 {
		return 0, fmt.Errorf("vm: mmap length %d: %w", length, ErrBadAddress)
	}
	size := Addr(PageAlignUp(Addr(length)))
	addr := as.mmapNext
	as.mmapNext += size + PageSize // guard page gap
	as.insertVMA(newVMA(addr, addr+size))
	return addr, nil
}

// MmapFixed maps [addr, addr+length) exactly; used by the malloc arena to
// reuse freed ranges. The range must be page aligned and unmapped.
func (as *AddressSpace) MmapFixed(addr Addr, length int) error {
	if addr != PageAlignDown(addr) || length <= 0 {
		return ErrBadAddress
	}
	end := addr + PageAlignUp(Addr(length))
	for _, v := range as.vmas {
		if addr < v.end && v.start < end {
			return fmt.Errorf("vm: fixed mapping overlaps existing vma: %w", ErrBadAddress)
		}
	}
	as.insertVMA(newVMA(addr, end))
	return nil
}

func newVMA(start, end Addr) *vma {
	v := &vma{start: start, end: end}
	v.ptes = make([]pte, v.pages())
	return v
}

func (as *AddressSpace) insertVMA(v *vma) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].start >= v.start })
	as.vmas = append(as.vmas, nil)
	copy(as.vmas[i+1:], as.vmas[i:])
	as.vmas[i] = v
}

// Munmap removes the mapping covering exactly [addr, addr+length) (page
// granular). MMU notifiers fire before the teardown. Pages that are still
// pinned after the notifiers return keep their frames alive (the pinner
// holds a frame reference), but the translation is gone — exactly the
// stale-DMA hazard a correct driver avoids by unpinning in the callback.
func (as *AddressSpace) Munmap(addr Addr, length int) error {
	if length <= 0 {
		return ErrBadUnmap
	}
	start := PageAlignDown(addr)
	end := PageAlignUp(addr + Addr(length))
	// Require the range to be covered by VMAs (Linux tolerates holes; we
	// are stricter to catch allocator bugs).
	if !as.covered(start, end) {
		return ErrBadUnmap
	}
	as.notify(start, end, InvalidateUnmap)
	as.forEachVMA(start, end, func(v *vma, first, count int) {
		for i := first; i < first+count; i++ {
			as.dropPTE(&v.ptes[i])
		}
	})
	as.removeVMARange(start, end)
	return nil
}

// forEachVMA walks the vmas overlapping [start, end), invoking fn with each
// vma and the page-index range of the overlap. The range need not be fully
// covered; holes are skipped.
func (as *AddressSpace) forEachVMA(start, end Addr, fn func(v *vma, firstPage, pageCount int)) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].end > start })
	for ; i < len(as.vmas) && as.vmas[i].start < end; i++ {
		v := as.vmas[i]
		lo, hi := v.start, v.end
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		fn(v, int((lo-v.start)>>PageShift), int((hi-lo)>>PageShift))
	}
}

// covered reports whether [start, end) lies entirely inside mappings.
func (as *AddressSpace) covered(start, end Addr) bool {
	a := start
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].end > start })
	for ; i < len(as.vmas); i++ {
		v := as.vmas[i]
		if v.start > a {
			return false
		}
		a = v.end
		if a >= end {
			return true
		}
	}
	return a >= end
}

func (as *AddressSpace) removeVMARange(start, end Addr) {
	var out []*vma
	for _, v := range as.vmas {
		if v.end <= start || v.start >= end {
			out = append(out, v)
			continue
		}
		if v.start < start {
			keep := int((start - v.start) >> PageShift)
			out = append(out, &vma{start: v.start, end: start, ptes: v.ptes[:keep]})
		}
		if v.end > end {
			skip := int((end - v.start) >> PageShift)
			out = append(out, &vma{start: end, end: v.end, ptes: v.ptes[skip:]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	as.vmas = out
}

// dropPTE tears down a translation, releasing the frame reference held by
// the mapping. Swapped PTEs release their swap slot, which the occupancy
// accounting must see.
func (as *AddressSpace) dropPTE(p *pte) {
	if p.present {
		p.frame.mapRefs--
		// Pins held through this mapping keep their frame references; they
		// are tracked by the Pinned handle, not by the PTE.
		if p.frame.mapRefs == 0 && p.frame.pinRefs == 0 {
			as.phys.release(p.frame)
		} else if p.frame.owner == as {
			// The surviving mapper is some other address space; clear the
			// now-stale reverse mapping so reclaim does not chase it. The
			// survivor re-owns the frame at its next touch.
			p.frame.owner = nil
		}
	} else if p.swapped {
		as.phys.swapRemoved(p.swapData)
	}
	*p = pte{}
}

// Mapped reports whether every page of [addr, addr+length) lies inside a
// mapping.
func (as *AddressSpace) Mapped(addr Addr, length int) bool {
	if length <= 0 {
		return false
	}
	return as.covered(PageAlignDown(addr), PageAlignUp(addr+Addr(length)))
}

// fault materializes the PTE for page a (demand-zero, swap-in, or COW break
// on write), returning the frame. forWrite causes COW duplication.
func (as *AddressSpace) fault(a Addr, forWrite bool) (*Frame, error) {
	vi, ok := as.findVMA(a)
	if !ok {
		return nil, fmt.Errorf("vm: fault at %#x: %w", uint64(a), ErrBadAddress)
	}
	v := as.vmas[vi]
	return as.faultPTE(a, v.pteAt(a), forWrite)
}

// faultPTE runs the fault path on an already-located PTE. Allocation goes
// through allocFrame, so hitting physical capacity triggers a direct
// reclaim stall instead of failing outright.
func (as *AddressSpace) faultPTE(a Addr, p *pte, forWrite bool) (*Frame, error) {
	if p.swapped {
		f, err := as.allocFrame()
		if err != nil {
			return nil, err
		}
		as.phys.swapRemoved(p.swapData)
		if p.swapData != nil {
			f.data = p.swapData
			f.shared = p.swapShared
		}
		p.swapData = nil
		p.swapShared = false
		p.swapped = false
		p.frame = f
		p.present = true
		// Restore the pre-swap writability: a page that was COW-shared
		// (or mprotect'ed read-only) must not regain write permission by
		// taking a swap round trip — the write below still breaks COW.
		p.writable = p.swapWritable
		p.swapWritable = false
		f.mapRefs++
		as.installFrame(f, a)
		as.swapIns++
		as.faults++
	}
	if !p.present {
		f, err := as.allocFrame()
		if err != nil {
			return nil, err
		}
		p.frame = f
		p.present = true
		p.writable = true
		f.mapRefs++
		as.installFrame(f, a)
		as.faults++
	}
	if forWrite && !p.writable {
		if err := as.breakCOW(a, p); err != nil {
			return nil, err
		}
	}
	if as.phys.lruTracked() {
		as.touchFrame(p.frame, a)
	}
	return p.frame, nil
}

// breakCOW duplicates a COW-shared page into a private frame. The notifier
// fires first because any device translation pointing at the shared frame
// is about to become wrong for this process (paper §2.1).
func (as *AddressSpace) breakCOW(a Addr, p *pte) error {
	as.notify(a, a+PageSize, InvalidateCOW)
	old := p.frame
	// Transient kernel reference (get_page-style): the allocation below
	// may enter direct reclaim, which must not steal the very page being
	// duplicated out from under us.
	old.kernRefs++
	f, err := as.allocFrame()
	old.kernRefs--
	if err != nil {
		return err
	}
	if old.data != nil {
		// Copy-on-reference: the new frame shares the old contents until
		// one side writes.
		f.data = old.refData()
		f.shared = true
	}
	old.mapRefs--
	if old.mapRefs == 0 && old.pinRefs == 0 {
		as.phys.release(old)
	}
	p.frame = f
	p.writable = true
	f.mapRefs++
	as.installFrame(f, a)
	as.cowBreaks++
	return nil
}

// MarkCOW makes the pages of [addr, addr+length) copy-on-write, as a fork
// would: present pages become read-only shares; the next write duplicates
// them (and fires the COW notifier).
func (as *AddressSpace) MarkCOW(addr Addr, length int) error {
	start := PageAlignDown(addr)
	end := PageAlignUp(addr + Addr(length))
	if !as.covered(start, end) {
		return ErrBadAddress
	}
	as.forEachVMA(start, end, func(v *vma, first, count int) {
		for i := first; i < first+count; i++ {
			if v.ptes[i].present {
				v.ptes[i].writable = false
			}
		}
	})
	return nil
}

// MProtect changes the writability of the pages covering
// [addr, addr+length). Downgrading to read-only fires MMU notifiers (as
// change_protection does in Linux): device translations that assumed write
// access must be dropped. Restoring write access notifies nobody; the next
// write simply proceeds (present read-only pages are COW-broken, which is
// the conservative but safe behaviour for shared frames).
func (as *AddressSpace) MProtect(addr Addr, length int, writable bool) error {
	start := PageAlignDown(addr)
	end := PageAlignUp(addr + Addr(length))
	if !as.covered(start, end) {
		return ErrBadAddress
	}
	if !writable {
		as.notify(start, end, InvalidateProtect)
	}
	as.forEachVMA(start, end, func(v *vma, first, count int) {
		for i := first; i < first+count; i++ {
			if v.ptes[i].present {
				v.ptes[i].writable = writable
			}
		}
	})
	return nil
}

// Write copies data into the address space at addr, demand-faulting and
// COW-breaking as needed (this is the application touching its buffer).
// The mapping is resolved once per vma, not once per page.
func (as *AddressSpace) Write(addr Addr, data []byte) error {
	return as.rangeAccess(addr, len(data), true, func(f *Frame, frameOff, n, done int) {
		f.Write(frameOff, data[done:done+n])
	})
}

// Read copies len(dst) bytes from the address space at addr into dst.
func (as *AddressSpace) Read(addr Addr, dst []byte) error {
	return as.rangeAccess(addr, len(dst), false, func(f *Frame, frameOff, n, done int) {
		f.Read(frameOff, dst[done:done+n])
	})
}

// rangeAccess walks [addr, addr+length) once, faulting pages in as needed
// and invoking fn for each page-contiguous piece.
func (as *AddressSpace) rangeAccess(addr Addr, length int, forWrite bool,
	fn func(f *Frame, frameOff, n, done int)) error {
	done := 0
	for done < length {
		a := addr + Addr(done)
		vi, ok := as.findVMA(a)
		if !ok {
			return fmt.Errorf("vm: fault at %#x: %w", uint64(a), ErrBadAddress)
		}
		v := as.vmas[vi]
		for done < length {
			a = addr + Addr(done)
			if a >= v.end {
				break
			}
			page := PageAlignDown(a)
			f, err := as.faultPTE(page, v.pteAt(page), forWrite)
			if err != nil {
				return err
			}
			frameOff := int(a - page)
			n := PageSize - frameOff
			if n > length-done {
				n = length - done
			}
			fn(f, frameOff, n, done)
			done += n
		}
	}
	return nil
}

// PageResident reports whether the page containing a is materialized:
// mapped, present, and not swapped out. This is the residency test an
// ODP-capable device makes before translating through the live page
// table — a non-resident page means the access faults instead.
func (as *AddressSpace) PageResident(a Addr) bool {
	a = PageAlignDown(a)
	vi, ok := as.findVMA(a)
	if !ok {
		return false
	}
	return as.vmas[vi].pteAt(a).present
}

// MissingPages walks count pages starting at the page containing addr,
// resolving the mapping once per VMA (not once per page), and returns
// the indexes — relative to the first page — of pages that are not
// resident. Unmapped pages count as missing. A nil result means the
// whole range is resident; this is the bulk form of PageResident the
// ODP device check uses on its packet hot path.
func (as *AddressSpace) MissingPages(addr Addr, count int) []int {
	var missing []int
	start := PageAlignDown(addr)
	i := 0
	for i < count {
		a := start + Addr(i)<<PageShift
		vi, ok := as.findVMA(a)
		if !ok {
			// Unmapped gap: everything up to the next VMA (vi is its
			// index) is missing in one step, no per-page re-search.
			gapEnd := count
			if vi < len(as.vmas) {
				if n := int((as.vmas[vi].start - start) >> PageShift); n < gapEnd {
					gapEnd = n
				}
			}
			for ; i < gapEnd; i++ {
				missing = append(missing, i)
			}
			continue
		}
		v := as.vmas[vi]
		idx := int((a - v.start) >> PageShift)
		for ; i < count && idx < len(v.ptes); idx, i = idx+1, i+1 {
			if !v.ptes[idx].present {
				missing = append(missing, i)
			}
		}
	}
	return missing
}

// Populate materializes count pages starting at the page containing
// addr, faulting in demand-zero and swapped pages (read faults: COW
// sharing is left intact; a later write breaks it). Like the other
// range operations it resolves the mapping once per VMA, not once per
// page. It returns the number of pages that were not resident before;
// an unmapped page stops the walk with ErrBadAddress. This is the host
// side of an ODP page request: the device faulted, the kernel faults
// the pages in, the device retries.
func (as *AddressSpace) Populate(addr Addr, count int) (int, error) {
	n := 0
	start := PageAlignDown(addr)
	i := 0
	for i < count {
		a := start + Addr(i)<<PageShift
		vi, ok := as.findVMA(a)
		if !ok {
			return n, fmt.Errorf("vm: populate at %#x: %w", uint64(a), ErrBadAddress)
		}
		v := as.vmas[vi]
		idx := int((a - v.start) >> PageShift)
		for ; i < count && idx < len(v.ptes); idx, i = idx+1, i+1 {
			pt := &v.ptes[idx]
			if pt.present {
				continue
			}
			if _, err := as.faultPTE(v.start+Addr(idx)<<PageShift, pt, false); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// FrameAt returns the current frame backing page-aligned address a, if
// present. Used by invariant tests to detect stale device translations.
func (as *AddressSpace) FrameAt(a Addr) (*Frame, bool) {
	a = PageAlignDown(a)
	vi, ok := as.findVMA(a)
	if !ok {
		return nil, false
	}
	p := as.vmas[vi].pteAt(a)
	if !p.present {
		return nil, false
	}
	return p.frame, true
}

// Migrate moves the frames of [addr, addr+length) to fresh frames, as NUMA
// balancing or compaction would. Pinned pages are skipped — pinning exists
// precisely to prevent this (paper §2.1). Notifiers fire per contiguous run
// of migrated pages, before the run moves. It returns the number of pages
// actually migrated.
func (as *AddressSpace) Migrate(addr Addr, length int) (int, error) {
	start := PageAlignDown(addr)
	end := PageAlignUp(addr + Addr(length))
	if !as.covered(start, end) {
		return 0, ErrBadAddress
	}
	moved := 0
	var walkErr error
	as.forEachVMA(start, end, func(v *vma, first, count int) {
		if walkErr != nil {
			return
		}
		i := first
		for i < first+count {
			// Find the next run of migratable pages and invalidate it as
			// one batched notifier range.
			for i < first+count && !migratable(&v.ptes[i]) {
				i++
			}
			runStart := i
			for i < first+count && migratable(&v.ptes[i]) {
				i++
			}
			if runStart == i {
				continue
			}
			lo := v.start + Addr(runStart)<<PageShift
			hi := v.start + Addr(i)<<PageShift
			as.notify(lo, hi, InvalidateMigrate)
			for j := runStart; j < i; j++ {
				p := &v.ptes[j]
				if !p.present {
					continue // direct reclaim swapped it out mid-run
				}
				old := p.frame
				// Transient reference so direct reclaim inside the
				// allocation cannot steal the page being migrated.
				old.kernRefs++
				f, err := as.allocFrame()
				old.kernRefs--
				if err != nil {
					walkErr = err
					return
				}
				if old.data != nil {
					if old.mapRefs > 1 {
						// Still mapped elsewhere (COW share): the moved
						// copy references the data, the old frame keeps it.
						f.data = old.refData()
						f.shared = true
					} else {
						f.data = old.data
						f.shared = old.shared
						old.data = nil
						old.shared = false
					}
				}
				old.mapRefs--
				if old.mapRefs == 0 && old.pinRefs == 0 {
					as.phys.release(old)
				}
				p.frame = f
				f.mapRefs++
				as.installFrame(f, v.start+Addr(j)<<PageShift)
				moved++
			}
		}
	})
	return moved, walkErr
}

func migratable(p *pte) bool {
	return p.present && p.frame.pinRefs == 0
}

// SwapOut writes the pages of [addr, addr+length) to swap and frees their
// frames. Pinned pages are skipped. Notifiers fire per contiguous run of
// affected pages. It returns the number of pages swapped.
func (as *AddressSpace) SwapOut(addr Addr, length int) (int, error) {
	start := PageAlignDown(addr)
	end := PageAlignUp(addr + Addr(length))
	if !as.covered(start, end) {
		return 0, ErrBadAddress
	}
	swapped := 0
	as.forEachVMA(start, end, func(v *vma, first, count int) {
		i := first
		for i < first+count {
			for i < first+count && !migratable(&v.ptes[i]) {
				i++
			}
			runStart := i
			for i < first+count && migratable(&v.ptes[i]) {
				i++
			}
			if runStart == i {
				continue
			}
			lo := v.start + Addr(runStart)<<PageShift
			hi := v.start + Addr(i)<<PageShift
			as.notify(lo, hi, InvalidateSwap)
			for j := runStart; j < i; j++ {
				as.swapOutPTE(&v.ptes[j])
				swapped++
			}
		}
	})
	return swapped, nil
}

// swapOutPTE moves one present, unpinned PTE's contents to swap. The
// caller has already fired the InvalidateSwap notifier. Writability is
// preserved for the swap-in path, and a frame still mapped elsewhere
// (COW share) keeps its data: the swap slot takes a copy-on-reference
// snapshot instead of stealing the live buffer.
func (as *AddressSpace) swapOutPTE(p *pte) {
	old := p.frame
	p.swapWritable = p.writable
	if old.mapRefs > 1 {
		p.swapData = old.refData()
		p.swapShared = p.swapData != nil
	} else {
		p.swapData = old.data
		p.swapShared = old.shared
		old.data = nil
		old.shared = false
	}
	old.mapRefs--
	if old.mapRefs == 0 && old.pinRefs == 0 {
		as.phys.release(old)
	}
	p.frame = nil
	p.present = false
	p.writable = false
	p.swapped = true
	as.phys.swapAdded(p.swapData)
}
