package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/report"
	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// Wire protocol. kv traffic runs on its own match context (the mpi layer
// owns contexts 1 and 2), with the message type in the tag's top bits and
// a per-client operation sequence below, so data phases of concurrent
// operations never cross-match:
//
//	match = | 16 bits ctxKV | 16 bits src rank | 3 bits type | 29 bits seq |
//
// An operation is a small eager header (request), a bulk value transfer
// sized past the rendezvous threshold so it crosses the pinning path, and
// for puts a small eager ack. Gets complete at value arrival, puts at the
// ack — the RDMA-read / RDMA-write shapes of an in-memory KV tier.
const (
	ctxKV    = 3
	srcShift = 32
	ctxShift = 48

	tagReq   = 1 << 29
	tagData  = 2 << 29
	tagReply = 3 << 29
	seqMask  = 1<<29 - 1

	headerBytes = 32
	ackBytes    = 16
)

func kvMatch(src int, tag uint32) uint64 {
	return uint64(ctxKV)<<ctxShift | uint64(uint16(src))<<srcShift | uint64(tag)
}

// anySrcMask matches any source rank (the server's header receive).
func anySrcMask() uint64 { return ^uint64(0) &^ (uint64(0xffff) << srcShift) }

type opKind uint8

const (
	opGet opKind = iota + 1
	opPut
	opShut
)

// Tenant describes one traffic class. Clients are assigned round-robin:
// client j (the j'th non-server rank) serves tenant j % len(Tenants).
type Tenant struct {
	// Name labels the tenant in metrics and SLO blocks.
	Name string
	// Ops is how many operations each of the tenant's clients issues.
	Ops int
	// Rate is the open-loop arrival rate per client, in operations per
	// second of simulated time. Arrivals are drawn from a seeded
	// exponential stream and do NOT wait for completions — when the
	// backend falls behind, queueing delay (and admission rejection) is
	// real.
	Rate float64
	// GetFrac is the read fraction of the mix (0.7 = 70% gets).
	GetFrac float64
	// MaxInflight bounds accepted-but-incomplete operations per client —
	// the admission-control knob. Arrivals past the bound are rejected
	// with a typed *omx.OverloadError instead of queueing without limit.
	MaxInflight int
}

// Config shapes one kvserve run. Ranks 0..Servers-1 are storage servers;
// every remaining rank is a client.
type Config struct {
	// Servers is the storage-server rank count.
	Servers int
	// Keys is the per-tenant key-space size. Key k lives on server
	// k % Servers, at slot k / Servers of that server's per-tenant heap.
	Keys int
	// ValueBytes is the value size. Sizes past the eager threshold
	// (32 KiB by default) take the rendezvous path, so value buffers are
	// pinned — or ODP-faulted — under the configured policy.
	ValueBytes int
	// Theta is the Zipfian key-popularity skew.
	Theta float64
	// Workers is the data-phase worker-process count per endpoint, client
	// and server alike.
	Workers int
	// Tenants is the traffic-class list (at least one).
	Tenants []Tenant
	// ChurnBytes, when positive, runs a memory hog on every server rank:
	// a background process dirtying this much buffer every ChurnPeriod,
	// overcommitting the node's frame budget so reclaim pressure on the
	// value heaps is emergent (the PR 5 machinery).
	ChurnBytes int
	// ChurnPeriod is the hog's sweep period (default 200µs).
	ChurnPeriod sim.Duration
}

func (cfg Config) workers() int {
	if cfg.Workers <= 0 {
		return 1
	}
	return cfg.Workers
}

func (cfg Config) churnPeriod() sim.Duration {
	if cfg.ChurnPeriod <= 0 {
		return 200 * sim.Microsecond
	}
	return cfg.ChurnPeriod
}

// slots is the per-tenant heap size in values on every server (uniform,
// ceil(Keys/Servers), so heap layout does not depend on the server index).
func (cfg Config) slots() int { return (cfg.Keys + cfg.Servers - 1) / cfg.Servers }

// Stats is one rank's measurement record, stashed on the case cell at the
// end of the run and merged (in rank order, so deterministically) by
// Collect. Latencies are measured from the operation's scheduled open-loop
// arrival, not from dispatch — the coordinated-omission correction — in
// simulated nanoseconds.
type Stats struct {
	Rank   int
	Tenant int // -1 for servers
	Get    report.Hist
	Put    report.Hist
	// Issued counts arrivals, OK completions, Rejected admission drops,
	// Errors protocol aborts, BadVals GET payloads failing validation.
	Issued   int
	OK       int
	Rejected int
	Errors   int
	BadVals  int
}

// Sink is the slice of scenario.CaseRun the workload needs; keeping it an
// interface avoids an import cycle (scenario imports kv).
type Sink interface {
	Stash(key string, v any)
	Note(format string, args ...any)
}

// StashKey names rank r's Stats record in the case stash.
func StashKey(r int) string { return fmt.Sprintf("kv/rank%d", r) }

// mix derives a per-(rank, stream) RNG seed from the run seed.
func mix(seed int64, rank, salt int) int64 {
	return seed ^ int64((uint64(rank)+1)*(uint64(salt)+3)*0x9e3779b97f4a7c15)
}

// sig returns the 8-byte value signature for (tenant, key): written at
// the head of every stored value, checked on every GET.
func sig(tenant, key int) uint64 {
	return uint64(tenant+1)<<40 ^ uint64(key+1)*0x9e3779b97f4a7c15
}

// op is one client operation in flight between dispatcher and workers.
type op struct {
	kind        opKind
	tenant      int
	key         int
	seq         uint32
	scheduledAt sim.Time
}

// Run is the per-rank workload body: servers allocate and prefill their
// value heaps, everyone meets at a barrier, clients drive open-loop
// traffic until their schedules drain, then shut the servers down. It is
// shaped as a scenario.Workload body (wrap it in a closure carrying the
// Config).
func Run(c *mpi.Comm, sink Sink, seed int64, cfg Config) {
	if cfg.Servers <= 0 || cfg.Servers >= c.Size() {
		panic(fmt.Sprintf("kv: need 1 <= Servers < ranks, got Servers=%d ranks=%d", cfg.Servers, c.Size()))
	}
	if len(cfg.Tenants) == 0 {
		panic("kv: need at least one tenant")
	}
	if c.Rank() < cfg.Servers {
		runServer(c, sink, cfg)
	} else {
		runClient(c, sink, seed, cfg)
	}
}

func mustMalloc(ep *omx.Endpoint, n int) vm.Addr {
	a, err := ep.Malloc(n)
	if err != nil {
		panic(fmt.Sprintf("kv: malloc(%d): %v", n, err))
	}
	return a
}

func writeHeader(ep *omx.Endpoint, a vm.Addr, kind opKind, tenant, key int, seq uint32) {
	var b [headerBytes]byte
	b[0] = byte(kind)
	b[1] = byte(tenant)
	binary.LittleEndian.PutUint32(b[4:], uint32(key))
	binary.LittleEndian.PutUint32(b[8:], seq)
	if err := ep.AS.Write(a, b[:]); err != nil {
		panic(fmt.Sprintf("kv: header write: %v", err))
	}
}

// serverOp is a parsed request handed from the server's header dispatcher
// to its data-phase workers.
type serverOp struct {
	kind   opKind
	tenant int
	key    int
	seq    uint32
	src    int
}

func runServer(c *mpi.Comm, sink Sink, cfg Config) {
	rank := c.Rank()
	ep := c.Endpoint()
	eng := ep.Node().Eng
	st := &Stats{Rank: rank, Tenant: -1}
	slots := cfg.slots()

	// Value heaps: one contiguous per-tenant arena, prefilled with
	// signed values so the first GET of any key validates. The prefill
	// writes touch every frame, so the heaps are resident (and, under a
	// frame budget, already contended) before the serving clock starts.
	heaps := make([]vm.Addr, len(cfg.Tenants))
	val := make([]byte, cfg.ValueBytes)
	for i := range val {
		val[i] = byte(i>>8) ^ byte(i)
	}
	for t := range cfg.Tenants {
		heaps[t] = mustMalloc(ep, slots*cfg.ValueBytes)
		for k := rank; k < cfg.Keys; k += cfg.Servers {
			binary.LittleEndian.PutUint64(val[:8], sig(t, k))
			a := heaps[t] + vm.Addr(k/cfg.Servers*cfg.ValueBytes)
			if err := ep.AS.Write(a, val); err != nil {
				panic(fmt.Sprintf("kv: server %d prefill: %v", rank, err))
			}
		}
	}

	// Data-phase workers: GETs send the slot out, PUTs receive into it
	// in place and ack. The value segments are heap addresses, so every
	// transfer drives the registration cache and pinning policy on the
	// serving side.
	var q sim.Queue[serverOp]
	workers := cfg.workers()
	done := make([]*sim.Completion, workers)
	for w := 0; w < workers; w++ {
		w := w
		done[w] = &sim.Completion{}
		eng.Go(fmt.Sprintf("kv-srv%d-w%d", rank, w), func(p *sim.Proc) {
			defer done[w].Complete(eng, nil)
			ack := mustMalloc(ep, ackBytes)
			for {
				so := q.Pop(p)
				if so.kind == opShut {
					return
				}
				slot := []omx.Segment{{
					Addr: heaps[so.tenant] + vm.Addr(so.key/cfg.Servers*cfg.ValueBytes),
					Len:  cfg.ValueBytes,
				}}
				switch so.kind {
				case opGet:
					r := ep.IsendVHint(slot, kvMatch(rank, tagData|so.seq), c.PeerAddr(so.src), true)
					if err := ep.Wait(p, r); err != nil {
						st.Errors++
					}
				case opPut:
					r := ep.IrecvVHint(slot, kvMatch(so.src, tagData|so.seq), ^uint64(0), true)
					if err := ep.Wait(p, r); err != nil {
						st.Errors++
						continue
					}
					a := ep.IsendVHint([]omx.Segment{{Addr: ack, Len: ackBytes}},
						kvMatch(rank, tagReply|so.seq), c.PeerAddr(so.src), true)
					if err := ep.Wait(p, a); err != nil {
						st.Errors++
					}
				}
			}
		})
	}

	// Memory hog: emergent pressure against the node's frame budget,
	// sweeping a churn arena while the serving loop runs (the PR 5
	// reclaim machinery steals cold heap pages — unless they're pinned).
	hogStop := false
	var hogDone *sim.Completion
	if cfg.ChurnBytes > 0 {
		hogDone = &sim.Completion{}
		churn := mustMalloc(ep, cfg.ChurnBytes)
		eng.Go(fmt.Sprintf("kv-srv%d-hog", rank), func(p *sim.Proc) {
			defer hogDone.Complete(eng, nil)
			dirt := make([]byte, vm.PageSize)
			for i := range dirt {
				dirt[i] = byte(i + 1)
			}
			for !hogStop {
				for off := 0; off < cfg.ChurnBytes && !hogStop; off += vm.PageSize {
					if err := ep.AS.Write(churn+vm.Addr(off), dirt); err != nil {
						panic(fmt.Sprintf("kv: server %d churn: %v", rank, err))
					}
				}
				p.Sleep(cfg.churnPeriod())
			}
		})
	}

	c.Barrier()

	// Header dispatcher: one small receive at a time from any client;
	// bursts queue in the endpoint's unexpected queue in deterministic
	// arrival order. Each client announces completion with one shutdown
	// header; the loop ends when all have.
	hdr := mustMalloc(ep, headerBytes)
	clients := c.Size() - cfg.Servers
	for shut := 0; shut < clients; {
		r := ep.IrecvVHint([]omx.Segment{{Addr: hdr, Len: headerBytes}},
			kvMatch(0, tagReq), anySrcMask(), true)
		if err := ep.Wait(c.Proc(), r); err != nil {
			st.Errors++
			continue
		}
		b := make([]byte, headerBytes)
		if err := ep.AS.Read(hdr, b); err != nil {
			panic(fmt.Sprintf("kv: server %d header read: %v", rank, err))
		}
		so := serverOp{
			kind:   opKind(b[0]),
			tenant: int(b[1]),
			key:    int(binary.LittleEndian.Uint32(b[4:])),
			seq:    binary.LittleEndian.Uint32(b[8:]) & seqMask,
			src:    int(uint16(r.RecvMatch >> srcShift)),
		}
		if so.kind == opShut {
			shut++
			continue
		}
		q.Push(eng, so)
	}
	for w := 0; w < workers; w++ {
		q.Push(eng, serverOp{kind: opShut})
	}
	for _, d := range done {
		d.Wait(c.Proc())
	}
	hogStop = true
	if hogDone != nil {
		hogDone.Wait(c.Proc())
	}
	sink.Stash(StashKey(rank), st)
}

func runClient(c *mpi.Comm, sink Sink, seed int64, cfg Config) {
	rank := c.Rank()
	ep := c.Endpoint()
	eng := ep.Node().Eng
	tenant := (rank - cfg.Servers) % len(cfg.Tenants)
	spec := cfg.Tenants[tenant]
	st := &Stats{Rank: rank, Tenant: tenant}

	// Seeded per-client streams: key popularity, arrival process, and
	// read/write mix draw independently so changing one never perturbs
	// the others.
	keys := NewZipf(mix(seed, rank, 1), cfg.Keys, cfg.Theta)
	arrivals := rand.New(rand.NewSource(mix(seed, rank, 2)))
	rw := rand.New(rand.NewSource(mix(seed, rank, 3)))

	// inflight counts accepted-but-incomplete operations — the admission
	// bound. Dispatcher and workers mutate it from the same engine's
	// strictly interleaved processes, so no lock is needed and the
	// trajectory is deterministic.
	inflight := 0
	var q sim.Queue[op]
	workers := cfg.workers()
	done := make([]*sim.Completion, workers)
	for w := 0; w < workers; w++ {
		w := w
		done[w] = &sim.Completion{}
		eng.Go(fmt.Sprintf("kv-cli%d-w%d", rank, w), func(p *sim.Proc) {
			defer done[w].Complete(eng, nil)
			val := mustMalloc(ep, cfg.ValueBytes)
			hdr := mustMalloc(ep, headerBytes)
			ack := mustMalloc(ep, ackBytes)
			for {
				o := q.Pop(p)
				if o.kind == opShut {
					return
				}
				err := clientOp(c, p, o, cfg, st, val, hdr, ack)
				lat := int64(p.Now() - o.scheduledAt)
				inflight--
				if err != nil {
					// Every protocol failure is a typed abort; anything
					// else would be a bug worth a loud note.
					if !errors.Is(err, omx.ErrAborted) && !errors.Is(err, omx.ErrPinAborted) {
						sink.Note("rank %d: unexpected op error: %v", rank, err)
					}
					st.Errors++
					continue
				}
				st.OK++
				if o.kind == opGet {
					st.Get.Record(lat)
				} else {
					st.Put.Record(lat)
				}
			}
		})
	}

	c.Barrier()

	// Open-loop dispatch: the schedule is fixed by the seed — arrival i
	// happens at its drawn instant whether or not earlier operations
	// finished. Latency is charged from this scheduled instant, so
	// backend stalls surface as queueing delay instead of silently
	// thinning the load (coordinated omission).
	next := c.Now()
	for i := 0; i < spec.Ops; i++ {
		next += sim.Duration(arrivals.ExpFloat64() / spec.Rate * float64(sim.Second))
		if now := c.Now(); next > now {
			c.Proc().Sleep(next - now)
		}
		st.Issued++
		kind := opGet
		if rw.Float64() >= spec.GetFrac {
			kind = opPut
		}
		if spec.MaxInflight > 0 && inflight >= spec.MaxInflight {
			// Admission control: reject instead of queueing without
			// bound. The typed error keeps rejection observable through
			// the same errors.Is lattice the protocol verbs use.
			err := error(&omx.OverloadError{Limit: spec.MaxInflight, Inflight: inflight})
			if !errors.Is(err, omx.ErrOverload) {
				panic("kv: overload rejection lost its type")
			}
			st.Rejected++
			continue
		}
		inflight++
		q.Push(eng, op{kind: kind, tenant: tenant, key: keys.Next(), seq: uint32(i) & seqMask, scheduledAt: next})
	}
	for w := 0; w < workers; w++ {
		q.Push(eng, op{kind: opShut})
	}
	for _, d := range done {
		d.Wait(c.Proc())
	}

	// All operations done: release every server with a shutdown header.
	hdr := mustMalloc(ep, headerBytes)
	for s := 0; s < cfg.Servers; s++ {
		writeHeader(ep, hdr, opShut, 0, 0, 0)
		r := ep.IsendVHint([]omx.Segment{{Addr: hdr, Len: headerBytes}},
			kvMatch(rank, tagReq), c.PeerAddr(s), true)
		if err := ep.Wait(c.Proc(), r); err != nil {
			st.Errors++
		}
	}
	sink.Stash(StashKey(rank), st)
}

// clientOp runs one operation's wire protocol from a client worker. Data
// receives post before the request header goes out, so the server's data
// phase can never race the match.
func clientOp(c *mpi.Comm, p *sim.Proc, o op, cfg Config, st *Stats, val, hdr, ack vm.Addr) error {
	ep := c.Endpoint()
	rank := c.Rank()
	server := o.key % cfg.Servers
	valSeg := []omx.Segment{{Addr: val, Len: cfg.ValueBytes}}

	var data, reply *omx.Request
	if o.kind == opGet {
		data = ep.IrecvVHint(valSeg, kvMatch(server, tagData|o.seq), ^uint64(0), true)
	} else {
		var sb [8]byte
		binary.LittleEndian.PutUint64(sb[:], sig(o.tenant, o.key))
		if err := ep.AS.Write(val, sb[:]); err != nil {
			panic(fmt.Sprintf("kv: rank %d value write: %v", rank, err))
		}
		reply = ep.IrecvVHint([]omx.Segment{{Addr: ack, Len: ackBytes}},
			kvMatch(server, tagReply|o.seq), ^uint64(0), true)
	}

	writeHeader(ep, hdr, o.kind, o.tenant, o.key, o.seq)
	req := ep.IsendVHint([]omx.Segment{{Addr: hdr, Len: headerBytes}},
		kvMatch(rank, tagReq), c.PeerAddr(server), true)
	if err := ep.Wait(p, req); err != nil {
		// The request never reached the server: reap the posted receive
		// so the worker can move on.
		if data != nil {
			ep.CancelRecv(data, omx.ErrTimeout)
			ep.Wait(p, data)
		}
		if reply != nil {
			ep.CancelRecv(reply, omx.ErrTimeout)
			ep.Wait(p, reply)
		}
		return err
	}

	if o.kind == opGet {
		if err := ep.Wait(p, data); err != nil {
			return err
		}
		var got [8]byte
		if err := ep.AS.Read(val, got[:]); err != nil {
			panic(fmt.Sprintf("kv: rank %d value read: %v", rank, err))
		}
		if binary.LittleEndian.Uint64(got[:]) != sig(o.tenant, o.key) {
			st.BadVals++
		}
		return nil
	}

	send := ep.IsendVHint(valSeg, kvMatch(rank, tagData|o.seq), c.PeerAddr(server), true)
	if err := ep.Wait(p, send); err != nil {
		ep.CancelRecv(reply, omx.ErrTimeout)
		ep.Wait(p, reply)
		return err
	}
	return ep.Wait(p, reply)
}

// TenantMerged is one tenant's cluster-wide aggregate.
type TenantMerged struct {
	Name     string
	Get      report.Hist
	Put      report.Hist
	Issued   int
	OK       int
	Rejected int
	Errors   int
	BadVals  int
}

// Merged is the cluster-wide aggregate Collect produces: per-class
// histograms across all tenants, per-tenant breakdowns, and the server
// side's error count. Because the histograms merge exactly and ranks fold
// in ascending order, Merged is identical whatever the shard layout.
type Merged struct {
	Get        report.Hist
	Put        report.Hist
	Tenants    []TenantMerged
	ServerErrs int
}

// Collect folds every rank's stashed Stats (ranks 0..ranks-1, in order)
// into one Merged. get returns rank r's record, or nil if the rank never
// stashed (a budget-expired run) — nil records are skipped.
func Collect(cfg Config, ranks int, get func(rank int) *Stats) *Merged {
	m := &Merged{Tenants: make([]TenantMerged, len(cfg.Tenants))}
	for t := range cfg.Tenants {
		m.Tenants[t].Name = cfg.Tenants[t].Name
	}
	for r := 0; r < ranks; r++ {
		st := get(r)
		if st == nil {
			continue
		}
		if st.Tenant < 0 {
			m.ServerErrs += st.Errors
			continue
		}
		tm := &m.Tenants[st.Tenant]
		tm.Get.Merge(&st.Get)
		tm.Put.Merge(&st.Put)
		tm.Issued += st.Issued
		tm.OK += st.OK
		tm.Rejected += st.Rejected
		tm.Errors += st.Errors
		tm.BadVals += st.BadVals
		m.Get.Merge(&st.Get)
		m.Put.Merge(&st.Put)
	}
	return m
}
