package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/report"
	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// Wire protocol. kv traffic runs on its own match context (the mpi layer
// owns contexts 1 and 2), with the message type in the tag's top bits and
// a per-client operation sequence below, so data phases of concurrent
// operations never cross-match:
//
//	match = | 16 bits ctxKV | 16 bits src rank | 3 bits type | 29 bits seq |
//
// An operation is a small eager header (request), a bulk value transfer
// sized past the rendezvous threshold so it crosses the pinning path, and
// for puts a small eager ack. Gets complete at value arrival, puts at the
// ack — the RDMA-read / RDMA-write shapes of an in-memory KV tier.
const (
	ctxKV    = 3
	srcShift = 32
	ctxShift = 48

	tagReq   = 1 << 29
	tagData  = 2 << 29
	tagReply = 3 << 29
	seqMask  = 1<<29 - 1

	headerBytes = 32
	ackBytes    = 16
)

func kvMatch(src int, tag uint32) uint64 {
	return uint64(ctxKV)<<ctxShift | uint64(uint16(src))<<srcShift | uint64(tag)
}

// anySrcMask matches any source rank (the server's header receive).
func anySrcMask() uint64 { return ^uint64(0) &^ (uint64(0xffff) << srcShift) }

type opKind uint8

const (
	opGet opKind = iota + 1
	opPut
	opShut
)

// Tenant describes one traffic class. Clients are assigned round-robin:
// client j (the j'th non-server rank) serves tenant j % len(Tenants).
type Tenant struct {
	// Name labels the tenant in metrics and SLO blocks.
	Name string
	// Ops is how many operations each of the tenant's clients issues.
	Ops int
	// Rate is the open-loop arrival rate per client, in operations per
	// second of simulated time. Arrivals are drawn from a seeded
	// exponential stream and do NOT wait for completions — when the
	// backend falls behind, queueing delay (and admission rejection) is
	// real.
	Rate float64
	// GetFrac is the read fraction of the mix (0.7 = 70% gets).
	GetFrac float64
	// MaxInflight bounds accepted-but-incomplete operations per client —
	// the admission-control knob. Arrivals past the bound are rejected
	// with a typed *omx.OverloadError instead of queueing without limit.
	MaxInflight int
}

// Config shapes one kvserve run. Ranks 0..Servers-1 are storage servers;
// every remaining rank is a client.
type Config struct {
	// Servers is the storage-server rank count.
	Servers int
	// Keys is the per-tenant key-space size. Key k lives on server
	// k % Servers, at slot k / Servers of that server's per-tenant heap.
	Keys int
	// ValueBytes is the value size. Sizes past the eager threshold
	// (32 KiB by default) take the rendezvous path, so value buffers are
	// pinned — or ODP-faulted — under the configured policy.
	ValueBytes int
	// Theta is the Zipfian key-popularity skew.
	Theta float64
	// Workers is the data-phase worker-process count per endpoint, client
	// and server alike.
	Workers int
	// Tenants is the traffic-class list (at least one).
	Tenants []Tenant
	// ChurnBytes, when positive, runs a memory hog on every server rank:
	// a background process dirtying this much buffer every ChurnPeriod,
	// overcommitting the node's frame budget so reclaim pressure on the
	// value heaps is emergent (the PR 5 machinery).
	ChurnBytes int
	// ChurnPeriod is the hog's sweep period (default 200µs).
	ChurnPeriod sim.Duration
	// Replication is the copies-per-key count (default 1, unreplicated).
	// Key k's replica set is servers (k%Servers + i) % Servers for
	// i < Replication; clients read from the primary and fail over to the
	// next replica on a typed ErrPeerDead/ErrTimeout, and write every
	// replica (an operation succeeds when at least one ack lands).
	Replication int
	// FailoverTimeout bounds how long a client waits on a posted data/ack
	// receive before cancelling it (ErrTimeout) and failing over. Only
	// armed when Replication > 1; default 20ms.
	FailoverTimeout sim.Duration
	// OutageStart/OutageEnd bound the outage observation window in
	// simulated time from run start: operations scheduled inside it also
	// record into the separate outage histograms, so an SLO can gate the
	// tail while a replica is down. Disabled when OutageEnd is zero.
	OutageStart sim.Duration
	OutageEnd   sim.Duration
}

func (cfg Config) workers() int {
	if cfg.Workers <= 0 {
		return 1
	}
	return cfg.Workers
}

func (cfg Config) churnPeriod() sim.Duration {
	if cfg.ChurnPeriod <= 0 {
		return 200 * sim.Microsecond
	}
	return cfg.ChurnPeriod
}

// slots is the per-tenant heap size in quotient groups on every server
// (uniform, ceil(Keys/Servers), so heap layout does not depend on the
// server index). Each group holds replicas() values — see slotOf.
func (cfg Config) slots() int { return (cfg.Keys + cfg.Servers - 1) / cfg.Servers }

// replicas is the effective replication factor, clamped to the server
// count (replica sets are distinct servers).
func (cfg Config) replicas() int {
	r := cfg.Replication
	if r < 1 {
		r = 1
	}
	if r > cfg.Servers {
		r = cfg.Servers
	}
	return r
}

func (cfg Config) failoverTimeout() sim.Duration {
	if cfg.FailoverTimeout <= 0 {
		return 20 * sim.Millisecond
	}
	return cfg.FailoverTimeout
}

// replicaIndex is which copy of key k server rank holds (0 = primary), or
// -1 when the rank is not in k's replica set.
func (cfg Config) replicaIndex(rank, k int) int {
	ri := (rank - k%cfg.Servers + cfg.Servers) % cfg.Servers
	if ri >= cfg.replicas() {
		return -1
	}
	return ri
}

// slotOf is key k's value slot in server rank's per-tenant heap: quotient
// group k/Servers, copy replicaIndex within it. Distinct keys replicated
// onto one server never collide; with Replication 1 it reduces to the
// historical k/Servers layout.
func (cfg Config) slotOf(rank, k int) int {
	return k/cfg.Servers*cfg.replicas() + cfg.replicaIndex(rank, k)
}

// inOutage reports whether an operation scheduled at t falls inside the
// configured outage observation window.
func (cfg Config) inOutage(t sim.Time) bool {
	return cfg.OutageEnd > 0 && t >= sim.Time(cfg.OutageStart) && t < sim.Time(cfg.OutageEnd)
}

// Stats is one rank's measurement record, stashed on the case cell at the
// end of the run and merged (in rank order, so deterministically) by
// Collect. Latencies are measured from the operation's scheduled open-loop
// arrival, not from dispatch — the coordinated-omission correction — in
// simulated nanoseconds.
type Stats struct {
	Rank   int
	Tenant int // -1 for servers
	Get    report.Hist
	Put    report.Hist
	// GetOutage/PutOutage are the windowed views of Get/Put for operations
	// scheduled inside the configured outage window (empty otherwise).
	GetOutage report.Hist
	PutOutage report.Hist
	// Issued counts arrivals, OK completions, Rejected admission drops,
	// Errors protocol aborts, BadVals GET payloads failing validation.
	Issued   int
	OK       int
	Rejected int
	Errors   int
	BadVals  int
	// Failovers counts replica attempts abandoned on a typed
	// ErrPeerDead/ErrTimeout (reads retried elsewhere, writes that lost a
	// copy but still acked).
	Failovers int
}

// Sink is the slice of scenario.CaseRun the workload needs; keeping it an
// interface avoids an import cycle (scenario imports kv).
type Sink interface {
	Stash(key string, v any)
	Note(format string, args ...any)
}

// StashKey names rank r's Stats record in the case stash.
func StashKey(r int) string { return fmt.Sprintf("kv/rank%d", r) }

// mix derives a per-(rank, stream) RNG seed from the run seed.
func mix(seed int64, rank, salt int) int64 {
	return seed ^ int64((uint64(rank)+1)*(uint64(salt)+3)*0x9e3779b97f4a7c15)
}

// sig returns the 8-byte value signature for (tenant, key): written at
// the head of every stored value, checked on every GET.
func sig(tenant, key int) uint64 {
	return uint64(tenant+1)<<40 ^ uint64(key+1)*0x9e3779b97f4a7c15
}

// op is one client operation in flight between dispatcher and workers.
type op struct {
	kind        opKind
	tenant      int
	key         int
	seq         uint32
	scheduledAt sim.Time
}

// Run is the per-rank workload body: servers allocate and prefill their
// value heaps, everyone meets at a barrier, clients drive open-loop
// traffic until their schedules drain, then shut the servers down. It is
// shaped as a scenario.Workload body (wrap it in a closure carrying the
// Config).
func Run(c *mpi.Comm, sink Sink, seed int64, cfg Config) {
	if cfg.Servers <= 0 || cfg.Servers >= c.Size() {
		panic(fmt.Sprintf("kv: need 1 <= Servers < ranks, got Servers=%d ranks=%d", cfg.Servers, c.Size()))
	}
	if len(cfg.Tenants) == 0 {
		panic("kv: need at least one tenant")
	}
	if c.Rank() < cfg.Servers {
		runServer(c, sink, cfg)
	} else {
		runClient(c, sink, seed, cfg)
	}
}

func mustMalloc(ep *omx.Endpoint, n int) vm.Addr {
	a, err := ep.Malloc(n)
	if err != nil {
		panic(fmt.Sprintf("kv: malloc(%d): %v", n, err))
	}
	return a
}

func writeHeader(ep *omx.Endpoint, a vm.Addr, kind opKind, tenant, key int, seq uint32) {
	var b [headerBytes]byte
	b[0] = byte(kind)
	b[1] = byte(tenant)
	binary.LittleEndian.PutUint32(b[4:], uint32(key))
	binary.LittleEndian.PutUint32(b[8:], seq)
	if err := ep.AS.Write(a, b[:]); err != nil {
		panic(fmt.Sprintf("kv: header write: %v", err))
	}
}

// serverOp is a parsed request handed from the server's header dispatcher
// to its data-phase workers.
type serverOp struct {
	kind   opKind
	tenant int
	key    int
	seq    uint32
	src    int
}

func runServer(c *mpi.Comm, sink Sink, cfg Config) {
	rank := c.Rank()
	ep := c.Endpoint()
	eng := ep.Node().Eng
	st := &Stats{Rank: rank, Tenant: -1}
	slots := cfg.slots()

	// Value heaps: one contiguous per-tenant arena, prefilled with
	// signed values so the first GET of any key validates — on every
	// replica (slotOf gives each copy its own slot, so replicated keys
	// never collide). The prefill writes touch every frame, so the heaps
	// are resident (and, under a frame budget, already contended) before
	// the serving clock starts.
	heaps := make([]vm.Addr, len(cfg.Tenants))
	val := make([]byte, cfg.ValueBytes)
	for i := range val {
		val[i] = byte(i>>8) ^ byte(i)
	}
	for t := range cfg.Tenants {
		heaps[t] = mustMalloc(ep, slots*cfg.replicas()*cfg.ValueBytes)
		for k := 0; k < cfg.Keys; k++ {
			if cfg.replicaIndex(rank, k) < 0 {
				continue
			}
			binary.LittleEndian.PutUint64(val[:8], sig(t, k))
			a := heaps[t] + vm.Addr(cfg.slotOf(rank, k)*cfg.ValueBytes)
			if err := ep.AS.Write(a, val); err != nil {
				panic(fmt.Sprintf("kv: server %d prefill: %v", rank, err))
			}
		}
	}

	// Serving lanes: the primary endpoint plus every aux endpoint the
	// cluster attached to this rank-role (EndpointsPerNode). Each lane is
	// an independent dispatcher + worker pool on its own endpoint —
	// clients hash keys across the lanes, and lane traffic steers onto
	// its own NIC queue via the endpoint-pair flow.
	lanes := append([]*omx.Endpoint{ep}, ep.Aux()...)
	qs := make([]*sim.Queue[serverOp], len(lanes))
	for li := range qs {
		qs[li] = &sim.Queue[serverOp]{}
	}

	// Data-phase workers: GETs send the slot out, PUTs receive into it
	// in place and ack. The value segments are heap addresses, so every
	// transfer drives the registration cache and pinning policy on the
	// serving side.
	workers := cfg.workers()
	var done []*sim.Completion
	for li, lep := range lanes {
		lep, q := lep, qs[li]
		for w := 0; w < workers; w++ {
			name := fmt.Sprintf("kv-srv%d-w%d", rank, w)
			if li > 0 {
				name = fmt.Sprintf("kv-srv%d-l%d-w%d", rank, li, w)
			}
			d := &sim.Completion{}
			done = append(done, d)
			eng.Go(name, func(p *sim.Proc) {
				defer d.Complete(eng, nil)
				ack := mustMalloc(lep, ackBytes)
				for {
					so := q.Pop(p)
					if so.kind == opShut {
						return
					}
					slot := []omx.Segment{{
						Addr: heaps[so.tenant] + vm.Addr(cfg.slotOf(rank, so.key)*cfg.ValueBytes),
						Len:  cfg.ValueBytes,
					}}
					switch so.kind {
					case opGet:
						r := lep.IsendVHint(slot, kvMatch(rank, tagData|so.seq), c.PeerAddr(so.src), true)
						if err := lep.Wait(p, r); err != nil {
							st.Errors++
						}
					case opPut:
						if err := serverPutRecv(p, lep, cfg, slot, so); err != nil {
							st.Errors++
							continue
						}
						a := lep.IsendVHint([]omx.Segment{{Addr: ack, Len: ackBytes}},
							kvMatch(rank, tagReply|so.seq), c.PeerAddr(so.src), true)
						if err := lep.Wait(p, a); err != nil {
							st.Errors++
						}
					}
				}
			})
		}
	}

	// Memory hog: emergent pressure against the node's frame budget,
	// sweeping a churn arena while the serving loop runs (the PR 5
	// reclaim machinery steals cold heap pages — unless they're pinned).
	hogStop := false
	var hogDone *sim.Completion
	if cfg.ChurnBytes > 0 {
		hogDone = &sim.Completion{}
		churn := mustMalloc(ep, cfg.ChurnBytes)
		eng.Go(fmt.Sprintf("kv-srv%d-hog", rank), func(p *sim.Proc) {
			defer hogDone.Complete(eng, nil)
			dirt := make([]byte, vm.PageSize)
			for i := range dirt {
				dirt[i] = byte(i + 1)
			}
			for !hogStop {
				for off := 0; off < cfg.ChurnBytes && !hogStop; off += vm.PageSize {
					if err := ep.AS.Write(churn+vm.Addr(off), dirt); err != nil {
						panic(fmt.Sprintf("kv: server %d churn: %v", rank, err))
					}
				}
				p.Sleep(cfg.churnPeriod())
			}
		})
	}

	c.Barrier()

	// Header dispatchers, one per lane: one small receive at a time from
	// any client; bursts queue in the endpoint's unexpected queue in
	// deterministic arrival order. Each client announces completion with
	// one shutdown header per lane; a lane's loop ends when all have.
	// Lane 0 runs on the rank body itself (the historical single-lane
	// path, event-for-event); further lanes run as their own processes.
	dispatch := func(p *sim.Proc, lep *omx.Endpoint, q *sim.Queue[serverOp]) {
		hdr := mustMalloc(lep, headerBytes)
		clients := c.Size() - cfg.Servers
		for shut := 0; shut < clients; {
			r := lep.IrecvVHint([]omx.Segment{{Addr: hdr, Len: headerBytes}},
				kvMatch(0, tagReq), anySrcMask(), true)
			if err := lep.Wait(p, r); err != nil {
				st.Errors++
				continue
			}
			b := make([]byte, headerBytes)
			if err := lep.AS.Read(hdr, b); err != nil {
				panic(fmt.Sprintf("kv: server %d header read: %v", rank, err))
			}
			so := serverOp{
				kind:   opKind(b[0]),
				tenant: int(b[1]),
				key:    int(binary.LittleEndian.Uint32(b[4:])),
				seq:    binary.LittleEndian.Uint32(b[8:]) & seqMask,
				src:    int(uint16(r.RecvMatch >> srcShift)),
			}
			if so.kind == opShut {
				shut++
				continue
			}
			q.Push(eng, so)
		}
	}
	var laneDone []*sim.Completion
	for li := 1; li < len(lanes); li++ {
		li := li
		d := &sim.Completion{}
		laneDone = append(laneDone, d)
		eng.Go(fmt.Sprintf("kv-srv%d-l%d-disp", rank, li), func(p *sim.Proc) {
			defer d.Complete(eng, nil)
			dispatch(p, lanes[li], qs[li])
		})
	}
	dispatch(c.Proc(), lanes[0], qs[0])
	for _, d := range laneDone {
		d.Wait(c.Proc())
	}
	for li := range lanes {
		for w := 0; w < workers; w++ {
			qs[li].Push(eng, serverOp{kind: opShut})
		}
	}
	for _, d := range done {
		d.Wait(c.Proc())
	}
	hogStop = true
	if hogDone != nil {
		hogDone.Wait(c.Proc())
	}
	sink.Stash(StashKey(rank), st)
}

// serverPutRecv posts the PUT data receive. Under replication the wait is
// bounded by the failover timeout (a failed-over client will never send),
// and a crash-aborted receive is reposted once: the client's data phase
// may still be in flight from before the crash, and sends cannot be
// cancelled, so draining the dangling transfer is what unsticks the
// client. Unreplicated runs keep the historical unbounded single post.
func serverPutRecv(p *sim.Proc, lep *omx.Endpoint, cfg Config, slot []omx.Segment, so serverOp) error {
	if cfg.replicas() <= 1 {
		r := lep.IrecvVHint(slot, kvMatch(so.src, tagData|so.seq), ^uint64(0), true)
		return lep.Wait(p, r)
	}
	eng := lep.Node().Eng
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		r := lep.IrecvVHint(slot, kvMatch(so.src, tagData|so.seq), ^uint64(0), true)
		tm := eng.After(cfg.failoverTimeout(), func() { lep.CancelRecv(r, omx.ErrTimeout) })
		err = lep.Wait(p, r)
		tm.Cancel()
		if err == nil || errors.Is(err, omx.ErrTimeout) {
			break // done, or the data is genuinely not coming
		}
	}
	return err
}

func runClient(c *mpi.Comm, sink Sink, seed int64, cfg Config) {
	rank := c.Rank()
	ep := c.Endpoint()
	eng := ep.Node().Eng
	tenant := (rank - cfg.Servers) % len(cfg.Tenants)
	spec := cfg.Tenants[tenant]
	st := &Stats{Rank: rank, Tenant: tenant}

	// Seeded per-client streams: key popularity, arrival process, and
	// read/write mix draw independently so changing one never perturbs
	// the others.
	keys := NewZipf(mix(seed, rank, 1), cfg.Keys, cfg.Theta)
	arrivals := rand.New(rand.NewSource(mix(seed, rank, 2)))
	rw := rand.New(rand.NewSource(mix(seed, rank, 3)))

	// inflight counts accepted-but-incomplete operations — the admission
	// bound. Dispatcher and workers mutate it from the same engine's
	// strictly interleaved processes, so no lock is needed and the
	// trajectory is deterministic.
	inflight := 0
	var q sim.Queue[op]
	workers := cfg.workers()
	done := make([]*sim.Completion, workers)
	for w := 0; w < workers; w++ {
		w := w
		done[w] = &sim.Completion{}
		eng.Go(fmt.Sprintf("kv-cli%d-w%d", rank, w), func(p *sim.Proc) {
			defer done[w].Complete(eng, nil)
			val := mustMalloc(ep, cfg.ValueBytes)
			hdr := mustMalloc(ep, headerBytes)
			ack := mustMalloc(ep, ackBytes)
			for {
				o := q.Pop(p)
				if o.kind == opShut {
					return
				}
				err := clientOp(c, p, o, cfg, st, val, hdr, ack)
				lat := int64(p.Now() - o.scheduledAt)
				inflight--
				if err != nil {
					// Every protocol failure is a typed abort; anything
					// else would be a bug worth a loud note.
					if !errors.Is(err, omx.ErrAborted) && !errors.Is(err, omx.ErrPinAborted) {
						sink.Note("rank %d: unexpected op error: %v", rank, err)
					}
					st.Errors++
					continue
				}
				st.OK++
				inOutage := cfg.inOutage(o.scheduledAt)
				if o.kind == opGet {
					st.Get.Record(lat)
					if inOutage {
						st.GetOutage.Record(lat)
					}
				} else {
					st.Put.Record(lat)
					if inOutage {
						st.PutOutage.Record(lat)
					}
				}
			}
		})
	}

	c.Barrier()

	// Open-loop dispatch: the schedule is fixed by the seed — arrival i
	// happens at its drawn instant whether or not earlier operations
	// finished. Latency is charged from this scheduled instant, so
	// backend stalls surface as queueing delay instead of silently
	// thinning the load (coordinated omission).
	next := c.Now()
	for i := 0; i < spec.Ops; i++ {
		next += sim.Duration(arrivals.ExpFloat64() / spec.Rate * float64(sim.Second))
		if now := c.Now(); next > now {
			c.Proc().Sleep(next - now)
		}
		st.Issued++
		kind := opGet
		if rw.Float64() >= spec.GetFrac {
			kind = opPut
		}
		if spec.MaxInflight > 0 && inflight >= spec.MaxInflight {
			// Admission control: reject instead of queueing without
			// bound. The typed error keeps rejection observable through
			// the same errors.Is lattice the protocol verbs use.
			err := error(&omx.OverloadError{Limit: spec.MaxInflight, Inflight: inflight})
			if !errors.Is(err, omx.ErrOverload) {
				panic("kv: overload rejection lost its type")
			}
			st.Rejected++
			continue
		}
		inflight++
		q.Push(eng, op{kind: kind, tenant: tenant, key: keys.Next(), seq: uint32(i) & seqMask, scheduledAt: next})
	}
	for w := 0; w < workers; w++ {
		q.Push(eng, op{kind: opShut})
	}
	for _, d := range done {
		d.Wait(c.Proc())
	}

	// All operations done: release every serving lane of every server
	// with a shutdown header. A send lost to a crash window retries a few
	// times — the server restarts inside its chaos window and must still
	// learn this client is finished.
	hdr := mustMalloc(ep, headerBytes)
	for s := 0; s < cfg.Servers; s++ {
		for _, addr := range c.PeerAddrs(s) {
			for try := 0; ; try++ {
				writeHeader(ep, hdr, opShut, 0, 0, 0)
				r := ep.IsendVHint([]omx.Segment{{Addr: hdr, Len: headerBytes}},
					kvMatch(rank, tagReq), addr, true)
				err := ep.Wait(c.Proc(), r)
				if err == nil {
					break
				}
				st.Errors++
				if try >= 2 {
					sink.Note("rank %d: shutdown to %v lost after %d tries: %v", rank, addr, try+1, err)
					break
				}
			}
		}
	}
	sink.Stash(StashKey(rank), st)
}

// failoverable reports whether an error justifies trying another replica:
// the typed liveness aborts (peer dead, timed out), not admission or pin
// failures.
func failoverable(err error) bool {
	return errors.Is(err, omx.ErrPeerDead) || errors.Is(err, omx.ErrTimeout)
}

// laneAddr picks the serving lane on server for key: lanes partition the
// key space by quotient group, so one key always lands on the same lane.
func laneAddr(c *mpi.Comm, cfg Config, server, key int) omx.EndpointAddr {
	addrs := c.PeerAddrs(server)
	if len(addrs) == 1 {
		return addrs[0]
	}
	return addrs[key/cfg.Servers%len(addrs)]
}

// clientOp runs one operation's wire protocol from a client worker. Reads
// go to the key's primary and fail over through the replica set on typed
// liveness errors; writes go to every replica and succeed when at least
// one ack lands. With Replication 1 both shapes reduce to the historical
// single-server exchange.
func clientOp(c *mpi.Comm, p *sim.Proc, o op, cfg Config, st *Stats, val, hdr, ack vm.Addr) error {
	replicas := cfg.replicas()
	if o.kind == opGet {
		var lastErr error
		for i := 0; i < replicas; i++ {
			server := (o.key%cfg.Servers + i) % cfg.Servers
			err := clientGet(c, p, o, cfg, st, val, hdr, server)
			if err == nil {
				return nil
			}
			lastErr = err
			if i+1 < replicas && failoverable(err) {
				st.Failovers++
				continue
			}
			return err
		}
		return lastErr
	}
	acked := 0
	var lastErr error
	for i := 0; i < replicas; i++ {
		server := (o.key%cfg.Servers + i) % cfg.Servers
		if err := clientPut(c, p, o, cfg, val, hdr, ack, server); err != nil {
			lastErr = err
			if replicas > 1 && failoverable(err) {
				st.Failovers++
			}
			continue
		}
		acked++
	}
	if acked > 0 {
		return nil
	}
	return lastErr
}

// waitRecvBounded waits on a posted receive; with replication enabled a
// failover timer cancels it (ErrTimeout) if the replica goes quiet — a
// posted receive whose sender crashed would otherwise never complete.
func waitRecvBounded(c *mpi.Comm, p *sim.Proc, cfg Config, r *omx.Request) error {
	ep := c.Endpoint()
	if cfg.replicas() <= 1 {
		return ep.Wait(p, r)
	}
	tm := ep.Node().Eng.After(cfg.failoverTimeout(), func() {
		ep.CancelRecv(r, omx.ErrTimeout)
	})
	err := ep.Wait(p, r)
	tm.Cancel()
	return err
}

// clientGet runs one read attempt against one replica. The data receive
// posts before the request header goes out, so the server's data phase can
// never race the match.
func clientGet(c *mpi.Comm, p *sim.Proc, o op, cfg Config, st *Stats, val, hdr vm.Addr, server int) error {
	ep := c.Endpoint()
	rank := c.Rank()
	valSeg := []omx.Segment{{Addr: val, Len: cfg.ValueBytes}}

	data := ep.IrecvVHint(valSeg, kvMatch(server, tagData|o.seq), ^uint64(0), true)
	writeHeader(ep, hdr, o.kind, o.tenant, o.key, o.seq)
	req := ep.IsendVHint([]omx.Segment{{Addr: hdr, Len: headerBytes}},
		kvMatch(rank, tagReq), laneAddr(c, cfg, server, o.key), true)
	if err := ep.Wait(p, req); err != nil {
		// The request never reached the server: reap the posted receive
		// so the worker can move on.
		ep.CancelRecv(data, omx.ErrTimeout)
		ep.Wait(p, data)
		return err
	}
	if err := waitRecvBounded(c, p, cfg, data); err != nil {
		return err
	}
	var got [8]byte
	if err := ep.AS.Read(val, got[:]); err != nil {
		panic(fmt.Sprintf("kv: rank %d value read: %v", rank, err))
	}
	if binary.LittleEndian.Uint64(got[:]) != sig(o.tenant, o.key) {
		st.BadVals++
	}
	return nil
}

// clientPut runs one write against one replica.
func clientPut(c *mpi.Comm, p *sim.Proc, o op, cfg Config, val, hdr, ack vm.Addr, server int) error {
	ep := c.Endpoint()
	rank := c.Rank()
	valSeg := []omx.Segment{{Addr: val, Len: cfg.ValueBytes}}

	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], sig(o.tenant, o.key))
	if err := ep.AS.Write(val, sb[:]); err != nil {
		panic(fmt.Sprintf("kv: rank %d value write: %v", rank, err))
	}
	reply := ep.IrecvVHint([]omx.Segment{{Addr: ack, Len: ackBytes}},
		kvMatch(server, tagReply|o.seq), ^uint64(0), true)

	writeHeader(ep, hdr, o.kind, o.tenant, o.key, o.seq)
	req := ep.IsendVHint([]omx.Segment{{Addr: hdr, Len: headerBytes}},
		kvMatch(rank, tagReq), laneAddr(c, cfg, server, o.key), true)
	if err := ep.Wait(p, req); err != nil {
		ep.CancelRecv(reply, omx.ErrTimeout)
		ep.Wait(p, reply)
		return err
	}

	send := ep.IsendVHint(valSeg, kvMatch(rank, tagData|o.seq), laneAddr(c, cfg, server, o.key), true)
	if err := ep.Wait(p, send); err != nil {
		ep.CancelRecv(reply, omx.ErrTimeout)
		ep.Wait(p, reply)
		return err
	}
	return waitRecvBounded(c, p, cfg, reply)
}

// TenantMerged is one tenant's cluster-wide aggregate.
type TenantMerged struct {
	Name     string
	Get      report.Hist
	Put      report.Hist
	Issued   int
	OK       int
	Rejected int
	Errors   int
	BadVals  int
}

// Merged is the cluster-wide aggregate Collect produces: per-class
// histograms across all tenants, per-tenant breakdowns, and the server
// side's error count. Because the histograms merge exactly and ranks fold
// in ascending order, Merged is identical whatever the shard layout.
type Merged struct {
	Get report.Hist
	Put report.Hist
	// OutageGet/OutagePut cover only operations scheduled inside the
	// configured outage window (empty when no window is set) — the view
	// the replicated scenario's SLO gate reads.
	OutageGet  report.Hist
	OutagePut  report.Hist
	Tenants    []TenantMerged
	ServerErrs int
	Failovers  int
}

// Collect folds every rank's stashed Stats (ranks 0..ranks-1, in order)
// into one Merged. get returns rank r's record, or nil if the rank never
// stashed (a budget-expired run) — nil records are skipped.
func Collect(cfg Config, ranks int, get func(rank int) *Stats) *Merged {
	m := &Merged{Tenants: make([]TenantMerged, len(cfg.Tenants))}
	for t := range cfg.Tenants {
		m.Tenants[t].Name = cfg.Tenants[t].Name
	}
	for r := 0; r < ranks; r++ {
		st := get(r)
		if st == nil {
			continue
		}
		if st.Tenant < 0 {
			m.ServerErrs += st.Errors
			continue
		}
		tm := &m.Tenants[st.Tenant]
		tm.Get.Merge(&st.Get)
		tm.Put.Merge(&st.Put)
		tm.Issued += st.Issued
		tm.OK += st.OK
		tm.Rejected += st.Rejected
		tm.Errors += st.Errors
		tm.BadVals += st.BadVals
		m.Get.Merge(&st.Get)
		m.Put.Merge(&st.Put)
		m.OutageGet.Merge(&st.GetOutage)
		m.OutagePut.Merge(&st.PutOutage)
		m.Failovers += st.Failovers
	}
	return m
}
