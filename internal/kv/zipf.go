// Package kv implements an RDMA-backed key-value serving workload over
// Open-MX endpoints: client ranks issue open-loop get/put traffic with
// Zipfian key popularity against server ranks whose value heaps live under
// the registration cache and pinning policies, so tail latency under
// memory pressure becomes a measurable property of each backend.
package kv

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf draws keys 0..n-1 with the popularity of rank k proportional to
// 1/(k+1)^theta (key 0 is the hottest), by inverting a precomputed CDF
// with a seeded uniform stream. math/rand and the table are both
// deterministic, so the same seed always yields the same key sequence —
// the property the scenario determinism gates need. Rolling our own
// (instead of rand.Zipf's rejection sampler) keeps the rank-frequency
// slope directly testable against the configured skew.
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf builds a generator over n keys with skew theta.
func NewZipf(seed int64, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("kv: Zipf needs a positive key count")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -theta)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[n-1] = 1 // guard against rounding: Next always lands in range
	return &Zipf{rng: rand.New(rand.NewSource(seed)), cdf: cdf}
}

// Next draws the next key.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
