package kv

import (
	"math"
	"testing"
)

// TestZipfReproducible pins the seeding contract: the same seed yields the
// same key stream, a different seed a different one.
func TestZipfReproducible(t *testing.T) {
	a := NewZipf(11, 100, 0.99)
	b := NewZipf(11, 100, 0.99)
	other := NewZipf(12, 100, 0.99)
	same, diff := true, false
	for i := 0; i < 1000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			same = false
		}
		if x != other.Next() {
			diff = true
		}
		if x < 0 || x >= 100 {
			t.Fatalf("draw %d out of range: %d", i, x)
		}
	}
	if !same {
		t.Fatal("identical seeds diverged")
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestZipfSkew checks the distribution itself: over a large sample the
// empirical rank-frequency curve must follow freq(k) ∝ (k+1)^-theta, i.e.
// a log-log slope of -theta, within tolerance. The fit uses least squares
// over the head of the distribution, where every rank has enough mass for
// its empirical frequency to be stable.
func TestZipfSkew(t *testing.T) {
	for _, theta := range []float64{0.6, 0.99, 1.3} {
		const keys, draws, head = 200, 400_000, 25
		z := NewZipf(5, keys, theta)
		counts := make([]int, keys)
		for i := 0; i < draws; i++ {
			counts[z.Next()]++
		}
		// Key id is popularity rank by construction; check monotonic-ish
		// head ordering (hottest key is rank 0).
		for k := 1; k < 5; k++ {
			if counts[k] > counts[0] {
				t.Fatalf("theta=%g: key %d drawn more often than key 0 (%d > %d)",
					theta, k, counts[k], counts[0])
			}
		}
		var sx, sy, sxx, sxy float64
		for k := 0; k < head; k++ {
			if counts[k] == 0 {
				t.Fatalf("theta=%g: head rank %d never drawn in %d samples", theta, k, draws)
			}
			x := math.Log(float64(k + 1))
			y := math.Log(float64(counts[k]) / draws)
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		slope := (float64(head)*sxy - sx*sy) / (float64(head)*sxx - sx*sx)
		if math.Abs(slope-(-theta)) > 0.08 {
			t.Errorf("theta=%g: empirical rank-frequency slope %.3f, want %.3f ± 0.08",
				theta, slope, -theta)
		}
	}
}
