// spec_assert.go — the assertion block of the spec format. Every entry
// lowers onto the exact assertion constructor the Go builtins use
// (MetricAtLeast, PinAccountingBalanced, KVSLOBlock, ...), and the
// `check:` form resolves a registry of named custom checks factored out
// of the builtin families — so a spec's assertion list produces the same
// report entries, names and all, as its legacy Go twin.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"omxsim/internal/yamlite"
)

// specChecks is the named custom-check registry the `check:` assertion
// form resolves. Each entry is a factored builtin assertion; the display
// name in reports is the assertion's own (e.g. "frame budget holds"),
// not the registry key.
var specChecks = map[string]func() Assertion{
	"emergent-steals":       emergentSteals,
	"frame-budget-holds":    frameBudgetHolds,
	"pinned-working-set":    pinnedWorkingSet,
	"odp-absorbs-reclaim":   odpAbsorbsReclaim,
	"odp-fault-visible":     odpFaultVisible,
	"pinned-tenant-buffers": pinnedTenantBuffers,
	"no-inflight-requests":  noInflightRequests,
	"pin-surfaces-shrink":   pinSurfacesShrink,
	"odp-absorbs-shrink":    odpAbsorbsShrink,
	"kv-clean-run":          kvCleanRun,
}

// checkNames lists the registry keys for error messages, sorted.
func checkNames() string {
	names := make([]string, 0, len(specChecks))
	for n := range specChecks {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// assertTypeKeys are the keys that select an assertion form; each entry
// must carry exactly one.
var assertTypeKeys = []string{
	"completed", "pin_accounting", "positive", "at_least", "below",
	"check", "slo", "tail_differential",
}

// decodeAssertions parses the ordered assertion block.
func (d *dec) decodeAssertions(n *yamlite.Node, sp *Spec) error {
	if err := d.wantSeq(n, "assertions"); err != nil {
		return err
	}
	for _, it := range n.Items {
		if err := d.wantMap(it, "assertion"); err != nil {
			return err
		}
		var typ string
		for _, p := range it.Pairs {
			for _, k := range assertTypeKeys {
				if p.Key == k {
					if typ != "" {
						return d.errf(p.Line, "assertion sets both %q and %q: each entry is exactly one assertion", typ, p.Key)
					}
					typ = k
				}
			}
		}
		if typ == "" {
			return d.errf(it.Line, "assertion entry has no type key (one of: %s)", strings.Join(assertTypeKeys, ", "))
		}
		a, err := d.decodeAssertion(it, typ, sp)
		if err != nil {
			return err
		}
		sp.asserts = append(sp.asserts, a...)
	}
	return nil
}

// decodeAssertion lowers one entry. It returns a slice because the slo
// form expands through KVSLOBlock.
func (d *dec) decodeAssertion(it *yamlite.Node, typ string, sp *Spec) ([]Assertion, error) {
	// get fetches the typed key's own scalar value.
	typeVal := func() (*yamlite.Node, int) {
		for _, p := range it.Pairs {
			if p.Key == typ {
				return p.Val, p.Line
			}
		}
		return nil, it.Line
	}
	// rejectExtras errors on any sibling key outside allowed.
	rejectExtras := func(allowed ...string) error {
		for _, p := range it.Pairs {
			if p.Key == typ {
				continue
			}
			ok := false
			for _, a := range allowed {
				if p.Key == a {
					ok = true
					break
				}
			}
			if !ok {
				if len(allowed) == 0 {
					return d.errf(p.Line, "assertion %q: unexpected field %q (this form takes no extra fields)", typ, p.Key)
				}
				return d.errf(p.Line, "assertion %q: unexpected field %q (fields: %s)", typ, p.Key, strings.Join(allowed, ", "))
			}
		}
		return nil
	}
	// value reads the required `value` sibling.
	value := func() (float64, error) {
		for _, p := range it.Pairs {
			if p.Key == "value" {
				return d.floatVal(p.Val, "assertion value")
			}
		}
		return 0, d.errf(it.Line, "assertion %q needs a `value` field", typ)
	}

	v, line := typeVal()
	switch typ {
	case "completed", "pin_accounting":
		if err := rejectExtras(); err != nil {
			return nil, err
		}
		b, err := d.boolVal(v, typ)
		if err != nil {
			return nil, err
		}
		if !b {
			return nil, d.errf(line, "assertion %q: only `true` makes sense (drop the entry to skip the check)", typ)
		}
		if typ == "completed" {
			return []Assertion{Completed()}, nil
		}
		return []Assertion{PinAccountingBalanced()}, nil

	case "positive":
		if err := rejectExtras(); err != nil {
			return nil, err
		}
		m, err := d.str(v, "positive")
		if err != nil {
			return nil, err
		}
		return []Assertion{MetricPositive(m)}, nil

	case "at_least", "below":
		if err := rejectExtras("value"); err != nil {
			return nil, err
		}
		m, err := d.str(v, typ)
		if err != nil {
			return nil, err
		}
		bound, err := value()
		if err != nil {
			return nil, err
		}
		if typ == "at_least" {
			return []Assertion{MetricAtLeast(m, bound)}, nil
		}
		return []Assertion{MetricBelow(m, bound)}, nil

	case "check":
		if err := rejectExtras(); err != nil {
			return nil, err
		}
		name, err := d.str(v, "check")
		if err != nil {
			return nil, err
		}
		mk, ok := specChecks[name]
		if !ok {
			return nil, d.errf(v.Line, "check: unknown check %q (checks: %s)", name, checkNames())
		}
		return []Assertion{mk()}, nil

	case "slo":
		tenant, err := d.str(v, "slo")
		if err != nil {
			return nil, err
		}
		slo := KVSLO{Tenant: tenant}
		for _, p := range it.Pairs {
			if p.Key == typ {
				continue
			}
			var err error
			switch p.Key {
			case "p50_us":
				slo.P50US, err = d.floatVal(p.Val, "slo.p50_us")
			case "p99_us":
				slo.P99US, err = d.floatVal(p.Val, "slo.p99_us")
			case "p999_us":
				slo.P999US, err = d.floatVal(p.Val, "slo.p999_us")
			case "max_reject_frac":
				slo.MaxRejectFrac, err = d.floatVal(p.Val, "slo.max_reject_frac")
			case "min_rejects":
				slo.MinRejects, err = d.floatVal(p.Val, "slo.min_rejects")
			default:
				return nil, d.errf(p.Line, "assertion \"slo\": unexpected field %q (fields: p50_us, p99_us, p999_us, max_reject_frac, min_rejects)", p.Key)
			}
			if err != nil {
				return nil, err
			}
		}
		sp.sloTenants = append(sp.sloTenants, sloRef{tenant: tenant, line: line})
		return KVSLOBlock(slo), nil

	case "tail_differential":
		if err := rejectExtras("pinned", "odp", "factor"); err != nil {
			return nil, err
		}
		metric, err := d.str(v, "tail_differential")
		if err != nil {
			return nil, err
		}
		var pinned, odp string
		var factor float64
		for _, p := range it.Pairs {
			var err error
			switch p.Key {
			case "pinned":
				pinned, err = d.str(p.Val, "tail_differential.pinned")
			case "odp":
				odp, err = d.str(p.Val, "tail_differential.odp")
			case "factor":
				factor, err = d.floatVal(p.Val, "tail_differential.factor")
			}
			if err != nil {
				return nil, err
			}
		}
		if pinned == "" || odp == "" || factor <= 0 {
			return nil, d.errf(line, "assertion \"tail_differential\" needs `pinned`, `odp`, and a positive `factor`")
		}
		return []Assertion{kvTailDifferential(metric, pinned, odp, factor)}, nil
	}
	return nil, fmt.Errorf("%s:%d: unreachable assertion type %q", d.file, line, typ)
}
