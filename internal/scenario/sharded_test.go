package scenario

import (
	"bytes"
	"runtime"
	"testing"

	"omxsim/internal/report"
)

// resultBytes serialises a run to the canonical JSON the determinism gate
// compares. encoding/json sorts map keys, so two Results with equal
// content produce identical bytes.
func resultBytes(t *testing.T, name string, opts Options) []byte {
	t.Helper()
	s, ok := Get(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	res, err := s.Run(opts)
	if err != nil {
		t.Fatalf("%s (shards=%d): %v", name, opts.Shards, err)
	}
	if res.Failed() {
		for _, a := range res.Assertions {
			if !a.Passed {
				t.Errorf("%s (shards=%d): assertion %q failed: %s", name, opts.Shards, a.Name, a.Detail)
			}
		}
		t.FailNow()
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardCountInvariance is the parallel engine's determinism gate: the
// same seed must produce byte-identical results whether the cluster runs
// on 1, 2, or more shards, and regardless of GOMAXPROCS. Shards=1 is the
// serial reference (the windowed coordinator on a single engine); higher
// counts actually run shard goroutines concurrently.
func TestShardCountInvariance(t *testing.T) {
	cases := []struct {
		scenario string
		shards   []int
		opts     Options
	}{
		// pressure-policies exercises daemons (kswapd), reclaim, swap and
		// four pinning backends on 2 nodes: shards 1 vs 2.
		{scenario: "pressure-policies", shards: []int{1, 2}, opts: Options{Quick: true}},
		// fleet-stream is the 8-node parallel workload: sweep the shard
		// counts the benchmark uses.
		{scenario: "fleet-stream", shards: []int{1, 2, 4, 8}, opts: Options{Quick: true}},
		// The chaos family must stay invariant too: the fault schedule is
		// precomputed per cell, so crashes, degrade windows, and budget
		// shrinks land at the same simulated instants on every layout.
		{scenario: "chaos-crash-recover", shards: []int{1, 2, 4}},
		{scenario: "chaos-degraded-link", shards: []int{1, 4}},
		{scenario: "chaos-budget-shrink", shards: []int{1, 2}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scenario, func(t *testing.T) {
			opts := tc.opts
			opts.Shards = tc.shards[0]
			ref := resultBytes(t, tc.scenario, opts)
			for _, n := range tc.shards[1:] {
				opts.Shards = n
				got := resultBytes(t, tc.scenario, opts)
				if !bytes.Equal(ref, got) {
					t.Fatalf("%s: shards=%d result differs from shards=%d reference:\n--- shards=%d ---\n%s\n--- shards=%d ---\n%s",
						tc.scenario, n, tc.shards[0], tc.shards[0], ref, n, got)
				}
			}
		})
	}
}

// TestShardGomaxprocsInvariance pins GOMAXPROCS to 1 and re-checks a
// multi-shard run against the unrestricted reference: goroutine scheduling
// must not leak into the results.
func TestShardGomaxprocsInvariance(t *testing.T) {
	opts := Options{Quick: true, Shards: 4}
	ref := resultBytes(t, "fleet-stream", opts)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	got := resultBytes(t, "fleet-stream", opts)
	if !bytes.Equal(ref, got) {
		t.Fatalf("fleet-stream shards=4: GOMAXPROCS=1 result differs from GOMAXPROCS=%d", prev)
	}
}

// TestChaosGomaxprocsInvariance re-runs a chaos scenario — concurrent
// shard goroutines plus injected crashes — with GOMAXPROCS pinned to 1:
// the stress report, per-interval chaos series included, must be
// byte-identical to the unrestricted run.
func TestChaosGomaxprocsInvariance(t *testing.T) {
	opts := Options{Shards: 4}
	ref := resultBytes(t, "chaos-crash-recover", opts)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	got := resultBytes(t, "chaos-crash-recover", opts)
	if !bytes.Equal(ref, got) {
		t.Fatalf("chaos-crash-recover shards=4: GOMAXPROCS=1 result differs from GOMAXPROCS=%d", prev)
	}
}

// TestShardedMatchesLegacy documents where the windowed coordinator is
// bit-compatible with the legacy single-engine path: runs that drain
// completely end with the same statistics (the windowed runs additionally
// fire daemon ticks up to the final window boundary, which never touch
// stats for these workloads).
func TestShardedMatchesLegacy(t *testing.T) {
	for _, name := range []string{"fleet-stream"} {
		legacy := resultBytes(t, name, Options{Quick: true})
		windowed := resultBytes(t, name, Options{Quick: true, Shards: 1})
		if !bytes.Equal(legacy, windowed) {
			t.Fatalf("%s: windowed single-shard result differs from legacy path:\n--- legacy ---\n%s\n--- shards=1 ---\n%s",
				name, legacy, windowed)
		}
	}
}
