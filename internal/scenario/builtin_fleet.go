// builtin_fleet.go registers the fleet-stream scenario: a multi-node
// pairwise streaming workload sized for the sharded parallel engine (8
// nodes, 16 ranks, every pair crossing the fabric). It is the cell the
// parallel meta-benchmark and the shard-determinism tests drive — wide
// enough that shards=4/8 have real work per window, and built purely from
// message passing so it terminates deterministically.
package scenario

import (
	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/ethernet"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
)

// fleetLink widens the one-way link latency to 2µs — a store-and-forward
// switch hop at 10G rather than the two-node testbed's 500ns cable. For
// the sharded engine that latency doubles as the conservative lookahead,
// so fleet-scale scenarios get usefully wide synchronization windows.
func fleetLink() *ethernet.LinkConfig {
	l := ethernet.DefaultLinkConfig()
	l.PropDelay = 2 * sim.Microsecond
	return &l
}

// fleetWorkload pairs rank i with rank i+size/2 (block rank placement
// puts every pair on different nodes) and streams `rounds` round trips of
// the cell's message size. Rank 0 records the fleet-aggregate throughput.
func fleetWorkload(rounds int) Workload {
	return func(c *mpi.Comm, cr *CaseRun) {
		half := c.Size() / 2
		peer := (c.Rank() + half) % c.Size()
		bytes := cr.Size
		tx := c.Malloc(bytes)
		rx := c.Malloc(bytes)
		c.Barrier()
		start := c.Now()
		for r := 0; r < rounds; r++ {
			if c.Rank() < half {
				c.Send(tx, bytes, peer, 7)
				c.Recv(rx, bytes, peer, 7)
			} else {
				c.Recv(rx, bytes, peer, 7)
				c.Send(tx, bytes, peer, 7)
			}
		}
		c.Barrier()
		if c.Rank() == 0 {
			elapsed := c.Now() - start
			// Every pair moves rounds*bytes in each direction: size/2
			// pairs * 2 directions = size transfers of rounds*bytes.
			total := float64(rounds) * float64(bytes) * float64(c.Size())
			cr.Metric("agg_mbps", total/elapsed.Seconds()/(1<<20))
		}
	}
}

func init() {
	// fleet-stream: the parallel-engine workload. Run it with -shards N
	// to split the 8 nodes across N engine shards; the same seed must
	// produce identical statistics at every shard count.
	MustRegister(&Scenario{
		Name:        "fleet-stream",
		Description: "8-node 16-rank pairwise cross-node streaming: the sharded parallel-engine workload (drive with -shards)",
		Cluster: cluster.Config{
			Nodes:        8,
			RanksPerNode: 2,
			Link:         fleetLink(),
		},
		Cases: []Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
			{Label: "overlapped-cache", OMX: omx.DefaultConfig(core.Overlapped, true)},
		},
		Sizes:      []int{256 * 1024, 1 << 20},
		QuickSizes: []int{256 * 1024},
		Metric:     "agg_mbps",
		Workload:   fleetWorkload(12),
		Assertions: []Assertion{MetricPositive("agg_mbps"), Completed()},
	})
}
