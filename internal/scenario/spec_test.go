package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseErr parses src and demands an error mentioning every fragment,
// with the file:line prefix the decoder promises.
func parseErr(t *testing.T, src string, fragments ...string) {
	t.Helper()
	_, err := ParseSpec([]byte(src), "test.yaml")
	if err == nil {
		t.Fatalf("spec accepted, want error containing %q:\n%s", fragments, src)
	}
	if !strings.HasPrefix(err.Error(), "test.yaml:") {
		t.Fatalf("error lacks file:line context: %v", err)
	}
	for _, f := range fragments {
		if !strings.Contains(err.Error(), f) {
			t.Fatalf("error %q does not mention %q", err, f)
		}
	}
}

const minimalSpec = `name: t-spec
description: test
cases:
  - label: cache
    policy: on-demand
    cache: true
sizes: [64KiB]
metric: mbps
workload:
  kind: pingpong
assertions:
  - positive: mbps
  - completed: true
`

func TestParseSpecMinimal(t *testing.T) {
	sp, err := ParseSpec([]byte(minimalSpec), "test.yaml")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "t-spec" || len(s.Cases) != 1 || s.Cases[0].Label != "cache" {
		t.Fatalf("compiled scenario wrong: %+v", s)
	}
	if len(s.Sizes) != 1 || s.Sizes[0] != 64*1024 {
		t.Fatalf("sizes wrong: %v", s.Sizes)
	}
	if len(s.Assertions) != 2 {
		t.Fatalf("assertions wrong: %d", len(s.Assertions))
	}
}

func TestParseSpecStrictness(t *testing.T) {
	parseErr(t, "name: x\nbogus: 1\n", `unknown field "bogus"`, "top-level fields")
	parseErr(t, strings.Replace(minimalSpec, "policy: on-demand", "policy: magic", 1),
		`unknown policy "magic"`, "pin-each-comm")
	parseErr(t, strings.Replace(minimalSpec, "cache: true", "turbo: true", 1),
		`unknown field "turbo"`)
	parseErr(t, strings.Replace(minimalSpec, "- completed: true",
		"- label: cache\n    policy: odp", 1), "no type key")
	parseErr(t, strings.Replace(minimalSpec, "- completed: true",
		"- completed: true\n    positive: mbps", 1), "exactly one assertion")
	parseErr(t, strings.Replace(minimalSpec, "- completed: true",
		"- check: no-such-check", 1), `unknown check "no-such-check"`, "emergent-steals")
	parseErr(t, strings.Replace(minimalSpec, "- completed: true",
		"- at_least: mbps", 1), "needs a `value` field")
	parseErr(t, strings.Replace(minimalSpec, "- completed: true",
		"- slo: t0\n    p99_us: 10", 1), "SLO assertions need a kv workload")
}

func TestParseSpecDuplicateCaseLabel(t *testing.T) {
	src := `name: t-dupcase
cases:
  - label: cache
    policy: on-demand
  - label: cache
    policy: odp
sizes: [64KiB]
workload:
  kind: pingpong
`
	parseErr(t, src, "duplicate case label")
}

func TestParseSpecRequiresSizesForSweepWorkloads(t *testing.T) {
	src := `name: t-nosizes
cases:
  - label: cache
    policy: on-demand
workload:
  kind: pingpong
`
	parseErr(t, src, "add a `sizes` list")
}

func TestParseSpecClusterFleetExclusive(t *testing.T) {
	src := `name: t-both
cluster:
  nodes: 2
fleet:
  total_nodes: 8
  groups:
    - name: all
      weight: 1
workload:
  kind: pressure
  rounds: 1
  comm_bytes: 64KiB
  churn_bytes: 64KiB
`
	parseErr(t, src, "sets both `cluster`", "and `fleet`")
}

func TestParseSpecSLOTenantCrossReference(t *testing.T) {
	src := `name: t-slo
cluster:
  nodes: 4
cases:
  - label: cache
    policy: on-demand
    cache: true
workload:
  kind: kv
  servers: 2
  keys: 8
  value_bytes: 4KiB
  tenants:
    - name: t0
      ops: 10
assertions:
  - slo: nobody
    p99_us: 100
`
	parseErr(t, src, `slo "nobody"`, "tenants: t0")
}

// TestFleetResolve checks the weight allocation: fixed counts are taken
// first, the remainder splits by weight with largest-remainder rounding,
// and the group order decides ties — all deterministic.
func TestFleetResolve(t *testing.T) {
	f := &fleetSpec{
		total: 100,
		groups: []fleetGroup{
			{name: "compute", weight: 3},
			{name: "storage", weight: 1},
			{name: "infra", nodes: 4},
		},
	}
	groups, err := f.resolve()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	total := 0
	for _, g := range groups {
		got[g.Name] = g.Nodes
		total += g.Nodes
	}
	if total != 100 {
		t.Fatalf("resolved %d nodes, want 100: %v", total, got)
	}
	if got["infra"] != 4 || got["compute"] != 72 || got["storage"] != 24 {
		t.Fatalf("allocation wrong: %v", got)
	}

	// A group that resolves to zero nodes is an error, not a silent drop.
	zero := &fleetSpec{
		total: 2,
		groups: []fleetGroup{
			{name: "big", weight: 1000},
			{name: "tiny", weight: 1},
		},
	}
	if _, err := zero.resolve(); err == nil || !strings.Contains(err.Error(), "tiny") {
		t.Fatalf("zero-node group not rejected: %v", err)
	}

	// Explicit counts beyond the total are an error.
	over := &fleetSpec{total: 3, groups: []fleetGroup{{name: "a", nodes: 5}}}
	if _, err := over.resolve(); err == nil {
		t.Fatal("overcommitted fixed groups accepted")
	}
}

// TestStartupDelayDeterministic checks the startup schedule is a pure
// function of (spec, node, total, seed) and stays inside its spread.
func TestStartupDelayDeterministic(t *testing.T) {
	st := startupSpec{pattern: startWave, spread: 1000, waves: 4, jitter: 0.5}
	for node := 0; node < 16; node++ {
		a := startupDelay(st, node, 16, 42)
		b := startupDelay(st, node, 16, 42)
		if a != b {
			t.Fatalf("node %d: delay not deterministic (%v vs %v)", node, a, b)
		}
		if a < 0 {
			t.Fatalf("node %d: negative delay %v", node, a)
		}
	}
	if startupDelay(st, 0, 16, 42) == startupDelay(st, 0, 16, 43) {
		t.Fatal("jitter ignores the seed")
	}
	// Waves must actually stagger: the last node starts after the first.
	if startupDelay(startupSpec{pattern: startWave, spread: 1000, waves: 4}, 15, 16, 1) <=
		startupDelay(startupSpec{pattern: startWave, spread: 1000, waves: 4}, 0, 16, 1) {
		t.Fatal("wave pattern does not stagger")
	}
}

func TestLoadAndRegisterSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t-file-spec.yaml")
	src := strings.Replace(minimalSpec, "name: t-spec", "name: t-file-spec", 1)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadAndRegisterSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer unregister("t-file-spec")
	if s.Source != SourceFile {
		t.Fatalf("source = %q, want %q", s.Source, SourceFile)
	}
	if _, ok := Get("t-file-spec"); !ok {
		t.Fatal("spec file not registered")
	}
	// Shadowing a registered name is a hard error.
	if _, err := LoadAndRegisterSpecFile(path); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("shadowing registration not rejected: %v", err)
	}
}

func TestValidateSpecFileCollision(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "clash.yaml")
	src := strings.Replace(minimalSpec, "name: t-spec", "name: pingpong", 1)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateSpecFile(path); err == nil ||
		!strings.Contains(err.Error(), "collides") {
		t.Fatalf("registry collision not reported: %v", err)
	}
}
