// builtin_kvserve.go registers the kvserve-* scenario family: an
// RDMA-backed key-value serving tier where client ranks drive open-loop
// Zipfian get/put traffic against server ranks whose value heaps live
// under the registration cache and pinning policies. The report is tail
// latency — HDR-histogram percentiles per operation class and per tenant —
// instead of the mean-throughput tables of the paper's benchmarks: the
// modern serving question the ROADMAP's "production serving workload"
// item asks of the same pinning trade-offs.
package scenario

import (
	"fmt"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/kv"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/report"
	"omxsim/internal/sim"
)

// kvWorkload adapts kv.Run to the declarative runner: the CaseRun is the
// workload's stash-and-note sink, and the cell's seed drives every
// per-client random stream.
func kvWorkload(cfg kv.Config) Workload {
	return func(c *mpi.Comm, cr *CaseRun) {
		kv.Run(c, cr, cr.Seed, kvSized(cfg, cr.Size))
	}
}

// kvSized resolves a size-sweep cell: a config with ValueBytes 0 takes the
// cell's sweep size as the value size.
func kvSized(cfg kv.Config, size int) kv.Config {
	if cfg.ValueBytes == 0 {
		cfg.ValueBytes = size
	}
	return cfg
}

// kvQuantiles are the reported percentiles (metric suffix, q).
var kvQuantiles = []struct {
	suffix string
	q      float64
}{
	{"p50_us", 0.5},
	{"p99_us", 0.99},
	{"p999_us", 0.999},
}

// kvReport builds the scenario Report hook: it folds every rank's stashed
// Stats into "kv."-prefixed percentile metrics (per class and per tenant,
// exact merges in rank order, so shard-count invariant), plain count
// metrics for the results table, and one latency table across all cells.
func kvReport(cfg kv.Config, ranks int) func(run *Run) {
	return func(run *Run) {
		t := report.Table{
			Title:   "latency (simulated µs)",
			Columns: []string{"case", "class", "p50", "p99", "p999", "max", "n"},
		}
		for _, cr := range run.Cases {
			m := kv.Collect(cfg, ranks, func(r int) *kv.Stats {
				st, _ := cr.Stashed(kv.StashKey(r)).(*kv.Stats)
				return st
			})
			addRow := func(label string, h *report.Hist) {
				for _, kq := range kvQuantiles {
					cr.Metric("kv."+label+"."+kq.suffix, h.QuantileUS(kq.q))
				}
				cr.Metric("kv."+label+".max_us", h.MaxUS())
				t.Rows = append(t.Rows, []string{
					cr.id(), label,
					report.F(h.QuantileUS(0.5), 1),
					report.F(h.QuantileUS(0.99), 1),
					report.F(h.QuantileUS(0.999), 1),
					report.F(h.MaxUS(), 1),
					report.D(int64(h.Count())),
				})
			}
			addRow("get", &m.Get)
			addRow("put", &m.Put)
			if cfg.OutageEnd > 0 {
				addRow("outage.get", &m.OutageGet)
				addRow("outage.put", &m.OutagePut)
				cr.Metric("kv.failovers", float64(m.Failovers))
			}
			issued, ok, rejected, errs, badvals := 0, 0, 0, m.ServerErrs, 0
			for ti := range m.Tenants {
				tm := &m.Tenants[ti]
				var all report.Hist
				all.Merge(&tm.Get)
				all.Merge(&tm.Put)
				addRow(tm.Name, &all)
				cr.Metric("kv."+tm.Name+".issued", float64(tm.Issued))
				cr.Metric("kv."+tm.Name+".rejected", float64(tm.Rejected))
				issued += tm.Issued
				ok += tm.OK
				rejected += tm.Rejected
				errs += tm.Errors
				badvals += tm.BadVals
			}
			cr.Metric("ops_issued", float64(issued))
			cr.Metric("ops_ok", float64(ok))
			cr.Metric("ops_rejected", float64(rejected))
			cr.Metric("ops_err", float64(errs))
			cr.Metric("ops_badval", float64(badvals))
		}
		run.Result.AddTable(t)
	}
}

// KVSLO is one tenant's service-level objective in a kvserve scenario:
// upper bounds on the tenant's latency percentiles (µs of simulated time,
// classes merged; 0 = unchecked) plus admission-control expectations.
// Because the simulation is deterministic, these are exact regression
// gates, not statistical ones — a bound that holds, holds on every run.
type KVSLO struct {
	Tenant        string
	P50US         float64
	P99US         float64
	P999US        float64
	MaxRejectFrac float64 // rejected/issued must stay at or below (only checked when > 0)
	MinRejects    float64 // rejected must reach (abusive tenants must trip admission)
}

// KVSLOBlock renders per-tenant SLOs as one assertion per tenant, checked
// on every case cell. See docs/scenario-authoring.md for the recipe.
func KVSLOBlock(slos ...KVSLO) []Assertion {
	var out []Assertion
	for _, s := range slos {
		s := s
		name := fmt.Sprintf("SLO %s", s.Tenant)
		out = append(out, EachCase(name, func(cr *CaseRun) (bool, string) {
			for _, b := range []struct {
				suffix string
				bound  float64
			}{
				{"p50_us", s.P50US}, {"p99_us", s.P99US}, {"p999_us", s.P999US},
			} {
				if b.bound <= 0 {
					continue
				}
				key := "kv." + s.Tenant + "." + b.suffix
				v, ok := cr.Metrics[key]
				if !ok {
					return false, fmt.Sprintf("metric %q not recorded", key)
				}
				if v > b.bound {
					return false, fmt.Sprintf("%s = %.1fµs > %.1fµs", key, v, b.bound)
				}
			}
			issued := cr.Metrics["kv."+s.Tenant+".issued"]
			rejected := cr.Metrics["kv."+s.Tenant+".rejected"]
			if s.MaxRejectFrac > 0 && issued > 0 && rejected/issued > s.MaxRejectFrac {
				return false, fmt.Sprintf("reject fraction %.3f > %.3f (%g/%g)",
					rejected/issued, s.MaxRejectFrac, rejected, issued)
			}
			if s.MinRejects > 0 && rejected < s.MinRejects {
				return false, fmt.Sprintf("rejected = %g < %g: admission control never engaged", rejected, s.MinRejects)
			}
			return true, ""
		}))
	}
	return out
}

// kvTailDifferential asserts the family's headline claim: under memory
// pressure the no-pin ODP backend pays a tail-latency premium over a
// pinned backend, because reclaim steals its value-heap pages and every
// cold get eats device faults and swap-ins on the critical path. The
// check is vacuous under a -policy filter that drops either cell.
func kvTailDifferential(metric, pinnedPolicy, odpPolicy string, factor float64) Assertion {
	name := fmt.Sprintf("%s tail: %s >= %.2fx %s", metric, odpPolicy, factor, pinnedPolicy)
	return Assertion{Name: name, Check: func(run *Run) (bool, string) {
		var pinned, odp *CaseRun
		for _, cr := range run.Cases {
			switch cr.PolicyName {
			case pinnedPolicy:
				pinned = cr
			case odpPolicy:
				odp = cr
			}
		}
		if pinned == nil || odp == nil {
			return true, "" // policy filter dropped a side
		}
		p, o := pinned.Metrics[metric], odp.Metrics[metric]
		if p <= 0 {
			return false, fmt.Sprintf("%s: %s = %g", pinnedPolicy, metric, p)
		}
		if o < p*factor {
			return false, fmt.Sprintf("%s %.1fµs < %.2f x %s %.1fµs", odpPolicy, o, factor, pinnedPolicy, p)
		}
		return true, ""
	}}
}

// kvCleanRun asserts no operation was lost to anything but the workload's
// own admission control: protocol errors and payload corruption are zero
// and every accepted operation completed.
func kvCleanRun() Assertion {
	return EachCase("no protocol errors or corrupt values", func(cr *CaseRun) (bool, string) {
		if e := cr.Metrics["ops_err"]; e != 0 {
			return false, fmt.Sprintf("ops_err = %g", e)
		}
		if b := cr.Metrics["ops_badval"]; b != 0 {
			return false, fmt.Sprintf("ops_badval = %g", b)
		}
		want := cr.Metrics["ops_issued"] - cr.Metrics["ops_rejected"]
		if got := cr.Metrics["ops_ok"]; got != want {
			return false, fmt.Sprintf("ops_ok = %g, want issued-rejected = %g", got, want)
		}
		return true, ""
	})
}

// The kvserve-* scenarios register from their embedded specs
// (spec_builtin.go); the legacy constructors below stay, unregistered,
// as the reference side of the spec-equivalence tests.

// legacyKVServeMix: the family's baseline — 2 storage servers, 2 client
// endpoints, a 70/30 read/write mix at moderate open-loop load, no
// memory pressure. Every backend must serve the same schedule with
// zero rejections and tails inside the SLO; the cell exists to give
// the pressure scenarios an unloaded reference and the determinism
// gates a 4-node kv topology.
func legacyKVServeMix() *Scenario {
	mixCfg := kv.Config{
		Servers:    2,
		Keys:       64,
		ValueBytes: 64 * 1024,
		Theta:      0.9,
		Workers:    4,
		Tenants: []kv.Tenant{
			{Name: "t0", Ops: 150, Rate: 8000, GetFrac: 0.7, MaxInflight: 16},
		},
	}
	return &Scenario{
		Name:        "kvserve-mix",
		Description: "KV serving baseline: open-loop Zipfian get/put mix against 2 storage servers, HDR tail percentiles per backend, no memory pressure",
		Cluster: cluster.Config{
			Nodes: 4,
			Link:  fleetLink(),
		},
		Cases: []Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
			{Label: "overlapped-cache", OMX: omx.DefaultConfig(core.Overlapped, true)},
			{Label: "odp", OMX: omx.DefaultConfig(core.NoPinODP, true)},
		},
		Workload: kvWorkload(mixCfg),
		Report:   kvReport(mixCfg, 4),
		Assertions: append([]Assertion{
			Completed(),
			PinAccountingBalanced(),
			kvCleanRun(),
			MetricBelow("ops_rejected", 0.5),
			MetricAtLeast("ops_ok", 299),
		}, KVSLOBlock(
			KVSLO{Tenant: "t0", P50US: 400, P99US: 1500, P999US: 4000},
		)...),
	}
}

// legacyKVServePressure: the headline cell. Both servers share one node
// whose frame budget the value heaps plus a churn hog overcommit, so
// kswapd and direct reclaim run while the tier serves. The pinned
// backend holds its hot value slots against reclaim; ODP lets them
// go and pays device faults and swap-ins on the get path — visible
// as a p99 premium, not as a mean-throughput delta.
func legacyKVServePressure() *Scenario {
	pressureCfg := kv.Config{
		Servers:     2,
		Keys:        48,
		ValueBytes:  64 * 1024,
		Theta:       0.99,
		Workers:     4,
		ChurnBytes:  2 << 20,
		ChurnPeriod: 200 * sim.Microsecond,
		Tenants: []kv.Tenant{
			{Name: "t0", Ops: 140, Rate: 6000, GetFrac: 0.8, MaxInflight: 24},
		},
	}
	return &Scenario{
		Name:        "kvserve-pressure",
		Description: "KV serving under emergent memory pressure: reclaim steals value-heap pages, pinned backends hold their tails, ODP pays a p99 premium",
		Cluster: cluster.Config{
			Nodes:        2,
			RanksPerNode: 2,
			Mem:          omx.MemConfig{Frames: 1536},
			Link:         fleetLink(),
		},
		Cases: []Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
			{Label: "odp", OMX: omx.DefaultConfig(core.NoPinODP, true)},
		},
		Workload: kvWorkload(pressureCfg),
		Report:   kvReport(pressureCfg, 4),
		Assertions: append([]Assertion{
			Completed(),
			PinAccountingBalanced(),
			kvCleanRun(),
			MetricAtLeast("stats.pgsteal", 1),
			odpFaultVisible(),
			kvTailDifferential("kv.get.p99_us", "on-demand", "odp", 1.15),
		}, KVSLOBlock(
			KVSLO{Tenant: "t0", P99US: 20000, P999US: 25000},
		)...),
	}
}

// legacyKVServeMultitenant: three tenants with distinct traffic
// contracts share three server ranks on one budgeted node. The premium
// tenant buys a strict tail SLO, the standard tenant a looser one, and
// the batch tenant arrives far beyond its admission bound — its load is
// shed as typed ErrOverload rejections instead of destroying the
// others' tails.
func legacyKVServeMultitenant() *Scenario {
	mtCfg := kv.Config{
		Servers:     3,
		Keys:        36,
		ValueBytes:  64 * 1024,
		Theta:       0.99,
		Workers:     4,
		ChurnBytes:  1 << 20,
		ChurnPeriod: 250 * sim.Microsecond,
		Tenants: []kv.Tenant{
			// premium + standard together stay well inside the serving
			// node's NIC capacity; batch alone demands more than the whole
			// node can carry and a 3-op admission bound, so its overload is
			// shed at the door instead of queueing into the others' tails.
			{Name: "premium", Ops: 120, Rate: 3000, GetFrac: 0.8, MaxInflight: 32},
			{Name: "standard", Ops: 120, Rate: 4000, GetFrac: 0.5, MaxInflight: 32},
			{Name: "batch", Ops: 200, Rate: 20000, GetFrac: 0.5, MaxInflight: 3},
		},
	}
	return &Scenario{
		Name:        "kvserve-multitenant",
		Description: "3 tenants, 3 budgeted servers: per-tenant tail SLOs, admission control sheds the abusive tenant's overload as typed rejections",
		Cluster: cluster.Config{
			Nodes:        2,
			RanksPerNode: 3,
			// The three tenants' heaps are ~1730 frames; the budget fits
			// them plus part of the churn, so reclaim runs continuously
			// but a pinned working set never starves the allocator.
			Mem:  omx.MemConfig{Frames: 2304},
			Link: fleetLink(),
		},
		Cases: []Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
			{Label: "odp", OMX: omx.DefaultConfig(core.NoPinODP, true)},
		},
		Workload: kvWorkload(mtCfg),
		Report:   kvReport(mtCfg, 6),
		Assertions: append([]Assertion{
			Completed(),
			PinAccountingBalanced(),
			kvCleanRun(),
			MetricAtLeast("stats.pgsteal", 1),
			MetricAtLeast("ops_rejected", 1),
			kvTailDifferential("kv.get.p999_us", "on-demand", "odp", 1.1),
		}, KVSLOBlock(
			KVSLO{Tenant: "premium", P50US: 1500, P99US: 8000, P999US: 12000},
			KVSLO{Tenant: "standard", P99US: 10000, P999US: 15000},
			KVSLO{Tenant: "batch", MinRejects: 1, MaxRejectFrac: 0.95},
		)...),
	}
}
