package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// loadFleet1k loads the shipped 1000-node example spec without touching
// the registry, so the test can run it under arbitrary options.
func loadFleet1k(t *testing.T) *Scenario {
	t.Helper()
	path := filepath.Join("..", "..", "examples", "fleet-1k.yaml")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("examples/fleet-1k.yaml not present: %v", err)
	}
	s, err := LoadSpecFile(path)
	if err != nil {
		t.Fatalf("load fleet-1k: %v", err)
	}
	return s
}

// TestFleet1kShardInvariance runs the 1024-node fleet spec at 1 and 4
// shards and demands byte-identical report JSON — the determinism gate
// at fleet scale.
func TestFleet1kShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale run skipped in -short mode")
	}
	var want []byte
	for _, shards := range []int{1, 4} {
		s := loadFleet1k(t)
		got := scenarioBytes(t, s, Options{Quick: true, Shards: shards})
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("fleet-1k report differs between 1 and %d shards", shards)
		}
	}
}

// TestFleet1kShape spot-checks the compiled fleet: the weighted groups
// must resolve to 1024 nodes split 3:1 between compute and storage.
func TestFleet1kShape(t *testing.T) {
	s := loadFleet1k(t)
	total := 0
	byName := map[string]int{}
	for _, g := range s.Cluster.Groups {
		total += g.Nodes
		byName[g.Name] = g.Nodes
	}
	if total < 1000 {
		t.Fatalf("fleet resolves to %d nodes, want >= 1000", total)
	}
	if byName["compute"] != 768 || byName["storage"] != 256 {
		t.Fatalf("group split wrong: %v", byName)
	}
}
