package scenario

import (
	"bytes"
	"regexp"
	"runtime"
	"testing"
)

// TestKVServeShardInvariance is the kvserve family's determinism gate:
// scenario JSON — every HDR percentile included — must be byte-identical
// whatever the shard layout. The histograms' fixed bucket layout makes
// per-rank merges exact, so any divergence here means real nondeterminism
// in the serving path, not rounding.
func TestKVServeShardInvariance(t *testing.T) {
	cases := []struct {
		scenario string
		shards   []int
	}{
		// 4 nodes: the full 1/2/4 sweep the acceptance criteria name.
		{scenario: "kvserve-mix", shards: []int{1, 2, 4}},
		// 2-node scenarios clamp at 2 shards; both run emergent reclaim
		// (kswapd, direct stalls) concurrently with the serving loop.
		{scenario: "kvserve-pressure", shards: []int{1, 2}},
		{scenario: "kvserve-multitenant", shards: []int{1, 2}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scenario, func(t *testing.T) {
			opts := Options{Shards: tc.shards[0]}
			ref := resultBytes(t, tc.scenario, opts)
			if !bytes.Contains(ref, []byte("p999_us")) {
				t.Fatalf("%s: report carries no p999 percentile metrics", tc.scenario)
			}
			for _, n := range tc.shards[1:] {
				opts.Shards = n
				got := resultBytes(t, tc.scenario, opts)
				if !bytes.Equal(ref, got) {
					t.Fatalf("%s: shards=%d result differs from shards=%d reference:\n--- shards=%d ---\n%s\n--- shards=%d ---\n%s",
						tc.scenario, n, tc.shards[0], tc.shards[0], ref, n, got)
				}
			}
		})
	}
}

// TestKVServeLegacyMatchesSharded pins the CLI default (legacy
// single-engine path, shards unset) against the windowed coordinator: the
// percentile output a user sees from `omxsim run` must equal the sharded
// runs the gates compare.
func TestKVServeLegacyMatchesSharded(t *testing.T) {
	legacy := resultBytes(t, "kvserve-mix", Options{})
	sharded := resultBytes(t, "kvserve-mix", Options{Shards: 2})
	if !bytes.Equal(legacy, sharded) {
		t.Fatalf("kvserve-mix: legacy result differs from shards=2:\n--- legacy ---\n%s\n--- shards=2 ---\n%s",
			legacy, sharded)
	}
}

// TestKVServeGomaxprocsInvariance re-runs a sharded kvserve scenario with
// GOMAXPROCS pinned to 1: goroutine scheduling must not leak into any
// latency bucket.
func TestKVServeGomaxprocsInvariance(t *testing.T) {
	opts := Options{Shards: 2}
	ref := resultBytes(t, "kvserve-multitenant", opts)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	got := resultBytes(t, "kvserve-multitenant", opts)
	if !bytes.Equal(ref, got) {
		t.Fatalf("kvserve-multitenant shards=2: GOMAXPROCS=1 result differs from GOMAXPROCS=%d", prev)
	}
}

// TestKVServeSeedSensitivity guards against the opposite failure: a
// report that is identical across shard counts because it never varies at
// all. A different seed must produce a different schedule.
func TestKVServeSeedSensitivity(t *testing.T) {
	a := resultBytes(t, "kvserve-mix", Options{Shards: 1})
	b := resultBytes(t, "kvserve-mix", Options{Shards: 1, Seed: 99})
	// The seed field differs trivially; compare the bodies without it.
	seedLine := regexp.MustCompile(`"seed": \d+`)
	if seedLine.ReplaceAllString(string(a), "") == seedLine.ReplaceAllString(string(b), "") {
		t.Fatal("kvserve-mix: seeds 1 and 99 produced identical reports")
	}
}
