package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestKVServeReplicatedShardInvariance is the replicated family's
// determinism gate: the mid-run server crash, the typed failovers, and
// every outage-window percentile must be byte-identical whatever the
// shard layout.
func TestKVServeReplicatedShardInvariance(t *testing.T) {
	opts := Options{Shards: 1}
	ref := resultBytes(t, "kvserve-replicated", opts)
	for _, probe := range []string{"kv.failovers", "outage.get"} {
		if !bytes.Contains(ref, []byte(probe)) {
			t.Fatalf("kvserve-replicated report carries no %q", probe)
		}
	}
	for _, n := range []int{2, 4} {
		opts.Shards = n
		got := resultBytes(t, "kvserve-replicated", opts)
		if !bytes.Equal(ref, got) {
			t.Fatalf("kvserve-replicated: shards=%d result differs from shards=1:\n--- shards=1 ---\n%s\n--- shards=%d ---\n%s",
				n, ref, n, got)
		}
	}
}

// TestKVServeReplicatedGomaxprocsInvariance re-runs the replicated
// scenario with GOMAXPROCS pinned to 1: goroutine scheduling must not
// leak into the failover path or any outage bucket.
func TestKVServeReplicatedGomaxprocsInvariance(t *testing.T) {
	opts := Options{Shards: 2}
	ref := resultBytes(t, "kvserve-replicated", opts)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	got := resultBytes(t, "kvserve-replicated", opts)
	if !bytes.Equal(ref, got) {
		t.Fatalf("kvserve-replicated shards=2: GOMAXPROCS=1 result differs from GOMAXPROCS=%d", prev)
	}
}

// loadFleetKV loads the shipped fleet-scale replicated serving spec
// without touching the registry.
func loadFleetKV(t *testing.T) *Scenario {
	t.Helper()
	path := filepath.Join("..", "..", "examples", "fleet-kv.yaml")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("examples/fleet-kv.yaml not present: %v", err)
	}
	s, err := LoadSpecFile(path)
	if err != nil {
		t.Fatalf("load fleet-kv: %v", err)
	}
	return s
}

// TestFleetKVShardInvariance runs the 272-node replicated serving spec at
// 1 and 4 shards and demands byte-identical report JSON.
func TestFleetKVShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale run skipped in -short mode")
	}
	var want []byte
	for _, shards := range []int{1, 4} {
		s := loadFleetKV(t)
		got := scenarioBytes(t, s, Options{Shards: shards})
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("fleet-kv report differs between 1 and %d shards", shards)
		}
	}
}

// TestFleetKVGomaxprocsInvariance: the sharded fleet run must not let
// host-side parallelism leak into the report.
func TestFleetKVGomaxprocsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale run skipped in -short mode")
	}
	s := loadFleetKV(t)
	ref := scenarioBytes(t, s, Options{Shards: 4})
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	s2 := loadFleetKV(t)
	got := scenarioBytes(t, s2, Options{Shards: 4})
	if !bytes.Equal(ref, got) {
		t.Fatalf("fleet-kv shards=4: GOMAXPROCS=1 result differs from GOMAXPROCS=%d", prev)
	}
}

// TestFleetKVShape spot-checks the compiled fleet: 16 storage nodes with
// two endpoint lanes on 4-queue NICs, 256 client nodes.
func TestFleetKVShape(t *testing.T) {
	s := loadFleetKV(t)
	byName := map[string]int{}
	total := 0
	for _, g := range s.Cluster.Groups {
		total += g.Nodes
		byName[g.Name] = g.Nodes
		if g.Name == "storage" {
			if g.EndpointsPerNode != 2 || g.NICQueues != 4 {
				t.Fatalf("storage group: endpoints=%d queues=%d, want 2/4", g.EndpointsPerNode, g.NICQueues)
			}
		}
	}
	if total < 256 {
		t.Fatalf("fleet resolves to %d nodes, want >= 256", total)
	}
	if byName["storage"] != 16 || byName["clients"] != 256 {
		t.Fatalf("group split wrong: %v", byName)
	}
}
