// spec_workload.go — the workload-kind registry of the spec format.
// Every kind lowers onto the exact workload constructor the Go builtins
// use (pingPongWorkload, pressureWorkload, chaosWorkload, fleetWorkload,
// kvWorkload), so a spec cell and its legacy Go twin run the same code.
package scenario

import (
	"omxsim/internal/kv"
	"omxsim/internal/mpi"
	"omxsim/internal/sim"
	"omxsim/internal/yamlite"
)

// workloadSpec is the decoded workload: section.
type workloadSpec struct {
	kind string
	line int
	// workload is the compiled per-rank body.
	workload Workload
	// quickWorkload, when non-nil, replaces workload under -quick (a
	// spec set quick_* overrides).
	quickWorkload Workload
	// kvCfg is set for the kv kind: the compiler derives the Report hook
	// (which needs the cluster's total rank count) from it, and the SLO
	// cross-reference check reads its tenant list.
	kvCfg *kv.Config
	// needsSizes marks kinds that read the message size from the sweep.
	needsSizes bool
}

// decodeWorkload parses the workload: section.
func (d *dec) decodeWorkload(n *yamlite.Node, sp *Spec) error {
	if err := d.wantMap(n, "workload"); err != nil {
		return err
	}
	kindNode, ok := n.Get("kind")
	if !ok {
		return d.errf(n.Line, "workload is missing the required `kind` field")
	}
	kind, err := d.str(kindNode, "workload.kind")
	if err != nil {
		return err
	}
	w := &workloadSpec{kind: kind, line: n.Line}
	switch kind {
	case "pingpong":
		err = d.decodePingPong(n, w)
	case "pairwise-stream":
		err = d.decodePairwiseStream(n, w)
	case "pressure":
		err = d.decodePressure(n, w)
	case "chaos-pingpong":
		err = d.decodeChaosPingPong(n, w)
	case "kv":
		err = d.decodeKV(n, w)
	default:
		return d.errf(kindNode.Line, "workload.kind: unknown kind %q (kinds: pingpong, pairwise-stream, pressure, chaos-pingpong, kv)", kind)
	}
	if err != nil {
		return err
	}
	sp.workload = w
	return nil
}

// decodePingPong: IMB PingPong at the sweep size (no parameters).
func (d *dec) decodePingPong(n *yamlite.Node, w *workloadSpec) error {
	for _, p := range n.Pairs {
		if p.Key != "kind" {
			return d.errf(p.Line, "workload pingpong: unknown field %q (pingpong takes no parameters; the message size comes from `sizes`)", p.Key)
		}
	}
	w.workload = pingPongWorkload
	w.needsSizes = true
	return nil
}

// decodePairwiseStream: the fleet streaming workload.
func (d *dec) decodePairwiseStream(n *yamlite.Node, w *workloadSpec) error {
	rounds, quickRounds := 0, 0
	for _, p := range n.Pairs {
		var err error
		switch p.Key {
		case "kind":
		case "rounds":
			rounds, err = d.intVal(p.Val, "workload.rounds")
		case "quick_rounds":
			quickRounds, err = d.intVal(p.Val, "workload.quick_rounds")
		default:
			return d.errf(p.Line, "workload pairwise-stream: unknown field %q (fields: rounds, quick_rounds)", p.Key)
		}
		if err != nil {
			return err
		}
	}
	if rounds <= 0 {
		return d.errf(n.Line, "workload pairwise-stream: `rounds` must be > 0")
	}
	w.workload = fleetWorkload(rounds)
	if quickRounds > 0 {
		w.quickWorkload = fleetWorkload(quickRounds)
	}
	w.needsSizes = true
	return nil
}

// decodePressure: the allocator-churn workload of the pressure family.
func (d *dec) decodePressure(n *yamlite.Node, w *workloadSpec) error {
	var (
		rounds, commBytes, churnBytes int
		churnCompute                  sim.Duration
	)
	for _, p := range n.Pairs {
		var err error
		switch p.Key {
		case "kind":
		case "rounds":
			rounds, err = d.intVal(p.Val, "workload.rounds")
		case "comm_bytes":
			commBytes, err = d.bytesVal(p.Val, "workload.comm_bytes")
		case "churn_bytes":
			churnBytes, err = d.bytesVal(p.Val, "workload.churn_bytes")
		case "churn_compute_us":
			churnCompute, err = d.durUS(p.Val, "workload.churn_compute_us")
		default:
			return d.errf(p.Line, "workload pressure: unknown field %q (fields: rounds, comm_bytes, churn_bytes, churn_compute_us)", p.Key)
		}
		if err != nil {
			return err
		}
	}
	if rounds <= 0 || commBytes <= 0 || churnBytes <= 0 {
		return d.errf(n.Line, "workload pressure: `rounds`, `comm_bytes`, and `churn_bytes` must all be > 0")
	}
	w.workload = pressureWorkload(rounds, commBytes, churnBytes, churnCompute)
	return nil
}

// decodeChaosPingPong: the error-tolerant ping-pong of the chaos family.
func (d *dec) decodeChaosPingPong(n *yamlite.Node, w *workloadSpec) error {
	var (
		rounds, quickRounds, bytes int
		recvTimeout                sim.Duration
	)
	for _, p := range n.Pairs {
		var err error
		switch p.Key {
		case "kind":
		case "rounds":
			rounds, err = d.intVal(p.Val, "workload.rounds")
		case "quick_rounds":
			quickRounds, err = d.intVal(p.Val, "workload.quick_rounds")
		case "bytes":
			bytes, err = d.bytesVal(p.Val, "workload.bytes")
		case "recv_timeout_us":
			recvTimeout, err = d.durUS(p.Val, "workload.recv_timeout_us")
		default:
			return d.errf(p.Line, "workload chaos-pingpong: unknown field %q (fields: rounds, quick_rounds, bytes, recv_timeout_us)", p.Key)
		}
		if err != nil {
			return err
		}
	}
	if rounds <= 0 || bytes <= 0 || recvTimeout <= 0 {
		return d.errf(n.Line, "workload chaos-pingpong: `rounds`, `bytes`, and `recv_timeout_us` must all be > 0")
	}
	w.workload = chaosWorkload(rounds, bytes, recvTimeout)
	if quickRounds > 0 {
		w.quickWorkload = chaosWorkload(quickRounds, bytes, recvTimeout)
	}
	return nil
}

// decodeKV: the kvserve workload (open-loop tenant traffic against
// storage-server ranks). The Report hook is derived at compile time,
// when the cluster's rank count is known.
func (d *dec) decodeKV(n *yamlite.Node, w *workloadSpec) error {
	cfg := kv.Config{}
	for _, p := range n.Pairs {
		var err error
		switch p.Key {
		case "kind":
		case "servers":
			cfg.Servers, err = d.intVal(p.Val, "workload.servers")
		case "keys":
			cfg.Keys, err = d.intVal(p.Val, "workload.keys")
		case "value_bytes":
			cfg.ValueBytes, err = d.bytesVal(p.Val, "workload.value_bytes")
		case "theta":
			cfg.Theta, err = d.floatVal(p.Val, "workload.theta")
		case "workers":
			cfg.Workers, err = d.intVal(p.Val, "workload.workers")
		case "churn_bytes":
			cfg.ChurnBytes, err = d.bytesVal(p.Val, "workload.churn_bytes")
		case "churn_period_us":
			cfg.ChurnPeriod, err = d.durUS(p.Val, "workload.churn_period_us")
		case "replication":
			cfg.Replication, err = d.intVal(p.Val, "workload.replication")
		case "failover_timeout_us":
			cfg.FailoverTimeout, err = d.durUS(p.Val, "workload.failover_timeout_us")
		case "outage_start_us":
			cfg.OutageStart, err = d.durUS(p.Val, "workload.outage_start_us")
		case "outage_end_us":
			cfg.OutageEnd, err = d.durUS(p.Val, "workload.outage_end_us")
		case "tenants":
			err = d.decodeTenants(p.Val, &cfg)
		default:
			return d.errf(p.Line, "workload kv: unknown field %q (fields: servers, keys, value_bytes, theta, workers, churn_bytes, churn_period_us, replication, failover_timeout_us, outage_start_us, outage_end_us, tenants)", p.Key)
		}
		if err != nil {
			return err
		}
	}
	if cfg.Servers <= 0 || cfg.Keys <= 0 {
		return d.errf(n.Line, "workload kv: `servers` and `keys` must be > 0")
	}
	if len(cfg.Tenants) == 0 {
		return d.errf(n.Line, "workload kv: at least one tenant is required")
	}
	if cfg.Replication > cfg.Servers {
		return d.errf(n.Line, "workload kv: `replication` %d exceeds `servers` %d", cfg.Replication, cfg.Servers)
	}
	w.kvCfg = &cfg
	// value_bytes omitted → the cell's sweep size is the value size.
	w.needsSizes = cfg.ValueBytes == 0
	w.workload = func(c *mpi.Comm, cr *CaseRun) {
		kv.Run(c, cr, cr.Seed, kvSized(cfg, cr.Size))
	}
	return nil
}

func (d *dec) decodeTenants(n *yamlite.Node, cfg *kv.Config) error {
	if err := d.wantSeq(n, "workload.tenants"); err != nil {
		return err
	}
	for _, it := range n.Items {
		if err := d.wantMap(it, "tenant"); err != nil {
			return err
		}
		t := kv.Tenant{}
		for _, p := range it.Pairs {
			var err error
			switch p.Key {
			case "name":
				t.Name, err = d.str(p.Val, "tenant.name")
			case "ops":
				t.Ops, err = d.intVal(p.Val, "tenant.ops")
			case "rate":
				t.Rate, err = d.floatVal(p.Val, "tenant.rate")
			case "get_frac":
				t.GetFrac, err = d.floatVal(p.Val, "tenant.get_frac")
			case "max_inflight":
				t.MaxInflight, err = d.intVal(p.Val, "tenant.max_inflight")
			default:
				return d.errf(p.Line, "tenant: unknown field %q (fields: name, ops, rate, get_frac, max_inflight)", p.Key)
			}
			if err != nil {
				return err
			}
		}
		if t.Name == "" {
			return d.errf(it.Line, "tenant is missing the required `name` field")
		}
		cfg.Tenants = append(cfg.Tenants, t)
	}
	return nil
}
