// builtin_examples.go registers the walkthrough scenarios the examples/
// entry points render — lifecycle demonstrations rather than paper
// figures, plus the declarative fault-injection showcase.
package scenario

import (
	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
)

func init() {
	// quickstart: one large message, three times, under the decoupled
	// pinning cache — one declaration, one pin, then cache hits.
	MustRegister(&Scenario{
		Name:        "quickstart",
		Description: "Three 4 MiB sends through the decoupled pinning cache: declare once, pin once, hit twice",
		Workload: func(c *mpi.Comm, cr *CaseRun) {
			const n = 4 << 20
			buf := c.Malloc(n)
			cr.RegisterBuffer(c.Rank(), "payload", buf, n)
			switch c.Rank() {
			case 0:
				start := c.Now()
				for i := 0; i < 3; i++ {
					c.Send(buf, n, 1, 42)
				}
				cr.Metric("send_ms", (c.Now()-start).Seconds()*1e3)
			case 1:
				for i := 0; i < 3; i++ {
					c.Recv(buf, n, 0, 42)
				}
			}
		},
		Assertions: []Assertion{
			Completed(),
			MetricAtLeast("stats.cache_hits", 4),
			MetricBelow("stats.pin_ops", 5),
			MetricBelow("stats.declares", 3),
		},
	})

	// pincache: the full Figure 3 lifecycle — communicate, hit, then both
	// invalidation classes: a mapping-preserving mprotect (driver unpins,
	// the cached declaration survives, the next use hits and repins
	// transparently — the decoupling) and a free (the unmap notifier
	// drops the cached declaration, so the realloc'd buffer gets a fresh
	// one instead of a stale hit).
	MustRegister(&Scenario{
		Name:        "pincache",
		Description: "Figure 3 lifecycle: pin, cache hit, mprotect unpins and the next use repins; free drops the cached declaration so realloc re-declares cleanly",
		Workload: func(c *mpi.Comm, cr *CaseRun) {
			const n = 2 << 20
			if c.Rank() == 1 {
				for i := 0; i < 4; i++ {
					buf := c.Malloc(n)
					c.Recv(buf, n, 0, 1)
					c.Free(buf)
				}
				return
			}
			buf := c.Malloc(n)
			c.Send(buf, n, 1, 1)
			c.Send(buf, n, 1, 1) // cache hit, region already pinned
			// The mprotect fault lands in this idle window: the MMU
			// notifier makes the driver unpin, but the mapping — and the
			// cached declaration over it — stays intact.
			cr.RegisterBuffer(0, "payload", buf, n)
			c.Compute(2 * sim.Millisecond)
			c.Send(buf, n, 1, 1) // cache hit again; the acquire repins
			// Free kills the mapping: the unmap notifier drops the cached
			// declaration, so the re-malloc'd buffer is declared afresh —
			// never served from the dead entry.
			c.Free(buf)
			c.Compute(1000)
			buf2 := c.Malloc(n)
			if buf2 != buf {
				cr.Note("allocator did not reuse the freed address (unexpected)")
			}
			c.Send(buf2, n, 1, 1)
		},
		Faults: []Fault{
			{At: 100 * sim.Microsecond, Kind: FaultMProtect, Rank: 0, Buffer: "payload"},
		},
		Assertions: []Assertion{
			Completed(),
			MetricAtLeast("stats.invalidate_hits", 2), // mprotect + unmap
			MetricAtLeast("stats.repins", 1),
			MetricAtLeast("stats.cache_hits", 2),
			MetricAtLeast("stats.cache_invalidations", 1),
			MetricBelow("stats.pin_failures", 1),
		},
	})

	// rendezvous: one 8 MiB rendezvous transfer under synchronous vs
	// overlapped pinning — Figure 2 vs Figure 5.
	MustRegister(&Scenario{
		Name:        "rendezvous",
		Description: "One 8 MiB rendezvous pull: synchronous pinning (Figure 2) vs overlapped pinning (Figure 5)",
		Cases: []Case{
			{Label: "pin-each-comm", OMX: omx.DefaultConfig(core.PinEachComm, false)},
			{Label: "overlapped", OMX: omx.DefaultConfig(core.Overlapped, false)},
		},
		Metric: "mbps",
		Workload: func(c *mpi.Comm, cr *CaseRun) {
			const n = 8 << 20
			buf := c.Malloc(n)
			if c.Rank() == 0 {
				start := c.Now()
				c.Send(buf, n, 1, 7)
				elapsed := c.Now() - start
				cr.Metric("mbps", float64(n)/elapsed.Seconds()/(1<<20))
				cr.Metric("elapsed_ms", elapsed.Seconds()*1e3)
			} else {
				c.Recv(buf, n, 0, 7)
			}
		},
		Assertions: []Assertion{Completed(), MetricPositive("mbps")},
	})

	// adaptive: the paper's §5 proposal — blocking sends keep the overlap,
	// overlap-aware (non-blocking) apps pin synchronously and stay out of
	// the way.
	adaptiveCase := func(label string, adaptive bool, app string) Case {
		cfg := omx.DefaultConfig(core.Overlapped, false)
		cfg.AdaptiveOverlap = adaptive
		return Case{Label: label, OMX: cfg, Params: map[string]string{"app": app}}
	}
	MustRegister(&Scenario{
		Name:        "adaptive",
		Description: "Paper §5: per-request adaptive overlap for blocking vs overlap-aware application patterns",
		Cases: []Case{
			adaptiveCase("blocking/plain", false, "blocking"),
			adaptiveCase("blocking/adaptive", true, "blocking"),
			adaptiveCase("overlap-aware/plain", false, "overlap-aware"),
			adaptiveCase("overlap-aware/adaptive", true, "overlap-aware"),
		},
		Metric: "elapsed_ms",
		Workload: func(c *mpi.Comm, cr *CaseRun) {
			const n = 8 << 20
			const iters = 6
			buf := c.Malloc(n)
			c.Barrier()
			t0 := c.Now()
			for i := 0; i < iters; i++ {
				if c.Rank() == 0 {
					if cr.Param("app") == "blocking" {
						c.Send(buf, n, 1, 1)
					} else {
						req := c.Isend(buf, n, 1, 1)
						c.Compute(2 * sim.Millisecond)
						c.Wait(req)
					}
				} else {
					c.Recv(buf, n, 0, 1)
				}
			}
			c.Barrier()
			if c.Rank() == 0 {
				cr.Metric("elapsed_ms", (c.Now()-t0).Seconds()*1e3)
			}
		},
		Assertions: []Assertion{Completed(), MetricPositive("elapsed_ms")},
	})

	// mixed-policy: per-rank heterogeneous policies through the cluster's
	// EndpointConfig hook — the sender overlaps, the receiver pins per
	// communication.
	MustRegister(&Scenario{
		Name:        "mixed-policy",
		Description: "Heterogeneous matrix: overlapped sender talking to a pin-each-comm receiver, vs homogeneous baselines",
		Cases: []Case{
			{Label: "overlapped-both", OMX: omx.DefaultConfig(core.Overlapped, true)},
			{
				Label: "overlapped-vs-regular",
				OMX:   omx.DefaultConfig(core.Overlapped, true),
				Tweak: func(cfg *cluster.Config) {
					cfg.EndpointConfig = func(node, rank int, base omx.Config) omx.Config {
						if rank%2 == 1 {
							return omx.DefaultConfig(core.PinEachComm, false)
						}
						return base
					}
				},
			},
			{Label: "regular-both", OMX: omx.DefaultConfig(core.PinEachComm, false)},
		},
		Sizes:      []int{1 << 20, 4 << 20},
		QuickSizes: []int{4 << 20},
		Metric:     "mbps",
		Workload:   pingPongWorkload,
		Assertions: []Assertion{Completed(), MetricPositive("mbps")},
	})

	// faults: the declarative fault-injection showcase — an interrupt
	// flood window, a mid-run free of a pinned buffer (MMU notifier), a
	// fork, and swap pressure, while the workload keeps communicating.
	MustRegister(&Scenario{
		Name:        "faults",
		Description: "Fault injection mid-communication: flood window, free of a pinned buffer, fork, swap pressure",
		Cases: []Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
			{Label: "overlapped-cache", OMX: omx.DefaultConfig(core.Overlapped, true)},
		},
		Faults: []Fault{
			{At: 1 * sim.Millisecond, Kind: FaultFlood, Util: 0.3, For: 2 * sim.Millisecond},
			{At: 5 * sim.Millisecond, Kind: FaultFree, Rank: 0, Buffer: "payload"},
			{At: 6 * sim.Millisecond, Kind: FaultFork, Rank: 1},
			{At: 7 * sim.Millisecond, Kind: FaultSwapOut, Rank: 1, Buffer: "scratch"},
		},
		Workload: func(c *mpi.Comm, cr *CaseRun) {
			const n = 2 << 20
			if c.Rank() == 1 {
				scratch := c.Malloc(256 * 1024)
				c.WriteBytes(scratch, make([]byte, 256*1024))
				cr.RegisterBuffer(1, "scratch", scratch, 256*1024)
				recv := c.Malloc(n)
				c.Recv(recv, n, 0, 3)
				c.Recv(recv, n, 0, 3)
				return
			}
			buf := c.Malloc(n)
			cr.RegisterBuffer(0, "payload", buf, n)
			c.Send(buf, n, 1, 3)
			// Idle window: the free/fork/swap faults land while the region
			// sits pinned in the cache.
			c.Compute(8 * sim.Millisecond)
			// The mapping died under us; the unmap notifier dropped the
			// cached declaration, so realloc (the allocator reuses the
			// address) gets a fresh declaration on the next send.
			buf2 := c.Malloc(n)
			if buf2 != buf {
				cr.Note("allocator did not reuse the freed address")
			}
			c.Send(buf2, n, 1, 3)
			cr.Metric("sends", 2)
		},
		Assertions: []Assertion{
			Completed(),
			MetricAtLeast("stats.invalidate_hits", 1),
			MetricAtLeast("sends", 2),
			MetricBelow("stats.pin_failures", 1),
		},
	})
}
