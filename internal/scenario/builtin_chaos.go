// builtin_chaos.go registers the chaos-* scenario family: workloads that
// keep communicating while the chaos engine injects node crashes, link
// degradation windows, partitions, and memory-budget shrinks from seeded
// arrival distributions. The scenarios assert the robustness contract:
// every operation hit by a fault ends in a typed abort or a completed
// recovery (never a hang), pins released on crash stay released, and the
// pinned and ODP backends degrade differently under budget pressure.
package scenario

import (
	"omxsim/internal/chaos"
	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
)

// chaosOMX shortens the protocol's failure-detection clocks so abort
// tails stay small against the chaos windows: control retransmits at
// retrans, peers are declared dead after dead of silence (with
// exponential backoff in between).
func chaosOMX(policy core.PinPolicy, cache bool, retrans, dead sim.Duration) omx.Config {
	cfg := omx.DefaultConfig(policy, cache)
	cfg.RetransmitTimeout = retrans
	cfg.PeerDeadTimeout = dead
	return cfg
}

// chaosWorkload pairs rank i with rank i+size/2 and ping-pongs `bytes`
// for `rounds`, under MPI_ERRORS_RETURN semantics: sends surface typed
// aborts (peer dead, pin failure) instead of panicking, and receives are
// bounded by recvTimeout so a message that never comes is an error, not
// a hang. Fixed tags let the pair resynchronize after a fault desyncs
// their rounds (a late message is consumed by the next receive). Every
// rank accumulates ops_ok / ops_err, and ops_recovered counts an op
// succeeding again after one failed — the workload-level definition of
// "recovered".
func chaosWorkload(rounds, bytes int, recvTimeout sim.Duration) Workload {
	return func(c *mpi.Comm, cr *CaseRun) {
		half := c.Size() / 2
		lower := c.Rank() < half
		peer := c.Rank() + half
		if !lower {
			peer = c.Rank() - half
		}
		tx := c.Malloc(bytes)
		rx := c.Malloc(bytes)
		prevErr := false
		for r := 0; r < rounds; r++ {
			var err error
			if lower {
				err = c.SendE(tx, bytes, peer, 7)
				if err == nil {
					_, err = c.RecvTimeout(rx, bytes, peer, 7, recvTimeout)
				}
			} else {
				_, err = c.RecvTimeout(rx, bytes, peer, 7, recvTimeout)
				if err == nil {
					err = c.SendE(tx, bytes, peer, 7)
				}
			}
			if err != nil {
				cr.AddMetric("ops_err", 1)
				prevErr = true
			} else {
				cr.AddMetric("ops_ok", 1)
				if prevErr {
					cr.AddMetric("ops_recovered", 1)
					prevErr = false
				}
			}
		}
	}
}

// chaosContract is the family-wide robustness assertion set: the stress
// report saw at least one injected fault and one completed recovery, no
// request was left hanging at the end of the run, and the workload made
// progress through the faults.
func chaosContract() []Assertion {
	return []Assertion{
		Completed(),
		MetricAtLeast("stats.chaos_faults", 1),
		MetricAtLeast("stats.chaos_recoveries", 1),
		MetricPositive("ops_ok"),
		noInflightRequests(),
	}
}

// labelCases selects cells by case label (for EachCaseWhere).
func labelCases(labels ...string) func(cr *CaseRun) bool {
	return func(cr *CaseRun) bool {
		for _, l := range labels {
			if cr.Case.Label == l {
				return true
			}
		}
		return false
	}
}

// The chaos-* scenarios register from their embedded specs
// (spec_builtin.go); the legacy constructors below stay, unregistered,
// as the reference side of the spec-equivalence tests.

// legacyChaosCrashRecover: Poisson node crashes mid-transfer. A crash
// takes the NIC dark and releases every pinned page; peers must
// detect the silence (exponential-backoff probing bounded by
// PeerDeadTimeout), abort with a typed error, and re-establish once
// the node restarts.
func legacyChaosCrashRecover() *Scenario {
	return &Scenario{
		Name:        "chaos-crash-recover",
		Description: "4-node pairwise ping-pong under Poisson node crashes: typed peer-dead aborts, pins released, peers re-establish after restart",
		Cluster: cluster.Config{
			Nodes: 4,
			Link:  fleetLink(),
		},
		Cases: []Case{
			{Label: "cache", OMX: chaosOMX(core.OnDemand, true,
				200*sim.Microsecond, 2*sim.Millisecond)},
		},
		Chaos: &chaos.Profile{
			Horizon: 12 * sim.Millisecond,
			Specs: []chaos.Spec{{
				Class:    chaos.NodeCrash,
				Arrival:  chaos.Poisson,
				MeanGap:  2 * sim.Millisecond,
				Duration: 3 * sim.Millisecond,
			}},
		},
		Workload: chaosWorkload(40, 64*1024, 6*sim.Millisecond),
		Assertions: append(chaosContract(),
			MetricAtLeast("stats.crashes", 1),
			MetricAtLeast("stats.restarts", 1),
			MetricAtLeast("stats.req_aborts", 1),
			MetricPositive("ops_err"),
			MetricPositive("ops_recovered"),
			PinAccountingBalanced(),
		),
	}
}

// legacyChaosDegradedLink: latency inflation, bandwidth throttling,
// frame loss, and short full-partition windows. The windows stay below
// PeerDeadTimeout, so the protocol mostly rides them out with
// retransmits and re-requests instead of declaring peers dead.
func legacyChaosDegradedLink() *Scenario {
	return &Scenario{
		Name:        "chaos-degraded-link",
		Description: "4-node ping-pong through link degradation and partition windows: retransmit/re-request recovery without peer-death",
		Cluster: cluster.Config{
			Nodes: 4,
			Link:  fleetLink(),
		},
		Cases: []Case{
			{Label: "cache", OMX: chaosOMX(core.OnDemand, true,
				300*sim.Microsecond, 4*sim.Millisecond)},
		},
		Chaos: &chaos.Profile{
			Horizon: 15 * sim.Millisecond,
			Specs: []chaos.Spec{
				{
					Class:           chaos.LinkDegrade,
					Arrival:         chaos.Uniform,
					MeanGap:         2 * sim.Millisecond,
					Duration:        1500 * sim.Microsecond,
					DurationJitter:  0.4,
					ExtraLatency:    25 * sim.Microsecond,
					BandwidthFactor: 0.25,
					DropProb:        0.15,
				},
				{
					Class:    chaos.Partition,
					Arrival:  chaos.Poisson,
					MeanGap:  8 * sim.Millisecond,
					Duration: 800 * sim.Microsecond,
				},
			},
		},
		Workload: chaosWorkload(60, 64*1024, 8*sim.Millisecond),
		Assertions: append(chaosContract(),
			MetricAtLeast("stats.retransmits", 1),
			PinAccountingBalanced(),
		),
	}
}

// legacyChaosBudgetShrink: the frame budget collapses under the
// workload (kswapd suddenly has a lower watermark) and recovers. The
// pinned per-operation backend must repin its buffers each round, so
// the shrink windows surface as pin failures and typed aborts; ODP
// never pins, absorbs the same windows as device faults, and keeps
// going.
func legacyChaosBudgetShrink() *Scenario {
	return &Scenario{
		Name:        "chaos-budget-shrink",
		Description: "2-node streaming under runtime frame-budget collapse: pin backend surfaces pin failures, ODP absorbs the shrink as faults",
		Cluster: cluster.Config{
			Nodes: 2,
			Mem:   omx.MemConfig{Frames: 512},
			Link:  fleetLink(),
		},
		Cases: []Case{
			{Label: "pin", OMX: chaosOMX(core.OnDemand, false,
				300*sim.Microsecond, 4*sim.Millisecond)},
			{Label: "odp", OMX: chaosOMX(core.NoPinODP, true,
				300*sim.Microsecond, 4*sim.Millisecond)},
		},
		Chaos: &chaos.Profile{
			Horizon: 21 * sim.Millisecond,
			Specs: []chaos.Spec{{
				Class:    chaos.BudgetShrink,
				Arrival:  chaos.Uniform,
				MeanGap:  7 * sim.Millisecond,
				Duration: 4 * sim.Millisecond,
				Frames:   24,
			}},
		},
		Workload: chaosWorkload(20, 256*1024, 20*sim.Millisecond),
		Assertions: append(chaosContract(),
			pinSurfacesShrink(),
			odpAbsorbsShrink(),
		),
	}
}
