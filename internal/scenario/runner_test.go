package scenario

import (
	"bytes"
	"testing"

	"omxsim/internal/report"
)

// TestDeterministicForFixedSeed: the same scenario and seed must serialise
// to byte-identical JSON (the report carries no wall-clock state and the
// simulation is deterministic).
func TestDeterministicForFixedSeed(t *testing.T) {
	runOnce := func() []byte {
		res, err := RunByName("pincache", Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := runOnce(), runOnce()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different results:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestFaultInjectionInvalidateHits runs the registered fault-injection
// scenario and checks the injected free really fired MMU notifiers into
// declared regions.
func TestFaultInjectionInvalidateHits(t *testing.T) {
	res, err := RunByName("faults", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) == 0 {
		t.Fatal("no cases recorded")
	}
	for _, c := range res.Cases {
		if hits := c.Metrics["stats.invalidate_hits"]; hits < 1 {
			t.Errorf("case %s: InvalidateHits = %g, want >= 1 (notes: %v)", c.Label, hits, c.Notes)
		}
	}
	if !res.Passed {
		t.Fatalf("faults scenario failed its assertions: %+v", res.Assertions)
	}
}

// TestQuickstartScenario smoke-checks the default-case declarative path:
// one declaration and one pin per side, cache hits afterwards.
func TestQuickstartScenario(t *testing.T) {
	res, err := RunByName("quickstart", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("quickstart failed: %+v", res.Assertions)
	}
	c := res.Cases[0]
	if c.Metrics["stats.pin_ops"] > c.Metrics["stats.declares"]+1 {
		t.Fatalf("pinning not decoupled: pins=%g declares=%g", c.Metrics["stats.pin_ops"], c.Metrics["stats.declares"])
	}
}

// TestSweepTableShape: size-sweep scenarios render the size × case matrix
// of the primary metric.
func TestSweepTableShape(t *testing.T) {
	res, err := RunByName("mixed-policy", Options{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 3 {
		t.Fatalf("expected 3 cases (one per policy at one quick size), got %d", len(res.Cases))
	}
	if !res.Passed {
		t.Fatalf("mixed-policy failed: %+v", res.Assertions)
	}
	for _, c := range res.Cases {
		if c.Metrics["mbps"] <= 0 {
			t.Fatalf("case %s: no throughput recorded", c.Label)
		}
	}
}
