package scenario

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"omxsim/internal/chaos"
	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/ethernet"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
)

// TestMaxRetriesSurfacesTypedError is the regression test for the abort
// contract: a send whose control traffic is lost forever must exhaust
// maxRetries and surface a typed omx.ErrAborted through mpi.Comm — not a
// silent zero-byte completion — and every page it pinned must be released
// at the abort.
func TestMaxRetriesSurfacesTypedError(t *testing.T) {
	cfg := omx.DefaultConfig(core.OnDemand, false) // pin-per-op: pins live only while the request does
	cfg.RetransmitTimeout = 50 * sim.Microsecond
	// Keep the peer-dead detector out of the way so the retransmit
	// counter, not the silence clock, is what aborts the request.
	cfg.PeerDeadTimeout = sim.Second
	cl, err := cluster.New(cluster.Config{
		Nodes: 2,
		Link:  fleetLink(),
		OMX:   cfg,
		OnBuild: []func(*cluster.Cluster){func(cl *cluster.Cluster) {
			// Sever the 0 -> 1 direction: the rendezvous never arrives and
			// no ack ever comes back.
			cl.Fabric.DropFilter = func(fr *ethernet.Frame) bool {
				return fr.Src == 0 && fr.Dst == 1
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sendErr error
	sent := false
	cl.Run(func(c *mpi.Comm) {
		if c.Rank() != 0 {
			return
		}
		buf := c.Malloc(64 * 1024)
		sendErr = c.SendE(buf, 64*1024, 1, 5)
		sent = true
	})
	if !sent {
		t.Fatal("rank 0 body never finished")
	}
	if sendErr == nil {
		t.Fatal("send over a severed link completed without error")
	}
	if !errors.Is(sendErr, omx.ErrAborted) {
		t.Fatalf("send error %v is not typed omx.ErrAborted", sendErr)
	}
	if errors.Is(sendErr, omx.ErrPeerDead) {
		t.Fatalf("send aborted via peer-death %v; expected the retransmit limit", sendErr)
	}
	for _, p := range cl.Processes() {
		if n := p.Manager().PinnedPages(); n != 0 {
			t.Errorf("process %d still holds %d pinned pages after abort", p.PID(), n)
		}
	}
	for _, n := range cl.Nodes {
		if got := n.InFlightRequests(); got != 0 {
			t.Errorf("node %d reports %d requests in flight after abort", n.ID, got)
		}
	}
	if leaked := cl.Close(); leaked != 0 {
		t.Errorf("%d pages leaked through teardown", leaked)
	}
}

// TestChaosFaultsRouteToOwningShard runs a 4-node cluster on 4 shards
// (every node on its own engine) with a crash fault targeting node 2:
// the injection must land on node 2's shard — observable as exactly that
// node's crash/restart counters moving — and the run must stay green
// under -race, which would flag the event mutating another shard's
// state.
func TestChaosFaultsRouteToOwningShard(t *testing.T) {
	var crashes, restarts [4]uint64
	engines := make(map[*sim.Engine]bool)
	s := &Scenario{
		Name:    "chaos-shard-routing",
		Cluster: cluster.Config{Nodes: 4, Link: fleetLink()},
		Cases: []Case{{Label: "cache", OMX: chaosOMX(core.OnDemand, true,
			200*sim.Microsecond, 2*sim.Millisecond)}},
		Faults: []Fault{
			{At: 300 * sim.Microsecond, Kind: FaultCrash, Node: 2, For: 400 * sim.Microsecond},
		},
		Workload: chaosWorkload(8, 64*1024, 5*sim.Millisecond),
		Assertions: []Assertion{EachCase("collect per-node outcome", func(cr *CaseRun) (bool, string) {
			for i, n := range cr.Cluster.Nodes {
				crashes[i] = n.Stats().Crashes
				restarts[i] = n.Stats().Restarts
				engines[n.Eng] = true
			}
			return true, ""
		})},
	}
	res, err := s.Run(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		for _, a := range res.Assertions {
			if !a.Passed {
				t.Errorf("assertion %q failed: %s", a.Name, a.Detail)
			}
		}
		t.FailNow()
	}
	if len(engines) != 4 {
		t.Fatalf("expected 4 distinct shard engines, saw %d", len(engines))
	}
	for i := range crashes {
		want := uint64(0)
		if i == 2 {
			want = 1
		}
		if crashes[i] != want || restarts[i] != want {
			t.Errorf("node %d: crashes=%d restarts=%d, want %d/%d (fault targeted node 2)",
				i, crashes[i], restarts[i], want, want)
		}
	}
}

// TestFaultKindStrings is the table-driven coverage of every fault kind's
// name, old and new, plus the out-of-range fallback.
func TestFaultKindStrings(t *testing.T) {
	cases := []struct {
		kind FaultKind
		want string
	}{
		{FaultFree, "free"},
		{FaultFork, "fork"},
		{FaultSwapOut, "swapout"},
		{FaultFlood, "flood"},
		{FaultMProtect, "mprotect"},
		{FaultCrash, "crash"},
		{FaultLinkDegrade, "link-degrade"},
		{FaultPartition, "partition"},
		{FaultBudgetShrink, "budget-shrink"},
		{FaultKind(99), "fault(99)"},
	}
	for _, tc := range cases {
		if got := tc.kind.String(); got != tc.want {
			t.Errorf("FaultKind(%d).String() = %q, want %q", int(tc.kind), got, tc.want)
		}
	}
}

// TestChaosScenarioListing checks the registered chaos scenarios expose a
// profile summary (what `omxsim list` prints) naming each fault class
// they inject.
func TestChaosScenarioListing(t *testing.T) {
	wants := map[string][]string{
		"chaos-crash-recover": {"node-crash"},
		"chaos-degraded-link": {"link-degrade", "partition"},
		"chaos-budget-shrink": {"budget-shrink"},
	}
	for name, classes := range wants {
		s, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		if s.Chaos == nil {
			t.Fatalf("scenario %q has no chaos profile", name)
		}
		sum := s.Chaos.Summary()
		for _, c := range classes {
			if !strings.Contains(sum, c) {
				t.Errorf("%s profile summary %q does not mention %q", name, sum, c)
			}
		}
	}
}

// TestChaosSeedIndependentOfShards checks the knob the CLI exposes as
// -chaos-seed: reseeding the fault schedule changes the outcome without
// touching the simulation seed, and each chaos seed is itself
// shard-count invariant.
func TestChaosSeedIndependentOfShards(t *testing.T) {
	base := resultBytes(t, "chaos-budget-shrink", Options{Shards: 1, ChaosSeed: 7})
	same := resultBytes(t, "chaos-budget-shrink", Options{Shards: 2, ChaosSeed: 7})
	if string(base) != string(same) {
		t.Fatal("chaos-seed 7 result differs between shards=1 and shards=2")
	}
}

// TestChaosPlanOnlyDependsOnInputs pins the contract armChaos relies on:
// the compiled plan is a pure function of (seed, node count), so
// replanning for the same cell cannot diverge between shard layouts.
func TestChaosPlanOnlyDependsOnInputs(t *testing.T) {
	p := &chaos.Profile{
		Horizon: 10 * sim.Millisecond,
		Specs: []chaos.Spec{
			{Class: chaos.NodeCrash, Arrival: chaos.Poisson, MeanGap: sim.Millisecond, Duration: sim.Millisecond},
			{Class: chaos.LinkDegrade, Arrival: chaos.Burst, MeanGap: 2 * sim.Millisecond, Duration: 500 * sim.Microsecond},
		},
	}
	a := p.Plan(42, 8)
	b := p.Plan(42, 8)
	if len(a) == 0 {
		t.Fatal("plan is empty")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("two plans from the same inputs differ")
	}
	for i, ev := range a {
		if ev.At >= sim.Time(p.Horizon) {
			t.Errorf("event %d fires at %v, at or past the %v horizon", i, ev.At, p.Horizon)
		}
		if ev.Node < 0 || ev.Node >= 8 {
			t.Errorf("event %d targets node %d outside the cluster", i, ev.Node)
		}
		if i > 0 && a[i-1].At > ev.At {
			t.Errorf("plan not sorted at %d: %v after %v", i, a[i-1].At, ev.At)
		}
	}
}
