package scenario

import "testing"

// TestCacheStressScenarios gates the cache-stress family (and the
// reworked pincache lifecycle) in `go test`: these scenarios carry the
// acceptance assertions for the registration cache — subrange hits
// without new declarations, no stale region after munmap/realloc, and
// byte-budget eviction — so a cache regression fails the unit suite, not
// just the CI sweep.
func TestCacheStressScenarios(t *testing.T) {
	for _, name := range []string{
		"cache-stress-realloc",
		"cache-stress-subrange",
		"cache-stress-share",
		"cache-stress-pressure",
		"pincache",
	} {
		t.Run(name, func(t *testing.T) {
			res, err := RunByName(name, Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range res.Assertions {
				if !a.Passed {
					t.Errorf("assertion %q failed: %s", a.Name, a.Detail)
				}
			}
		})
	}
}
