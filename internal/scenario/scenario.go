// Package scenario turns experiments into data. A Scenario declares a
// cluster shape, a matrix of pinning-policy cases, an optional message-size
// sweep, a per-rank workload, fault-injection events at simulated times,
// and assertions over the collected statistics; the Runner builds one
// cluster per (case, size) cell, schedules the faults, drives the
// simulation, and emits a structured report.Result. The package-level
// registry is what the omxsim CLI lists and runs — adding a workload is a
// table entry, not a new binary.
package scenario

import (
	"fmt"
	"sync"

	"omxsim/internal/chaos"
	"omxsim/internal/cluster"
	"omxsim/internal/ethernet"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/report"
	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// Options are the per-invocation knobs the CLI exposes.
type Options struct {
	// Seed drives the deterministic simulation (0 = 1, the default seed).
	Seed int64
	// Policy restricts the case matrix to cases whose label or pin-policy
	// name matches ("" = run every case).
	Policy string
	// Quick selects the reduced size schedule (QuickSizes) and tells
	// Custom scenarios to shrink their sweeps.
	Quick bool
	// Shards runs every cell's cluster on that many parallel engine
	// shards (0 keeps the scenario's own setting, normally the legacy
	// single-engine path). Custom scenarios build their own clusters and
	// ignore it.
	Shards int
	// ChaosSeed reseeds the chaos plan independently of the simulation
	// seed (0 = derive from Seed), so the same workload can face
	// different fault schedules.
	ChaosSeed int64
}

// Case is one cell of a scenario's pin-policy matrix.
type Case struct {
	// Label names the case in tables and -policy filters.
	Label string
	// OMX is the per-endpoint Open-MX configuration for this case.
	OMX omx.Config
	// Params carries free-form case parameters the workload can branch on
	// (e.g. blocking vs overlap-aware application patterns).
	Params map[string]string
	// Tweak, when non-nil, mutates the cluster config for this case
	// (AppsOnRxCore, per-rank EndpointConfig, link overrides, ...).
	Tweak func(*cluster.Config)
}

// FaultKind enumerates the built-in fault injectors.
type FaultKind int

const (
	// FaultFree munmaps a workload-registered buffer: the MMU notifier
	// unpins any overlapping region mid-communication (paper §2.1's
	// "free may unmap the buffer").
	FaultFree FaultKind = iota
	// FaultFork forks the target rank's address space copy-on-write, the
	// paper's other invalidation source. Pinned pages are copied eagerly
	// (as Linux does for elevated GUP counts), so only unpinned pages of
	// declared regions see COW notifications.
	FaultFork
	// FaultSwapOut pushes a registered buffer's unpinned pages to swap,
	// firing swap notifiers (madvise/reclaim-style pressure).
	FaultSwapOut
	// FaultFlood saturates every node's interrupt core with synthetic
	// bottom-half work for a window — the §4.3 overload generator.
	FaultFlood
	// FaultMProtect write-protects a registered buffer (mprotect to
	// read-only): the notifier fires over the whole range — pinned pages
	// included, since a device translation that assumed write access is
	// now wrong — so the driver unpins, while the mapping (and any cached
	// declaration over it) stays intact. The next use repins.
	FaultMProtect
	// FaultCrash takes Node dark for the For window (NIC down, pins
	// released, in-flight requests abort with omx.ErrPeerDead), then
	// restarts it.
	FaultCrash
	// FaultLinkDegrade applies the Degrade knobs to Node's NIC for the
	// For window.
	FaultLinkDegrade
	// FaultPartition drops every frame to and from Node for the For
	// window without crashing it.
	FaultPartition
	// FaultBudgetShrink lowers Node's physical-frame budget to Frames
	// for the For window.
	FaultBudgetShrink
)

// String names the fault kind for notes and tables.
func (k FaultKind) String() string {
	switch k {
	case FaultFree:
		return "free"
	case FaultFork:
		return "fork"
	case FaultSwapOut:
		return "swapout"
	case FaultFlood:
		return "flood"
	case FaultMProtect:
		return "mprotect"
	case FaultCrash:
		return "crash"
	case FaultLinkDegrade:
		return "link-degrade"
	case FaultPartition:
		return "partition"
	case FaultBudgetShrink:
		return "budget-shrink"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is one injected event at a simulated time. Buffer-targeted faults
// wait (polling the registry) until the workload has registered the named
// buffer, so declaration order does not matter.
type Fault struct {
	// At is the injection time, measured from simulation start.
	At sim.Duration
	// Kind selects the injector.
	Kind FaultKind
	// Rank is the target rank for Free/Fork/SwapOut.
	Rank int
	// Buffer names the workload-registered buffer for Free/SwapOut.
	Buffer string
	// Util is the bottom-half utilization for Flood (0..1).
	Util float64
	// For bounds a flood window; 0 floods until the run ends (or the
	// runner's hard cap when the scenario has no budget). For the
	// node-class faults it is the outage/degradation window before the
	// matching restore fires.
	For sim.Duration
	// Node is the target host for Crash/LinkDegrade/Partition/BudgetShrink.
	Node int
	// Degrade carries the LinkDegrade knobs.
	Degrade ethernet.Degrade
	// Frames is the BudgetShrink target frame budget.
	Frames int
}

// Workload runs on every rank of the cluster; it records metrics and
// registers fault-target buffers through the CaseRun.
type Workload func(c *mpi.Comm, cr *CaseRun)

// Scenario is one declaratively-described experiment.
type Scenario struct {
	// Name is the registry key (omxsim run <name>).
	Name string
	// Description is one line for omxsim list and report headers.
	Description string
	// Source records where the scenario came from (SourceBuiltinGo,
	// SourceBuiltinSpec, SourceFile). Register defaults it to
	// SourceBuiltinGo; the spec loader stamps the other two.
	Source string
	// Cluster is the base cluster shape; the runner fills OMX and Seed per
	// case and applies Case.Tweak.
	Cluster cluster.Config
	// Cases is the pin-policy matrix (nil = one default on-demand+cache
	// case).
	Cases []Case
	// Sizes is an optional message-size sweep: the workload runs once per
	// (case, size) in a fresh cluster, reading the size from the CaseRun.
	Sizes []int
	// QuickSizes replaces Sizes under Options.Quick (nil = keep Sizes).
	QuickSizes []int
	// Workload is the per-rank body (ignored when Custom is set).
	Workload Workload
	// Faults are injected into every case's run.
	Faults []Fault
	// Chaos, when set, compiles into a seeded fault schedule per cell
	// (the deterministic chaos engine): node crashes, link degradation,
	// partitions, budget shrinks, drawn from the profile's arrival
	// distributions and armed on each target node's own shard engine.
	Chaos *chaos.Profile
	// Budget stops the simulation after this much simulated time even if
	// ranks are still blocked (saturation scenarios); 0 runs to
	// completion.
	Budget sim.Duration
	// Metric names the primary workload metric; with a size sweep the
	// runner renders the size × case matrix table from it.
	Metric string
	// Assertions are evaluated over the finished Run.
	Assertions []Assertion
	// Report, when non-nil, runs after every cell has finished but before
	// the automatic tables are built: the hook folds per-rank stashed
	// state (e.g. kv latency histograms) into case metrics and custom
	// tables. Metrics it sets are visible to Assertions.
	Report func(run *Run)
	// Custom replaces the declarative runner entirely for workloads that
	// do not fit the cluster+workload mold (e.g. the Table 1 pin-cost
	// micro-benchmark); it fills the Run's cases and tables itself.
	Custom func(run *Run) error
}

// Run is the in-flight state of one scenario invocation: every case cell
// plus the report being assembled.
type Run struct {
	Scenario *Scenario
	Opts     Options
	Result   *report.Result
	Cases    []*CaseRun
}

// AddCase appends a case record (Custom scenarios build their matrix this
// way; the declarative runner calls it internally).
func (run *Run) AddCase(label string) *CaseRun {
	cr := &CaseRun{
		Case:    Case{Label: label},
		Metrics: make(map[string]float64),
		buffers: make(map[string]bufRef),
	}
	run.Cases = append(run.Cases, cr)
	return cr
}

// CaseRun is one (case, size) cell: the live cluster while running, and
// the collected measurements afterwards.
type CaseRun struct {
	Case Case
	// Size is the sweep point (0 when the scenario has no size sweep).
	Size int
	// Seed is the simulation seed the cell ran with (the workload derives
	// per-rank RNG streams from it).
	Seed int64
	// Cluster is the live cluster (nil for Custom scenarios that bypass
	// the declarative runner).
	Cluster *cluster.Cluster
	// PolicyName labels the pinning policy in reports.
	PolicyName string
	// Metrics holds workload measurements plus the runner's automatic
	// "stats."-prefixed counters.
	Metrics map[string]float64
	// Completed is false when the budget expired with ranks still
	// blocked.
	Completed bool
	// Quick mirrors Options.Quick for workloads that scale their own
	// round counts (spec workloads with quick_* overrides). It is not
	// serialized, so it cannot perturb report equivalence.
	Quick bool
	// Notes records fault outcomes and anomalies.
	Notes []string

	// mu guards Metrics, Notes, buffers, and stash: in a sharded run, rank
	// bodies and fault injectors touch the case record from different
	// shard goroutines. (The values written are still deterministic —
	// the lock only makes the map accesses safe, it is not ordering
	// anything.)
	mu      sync.Mutex
	buffers map[string]bufRef
	stash   map[string]any

	// chaosRecs holds one recorder per node while a chaos-profile cell
	// runs (each touched only by its node's engine); chaosSeries is the
	// merged stress report collected after the run.
	chaosRecs   []*chaos.Recorder
	chaosSeries *report.ChaosSeries
}

type bufRef struct {
	addr vm.Addr
	size int
}

// Metric records a measurement (rank 0 usually writes these).
func (cr *CaseRun) Metric(name string, v float64) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	cr.Metrics[name] = v
}

// AddMetric accumulates delta into a measurement. Unlike Metric it is
// safe for every rank to call: integral deltas sum exactly in any order,
// so the total stays deterministic even when ranks run on different
// shards (the chaos workloads count per-rank operation outcomes this
// way).
func (cr *CaseRun) AddMetric(name string, delta float64) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	cr.Metrics[name] += delta
}

// Param reads a case parameter ("" when absent).
func (cr *CaseRun) Param(key string) string { return cr.Case.Params[key] }

// Note appends a free-form remark to the case record.
func (cr *CaseRun) Note(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	cr.mu.Lock()
	defer cr.mu.Unlock()
	cr.Notes = append(cr.Notes, msg)
}

// RegisterBuffer publishes a rank's buffer under a name so fault events can
// target it.
func (cr *CaseRun) RegisterBuffer(rank int, name string, addr vm.Addr, size int) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	cr.buffers[bufKey(rank, name)] = bufRef{addr: addr, size: size}
}

// Buffer looks up a registered buffer.
func (cr *CaseRun) Buffer(rank int, name string) (vm.Addr, int, bool) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	b, ok := cr.buffers[bufKey(rank, name)]
	return b.addr, b.size, ok
}

func bufKey(rank int, name string) string { return fmt.Sprintf("%d/%s", rank, name) }

// Stash parks an arbitrary per-cell value (e.g. a rank's latency
// histograms) under a key for the scenario's Report hook to collect after
// the run. Ranks on different shards may stash concurrently; readers must
// wait until the cell has finished (the Report hook runs after Run/RunFor
// returns, so it always may).
func (cr *CaseRun) Stash(key string, v any) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	if cr.stash == nil {
		cr.stash = make(map[string]any)
	}
	cr.stash[key] = v
}

// Stashed reads a value parked by Stash (nil when absent).
func (cr *CaseRun) Stashed(key string) any {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return cr.stash[key]
}

// id labels the cell in assertion failure details.
func (cr *CaseRun) id() string {
	if cr.Size > 0 {
		return fmt.Sprintf("%s/%s", cr.Case.Label, report.Bytes(cr.Size))
	}
	return cr.Case.Label
}
