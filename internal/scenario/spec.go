// spec.go — the declarative scenario spec format. A spec is a strict
// YAML-subset document (parsed by internal/yamlite) that describes a
// scenario without Go code: the cluster or fleet shape, the pin-policy
// case matrix, a workload by kind, timed fault events, a chaos profile,
// and an ordered assertion block. ParseSpec decodes and validates with
// file:line errors (unknown fields are hard errors — a typo must never
// silently weaken an assertion); Compile lowers the result onto the
// exact same Scenario/Runner machinery the Go builtins use, so a ported
// builtin's spec run is byte-identical to its legacy Go run.
package scenario

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"omxsim/internal/chaos"
	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/ethernet"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
	"omxsim/internal/yamlite"
)

// Spec is a parsed (but not yet compiled) scenario spec.
type Spec struct {
	// File is the source path, used in error messages.
	File string
	// Name is the registry key the compiled scenario claims.
	Name string
	// Description is the one-line listing text.
	Description string

	clusterCfg cluster.Config
	hasCluster bool
	fleet      *fleetSpec
	cases      []Case
	sizes      []int
	quickSizes []int
	metric     string
	workload   *workloadSpec
	budget     sim.Duration
	faults     []Fault
	chaosProf  *chaos.Profile
	asserts    []Assertion
	sloTenants []sloRef
}

// sloRef remembers where an SLO assertion named its tenant, for the
// cross-reference check against the kv workload's tenant list.
type sloRef struct {
	tenant string
	line   int
}

// fleetSpec is the fleet: section — node-group templates scaled to a
// total node count, plus the startup schedule.
type fleetSpec struct {
	total   int
	link    *ethernet.LinkConfig
	groups  []fleetGroup
	startup startupSpec
}

type fleetGroup struct {
	name         string
	weight       int
	nodes        int // explicit count; 0 = allocate by weight
	ranksPerNode int
	frames       int
	epsPerNode   int // endpoints per rank-role; 0 = inherit the base config
	nicQueues    int // NIC tx/rx queue pairs; 0 = inherit the base config
}

// Startup patterns.
const (
	startInstant = iota
	startLinear
	startExponential
	startWave
)

type startupSpec struct {
	pattern int
	spread  sim.Duration
	waves   int
	jitter  float64
}

// dec carries the source file name through the decoder for error
// messages.
type dec struct{ file string }

func (d *dec) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", d.file, line, fmt.Sprintf(format, args...))
}

// scalar asserts the node is a scalar and returns its value.
func (d *dec) scalar(n *yamlite.Node, what string) (string, error) {
	if n.Kind != yamlite.Scalar {
		return "", d.errf(n.Line, "%s: expected a scalar value, got a %s", what, n.Kind)
	}
	return n.Value, nil
}

func (d *dec) str(n *yamlite.Node, what string) (string, error) {
	return d.scalar(n, what)
}

func (d *dec) intVal(n *yamlite.Node, what string) (int, error) {
	s, err := d.scalar(n, what)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, d.errf(n.Line, "%s: %q is not an integer", what, s)
	}
	return v, nil
}

func (d *dec) floatVal(n *yamlite.Node, what string) (float64, error) {
	s, err := d.scalar(n, what)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, d.errf(n.Line, "%s: %q is not a number", what, s)
	}
	return v, nil
}

func (d *dec) boolVal(n *yamlite.Node, what string) (bool, error) {
	s, err := d.scalar(n, what)
	if err != nil {
		return false, err
	}
	switch s {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, d.errf(n.Line, "%s: %q is not true/false", what, s)
}

// bytesVal parses a byte count: a plain integer or a number with a
// B/KiB/MiB/GiB suffix ("256KiB", "1MiB").
func (d *dec) bytesVal(n *yamlite.Node, what string) (int, error) {
	s, err := d.scalar(n, what)
	if err != nil {
		return 0, err
	}
	v, err := parseBytes(s)
	if err != nil {
		return 0, d.errf(n.Line, "%s: %v", what, err)
	}
	return v, nil
}

func parseBytes(s string) (int, error) {
	mult := 1
	num := s
	for _, suf := range []struct {
		tag string
		m   int
	}{{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10}, {"B", 1}} {
		if strings.HasSuffix(s, suf.tag) {
			mult = suf.m
			num = strings.TrimSuffix(s, suf.tag)
			break
		}
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("%q is not a byte size (use an integer or a KiB/MiB/GiB suffix)", s)
	}
	return int(f * float64(mult)), nil
}

// durUS parses a duration given in microseconds of simulated time.
func (d *dec) durUS(n *yamlite.Node, what string) (sim.Duration, error) {
	v, err := d.floatVal(n, what)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, d.errf(n.Line, "%s: must be >= 0", what)
	}
	return sim.Duration(v * float64(sim.Microsecond)), nil
}

func (d *dec) wantMap(n *yamlite.Node, what string) error {
	if n.Kind != yamlite.Map {
		return d.errf(n.Line, "%s: expected a mapping, got a %s", what, n.Kind)
	}
	return nil
}

func (d *dec) wantSeq(n *yamlite.Node, what string) error {
	if n.Kind != yamlite.Seq {
		return d.errf(n.Line, "%s: expected a sequence, got a %s", what, n.Kind)
	}
	return nil
}

// sizeSeq parses a list of byte sizes.
func (d *dec) sizeSeq(n *yamlite.Node, what string) ([]int, error) {
	if err := d.wantSeq(n, what); err != nil {
		return nil, err
	}
	var out []int
	for _, it := range n.Items {
		v, err := d.bytesVal(it, what)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parsePolicy resolves a pin-policy name to its enum.
func parsePolicy(s string) (core.PinPolicy, bool) {
	for _, p := range []core.PinPolicy{
		core.PinEachComm, core.Permanent, core.OnDemand, core.Overlapped,
		core.NoPinning, core.NoPinODP, core.PinAhead,
	} {
		if p.String() == s {
			return p, true
		}
	}
	return 0, false
}

// policyNames lists the accepted pin-policy names for error messages.
func policyNames() string {
	return "pin-each-comm, permanent, on-demand, overlapped, no-pinning, odp, pin-ahead"
}

// ParseSpec decodes and validates a scenario spec. Every decode error
// carries file:line context; unknown fields anywhere in the document are
// errors.
func ParseSpec(src []byte, file string) (*Spec, error) {
	root, err := yamlite.Parse(src, file)
	if err != nil {
		return nil, err
	}
	d := &dec{file: file}
	if err := d.wantMap(root, "document root"); err != nil {
		return nil, err
	}
	sp := &Spec{File: file}
	var clusterLine, fleetLine int
	for _, p := range root.Pairs {
		switch p.Key {
		case "name":
			if sp.Name, err = d.str(p.Val, "name"); err != nil {
				return nil, err
			}
		case "description":
			if sp.Description, err = d.str(p.Val, "description"); err != nil {
				return nil, err
			}
		case "cluster":
			clusterLine = p.Line
			if err = d.decodeCluster(p.Val, sp); err != nil {
				return nil, err
			}
		case "fleet":
			fleetLine = p.Line
			if err = d.decodeFleet(p.Val, sp); err != nil {
				return nil, err
			}
		case "cases":
			if err = d.decodeCases(p.Val, sp); err != nil {
				return nil, err
			}
		case "sizes":
			if sp.sizes, err = d.sizeSeq(p.Val, "sizes"); err != nil {
				return nil, err
			}
		case "quick_sizes":
			if sp.quickSizes, err = d.sizeSeq(p.Val, "quick_sizes"); err != nil {
				return nil, err
			}
		case "metric":
			if sp.metric, err = d.str(p.Val, "metric"); err != nil {
				return nil, err
			}
		case "workload":
			if err = d.decodeWorkload(p.Val, sp); err != nil {
				return nil, err
			}
		case "budget_us":
			if sp.budget, err = d.durUS(p.Val, "budget_us"); err != nil {
				return nil, err
			}
		case "faults":
			if err = d.decodeFaults(p.Val, sp); err != nil {
				return nil, err
			}
		case "chaos":
			if err = d.decodeChaos(p.Val, sp); err != nil {
				return nil, err
			}
		case "assertions":
			if err = d.decodeAssertions(p.Val, sp); err != nil {
				return nil, err
			}
		default:
			return nil, d.errf(p.Line, "unknown field %q (top-level fields: name, description, cluster, fleet, cases, sizes, quick_sizes, metric, workload, budget_us, faults, chaos, assertions)", p.Key)
		}
	}
	if sp.Name == "" {
		return nil, d.errf(root.Line, "spec is missing the required `name` field")
	}
	if sp.workload == nil {
		return nil, d.errf(root.Line, "spec %q is missing the required `workload` section", sp.Name)
	}
	if sp.hasCluster && sp.fleet != nil {
		return nil, d.errf(fleetLine, "spec %q sets both `cluster` (line %d) and `fleet`: pick one", sp.Name, clusterLine)
	}
	if err := d.crossCheck(sp); err != nil {
		return nil, err
	}
	return sp, nil
}

// crossCheck validates references between sections once everything is
// decoded: workload/size coupling and SLO tenant names.
func (d *dec) crossCheck(sp *Spec) error {
	w := sp.workload
	if w.needsSizes && len(sp.sizes) == 0 {
		return d.errf(w.line, "workload kind %q reads the message size from the sweep: add a `sizes` list", w.kind)
	}
	for _, ref := range sp.sloTenants {
		if w.kvCfg == nil {
			return d.errf(ref.line, "slo %q: SLO assertions need a kv workload (this spec's workload kind is %q)", ref.tenant, w.kind)
		}
		found := false
		for _, t := range w.kvCfg.Tenants {
			if t.Name == ref.tenant {
				found = true
				break
			}
		}
		if !found {
			var names []string
			for _, t := range w.kvCfg.Tenants {
				names = append(names, t.Name)
			}
			return d.errf(ref.line, "slo %q: no such tenant in the kv workload (tenants: %s)", ref.tenant, strings.Join(names, ", "))
		}
	}
	if sp.fleet != nil {
		seen := map[string]bool{}
		for _, g := range sp.fleet.groups {
			if seen[g.name] {
				return d.errf(0, "fleet group %q: duplicate group name", g.name)
			}
			seen[g.name] = true
		}
	}
	return nil
}

// decodeCluster fills the base cluster.Config from the cluster: section.
func (d *dec) decodeCluster(n *yamlite.Node, sp *Spec) error {
	if err := d.wantMap(n, "cluster"); err != nil {
		return err
	}
	sp.hasCluster = true
	cfg := &sp.clusterCfg
	for _, p := range n.Pairs {
		var err error
		switch p.Key {
		case "nodes":
			cfg.Nodes, err = d.intVal(p.Val, "cluster.nodes")
		case "ranks_per_node":
			cfg.RanksPerNode, err = d.intVal(p.Val, "cluster.ranks_per_node")
		case "ranks_per_proc":
			cfg.RanksPerProc, err = d.intVal(p.Val, "cluster.ranks_per_proc")
		case "endpoints_per_node":
			cfg.EndpointsPerNode, err = d.intVal(p.Val, "cluster.endpoints_per_node")
		case "nic_queues":
			cfg.NICQueues, err = d.intVal(p.Val, "cluster.nic_queues")
		case "mem_frames":
			cfg.Mem.Frames, err = d.intVal(p.Val, "cluster.mem_frames")
		case "link":
			cfg.Link, err = d.decodeLink(p.Val, "cluster.link")
		default:
			return d.errf(p.Line, "cluster: unknown field %q (fields: nodes, ranks_per_node, ranks_per_proc, endpoints_per_node, nic_queues, mem_frames, link)", p.Key)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// decodeLink decodes a link override block, starting from the default
// 10G link.
func (d *dec) decodeLink(n *yamlite.Node, what string) (*ethernet.LinkConfig, error) {
	if err := d.wantMap(n, what); err != nil {
		return nil, err
	}
	l := ethernet.DefaultLinkConfig()
	for _, p := range n.Pairs {
		var err error
		switch p.Key {
		case "prop_delay_us":
			l.PropDelay, err = d.durUS(p.Val, what+".prop_delay_us")
		case "bytes_per_sec":
			l.BytesPerSec, err = d.floatVal(p.Val, what+".bytes_per_sec")
		case "drop_prob":
			l.DropProb, err = d.floatVal(p.Val, what+".drop_prob")
		default:
			return nil, d.errf(p.Line, "%s: unknown field %q (fields: prop_delay_us, bytes_per_sec, drop_prob)", what, p.Key)
		}
		if err != nil {
			return nil, err
		}
	}
	return &l, nil
}

// decodeFleet parses the fleet: section.
func (d *dec) decodeFleet(n *yamlite.Node, sp *Spec) error {
	if err := d.wantMap(n, "fleet"); err != nil {
		return err
	}
	f := &fleetSpec{}
	for _, p := range n.Pairs {
		var err error
		switch p.Key {
		case "total_nodes":
			f.total, err = d.intVal(p.Val, "fleet.total_nodes")
		case "link":
			f.link, err = d.decodeLink(p.Val, "fleet.link")
		case "groups":
			err = d.decodeGroups(p.Val, f)
		case "startup":
			err = d.decodeStartup(p.Val, f)
		default:
			return d.errf(p.Line, "fleet: unknown field %q (fields: total_nodes, link, groups, startup)", p.Key)
		}
		if err != nil {
			return err
		}
	}
	if f.total < 2 {
		return d.errf(n.Line, "fleet.total_nodes must be >= 2 (got %d)", f.total)
	}
	if len(f.groups) == 0 {
		return d.errf(n.Line, "fleet: at least one group template is required")
	}
	if f.link == nil {
		// Fleet-scale runs need a usefully wide lookahead window; default
		// to the fleet link (one switch hop).
		l := ethernet.DefaultLinkConfig()
		l.PropDelay = 2 * sim.Microsecond
		f.link = &l
	}
	sp.fleet = f
	return nil
}

func (d *dec) decodeGroups(n *yamlite.Node, f *fleetSpec) error {
	if err := d.wantSeq(n, "fleet.groups"); err != nil {
		return err
	}
	for _, it := range n.Items {
		if err := d.wantMap(it, "fleet group"); err != nil {
			return err
		}
		g := fleetGroup{}
		for _, p := range it.Pairs {
			var err error
			switch p.Key {
			case "name":
				g.name, err = d.str(p.Val, "group.name")
			case "weight":
				g.weight, err = d.intVal(p.Val, "group.weight")
			case "nodes":
				g.nodes, err = d.intVal(p.Val, "group.nodes")
			case "ranks_per_node":
				g.ranksPerNode, err = d.intVal(p.Val, "group.ranks_per_node")
			case "endpoints_per_node":
				g.epsPerNode, err = d.intVal(p.Val, "group.endpoints_per_node")
			case "nic_queues":
				g.nicQueues, err = d.intVal(p.Val, "group.nic_queues")
			case "mem_frames":
				g.frames, err = d.intVal(p.Val, "group.mem_frames")
			default:
				return d.errf(p.Line, "fleet group: unknown field %q (fields: name, weight, nodes, ranks_per_node, endpoints_per_node, nic_queues, mem_frames)", p.Key)
			}
			if err != nil {
				return err
			}
		}
		if g.name == "" {
			return d.errf(it.Line, "fleet group is missing the required `name` field")
		}
		if g.weight == 0 && g.nodes == 0 {
			return d.errf(it.Line, "fleet group %q: set `weight` (proportional share) or `nodes` (fixed count)", g.name)
		}
		f.groups = append(f.groups, g)
	}
	return nil
}

func (d *dec) decodeStartup(n *yamlite.Node, f *fleetSpec) error {
	if err := d.wantMap(n, "fleet.startup"); err != nil {
		return err
	}
	st := &f.startup
	for _, p := range n.Pairs {
		var err error
		switch p.Key {
		case "pattern":
			var s string
			if s, err = d.str(p.Val, "startup.pattern"); err == nil {
				switch s {
				case "instant":
					st.pattern = startInstant
				case "linear":
					st.pattern = startLinear
				case "exponential":
					st.pattern = startExponential
				case "wave":
					st.pattern = startWave
				default:
					err = d.errf(p.Val.Line, "startup.pattern: unknown pattern %q (instant, linear, exponential, wave)", s)
				}
			}
		case "spread_us":
			st.spread, err = d.durUS(p.Val, "startup.spread_us")
		case "waves":
			st.waves, err = d.intVal(p.Val, "startup.waves")
		case "jitter":
			st.jitter, err = d.floatVal(p.Val, "startup.jitter")
		default:
			return d.errf(p.Line, "fleet.startup: unknown field %q (fields: pattern, spread_us, waves, jitter)", p.Key)
		}
		if err != nil {
			return err
		}
	}
	if st.pattern == startWave && st.waves < 1 {
		return d.errf(n.Line, "startup.pattern `wave` needs `waves` >= 1")
	}
	if st.pattern != startInstant && st.spread <= 0 {
		return d.errf(n.Line, "startup.spread_us must be > 0 for a staged pattern")
	}
	return nil
}

// decodeCases parses the case matrix.
func (d *dec) decodeCases(n *yamlite.Node, sp *Spec) error {
	if err := d.wantSeq(n, "cases"); err != nil {
		return err
	}
	for _, it := range n.Items {
		if err := d.wantMap(it, "case"); err != nil {
			return err
		}
		var (
			label   string
			polName string
			polLine int
			cache   bool
			c       Case
			retrans sim.Duration
			dead    sim.Duration
			ioat    bool
			pinLim  int
		)
		for _, p := range it.Pairs {
			var err error
			switch p.Key {
			case "label":
				label, err = d.str(p.Val, "case.label")
			case "policy":
				polLine = p.Val.Line
				polName, err = d.str(p.Val, "case.policy")
			case "cache":
				cache, err = d.boolVal(p.Val, "case.cache")
			case "use_ioat":
				ioat, err = d.boolVal(p.Val, "case.use_ioat")
			case "retransmit_timeout_us":
				retrans, err = d.durUS(p.Val, "case.retransmit_timeout_us")
			case "peer_dead_timeout_us":
				dead, err = d.durUS(p.Val, "case.peer_dead_timeout_us")
			case "pinned_page_limit":
				pinLim, err = d.intVal(p.Val, "case.pinned_page_limit")
			case "params":
				if err = d.wantMap(p.Val, "case.params"); err == nil {
					c.Params = map[string]string{}
					for _, pp := range p.Val.Pairs {
						var v string
						if v, err = d.str(pp.Val, "case.params."+pp.Key); err != nil {
							break
						}
						c.Params[pp.Key] = v
					}
				}
			default:
				return d.errf(p.Line, "case: unknown field %q (fields: label, policy, cache, use_ioat, retransmit_timeout_us, peer_dead_timeout_us, pinned_page_limit, params)", p.Key)
			}
			if err != nil {
				return err
			}
		}
		if label == "" {
			return d.errf(it.Line, "case is missing the required `label` field")
		}
		if polName == "" {
			return d.errf(it.Line, "case %q is missing the required `policy` field", label)
		}
		pol, ok := parsePolicy(polName)
		if !ok {
			return d.errf(polLine, "case %q: unknown policy %q (policies: %s)", label, polName, policyNames())
		}
		for _, prev := range sp.cases {
			if prev.Label == label {
				return d.errf(it.Line, "case %q: duplicate case label", label)
			}
		}
		c.Label = label
		c.OMX = omx.DefaultConfig(pol, cache)
		if retrans > 0 {
			c.OMX.RetransmitTimeout = retrans
		}
		if dead > 0 {
			c.OMX.PeerDeadTimeout = dead
		}
		if ioat {
			c.OMX.UseIOAT = true
		}
		if pinLim > 0 {
			c.OMX.PinnedPageLimit = pinLim
		}
		sp.cases = append(sp.cases, c)
	}
	return nil
}

// decodeFaults parses the timed one-shot fault events.
func (d *dec) decodeFaults(n *yamlite.Node, sp *Spec) error {
	if err := d.wantSeq(n, "faults"); err != nil {
		return err
	}
	kinds := map[string]FaultKind{
		"free": FaultFree, "fork": FaultFork, "swapout": FaultSwapOut,
		"flood": FaultFlood, "mprotect": FaultMProtect, "crash": FaultCrash,
		"link-degrade": FaultLinkDegrade, "partition": FaultPartition,
		"budget-shrink": FaultBudgetShrink,
	}
	for _, it := range n.Items {
		if err := d.wantMap(it, "fault"); err != nil {
			return err
		}
		var f Fault
		kindSet := false
		for _, p := range it.Pairs {
			var err error
			switch p.Key {
			case "at_us":
				f.At, err = d.durUS(p.Val, "fault.at_us")
			case "kind":
				var s string
				if s, err = d.str(p.Val, "fault.kind"); err == nil {
					k, ok := kinds[s]
					if !ok {
						err = d.errf(p.Val.Line, "fault.kind: unknown kind %q (kinds: free, fork, swapout, flood, mprotect, crash, link-degrade, partition, budget-shrink)", s)
					} else {
						f.Kind, kindSet = k, true
					}
				}
			case "rank":
				f.Rank, err = d.intVal(p.Val, "fault.rank")
			case "buffer":
				f.Buffer, err = d.str(p.Val, "fault.buffer")
			case "util":
				f.Util, err = d.floatVal(p.Val, "fault.util")
			case "for_us":
				f.For, err = d.durUS(p.Val, "fault.for_us")
			case "node":
				f.Node, err = d.intVal(p.Val, "fault.node")
			case "frames":
				f.Frames, err = d.intVal(p.Val, "fault.frames")
			case "extra_latency_us":
				f.Degrade.ExtraLatency, err = d.durUS(p.Val, "fault.extra_latency_us")
			case "bandwidth_factor":
				f.Degrade.BandwidthFactor, err = d.floatVal(p.Val, "fault.bandwidth_factor")
			case "drop_prob":
				f.Degrade.DropProb, err = d.floatVal(p.Val, "fault.drop_prob")
			default:
				return d.errf(p.Line, "fault: unknown field %q (fields: at_us, kind, rank, buffer, util, for_us, node, frames, extra_latency_us, bandwidth_factor, drop_prob)", p.Key)
			}
			if err != nil {
				return err
			}
		}
		if !kindSet {
			return d.errf(it.Line, "fault is missing the required `kind` field")
		}
		sp.faults = append(sp.faults, f)
	}
	return nil
}

// decodeChaos parses the chaos profile section.
func (d *dec) decodeChaos(n *yamlite.Node, sp *Spec) error {
	if err := d.wantMap(n, "chaos"); err != nil {
		return err
	}
	prof := &chaos.Profile{}
	for _, p := range n.Pairs {
		var err error
		switch p.Key {
		case "horizon_us":
			prof.Horizon, err = d.durUS(p.Val, "chaos.horizon_us")
		case "interval_us":
			prof.Interval, err = d.durUS(p.Val, "chaos.interval_us")
		case "specs":
			err = d.decodeChaosSpecs(p.Val, prof)
		default:
			return d.errf(p.Line, "chaos: unknown field %q (fields: horizon_us, interval_us, specs)", p.Key)
		}
		if err != nil {
			return err
		}
	}
	if prof.Horizon <= 0 {
		return d.errf(n.Line, "chaos.horizon_us must be > 0")
	}
	if len(prof.Specs) == 0 {
		return d.errf(n.Line, "chaos: at least one spec is required")
	}
	sp.chaosProf = prof
	return nil
}

func (d *dec) decodeChaosSpecs(n *yamlite.Node, prof *chaos.Profile) error {
	if err := d.wantSeq(n, "chaos.specs"); err != nil {
		return err
	}
	classes := map[string]chaos.Class{
		"node-crash": chaos.NodeCrash, "link-degrade": chaos.LinkDegrade,
		"partition": chaos.Partition, "budget-shrink": chaos.BudgetShrink,
	}
	arrivals := map[string]chaos.Arrival{
		"poisson": chaos.Poisson, "uniform": chaos.Uniform, "burst": chaos.Burst,
	}
	for _, it := range n.Items {
		if err := d.wantMap(it, "chaos spec"); err != nil {
			return err
		}
		var cs chaos.Spec
		classSet := false
		for _, p := range it.Pairs {
			var err error
			switch p.Key {
			case "class":
				var s string
				if s, err = d.str(p.Val, "chaos.class"); err == nil {
					c, ok := classes[s]
					if !ok {
						err = d.errf(p.Val.Line, "chaos.class: unknown class %q (classes: node-crash, link-degrade, partition, budget-shrink)", s)
					} else {
						cs.Class, classSet = c, true
					}
				}
			case "arrival":
				var s string
				if s, err = d.str(p.Val, "chaos.arrival"); err == nil {
					a, ok := arrivals[s]
					if !ok {
						err = d.errf(p.Val.Line, "chaos.arrival: unknown arrival %q (arrivals: poisson, uniform, burst)", s)
					} else {
						cs.Arrival = a
					}
				}
			case "mean_gap_us":
				cs.MeanGap, err = d.durUS(p.Val, "chaos.mean_gap_us")
			case "jitter":
				cs.Jitter, err = d.floatVal(p.Val, "chaos.jitter")
			case "duration_us":
				cs.Duration, err = d.durUS(p.Val, "chaos.duration_us")
			case "duration_jitter":
				cs.DurationJitter, err = d.floatVal(p.Val, "chaos.duration_jitter")
			case "burst_len":
				cs.BurstLen, err = d.intVal(p.Val, "chaos.burst_len")
			case "nodes":
				if err = d.wantSeq(p.Val, "chaos.nodes"); err == nil {
					for _, nn := range p.Val.Items {
						var v int
						if v, err = d.intVal(nn, "chaos.nodes"); err != nil {
							break
						}
						cs.Nodes = append(cs.Nodes, v)
					}
				}
			case "extra_latency_us":
				cs.ExtraLatency, err = d.durUS(p.Val, "chaos.extra_latency_us")
			case "bandwidth_factor":
				cs.BandwidthFactor, err = d.floatVal(p.Val, "chaos.bandwidth_factor")
			case "drop_prob":
				cs.DropProb, err = d.floatVal(p.Val, "chaos.drop_prob")
			case "shrink_factor":
				cs.ShrinkFactor, err = d.floatVal(p.Val, "chaos.shrink_factor")
			case "frames":
				cs.Frames, err = d.intVal(p.Val, "chaos.frames")
			default:
				return d.errf(p.Line, "chaos spec: unknown field %q (fields: class, arrival, mean_gap_us, jitter, duration_us, duration_jitter, burst_len, nodes, extra_latency_us, bandwidth_factor, drop_prob, shrink_factor, frames)", p.Key)
			}
			if err != nil {
				return err
			}
		}
		if !classSet {
			return d.errf(it.Line, "chaos spec is missing the required `class` field")
		}
		if cs.MeanGap <= 0 {
			return d.errf(it.Line, "chaos spec: `mean_gap_us` must be > 0")
		}
		prof.Specs = append(prof.Specs, cs)
	}
	return nil
}

// LoadSpecData parses and compiles a spec without registering it.
func LoadSpecData(src []byte, file string) (*Scenario, error) {
	sp, err := ParseSpec(src, file)
	if err != nil {
		return nil, err
	}
	return sp.Compile()
}

// LoadSpecFile reads, parses, and compiles a spec file.
func LoadSpecFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return LoadSpecData(data, path)
}
