package scenario

import (
	"fmt"
	"sort"
	"strings"

	"omxsim/internal/chaos"
	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/experiments"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/report"
	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// floodCap bounds a flood fault with For == 0 in a scenario without a
// budget, so the event queue is guaranteed to drain.
const floodCap = sim.Second

// faultRetry is the poll interval while a buffer-targeted fault waits for
// the workload to register its target.
const faultRetry = 50 * sim.Microsecond

// Run executes the scenario and returns its structured result. The same
// (scenario, Options) pair always produces an identical Result: the
// simulation is deterministic and the report carries no wall-clock state.
func (s *Scenario) Run(opts Options) (*report.Result, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	res := &report.Result{Scenario: s.Name, Description: s.Description, Seed: opts.Seed}
	run := &Run{Scenario: s, Opts: opts, Result: res}

	var err error
	if s.Custom != nil {
		// Custom scenarios delegate to the experiments sweeps, which build
		// their own clusters with the default seed and run their full
		// config matrix — refuse the options they cannot honour rather
		// than misreport them.
		if opts.Policy != "" {
			return nil, fmt.Errorf("scenario %s: -policy is not supported (custom experiment sweep)", s.Name)
		}
		if opts.Seed != 1 {
			opts.Seed, run.Opts.Seed, res.Seed = 1, 1, 1
			res.Note("custom experiment sweeps use the default seed; -seed ignored")
		}
		err = s.Custom(run)
	} else {
		err = s.runDeclarative(run)
	}
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}

	for _, cr := range run.Cases {
		res.Cases = append(res.Cases, report.Case{
			Label:   cr.id(),
			Size:    cr.Size,
			Policy:  cr.PolicyName,
			Metrics: cr.Metrics,
			Notes:   cr.Notes,
			Chaos:   cr.chaosSeries,
		})
	}
	// The teardown invariant is checked on every scenario, not just those
	// that opt in: a cell whose endpoints closed with pages still pinned
	// (stats.pinned_after_close, set by runCell) must fail the run. It
	// runs last so the scenario's own assertions keep their positions.
	assertions := append(append([]Assertion{}, s.Assertions...), noTeardownLeak())
	for _, a := range assertions {
		ok, detail := a.Check(run)
		res.Assertions = append(res.Assertions, report.Assertion{Name: a.Name, Passed: ok, Detail: detail})
	}
	res.Passed = !res.Failed()
	return res, nil
}

// defaultCase is the single cell scenarios without a Cases matrix run
// (PolicyLabels advertises its label through `omxsim list`).
func defaultCase() Case {
	return Case{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)}
}

// cases resolves the case matrix after the -policy filter.
func (s *Scenario) cases(opts Options) ([]Case, error) {
	cases := s.Cases
	if len(cases) == 0 {
		cases = []Case{defaultCase()}
	}
	if opts.Policy == "" {
		return cases, nil
	}
	var kept []Case
	var labels []string
	for _, c := range cases {
		labels = append(labels, c.Label)
		if strings.EqualFold(c.Label, opts.Policy) || strings.EqualFold(c.OMX.PolicyLabel(), opts.Policy) {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("no case matches -policy %q (cases: %s)", opts.Policy, strings.Join(labels, ", "))
	}
	return kept, nil
}

// sizeSchedule resolves the sweep points (a single zero-size point when the
// scenario has no sweep).
func (s *Scenario) sizeSchedule(opts Options) []int {
	sizes := s.Sizes
	if opts.Quick && len(s.QuickSizes) > 0 {
		sizes = s.QuickSizes
	}
	if len(sizes) == 0 {
		return []int{0}
	}
	return sizes
}

func (s *Scenario) runDeclarative(run *Run) error {
	cases, err := s.cases(run.Opts)
	if err != nil {
		return err
	}
	sizes := s.sizeSchedule(run.Opts)
	if len(s.Sizes) > 0 {
		run.Result.Param("sizes", sizeList(sizes))
	}
	for _, c := range cases {
		for _, size := range sizes {
			cr, err := s.runCell(run, c, size)
			if err != nil {
				return err
			}
			run.Cases = append(run.Cases, cr)
		}
	}
	if s.Report != nil {
		s.Report(run)
	}
	s.buildTables(run, cases, sizes)
	return nil
}

// runCell builds one cluster, injects the faults, drives the workload, and
// collects the statistics.
func (s *Scenario) runCell(run *Run, c Case, size int) (*CaseRun, error) {
	cr := &CaseRun{
		Case:       c,
		Size:       size,
		PolicyName: c.OMX.PolicyLabel(),
		Quick:      run.Opts.Quick,
		Metrics:    make(map[string]float64),
		buffers:    make(map[string]bufRef),
	}
	cfg := s.Cluster
	cfg.OMX = c.OMX
	cfg.Seed = run.Opts.Seed
	cr.Seed = run.Opts.Seed
	if run.Opts.Shards != 0 {
		cfg.Shards = run.Opts.Shards
	}
	if c.Tweak != nil {
		c.Tweak(&cfg)
	}
	// Chaos recorders and the compiled fault schedule arm first, so the
	// one-shot injectors below can record into the same stress report.
	if s.chaosEnabled() {
		seed := run.Opts.ChaosSeed
		if seed == 0 {
			seed = run.Opts.Seed
		}
		profile := s.Chaos
		cfg.OnBuild = append(cfg.OnBuild, func(cl *cluster.Cluster) {
			armChaos(cl, cr, profile, seed)
		})
	}
	// Fault events arm through the cluster's OnBuild hook, composing with
	// any hooks the scenario or case tweak installed.
	cfg.OnBuild = append(cfg.OnBuild, func(cl *cluster.Cluster) {
		for _, f := range s.Faults {
			scheduleFault(cl, cr, f, s.Budget)
		}
	})
	cl, err := cluster.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("case %s: %w", cr.id(), err)
	}
	cr.Cluster = cl
	body := func(mc *mpi.Comm) { s.Workload(mc, cr) }
	if s.Budget > 0 {
		cr.Completed = cl.RunFor(s.Budget, body)
	} else {
		cl.Run(body)
		cr.Completed = true
	}
	collectStats(cr)
	collectChaos(cr)
	// Tear the endpoints down: the policy contract says no backend may
	// leave pages pinned once its endpoints are gone. A leak here fails
	// the run through the implicit noTeardownLeak assertion.
	if leaked := cl.Close(); leaked != 0 {
		cr.Metric("stats.pinned_after_close", float64(leaked))
		cr.Note("TEARDOWN LEAK: %d pages still pinned after endpoint close", leaked)
	}
	return cr, nil
}

// noTeardownLeak is the implicit assertion Run applies to every
// scenario: endpoint teardown must drop every pin (vacuously true for
// Custom scenarios, which manage their own clusters and never set the
// metric).
func noTeardownLeak() Assertion {
	return EachCase("no pinned pages after teardown", func(cr *CaseRun) (bool, string) {
		if leaked := cr.Metrics["stats.pinned_after_close"]; leaked > 0 {
			return false, fmt.Sprintf("%g pages still pinned after endpoint close", leaked)
		}
		return true, ""
	})
}

// chaosEnabled reports whether the cell needs chaos recorders: a chaos
// profile, or any node-class one-shot fault.
func (s *Scenario) chaosEnabled() bool {
	if s.Chaos != nil {
		return true
	}
	for _, f := range s.Faults {
		switch f.Kind {
		case FaultCrash, FaultLinkDegrade, FaultPartition, FaultBudgetShrink:
			return true
		}
	}
	return false
}

// armChaos sets up the cell's chaos machinery at cluster-build time: one
// stress recorder per node, the abort and pin-churn hooks feeding them,
// and — when a profile is present — the compiled fault schedule. Every
// planned event arms as a foreground event on its target node's own
// engine, so chaos injection stays shard-local and the schedule is
// identical whatever the shard count.
func armChaos(cl *cluster.Cluster, cr *CaseRun, p *chaos.Profile, seed int64) {
	recs := make([]*chaos.Recorder, len(cl.Nodes))
	for i := range recs {
		recs[i] = chaos.NewRecorder(p.BucketInterval())
	}
	cr.chaosRecs = recs
	for _, n := range cl.Nodes {
		n := n
		rec := recs[n.ID]
		n.SetAbortHook(func(omx.ReqKind, error) { rec.Abort(n.Eng.Now()) })
	}
	for _, proc := range cl.Processes() {
		n := proc.Node()
		rec := recs[n.ID]
		proc.Manager().OnPinChurn = func(pages int, pinned bool) {
			rec.PinChurn(n.Eng.Now(), pages, pinned)
		}
	}
	for _, ev := range p.Plan(seed, len(cl.Nodes)) {
		ev := ev
		n := cl.Nodes[ev.Node]
		n.Eng.After(sim.Duration(ev.At), func() {
			chaos.Apply(n, ev, recs[ev.Node])
		})
	}
}

// collectChaos folds the per-node stress recorders into chaos metrics and
// the report's per-interval time series. Recorders merge in node order,
// so the series is deterministic across shard counts.
func collectChaos(cr *CaseRun) {
	if cr.chaosRecs == nil {
		return
	}
	merged := chaos.Merge(cr.chaosRecs)
	t := chaos.Totals(merged)
	cr.Metric("stats.chaos_faults", float64(t.Faults))
	cr.Metric("stats.chaos_recoveries", float64(t.Recoveries))
	cr.Metric("stats.chaos_aborts", float64(t.Aborts))
	inflight := 0
	for _, n := range cr.Cluster.Nodes {
		inflight += n.InFlightRequests()
	}
	cr.Metric("stats.requests_inflight_end", float64(inflight))
	series := &report.ChaosSeries{
		IntervalUS: float64(cr.chaosRecs[0].Interval()) / float64(sim.Microsecond),
	}
	for _, b := range merged {
		series.Intervals = append(series.Intervals, report.ChaosInterval{
			Faults:     b.Faults,
			Recoveries: b.Recoveries,
			Aborts:     b.Aborts,
			PinPages:   b.PinPages,
			UnpinPages: b.UnpinPages,
		})
	}
	cr.chaosSeries = series
}

// scheduleNodeFault arms a one-shot node-class fault. Like the planned
// chaos schedule, the event fires on the target node's own shard engine
// and records into that node's stress recorder.
func scheduleNodeFault(cl *cluster.Cluster, cr *CaseRun, f Fault) {
	if f.Node < 0 || f.Node >= len(cl.Nodes) {
		cl.Eng.After(f.At, func() {
			cr.Note("t=%v: %v fault: no node %d", cl.Eng.Now(), f.Kind, f.Node)
		})
		return
	}
	ev := chaos.Event{
		Node:            f.Node,
		Duration:        f.For,
		Frames:          f.Frames,
		ExtraLatency:    f.Degrade.ExtraLatency,
		BandwidthFactor: f.Degrade.BandwidthFactor,
		DropProb:        f.Degrade.DropProb,
	}
	switch f.Kind {
	case FaultCrash:
		ev.Class = chaos.NodeCrash
	case FaultLinkDegrade:
		ev.Class = chaos.LinkDegrade
	case FaultPartition:
		ev.Class = chaos.Partition
	case FaultBudgetShrink:
		ev.Class = chaos.BudgetShrink
	}
	n := cl.Nodes[f.Node]
	n.Eng.After(f.At, func() {
		chaos.Apply(n, ev, cr.chaosRecs[f.Node])
	})
}

// scheduleFault arms one fault event. Every injector runs on the engine
// that owns its target node, so fault work stays shard-local in sharded
// runs: the flood arms per-node bottom-half generators on each node's own
// engine, and rank-targeted faults fire where the rank's address space
// lives.
func scheduleFault(cl *cluster.Cluster, cr *CaseRun, f Fault, budget sim.Duration) {
	switch f.Kind {
	case FaultCrash, FaultLinkDegrade, FaultPartition, FaultBudgetShrink:
		scheduleNodeFault(cl, cr, f)
		return
	}
	if f.Kind == FaultFlood {
		window := f.For
		if window == 0 && budget == 0 {
			window = floodCap
		}
		// Node 0's injector writes the note on behalf of all of them.
		for _, n := range cl.Nodes {
			n := n
			eng := n.Eng
			eng.After(f.At, func() {
				stop := experiments.StartFlood(eng, n.RxCore(), f.Util)
				if window > 0 {
					eng.After(window, stop)
				}
				if n.ID == 0 {
					cr.Note("t=%v: flood util=%.2f window=%v", eng.Now(), f.Util, window)
				}
			})
		}
		return
	}
	if f.Rank < 0 || f.Rank >= len(cl.Endpoints) {
		cl.Eng.After(f.At, func() {
			cr.Note("t=%v: %v fault: no rank %d", cl.Eng.Now(), f.Kind, f.Rank)
		})
		return
	}
	ep := cl.Endpoints[f.Rank]
	eng := ep.Node().Eng
	var fire func()
	fire = func() {
		switch f.Kind {
		case FaultFork:
			if _, err := ep.AS.Fork(9000 + f.Rank); err != nil {
				cr.Note("t=%v: fork fault on rank %d failed: %v", eng.Now(), f.Rank, err)
				return
			}
			cr.Note("t=%v: forked rank %d address space (COW)", eng.Now(), f.Rank)
		case FaultFree, FaultSwapOut, FaultMProtect:
			addr, size, ok := cr.Buffer(f.Rank, f.Buffer)
			if !ok {
				// The workload has not registered the target yet; poll
				// until it does or the run ends.
				if !cl.World.AllDone() {
					eng.After(faultRetry, fire)
				} else {
					cr.Note("t=%v: %v fault never fired: buffer %d/%s was never registered",
						eng.Now(), f.Kind, f.Rank, f.Buffer)
				}
				return
			}
			if f.Kind == FaultFree {
				if err := ep.Free(addr); err != nil {
					cr.Note("t=%v: free fault on %d/%s failed: %v", eng.Now(), f.Rank, f.Buffer, err)
					return
				}
				cr.Note("t=%v: freed %d/%s (%s)", eng.Now(), f.Rank, f.Buffer, report.Bytes(size))
			} else if f.Kind == FaultMProtect {
				if err := ep.AS.MProtect(addr, size, false); err != nil {
					cr.Note("t=%v: mprotect fault on %d/%s failed: %v", eng.Now(), f.Rank, f.Buffer, err)
					return
				}
				cr.Note("t=%v: write-protected %d/%s (%s)", eng.Now(), f.Rank, f.Buffer, report.Bytes(size))
			} else {
				n, err := ep.AS.SwapOut(addr, size)
				if err != nil {
					cr.Note("t=%v: swapout fault on %d/%s failed: %v", eng.Now(), f.Rank, f.Buffer, err)
					return
				}
				cr.Note("t=%v: swapped out %d pages of %d/%s", eng.Now(), n, f.Rank, f.Buffer)
			}
		}
	}
	eng.After(f.At, fire)
}

// collectStats folds the cluster's protocol counters and every endpoint's
// manager/cache counters into "stats."-prefixed metrics.
func collectStats(cr *CaseRun) {
	cl := cr.Cluster
	st := cl.Stats()
	set := cr.Metric
	set("stats.elapsed_us", cl.Now().Micros())
	// Simulator-speed trajectory: events dispatched for this cell (divide by
	// host wall clock to get events/sec; see PERFORMANCE.md). Foreground
	// only: daemon ticks (kswapd) run up to shard-layout-dependent window
	// boundaries and would break report invariance across shard counts.
	set("stats.events_fired", float64(cl.ForegroundEventsFired()))
	set("stats.frames_rx", float64(st.FramesRx))
	set("stats.pull_replies", float64(st.PullRepliesRx))
	set("stats.overlap_misses", float64(st.OverlapMissSender+st.OverlapMissReceiver))
	set("stats.rereqs", float64(st.ReRequests))
	set("stats.retransmits", float64(st.Retransmits))
	set("stats.req_aborts", float64(st.ReqAborts))
	set("stats.crashes", float64(st.Crashes))
	set("stats.restarts", float64(st.Restarts))

	// Reclaim counters are per node (one PhysMem per host), swap-in
	// counts per process address space.
	var rs vm.ReclaimStats
	swappedEnd, peakOccupied := 0, 0
	for _, n := range cl.Nodes {
		s := n.Phys.ReclaimStats()
		rs.PgScan += s.PgScan
		rs.PgSteal += s.PgSteal
		rs.PinnedResists += s.PinnedResists
		rs.KswapdRuns += s.KswapdRuns
		rs.KswapdSteals += s.KswapdSteals
		rs.DirectStalls += s.DirectStalls
		rs.DirectSteals += s.DirectSteals
		rs.Failures += s.Failures
		swappedEnd += n.Phys.SwappedPages()
		peakOccupied += n.Phys.PeakOccupied()
	}
	set("stats.pgscan", float64(rs.PgScan))
	set("stats.pgsteal", float64(rs.PgSteal))
	set("stats.pinned_resists", float64(rs.PinnedResists))
	set("stats.kswapd_runs", float64(rs.KswapdRuns))
	set("stats.kswapd_steals", float64(rs.KswapdSteals))
	set("stats.direct_reclaim_stalls", float64(rs.DirectStalls))
	set("stats.direct_reclaim_steals", float64(rs.DirectSteals))
	set("stats.reclaim_failures", float64(rs.Failures))
	set("stats.swapped_pages_end", float64(swappedEnd))
	set("stats.peak_occupied_pages", float64(peakOccupied))

	var mgr core.Stats
	var cache core.CacheStats
	var swapIns uint64
	pinnedNow := 0
	// Endpoints sharing a process share one manager and one cache; fold
	// each in once.
	for _, p := range cl.Processes() {
		swapIns += p.AS.SwapIns()
		m := p.Manager().Stats()
		mgr.Declares += m.Declares
		mgr.PinOps += m.PinOps
		mgr.UnpinOps += m.UnpinOps
		mgr.PagesPinned += m.PagesPinned
		mgr.PagesUnpinned += m.PagesUnpinned
		mgr.Repins += m.Repins
		mgr.InvalidateHits += m.InvalidateHits
		mgr.LRUUnpins += m.LRUUnpins
		mgr.PinFailures += m.PinFailures
		mgr.AcquiresPinned += m.AcquiresPinned
		mgr.AcquiresUnpinned += m.AcquiresUnpinned
		mgr.SpeculativePins += m.SpeculativePins
		mgr.ODPFaults += m.ODPFaults
		mgr.ODPFaultPages += m.ODPFaultPages
		c := p.Cache().Stats()
		cache.Hits += c.Hits
		cache.SubrangeHits += c.SubrangeHits
		cache.Misses += c.Misses
		cache.Coalesced += c.Coalesced
		cache.Merges += c.Merges
		cache.Evictions += c.Evictions
		cache.Invalidations += c.Invalidations
		cache.BytesCached += c.BytesCached
		pinnedNow += p.Manager().PinnedPages()
	}
	set("stats.declares", float64(mgr.Declares))
	set("stats.pin_ops", float64(mgr.PinOps))
	set("stats.unpin_ops", float64(mgr.UnpinOps))
	set("stats.pages_pinned", float64(mgr.PagesPinned))
	set("stats.pages_unpinned", float64(mgr.PagesUnpinned))
	set("stats.repins", float64(mgr.Repins))
	set("stats.invalidate_hits", float64(mgr.InvalidateHits))
	set("stats.lru_unpins", float64(mgr.LRUUnpins))
	set("stats.pin_failures", float64(mgr.PinFailures))
	set("stats.acquires_pinned", float64(mgr.AcquiresPinned))
	set("stats.acquires_unpinned", float64(mgr.AcquiresUnpinned))
	set("stats.speculative_pins", float64(mgr.SpeculativePins))
	set("stats.odp_faults", float64(mgr.ODPFaults))
	set("stats.odp_fault_pages", float64(mgr.ODPFaultPages))
	set("stats.cache_hits", float64(cache.Hits))
	set("stats.cache_subrange_hits", float64(cache.SubrangeHits))
	set("stats.cache_misses", float64(cache.Misses))
	set("stats.cache_coalesced", float64(cache.Coalesced))
	set("stats.cache_merges", float64(cache.Merges))
	set("stats.cache_evictions", float64(cache.Evictions))
	set("stats.cache_invalidations", float64(cache.Invalidations))
	set("stats.cache_bytes", float64(cache.BytesCached))
	set("stats.pinned_pages_end", float64(pinnedNow))
	set("stats.swap_ins", float64(swapIns))
}

// buildTables renders the automatic tables: the size × case matrix of the
// primary metric for sweep scenarios, and a per-case summary of every
// workload-recorded (non-"stats.") metric.
func (s *Scenario) buildTables(run *Run, cases []Case, sizes []int) {
	cell := func(label string, size int) *CaseRun {
		for _, cr := range run.Cases {
			if cr.Case.Label == label && cr.Size == size {
				return cr
			}
		}
		return nil
	}
	if s.Metric != "" && len(sizes) > 1 {
		t := report.Table{
			Title:   fmt.Sprintf("%s by message size", s.Metric),
			Columns: append([]string{"size"}, caseLabels(cases)...),
		}
		for _, size := range sizes {
			row := []string{report.Bytes(size)}
			for _, c := range cases {
				if cr := cell(c.Label, size); cr != nil {
					row = append(row, report.F(cr.Metrics[s.Metric], 1))
				} else {
					row = append(row, "-")
				}
			}
			t.Rows = append(t.Rows, row)
		}
		run.Result.AddTable(t)
		return
	}

	names := workloadMetricNames(run.Cases)
	if len(names) == 0 {
		return
	}
	t := report.Table{Title: "results", Columns: append([]string{"case"}, names...)}
	for _, cr := range run.Cases {
		row := []string{cr.id()}
		for _, n := range names {
			if v, ok := cr.Metrics[n]; ok {
				row = append(row, report.F(v, 1))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	run.Result.AddTable(t)
}

// workloadMetricNames is the sorted union of non-"stats." metric names.
// "kv."-prefixed latency metrics are excluded too: the kvserve Report hook
// renders them in its own latency table, which would otherwise be
// duplicated (transposed and unreadable) in the automatic results table.
func workloadMetricNames(cases []*CaseRun) []string {
	seen := make(map[string]bool)
	for _, cr := range cases {
		for n := range cr.Metrics {
			if !strings.HasPrefix(n, "stats.") && !strings.HasPrefix(n, "kv.") {
				seen[n] = true
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func caseLabels(cases []Case) []string {
	out := make([]string, len(cases))
	for i, c := range cases {
		out[i] = c.Label
	}
	return out
}

func sizeList(sizes []int) string {
	parts := make([]string, len(sizes))
	for i, s := range sizes {
		parts[i] = report.Bytes(s)
	}
	return strings.Join(parts, ",")
}
