package scenario

import (
	"strings"
	"testing"

	"omxsim/internal/mpi"
)

// tinyScenario is a cheap two-node eager-path workload for runner tests.
func tinyScenario(name string, assertions ...Assertion) *Scenario {
	return &Scenario{
		Name:        name,
		Description: "test scenario",
		Workload: func(c *mpi.Comm, cr *CaseRun) {
			const n = 16 * 1024
			buf := c.Malloc(n)
			if c.Rank() == 0 {
				c.Send(buf, n, 1, 9)
				cr.Metric("mbps", 123)
			} else {
				c.Recv(buf, n, 0, 9)
			}
		},
		Assertions: assertions,
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	s := tinyScenario("t-dup")
	if err := Register(s); err != nil {
		t.Fatal(err)
	}
	defer unregister("t-dup")
	dup := tinyScenario("t-dup")
	dup.Source = SourceFile
	err := Register(dup)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate registration not rejected: %v", err)
	}
	// The error must name both sides: the survivor's source and the
	// rejected registration's.
	for _, want := range []string{SourceBuiltinGo, SourceFile} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("duplicate error does not name source %q: %v", want, err)
		}
	}
}

func TestRegisterValidates(t *testing.T) {
	if err := Register(&Scenario{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register(&Scenario{Name: "t-empty"}); err == nil {
		unregister("t-empty")
		t.Fatal("scenario without workload or custom accepted")
	}
}

func TestBuiltinsRegisteredAndSorted(t *testing.T) {
	names := Names()
	for _, want := range []string{
		"pingpong", "figure6", "figure7", "imb", "imb-all", "npbis",
		"overlapmiss", "overload", "pinbench", "quickstart", "pincache",
		"rendezvous", "adaptive", "mixed-policy", "faults",
		"policy-swapout", "policy-fork", "policy-flood", "multitenant",
	} {
		if _, ok := Get(want); !ok {
			t.Errorf("builtin scenario %q not registered", want)
		}
	}
	if len(names) < 6 {
		t.Fatalf("only %d scenarios registered", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestAssertionFailurePropagates(t *testing.T) {
	s := tinyScenario("t-fail", MetricAtLeast("mbps", 1e9))
	res, err := s.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed || !res.Failed() {
		t.Fatal("failing assertion did not fail the result")
	}
	// The scenario's own assertion comes first; the runner appends the
	// implicit teardown-leak check after it.
	if len(res.Assertions) != 2 || res.Assertions[0].Passed {
		t.Fatalf("assertion record wrong: %+v", res.Assertions)
	}
	if res.Assertions[0].Detail == "" {
		t.Fatal("failing assertion carries no detail")
	}
	if last := res.Assertions[1]; last.Name != "no pinned pages after teardown" || !last.Passed {
		t.Fatalf("implicit teardown assertion wrong: %+v", last)
	}
}

func TestAssertionPassPropagates(t *testing.T) {
	s := tinyScenario("t-pass", MetricAtLeast("mbps", 1), Completed())
	res, err := s.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed || res.Failed() {
		t.Fatalf("passing assertions did not pass the result: %+v", res.Assertions)
	}
}

func TestMissingMetricFailsAssertion(t *testing.T) {
	s := tinyScenario("t-missing", MetricPositive("no_such_metric"))
	res, err := s.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("assertion on unrecorded metric passed")
	}
}

func TestPolicyFilter(t *testing.T) {
	s, ok := Get("rendezvous")
	if !ok {
		t.Fatal("rendezvous not registered")
	}
	res, err := s.Run(Options{Policy: "overlapped"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 1 || res.Cases[0].Policy != "overlapped" {
		t.Fatalf("policy filter kept wrong cases: %+v", res.Cases)
	}
	if _, err := s.Run(Options{Policy: "no-such-policy"}); err == nil {
		t.Fatal("unknown -policy accepted")
	}
}

func TestRunByNameUnknown(t *testing.T) {
	if _, err := RunByName("definitely-not-registered", Options{}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
