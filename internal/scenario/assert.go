package scenario

import "fmt"

// Assertion is one named predicate over a finished Run.
type Assertion struct {
	Name  string
	Check func(run *Run) (ok bool, detail string)
}

// EachCase builds an assertion that must hold on every case cell; the first
// failing cell is reported.
func EachCase(name string, check func(cr *CaseRun) (bool, string)) Assertion {
	return Assertion{Name: name, Check: func(run *Run) (bool, string) {
		for _, cr := range run.Cases {
			if ok, detail := check(cr); !ok {
				return false, fmt.Sprintf("%s: %s", cr.id(), detail)
			}
		}
		return true, ""
	}}
}

// EachCaseWhere builds an assertion checked on every case cell selected
// by want. It passes vacuously when no cell matches — which is what a
// cross-case claim must do under the -policy filter, where the cells it
// speaks about may not have run at all.
func EachCaseWhere(name string, want func(cr *CaseRun) bool, check func(cr *CaseRun) (bool, string)) Assertion {
	return Assertion{Name: name, Check: func(run *Run) (bool, string) {
		for _, cr := range run.Cases {
			if !want(cr) {
				continue
			}
			if ok, detail := check(cr); !ok {
				return false, fmt.Sprintf("%s: %s", cr.id(), detail)
			}
		}
		return true, ""
	}}
}

// PolicyCases selects the cells running the named policy backends (for
// EachCaseWhere).
func PolicyCases(names ...string) func(cr *CaseRun) bool {
	return func(cr *CaseRun) bool {
		for _, n := range names {
			if cr.PolicyName == n {
				return true
			}
		}
		return false
	}
}

// AnyCase builds an assertion satisfied by at least one case cell.
func AnyCase(name string, check func(cr *CaseRun) (bool, string)) Assertion {
	return Assertion{Name: name, Check: func(run *Run) (bool, string) {
		var last string
		for _, cr := range run.Cases {
			ok, detail := check(cr)
			if ok {
				return true, ""
			}
			last = fmt.Sprintf("%s: %s", cr.id(), detail)
		}
		return false, last
	}}
}

// MetricAtLeast asserts metric >= min in every case.
func MetricAtLeast(metric string, min float64) Assertion {
	return EachCase(fmt.Sprintf("%s >= %g", metric, min), func(cr *CaseRun) (bool, string) {
		v, ok := cr.Metrics[metric]
		if !ok {
			return false, fmt.Sprintf("metric %q not recorded", metric)
		}
		if v < min {
			return false, fmt.Sprintf("%s = %g < %g", metric, v, min)
		}
		return true, ""
	})
}

// MetricPositive asserts metric > 0 in every case.
func MetricPositive(metric string) Assertion {
	a := EachCase(fmt.Sprintf("%s > 0", metric), func(cr *CaseRun) (bool, string) {
		v, ok := cr.Metrics[metric]
		if !ok {
			return false, fmt.Sprintf("metric %q not recorded", metric)
		}
		if v <= 0 {
			return false, fmt.Sprintf("%s = %g", metric, v)
		}
		return true, ""
	})
	return a
}

// MetricBelow asserts metric < max in every case.
func MetricBelow(metric string, max float64) Assertion {
	return EachCase(fmt.Sprintf("%s < %g", metric, max), func(cr *CaseRun) (bool, string) {
		v, ok := cr.Metrics[metric]
		if !ok {
			return false, fmt.Sprintf("metric %q not recorded", metric)
		}
		if v >= max {
			return false, fmt.Sprintf("%s = %g >= %g", metric, v, max)
		}
		return true, ""
	})
}

// PinAccountingBalanced asserts, in every case, that the driver's pin
// ledger balances: every page ever pinned was either unpinned again or is
// still accounted as pinned at the end of the run — the scenario-level
// form of the policy-contract leak check.
func PinAccountingBalanced() Assertion {
	return EachCase("pin accounting balances", func(cr *CaseRun) (bool, string) {
		pinned := cr.Metrics["stats.pages_pinned"]
		unpinned := cr.Metrics["stats.pages_unpinned"]
		end := cr.Metrics["stats.pinned_pages_end"]
		if pinned != unpinned+end {
			return false, fmt.Sprintf("pinned %g != unpinned %g + still-pinned %g",
				pinned, unpinned, end)
		}
		return true, ""
	})
}

// Completed asserts every case ran all ranks to completion (no budget
// expiry).
func Completed() Assertion {
	return EachCase("all ranks completed", func(cr *CaseRun) (bool, string) {
		if !cr.Completed {
			return false, "budget expired with ranks still blocked"
		}
		return true, ""
	})
}
