// builtin.go registers the paper's evaluation section as scenarios: every
// experiment the six old ad-hoc binaries used to hard-wire.
package scenario

import (
	"fmt"

	"omxsim/internal/core"
	"omxsim/internal/experiments"
	"omxsim/internal/imb"
	"omxsim/internal/mpi"
	"omxsim/internal/npb"
	"omxsim/internal/omx"
	"omxsim/internal/report"
)

// figure7Matrix is the paper's Figure 7 pin-policy matrix.
func figure7Matrix() []Case {
	return []Case{
		{Label: "regular", OMX: omx.DefaultConfig(core.PinEachComm, false)},
		{Label: "overlapped", OMX: omx.DefaultConfig(core.Overlapped, false)},
		{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
		{Label: "overlapped-cache", OMX: omx.DefaultConfig(core.Overlapped, true)},
	}
}

// figure6Matrix is the paper's Figure 6 matrix: pin-per-communication vs
// permanent pinning, with and without I/OAT copy offload.
func figure6Matrix() []Case {
	mk := func(policy core.PinPolicy, cache, ioat bool) omx.Config {
		cfg := omx.DefaultConfig(policy, cache)
		cfg.UseIOAT = ioat
		return cfg
	}
	return []Case{
		{Label: "pin-per-comm", OMX: mk(core.PinEachComm, false, false)},
		{Label: "permanent", OMX: mk(core.Permanent, true, false)},
		{Label: "pin-per-comm+ioat", OMX: mk(core.PinEachComm, false, true)},
		{Label: "permanent+ioat", OMX: mk(core.Permanent, true, true)},
	}
}

// pingPongWorkload runs IMB PingPong at the cell's size and records the
// throughput on rank 0.
func pingPongWorkload(c *mpi.Comm, cr *CaseRun) {
	r := imb.PingPong(c, cr.Size, imb.Iterations(cr.Size))
	if c.Rank() == 0 {
		cr.Metric("mbps", r.MBps)
	}
}

// legacyPingPong is the Go twin of specs/pingpong.yaml: the policy
// matrix on a reduced size schedule — Figure 7's four curves plus the
// Permanent upper bound, the QsNet-style NoPinning ideal the paper's
// conclusion points at, and the two post-paper backends (NP-RDMA-style
// ODP, eBPF-mm-style pin-ahead). The registered scenario compiles from
// the spec; this constructor stays for the equivalence tests that prove
// both paths produce byte-identical reports.
func legacyPingPong() *Scenario {
	return &Scenario{
		Name:        "pingpong",
		Description: "IMB PingPong throughput across the full pinning-policy matrix",
		Cases:       fullPolicyMatrix(),
		Sizes:       []int{256 * 1024, 1 << 20, 4 << 20, 16 << 20},
		QuickSizes:  []int{1 << 20},
		Metric:      "mbps",
		Workload:    pingPongWorkload,
		Assertions:  []Assertion{MetricPositive("mbps"), Completed()},
	}
}

func init() {
	// figure6: the paper's Figure 6 sweep.
	MustRegister(&Scenario{
		Name:        "figure6",
		Description: "Figure 6: PingPong, pin-per-communication vs permanent pinning, with/without I/OAT",
		Cases:       figure6Matrix(),
		Sizes:       imb.LargeSizes(),
		QuickSizes:  []int{64 * 1024, 1 << 20, 16 << 20},
		Metric:      "mbps",
		Workload:    pingPongWorkload,
		Assertions:  []Assertion{MetricPositive("mbps"), Completed()},
	})

	// figure7: the paper's Figure 7 sweep.
	MustRegister(&Scenario{
		Name:        "figure7",
		Description: "Figure 7: PingPong, regular vs overlapped pinning vs pinning cache vs both",
		Cases:       figure7Matrix(),
		Sizes:       imb.LargeSizes(),
		QuickSizes:  []int{64 * 1024, 1 << 20, 16 << 20},
		Metric:      "mbps",
		Workload:    pingPongWorkload,
		Assertions:  []Assertion{MetricPositive("mbps"), Completed()},
	})

	// imb: the IMB rows of Table 2 (improvement vs regular pinning).
	MustRegister(&Scenario{
		Name:        "imb",
		Description: "Table 2 (IMB rows): execution-time improvement from the pinning cache and overlapped pinning",
		Custom:      runIMBTable2,
		Assertions: []Assertion{
			MetricAtLeast("cache_pct", -100),
			MetricAtLeast("overlap_pct", -100),
		},
	})

	// imb-all: the comparison extended past the paper's kernel set (the
	// old imbbench -all).
	MustRegister(&Scenario{
		Name:        "imb-all",
		Description: "Table 2 extended to every implemented IMB kernel (plus PingPing, Alltoall, Gather, Scatter, Barrier)",
		Custom:      runIMBAll,
		Assertions: []Assertion{
			MetricAtLeast("cache_pct", -100),
			MetricAtLeast("overlap_pct", -100),
		},
	})

	// npbis: the NPB IS row of Table 2, plus the CG-like small-message
	// surrogate (§4.4's "other NAS tests do not vary much").
	MustRegister(&Scenario{
		Name:        "npbis",
		Description: "Table 2 (NPB rows): IS on 4 ranks over 2 nodes, with the CG small-message surrogate",
		Custom:      runNPB,
		Assertions: []Assertion{
			MetricAtLeast("verified", 1),
		},
	})

	// overlapmiss: the §4.3 counters under normal load and the
	// overloaded-core collapse.
	MustRegister(&Scenario{
		Name:        "overlapmiss",
		Description: "Section 4.3: overlap-miss rate under normal load, and the overloaded-core throughput collapse",
		Custom:      runOverlapMiss,
		Assertions: []Assertion{
			{Name: "normal-load miss rate < 1e-2", Check: func(run *Run) (bool, string) {
				for _, cr := range run.Cases {
					if cr.Param("load") == "normal" {
						if rate := cr.Metrics["miss_rate"]; rate >= 0.01 {
							return false, fmt.Sprintf("miss_rate = %g", rate)
						}
						return true, ""
					}
				}
				return false, "no normal-load case"
			}},
			{Name: "overload collapses throughput", Check: func(run *Run) (bool, string) {
				var normal, overloaded float64
				for _, cr := range run.Cases {
					switch cr.Param("load") {
					case "normal":
						normal = cr.Metrics["mbps"]
					case "overloaded":
						overloaded = cr.Metrics["mbps"]
					}
				}
				if normal == 0 || overloaded == 0 {
					return false, fmt.Sprintf("mbps missing (normal=%g overloaded=%g)", normal, overloaded)
				}
				if overloaded >= normal/2 {
					return false, fmt.Sprintf("overloaded %.1f MiB/s vs normal %.1f MiB/s", overloaded, normal)
				}
				return true, ""
			}},
		},
	})

	// overload: the flood-level ablation behind §4.3.
	MustRegister(&Scenario{
		Name:        "overload",
		Description: "Interrupt-flood sweep: goodput and miss rate vs bottom-half load on the pinning core",
		Custom:      runFloodSweep,
		Assertions:  []Assertion{MetricAtLeast("mbps", 0)},
	})

	// pinbench: Table 1, the pin+unpin micro-costs per host.
	MustRegister(&Scenario{
		Name:        "pinbench",
		Description: "Table 1: base and per-page pin+unpin overhead and pinning throughput per evaluation host",
		Custom:      runTable1,
		Assertions: []Assertion{
			MetricPositive("ns_per_page"),
			MetricPositive("base_us"),
		},
	})
}

// runIMBTable2 wraps experiments.Table2IMB (the paper's kernel set) as a
// scenario.
func runIMBTable2(run *Run) error {
	return runIMBRows(run, experiments.Table2IMB)
}

// runIMBAll extends the sweep to every implemented kernel.
func runIMBAll(run *Run) error {
	return runIMBRows(run, func(sizes []int) []experiments.Table2Row {
		return experiments.Table2AllIMB(sizes, func(string) bool { return true })
	})
}

func runIMBRows(run *Run, rows func(sizes []int) []experiments.Table2Row) error {
	sizes := imb.DefaultSizes()
	if run.Opts.Quick {
		sizes = []int{4096, 256 * 1024, 4 << 20}
	}
	run.Result.Param("sizes", sizeList(sizes))
	t := report.Table{
		Title:   "execution-time improvement vs regular pinning",
		Columns: []string{"application", "pinning-cache", "overlapping"},
	}
	for _, row := range rows(sizes) {
		cr := run.AddCase(row.Application)
		cr.Completed = true
		cr.Metric("cache_pct", row.CachePct)
		cr.Metric("overlap_pct", row.OverlappingPct)
		t.AddRow(row.Application, report.Pct(row.CachePct), report.Pct(row.OverlappingPct))
	}
	run.Result.AddTable(t)
	return nil
}

// runNPB wraps experiments.NPBIS and NPBCG as a scenario. The defaults
// mirror the old npbis binary: the C-shaped scaled class for the paper's
// Table 2 row, Class A under -quick.
func runNPB(run *Run) error {
	class := npb.ClassCSim
	if run.Opts.Quick {
		class = npb.ClassA
	}
	run.Result.Param("is-class", class.Name)
	t := report.Table{
		Title:   "execution-time improvement vs regular pinning",
		Columns: []string{"application", "pinning-cache", "overlapping"},
	}

	isRow, isRes := experiments.NPBIS(class)
	cr := run.AddCase(isRow.Application)
	cr.Completed = true
	cr.Metric("cache_pct", isRow.CachePct)
	cr.Metric("overlap_pct", isRow.OverlappingPct)
	cr.Metric("mops", isRes.MopsTotal)
	cr.Metric("verified", boolMetric(isRes.Verified))
	t.AddRow(isRow.Application, report.Pct(isRow.CachePct), report.Pct(isRow.OverlappingPct))

	cgRow, cgRes := experiments.NPBCG(npb.CGClassA)
	cg := run.AddCase(cgRow.Application)
	cg.Completed = true
	cg.Metric("cache_pct", cgRow.CachePct)
	cg.Metric("overlap_pct", cgRow.OverlappingPct)
	cg.Metric("verified", boolMetric(cgRes.Verified))
	cg.Note("paper §4.4: small-message kernels 'do not vary much'")
	t.AddRow(cgRow.Application, report.Pct(cgRow.CachePct), report.Pct(cgRow.OverlappingPct))

	run.Result.AddTable(t)
	return nil
}

// runOverlapMiss wraps experiments.OverlapMissSection43 as a scenario.
func runOverlapMiss(run *Run) error {
	itersNormal, itersOverload := 0, 0 // experiments defaults
	if run.Opts.Quick {
		itersNormal, itersOverload = 10, 5
	}
	results := experiments.OverlapMissSection43(itersNormal, itersOverload)
	loads := []string{"normal", "overloaded"}
	t := report.Table{
		Title:   "overlap-miss behaviour of overlapped pinning",
		Columns: []string{"scenario", "pull replies", "misses", "miss rate", "re-reqs", "MiB/s"},
	}
	for i, r := range results {
		cr := run.AddCase(r.Label)
		cr.Case.Params = map[string]string{"load": loads[i]}
		cr.Completed = true
		cr.Metric("mbps", r.MBps)
		cr.Metric("miss_rate", r.MissRate)
		cr.Metric("misses", float64(r.OverlapMisses))
		cr.Metric("rereqs", float64(r.ReRequests))
		t.AddRow(r.Label, report.D(int64(r.PullReplies)), report.D(int64(r.OverlapMisses)),
			report.E(r.MissRate), report.D(int64(r.ReRequests)), report.F(r.MBps, 1))
	}
	run.Result.AddTable(t)
	run.Result.Note("paper: <1 miss per 10^4 packets under regular load; ~1 GB/s -> ~50 MB/s on an overloaded core")
	return nil
}

// runFloodSweep wraps experiments.FloodSweep as a scenario.
func runFloodSweep(run *Run) error {
	levels := []float64{0, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99}
	if run.Opts.Quick {
		levels = []float64{0, 0.8, 0.95}
	}
	t := report.Table{
		Title:   "goodput vs synthetic bottom-half load on the pinning core",
		Columns: []string{"flood", "app core", "replies", "misses", "miss rate", "MiB/s"},
	}
	for _, r := range experiments.FloodSweep(levels) {
		cr := run.AddCase(fmt.Sprintf("flood=%.2f", r.FloodUtilization))
		cr.Completed = true
		cr.Metric("mbps", r.MBps)
		cr.Metric("miss_rate", r.MissRate)
		where := "own core"
		if r.AppOnRxCore {
			where = "RX core"
		}
		t.AddRow(fmt.Sprintf("%.2f", r.FloodUtilization), where,
			report.D(int64(r.PullReplies)), report.D(int64(r.OverlapMisses)),
			report.E(r.MissRate), report.F(r.MBps, 1))
	}
	run.Result.AddTable(t)
	return nil
}

// runTable1 wraps experiments.Table1 as a scenario.
func runTable1(run *Run) error {
	t := report.Table{
		Title:   "base and per-page pin+unpin overhead per host",
		Columns: []string{"processor", "GHz", "base us", "ns/page", "GB/s"},
	}
	for _, r := range experiments.Table1() {
		cr := run.AddCase(r.Host)
		cr.Completed = true
		cr.Metric("base_us", r.BaseMicros)
		cr.Metric("ns_per_page", r.NsPerPage)
		cr.Metric("gbps", r.GBps)
		t.AddRow(r.Host, report.F(r.GHz, 2), report.F(r.BaseMicros, 1),
			report.F(r.NsPerPage, 0), report.F(r.GBps, 1))
	}
	run.Result.AddTable(t)
	return nil
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
