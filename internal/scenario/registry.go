package scenario

import (
	"fmt"
	"sort"

	"omxsim/internal/report"
)

var registry = make(map[string]*Scenario)

// Scenario sources: where a registry entry came from. `omxsim list`
// shows the source column; duplicate-name errors name both sides.
const (
	// SourceBuiltinGo is a scenario registered by Go code in this package
	// (the default when Source is left empty).
	SourceBuiltinGo = "builtin-go"
	// SourceBuiltinSpec is a scenario compiled from an embedded spec file
	// (internal/scenario/specs/*.yaml).
	SourceBuiltinSpec = "builtin-spec"
	// SourceFile is a scenario loaded from a user spec file at run time
	// (`omxsim run path/to/spec.yaml`).
	SourceFile = "file"
)

// Register adds a scenario to the package registry. It rejects empty
// names, scenarios with neither a Workload nor a Custom runner, and —
// hard, with both sources named — duplicate names: a user spec file may
// not shadow a builtin, and two builtins claiming one name is a
// programming error, never a silent last-write-wins.
func Register(s *Scenario) error {
	if s == nil || s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.Source == "" {
		s.Source = SourceBuiltinGo
	}
	if prev, dup := registry[s.Name]; dup {
		return fmt.Errorf("scenario: duplicate name %q: already registered from %s, refusing the %s registration (rename the scenario)",
			s.Name, prev.Source, s.Source)
	}
	if s.Workload == nil && s.Custom == nil {
		return fmt.Errorf("scenario %q: neither Workload nor Custom set", s.Name)
	}
	registry[s.Name] = s
	return nil
}

// MustRegister is Register for init-time use; registration errors are
// programming errors.
func MustRegister(s *Scenario) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// unregister removes a scenario (tests only).
func unregister(name string) { delete(registry, name) }

// Get looks a scenario up by name.
func Get(name string) (*Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every registered scenario, sorted by name.
func All() []*Scenario {
	var out []*Scenario
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// RunByName resolves and runs a registered scenario.
func RunByName(name string, opts Options) (*report.Result, error) {
	s, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (omxsim list shows the registry)", name)
	}
	return s.Run(opts)
}
