package scenario

import (
	"fmt"
	"sort"

	"omxsim/internal/report"
)

var registry = make(map[string]*Scenario)

// Register adds a scenario to the package registry. It rejects empty or
// duplicate names and scenarios with neither a Workload nor a Custom
// runner.
func Register(s *Scenario) error {
	if s == nil || s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("scenario: duplicate name %q", s.Name)
	}
	if s.Workload == nil && s.Custom == nil {
		return fmt.Errorf("scenario %q: neither Workload nor Custom set", s.Name)
	}
	registry[s.Name] = s
	return nil
}

// MustRegister is Register for init-time use; registration errors are
// programming errors.
func MustRegister(s *Scenario) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// unregister removes a scenario (tests only).
func unregister(name string) { delete(registry, name) }

// Get looks a scenario up by name.
func Get(name string) (*Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every registered scenario, sorted by name.
func All() []*Scenario {
	var out []*Scenario
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// RunByName resolves and runs a registered scenario.
func RunByName(name string, opts Options) (*report.Result, error) {
	s, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (omxsim list shows the registry)", name)
	}
	return s.Run(opts)
}
