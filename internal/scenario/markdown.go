package scenario

import (
	"fmt"
	"strings"
)

// PolicyLabels returns the scenario's distinct case labels in matrix
// order — the values `-policy` accepts for it. Scenarios without a case
// matrix run the single default case; Custom scenarios build their own
// sweep and return nil.
func (s *Scenario) PolicyLabels() []string {
	if s.Custom != nil {
		return nil
	}
	if len(s.Cases) == 0 {
		return []string{defaultCase().Label}
	}
	seen := make(map[string]bool, len(s.Cases))
	var out []string
	for _, c := range s.Cases {
		if !seen[c.Label] {
			seen[c.Label] = true
			out = append(out, c.Label)
		}
	}
	return out
}

// MarkdownTable renders the registry as a GitHub-flavored markdown table
// — the source of truth for the README's scenario section (`omxsim list
// -markdown` regenerates it; the docs CI check keeps the two in sync).
func MarkdownTable() string {
	var b strings.Builder
	b.WriteString("| scenario | source | policies | description |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, s := range All() {
		pols := strings.Join(s.PolicyLabels(), ", ")
		if pols == "" {
			pols = "*custom sweep*"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n", s.Name, s.Source, pols, s.Description)
	}
	return b.String()
}
