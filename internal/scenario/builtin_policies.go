// builtin_policies.go registers the policy-comparison scenario families:
// every registered pinning backend — the paper's four, the no-pin
// ideals, and the post-paper ODP and pin-ahead strategies — driven
// through the same workloads under each fault injector, plus the
// multi-tenant memory-pressure scenario. These are the experiments the
// pluggable policy layer exists for: adding a backend to the registry
// makes it comparable here without touching the driver.
package scenario

import (
	"fmt"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
)

// fullPolicyMatrix is one case per built-in backend: the paper's Figure 7
// matrix plus permanent, the QsNet no-pinning ideal, NP-RDMA-style ODP,
// and eBPF-mm-style pin-ahead.
func fullPolicyMatrix() []Case {
	return append(figure7Matrix(),
		Case{Label: "permanent", OMX: omx.DefaultConfig(core.Permanent, true)},
		Case{Label: "no-pinning", OMX: omx.DefaultConfig(core.NoPinning, true)},
		Case{Label: "odp", OMX: omx.DefaultConfig(core.NoPinODP, true)},
		Case{Label: "pin-ahead", OMX: omx.DefaultConfig(core.PinAhead, true)},
	)
}

// withAdviseHints sets the "advise" param on the pin-ahead cases. Only
// scenarios whose workloads actually issue c.Advise hints (streamWorkload,
// the multitenant workload) apply it — a case must not advertise
// user-guided hints the workload never sends.
func withAdviseHints(cases []Case) []Case {
	for i := range cases {
		if cases[i].OMX.PolicyLabel() == "pin-ahead" {
			if cases[i].Params == nil {
				cases[i].Params = map[string]string{}
			}
			cases[i].Params["advise"] = "1"
		}
	}
	return cases
}

// streamWorkload pushes iters messages of the sweep size from rank 0 to
// rank 1 and reports throughput in "mbps" on rank 0. With idle > 0 the
// stream pauses halfway and only then registers the "payload" buffers:
// buffer-targeted faults (which poll for registration) land inside the
// pause, hitting regions that sit idle — pinned under the decoupled
// policies, unpinned under pin-each-comm, merely resident under the
// no-pin backends — which is where the strategies diverge. Cases with
// the "advise" param issue pin-ahead hints before communicating.
func streamWorkload(iters int, idle sim.Duration) Workload {
	return func(c *mpi.Comm, cr *CaseRun) {
		n := cr.Size
		if n == 0 {
			n = 2 << 20
		}
		buf := c.Malloc(n)
		if idle == 0 {
			cr.RegisterBuffer(c.Rank(), "payload", buf, n)
		}
		if cr.Param("advise") != "" {
			c.Advise(buf, n) // user-guided pin-ahead hint
		}
		xfer := func(count int) {
			for i := 0; i < count; i++ {
				if c.Rank() == 0 {
					c.Send(buf, n, 1, 11)
				} else if c.Rank() == 1 {
					c.Recv(buf, n, 0, 11)
				}
			}
		}
		c.Barrier()
		start := c.Now()
		xfer(iters / 2)
		if idle > 0 {
			c.Barrier()
			cr.RegisterBuffer(c.Rank(), "payload", buf, n)
			c.Compute(idle)
			c.Barrier()
		}
		xfer(iters - iters/2)
		c.Barrier()
		if c.Rank() == 0 {
			elapsed := c.Now() - start
			cr.Metric("mbps", float64(iters)*float64(n)/elapsed.Seconds()/(1<<20))
		}
	}
}

func init() {
	const streamIters = 6

	// policy-swapout: swap pressure mid-stream. Pinned pages resist the
	// swap (that is what pinning buys); ODP pages are evicted and fault
	// back in on the next device access.
	MustRegister(&Scenario{
		Name:        "policy-swapout",
		Description: "Every pinning backend streaming through mid-run swap pressure on both buffers",
		Cases:       withAdviseHints(fullPolicyMatrix()),
		Sizes:       []int{2 << 20},
		Metric:      "mbps",
		Workload:    streamWorkload(streamIters, 2*sim.Millisecond),
		Faults: []Fault{
			{At: 100 * sim.Microsecond, Kind: FaultSwapOut, Rank: 0, Buffer: "payload"},
			{At: 150 * sim.Microsecond, Kind: FaultSwapOut, Rank: 1, Buffer: "payload"},
		},
		Assertions: []Assertion{
			Completed(),
			MetricPositive("mbps"),
			PinAccountingBalanced(),
			EachCaseWhere("odp services page faults", PolicyCases("odp"),
				func(cr *CaseRun) (bool, string) {
					if cr.Metrics["stats.odp_faults"] < 1 {
						return false, fmt.Sprintf("odp_faults = %g", cr.Metrics["stats.odp_faults"])
					}
					return true, ""
				}),
			EachCaseWhere("pin-ahead pins speculatively", PolicyCases("pin-ahead"),
				func(cr *CaseRun) (bool, string) {
					if cr.Metrics["stats.speculative_pins"] < 1 {
						return false, fmt.Sprintf("speculative_pins = %g", cr.Metrics["stats.speculative_pins"])
					}
					return true, ""
				}),
		},
	})

	// policy-fork: a fork mid-stream marks the address space COW; pinned
	// pages are copied eagerly (elevated GUP counts), unpinned pages of
	// declared regions see COW notifiers on the next write.
	MustRegister(&Scenario{
		Name:        "policy-fork",
		Description: "Every pinning backend streaming through a mid-run fork (COW) of both ranks",
		Cases:       withAdviseHints(fullPolicyMatrix()),
		Sizes:       []int{2 << 20},
		Metric:      "mbps",
		Workload:    streamWorkload(streamIters, 2*sim.Millisecond),
		Faults: []Fault{
			{At: 4 * sim.Millisecond, Kind: FaultFork, Rank: 0},
			{At: 4 * sim.Millisecond, Kind: FaultFork, Rank: 1},
		},
		Assertions: []Assertion{
			Completed(),
			MetricPositive("mbps"),
			PinAccountingBalanced(),
		},
	})

	// policy-flood: the §4.3 interrupt flood, now across every backend.
	// Policies that do kernel pin work on the flooded path suffer;
	// no-pin backends only pay protocol costs.
	MustRegister(&Scenario{
		Name:        "policy-flood",
		Description: "Every pinning backend streaming through a bottom-half interrupt-flood window",
		Cases:       withAdviseHints(fullPolicyMatrix()),
		Sizes:       []int{2 << 20},
		Metric:      "mbps",
		Workload:    streamWorkload(streamIters, 0),
		Faults: []Fault{
			{At: 500 * sim.Microsecond, Kind: FaultFlood, Util: 0.8, For: 3 * sim.Millisecond},
		},
		Assertions: []Assertion{
			Completed(),
			MetricPositive("mbps"),
			PinAccountingBalanced(),
		},
	})

	// multitenant: several ranks per node under a driver pinned-page
	// budget plus swap pressure — the memory-pressure regime where the
	// strategies genuinely diverge: LRU eviction churns the pinned
	// policies, ODP absorbs the pressure as faults, pin-ahead re-arms
	// its speculation after every eviction.
	tenantMatrix := func() []Case {
		withLimit := func(c Case) Case {
			c.OMX.PinnedPageLimit = 640 // 2.5 MiB per endpoint: less than two live buffers
			return c
		}
		return []Case{
			withLimit(Case{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)}),
			withLimit(Case{Label: "overlapped-cache", OMX: omx.DefaultConfig(core.Overlapped, true)}),
			withLimit(Case{Label: "pin-ahead", OMX: omx.DefaultConfig(core.PinAhead, true),
				Params: map[string]string{"advise": "1"}}),
			withLimit(Case{Label: "odp", OMX: omx.DefaultConfig(core.NoPinODP, true)}),
			withLimit(Case{Label: "no-pinning", OMX: omx.DefaultConfig(core.NoPinning, true)}),
		}
	}
	MustRegister(&Scenario{
		Name:        "multitenant",
		Description: "3 tenants per node under a pinned-page budget and swap pressure: eviction churn vs ODP faults vs speculation",
		Cluster:     cluster.Config{Nodes: 2, RanksPerNode: 3},
		Cases:       tenantMatrix(),
		Metric:      "mbps",
		Workload: func(c *mpi.Comm, cr *CaseRun) {
			// Tenant i on node 0 (rank i) streams to its peer on node 1
			// (rank i+3) through two buffers alternately, so each
			// endpoint's working set exceeds the pinned-page budget and
			// the driver must evict between messages.
			const n = 2 << 20
			const rounds = 4
			half := c.Size()
			if half == 0 {
				half = 3
			} else {
				half /= 2
			}
			a, b := c.Malloc(n), c.Malloc(n)
			cr.RegisterBuffer(c.Rank(), "a", a, n)
			if cr.Param("advise") != "" {
				c.Advise(a, n)
				c.Advise(b, n)
			}
			c.Barrier()
			start := c.Now()
			for i := 0; i < rounds; i++ {
				buf := a
				if i%2 == 1 {
					buf = b
				}
				if c.Rank() < half {
					c.Send(buf, n, c.Rank()+half, 21)
				} else {
					c.Recv(buf, n, c.Rank()-half, 21)
				}
			}
			c.Barrier()
			if c.Rank() == 0 {
				elapsed := c.Now() - start
				cr.Metric("mbps", float64(rounds)*float64(n)/elapsed.Seconds()/(1<<20))
			}
		},
		Faults: []Fault{
			{At: 2 * sim.Millisecond, Kind: FaultSwapOut, Rank: 4, Buffer: "a"},
		},
		Assertions: []Assertion{
			Completed(),
			MetricPositive("mbps"),
			PinAccountingBalanced(),
			EachCaseWhere("pinned-page budget forces LRU eviction",
				PolicyCases("on-demand", "overlapped", "pin-ahead"),
				func(cr *CaseRun) (bool, string) {
					if cr.Metrics["stats.lru_unpins"] < 1 {
						return false, fmt.Sprintf("lru_unpins = %g", cr.Metrics["stats.lru_unpins"])
					}
					return true, ""
				}),
			EachCaseWhere("no-pin backends never pin", PolicyCases("odp", "no-pinning"),
				func(cr *CaseRun) (bool, string) {
					if p := cr.Metrics["stats.pages_pinned"]; p != 0 {
						return false, fmt.Sprintf("pages_pinned = %g", p)
					}
					return true, ""
				}),
		},
	})
}
