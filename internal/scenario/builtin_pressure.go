// builtin_pressure.go registers the pressure-* scenario family: runs
// where swap-outs are *emergent* — produced by the allocator hitting a
// per-node frame budget (cluster.Config.Mem) and the vm reclaim
// subsystem stealing cold pages — instead of injected by a FaultSwapOut.
// This is the regime the paper's cost model describes: pinned pages are
// unreclaimable, so the pinned backends hold their working sets against
// kswapd while the page-table-translated backends absorb reclaim as
// device faults.
package scenario

import (
	"fmt"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// pressureWorkload streams a fixed-size message between rank pairs
// (rank i on node 0 -> rank i+half on node 1) while every rank dirties a
// churn buffer each round — the memory hog that overcommits the node's
// frame budget. The comm buffer is written first, so its frames are the
// oldest the reclaim scan visits: a pinned backend must resist exactly
// there. churnCompute gives kswapd simulated time to run between rounds.
func pressureWorkload(rounds, commBytes, churnBytes int, churnCompute sim.Duration) Workload {
	return func(c *mpi.Comm, cr *CaseRun) {
		half := c.Size() / 2
		comm := c.Malloc(commBytes)
		churn := c.Malloc(churnBytes)
		cr.RegisterBuffer(c.Rank(), "comm", comm, commBytes)
		payload := make([]byte, commBytes)
		for i := range payload {
			payload[i] = byte(c.Rank() + i)
		}
		c.WriteBytes(comm, payload)
		if cr.Param("advise") != "" {
			c.Advise(comm, commBytes)
		}
		dirt := make([]byte, vm.PageSize)
		for i := range dirt {
			dirt[i] = byte(i + 1)
		}
		c.Barrier()
		start := c.Now()
		for r := 0; r < rounds; r++ {
			for off := 0; off < churnBytes; off += vm.PageSize {
				c.WriteBytes(churn+vm.Addr(off), dirt)
			}
			c.Compute(churnCompute)
			if c.Rank() < half {
				c.Send(comm, commBytes, c.Rank()+half, 31)
			} else {
				c.Recv(comm, commBytes, c.Rank()-half, 31)
			}
		}
		c.Barrier()
		if c.Rank() == 0 {
			elapsed := c.Now() - start
			cr.Metric("mbps", float64(rounds)*float64(commBytes)/elapsed.Seconds()/(1<<20))
		}
	}
}

// emergentSteals asserts reclaim actually ran — the family's defining
// property, with no swap injector anywhere in these scenarios.
func emergentSteals() Assertion {
	return EachCase("emergent reclaim steals pages (no injector)", func(cr *CaseRun) (bool, string) {
		if cr.Metrics["stats.pgsteal"] < 1 {
			return false, fmt.Sprintf("pgsteal = %g", cr.Metrics["stats.pgsteal"])
		}
		return true, ""
	})
}

func init() {
	// pressure-churn: steady-state churn under a tight budget with a
	// single decoupled-pinning case — the focus is the reclaim machinery
	// itself: kswapd wakes on the watermark between rounds, direct
	// reclaim stalls inside the rounds, pages cycle through swap and
	// back, and the ledger still balances.
	MustRegister(&Scenario{
		Name:        "pressure-churn",
		Description: "Steady-state allocator churn against a per-node frame budget: kswapd watermark reclaim plus direct-reclaim stalls, injector-free",
		Cluster: cluster.Config{
			Nodes: 2,
			Mem:   omx.MemConfig{Frames: 640}, // comm (256) + churn (512) overcommit it
		},
		Cases: []Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
		},
		Metric:   "mbps",
		Workload: pressureWorkload(6, 1<<20, 2<<20, 500*sim.Microsecond),
		Assertions: []Assertion{
			Completed(),
			MetricPositive("mbps"),
			PinAccountingBalanced(),
			emergentSteals(),
			MetricAtLeast("stats.kswapd_runs", 1),
			MetricAtLeast("stats.direct_reclaim_stalls", 1),
			MetricAtLeast("stats.swap_ins", 1),
			EachCase("frame budget holds", func(cr *CaseRun) (bool, string) {
				for _, n := range cr.Cluster.Nodes {
					if used := n.Phys.PeakFrames(); used > n.Phys.Capacity() {
						return false, fmt.Sprintf("node %d peaked at %d frames (capacity %d)",
							n.ID, used, n.Phys.Capacity())
					}
				}
				return true, ""
			}),
		},
	})

	// pressure-policies: the paper's unreclaimable-pinned-pages claim,
	// measured. Same emergent pressure for every backend; the pinned
	// backends hold their comm working set (reclaim scans it, counts a
	// resist, steals churn pages instead) while ODP lets the comm buffer
	// be reclaimed and absorbs the pressure as device page faults.
	MustRegister(&Scenario{
		Name:        "pressure-policies",
		Description: "Pinned vs ODP vs pin-ahead under emergent reclaim: pinned working sets resist, ODP absorbs reclaim as faults",
		Cluster: cluster.Config{
			Nodes: 2,
			Mem:   omx.MemConfig{Frames: 640},
		},
		Cases: []Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
			{Label: "overlapped-cache", OMX: omx.DefaultConfig(core.Overlapped, true)},
			{Label: "pin-ahead", OMX: omx.DefaultConfig(core.PinAhead, true),
				Params: map[string]string{"advise": "1"}},
			{Label: "odp", OMX: omx.DefaultConfig(core.NoPinODP, true)},
		},
		Metric:   "mbps",
		Workload: pressureWorkload(6, 1<<20, 2<<20, 500*sim.Microsecond),
		Assertions: []Assertion{
			Completed(),
			MetricPositive("mbps"),
			PinAccountingBalanced(),
			emergentSteals(),
			MetricAtLeast("stats.swap_ins", 1),
			EachCaseWhere("pinned backends hold their working set",
				PolicyCases("on-demand", "overlapped", "pin-ahead"),
				func(cr *CaseRun) (bool, string) {
					if cr.Metrics["stats.pinned_resists"] < 1 {
						return false, fmt.Sprintf("pinned_resists = %g (reclaim never hit the pinned set)",
							cr.Metrics["stats.pinned_resists"])
					}
					if f := cr.Metrics["stats.pin_failures"]; f != 0 {
						return false, fmt.Sprintf("pin_failures = %g", f)
					}
					if rp := cr.Metrics["stats.repins"]; rp != 0 {
						return false, fmt.Sprintf("repins = %g: reclaim invalidated a pinned region", rp)
					}
					return true, ""
				}),
			EachCaseWhere("odp absorbs reclaim as device faults", PolicyCases("odp"),
				func(cr *CaseRun) (bool, string) {
					if cr.Metrics["stats.odp_faults"] < 1 {
						return false, fmt.Sprintf("odp_faults = %g", cr.Metrics["stats.odp_faults"])
					}
					if p := cr.Metrics["stats.pages_pinned"]; p != 0 {
						return false, fmt.Sprintf("pages_pinned = %g", p)
					}
					return true, ""
				}),
		},
	})

	// pressure-multitenant: three tenants per node share one frame
	// budget, so one tenant's churn steals another's cold pages — the
	// cross-process contention a per-endpoint pinned-page limit cannot
	// model. The churn loop allocates faster than the kswapd period, so
	// direct-reclaim stalls are guaranteed on the allocation path.
	MustRegister(&Scenario{
		Name:        "pressure-multitenant",
		Description: "3 tenants per node contending for one frame budget: cross-process reclaim, direct-reclaim stalls, pinned sets intact",
		Cluster: cluster.Config{
			Nodes:        2,
			RanksPerNode: 3,
			Mem:          omx.MemConfig{Frames: 768},
		},
		Cases: []Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
			{Label: "odp", OMX: omx.DefaultConfig(core.NoPinODP, true)},
			{Label: "no-pinning", OMX: omx.DefaultConfig(core.NoPinning, true)},
		},
		Metric:   "mbps",
		Workload: pressureWorkload(4, 512*1024, 1<<20, 300*sim.Microsecond),
		Assertions: []Assertion{
			Completed(),
			MetricPositive("mbps"),
			PinAccountingBalanced(),
			emergentSteals(),
			MetricAtLeast("stats.direct_reclaim_stalls", 1),
			EachCaseWhere("pinned tenants keep their comm buffers",
				PolicyCases("on-demand"),
				func(cr *CaseRun) (bool, string) {
					if f := cr.Metrics["stats.pin_failures"]; f != 0 {
						return false, fmt.Sprintf("pin_failures = %g", f)
					}
					return true, ""
				}),
		},
	})
}
