// builtin_pressure.go registers the pressure-* scenario family: runs
// where swap-outs are *emergent* — produced by the allocator hitting a
// per-node frame budget (cluster.Config.Mem) and the vm reclaim
// subsystem stealing cold pages — instead of injected by a FaultSwapOut.
// This is the regime the paper's cost model describes: pinned pages are
// unreclaimable, so the pinned backends hold their working sets against
// kswapd while the page-table-translated backends absorb reclaim as
// device faults.
package scenario

import (
	"fmt"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// pressureWorkload streams a fixed-size message between rank pairs
// (rank i on node 0 -> rank i+half on node 1) while every rank dirties a
// churn buffer each round — the memory hog that overcommits the node's
// frame budget. The comm buffer is written first, so its frames are the
// oldest the reclaim scan visits: a pinned backend must resist exactly
// there. churnCompute gives kswapd simulated time to run between rounds.
func pressureWorkload(rounds, commBytes, churnBytes int, churnCompute sim.Duration) Workload {
	return func(c *mpi.Comm, cr *CaseRun) {
		half := c.Size() / 2
		comm := c.Malloc(commBytes)
		churn := c.Malloc(churnBytes)
		cr.RegisterBuffer(c.Rank(), "comm", comm, commBytes)
		payload := make([]byte, commBytes)
		for i := range payload {
			payload[i] = byte(c.Rank() + i)
		}
		c.WriteBytes(comm, payload)
		if cr.Param("advise") != "" {
			c.Advise(comm, commBytes)
		}
		dirt := make([]byte, vm.PageSize)
		for i := range dirt {
			dirt[i] = byte(i + 1)
		}
		c.Barrier()
		start := c.Now()
		for r := 0; r < rounds; r++ {
			for off := 0; off < churnBytes; off += vm.PageSize {
				c.WriteBytes(churn+vm.Addr(off), dirt)
			}
			c.Compute(churnCompute)
			if c.Rank() < half {
				c.Send(comm, commBytes, c.Rank()+half, 31)
			} else {
				c.Recv(comm, commBytes, c.Rank()-half, 31)
			}
		}
		c.Barrier()
		if c.Rank() == 0 {
			elapsed := c.Now() - start
			cr.Metric("mbps", float64(rounds)*float64(commBytes)/elapsed.Seconds()/(1<<20))
		}
	}
}

// emergentSteals asserts reclaim actually ran — the family's defining
// property, with no swap injector anywhere in these scenarios.
func emergentSteals() Assertion {
	return EachCase("emergent reclaim steals pages (no injector)", func(cr *CaseRun) (bool, string) {
		if cr.Metrics["stats.pgsteal"] < 1 {
			return false, fmt.Sprintf("pgsteal = %g", cr.Metrics["stats.pgsteal"])
		}
		return true, ""
	})
}

// The pressure-* scenarios register from their embedded specs
// (spec_builtin.go); the legacy constructors below stay, unregistered,
// as the reference side of the spec-equivalence tests.

// legacyPressureChurn: steady-state churn under a tight budget with a
// single decoupled-pinning case — the focus is the reclaim machinery
// itself: kswapd wakes on the watermark between rounds, direct
// reclaim stalls inside the rounds, pages cycle through swap and
// back, and the ledger still balances.
func legacyPressureChurn() *Scenario {
	return &Scenario{
		Name:        "pressure-churn",
		Description: "Steady-state allocator churn against a per-node frame budget: kswapd watermark reclaim plus direct-reclaim stalls, injector-free",
		Cluster: cluster.Config{
			Nodes: 2,
			Mem:   omx.MemConfig{Frames: 640}, // comm (256) + churn (512) overcommit it
		},
		Cases: []Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
		},
		Metric:   "mbps",
		Workload: pressureWorkload(6, 1<<20, 2<<20, 500*sim.Microsecond),
		Assertions: []Assertion{
			Completed(),
			MetricPositive("mbps"),
			PinAccountingBalanced(),
			emergentSteals(),
			MetricAtLeast("stats.kswapd_runs", 1),
			MetricAtLeast("stats.direct_reclaim_stalls", 1),
			MetricAtLeast("stats.swap_ins", 1),
			frameBudgetHolds(),
		},
	}
}

// legacyPressurePolicies: the paper's unreclaimable-pinned-pages claim,
// measured. Same emergent pressure for every backend; the pinned
// backends hold their comm working set (reclaim scans it, counts a
// resist, steals churn pages instead) while ODP lets the comm buffer
// be reclaimed and absorbs the pressure as device page faults.
func legacyPressurePolicies() *Scenario {
	return &Scenario{
		Name:        "pressure-policies",
		Description: "Pinned vs ODP vs pin-ahead under emergent reclaim: pinned working sets resist, ODP absorbs reclaim as faults",
		Cluster: cluster.Config{
			Nodes: 2,
			Mem:   omx.MemConfig{Frames: 640},
		},
		Cases: []Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
			{Label: "overlapped-cache", OMX: omx.DefaultConfig(core.Overlapped, true)},
			{Label: "pin-ahead", OMX: omx.DefaultConfig(core.PinAhead, true),
				Params: map[string]string{"advise": "1"}},
			{Label: "odp", OMX: omx.DefaultConfig(core.NoPinODP, true)},
		},
		Metric:   "mbps",
		Workload: pressureWorkload(6, 1<<20, 2<<20, 500*sim.Microsecond),
		Assertions: []Assertion{
			Completed(),
			MetricPositive("mbps"),
			PinAccountingBalanced(),
			emergentSteals(),
			MetricAtLeast("stats.swap_ins", 1),
			pinnedWorkingSet(),
			odpAbsorbsReclaim(),
		},
	}
}

// legacyPressureMultitenant: three tenants per node share one frame
// budget, so one tenant's churn steals another's cold pages — the
// cross-process contention a per-endpoint pinned-page limit cannot
// model. The churn loop allocates faster than the kswapd period, so
// direct-reclaim stalls are guaranteed on the allocation path.
func legacyPressureMultitenant() *Scenario {
	return &Scenario{
		Name:        "pressure-multitenant",
		Description: "3 tenants per node contending for one frame budget: cross-process reclaim, direct-reclaim stalls, pinned sets intact",
		Cluster: cluster.Config{
			Nodes:        2,
			RanksPerNode: 3,
			Mem:          omx.MemConfig{Frames: 768},
		},
		Cases: []Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
			{Label: "odp", OMX: omx.DefaultConfig(core.NoPinODP, true)},
			{Label: "no-pinning", OMX: omx.DefaultConfig(core.NoPinning, true)},
		},
		Metric:   "mbps",
		Workload: pressureWorkload(4, 512*1024, 1<<20, 300*sim.Microsecond),
		Assertions: []Assertion{
			Completed(),
			MetricPositive("mbps"),
			PinAccountingBalanced(),
			emergentSteals(),
			MetricAtLeast("stats.direct_reclaim_stalls", 1),
			pinnedTenantBuffers(),
		},
	}
}
