package scenario

import (
	"bytes"
	"testing"

	"omxsim/internal/report"
)

// legacyTwins maps each spec-registered builtin to its retired Go
// constructor. The equivalence gate runs both sides and demands
// byte-identical report JSON — the proof that the spec decoder +
// compiler lower onto exactly the machinery the Go scenarios used.
var legacyTwins = map[string]func() *Scenario{
	"pingpong":             legacyPingPong,
	"pressure-churn":       legacyPressureChurn,
	"pressure-policies":    legacyPressurePolicies,
	"pressure-multitenant": legacyPressureMultitenant,
	"chaos-crash-recover":  legacyChaosCrashRecover,
	"chaos-degraded-link":  legacyChaosDegradedLink,
	"chaos-budget-shrink":  legacyChaosBudgetShrink,
	"kvserve-mix":          legacyKVServeMix,
	"kvserve-pressure":     legacyKVServePressure,
	"kvserve-multitenant":  legacyKVServeMultitenant,
}

// scenarioBytes runs an unregistered scenario and serialises the result
// the way resultBytes does for registered ones.
func scenarioBytes(t *testing.T, s *Scenario, opts Options) []byte {
	t.Helper()
	res, err := s.Run(opts)
	if err != nil {
		t.Fatalf("%s (shards=%d): %v", s.Name, opts.Shards, err)
	}
	if res.Failed() {
		for _, a := range res.Assertions {
			if !a.Passed {
				t.Errorf("%s (shards=%d): assertion %q failed: %s", s.Name, opts.Shards, a.Name, a.Detail)
			}
		}
		t.FailNow()
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSpecEquivalence is the two-path gate: for every ported builtin,
// the registered spec-compiled scenario and its legacy Go constructor
// must produce byte-identical report JSON, at one shard and at several.
func TestSpecEquivalence(t *testing.T) {
	for name, legacy := range legacyTwins {
		name, legacy := name, legacy
		t.Run(name, func(t *testing.T) {
			spec, ok := Get(name)
			if !ok {
				t.Fatalf("scenario %q not registered", name)
			}
			if spec.Source != SourceBuiltinSpec {
				t.Fatalf("scenario %q: source = %q, want %q", name, spec.Source, SourceBuiltinSpec)
			}
			for _, shards := range []int{1, 4} {
				opts := Options{Quick: true, Shards: shards}
				want := scenarioBytes(t, legacy(), opts)
				got := resultBytes(t, name, opts)
				if !bytes.Equal(want, got) {
					t.Fatalf("%s (shards=%d): spec run differs from legacy Go run:\n--- legacy ---\n%s\n--- spec ---\n%s",
						name, shards, want, got)
				}
			}
		})
	}
}
