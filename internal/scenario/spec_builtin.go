// spec_builtin.go — the builtins that ship as specs. The pingpong,
// pressure-*, chaos-*, and kvserve-* families register from the YAML
// documents embedded under specs/, exercising the spec decoder and
// compiler on every program start; their legacy Go constructors remain
// (unregistered) in builtin*.go as the reference side of the
// spec-equivalence tests, which prove both paths produce byte-identical
// reports.
package scenario

import (
	"embed"
	"fmt"
)

//go:embed specs/*.yaml
var builtinSpecFS embed.FS

func init() {
	entries, err := builtinSpecFS.ReadDir("specs")
	if err != nil {
		panic(fmt.Sprintf("scenario: embedded specs: %v", err))
	}
	for _, e := range entries {
		path := "specs/" + e.Name()
		data, err := builtinSpecFS.ReadFile(path)
		if err != nil {
			panic(fmt.Sprintf("scenario: %s: %v", path, err))
		}
		s, err := LoadSpecData(data, path)
		if err != nil {
			panic(fmt.Sprintf("scenario: embedded spec %s: %v", path, err))
		}
		s.Source = SourceBuiltinSpec
		MustRegister(s)
	}
}
