// checks.go — named custom assertions shared between the Go-built
// scenarios and the spec format's `check:` form (spec_assert.go maps
// kebab-case keys onto these constructors). Factoring them out of the
// builtin families is what makes a spec's assertion list reproduce a Go
// scenario's report byte for byte: both sides run the same closure under
// the same display name.
package scenario

import "fmt"

// frameBudgetHolds asserts no node's physical-frame high-water mark ever
// exceeded its configured capacity — the reclaim machinery kept the
// budget, it didn't just trail allocation.
func frameBudgetHolds() Assertion {
	return EachCase("frame budget holds", func(cr *CaseRun) (bool, string) {
		for _, n := range cr.Cluster.Nodes {
			if used := n.Phys.PeakFrames(); used > n.Phys.Capacity() {
				return false, fmt.Sprintf("node %d peaked at %d frames (capacity %d)",
					n.ID, used, n.Phys.Capacity())
			}
		}
		return true, ""
	})
}

// pinnedWorkingSet asserts the pinned backends held their comm working
// set against reclaim: the scan hit the pinned pages (resists counted)
// but never failed a pin or invalidated a pinned region.
func pinnedWorkingSet() Assertion {
	return EachCaseWhere("pinned backends hold their working set",
		PolicyCases("on-demand", "overlapped", "pin-ahead"),
		func(cr *CaseRun) (bool, string) {
			if cr.Metrics["stats.pinned_resists"] < 1 {
				return false, fmt.Sprintf("pinned_resists = %g (reclaim never hit the pinned set)",
					cr.Metrics["stats.pinned_resists"])
			}
			if f := cr.Metrics["stats.pin_failures"]; f != 0 {
				return false, fmt.Sprintf("pin_failures = %g", f)
			}
			if rp := cr.Metrics["stats.repins"]; rp != 0 {
				return false, fmt.Sprintf("repins = %g: reclaim invalidated a pinned region", rp)
			}
			return true, ""
		})
}

// odpAbsorbsReclaim is the strong ODP contract under emergent pressure:
// reclaim turned into device faults and the backend truly never pinned.
func odpAbsorbsReclaim() Assertion {
	return EachCaseWhere("odp absorbs reclaim as device faults", PolicyCases("odp"),
		func(cr *CaseRun) (bool, string) {
			if cr.Metrics["stats.odp_faults"] < 1 {
				return false, fmt.Sprintf("odp_faults = %g", cr.Metrics["stats.odp_faults"])
			}
			if p := cr.Metrics["stats.pages_pinned"]; p != 0 {
				return false, fmt.Sprintf("pages_pinned = %g", p)
			}
			return true, ""
		})
}

// odpFaultVisible is the weak variant used by the kvserve family (whose
// serving path legitimately pins elsewhere): it only demands that the
// pressure surfaced as at least one device fault. Same display name as
// the strong form — reports distinguish the scenarios, not the checks.
func odpFaultVisible() Assertion {
	return EachCaseWhere("odp absorbs reclaim as device faults", PolicyCases("odp"),
		func(cr *CaseRun) (bool, string) {
			if cr.Metrics["stats.odp_faults"] < 1 {
				return false, fmt.Sprintf("odp_faults = %g", cr.Metrics["stats.odp_faults"])
			}
			return true, ""
		})
}

// pinnedTenantBuffers asserts cross-tenant reclaim never broke a pinned
// tenant's comm buffers (no pin failures on the on-demand cells).
func pinnedTenantBuffers() Assertion {
	return EachCaseWhere("pinned tenants keep their comm buffers",
		PolicyCases("on-demand"),
		func(cr *CaseRun) (bool, string) {
			if f := cr.Metrics["stats.pin_failures"]; f != 0 {
				return false, fmt.Sprintf("pin_failures = %g", f)
			}
			return true, ""
		})
}

// noInflightRequests asserts the chaos engine's end-of-run sweep found
// no request still waiting — every op hit by a fault ended in a typed
// abort or a completed recovery, never a hang.
func noInflightRequests() Assertion {
	return EachCase("no requests left in flight", func(cr *CaseRun) (bool, string) {
		v, ok := cr.Metrics["stats.requests_inflight_end"]
		if !ok {
			return false, "stats.requests_inflight_end not recorded"
		}
		if v != 0 {
			return false, fmt.Sprintf("%g requests still in flight at end of run", v)
		}
		return true, ""
	})
}

// pinSurfacesShrink asserts a budget shrink reached the pinned backend
// as pin failures that surfaced to the workload as typed errors.
func pinSurfacesShrink() Assertion {
	return EachCaseWhere("pin backend surfaces shrink as pin failures",
		labelCases("pin"),
		func(cr *CaseRun) (bool, string) {
			if cr.Metrics["stats.pin_failures"] < 1 {
				return false, fmt.Sprintf("pin_failures = %g (shrink never hit the pin path)",
					cr.Metrics["stats.pin_failures"])
			}
			if cr.Metrics["ops_err"] < 1 {
				return false, fmt.Sprintf("ops_err = %g (pin failures never surfaced)",
					cr.Metrics["ops_err"])
			}
			return true, ""
		})
}

// odpAbsorbsShrink asserts the same shrink windows cost ODP only device
// faults — it must never pin, so it can never fail a pin.
func odpAbsorbsShrink() Assertion {
	return EachCaseWhere("odp absorbs the shrink as device faults",
		labelCases("odp"),
		func(cr *CaseRun) (bool, string) {
			if cr.Metrics["stats.odp_faults"] < 1 {
				return false, fmt.Sprintf("odp_faults = %g", cr.Metrics["stats.odp_faults"])
			}
			if f := cr.Metrics["stats.pin_failures"]; f != 0 {
				return false, fmt.Sprintf("pin_failures = %g (ODP must never pin)", f)
			}
			return true, ""
		})
}
