// spec_compile.go — lowering a parsed Spec onto the Scenario/Runner
// machinery. Compile is pure assembly: the decode stage already built
// the cases, faults, chaos profile, and assertions from the same
// constructors the Go builtins use, so what remains is the fleet math
// (weight allocation onto cluster node groups, the startup schedule)
// and wiring the workload's quick override and report hook.
package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"omxsim/internal/cluster"
	"omxsim/internal/mpi"
	"omxsim/internal/sim"
)

// Compile lowers the spec into a runnable Scenario. The caller decides
// registration (and stamps Source); Compile never touches the registry.
func (sp *Spec) Compile() (*Scenario, error) {
	s := &Scenario{
		Name:        sp.Name,
		Description: sp.Description,
		Cluster:     sp.clusterCfg,
		Cases:       sp.cases,
		Sizes:       sp.sizes,
		QuickSizes:  sp.quickSizes,
		Metric:      sp.metric,
		Budget:      sp.budget,
		Faults:      sp.faults,
		Chaos:       sp.chaosProf,
		Assertions:  sp.asserts,
	}
	var nodeOf []int
	if sp.fleet != nil {
		groups, err := sp.fleet.resolve()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sp.File, err)
		}
		s.Cluster.Groups = groups
		s.Cluster.Link = sp.fleet.link
		nodeOf = rankNodes(groups)
	}

	w := sp.workload.workload
	if quick := sp.workload.quickWorkload; quick != nil {
		full := w
		w = func(c *mpi.Comm, cr *CaseRun) {
			if cr.Quick {
				quick(c, cr)
			} else {
				full(c, cr)
			}
		}
	}
	if sp.fleet != nil && (sp.fleet.startup.pattern != startInstant || sp.fleet.startup.jitter > 0) {
		st := sp.fleet.startup
		total := sp.fleet.total
		inner := w
		w = func(c *mpi.Comm, cr *CaseRun) {
			if d := startupDelay(st, nodeOf[c.Rank()], total, cr.Seed); d > 0 {
				c.Compute(d)
			}
			inner(c, cr)
		}
	}
	s.Workload = w
	if cfg := sp.workload.kvCfg; cfg != nil {
		s.Report = kvReport(*cfg, totalRanks(s.Cluster))
	}
	return s, nil
}

// resolve allocates the fleet's total node count across the group
// templates: explicit `nodes` counts are fixed, the remainder splits by
// weight with largest-remainder rounding (deterministic: ties break on
// group order).
func (f *fleetSpec) resolve() ([]cluster.NodeGroup, error) {
	fixed, weightSum := 0, 0
	for _, g := range f.groups {
		if g.nodes > 0 {
			fixed += g.nodes
		} else {
			weightSum += g.weight
		}
	}
	remain := f.total - fixed
	if remain < 0 {
		return nil, fmt.Errorf("fleet: explicit group nodes (%d) exceed total_nodes (%d)", fixed, f.total)
	}
	if weightSum == 0 && remain != 0 {
		return nil, fmt.Errorf("fleet: explicit group nodes (%d) do not cover total_nodes (%d) and no weighted group takes the remainder", fixed, f.total)
	}
	alloc := make([]int, len(f.groups))
	if weightSum > 0 {
		type slot struct {
			idx int
			rem int
		}
		var slots []slot
		assigned := 0
		for i, g := range f.groups {
			if g.nodes > 0 {
				alloc[i] = g.nodes
				continue
			}
			share := remain * g.weight / weightSum
			alloc[i] = share
			assigned += share
			slots = append(slots, slot{idx: i, rem: remain * g.weight % weightSum})
		}
		sort.SliceStable(slots, func(a, b int) bool { return slots[a].rem > slots[b].rem })
		for j := 0; j < remain-assigned; j++ {
			alloc[slots[j%len(slots)].idx]++
		}
	} else {
		for i, g := range f.groups {
			alloc[i] = g.nodes
		}
	}
	out := make([]cluster.NodeGroup, len(f.groups))
	for i, g := range f.groups {
		if alloc[i] < 1 {
			return nil, fmt.Errorf("fleet group %q resolves to 0 nodes (raise its weight or total_nodes)", g.name)
		}
		rpn := g.ranksPerNode
		if rpn == 0 {
			rpn = 1
		}
		out[i] = cluster.NodeGroup{
			Name: g.name, Nodes: alloc[i], RanksPerNode: rpn,
			EndpointsPerNode: g.epsPerNode, NICQueues: g.nicQueues,
		}
		out[i].Mem.Frames = g.frames
	}
	return out, nil
}

// rankNodes maps global rank -> node index for a grouped fleet (block
// rank distribution, groups in declaration order).
func rankNodes(groups []cluster.NodeGroup) []int {
	var out []int
	node := 0
	for _, g := range groups {
		for n := 0; n < g.Nodes; n++ {
			for r := 0; r < g.RanksPerNode; r++ {
				out = append(out, node)
			}
			node++
		}
	}
	return out
}

// totalRanks counts the cluster's ranks the way cluster.New will.
func totalRanks(cfg cluster.Config) int {
	if len(cfg.Groups) > 0 {
		total := 0
		for _, g := range cfg.Groups {
			rpn := g.RanksPerNode
			if rpn == 0 {
				rpn = 1
			}
			total += g.Nodes * rpn
		}
		return total
	}
	nodes := cfg.Nodes
	if nodes == 0 {
		nodes = 2
	}
	rpn := cfg.RanksPerNode
	if rpn == 0 {
		rpn = 1
	}
	return nodes * rpn
}

// startupDelay computes one node's startup offset: the pattern's base
// stagger plus seeded per-node jitter. The draw comes from a per-node
// RNG stream keyed off (seed, node), so the schedule is a pure function
// of its arguments — identical across shard counts and GOMAXPROCS.
func startupDelay(st startupSpec, node, total int, seed int64) sim.Duration {
	spread := float64(st.spread)
	var base, step float64
	switch st.pattern {
	case startLinear:
		if total > 1 {
			base = spread * float64(node) / float64(total-1)
		}
		step = spread / float64(total)
	case startExponential:
		if total > 1 {
			base = spread * math.Log(float64(node)+1) / math.Log(float64(total))
		}
		step = spread / float64(total)
	case startWave:
		waves := st.waves
		gap := spread / float64(waves)
		if waves > 1 {
			gap = spread / float64(waves-1)
		}
		base = gap * float64(node*waves/total)
		step = spread / float64(waves)
	default: // instant
		step = spread
	}
	if st.jitter > 0 && step > 0 {
		rng := rand.New(rand.NewSource(seed ^ (int64(node)+1)*0x5851f42d4c957f2d))
		base += rng.Float64() * st.jitter * step
	}
	return sim.Duration(base)
}

// LoadAndRegisterSpecFile loads a spec file and registers the compiled
// scenario with SourceFile. A name collision — with a builtin or an
// earlier file — is a hard error, never a silent shadow.
func LoadAndRegisterSpecFile(path string) (*Scenario, error) {
	s, err := LoadSpecFile(path)
	if err != nil {
		return nil, err
	}
	s.Source = SourceFile
	if err := Register(s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ValidateSpecFile parses and compiles a spec file without registering
// it, additionally reporting a name collision with the live registry as
// an error (what registration would reject).
func ValidateSpecFile(path string) (*Scenario, error) {
	s, err := LoadSpecFile(path)
	if err != nil {
		return nil, err
	}
	if prev, ok := Get(s.Name); ok {
		return nil, fmt.Errorf("%s: scenario name %q collides with the registered %s scenario", path, s.Name, prev.Source)
	}
	return s, nil
}
