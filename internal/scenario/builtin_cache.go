// builtin_cache.go registers the cache-stress scenario family: targeted
// workloads for the production-grade registration cache — realloc churn
// at reused addresses (the staleness hazard MMU-notifier coupling
// eliminates), overlapping sub-buffer communication (subrange hits
// through the interval index), multi-endpoint sharing of one per-process
// cache, and byte-budget eviction pressure under both eviction policies.
package scenario

import (
	"fmt"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/vm"
)

func init() {
	// cache-stress-realloc: malloc → send → free in a tight loop. The
	// allocator hands the same address back every round, so every send
	// after the first would be a byte-identical cache key — the unmap
	// notifier must have dropped the dead entry each time, making every
	// round a clean miss + fresh declaration, never a stale hit against
	// the munmap'd mapping.
	const reallocIters = 6
	MustRegister(&Scenario{
		Name:        "cache-stress-realloc",
		Description: "Realloc churn at reused addresses: every free drops the cached declaration, every round re-declares — no stale hits",
		Cases: []Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
			{Label: "overlapped-cache", OMX: omx.DefaultConfig(core.Overlapped, true)},
			{Label: "pin-ahead", OMX: omx.DefaultConfig(core.PinAhead, true)},
		},
		Workload: func(c *mpi.Comm, cr *CaseRun) {
			const n = 1 << 20
			if c.Rank() == 1 {
				recv := c.Malloc(n)
				for i := 0; i < reallocIters; i++ {
					c.Recv(recv, n, 0, 5)
				}
				return
			}
			for i := 0; i < reallocIters; i++ {
				buf := c.Malloc(n)
				c.Send(buf, n, 1, 5)
				c.Free(buf)
			}
		},
		Assertions: []Assertion{
			Completed(),
			// Every sender free must have dropped its cached declaration.
			MetricAtLeast("stats.cache_invalidations", reallocIters),
			// Sender re-declares every round; receiver declares once.
			MetricAtLeast("stats.declares", reallocIters+1),
			// The structural point: nothing ever pinned a dead mapping.
			MetricBelow("stats.pin_failures", 1),
		},
	})

	// cache-stress-subrange: one big declaration per rank, then traffic
	// over overlapping sub-buffers inside it. Every sub-buffer request is
	// fully covered by the big declaration, so the interval index serves
	// it as a subrange hit — no further declarations on either side.
	subOffsets := []int{0, 64 << 10, 1 << 20, (1 << 20) + (128 << 10), 3 << 20, (3 << 20) + (200 << 10)}
	MustRegister(&Scenario{
		Name:        "cache-stress-subrange",
		Description: "Overlapping sub-buffer traffic inside one declared buffer: subrange hits through the interval index, no extra declarations",
		Cases: []Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
			{Label: "overlapped-cache", OMX: omx.DefaultConfig(core.Overlapped, true)},
		},
		Workload: func(c *mpi.Comm, cr *CaseRun) {
			const n = 4 << 20
			const sub = 256 << 10
			big := c.Malloc(n)
			if c.Rank() == 0 {
				c.Send(big, n, 1, 7) // declares the whole buffer
				for _, off := range subOffsets {
					c.Send(big+vm.Addr(off), sub, 1, 7) // subrange hits
				}
			} else {
				c.Recv(big, n, 0, 7)
				for _, off := range subOffsets {
					c.Recv(big+vm.Addr(off), sub, 0, 7)
				}
			}
		},
		Assertions: []Assertion{
			Completed(),
			// 6 sub-sends + 6 sub-recvs, all covered by the big entries.
			MetricAtLeast("stats.cache_subrange_hits", 2*float64(len(subOffsets))),
			// One declaration per rank — the acceptance criterion: a
			// subrange request hits without a new declaration.
			MetricBelow("stats.declares", 3),
			MetricBelow("stats.pin_failures", 1),
		},
	})

	// cache-stress-share: two ranks per node in ONE process (shared
	// address space and shared region cache). Rank 0 declares a buffer by
	// communicating; rank 1 then sends the same buffer — its lookup hits
	// the process-shared cache entry rank 0 created.
	MustRegister(&Scenario{
		Name:        "cache-stress-share",
		Description: "Two endpoints sharing one process cache: a buffer declared via one endpoint is a cache hit on the other",
		Cluster:     cluster.Config{Nodes: 2, RanksPerNode: 2, RanksPerProc: 2},
		Cases: []Case{
			{Label: "cache", OMX: omx.DefaultConfig(core.OnDemand, true)},
			{Label: "pin-ahead", OMX: omx.DefaultConfig(core.PinAhead, true)},
		},
		Workload: func(c *mpi.Comm, cr *CaseRun) {
			const n = 2 << 20
			// Ranks 0,1 share node 0's process; ranks 2,3 share node 1's.
			var buf vm.Addr
			if c.Rank() == 0 {
				buf = c.Malloc(n)
				cr.RegisterBuffer(0, "shared", buf, n)
			}
			c.Barrier()
			switch c.Rank() {
			case 0:
				c.Send(buf, n, 2, 9)
			case 2:
				recv := c.Malloc(n)
				c.Recv(recv, n, 0, 9)
			}
			c.Barrier()
			switch c.Rank() {
			case 1:
				// The same buffer, through the sibling endpoint: the
				// process-shared cache already holds its declaration.
				addr, _, ok := cr.Buffer(0, "shared")
				if !ok {
					cr.Note("shared buffer not registered")
					return
				}
				c.Send(addr, n, 3, 9)
			case 3:
				recv := c.Malloc(n)
				c.Recv(recv, n, 1, 9)
			}
			c.Barrier()
		},
		Assertions: []Assertion{
			Completed(),
			// Rank 1's send reuses rank 0's declaration.
			MetricAtLeast("stats.cache_hits", 1),
			// One declaration for the shared buffer + one per receiver.
			MetricBelow("stats.declares", 4),
			MetricBelow("stats.pin_failures", 1),
		},
	})

	// cache-stress-pressure: the sender's working set (4 MiB across four
	// buffers) exceeds its cache byte budget (3 MiB), so the cache must
	// keep evicting idle declarations to stay within budget — under both
	// LRU and size-weighted eviction.
	pressureCase := func(label, eviction string) Case {
		cfg := omx.DefaultConfig(core.OnDemand, true)
		cfg.CacheByteCapacity = 3 << 20
		cfg.CacheEviction = eviction
		return Case{Label: label, OMX: cfg}
	}
	MustRegister(&Scenario{
		Name:        "cache-stress-pressure",
		Description: "Working set over the cache byte budget: eviction keeps cached bytes within budget, under LRU and size-weighted policies",
		Cases: []Case{
			pressureCase("lru", "lru"),
			pressureCase("size-weighted", "size"),
		},
		Workload: func(c *mpi.Comm, cr *CaseRun) {
			const n = 1 << 20
			const rounds = 2
			if c.Rank() == 1 {
				recv := c.Malloc(n)
				for i := 0; i < rounds*4; i++ {
					c.Recv(recv, n, 0, 11)
				}
				return
			}
			var bufs []vm.Addr
			for i := 0; i < 4; i++ {
				bufs = append(bufs, c.Malloc(n))
			}
			for r := 0; r < rounds; r++ {
				for _, b := range bufs {
					c.Send(b, n, 1, 11)
				}
			}
		},
		Assertions: []Assertion{
			Completed(),
			MetricAtLeast("stats.cache_evictions", 1),
			MetricBelow("stats.pin_failures", 1),
			cacheByteBudgetRespected(),
		},
	})
}

// cacheByteBudgetRespected asserts that, at the end of the run, every
// process cache with a configured byte budget sits within it — the
// acceptance criterion for budget-pressure eviction. (Referenced entries
// may exceed the budget transiently; at quiescence nothing is referenced.)
func cacheByteBudgetRespected() Assertion {
	return EachCase("cache byte budget respected", func(cr *CaseRun) (bool, string) {
		budget := cr.Case.OMX.CacheByteCapacity
		if budget <= 0 || cr.Cluster == nil {
			return true, ""
		}
		for _, p := range cr.Cluster.Processes() {
			if b := p.Cache().Bytes(); b > budget {
				return false, fmt.Sprintf("process %d caches %d bytes > budget %d",
					p.PID(), b, budget)
			}
		}
		return true, ""
	})
}
