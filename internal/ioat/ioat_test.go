package ioat

import (
	"testing"

	"omxsim/internal/sim"
)

func TestCopyCompletesAtBandwidth(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, 1.6e9)
	var done sim.Time
	d.SubmitCopy(16000, nil, func() { done = e.Now() })
	e.Run()
	// 16000 / 1.6e9 s = 10us
	if done != 10_000 {
		t.Fatalf("copy done at %v, want 10us", done)
	}
	if d.Copies() != 1 || d.BytesCopied() != 16000 {
		t.Fatal("counters wrong")
	}
}

func TestCopiesSerializeFIFO(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, 1e9)
	var order []int
	var times []sim.Time
	d.SubmitCopy(1000, nil, func() { order = append(order, 1); times = append(times, e.Now()) })
	d.SubmitCopy(1000, nil, func() { order = append(order, 2); times = append(times, e.Now()) })
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	if times[0] != 1000 || times[1] != 2000 {
		t.Fatalf("times = %v, want [1us 2us]", times)
	}
	if d.BusyTime() != 2000 {
		t.Fatalf("BusyTime = %v", d.BusyTime())
	}
}

func TestMoveRunsBeforeDone(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, 0) // default bandwidth
	moved := false
	d.SubmitCopy(100, func() { moved = true }, func() {
		if !moved {
			t.Error("done ran before move")
		}
	})
	e.Run()
	if !moved {
		t.Fatal("move never ran")
	}
}

func TestLaterSubmitAfterIdleStartsAtNow(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, 1e9)
	var done sim.Time
	e.After(5000, func() {
		d.SubmitCopy(1000, nil, func() { done = e.Now() })
	})
	e.Run()
	if done != 6000 {
		t.Fatalf("done at %v, want 6us (starts when submitted, not at old busyUntil)", done)
	}
}

func TestZeroSizeCopy(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, 1e9)
	ran := false
	d.SubmitCopy(0, nil, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("zero-size copy never completed")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	e := sim.NewEngine(1)
	d := New(e, 1e9)
	defer func() {
		if recover() == nil {
			t.Error("negative size did not panic")
		}
	}()
	d.SubmitCopy(-1, nil, nil)
}
