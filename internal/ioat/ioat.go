// Package ioat simulates the Intel I/O Acceleration Technology DMA copy
// engine (Grover & Leech, Linux Symposium 2005) that Open-MX uses to offload
// receive-side copies from the CPU (paper §2.2).
//
// The engine is a single-channel FIFO copy device: submitted copies execute
// in order at the engine's bandwidth, asynchronously with respect to the
// cores. Its value in the paper is precisely that the RX data copy no
// longer consumes bottom-half CPU time, so the wire — not the memcpy —
// becomes the throughput bottleneck.
package ioat

import (
	"fmt"

	"omxsim/internal/sim"
)

// DefaultBytesPerSec is the copy bandwidth of the simulated engine,
// calibrated so that I/OAT-offloaded receive keeps up with a 10G wire
// (1.25 GB/s) with headroom, matching the paper's Figure 6 where the I/OAT
// curves sit near wire speed.
const DefaultBytesPerSec = 1.6e9

// SetupCost is the per-copy host cost of programming a descriptor. It is
// charged on the submitting core by the caller (the driver), not inside the
// engine; it is exported so the driver and tests agree on the constant.
const SetupCost = 150 * sim.Nanosecond

// Engine is one I/OAT DMA channel. Queued copies are tracked in a FIFO
// with a single in-flight completion event (the head's), so a deep queue
// costs the simulator one pending event instead of one per descriptor.
type Engine struct {
	eng         *sim.Engine
	bytesPerSec float64
	busyUntil   sim.Time

	queue    []copyReq
	inFlight bool
	complete func() // pre-bound head-completion callback

	copies    uint64
	bytes     uint64
	busyTotal sim.Duration
}

// copyReq is one queued descriptor.
type copyReq struct {
	size int
	dur  sim.Duration
	end  sim.Time
	move func()
	done func()
}

// New returns an engine with the given bandwidth (0 selects
// DefaultBytesPerSec).
func New(eng *sim.Engine, bytesPerSec float64) *Engine {
	if bytesPerSec <= 0 {
		bytesPerSec = DefaultBytesPerSec
	}
	return &Engine{eng: eng, bytesPerSec: bytesPerSec}
}

// BytesPerSec returns the engine bandwidth.
func (d *Engine) BytesPerSec() float64 { return d.bytesPerSec }

// Copies reports the number of completed copy descriptors.
func (d *Engine) Copies() uint64 { return d.copies }

// BytesCopied reports total bytes moved.
func (d *Engine) BytesCopied() uint64 { return d.bytes }

// BusyTime reports accumulated channel-busy time.
func (d *Engine) BusyTime() sim.Duration { return d.busyTotal }

// SubmitCopy queues a copy of size bytes; move (which may be nil) performs
// the actual data movement and runs at completion time, followed by done.
// Copies complete in submission order (single channel).
func (d *Engine) SubmitCopy(size int, move func(), done func()) {
	if size < 0 {
		panic(fmt.Sprintf("ioat: negative copy size %d", size))
	}
	dur := sim.Duration(float64(size) / d.bytesPerSec * 1e9)
	start := d.busyUntil
	if now := d.eng.Now(); start < now {
		start = now
	}
	end := start + dur
	d.busyUntil = end
	d.queue = append(d.queue, copyReq{size: size, dur: dur, end: end, move: move, done: done})
	if !d.inFlight {
		d.armHead()
	}
}

// armHead schedules the completion event for the queue head.
func (d *Engine) armHead() {
	if d.complete == nil {
		d.complete = d.completeHead
	}
	d.inFlight = true
	d.eng.At(d.queue[0].end, d.complete)
}

// completeHead retires the head descriptor and arms the next one.
func (d *Engine) completeHead() {
	req := d.queue[0]
	d.queue[0] = copyReq{}
	d.queue = d.queue[1:]
	if len(d.queue) == 0 {
		// Reclaim the drained backing array so the queue slice can grow
		// from the start again.
		d.queue = nil
		d.inFlight = false
	} else {
		d.armHead()
	}
	d.copies++
	d.bytes += uint64(req.size)
	d.busyTotal += req.dur
	if req.move != nil {
		req.move()
	}
	if req.done != nil {
		req.done()
	}
}
