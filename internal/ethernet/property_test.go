package ethernet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"omxsim/internal/sim"
)

// TestPropFIFOPerDirection: frames between one (src,dst) pair are always
// delivered in send order, whatever the size mix — the ordering invariant
// the omx gap-detection recovery depends on.
func TestPropFIFOPerDirection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine(seed)
		fab := NewFabric(e, DefaultLinkConfig())
		a := fab.AddNIC(0, 0)
		b := fab.AddNIC(1, 0)
		var got []int
		b.SetHandler(func(fr *Frame) { got = append(got, fr.Payload.(int)) })
		n := 50 + rng.Intn(100)
		sent := 0
		for i := 0; i < n; i++ {
			// Random send times and sizes.
			e.At(sim.Time(rng.Intn(1000)*10), func() {
				a.Send(&Frame{Dst: 1, Size: 1 + rng.Intn(9000), Payload: sent})
				sent++
			})
		}
		e.Run()
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropConservation: without drops, every frame sent is delivered
// exactly once, and byte counters balance.
func TestPropConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine(seed)
		fab := NewFabric(e, DefaultLinkConfig())
		nics := []*NIC{fab.AddNIC(0, 0), fab.AddNIC(1, 0), fab.AddNIC(2, 0)}
		delivered := make([]uint64, 3)
		for i, n := range nics {
			i := i
			n.SetHandler(func(fr *Frame) { delivered[i]++ })
		}
		total := 0
		for i := 0; i < 200; i++ {
			src := rng.Intn(3)
			dst := rng.Intn(3)
			if dst == src {
				continue
			}
			total++
			s, d := src, dst
			e.At(sim.Time(rng.Intn(5000)), func() {
				nics[s].Send(&Frame{Dst: d, Size: rng.Intn(4096)})
			})
		}
		e.Run()
		sum := uint64(0)
		for i, n := range nics {
			sum += delivered[i]
			if n.RxFrames() != delivered[i] {
				return false
			}
		}
		return sum == uint64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
