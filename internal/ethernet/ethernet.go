// Package ethernet simulates the generic Ethernet layer Open-MX runs on: a
// full-duplex point-to-point fabric of NICs and links with wire
// serialization, propagation delay, per-frame overheads, MTU enforcement,
// optional loss injection, and RX interrupts.
//
// The model deliberately stops at the abstraction Open-MX sees: frames go
// in, frames come out later, receives happen in interrupt context (the
// driver schedules bottom-half work from the RX callback). Fragmentation,
// retransmission, and message semantics live in the omx protocol layer.
package ethernet

import (
	"fmt"
	"math/rand"

	"omxsim/internal/sim"
)

// Frame wire-format constants.
const (
	// MTU is the maximum payload per frame. 10G HPC deployments use jumbo
	// frames; the Myri-10G NICs in the paper's testbed run MTU 9000.
	DefaultMTU = 9000
	// WireOverhead is the non-payload cost per frame on the wire: preamble
	// (8) + Ethernet header (14) + FCS (4) + inter-frame gap (12).
	WireOverhead = 38
)

// Frame is one Ethernet frame. Payload is an opaque protocol message; Size
// is the payload size in bytes as serialized on the wire (protocol headers
// included), which determines transmission time.
type Frame struct {
	Src, Dst int // node IDs
	Size     int // payload bytes, <= MTU
	Payload  any
	// Flow identifies the transport flow for queue steering: frames of one
	// flow always serialize on the same tx queue and land on the same rx
	// queue (like an RSS hash of the 5-tuple). Zero is the default flow;
	// single-queue NICs ignore it.
	Flow uint64
	// Queue is the destination rx queue, filled in by Send from the
	// seeded steering function and the destination NIC's queue count.
	Queue int
}

// LinkConfig describes one direction-pair of cabling.
type LinkConfig struct {
	// BytesPerSec is the raw signalling rate. 10 Gb/s = 1.25e9.
	BytesPerSec float64
	// PropDelay is one-way propagation + PHY latency.
	PropDelay sim.Duration
	// DropProb is an i.i.d. frame-loss probability (deterministic via the
	// engine RNG). Usually 0; tests and loss experiments raise it.
	DropProb float64
}

// DefaultLinkConfig is a 10G link with sub-microsecond PHY latency.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{BytesPerSec: 1.25e9, PropDelay: 500 * sim.Nanosecond}
}

// Degrade describes a temporary impairment of one NIC's attachment to the
// fabric. Zero-valued fields leave that aspect of the link untouched; a
// DropProb of 1 is a full partition window.
type Degrade struct {
	// ExtraLatency is added once per traversal on each degraded side:
	// egress frames from a degraded NIC and ingress frames to a degraded
	// NIC each pay it (propagation only — it never occupies the wire).
	ExtraLatency sim.Duration
	// BandwidthFactor scales the signalling rate of egress links, in
	// (0, 1]. Zero means no throttle.
	BandwidthFactor float64
	// DropProb is an additional i.i.d. loss probability applied per
	// direction: egress drops draw from the NIC's tx RNG, ingress drops
	// from a separate rx RNG, so loss patterns stay independent of how
	// traffic from other nodes interleaves.
	DropProb float64
}

// NIC is a network interface. RX delivery invokes the registered handler in
// "interrupt context" — handlers are expected to do minimal work and
// schedule bottom-half processing on a core.
type NIC struct {
	eng    *sim.Engine
	nodeID int
	mtu    int
	// TxOverhead is host-side per-frame send cost charged on the wire
	// schedule (descriptor ring, DMA setup). It serializes with frames.
	txOverhead sim.Duration
	// rxDelay is additional latency between a frame finishing on the wire
	// and the handler running (IRQ signalling + NAPI scheduling). Folding it
	// into the delivery event spares the receiver one timer per frame.
	rxDelay sim.Duration
	fabric  *Fabric
	handler func(*Frame)

	// queues is the tx/rx queue count (>= 1). Each flow is steered to one
	// tx queue (serialization lane) on the source and one rx queue on the
	// destination by the fabric's seeded steering function.
	queues int

	// txBusy tracks when each outgoing (tx queue, dst) lane frees up.
	// Link serialization state is per source NIC — not fabric-global —
	// so NICs on different engine shards never share mutable state.
	// Multi-queue NICs serialize each queue independently, like separate
	// hardware descriptor rings behind one wire.
	txBusy map[txKey]sim.Time

	// rng drives this NIC's egress loss decisions, one private stream per
	// tx queue. Giving every queue its own deterministic stream (seeded
	// from the fabric seed, the node ID, and the queue index) keeps drop
	// sequences independent of how sends from different nodes — or other
	// queues of the same node — interleave: a requirement for
	// shard-count-invariant traces, and the right model anyway (one
	// flow's traffic should not perturb another's loss pattern). Queue 0
	// keeps the historical per-NIC seed, so single-queue runs are
	// bit-for-bit identical to the pre-multi-queue simulator.
	rng []*rand.Rand

	// rxRng holds the per-rx-queue streams for ingress loss decisions
	// under degradation. Ingress and egress must not share a stream:
	// egress draws happen at send time on the source engine, ingress
	// draws at delivery time on this NIC's engine, and interleaving them
	// would make drop sequences depend on global event order.
	rxRng []*rand.Rand

	// Lifecycle and degradation state. Both are only ever mutated by
	// events on this NIC's own engine (chaos events land on the owning
	// shard); Send consults the source NIC's state, Deliver the
	// destination's, so no cross-shard reads of mutable state occur.
	down bool
	// degradeDepth counts overlapping degradation windows; the NIC is
	// degraded while it is positive. The most recent SetDegraded wins for
	// the effect values — chaos windows restore by depth, not by value.
	degradeDepth int
	degrade      Degrade

	// Statistics. txFrames doubles as the per-source sequence number the
	// shard router uses to tie-break simultaneous cross-shard arrivals —
	// it stays NIC-global (not per queue) so the tie-break key remains
	// unique per source whatever the queue layout.
	txFrames, rxFrames uint64
	txBytes, rxBytes   uint64
	dropped            uint64
	// Per-queue frame counters (len == queues), for steering tests and
	// queue-utilization reporting.
	txqFrames, rxqFrames []uint64
}

// txKey identifies one serialization lane: a tx queue paired with a
// destination node.
type txKey struct {
	queue int
	dst   int
}

// NodeID returns the identifier this NIC was registered under.
func (n *NIC) NodeID() int { return n.nodeID }

// MTU returns the NIC's maximum payload size.
func (n *NIC) MTU() int { return n.mtu }

// TxFrames reports frames sent. RxFrames reports frames delivered.
func (n *NIC) TxFrames() uint64 { return n.txFrames }

// RxFrames reports frames delivered to the handler.
func (n *NIC) RxFrames() uint64 { return n.rxFrames }

// TxBytes reports payload bytes sent.
func (n *NIC) TxBytes() uint64 { return n.txBytes }

// RxBytes reports payload bytes received.
func (n *NIC) RxBytes() uint64 { return n.rxBytes }

// Dropped reports frames lost on links out of this NIC.
func (n *NIC) Dropped() uint64 { return n.dropped }

// Queues returns the NIC's tx/rx queue count.
func (n *NIC) Queues() int { return n.queues }

// TxQueueFrames reports frames sent through tx queue q.
func (n *NIC) TxQueueFrames(q int) uint64 { return n.txqFrames[q] }

// RxQueueFrames reports frames delivered on rx queue q.
func (n *NIC) RxQueueFrames(q int) uint64 { return n.rxqFrames[q] }

// SetQueues resizes the NIC to q tx/rx queues (q >= 1), rebuilding the
// per-queue RNG streams. Queue 0 keeps the NIC's historical seed; higher
// queues derive theirs from (fabric seed, node ID, queue index). Must be
// called before any traffic flows — it resets the loss streams.
func (n *NIC) SetQueues(q int) {
	if q < 1 {
		panic(fmt.Sprintf("ethernet: NIC queue count %d < 1", q))
	}
	n.queues = q
	n.rng = make([]*rand.Rand, q)
	n.rxRng = make([]*rand.Rand, q)
	seed := n.fabric.Seed
	for i := 0; i < q; i++ {
		salt := int64(uint64(i) * 0x94d049bb133111eb) // 0 for queue 0: legacy seed
		n.rng[i] = rand.New(rand.NewSource(seed ^ int64(uint64(n.nodeID)*0x9e3779b97f4a7c15) ^ salt))
		n.rxRng[i] = rand.New(rand.NewSource(seed ^ int64(uint64(n.nodeID)*0x9e3779b97f4a7c15+0x6b79b56c3b21cd4f) ^ salt))
	}
	n.txqFrames = make([]uint64, q)
	n.rxqFrames = make([]uint64, q)
}

// SetDown sets the NIC's link state. A down NIC transmits nothing and
// discards every arriving frame — the node has gone dark as far as the
// fabric is concerned. Must be called from an event on the NIC's own
// engine (shard ownership).
func (n *NIC) SetDown(down bool) { n.down = down }

// Down reports whether the NIC is dark.
func (n *NIC) Down() bool { return n.down }

// SetDegraded opens one degradation window with the given impairments.
// Windows nest: each SetDegraded must be balanced by one ClearDegraded,
// and the NIC stays degraded (with the most recent effects) until the
// depth returns to zero. Must run on the NIC's own engine.
func (n *NIC) SetDegraded(d Degrade) {
	n.degradeDepth++
	n.degrade = d
}

// ClearDegraded closes one degradation window.
func (n *NIC) ClearDegraded() {
	if n.degradeDepth == 0 {
		panic("ethernet: ClearDegraded without matching SetDegraded")
	}
	n.degradeDepth--
}

// Degraded reports whether any degradation window is open.
func (n *NIC) Degraded() bool { return n.degradeDepth > 0 }

// SetHandler installs the RX interrupt handler.
func (n *NIC) SetHandler(h func(*Frame)) { n.handler = h }

// SetRxDelay sets the latency between wire arrival and handler invocation
// (IRQ + NAPI pipeline latency; pure delay, no core time).
func (n *NIC) SetRxDelay(d sim.Duration) { n.rxDelay = d }

// RxDelay returns the configured interrupt pipeline latency.
func (n *NIC) RxDelay() sim.Duration { return n.rxDelay }

// Fabric is a set of NICs with a link between every pair (and a loopback
// path within a node). Every inter-node pair shares the LinkConfig given at
// construction.
type Fabric struct {
	eng  *sim.Engine
	cfg  LinkConfig
	nics map[int]*NIC
	// Seed derives each NIC's private loss RNG; set it before adding NICs
	// (the cluster builder passes its simulation seed through).
	Seed int64
	// route, when non-nil, replaces direct delivery scheduling: every
	// frame is handed to the shard router, which schedules Deliver on the
	// destination NIC's engine at the given arrival time. Set by cluster
	// glue in sharded runs; nil keeps the legacy single-engine path.
	route RouteFunc
	// DropFilter, when non-nil, is consulted per frame; returning true
	// drops it. Used for deterministic loss injection in tests.
	DropFilter func(*Frame) bool
	// LoopbackBytesPerSec bounds intra-node delivery (shared-memory-ish);
	// zero means same speed as the wire.
	LoopbackBytesPerSec float64
}

// RouteFunc carries one frame across a shard boundary: schedule
// dst.Deliver(fr) on dst's engine at arrival time when. sendTime and
// srcSeq (the sending NIC's frame counter) are the canonical tie-break
// key for arrivals sharing an instant.
type RouteFunc func(dst *NIC, fr *Frame, when, sendTime sim.Time, srcSeq uint64)

// NewFabric creates an empty fabric with the given link parameters.
func NewFabric(eng *sim.Engine, cfg LinkConfig) *Fabric {
	if cfg.BytesPerSec <= 0 {
		panic("ethernet: non-positive link bandwidth")
	}
	return &Fabric{
		eng:  eng,
		cfg:  cfg,
		nics: make(map[int]*NIC),
	}
}

// SetRouter installs the cross-shard delivery path. Must be called
// before any traffic flows.
func (f *Fabric) SetRouter(r RouteFunc) { f.route = r }

// AddNIC registers a NIC for nodeID with the given MTU (0 selects
// DefaultMTU) and returns it. The NIC schedules on the fabric's engine.
func (f *Fabric) AddNIC(nodeID, mtu int) *NIC {
	return f.AddNICOn(f.eng, nodeID, mtu)
}

// AddNICOn registers a NIC whose events run on the given engine — the
// shard that owns nodeID in a sharded cluster. With every node on one
// engine it is identical to AddNIC.
func (f *Fabric) AddNICOn(eng *sim.Engine, nodeID, mtu int) *NIC {
	if _, dup := f.nics[nodeID]; dup {
		panic(fmt.Sprintf("ethernet: duplicate NIC for node %d", nodeID))
	}
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	n := &NIC{
		eng:        eng,
		nodeID:     nodeID,
		mtu:        mtu,
		txOverhead: 200 * sim.Nanosecond,
		fabric:     f,
		txBusy:     make(map[txKey]sim.Time),
	}
	n.SetQueues(1)
	f.nics[nodeID] = n
	return n
}

// SteerQueue is the seeded RSS-style steering function: it maps a flow id
// onto one of queues lanes. The hash mixes the fabric seed, so steering is
// deterministic per fabric but decorrelated across seeds (like Toeplitz
// RSS with a random key). SteerQueue(_, 1) is always 0.
func (f *Fabric) SteerQueue(flow uint64, queues int) int {
	if queues <= 1 {
		return 0
	}
	h := flow ^ uint64(f.Seed)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(queues))
}

// NIC returns the NIC registered for nodeID.
func (f *Fabric) NIC(nodeID int) *NIC { return f.nics[nodeID] }

// Config returns the fabric's link configuration.
func (f *Fabric) Config() LinkConfig { return f.cfg }

// Send transmits a frame. The frame occupies the (src,dst) direction of the
// wire for its serialization time; frames queued behind it wait. Delivery
// fires the destination NIC's handler after propagation. Sending to an
// unknown destination or oversized frames panic — both are driver bugs, not
// runtime conditions.
func (n *NIC) Send(fr *Frame) {
	if fr.Size < 0 || fr.Size > n.mtu {
		panic(fmt.Sprintf("ethernet: frame size %d outside [0,%d]", fr.Size, n.mtu))
	}
	dst, ok := n.fabric.nics[fr.Dst]
	if !ok {
		panic(fmt.Sprintf("ethernet: send to unknown node %d", fr.Dst))
	}
	if n.down {
		// A dark NIC transmits nothing: the frame vanishes without
		// occupying the wire or advancing the tx sequence.
		n.dropped++
		return
	}
	fr.Src = n.nodeID
	// Steer the flow: one tx serialization lane on this NIC, one rx queue
	// on the destination (recorded in the frame, read at Deliver time).
	txq := n.fabric.SteerQueue(fr.Flow, n.queues)
	fr.Queue = n.fabric.SteerQueue(fr.Flow, dst.queues)
	n.txFrames++
	n.txqFrames[txq]++
	n.txBytes += uint64(fr.Size)

	bw := n.fabric.cfg.BytesPerSec
	if fr.Dst == n.nodeID && n.fabric.LoopbackBytesPerSec > 0 {
		bw = n.fabric.LoopbackBytesPerSec
	}
	if n.degradeDepth > 0 && n.degrade.BandwidthFactor > 0 {
		bw *= n.degrade.BandwidthFactor
	}
	wireTime := sim.Duration(float64(fr.Size+WireOverhead) / bw * 1e9)

	sendTime := n.eng.Now()
	lane := txKey{queue: txq, dst: fr.Dst}
	start := n.txBusy[lane]
	if start < sendTime {
		start = sendTime
	}
	start += n.txOverhead
	end := start + wireTime
	n.txBusy[lane] = end

	if n.fabric.DropFilter != nil && n.fabric.DropFilter(fr) {
		n.dropped++
		return
	}
	if p := n.fabric.cfg.DropProb; p > 0 && n.rng[txq].Float64() < p {
		n.dropped++
		return
	}
	when := end + n.fabric.cfg.PropDelay + dst.rxDelay
	if n.degradeDepth > 0 {
		if p := n.degrade.DropProb; p > 0 && n.rng[txq].Float64() < p {
			n.dropped++
			return
		}
		when += n.degrade.ExtraLatency
	}
	if n.fabric.route != nil {
		n.fabric.route(dst, fr, when, sendTime, n.txFrames)
		return
	}
	n.eng.At(when, func() { dst.Deliver(fr) })
}

// Deliver hands an arrived frame to the NIC's handler, in interrupt
// context at the current simulated time. The shard router calls it on
// the destination engine; the legacy path schedules it directly.
// Destination-side impairments apply here, on the destination engine,
// reading only destination-owned state: a down NIC discards the frame, a
// degraded one may drop it (rx RNG) or defer the handler by the window's
// extra latency.
func (n *NIC) Deliver(fr *Frame) {
	if n.down {
		n.dropped++
		return
	}
	rxq := fr.Queue
	if rxq >= n.queues {
		rxq = 0 // queue layout changed mid-flight; fall back to queue 0
	}
	if n.degradeDepth > 0 {
		if p := n.degrade.DropProb; p > 0 && n.rxRng[rxq].Float64() < p {
			n.dropped++
			return
		}
		if d := n.degrade.ExtraLatency; d > 0 {
			n.eng.After(d, func() { n.deliverNow(fr) })
			return
		}
	}
	n.deliverNow(fr)
}

func (n *NIC) deliverNow(fr *Frame) {
	if n.down {
		// The NIC went dark while the frame sat in the deferred-delivery
		// window.
		n.dropped++
		return
	}
	n.rxFrames++
	if fr.Queue < n.queues {
		n.rxqFrames[fr.Queue]++
	} else {
		n.rxqFrames[0]++
	}
	n.rxBytes += uint64(fr.Size)
	if n.handler != nil {
		n.handler(fr)
	}
}

// SerializationTime reports how long a payload of size bytes occupies the
// wire, including per-frame overhead. Useful for calibration tests.
func (f *Fabric) SerializationTime(size int) sim.Duration {
	return sim.Duration(float64(size+WireOverhead) / f.cfg.BytesPerSec * 1e9)
}
