// sharded_test.go regression-tests the per-NIC state split that makes
// the fabric safe to drive from multiple engine shards: per-source link
// serialization state (txBusy) and per-NIC loss RNGs. Both tests fail on
// the pre-shard code (fabric-global linkBusy map, engine-shared RNG).
package ethernet

import (
	"testing"

	"omxsim/internal/sim"
)

// dropPattern records which of n sequentially-sent frames from NIC src
// are dropped, with `others` extra NICs also sending one frame each
// between src's sends (traffic that must not perturb src's loss stream).
func dropPattern(t *testing.T, n, others int) []bool {
	t.Helper()
	e := sim.NewEngine(1)
	cfg := DefaultLinkConfig()
	cfg.DropProb = 0.5
	f := NewFabric(e, cfg)
	f.Seed = 42
	src := f.AddNIC(0, 0)
	f.AddNIC(1, 0).SetHandler(func(*Frame) {})
	for i := 0; i < others; i++ {
		f.AddNIC(2+i, 0).SetHandler(func(*Frame) {})
	}
	pattern := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		before := src.Dropped()
		src.Send(&Frame{Dst: 1, Size: 100})
		pattern = append(pattern, src.Dropped() > before)
		for o := 0; o < others; o++ {
			f.NIC(2 + o).Send(&Frame{Dst: 1, Size: 100})
		}
	}
	e.Run()
	return pattern
}

// TestPerNICLossStreamsIndependent checks a node's frame-loss sequence is
// a function of (fabric seed, node ID) alone: adding other senders to the
// fabric must not change which of its frames drop. The old implementation
// drew from the engine's shared RNG, so any interleaved sender shifted
// everyone else's loss pattern — and with shards, the pattern depended on
// nondeterministic cross-shard interleaving.
func TestPerNICLossStreamsIndependent(t *testing.T) {
	alone := dropPattern(t, 64, 0)
	crowded := dropPattern(t, 64, 3)
	for i := range alone {
		if alone[i] != crowded[i] {
			t.Fatalf("frame %d: dropped=%v alone but %v with other senders — loss stream not per-NIC", i, alone[i], crowded[i])
		}
	}
	// Sanity: with p=0.5 over 64 frames both outcomes must occur.
	drops := 0
	for _, d := range alone {
		if d {
			drops++
		}
	}
	if drops == 0 || drops == len(alone) {
		t.Fatalf("degenerate drop pattern (%d/%d): RNG not exercised", drops, len(alone))
	}
}

// TestPerNICSeedsDiffer checks distinct nodes get distinct loss streams
// from one fabric seed.
func TestPerNICSeedsDiffer(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultLinkConfig()
	cfg.DropProb = 0.5
	f := NewFabric(e, cfg)
	f.Seed = 42
	a, b := f.AddNIC(0, 0), f.AddNIC(1, 0)
	a.SetHandler(func(*Frame) {})
	b.SetHandler(func(*Frame) {})
	same := true
	for i := 0; i < 64 && same; i++ {
		da, db := a.Dropped(), b.Dropped()
		a.Send(&Frame{Dst: 1, Size: 100})
		b.Send(&Frame{Dst: 0, Size: 100})
		same = (a.Dropped() > da) == (b.Dropped() > db)
	}
	e.Run()
	if same {
		t.Fatal("nodes 0 and 1 share one loss stream")
	}
}

// TestFabricShardedSendsRaceFree drives two NICs on two engine shards
// concurrently, ping-ponging frames through the shard router. Under `go
// test -race` this catches any fabric state shared between sending NICs —
// the old fabric-global linkBusy map made every concurrent Send a data
// race.
func TestFabricShardedSendsRaceFree(t *testing.T) {
	ea, eb := sim.NewEngine(1), sim.NewEngine(1)
	cfg := DefaultLinkConfig() // 500ns PropDelay = lookahead
	ss := sim.NewShardSet(cfg.PropDelay, []*sim.Engine{ea, eb})
	f := NewFabric(ea, cfg)
	f.Seed = 1
	a := f.AddNICOn(ea, 0, 0)
	b := f.AddNICOn(eb, 1, 0)
	f.SetRouter(func(dst *NIC, fr *Frame, when, sendTime sim.Time, srcSeq uint64) {
		dstShard := fr.Dst // node i lives on shard i
		ss.Post(sim.CrossEvent{
			When: when, SendTime: sendTime,
			SrcShard: fr.Src, DstShard: dstShard,
			SrcNode: fr.Src, DstNode: fr.Dst, SrcSeq: srcSeq,
			Fn: func() { dst.Deliver(fr) },
		})
	})
	const rounds = 200
	a.SetHandler(func(fr *Frame) {
		if a.RxFrames() < rounds {
			a.Send(&Frame{Dst: 1, Size: 1000})
		}
	})
	b.SetHandler(func(fr *Frame) {
		if b.RxFrames() < rounds {
			b.Send(&Frame{Dst: 0, Size: 1000})
		}
	})
	// Both shards transmit in every window: each NIC streams its own
	// clock-driven sends in addition to the ping-pong.
	ea.At(1, func() { a.Send(&Frame{Dst: 1, Size: 1000}) })
	eb.At(1, func() { b.Send(&Frame{Dst: 0, Size: 1000}) })
	ss.Run()
	if a.RxFrames() < rounds || b.RxFrames() < rounds {
		t.Fatalf("rx counts %d/%d, want >= %d each", a.RxFrames(), b.RxFrames(), rounds)
	}
}
