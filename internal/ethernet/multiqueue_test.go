package ethernet

import (
	"testing"

	"omxsim/internal/sim"
)

// flowForQueue finds a flow id the fabric's seeded RSS function steers to
// queue q of queues.
func flowForQueue(t *testing.T, f *Fabric, q, queues int) uint64 {
	t.Helper()
	for flow := uint64(1); flow < 10000; flow++ {
		if f.SteerQueue(flow, queues) == q {
			return flow
		}
	}
	t.Fatalf("no flow steers to queue %d of %d", q, queues)
	return 0
}

func TestSteerQueueSingleQueueIsAlwaysZero(t *testing.T) {
	e := sim.NewEngine(7)
	f := NewFabric(e, DefaultLinkConfig())
	for flow := uint64(0); flow < 1000; flow++ {
		if q := f.SteerQueue(flow, 1); q != 0 {
			t.Fatalf("SteerQueue(%d, 1) = %d, want 0", flow, q)
		}
	}
}

func TestSteerQueueSpreadsAndIsSeeded(t *testing.T) {
	e := sim.NewEngine(7)
	f := NewFabric(e, DefaultLinkConfig())
	f.Seed = 7
	const queues = 4
	var hits [queues]int
	for flow := uint64(0); flow < 4000; flow++ {
		hits[f.SteerQueue(flow, queues)]++
	}
	for q, n := range hits {
		if n < 500 {
			t.Fatalf("queue %d got %d of 4000 flows: steering is degenerate", q, n)
		}
	}
	// A different fabric seed must produce a different flow→queue map.
	e2 := sim.NewEngine(8)
	f2 := NewFabric(e2, DefaultLinkConfig())
	f2.Seed = 8
	same := 0
	for flow := uint64(0); flow < 1000; flow++ {
		if f.SteerQueue(flow, queues) == f2.SteerQueue(flow, queues) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("steering map identical across fabric seeds")
	}
}

// TestQueueRNGIsolation is the per-queue RNG regression: one queue's
// traffic must not perturb another queue's drop pattern. Before the
// per-queue split a NIC drew every drop from one stream, so adding
// queue-0 frames shifted which queue-1 frames were dropped.
func TestQueueRNGIsolation(t *testing.T) {
	pattern := func(withOther bool) []bool {
		e := sim.NewEngine(42)
		cfg := DefaultLinkConfig()
		cfg.DropProb = 0.3
		f := NewFabric(e, cfg)
		a := f.AddNIC(0, 0)
		b := f.AddNIC(1, 0)
		a.SetQueues(2)
		b.SetQueues(2)
		q0 := flowForQueue(t, f, 0, 2)
		q1 := flowForQueue(t, f, 1, 2)
		delivered := make([]bool, 100)
		b.SetHandler(func(fr *Frame) {
			if id := fr.Payload.(int); id >= 0 {
				delivered[id] = true
			}
		})
		for i := 0; i < 100; i++ {
			if withOther {
				a.Send(&Frame{Dst: 1, Size: 100, Payload: -1, Flow: q0})
			}
			a.Send(&Frame{Dst: 1, Size: 100, Payload: i, Flow: q1})
		}
		e.Run()
		return delivered
	}
	quiet, noisy := pattern(false), pattern(true)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("queue 1 drop pattern perturbed by queue 0 traffic at frame %d", i)
		}
	}
}

// TestQueueZeroKeepsLegacyStream: queue 0 of a multi-queue NIC draws from
// the historical per-NIC streams, so traffic steered to queue 0 sees the
// same drops as the same traffic on a single-queue NIC — the invariant
// that keeps every existing scenario byte-identical.
func TestQueueZeroKeepsLegacyStream(t *testing.T) {
	pattern := func(queues int) []bool {
		e := sim.NewEngine(99)
		cfg := DefaultLinkConfig()
		cfg.DropProb = 0.3
		f := NewFabric(e, cfg)
		a := f.AddNIC(0, 0)
		b := f.AddNIC(1, 0)
		var flow uint64
		if queues > 1 {
			a.SetQueues(queues)
			b.SetQueues(queues)
			flow = flowForQueue(t, f, 0, queues)
		}
		delivered := make([]bool, 200)
		b.SetHandler(func(fr *Frame) { delivered[fr.Payload.(int)] = true })
		for i := 0; i < 200; i++ {
			a.Send(&Frame{Dst: 1, Size: 100, Payload: i, Flow: flow})
		}
		e.Run()
		return delivered
	}
	single, multi := pattern(1), pattern(4)
	for i := range single {
		if single[i] != multi[i] {
			t.Fatalf("queue 0 of a 4-queue NIC diverged from the single-queue stream at frame %d", i)
		}
	}
}

func TestPerQueueFrameCounters(t *testing.T) {
	e := sim.NewEngine(5)
	f := NewFabric(e, DefaultLinkConfig())
	a := f.AddNIC(0, 0)
	b := f.AddNIC(1, 0)
	a.SetQueues(2)
	b.SetQueues(2)
	q0 := flowForQueue(t, f, 0, 2)
	q1 := flowForQueue(t, f, 1, 2)
	b.SetHandler(func(fr *Frame) {})
	for i := 0; i < 3; i++ {
		a.Send(&Frame{Dst: 1, Size: 100, Flow: q0})
	}
	for i := 0; i < 5; i++ {
		a.Send(&Frame{Dst: 1, Size: 100, Flow: q1})
	}
	e.Run()
	if a.Queues() != 2 || b.Queues() != 2 {
		t.Fatalf("Queues() = %d/%d, want 2/2", a.Queues(), b.Queues())
	}
	if a.TxQueueFrames(0) != 3 || a.TxQueueFrames(1) != 5 {
		t.Fatalf("tx queue counters = %d/%d, want 3/5", a.TxQueueFrames(0), a.TxQueueFrames(1))
	}
	if b.RxQueueFrames(0) != 3 || b.RxQueueFrames(1) != 5 {
		t.Fatalf("rx queue counters = %d/%d, want 3/5", b.RxQueueFrames(0), b.RxQueueFrames(1))
	}
	if a.TxFrames() != 8 || b.RxFrames() != 8 {
		t.Fatalf("aggregate counters = %d/%d, want 8/8", a.TxFrames(), b.RxFrames())
	}
}
