package ethernet

import (
	"testing"

	"omxsim/internal/sim"
)

func twoNodes(t *testing.T, cfg LinkConfig) (*sim.Engine, *Fabric, *NIC, *NIC) {
	t.Helper()
	e := sim.NewEngine(7)
	f := NewFabric(e, cfg)
	return e, f, f.AddNIC(0, 0), f.AddNIC(1, 0)
}

func TestFrameDelivery(t *testing.T) {
	e, _, a, b := twoNodes(t, DefaultLinkConfig())
	var got *Frame
	var at sim.Time
	b.SetHandler(func(fr *Frame) { got, at = fr, e.Now() })
	a.Send(&Frame{Dst: 1, Size: 1000, Payload: "hello"})
	e.Run()
	if got == nil || got.Payload != "hello" || got.Src != 0 {
		t.Fatalf("got %+v", got)
	}
	// 200ns tx overhead + (1000+38)/1.25e9 s + 500ns prop = 200+830+500
	want := sim.Time(200 + 830 + 500)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
	if a.TxFrames() != 1 || b.RxFrames() != 1 || a.TxBytes() != 1000 || b.RxBytes() != 1000 {
		t.Fatal("counters wrong")
	}
}

func TestWireSerializesBackToBackFrames(t *testing.T) {
	e, _, a, b := twoNodes(t, DefaultLinkConfig())
	var arrivals []sim.Time
	b.SetHandler(func(fr *Frame) { arrivals = append(arrivals, e.Now()) })
	for i := 0; i < 3; i++ {
		a.Send(&Frame{Dst: 1, Size: 9000})
	}
	e.Run()
	if len(arrivals) != 3 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	// Each frame occupies the wire for (9000+38)/1.25e9 = 7230ns plus 200ns
	// tx overhead. Gaps between arrivals must equal that spacing.
	gap := arrivals[1] - arrivals[0]
	if gap != arrivals[2]-arrivals[1] {
		t.Fatalf("unequal gaps %v vs %v", gap, arrivals[2]-arrivals[1])
	}
	if gap != 7230+200 {
		t.Fatalf("gap = %v, want 7430", gap)
	}
}

func TestDirectionsAreIndependent(t *testing.T) {
	e, _, a, b := twoNodes(t, DefaultLinkConfig())
	var atB, atA sim.Time
	b.SetHandler(func(fr *Frame) { atB = e.Now() })
	a.SetHandler(func(fr *Frame) { atA = e.Now() })
	a.Send(&Frame{Dst: 1, Size: 9000})
	b.Send(&Frame{Dst: 0, Size: 9000})
	e.Run()
	if atA != atB {
		t.Fatalf("full duplex broken: %v vs %v", atA, atB)
	}
}

func TestThroughputApproaches10G(t *testing.T) {
	e, f, a, b := twoNodes(t, DefaultLinkConfig())
	const frames = 1000
	var last sim.Time
	n := 0
	b.SetHandler(func(fr *Frame) { n++; last = e.Now() })
	for i := 0; i < frames; i++ {
		a.Send(&Frame{Dst: 1, Size: 9000})
	}
	e.Run()
	if n != frames {
		t.Fatalf("delivered %d frames", n)
	}
	gbps := float64(frames*9000*8) / last.Seconds() / 1e9
	if gbps < 9.4 || gbps > 10.0 {
		t.Fatalf("goodput = %.2f Gb/s, want ~9.7", gbps)
	}
	_ = f
}

func TestOversizeFramePanics(t *testing.T) {
	_, _, a, _ := twoNodes(t, DefaultLinkConfig())
	defer func() {
		if recover() == nil {
			t.Error("oversize frame did not panic")
		}
	}()
	a.Send(&Frame{Dst: 1, Size: DefaultMTU + 1})
}

func TestUnknownDestinationPanics(t *testing.T) {
	_, _, a, _ := twoNodes(t, DefaultLinkConfig())
	defer func() {
		if recover() == nil {
			t.Error("unknown destination did not panic")
		}
	}()
	a.Send(&Frame{Dst: 99, Size: 10})
}

func TestDropFilter(t *testing.T) {
	e, f, a, b := twoNodes(t, DefaultLinkConfig())
	drops := 0
	f.DropFilter = func(fr *Frame) bool {
		drops++
		return drops == 1 // drop only the first frame
	}
	var got []int
	b.SetHandler(func(fr *Frame) { got = append(got, fr.Payload.(int)) })
	a.Send(&Frame{Dst: 1, Size: 100, Payload: 1})
	a.Send(&Frame{Dst: 1, Size: 100, Payload: 2})
	e.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v, want [2]", got)
	}
	if a.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", a.Dropped())
	}
}

func TestProbabilisticDropIsDeterministic(t *testing.T) {
	run := func() uint64 {
		e := sim.NewEngine(99)
		cfg := DefaultLinkConfig()
		cfg.DropProb = 0.3
		f := NewFabric(e, cfg)
		a := f.AddNIC(0, 0)
		f.AddNIC(1, 0)
		for i := 0; i < 200; i++ {
			a.Send(&Frame{Dst: 1, Size: 100})
		}
		e.Run()
		return a.Dropped()
	}
	d1, d2 := run(), run()
	if d1 != d2 {
		t.Fatalf("drop counts differ across identical runs: %d vs %d", d1, d2)
	}
	if d1 == 0 || d1 == 200 {
		t.Fatalf("drop count %d implausible for p=0.3", d1)
	}
}

func TestLoopbackDelivery(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFabric(e, DefaultLinkConfig())
	f.LoopbackBytesPerSec = 5e9
	a := f.AddNIC(0, 0)
	var got bool
	a.SetHandler(func(fr *Frame) { got = true })
	a.Send(&Frame{Dst: 0, Size: 4096})
	e.Run()
	if !got {
		t.Fatal("loopback frame not delivered")
	}
}

func TestSerializationTime(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFabric(e, DefaultLinkConfig())
	if got := f.SerializationTime(9000); got != 7230 {
		t.Fatalf("SerializationTime(9000) = %v, want 7230ns", got)
	}
}

func TestDuplicateNICPanics(t *testing.T) {
	e := sim.NewEngine(1)
	f := NewFabric(e, DefaultLinkConfig())
	f.AddNIC(0, 0)
	defer func() {
		if recover() == nil {
			t.Error("duplicate NIC did not panic")
		}
	}()
	f.AddNIC(0, 0)
}
