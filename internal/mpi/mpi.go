// Package mpi implements an MPI-like message-passing layer over Open-MX
// endpoints: blocking and non-blocking point-to-point operations plus the
// collectives the paper's evaluation uses (Table 2: SendRecv, Allgatherv,
// Broadcast, Reduce, Allreduce, Reduce_scatter, Exchange; NPB IS also needs
// Alltoallv). Algorithms follow the classical Open MPI "tuned" component
// shapes: binomial trees for Bcast/Reduce, ring for Allgatherv, pairwise
// for Alltoallv.
//
// Each rank runs as one simulated process; Run spawns them and returns when
// every rank's body has finished.
package mpi

import (
	"fmt"

	"omxsim/internal/omx"
	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// AnySource matches messages from every rank.
const AnySource = -1

// Match-info encoding: | 16 bits context | 16 bits src rank | 32 bits tag |.
const (
	srcShift = 32
	ctxShift = 48
	tagMask  = 0xffff_ffff
	// ctxPt2pt is user point-to-point traffic; collectives use a rolling
	// context so concurrent collectives never cross-match.
	ctxPt2pt = 1
	ctxColl  = 2
)

func encodeMatch(ctx uint64, src int, tag int) uint64 {
	return ctx<<ctxShift | uint64(uint16(src))<<srcShift | uint64(uint32(tag))
}

func matchMask(src int) uint64 {
	if src == AnySource {
		return ^uint64(0) &^ (uint64(0xffff) << srcShift)
	}
	return ^uint64(0)
}

// World is a set of ranks mapped onto Open-MX endpoints.
type World struct {
	eng  *sim.Engine
	eps  []*omx.Endpoint
	done []bool
	// snapshot, when non-nil, is a barrier-published copy of done that
	// AllDone reads instead of the live flags. In a sharded run rank
	// bodies set done concurrently on different shards; readers inside
	// the simulation (fault-injector polls) must see a consistent,
	// shard-count-invariant view, so the coordinator publishes one at
	// every synchronization barrier via PublishDone.
	snapshot []bool
}

// NewWorld wraps endpoints as ranks 0..len-1.
func NewWorld(eng *sim.Engine, eps []*omx.Endpoint) *World {
	return &World{eng: eng, eps: eps, done: make([]bool, len(eps))}
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.eps) }

// Endpoint returns rank r's endpoint.
func (w *World) Endpoint(r int) *omx.Endpoint { return w.eps[r] }

// AllDone reports whether every rank's body returned (as of the last
// barrier, in sharded runs).
func (w *World) AllDone() bool {
	flags := w.done
	if w.snapshot != nil {
		flags = w.snapshot
	}
	for _, d := range flags {
		if !d {
			return false
		}
	}
	return true
}

// PublishDone snapshots the rank-completion flags for AllDone readers.
// The shard coordinator calls it at every window barrier (all shards
// parked, so the live flags are stable); the first call switches AllDone
// to snapshot reads.
func (w *World) PublishDone() {
	if w.snapshot == nil {
		w.snapshot = make([]bool, len(w.done))
	}
	copy(w.snapshot, w.done)
}

// Run spawns one simulated process per rank executing body, each on the
// engine that owns its endpoint's node (all the same engine in a
// single-shard run). The caller drives the engine(s) and can check
// AllDone.
func (w *World) Run(body func(c *Comm)) {
	for r := range w.eps {
		r := r
		eng := w.eps[r].Node().Eng
		eng.Go(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			c := &Comm{world: w, p: p, ep: w.eps[r], rank: r, size: len(w.eps)}
			body(c)
			w.done[r] = true
		})
	}
}

// Comm is one rank's communicator handle, bound to its simulated process.
type Comm struct {
	world *World
	p     *sim.Proc
	ep    *omx.Endpoint
	rank  int
	size  int
	// collSeq numbers collective operations; every rank executes
	// collectives in the same order, so the sequence stays in lockstep and
	// doubles as the collective tag.
	collSeq uint32
}

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Proc returns the rank's simulated process.
func (c *Comm) Proc() *sim.Proc { return c.p }

// Endpoint returns the rank's Open-MX endpoint.
func (c *Comm) Endpoint() *omx.Endpoint { return c.ep }

// PeerAddr returns rank r's endpoint address, for layers (like the kv
// workload) that drive raw omx requests from worker processes outside the
// rank body and therefore cannot use the Comm verbs.
func (c *Comm) PeerAddr(r int) omx.EndpointAddr { return c.world.eps[r].Addr() }

// PeerAddrs returns all of rank r's serving-lane addresses: the primary
// endpoint followed by its aux endpoints (cluster assembly's
// EndpointsPerNode fan-out). Multi-endpoint workloads hash across them.
func (c *Comm) PeerAddrs(r int) []omx.EndpointAddr { return c.world.eps[r].AllAddrs() }

// Now returns the current simulated time.
func (c *Comm) Now() sim.Time { return c.p.Now() }

// Malloc allocates an application buffer in the rank's address space.
func (c *Comm) Malloc(n int) vm.Addr {
	a, err := c.ep.Malloc(n)
	if err != nil {
		panic(fmt.Sprintf("mpi: rank %d malloc(%d): %v", c.rank, n, err))
	}
	return a
}

// Free releases a buffer (possibly firing MMU notifiers — the free path the
// pinning cache must survive).
func (c *Comm) Free(a vm.Addr) {
	if err := c.ep.Free(a); err != nil {
		panic(fmt.Sprintf("mpi: rank %d free: %v", c.rank, err))
	}
}

// Compute burns d of application CPU time.
func (c *Comm) Compute(d sim.Duration) { c.ep.Compute(c.p, d) }

// Advise hints that [a, a+n) will be used for communication soon
// (eBPF-mm-style user guidance): under pin-ahead the driver pins the
// buffer speculatively, under other policies the declaration cache is
// warmed. It returns immediately; the work happens asynchronously.
func (c *Comm) Advise(a vm.Addr, n int) { c.ep.Advise(a, n) }

// WriteBytes/ReadBytes move data between Go slices and the rank's memory.
func (c *Comm) WriteBytes(a vm.Addr, b []byte) {
	if err := c.ep.AS.Write(a, b); err != nil {
		panic(fmt.Sprintf("mpi: rank %d write: %v", c.rank, err))
	}
}

// ReadBytes copies n bytes at a into a fresh slice.
func (c *Comm) ReadBytes(a vm.Addr, n int) []byte {
	b := make([]byte, n)
	if err := c.ep.AS.Read(a, b); err != nil {
		panic(fmt.Sprintf("mpi: rank %d read: %v", c.rank, err))
	}
	return b
}

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Len    int
}

// Isend starts a non-blocking send of n bytes at addr to rank dst. The
// request carries a non-blocking hint: under omx.Config.AdaptiveOverlap
// (paper §5) it pins synchronously, leaving the CPU to the application's
// own overlap.
func (c *Comm) Isend(addr vm.Addr, n, dst, tag int) *omx.Request {
	return c.ep.IsendVHint([]omx.Segment{{Addr: addr, Len: n}},
		encodeMatch(ctxPt2pt, c.rank, tag), c.world.eps[dst].Addr(), false)
}

// Irecv starts a non-blocking receive of up to n bytes from src (or
// AnySource), with a non-blocking hint like Isend.
func (c *Comm) Irecv(addr vm.Addr, n, src, tag int) *omx.Request {
	s := src
	if src == AnySource {
		s = 0
	}
	return c.ep.IrecvVHint([]omx.Segment{{Addr: addr, Len: n}},
		encodeMatch(ctxPt2pt, s, tag), matchMask(src), false)
}

// Wait blocks until the request completes, panicking on protocol errors
// (MPI's default error handler is abort).
func (c *Comm) Wait(r *omx.Request) Status {
	if err := c.ep.Wait(c.p, r); err != nil {
		panic(fmt.Sprintf("mpi: rank %d: %v", c.rank, err))
	}
	return statusOf(r)
}

// WaitAll waits for every request.
func (c *Comm) WaitAll(rs ...*omx.Request) {
	for _, r := range rs {
		c.Wait(r)
	}
}

func statusOf(r *omx.Request) Status {
	return Status{
		Source: int(uint16(r.RecvMatch >> srcShift)),
		Tag:    int(uint32(r.RecvMatch & tagMask)),
		Len:    r.RecvLen,
	}
}

// Send is the blocking form of Isend (blocking hint set: these are the
// operations overlapped pinning targets, paper §5).
func (c *Comm) Send(addr vm.Addr, n, dst, tag int) {
	c.Wait(c.ep.IsendVHint([]omx.Segment{{Addr: addr, Len: n}},
		encodeMatch(ctxPt2pt, c.rank, tag), c.world.eps[dst].Addr(), true))
}

// Recv is the blocking form of Irecv.
func (c *Comm) Recv(addr vm.Addr, n, src, tag int) Status {
	s := src
	if src == AnySource {
		s = 0
	}
	return c.Wait(c.ep.IrecvVHint([]omx.Segment{{Addr: addr, Len: n}},
		encodeMatch(ctxPt2pt, s, tag), matchMask(src), true))
}

// WaitE blocks until the request completes and returns its error instead
// of panicking — the MPI_ERRORS_RETURN handler. Fault-tolerant workloads
// (the chaos scenarios) use it so peer deaths surface as typed errors.
func (c *Comm) WaitE(r *omx.Request) (Status, error) {
	if err := c.ep.Wait(c.p, r); err != nil {
		return Status{}, err
	}
	return statusOf(r), nil
}

// SendE is Send with errors returned instead of panicking.
func (c *Comm) SendE(addr vm.Addr, n, dst, tag int) error {
	_, err := c.WaitE(c.ep.IsendVHint([]omx.Segment{{Addr: addr, Len: n}},
		encodeMatch(ctxPt2pt, c.rank, tag), c.world.eps[dst].Addr(), true))
	return err
}

// RecvE is Recv with errors returned instead of panicking.
func (c *Comm) RecvE(addr vm.Addr, n, src, tag int) (Status, error) {
	s := src
	if src == AnySource {
		s = 0
	}
	return c.WaitE(c.ep.IrecvVHint([]omx.Segment{{Addr: addr, Len: n}},
		encodeMatch(ctxPt2pt, s, tag), matchMask(src), true))
}

// RecvTimeout is RecvE with a deadline: if the receive has not completed
// after d, it is cancelled and returns omx.ErrTimeout (wrapped in
// omx.ErrAborted). The bound makes "a message that never comes" — the
// sender crashed before its envelope hit the wire — a typed error instead
// of a hang.
func (c *Comm) RecvTimeout(addr vm.Addr, n, src, tag int, d sim.Duration) (Status, error) {
	s := src
	if src == AnySource {
		s = 0
	}
	r := c.ep.IrecvVHint([]omx.Segment{{Addr: addr, Len: n}},
		encodeMatch(ctxPt2pt, s, tag), matchMask(src), true)
	timer := c.ep.Node().Eng.After(d, func() {
		c.ep.CancelRecv(r, omx.ErrTimeout)
	})
	st, err := c.WaitE(r)
	timer.Cancel() // no-op if already fired
	return st, err
}

// Sendrecv performs a simultaneous send and receive (MPI_Sendrecv).
func (c *Comm) Sendrecv(saddr vm.Addr, sn, dst, stag int, raddr vm.Addr, rn, src, rtag int) Status {
	rr := c.Irecv(raddr, rn, src, rtag)
	sr := c.Isend(saddr, sn, dst, stag)
	c.Wait(sr)
	return c.Wait(rr)
}
