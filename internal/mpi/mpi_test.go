package mpi_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

func newCluster(t *testing.T, nodes, ranksPerNode int) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Nodes:        nodes,
		RanksPerNode: ranksPerNode,
		OMX:          omx.DefaultConfig(core.OnDemand, true),
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*3 + seed
	}
	return b
}

func TestSendRecvBlocking(t *testing.T) {
	cl := newCluster(t, 2, 1)
	const n = 1 << 20
	want := pattern(n, 7)
	cl.Run(func(c *mpi.Comm) {
		buf := c.Malloc(n)
		switch c.Rank() {
		case 0:
			c.WriteBytes(buf, want)
			c.Send(buf, n, 1, 99)
		case 1:
			st := c.Recv(buf, n, 0, 99)
			if st.Source != 0 || st.Tag != 99 || st.Len != n {
				t.Errorf("status = %+v", st)
			}
			if !bytes.Equal(c.ReadBytes(buf, n), want) {
				t.Error("data corrupted")
			}
		}
	})
}

func TestAnySource(t *testing.T) {
	cl := newCluster(t, 2, 2) // 4 ranks
	cl.Run(func(c *mpi.Comm) {
		buf := c.Malloc(4096)
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				st := c.Recv(buf, 4096, mpi.AnySource, 5)
				seen[st.Source] = true
			}
			if len(seen) != 3 {
				t.Errorf("sources seen = %v", seen)
			}
		} else {
			c.WriteBytes(buf, pattern(4096, byte(c.Rank())))
			c.Send(buf, 4096, 0, 5)
		}
	})
}

func TestBarrier(t *testing.T) {
	cl := newCluster(t, 2, 2)
	arrived := make([]sim.Time, 4)
	cl.Run(func(c *mpi.Comm) {
		c.Compute(sim.Duration(c.Rank()) * 1000) // stagger arrival
		c.Barrier()
		arrived[c.Rank()] = c.Now()
		c.Barrier()
	})
	// After the first barrier everyone must be past the slowest arrival.
	for r, at := range arrived {
		if at < 3000 {
			t.Errorf("rank %d passed barrier at %d, before slowest arrival", r, at)
		}
	}
}

func TestBcastLarge(t *testing.T) {
	for _, perNode := range []int{1, 2} {
		ranks := 2 * perNode
		cl := newCluster(t, 2, perNode)
		const n = 2 << 20
		want := pattern(n, 3)
		ok := make([]bool, ranks)
		cl.Run(func(c *mpi.Comm) {
			buf := c.Malloc(n)
			if c.Rank() == 1 { // non-zero root
				c.WriteBytes(buf, want)
			}
			c.Bcast(buf, n, 1)
			if bytes.Equal(c.ReadBytes(buf, n), want) {
				ok[c.Rank()] = true
			}
		})
		for r := 0; r < ranks; r++ {
			if !ok[r] {
				t.Errorf("ranks=%d: rank %d has wrong bcast data", ranks, r)
			}
		}
	}
}

func TestReduceSumFloat64(t *testing.T) {
	cl := newCluster(t, 2, 2)
	const elems = 1 << 16
	n := elems * 8
	cl.Run(func(c *mpi.Comm) {
		buf := c.Malloc(n)
		local := make([]byte, n)
		for i := 0; i < elems; i++ {
			v := float64(c.Rank()+1) * float64(i)
			binary.LittleEndian.PutUint64(local[i*8:], math.Float64bits(v))
		}
		c.WriteBytes(buf, local)
		c.Reduce(buf, n, 0, mpi.SumFloat64)
		if c.Rank() == 0 {
			got := c.ReadBytes(buf, n)
			for i := 0; i < elems; i += 7777 {
				want := float64(1+2+3+4) * float64(i)
				v := math.Float64frombits(binary.LittleEndian.Uint64(got[i*8:]))
				if math.Abs(v-want) > 1e-9 {
					t.Errorf("elem %d = %v, want %v", i, v, want)
					return
				}
			}
		}
	})
}

func TestAllreduce(t *testing.T) {
	cl := newCluster(t, 2, 2)
	const elems = 4096
	n := elems * 4
	checked := 0
	cl.Run(func(c *mpi.Comm) {
		buf := c.Malloc(n)
		local := make([]byte, n)
		for i := 0; i < elems; i++ {
			binary.LittleEndian.PutUint32(local[i*4:], uint32(c.Rank()+i))
		}
		c.WriteBytes(buf, local)
		c.Allreduce(buf, n, mpi.SumInt32)
		got := c.ReadBytes(buf, n)
		for i := 0; i < elems; i += 997 {
			want := int32(0+1+2+3) + 4*int32(i)
			if v := int32(binary.LittleEndian.Uint32(got[i*4:])); v != want {
				t.Errorf("rank %d elem %d = %d, want %d", c.Rank(), i, v, want)
				return
			}
		}
		checked++
	})
	if checked != 4 {
		t.Fatalf("only %d ranks verified", checked)
	}
}

func TestAllgatherv(t *testing.T) {
	cl := newCluster(t, 2, 2)
	counts := []int{100 * 1024, 200 * 1024, 50 * 1024, 150 * 1024}
	total := 0
	for _, n := range counts {
		total += n
	}
	verified := 0
	cl.Run(func(c *mpi.Comm) {
		send := c.Malloc(counts[c.Rank()])
		recv := c.Malloc(total)
		c.WriteBytes(send, pattern(counts[c.Rank()], byte(10*c.Rank())))
		c.Allgatherv(send, recv, counts)
		got := c.ReadBytes(recv, total)
		off := 0
		for r := 0; r < c.Size(); r++ {
			want := pattern(counts[r], byte(10*r))
			if !bytes.Equal(got[off:off+counts[r]], want) {
				t.Errorf("rank %d: block %d corrupted", c.Rank(), r)
				return
			}
			off += counts[r]
		}
		verified++
	})
	if verified != 4 {
		t.Fatalf("only %d ranks verified", verified)
	}
}

func TestReduceScatter(t *testing.T) {
	cl := newCluster(t, 2, 2)
	counts := []int{64 * 1024, 64 * 1024, 64 * 1024, 64 * 1024}
	n := 256 * 1024
	verified := 0
	cl.Run(func(c *mpi.Comm) {
		buf := c.Malloc(n)
		local := make([]byte, n)
		for i := 0; i+4 <= n; i += 4 {
			binary.LittleEndian.PutUint32(local[i:], uint32(c.Rank()+1))
		}
		c.WriteBytes(buf, local)
		c.ReduceScatter(buf, counts, mpi.SumInt32)
		got := c.ReadBytes(buf, counts[c.Rank()])
		for i := 0; i+4 <= len(got); i += 4 {
			if v := binary.LittleEndian.Uint32(got[i:]); v != 10 { // 1+2+3+4
				t.Errorf("rank %d got %d, want 10", c.Rank(), v)
				return
			}
		}
		verified++
	})
	if verified != 4 {
		t.Fatalf("only %d ranks verified", verified)
	}
}

func TestAlltoallv(t *testing.T) {
	for _, shape := range [][2]int{{2, 1}, {2, 2}, {3, 1}, {4, 2}} {
		cl := newCluster(t, shape[0], shape[1])
		size := shape[0] * shape[1]
		blk := 96 * 1024
		verified := 0
		cl.Run(func(c *mpi.Comm) {
			counts := make([]int, size)
			for i := range counts {
				counts[i] = blk
			}
			send := c.Malloc(blk * size)
			recv := c.Malloc(blk * size)
			for r := 0; r < size; r++ {
				// Block destined to rank r is tagged (sender, receiver).
				c.WriteBytes(send+vm.Addr(r*blk), pattern(blk, byte(16*c.Rank()+r)))
			}
			c.Alltoallv(send, counts, recv, counts)
			for r := 0; r < size; r++ {
				want := pattern(blk, byte(16*r+c.Rank()))
				if !bytes.Equal(c.ReadBytes(recv+vm.Addr(r*blk), blk), want) {
					t.Errorf("size=%d rank %d: block from %d corrupted", size, c.Rank(), r)
					return
				}
			}
			verified++
		})
		if verified != size {
			t.Fatalf("size=%d: only %d ranks verified", size, verified)
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	cl := newCluster(t, 2, 2)
	const per = 48 * 1024
	verified := 0
	cl.Run(func(c *mpi.Comm) {
		root := 2
		send := c.Malloc(per * c.Size())
		recv := c.Malloc(per)
		gathered := c.Malloc(per * c.Size())
		if c.Rank() == root {
			for r := 0; r < c.Size(); r++ {
				c.WriteBytes(send+vm.Addr(r*per), pattern(per, byte(r+1)))
			}
		}
		c.Scatter(send, per, recv, root)
		if !bytes.Equal(c.ReadBytes(recv, per), pattern(per, byte(c.Rank()+1))) {
			t.Errorf("rank %d: scatter data wrong", c.Rank())
			return
		}
		c.Gather(recv, per, gathered, root)
		if c.Rank() == root {
			for r := 0; r < c.Size(); r++ {
				if !bytes.Equal(c.ReadBytes(gathered+vm.Addr(r*per), per), pattern(per, byte(r+1))) {
					t.Errorf("gather block %d wrong", r)
					return
				}
			}
		}
		verified++
	})
	if verified != 4 {
		t.Fatalf("only %d ranks verified", verified)
	}
}

func TestAllgatherFixed(t *testing.T) {
	cl := newCluster(t, 2, 2)
	const per = 32 * 1024
	verified := 0
	cl.Run(func(c *mpi.Comm) {
		send := c.Malloc(per)
		recv := c.Malloc(per * c.Size())
		c.WriteBytes(send, pattern(per, byte(c.Rank()*3)))
		c.Allgather(send, per, recv)
		for r := 0; r < c.Size(); r++ {
			if !bytes.Equal(c.ReadBytes(recv+vm.Addr(r*per), per), pattern(per, byte(r*3))) {
				t.Errorf("rank %d: block %d wrong", c.Rank(), r)
				return
			}
		}
		verified++
	})
	if verified != 4 {
		t.Fatalf("only %d ranks verified", verified)
	}
}

func TestAlltoallFixed(t *testing.T) {
	cl := newCluster(t, 2, 2)
	const per = 40 * 1024
	verified := 0
	cl.Run(func(c *mpi.Comm) {
		send := c.Malloc(per * c.Size())
		recv := c.Malloc(per * c.Size())
		for r := 0; r < c.Size(); r++ {
			c.WriteBytes(send+vm.Addr(r*per), pattern(per, byte(16*c.Rank()+r)))
		}
		c.Alltoall(send, per, recv)
		for r := 0; r < c.Size(); r++ {
			if !bytes.Equal(c.ReadBytes(recv+vm.Addr(r*per), per), pattern(per, byte(16*r+c.Rank()))) {
				t.Errorf("rank %d: block from %d wrong", c.Rank(), r)
				return
			}
		}
		verified++
	})
	if verified != 4 {
		t.Fatalf("only %d ranks verified", verified)
	}
}
