package mpi

import (
	"encoding/binary"
	"math"

	"omxsim/internal/omx"
	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// collMatch builds match info for collective step tag within the current
// collective's sequence number.
func (c *Comm) collMatch(src int, step int) (match, mask uint64) {
	tag := int(c.collSeq)<<8 | step
	return encodeMatch(ctxColl, src, tag), ^uint64(0)
}

func (c *Comm) collSend(addr vm.Addr, n, dst, step int) *omx.Request {
	m, _ := c.collMatch(c.rank, step)
	return c.ep.Isend(addr, n, m, c.world.eps[dst].Addr())
}

func (c *Comm) collRecv(addr vm.Addr, n, src, step int) *omx.Request {
	m, mask := c.collMatch(src, step)
	return c.ep.Irecv(addr, n, m, mask)
}

// Barrier synchronizes all ranks (gather-to-0 then broadcast of a token).
func (c *Comm) Barrier() {
	c.collSeq++
	if c.size == 1 {
		return
	}
	if c.rank == 0 {
		for r := 1; r < c.size; r++ {
			c.Wait(c.collRecv(0, 0, r, 0))
		}
		reqs := make([]*omx.Request, 0, c.size-1)
		for r := 1; r < c.size; r++ {
			reqs = append(reqs, c.collSend(0, 0, r, 1))
		}
		c.WaitAll(reqs...)
		return
	}
	c.Wait(c.collSend(0, 0, 0, 0))
	c.Wait(c.collRecv(0, 0, 0, 1))
}

// Bcast broadcasts n bytes at addr from root via a binomial tree.
func (c *Comm) Bcast(addr vm.Addr, n, root int) {
	c.collSeq++
	if c.size == 1 || n < 0 {
		return
	}
	// Virtual rank relative to root. Phase 1: every non-root receives once
	// from its tree parent; phase 2: forward to children in decreasing
	// subtree order (standard binomial broadcast).
	vr := (c.rank - root + c.size) % c.size
	mask := 1
	for mask < c.size {
		if vr&mask != 0 {
			parent := ((vr - mask) + root) % c.size
			c.Wait(c.collRecv(addr, n, parent, mask))
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < c.size {
			child := (vr + mask + root) % c.size
			c.Wait(c.collSend(addr, n, child, mask))
		}
		mask >>= 1
	}
}

// Op combines src into dst element-wise; buffers are raw bytes of equal
// length.
type Op func(dst, src []byte)

// SumFloat64 adds 8-byte little-endian float64 elements.
func SumFloat64(dst, src []byte) {
	for i := 0; i+8 <= len(dst); i += 8 {
		d := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
		s := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(d+s))
	}
}

// SumInt32 adds 4-byte little-endian int32 elements.
func SumInt32(dst, src []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		d := int32(binary.LittleEndian.Uint32(dst[i:]))
		s := int32(binary.LittleEndian.Uint32(src[i:]))
		binary.LittleEndian.PutUint32(dst[i:], uint32(d+s))
	}
}

// MaxFloat64 keeps the element-wise maximum of float64 elements.
func MaxFloat64(dst, src []byte) {
	for i := 0; i+8 <= len(dst); i += 8 {
		d := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
		s := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		if s > d {
			binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(s))
		}
	}
}

// Reduce combines n bytes at addr across ranks with op, leaving the result
// at addr on root (other ranks' buffers are unchanged). Binomial tree.
// The combine itself costs CPU time proportional to the data touched.
func (c *Comm) Reduce(addr vm.Addr, n, root int, op Op) {
	c.collSeq++
	if c.size == 1 || n == 0 {
		return
	}
	vr := (c.rank - root + c.size) % c.size
	// Accumulator starts as the local contribution.
	acc := c.ReadBytes(addr, n)
	tmp := c.Malloc(n)
	mask := 1
	for mask < c.size {
		if vr&mask != 0 {
			peer := ((vr &^ mask) + root) % c.size
			c.WriteBytes(tmp, acc)
			c.Wait(c.collSend(tmp, n, peer, mask))
			break
		}
		peer := vr | mask
		if peer < c.size {
			c.Wait(c.collRecv(tmp, n, (peer+root)%c.size, mask))
			src := c.ReadBytes(tmp, n)
			op(acc, src)
			c.Compute(reduceCost(n))
		}
		mask <<= 1
	}
	c.Free(tmp)
	if c.rank == root {
		c.WriteBytes(addr, acc)
	}
}

// reduceCost models the per-byte arithmetic of combining buffers
// (~1 GB/s on era hardware: load+load+add+store per 8 bytes).
func reduceCost(n int) sim.Duration {
	return sim.Duration(float64(n) / 1.0e9 * 1e9)
}

// Allreduce is Reduce to rank 0 followed by Bcast (the Open MPI basic
// algorithm for this size range).
func (c *Comm) Allreduce(addr vm.Addr, n int, op Op) {
	c.Reduce(addr, n, 0, op)
	c.Bcast(addr, n, 0)
}

// ReduceScatter reduces counts[i] bytes to each rank i: implemented as
// Reduce of the full buffer to rank 0, then Scatterv.
func (c *Comm) ReduceScatter(addr vm.Addr, counts []int, op Op) {
	total := 0
	for _, n := range counts {
		total += n
	}
	c.Reduce(addr, total, 0, op)
	c.Scatterv(addr, counts, addr, 0)
}

// Scatterv sends counts[i] bytes (at the appropriate offset of sendAddr on
// root) to each rank i's recvAddr.
func (c *Comm) Scatterv(sendAddr vm.Addr, counts []int, recvAddr vm.Addr, root int) {
	c.collSeq++
	if c.size == 1 {
		return
	}
	if c.rank == root {
		off := 0
		var reqs []*omx.Request
		for r := 0; r < c.size; r++ {
			if r != root {
				reqs = append(reqs, c.collSend(sendAddr+vm.Addr(off), counts[r], r, 0))
			} else if sendAddr+vm.Addr(off) != recvAddr {
				data := c.ReadBytes(sendAddr+vm.Addr(off), counts[r])
				c.WriteBytes(recvAddr, data)
			}
			off += counts[r]
		}
		c.WaitAll(reqs...)
		return
	}
	c.Wait(c.collRecv(recvAddr, counts[c.rank], root, 0))
}

// Gatherv collects counts[i] bytes from each rank into root's recvAddr.
func (c *Comm) Gatherv(sendAddr vm.Addr, n int, recvAddr vm.Addr, counts []int, root int) {
	c.collSeq++
	if c.size == 1 {
		return
	}
	if c.rank == root {
		off := 0
		var reqs []*omx.Request
		for r := 0; r < c.size; r++ {
			if r != root {
				reqs = append(reqs, c.collRecv(recvAddr+vm.Addr(off), counts[r], r, 0))
			} else {
				data := c.ReadBytes(sendAddr, n)
				c.WriteBytes(recvAddr+vm.Addr(off), data)
			}
			off += counts[r]
		}
		c.WaitAll(reqs...)
		return
	}
	c.Wait(c.collSend(sendAddr, n, root, 0))
}

// Allgatherv gathers counts[i] bytes from every rank into every rank's
// recvAddr, ring algorithm: size-1 steps, each forwarding the previously
// received block to the right neighbour.
func (c *Comm) Allgatherv(sendAddr vm.Addr, recvAddr vm.Addr, counts []int) {
	c.collSeq++
	offs := make([]int, c.size+1)
	for i, n := range counts {
		offs[i+1] = offs[i] + n
	}
	// Place own block.
	own := c.ReadBytes(sendAddr, counts[c.rank])
	c.WriteBytes(recvAddr+vm.Addr(offs[c.rank]), own)
	if c.size == 1 {
		return
	}
	right := (c.rank + 1) % c.size
	left := (c.rank - 1 + c.size) % c.size
	blk := c.rank // block we forward next
	for step := 0; step < c.size-1; step++ {
		recvBlk := (blk - 1 + c.size) % c.size
		rr := c.collRecv(recvAddr+vm.Addr(offs[recvBlk]), counts[recvBlk], left, step)
		sr := c.collSend(recvAddr+vm.Addr(offs[blk]), counts[blk], right, step)
		c.Wait(sr)
		c.Wait(rr)
		blk = recvBlk
	}
}

// Alltoallv exchanges sendCounts[i] bytes with every rank i (pairwise
// exchange algorithm). Offsets within the buffers are the prefix sums of
// the counts; recvCounts[i] bytes land at the i-th offset of recvAddr.
func (c *Comm) Alltoallv(sendAddr vm.Addr, sendCounts []int, recvAddr vm.Addr, recvCounts []int) {
	c.collSeq++
	soffs := make([]int, c.size+1)
	roffs := make([]int, c.size+1)
	for i := 0; i < c.size; i++ {
		soffs[i+1] = soffs[i] + sendCounts[i]
		roffs[i+1] = roffs[i] + recvCounts[i]
	}
	// Local block.
	if sendCounts[c.rank] > 0 {
		data := c.ReadBytes(sendAddr+vm.Addr(soffs[c.rank]), sendCounts[c.rank])
		c.WriteBytes(recvAddr+vm.Addr(roffs[c.rank]), data)
	}
	for step := 1; step < c.size; step++ {
		sendPeer := (c.rank + step) % c.size
		recvPeer := (c.rank - step + c.size) % c.size
		rr := c.collRecv(recvAddr+vm.Addr(roffs[recvPeer]), recvCounts[recvPeer], recvPeer, step)
		sr := c.collSend(sendAddr+vm.Addr(soffs[sendPeer]), sendCounts[sendPeer], sendPeer, step)
		c.Wait(sr)
		c.Wait(rr)
	}
}

// Gather collects n bytes from every rank into root's recvAddr (fixed-size
// form of Gatherv).
func (c *Comm) Gather(sendAddr vm.Addr, n int, recvAddr vm.Addr, root int) {
	counts := make([]int, c.size)
	for i := range counts {
		counts[i] = n
	}
	c.Gatherv(sendAddr, n, recvAddr, counts, root)
}

// Scatter distributes n bytes per rank from root's sendAddr (fixed-size
// form of Scatterv).
func (c *Comm) Scatter(sendAddr vm.Addr, n int, recvAddr vm.Addr, root int) {
	counts := make([]int, c.size)
	for i := range counts {
		counts[i] = n
	}
	c.Scatterv(sendAddr, counts, recvAddr, root)
}

// Allgather gathers n bytes from every rank to every rank (fixed-size form
// of Allgatherv).
func (c *Comm) Allgather(sendAddr vm.Addr, n int, recvAddr vm.Addr) {
	counts := make([]int, c.size)
	for i := range counts {
		counts[i] = n
	}
	c.Allgatherv(sendAddr, recvAddr, counts)
}

// Alltoall exchanges n bytes with every rank (fixed-size form of
// Alltoallv).
func (c *Comm) Alltoall(sendAddr vm.Addr, n int, recvAddr vm.Addr) {
	counts := make([]int, c.size)
	for i := range counts {
		counts[i] = n
	}
	c.Alltoallv(sendAddr, counts, recvAddr, counts)
}
