package policy

// DefaultPinChunkPages is the driver's default pin-work granularity: 32
// pages (128 KiB) per kernel work item, matching Open-MX's chunked
// get_user_pages loop.
const DefaultPinChunkPages = 32

// base carries the common no-op answers; each backend overrides what it
// cares about.
type base struct {
	name, desc string
}

func (b base) Name() string        { return b.name }
func (b base) Description() string { return b.desc }
func (b base) Access() AccessMode  { return AccessPinned }
func (b base) PinAtDeclare() bool  { return false }
func (b base) UnpinOnRelease() bool {
	return false
}
func (b base) OverlapTransfer(blocking, adaptive bool) bool { return false }
func (b base) PinChunkPages(configured int) int {
	if configured > 0 {
		return configured
	}
	return DefaultPinChunkPages
}
func (b base) RequiresCache() bool { return false }

// pinEachComm is the classical synchronous model: pin when a
// communication acquires the region, unpin when it releases it (Figure
// 6's "Pin once per Communication", Figure 7's "Regular Pinning").
type pinEachComm struct{ base }

func (pinEachComm) UnpinOnRelease() bool { return true }

// permanent pins at declaration and unpins only at undeclaration —
// Figure 6's upper bound. Unsafe in general (a notifier still rips the
// pins out, but nothing repins proactively until the next use).
type permanent struct{ base }

func (permanent) PinAtDeclare() bool { return true }

// onDemand pins synchronously at first use and leaves the region pinned;
// MMU notifiers unpin on invalidation and the next use repins. Combined
// with the user-space cache this is Figure 7's "Pinning Cache".
type onDemand struct{ base }

// overlapped is onDemand with the pin running as deferred chunked kernel
// work while the transfer is already on the wire (Figure 7's "Overlapped
// Pinning"). Accesses check the pin-progress cursor; misses drop the
// packet and retransmission recovers (paper §3.3).
type overlapped struct{ base }

func (overlapped) OverlapTransfer(blocking, adaptive bool) bool {
	// Paper §5: under adaptive selection, blocking requests keep the
	// overlap while overlap-aware (non-blocking) requests pin
	// synchronously and stay out of the application's way.
	if adaptive {
		return blocking
	}
	return true
}

// noPinning is the idealized QsNet-style model: the NIC has a full MMU
// synchronized with the host page table, so nothing is ever pinned and
// accesses translate at zero modeled cost. An upper bound, not something
// commodity Ethernet hardware can do.
type noPinning struct{ base }

func (noPinning) Access() AccessMode { return AccessPageTable }

// odp is the NP-RDMA-style on-demand-paging backend ("Using Commodity
// RDMA without Pinning Memory"): nothing is pinned, the NIC translates
// through the live page table, and an access to a non-resident page
// fails like an IOMMU page fault. The dropped packet is recovered by the
// protocol's retry machinery while the host services the page request
// asynchronously — so cold or swapped-out buffers cost fault round
// trips instead of pin syscalls.
type odp struct{ base }

func (odp) Access() AccessMode { return AccessODP }

// pinAhead is the eBPF-mm-style user-guided backend: the application
// (or the library on its behalf) hints upcoming buffers and the driver
// pins them speculatively, ahead of any communication. Declaration —
// which the hint triggers via the region cache — starts the pin
// immediately, so by the time a transfer acquires the region the pin is
// usually already complete and the acquire is free. Unlike permanent
// pinning it stays honest: notifiers unpin, the pinned-page limit
// evicts, and an unhinted region degrades to on-demand pinning.
type pinAhead struct{ base }

func (pinAhead) PinAtDeclare() bool  { return true }
func (pinAhead) RequiresCache() bool { return true }

// Built-in backends, exported both as values (for direct configuration)
// and through the registry (for -policy name selection).
var (
	PinEachComm Policy = pinEachComm{base{"pin-each-comm", "pin at acquire, unpin at release: the classical synchronous model (Fig. 6/7 baseline)"}}
	Permanent   Policy = permanent{base{"permanent", "pin at declaration, unpin at undeclaration: the unsafe upper bound (Fig. 6)"}}
	OnDemand    Policy = onDemand{base{"on-demand", "pin at first use, keep pinned, repin after notifier invalidation (Fig. 7 pinning cache)"}}
	Overlapped  Policy = overlapped{base{"overlapped", "pin as chunked deferred work behind the transfer; misses drop and retry (Fig. 7)"}}
	NoPinning   Policy = noPinning{base{"no-pinning", "QsNet-style NIC MMU: never pin, translate through the live page table at zero cost"}}
	ODP         Policy = odp{base{"odp", "NP-RDMA-style on-demand paging: never pin; NIC faults on non-resident pages and retries"}}
	PinAhead    Policy = pinAhead{base{"pin-ahead", "eBPF-mm-style user-guided speculation: hints and declarations pin ahead of the transfer"}}
)

func init() {
	for _, p := range []Policy{PinEachComm, Permanent, OnDemand, Overlapped, NoPinning, ODP, PinAhead} {
		MustRegister(p)
	}
}
