package policy

import (
	"strings"
	"testing"
)

func TestRegistryBuiltins(t *testing.T) {
	for _, want := range []string{
		"pin-each-comm", "permanent", "on-demand", "overlapped",
		"no-pinning", "odp", "pin-ahead",
	} {
		p, ok := ByName(want)
		if !ok {
			t.Fatalf("builtin backend %q not registered", want)
		}
		if p.Name() != want {
			t.Fatalf("backend %q reports name %q", want, p.Name())
		}
		if p.Description() == "" {
			t.Fatalf("backend %q has no description", want)
		}
	}
	if len(Names()) != len(All()) {
		t.Fatal("Names/All length mismatch")
	}
}

func TestRegisterRejects(t *testing.T) {
	if err := Register(nil); err == nil {
		t.Fatal("nil backend accepted")
	}
	err := Register(OnDemand)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate registration not rejected: %v", err)
	}
}

func TestChunkDefaulting(t *testing.T) {
	if got := OnDemand.PinChunkPages(0); got != DefaultPinChunkPages {
		t.Fatalf("default chunk = %d", got)
	}
	if got := OnDemand.PinChunkPages(8); got != 8 {
		t.Fatalf("configured chunk ignored: %d", got)
	}
}
