// Package policy defines the pluggable pinning-policy interface: every
// decision about *when* memory gets pinned, *how* device accesses
// translate, and *when* pins are dropped lives behind the Policy
// interface, so a new strategy is a registered backend instead of a patch
// to the driver (internal/core) and protocol (internal/omx) layers.
//
// The paper's four evaluated strategies (pin-each-comm, permanent,
// on-demand a.k.a. the pinning cache, overlapped), its QsNet-style
// no-pinning ideal, an NP-RDMA-style ODP backend (no pinning; the NIC
// faults on non-resident pages and retries), and an eBPF-mm-style
// user-guided pin-ahead backend are all implementations of this one
// interface — see backends.go.
//
// The split of responsibilities is deliberate:
//
//   - policy (this package): pure decisions. Backends hold no simulation
//     state and import nothing from the engine, so the driver layer can
//     consult them from any context.
//   - core.Manager: the mechanism. It executes pin/unpin work on a core,
//     tracks epochs and waiters, listens to MMU notifiers, services ODP
//     faults — and asks the Policy which of those levers to pull.
//   - omx.Endpoint: path selection. Whether a rendezvous waits for the
//     pin, overlaps with it, or needs no pin at all is the backend's
//     OverlapTransfer and Access answer.
//
// Selecting a backend: omx.Config carries either the classic
// core.PinPolicy enum value (resolved through this registry by name) or
// an explicit Backend for out-of-tree strategies. The omxsim CLI's
// `-policy <name>` flag and the `omxsim policies` listing both speak the
// registry's names.
package policy

import (
	"fmt"
	"sort"
)

// AccessMode says how device-side accesses to a region's memory translate.
type AccessMode int

const (
	// AccessPinned translates through frames the driver pinned; accesses
	// beyond the pin-progress cursor are overlap misses. This is the
	// paper's model — commodity NICs can only DMA to pinned pages.
	AccessPinned AccessMode = iota
	// AccessPageTable translates through the live page table at zero
	// modeled cost: the QsNet-style NIC-MMU ideal the paper's conclusion
	// points at. Nothing is ever pinned.
	AccessPageTable
	// AccessODP translates through the live page table, but a
	// non-resident (never-touched or swapped-out) page makes the access
	// fail like an IOMMU page fault: the NIC drops the packet and raises
	// a page request the host services asynchronously, and the transfer
	// retries with backoff — NP-RDMA's on-demand-paging model.
	AccessODP
)

// String names the access mode.
func (m AccessMode) String() string {
	switch m {
	case AccessPinned:
		return "pinned"
	case AccessPageTable:
		return "page-table"
	case AccessODP:
		return "odp"
	default:
		return fmt.Sprintf("access(%d)", int(m))
	}
}

// Policy is one pinning strategy. Implementations must be stateless (or
// immutable): one Policy value is shared by every endpoint that selects
// it.
type Policy interface {
	// Name is the registry key, the omxsim `-policy` selector, and the
	// label reports use. Lower-case, hyphenated.
	Name() string
	// Description is one line for `omxsim policies` and the docs.
	Description() string
	// Access selects how device-side accesses translate (pinned frames,
	// live page table, or ODP faulting).
	Access() AccessMode
	// PinAtDeclare starts pinning as soon as a region is declared,
	// before any communication needs it: Permanent's eager pin and
	// pin-ahead's speculation. Ignored for non-AccessPinned backends.
	PinAtDeclare() bool
	// UnpinOnRelease drops a region's pins as soon as its last user
	// releases it — the classical pin-per-communication lifetime. The
	// decoupled policies return false and leave regions pinned for
	// reuse until a notifier or the pinned-page limit takes them.
	UnpinOnRelease() bool
	// OverlapTransfer decides, per request, whether pinning overlaps
	// with the transfer — false means the transfer waits for the
	// acquire completion (the full pin) before touching the region.
	// blocking is the application's hint (paper §5); adaptive is the
	// endpoint's AdaptiveOverlap configuration.
	OverlapTransfer(blocking, adaptive bool) bool
	// PinChunkPages returns the granularity of chunked pin work on the
	// core given the endpoint's configured value (0 = backend default).
	// Bottom halves interleave between chunks, which is what lets an
	// interrupt flood starve pinning (paper §4.3).
	PinChunkPages(configured int) int
	// RequiresCache forces the user-space region cache on: pin-ahead
	// needs it because dropping the declaration at Put would discard the
	// speculative pin it exists to keep warm.
	RequiresCache() bool
}

var registry = make(map[string]Policy)

// Register adds a backend to the registry. It rejects empty and duplicate
// names.
func Register(p Policy) error {
	if p == nil || p.Name() == "" {
		return fmt.Errorf("policy: missing name")
	}
	if _, dup := registry[p.Name()]; dup {
		return fmt.Errorf("policy: duplicate backend %q", p.Name())
	}
	registry[p.Name()] = p
	return nil
}

// MustRegister is Register for init-time use.
func MustRegister(p Policy) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// ByName looks a backend up by its registry name.
func ByName(name string) (Policy, bool) {
	p, ok := registry[name]
	return p, ok
}

// Names returns every registered backend name, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every registered backend, sorted by name.
func All() []Policy {
	out := make([]Policy, 0, len(registry))
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}
