// Package trace provides a lightweight structured event trace for the
// simulated stack: protocol milestones (rendezvous, pulls, notifies),
// pinning lifecycle (pin, unpin, invalidate, cache hit/miss), and overlap
// misses, all timestamped on the simulated clock. A Recorder is attached to
// endpoints or managers by the test/tool that wants visibility; when no
// recorder is attached the emit paths are nil-checked and free.
package trace

import (
	"fmt"
	"strings"

	"omxsim/internal/sim"
)

// Kind classifies trace events.
type Kind int

// Event kinds, grouped by subsystem.
const (
	// Protocol events.
	RndvSent Kind = iota
	RndvRecv
	PullReqSent
	PullReplySent
	FragAccepted
	OverlapMissSnd
	OverlapMissRcv
	ReRequest
	NotifySent
	MsgComplete
	// Pinning events.
	PinStart
	PinDone
	PinFail
	Unpin
	Invalidate
	CacheHit
	CacheMiss
	// OdpFault is one serviced ODP page-request round (A = pages
	// materialized, B = pages requested).
	OdpFault
	// CacheInvalidate is a cached declaration dropped because an
	// MMU-notifier invalidation overlapped it (A = vm.InvalidateReason).
	CacheInvalidate
	// Chaos / lifecycle events (A = node id unless noted).
	NodeCrash
	NodeRestart
	// LinkDegraded is a degradation window opening on a node's NIC
	// (A = node id); LinkRestored closes it.
	LinkDegraded
	LinkRestored
	// BudgetShrink is a runtime memory-budget change (A = new frame
	// budget, B = previous).
	BudgetShrink
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	names := [...]string{
		"rndv-sent", "rndv-recv", "pullreq-sent", "pullreply-sent",
		"frag-accepted", "overlap-miss-snd", "overlap-miss-rcv", "re-request",
		"notify-sent", "msg-complete",
		"pin-start", "pin-done", "pin-fail", "unpin", "invalidate",
		"cache-hit", "cache-miss", "odp-fault", "cache-invalidate",
		"node-crash", "node-restart", "link-degraded", "link-restored",
		"budget-shrink",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one timestamped trace record.
type Event struct {
	T    sim.Time
	Kind Kind
	// Node identifies the host the event happened on (-1 if not bound).
	Node int
	// Seq is the message sequence number for protocol events (0 otherwise).
	Seq uint64
	// A and B are kind-specific values (offset/length, pages, etc.).
	A, B int
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("%-12v node%d %-17s seq=%-4d a=%-8d b=%d",
		e.T, e.Node, e.Kind, e.Seq, e.A, e.B)
}

// Recorder is a bounded ring of events. The zero value is unusable; create
// with NewRecorder. Not safe for real concurrency, which is fine: the
// simulation is single-threaded by construction.
type Recorder struct {
	events  []Event
	next    int
	wrapped bool
	dropped uint64
	counts  [numKinds]uint64
}

// NewRecorder returns a recorder keeping the last cap events (cap <= 0
// selects 4096).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Recorder{events: make([]Event, capacity)}
}

// Emit appends an event.
func (r *Recorder) Emit(ev Event) {
	if int(ev.Kind) < int(numKinds) {
		r.counts[ev.Kind]++
	}
	if r.next == len(r.events) {
		r.next = 0
		r.wrapped = true
	}
	if r.wrapped {
		r.dropped++
	}
	r.events[r.next] = ev
	r.next++
}

// Count reports how many events of kind k were emitted (including ones that
// fell out of the ring).
func (r *Recorder) Count(k Kind) uint64 { return r.counts[k] }

// Dropped reports how many events were overwritten by ring wrap-around.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Events returns the retained events in emission order.
func (r *Recorder) Events() []Event {
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Filter returns retained events of the given kinds, in order.
func (r *Recorder) Filter(kinds ...Kind) []Event {
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range r.Events() {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// Timeline renders the retained events as a multi-line string, optionally
// restricted to one message sequence (seq > 0).
func (r *Recorder) Timeline(seq uint64) string {
	var b strings.Builder
	for _, e := range r.Events() {
		if seq != 0 && e.Seq != seq {
			continue
		}
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
