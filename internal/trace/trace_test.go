package trace

import (
	"strings"
	"testing"

	"omxsim/internal/sim"
)

func TestRecorderOrderAndCounts(t *testing.T) {
	r := NewRecorder(10)
	for i := 0; i < 5; i++ {
		r.Emit(Event{T: int64t(i), Kind: FragAccepted, Seq: 1, A: i})
	}
	r.Emit(Event{T: 100, Kind: MsgComplete, Seq: 1})
	evs := r.Events()
	if len(evs) != 6 {
		t.Fatalf("got %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatal("events out of order")
		}
	}
	if r.Count(FragAccepted) != 5 || r.Count(MsgComplete) != 1 {
		t.Fatal("counts wrong")
	}
	if r.Dropped() != 0 {
		t.Fatal("unexpected drops")
	}
}

func int64t(i int) sim.Time { return sim.Time(i * 10) }

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{T: int64t(i), Kind: PinStart, A: i})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	if evs[0].A != 6 || evs[3].A != 9 {
		t.Fatalf("retained wrong window: %v..%v", evs[0].A, evs[3].A)
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	if r.Count(PinStart) != 10 {
		t.Fatal("count must include dropped events")
	}
}

func TestFilterAndTimeline(t *testing.T) {
	r := NewRecorder(0)
	r.Emit(Event{T: 1, Kind: RndvSent, Seq: 5})
	r.Emit(Event{T: 2, Kind: PullReqSent, Seq: 5})
	r.Emit(Event{T: 3, Kind: RndvSent, Seq: 6})
	got := r.Filter(RndvSent)
	if len(got) != 2 {
		t.Fatalf("filter returned %d", len(got))
	}
	tl := r.Timeline(5)
	if strings.Count(tl, "\n") != 2 {
		t.Fatalf("timeline for seq 5 = %q", tl)
	}
	if !strings.Contains(tl, "rndv-sent") || !strings.Contains(tl, "pullreq-sent") {
		t.Fatalf("timeline missing kinds: %q", tl)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatal("unknown kind formatting")
	}
}
