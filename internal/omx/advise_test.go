package omx

import (
	"testing"

	"omxsim/internal/core"
)

// TestAdvisePinsAhead drives the user-facing hint path end to end: under
// the pin-ahead backend, Advise alone — before any communication — must
// leave the buffer pinned, so the transfer's acquire finds it ready.
func TestAdvisePinsAhead(t *testing.T) {
	p := newPair(t, DefaultConfig(core.PinAhead, true))
	const n = 1 << 20
	buf, err := p.a.Malloc(n)
	if err != nil {
		t.Fatal(err)
	}

	p.a.Advise(buf, n)
	p.eng.Run()

	if got := p.a.Manager().PinnedPages(); got != n/4096 {
		t.Fatalf("Advise pinned %d pages, want %d", got, n/4096)
	}
	st := p.a.Manager().Stats()
	if st.SpeculativePins == 0 {
		t.Fatal("Advise-driven pin not counted as speculative")
	}
	if st.AcquiresPinned != 0 || st.AcquiresUnpinned != 0 {
		t.Fatal("Advise must not acquire the region")
	}

	// The transfer that follows must hit both the declaration cache and
	// the already-complete pin.
	rbuf, err := p.b.Malloc(n)
	if err != nil {
		t.Fatal(err)
	}
	recv := p.b.Irecv(rbuf, n, 1, ^uint64(0))
	send := p.a.Isend(buf, n, 1, p.b.Addr())
	p.eng.Run()
	if !send.Done() || !recv.Done() || send.Err != nil || recv.Err != nil {
		t.Fatalf("transfer after Advise failed: send=%v recv=%v", send.Err, recv.Err)
	}
	if hits := p.a.Cache().Stats().Hits; hits == 0 {
		t.Fatal("send after Advise missed the declaration cache")
	}
	if got := p.a.Manager().Stats().AcquiresPinned; got == 0 {
		t.Fatal("send after Advise did not find the region pre-pinned")
	}
}

// TestAdviseIsHintOnly: under a policy that does not pin at declare,
// Advise warms the declaration cache but pins nothing — and a bad hint
// is silently ignored rather than failing anything.
func TestAdviseIsHintOnly(t *testing.T) {
	p := newPair(t, DefaultConfig(core.OnDemand, true))
	const n = 512 * 1024
	buf, err := p.a.Malloc(n)
	if err != nil {
		t.Fatal(err)
	}
	p.a.Advise(buf, n)
	p.a.Advise(0xdead0000, 4096) // bogus hint: declaration succeeds, pin would fail later
	p.eng.Run()
	if got := p.a.Manager().PinnedPages(); got != 0 {
		t.Fatalf("on-demand Advise pinned %d pages", got)
	}
	if declares := p.a.Manager().Stats().Declares; declares == 0 {
		t.Fatal("Advise did not warm the declaration cache")
	}
}
