package omx

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"omxsim/internal/core"
	"omxsim/internal/cpu"
	"omxsim/internal/ethernet"
	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// TestPropRandomTrafficIntegrity drives random message mixes (eager and
// rendezvous sizes, both directions, random policies, occasional frame
// loss) and verifies that every byte arrives intact, in order, and that no
// pinned pages leak afterwards. This is the end-to-end invariant behind
// all the paper's optimizations: whatever the pinning model does, the data
// path must stay correct.
func TestPropRandomTrafficIntegrity(t *testing.T) {
	policies := []core.PinPolicy{core.PinEachComm, core.OnDemand, core.Overlapped}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		policy := policies[rng.Intn(len(policies))]
		cacheOn := rng.Intn(2) == 0
		cfg := DefaultConfig(policy, cacheOn)
		cfg.UseIOAT = rng.Intn(2) == 0
		cfg.RetransmitTimeout = 2 * sim.Millisecond

		eng := sim.NewEngine(seed)
		fabric := ethernet.NewFabric(eng, ethernet.DefaultLinkConfig())
		n0 := NewNode(eng, fabric, cpu.XeonE5460, 0, 0)
		n1 := NewNode(eng, fabric, cpu.XeonE5460, 1, 0)
		a, err := n0.OpenEndpoint(0, 1, cfg)
		if err != nil {
			return false
		}
		b, err := n1.OpenEndpoint(0, 1, cfg)
		if err != nil {
			return false
		}
		// Occasional deterministic loss.
		if rng.Intn(3) == 0 {
			count := 0
			period := 40 + rng.Intn(100)
			fabric.DropFilter = func(fr *ethernet.Frame) bool {
				count++
				return count%period == 0
			}
		}

		const nMsgs = 6
		sizes := make([]int, nMsgs)
		for i := range sizes {
			switch rng.Intn(3) {
			case 0:
				sizes[i] = 1 + rng.Intn(32*1024) // eager
			case 1:
				sizes[i] = 32*1024 + 1 + rng.Intn(256*1024) // small rendezvous
			default:
				sizes[i] = 1 << (20 + rng.Intn(2)) // 1-2 MiB
			}
		}
		payloads := make([][]byte, nMsgs)
		for i, n := range sizes {
			payloads[i] = make([]byte, n)
			rng.Read(payloads[i])
		}

		ok := true
		eng.Go("sender", func(p *sim.Proc) {
			for i, n := range sizes {
				buf, err := a.Malloc(n)
				if err != nil {
					ok = false
					return
				}
				if err := a.AS.Write(buf, payloads[i]); err != nil {
					ok = false
					return
				}
				req := a.Isend(buf, n, uint64(i), b.Addr())
				if a.Wait(p, req) != nil {
					ok = false
					return
				}
				if err := a.Free(buf); err != nil {
					ok = false
					return
				}
			}
		})
		eng.Go("receiver", func(p *sim.Proc) {
			for i, n := range sizes {
				buf, err := b.Malloc(n)
				if err != nil {
					ok = false
					return
				}
				req := b.Irecv(buf, n, uint64(i), ^uint64(0))
				if b.Wait(p, req) != nil {
					ok = false
					return
				}
				got := make([]byte, n)
				if b.AS.Read(buf, got) != nil || !bytes.Equal(got, payloads[i]) {
					ok = false
					return
				}
				if err := b.Free(buf); err != nil {
					ok = false
					return
				}
			}
		})
		eng.RunUntil(10 * sim.Second)
		if !ok {
			return false
		}
		// Buffers above the mmap threshold were freed -> munmap -> notifier
		// -> unpinned. Arena-sized buffers legitimately stay pinned (their
		// free never reaches the kernel — the paper's own observation about
		// kernel-level hooks); endpoint close must reclaim everything.
		a.Close()
		b.Close()
		if a.Manager().PinnedPages() != 0 || b.Manager().PinnedPages() != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropManyConcurrentMessages posts a burst of receives then floods the
// matching queue with same-tag messages: ordering must pair them FIFO under
// every policy.
func TestPropManyConcurrentMessages(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		policies := []core.PinPolicy{core.PinEachComm, core.OnDemand, core.Overlapped}
		cfg := DefaultConfig(policies[rng.Intn(len(policies))], rng.Intn(2) == 0)
		eng := sim.NewEngine(seed)
		fabric := ethernet.NewFabric(eng, ethernet.DefaultLinkConfig())
		n0 := NewNode(eng, fabric, cpu.XeonE5460, 0, 0)
		n1 := NewNode(eng, fabric, cpu.XeonE5460, 1, 0)
		a, _ := n0.OpenEndpoint(0, 1, cfg)
		b, _ := n1.OpenEndpoint(0, 1, cfg)

		const nMsgs = 8
		size := 64*1024 + rng.Intn(128*1024)
		ok := true
		eng.Go("recv", func(p *sim.Proc) {
			bufs := make([]vm.Addr, nMsgs)
			reqs := make([]*Request, nMsgs)
			for i := range reqs {
				bufs[i], _ = b.Malloc(size)
				reqs[i] = b.Irecv(bufs[i], size, 7, ^uint64(0))
			}
			for i, r := range reqs {
				if b.Wait(p, r) != nil {
					ok = false
					return
				}
				// FIFO matching: i-th posted recv gets the i-th sent message,
				// whose first byte tags its index.
				got := make([]byte, 1)
				b.AS.Read(bufs[i], got)
				if got[0] != byte(i) {
					ok = false
					return
				}
			}
		})
		eng.Go("send", func(p *sim.Proc) {
			for i := 0; i < nMsgs; i++ {
				buf, _ := a.Malloc(size)
				a.AS.Write(buf, []byte{byte(i)})
				if a.Wait(p, a.Isend(buf, size, 7, b.Addr())) != nil {
					ok = false
					return
				}
			}
		})
		eng.RunUntil(5 * sim.Second)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropRegionReadyMonotone: as a region pins, Ready must be monotone in
// both directions — once a range is Ready it stays Ready (absent
// invalidation), and Ready(off, n) implies Ready for every sub-range.
func TestPropRegionReadyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine(seed)
		machine := cpu.NewMachine(eng, cpu.XeonE5460)
		as := vm.NewAddressSpace(1, vm.NewPhysMem(0))
		al, _ := vm.NewAllocator(as, 0, 0)
		mgr := core.NewManager(eng, as, machine.Core(0), core.ManagerConfig{
			Policy: core.Overlapped, PinChunkPages: 1 + rng.Intn(16),
		})
		pages := 8 + rng.Intn(64)
		addr, _ := al.Malloc(pages * vm.PageSize)
		r, err := mgr.Declare([]core.Segment{{Addr: addr, Len: pages * vm.PageSize}})
		if err != nil {
			return false
		}
		mgr.Acquire(r)
		okRanges := map[[2]int]bool{}
		violated := false
		for eng.Step() {
			for i := 0; i < 5; i++ {
				off := rng.Intn(pages * vm.PageSize)
				n := 1 + rng.Intn(pages*vm.PageSize-off)
				key := [2]int{off, n}
				ready := r.Ready(off, n)
				if okRanges[key] && !ready {
					violated = true
				}
				if ready {
					okRanges[key] = true
					// Sub-range implication.
					if n > 2 {
						if !r.Ready(off+1, n-2) {
							violated = true
						}
					}
				}
			}
		}
		return !violated && r.Pinned()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
