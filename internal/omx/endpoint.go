package omx

import (
	"errors"
	"fmt"

	"omxsim/internal/core"
	"omxsim/internal/cpu"
	"omxsim/internal/sim"
	"omxsim/internal/trace"
	"omxsim/internal/vm"
)

// Errors surfaced on requests. ErrPeerDead and ErrTimeout wrap ErrAborted,
// so errors.Is(err, ErrAborted) holds for every liveness abort.
var (
	ErrTruncated  = errors.New("omx: message longer than posted receive")
	ErrAborted    = errors.New("omx: request aborted")
	ErrPinAborted = errors.New("omx: pinning failed, request aborted")
	// ErrPeerDead marks a request aborted because its peer stopped
	// responding for PeerDeadTimeout (crashed node, partitioned link).
	ErrPeerDead = fmt.Errorf("%w: peer dead", ErrAborted)
	// ErrTimeout marks a receive cancelled by a caller-armed deadline
	// (mpi.Comm.RecvTimeout).
	ErrTimeout = fmt.Errorf("%w: receive timed out", ErrAborted)
	// ErrOverload marks an operation rejected by admission control before
	// any protocol traffic: the caller's bounded-inflight budget was full.
	ErrOverload = fmt.Errorf("%w: admission limit reached", ErrAborted)
)

// OverloadError carries the admission-control state at rejection time; it
// unwraps to ErrOverload (and therefore ErrAborted), so callers can match
// coarsely with errors.Is or pull the limits out with errors.As.
type OverloadError struct {
	Limit    int // configured inflight bound
	Inflight int // operations accepted but not yet complete
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v (%d inflight, limit %d)", ErrOverload, e.Inflight, e.Limit)
}

// Unwrap links the struct error into the typed-abort lattice.
func (e *OverloadError) Unwrap() error { return ErrOverload }

// ReqKind distinguishes send and receive requests.
type ReqKind int

// Request kinds.
const (
	KindSend ReqKind = iota
	KindRecv
)

// Request is an outstanding Isend/Irecv, completed asynchronously by the
// protocol engine.
type Request struct {
	Kind ReqKind
	// Results, valid after completion.
	Err       error
	RecvLen   int
	RecvMatch uint64
	RecvSrc   EndpointAddr

	ep        *Endpoint
	done      sim.Completion
	match     uint64
	mask      uint64
	postedLen int
	segs      []Segment
	region    *core.Region
	acquired  bool
	cancelled bool
	// overlap records whether this request uses overlapped pinning (per
	// request under AdaptiveOverlap, otherwise fixed by the policy).
	overlap bool
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done.Done() }

// rstate tracks one incoming message from first frame to final cleanup.
type rstate struct {
	key      msgKey
	match    uint64
	total    int
	admitted bool
	matched  *Request // nil until matched
	isLarge  bool

	// Eager reassembly (kernel intermediate buffer).
	buf      []byte
	gotFrag  map[int]bool // by byte offset
	received int
	nfrags   int
	fragsGot int // distinct fragments seen (counts, not bytes, so
	// zero-length messages complete)

	// Large-message pull engine.
	blocks       []blockState
	nextBlockOff int // blocks issued so far
	outstanding  int // blocks issued but not fully committed
	lowestHole   int // first block not fully *arrived* (gap detection)
	lastProgress sim.Time
	reqTimer     *sim.Event
	missRetry    *sim.Event // local fast retry after receiver-side overlap misses
	notifyTimer  *sim.Event
	notifyTries  int
	completed    bool
}

type blockState struct {
	off, length int
	received    int      // bytes committed (copied into the region)
	accepted    int      // bytes arrived and accepted (pre-copy)
	done        bool     // fully committed
	lastReq     sim.Time // last (re-)request time, for rate limiting
}

// sendState tracks one outgoing message until fully acknowledged.
type sendState struct {
	dst      EndpointAddr
	seq      uint64
	total    int
	req      *Request
	data     []byte // eager payload kept for retransmission
	isLarge  bool
	rtxTimer *sim.Event
	tries    int
	acked    bool // rndv implicitly acked by first pull request
	// quietSince is when the peer last showed signs of life for this
	// message (submission, then every pull request). A send whose peer
	// has been quiet for PeerDeadTimeout aborts with ErrPeerDead.
	quietSince sim.Time
}

type sendKey struct {
	dst EndpointAddr
	seq uint64
}

// Endpoint is an open Open-MX endpoint: the user-space library state (region
// cache, matching queues) plus its driver-side state (region manager,
// per-message protocol state). One endpoint models one application process.
type Endpoint struct {
	node *Node
	proc *Process
	addr EndpointAddr
	cfg  Config

	// Application-process resources. AS and Alloc mirror the process's
	// (kept as fields for the workload-facing API); the region manager
	// and cache are reached through proc — the single source of truth.
	core  *cpu.Core
	AS    *vm.AddressSpace
	Alloc *vm.Allocator

	sendSeq  map[EndpointAddr]uint64
	sends    map[sendKey]*sendState
	recvNext map[EndpointAddr]uint64
	rstates  map[msgKey]*rstate

	// Trace, when non-nil via SetTrace, records protocol + pinning events.
	Trace *trace.Recorder

	posted     []*Request
	unexpected []*rstate
	// activePulls tracks in-progress large receives for cross-message
	// optimistic re-request (Open-MX sequence numbers are per endpoint
	// pair, so any arriving packet is gap evidence for every stalled pull
	// from the same node).
	activePulls map[*rstate]struct{}

	// aux lists additional endpoints attached to this one's rank-role
	// (cluster assembly opens them for multi-endpoint serving); they share
	// the process but have their own addresses and protocol state.
	aux []*Endpoint

	closed bool
}

// AttachAux records an additional endpoint serving the same rank-role.
// Cluster assembly calls it; Aux and AllAddrs expose the set to workloads.
func (ep *Endpoint) AttachAux(a *Endpoint) { ep.aux = append(ep.aux, a) }

// Aux returns the endpoints attached to this rank-role beyond the primary.
func (ep *Endpoint) Aux() []*Endpoint { return ep.aux }

// AllAddrs returns the primary address followed by every aux endpoint's,
// in attach order — the per-rank serving lanes clients hash across.
func (ep *Endpoint) AllAddrs() []EndpointAddr {
	addrs := make([]EndpointAddr, 0, 1+len(ep.aux))
	addrs = append(addrs, ep.addr)
	for _, a := range ep.aux {
		addrs = append(addrs, a.addr)
	}
	return addrs
}

// maxRetries bounds control-message retransmissions before a request
// aborts.
const maxRetries = 30

// OpenEndpoint opens endpoint epID on the node in a fresh single-endpoint
// process bound to core appCoreIdx: its own address space, allocator,
// region manager (with MMU notifier attached, paper §3.1) and region
// cache. Use NewProcess + OpenEndpointIn to share one process — and its
// region cache — across several endpoints.
func (n *Node) OpenEndpoint(epID, appCoreIdx int, cfg Config) (*Endpoint, error) {
	p, err := n.NewProcess(epID, appCoreIdx, cfg)
	if err != nil {
		return nil, err
	}
	return n.OpenEndpointIn(p, epID, appCoreIdx)
}

// Close shuts the endpoint down: every in-flight message's timers are
// cancelled (a closed endpoint must not keep talking) and the endpoint
// detaches from its process — when the last endpoint of a process closes,
// the MMU notifiers are detached and all pins are dropped. Outstanding
// local requests never complete — their process is gone; remote peers
// abort via their own liveness timeouts.
func (ep *Endpoint) Close() {
	ep.closed = true
	for _, rs := range ep.rstates {
		rs.completed = true
		for _, tm := range []*sim.Event{rs.reqTimer, rs.missRetry, rs.notifyTimer} {
			if tm != nil {
				tm.Cancel()
			}
		}
	}
	ep.rstates = make(map[msgKey]*rstate)
	ep.activePulls = make(map[*rstate]struct{})
	for _, ss := range ep.sends {
		if ss.rtxTimer != nil {
			ss.rtxTimer.Cancel()
		}
	}
	ep.sends = make(map[sendKey]*sendState)
	ep.proc.detach(ep)
	delete(ep.node.endpoints, ep.addr.EP)
}

// SetTrace attaches a trace recorder to the endpoint and its driver-side
// region manager.
func (ep *Endpoint) SetTrace(rec *trace.Recorder) {
	ep.Trace = rec
	ep.proc.mgr.Trace = rec
	ep.proc.mgr.TraceNode = ep.node.ID
}

// emit records a protocol trace event when a recorder is attached.
func (ep *Endpoint) emit(k trace.Kind, seq uint64, a, b int) {
	if ep.Trace == nil {
		return
	}
	ep.Trace.Emit(trace.Event{T: ep.node.Eng.Now(), Kind: k, Node: ep.node.ID, Seq: seq, A: a, B: b})
}

// Addr returns the endpoint's fabric address.
func (ep *Endpoint) Addr() EndpointAddr { return ep.addr }

// Node returns the owning node.
func (ep *Endpoint) Node() *Node { return ep.node }

// Core returns the application core the endpoint is bound to.
func (ep *Endpoint) Core() *cpu.Core { return ep.core }

// Process returns the owning process (shared with every endpoint opened
// through the same NewProcess).
func (ep *Endpoint) Process() *Process { return ep.proc }

// Manager exposes the driver-side region manager (for stats and tests).
func (ep *Endpoint) Manager() *core.Manager { return ep.proc.mgr }

// Cache exposes the user-space region cache (for stats and tests).
func (ep *Endpoint) Cache() *core.Cache { return ep.proc.cache }

// Config returns the endpoint configuration.
func (ep *Endpoint) Config() Config { return ep.cfg }

// Compute blocks the process for d of application CPU time on the
// endpoint's core (used by workloads to model computation).
func (ep *Endpoint) Compute(p *sim.Proc, d sim.Duration) {
	ep.core.Exec(p, cpu.User, d)
}

// Malloc allocates an application buffer.
func (ep *Endpoint) Malloc(size int) (vm.Addr, error) { return ep.Alloc.Malloc(size) }

// Free frees an application buffer (possibly firing MMU notifiers).
func (ep *Endpoint) Free(addr vm.Addr) error { return ep.Alloc.Free(addr) }

// Isend starts a send of [addr, addr+length) with the given match
// information. It may be called from process context; the returned request
// completes asynchronously.
func (ep *Endpoint) Isend(addr vm.Addr, length int, match uint64, dst EndpointAddr) *Request {
	return ep.IsendV([]Segment{{Addr: addr, Len: length}}, match, dst)
}

// IsendV is the vectorial form of Isend. It assumes a blocking caller; use
// IsendVHint to mark overlap-aware (non-blocking) requests under
// AdaptiveOverlap.
func (ep *Endpoint) IsendV(segs []Segment, match uint64, dst EndpointAddr) *Request {
	return ep.IsendVHint(segs, match, dst, true)
}

// IsendVHint is IsendV with an explicit blocking hint (paper §5: blocking
// operations benefit most from overlapped pinning).
func (ep *Endpoint) IsendVHint(segs []Segment, match uint64, dst EndpointAddr, blocking bool) *Request {
	req := &Request{Kind: KindSend, ep: ep, segs: segs, overlap: ep.useOverlap(blocking)}
	ep.node.inflight++
	total := 0
	for _, s := range segs {
		total += s.Len
	}
	seq := ep.sendSeq[dst] + 1
	ep.sendSeq[dst] = seq
	ss := &sendState{dst: dst, seq: seq, total: total, req: req, quietSince: ep.node.Eng.Now()}
	ep.sends[sendKey{dst, seq}] = ss
	// The syscall enters the kernel, then the send path runs.
	ep.core.Submit(cpu.Kernel, ep.cfg.SyscallCost, func() {
		if total <= ep.cfg.EagerThreshold {
			ep.startEager(ss, match)
		} else {
			ss.isLarge = true
			ep.startRendezvous(ss, match)
		}
	})
	return req
}

// Irecv posts a receive of up to length bytes at addr for messages whose
// match info equals match under mask.
func (ep *Endpoint) Irecv(addr vm.Addr, length int, match, mask uint64) *Request {
	return ep.IrecvV([]Segment{{Addr: addr, Len: length}}, match, mask)
}

// IrecvV is the vectorial form of Irecv. For receives large enough to need
// the rendezvous path, the user region is declared (via the cache) now, at
// post time — pinning happens later, per policy, when a message matches.
// It assumes a blocking caller; use IrecvVHint otherwise.
func (ep *Endpoint) IrecvV(segs []Segment, match, mask uint64) *Request {
	return ep.IrecvVHint(segs, match, mask, true)
}

// IrecvVHint is IrecvV with an explicit blocking hint.
func (ep *Endpoint) IrecvVHint(segs []Segment, match, mask uint64, blocking bool) *Request {
	total := 0
	for _, s := range segs {
		total += s.Len
	}
	req := &Request{Kind: KindRecv, ep: ep, match: match, mask: mask, postedLen: total,
		segs: segs, overlap: ep.useOverlap(blocking)}
	ep.node.inflight++
	ep.core.Submit(cpu.Kernel, ep.cfg.SyscallCost, func() {
		if total > ep.cfg.EagerThreshold {
			ep.proc.cache.GetAsyncOn(ep.core, segs, func(r *core.Region, err error) {
				if err != nil {
					ep.complete(req, fmt.Errorf("omx: declare: %w", err))
					return
				}
				req.region = r
				ep.postRecv(req)
			})
			return
		}
		ep.postRecv(req)
	})
	return req
}

// useOverlap asks the policy backend whether a request overlaps its
// pinning with the transfer (per request: the application's blocking
// hint plus the endpoint's AdaptiveOverlap configuration, paper §5).
func (ep *Endpoint) useOverlap(blocking bool) bool {
	return ep.cfg.Backend.OverlapTransfer(blocking, ep.cfg.AdaptiveOverlap)
}

// Advise hints that segs will be used for communication soon — the
// eBPF-mm-style user-guided signal. The segments are declared through
// the region cache (one syscall, charged like any declare) and, under
// backends that pin at declare time (pin-ahead, permanent), pinning
// starts immediately: by the time a transfer acquires the region the
// pin is usually complete. Under other backends the hint still warms
// the declaration cache; it never holds a reference, so eviction and
// invalidation proceed normally.
func (ep *Endpoint) Advise(addr vm.Addr, length int) {
	ep.AdviseV([]Segment{{Addr: addr, Len: length}})
}

// AdviseV is the vectorial form of Advise.
func (ep *Endpoint) AdviseV(segs []Segment) {
	if len(segs) == 0 {
		return
	}
	ep.core.Submit(cpu.Kernel, ep.cfg.SyscallCost, func() {
		ep.proc.cache.GetAsyncOn(ep.core, segs, func(r *core.Region, err error) {
			if err != nil {
				return // a bad hint is not an error; the transfer will fail loudly
			}
			// Drop the reference immediately: the cache keeps the
			// declaration (and the declare-time pin it triggered) warm.
			ep.proc.cache.PutOn(ep.core, r)
		})
	})
}

// postRecv runs the MX matching rule: first try the unexpected queue in
// arrival order, else append to the posted queue.
func (ep *Endpoint) postRecv(req *Request) {
	if req.done.Done() {
		return // cancelled while the post syscall/declare was in flight
	}
	for i, rs := range ep.unexpected {
		if matches(req.match, req.mask, rs.match) {
			ep.unexpected = append(ep.unexpected[:i], ep.unexpected[i+1:]...)
			ep.bind(rs, req)
			return
		}
	}
	ep.posted = append(ep.posted, req)
}

// Wait blocks the process until the request completes, returning its error.
func (ep *Endpoint) Wait(p *sim.Proc, r *Request) error {
	r.done.Wait(p)
	return r.Err
}

// WaitAll waits for every request and returns the first error.
func (ep *Endpoint) WaitAll(p *sim.Proc, rs ...*Request) error {
	var first error
	for _, r := range rs {
		if err := ep.Wait(p, r); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// complete finishes a request exactly once.
func (ep *Endpoint) complete(req *Request, err error) {
	if req.done.Done() {
		return
	}
	req.Err = err
	if req.acquired {
		ep.proc.mgr.Release(req.region)
		req.acquired = false
	}
	if req.region != nil {
		ep.proc.cache.PutOn(ep.core, req.region)
		req.region = nil
	}
	ep.node.inflight--
	if err != nil {
		ep.node.stats.ReqAborts++
		if ep.node.onAbort != nil {
			ep.node.onAbort(req.Kind, err)
		}
	}
	req.done.Complete(ep.node.Eng, nil)
}

// CancelRecv aborts a posted receive with the given error (typically
// ErrTimeout from a caller-armed deadline). An unmatched receive leaves
// the posted queue; a matched one tears down its message state. Safe to
// call after completion (reports false). Cancelling a matched receive
// whose sender is still alive loses that message — the caller has decided
// it is not coming.
func (ep *Endpoint) CancelRecv(req *Request, err error) bool {
	if req.Kind != KindRecv || req.done.Done() {
		return false
	}
	for i, r := range ep.posted {
		if r == req {
			ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
			ep.complete(req, err)
			return true
		}
	}
	for _, rs := range ep.rstates {
		if rs.matched != req || rs.completed {
			continue
		}
		if rs.isLarge {
			ep.finishPull(rs, err)
		} else {
			rs.completed = true
			delete(ep.rstates, rs.key)
			ep.complete(req, err)
		}
		return true
	}
	// Not yet queued (post syscall or declare still in flight): complete
	// now; postRecv skips completed requests.
	ep.complete(req, err)
	return true
}

// crashAbort tears down every in-flight exchange when the owning node
// crashes: sends and matched receives complete with the given typed error
// and no wire traffic (the NIC is dark). Posted-but-unmatched receives
// stay live — peers may re-establish after a restart — and the per-peer
// sequence state survives so post-restart admission stays in order.
func (ep *Endpoint) crashAbort(err error) {
	for _, ss := range ep.sends {
		ep.abortSend(ss, err)
	}
	for _, rs := range ep.rstates {
		for _, tm := range []*sim.Event{rs.reqTimer, rs.missRetry, rs.notifyTimer} {
			if tm != nil {
				tm.Cancel()
			}
		}
		if rs.completed {
			delete(ep.rstates, rs.key)
			continue
		}
		if rs.matched != nil {
			rs.completed = true
			delete(ep.activePulls, rs)
			ep.complete(rs.matched, err)
		} else {
			for i, u := range ep.unexpected {
				if u == rs {
					ep.unexpected = append(ep.unexpected[:i], ep.unexpected[i+1:]...)
					break
				}
			}
		}
		delete(ep.rstates, rs.key)
	}
}

// dispatchBH schedules bottom-half processing for one received frame on
// the core servicing the frame's rx queue (queue 0 is the node's classic
// RX core; multi-queue NICs spread flows across cores).
func (ep *Endpoint) dispatchBH(payload any, queue int) {
	rx := ep.node.RxCoreFor(queue)
	cost := ep.cfg.BHFragCost
	switch m := payload.(type) {
	case *eagerFrag:
		// The copy into the kernel intermediate buffer happens in the
		// bottom half and is unconditional (no pinning on the eager path).
		cost += ep.core.Spec().CopyCost(len(m.data))
		rx.Submit(cpu.BottomHalf, cost, func() { ep.handleEagerFrag(m) })
	case *eagerAck:
		rx.Submit(cpu.BottomHalf, cost, func() { ep.handleEagerAck(m) })
	case *rndvMsg:
		rx.Submit(cpu.BottomHalf, cost, func() { ep.handleRndv(m) })
	case *pullReq:
		rx.Submit(cpu.BottomHalf, cost, func() { ep.handlePullReq(m) })
	case *pullReply:
		rx.Submit(cpu.BottomHalf, cost, func() { ep.handlePullReply(m) })
	case *notifyMsg:
		rx.Submit(cpu.BottomHalf, cost, func() { ep.handleNotify(m) })
	case *notifyAck:
		rx.Submit(cpu.BottomHalf, cost, func() { ep.handleNotifyAck(m) })
	case *abortMsg:
		rx.Submit(cpu.BottomHalf, cost, func() { ep.handleAbort(m) })
	}
}

// handleAbort terminates an in-progress receive whose sender gave up.
func (ep *Endpoint) handleAbort(m *abortMsg) {
	rs, ok := ep.rstates[msgKey{m.src, m.seq}]
	if !ok || rs.completed {
		return
	}
	if rs.matched != nil {
		ep.finishPull(rs, fmt.Errorf("%w: sender aborted", ErrAborted))
		return
	}
	// Unmatched (unexpected queue): drop the envelope so no future receive
	// matches a dead message.
	for i, u := range ep.unexpected {
		if u == rs {
			ep.unexpected = append(ep.unexpected[:i], ep.unexpected[i+1:]...)
			break
		}
	}
	delete(ep.rstates, rs.key)
}

// abortRegionUsers aborts every request still using a region whose pins
// were ripped out by an MMU-notifier invalidation (application freed the
// buffer mid-communication).
func (ep *Endpoint) abortRegionUsers(r *core.Region) {
	for k, ss := range ep.sends {
		if ss.req.region != nil && ss.req.region.Base() == r && !ss.req.done.Done() {
			ep.node.send(ss.dst.Node, 0, &abortMsg{src: ep.addr, dst: ss.dst, seq: ss.seq})
			_ = k
			ep.abortSend(ss, fmt.Errorf("%w: buffer invalidated during send", ErrPinAborted))
		}
	}
	for _, rs := range ep.rstates {
		if rs.matched != nil && !rs.completed &&
			rs.matched.region != nil && rs.matched.region.Base() == r {
			ep.finishPull(rs, fmt.Errorf("%w: buffer invalidated during receive", ErrPinAborted))
		}
	}
}

// doneBelow reports the contiguous-finished watermark toward dst: every
// sequence number at or below it has left ep.sends (delivered or
// aborted). Envelope messages carry it so receivers never wait forever on
// admission gaps left by aborted sends.
func (ep *Endpoint) doneBelow(dst EndpointAddr) uint64 {
	low := ep.sendSeq[dst]
	for k := range ep.sends {
		if k.dst == dst && k.seq <= low {
			low = k.seq - 1
		}
	}
	return low
}

// advanceDone applies a sender's finished watermark: sequence numbers at
// or below it will never be (re)sent, so in-order admission may advance
// past them. Fully arrived eager messages below the watermark are
// admitted as they stand; half-arrived ones (the sender gave up — peer
// death, crash) are dropped.
func (ep *Endpoint) advanceDone(src EndpointAddr, doneBelow uint64) {
	if doneBelow <= ep.recvNext[src] {
		return
	}
	for ep.recvNext[src] < doneBelow {
		next := ep.recvNext[src] + 1
		if rs, ok := ep.rstates[msgKey{src, next}]; ok && !rs.admitted {
			if !rs.isLarge && rs.fragsGot == rs.nfrags {
				rs.admitted = true
				ep.recvNext[src] = next
				ep.matchOrQueue(rs)
				continue
			}
			delete(ep.rstates, rs.key)
		}
		ep.recvNext[src] = next
	}
	ep.admit(src)
}

// admit advances per-source envelope admission in sequence order, so MPI
// message ordering holds even when frames arrive out of order.
func (ep *Endpoint) admit(src EndpointAddr) {
	for {
		next := ep.recvNext[src] + 1
		rs, ok := ep.rstates[msgKey{src, next}]
		if !ok || rs.admitted {
			return
		}
		rs.admitted = true
		ep.recvNext[src] = next
		ep.matchOrQueue(rs)
	}
}

// matchOrQueue matches a newly admitted envelope against posted receives in
// post order, or queues it as unexpected.
func (ep *Endpoint) matchOrQueue(rs *rstate) {
	for i, req := range ep.posted {
		if matches(req.match, req.mask, rs.match) {
			ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
			ep.bind(rs, req)
			return
		}
	}
	ep.unexpected = append(ep.unexpected, rs)
}

// bind attaches a matched request to a message and starts delivery.
func (ep *Endpoint) bind(rs *rstate, req *Request) {
	rs.matched = req
	req.RecvMatch = rs.match
	req.RecvSrc = rs.key.src
	if rs.total > req.postedLen {
		// Truncation: consume and discard the message, erroring the request.
		req.RecvLen = req.postedLen
	} else {
		req.RecvLen = rs.total
	}
	if rs.isLarge {
		ep.startPull(rs, req)
		return
	}
	ep.maybeDeliverEager(rs)
}
