package omx

import (
	"testing"

	"omxsim/internal/core"
	"omxsim/internal/ethernet"
	"omxsim/internal/sim"
	"omxsim/internal/trace"
)

// rndvSniffer records when the first rendezvous frame hits the wire.
func rndvSniffer(p *pair) *sim.Time {
	var at sim.Time = -1
	p.fabric.DropFilter = func(fr *ethernet.Frame) bool {
		if _, ok := fr.Payload.(*rndvMsg); ok && at < 0 {
			at = p.eng.Now()
		}
		return false
	}
	return &at
}

// TestAdaptiveOverlapBlockingVsNonBlocking verifies the paper's §5 idea:
// with AdaptiveOverlap, a blocking send releases its rendezvous immediately
// (pin overlapped), while a non-blocking send holds it until the region is
// fully pinned.
func TestAdaptiveOverlapBlockingVsNonBlocking(t *testing.T) {
	const n = 16 << 20 // 4096 pages: pin takes ~220us on the E5460
	run := func(blocking bool) sim.Time {
		cfg := DefaultConfig(core.Overlapped, false)
		cfg.AdaptiveOverlap = true
		cfg.SyncPrefixPages = -1 // isolate the adaptive decision
		p := newPair(t, cfg)
		at := rndvSniffer(p)
		sbuf, _ := p.a.Malloc(n)
		rbuf, _ := p.b.Malloc(n)
		fill(t, p.a, sbuf, n, 1)
		p.eng.Go("s", func(pr *sim.Proc) {
			req := p.a.IsendVHint([]Segment{{Addr: sbuf, Len: n}}, 1, p.b.Addr(), blocking)
			p.a.Wait(pr, req)
		})
		p.eng.Go("r", func(pr *sim.Proc) {
			p.b.Wait(pr, p.b.Irecv(rbuf, n, 1, ^uint64(0)))
		})
		p.eng.Run()
		return *at
	}
	blockingRndv := run(true)
	nonblockingRndv := run(false)
	if blockingRndv < 0 || nonblockingRndv < 0 {
		t.Fatal("rendezvous never seen")
	}
	// Blocking: rndv leaves within a few microseconds (before the pin).
	if blockingRndv > 50*sim.Microsecond {
		t.Fatalf("blocking rndv at %v, expected overlapped (early)", blockingRndv)
	}
	// Non-blocking: rndv waits for the full ~220us pin.
	if nonblockingRndv < 150*sim.Microsecond {
		t.Fatalf("non-blocking rndv at %v, expected after the pin", nonblockingRndv)
	}
}

// TestSyncPrefixDelaysRendezvous verifies the §4.3 mitigation: with a sync
// prefix the rendezvous waits for the prefix pin; disabling it releases the
// rendezvous immediately.
func TestSyncPrefixDelaysRendezvous(t *testing.T) {
	const n = 16 << 20
	run := func(prefix int) sim.Time {
		cfg := DefaultConfig(core.Overlapped, false)
		cfg.SyncPrefixPages = prefix
		p := newPair(t, cfg)
		at := rndvSniffer(p)
		sbuf, _ := p.a.Malloc(n)
		rbuf, _ := p.b.Malloc(n)
		fill(t, p.a, sbuf, n, 1)
		p.eng.Go("s", func(pr *sim.Proc) {
			p.a.Wait(pr, p.a.Isend(sbuf, n, 1, p.b.Addr()))
		})
		p.eng.Go("r", func(pr *sim.Proc) {
			p.b.Wait(pr, p.b.Irecv(rbuf, n, 1, ^uint64(0)))
		})
		p.eng.Run()
		return *at
	}
	withPrefix := run(2048) // half the region: a long wait
	noPrefix := run(-1)
	if withPrefix <= noPrefix {
		t.Fatalf("prefix=2048 rndv at %v, no-prefix at %v: prefix did not delay", withPrefix, noPrefix)
	}
}

// TestNoPinningEndToEnd runs a transfer under the QsNet-style policy: data
// flows correctly with zero pages ever pinned.
func TestNoPinningEndToEnd(t *testing.T) {
	cfg := DefaultConfig(core.NoPinning, true)
	p := newPair(t, cfg)
	transfer(t, p, 4<<20)
	if p.a.Manager().Stats().PagesPinned != 0 || p.b.Manager().Stats().PagesPinned != 0 {
		t.Fatal("NoPinning pinned pages")
	}
	if p.a.Manager().PinnedPages() != 0 || p.b.Manager().PinnedPages() != 0 {
		t.Fatal("NoPinning left pages pinned")
	}
}

// TestNoPinningBeatsOrMatchesPermanent: the idealized upper bound must be at
// least as fast as the best pinning policy.
func TestNoPinningBeatsOrMatchesPermanent(t *testing.T) {
	measure := func(cfg Config) sim.Duration {
		p := newPair(t, cfg)
		return transfer(t, p, 8<<20)
	}
	nopin := measure(DefaultConfig(core.NoPinning, true))
	perm := measure(DefaultConfig(core.Permanent, true))
	if nopin > perm+perm/100 {
		t.Fatalf("NoPinning (%v) slower than Permanent (%v)", nopin, perm)
	}
}

// TestTraceProtocolOrdering records a full rendezvous transfer and asserts
// the paper's Figure 2/5 event ordering end to end.
func TestTraceProtocolOrdering(t *testing.T) {
	p := newPair(t, DefaultConfig(core.Overlapped, true))
	recA := trace.NewRecorder(0)
	recB := trace.NewRecorder(0)
	p.a.SetTrace(recA)
	p.b.SetTrace(recB)
	transfer(t, p, 2<<20)

	// Sender: pin starts, rendezvous leaves (after the sync prefix), pull
	// replies flow, message never overlap-misses.
	if recA.Count(trace.PinStart) == 0 || recA.Count(trace.RndvSent) == 0 ||
		recA.Count(trace.PullReplySent) == 0 {
		t.Fatalf("sender trace incomplete: %d/%d/%d",
			recA.Count(trace.PinStart), recA.Count(trace.RndvSent), recA.Count(trace.PullReplySent))
	}
	// Receiver: rndv received, pulls issued, frags accepted, notify sent,
	// message complete — strictly in that first-occurrence order.
	order := []trace.Kind{trace.RndvRecv, trace.PullReqSent, trace.FragAccepted,
		trace.NotifySent, trace.MsgComplete}
	first := map[trace.Kind]sim.Time{}
	for _, e := range recB.Events() {
		if _, seen := first[e.Kind]; !seen {
			first[e.Kind] = e.T
		}
	}
	for i := 1; i < len(order); i++ {
		ta, okA := first[order[i-1]]
		tb, okB := first[order[i]]
		if !okA || !okB {
			t.Fatalf("missing event kinds %v/%v", order[i-1], order[i])
		}
		if tb < ta {
			t.Fatalf("%v at %v before %v at %v", order[i], tb, order[i-1], ta)
		}
	}
	// Under overlapped pinning, the sender's rendezvous must leave before
	// its pin completes (that IS the overlap, Figure 5).
	rndv := recA.Filter(trace.RndvSent)[0].T
	pinDone := recA.Filter(trace.PinDone)[0].T
	if rndv >= pinDone {
		t.Fatalf("rndv at %v after pin-done at %v: no overlap", rndv, pinDone)
	}
}
