package omx

import (
	"bytes"
	"testing"

	"omxsim/internal/core"
	"omxsim/internal/cpu"
	"omxsim/internal/ethernet"
	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// pair is a two-node test cluster with one endpoint per node.
type pair struct {
	eng    *sim.Engine
	fabric *ethernet.Fabric
	n0, n1 *Node
	a, b   *Endpoint
}

func newPair(t *testing.T, cfg Config) *pair {
	t.Helper()
	eng := sim.NewEngine(11)
	fabric := ethernet.NewFabric(eng, ethernet.DefaultLinkConfig())
	n0 := NewNode(eng, fabric, cpu.XeonE5460, 0, 0)
	n1 := NewNode(eng, fabric, cpu.XeonE5460, 1, 0)
	// Application on core 1, bottom halves on core 0 (the normal layout).
	a, err := n0.OpenEndpoint(0, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n1.OpenEndpoint(0, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &pair{eng: eng, fabric: fabric, n0: n0, n1: n1, a: a, b: b}
}

// fill writes a deterministic pattern of n bytes at addr.
func fill(t *testing.T, ep *Endpoint, addr vm.Addr, n int, seed byte) []byte {
	t.Helper()
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)*7 + seed
	}
	if err := ep.AS.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	return data
}

// transfer sends n bytes a->b and verifies integrity; returns the elapsed
// simulated time.
func transfer(t *testing.T, p *pair, n int) sim.Duration {
	t.Helper()
	sbuf, err := p.a.Malloc(n)
	if err != nil {
		t.Fatal(err)
	}
	rbuf, err := p.b.Malloc(n)
	if err != nil {
		t.Fatal(err)
	}
	want := fill(t, p.a, sbuf, n, 3)
	start := p.eng.Now()
	var elapsed sim.Duration
	okA, okB := false, false
	p.eng.Go("sender", func(pr *sim.Proc) {
		req := p.a.Isend(sbuf, n, 42, p.b.Addr())
		if err := p.a.Wait(pr, req); err != nil {
			t.Errorf("send: %v", err)
		}
		okA = true
	})
	p.eng.Go("receiver", func(pr *sim.Proc) {
		req := p.b.Irecv(rbuf, n, 42, ^uint64(0))
		if err := p.b.Wait(pr, req); err != nil {
			t.Errorf("recv: %v", err)
		}
		if req.RecvLen != n || req.RecvMatch != 42 || req.RecvSrc != p.a.Addr() {
			t.Errorf("status = %d/%d/%v", req.RecvLen, req.RecvMatch, req.RecvSrc)
		}
		elapsed = pr.Now() - start
		okB = true
	})
	p.eng.Run()
	if !okA || !okB {
		t.Fatal("transfer did not complete")
	}
	got := make([]byte, n)
	if err := p.b.AS.Read(rbuf, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("data corrupted over %d bytes", n)
	}
	return elapsed
}

func TestEagerRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 100, 4096, 9000, 32 * 1024} {
		p := newPair(t, DefaultConfig(core.OnDemand, true))
		if n == 0 {
			// Zero-byte message: envelope only.
			var done bool
			p.eng.Go("r", func(pr *sim.Proc) {
				req := p.b.Irecv(0, 0, 7, ^uint64(0))
				_ = req
				p.b.Wait(pr, req)
				done = true
			})
			p.eng.Go("s", func(pr *sim.Proc) {
				req := p.a.Isend(0, 0, 7, p.b.Addr())
				p.a.Wait(pr, req)
			})
			p.eng.Run()
			if !done {
				t.Fatal("zero-byte message never delivered")
			}
			continue
		}
		transfer(t, p, n)
		// Eager path must not pin anything.
		if p.a.Manager().Stats().PagesPinned != 0 || p.b.Manager().Stats().PagesPinned != 0 {
			t.Fatalf("n=%d: eager path pinned pages", n)
		}
	}
}

func TestLargeTransferAllPolicies(t *testing.T) {
	for _, policy := range []core.PinPolicy{core.PinEachComm, core.Permanent, core.OnDemand, core.Overlapped} {
		for _, cacheOn := range []bool{false, true} {
			if policy == core.Permanent && !cacheOn {
				continue // permanent pinning requires cached declarations
			}
			for _, ioat := range []bool{false, true} {
				cfg := DefaultConfig(policy, cacheOn)
				cfg.UseIOAT = ioat
				p := newPair(t, cfg)
				transfer(t, p, 1<<20)
				st := p.b.Manager().Stats()
				if policy != core.Permanent && st.PagesPinned == 0 {
					t.Fatalf("%v/cache=%v: receive region never pinned", policy, cacheOn)
				}
			}
		}
	}
}

func TestLargeTransfer16MB(t *testing.T) {
	p := newPair(t, DefaultConfig(core.Overlapped, true))
	elapsed := transfer(t, p, 16<<20)
	mibps := float64(16<<20) / elapsed.Seconds() / (1 << 20)
	// 10G wire, I/OAT off: copy-bound, but must still be high hundreds of MiB/s.
	if mibps < 500 || mibps > 1300 {
		t.Fatalf("throughput %.0f MiB/s implausible", mibps)
	}
}

func TestPinEachCommUnpinsAfterTransfer(t *testing.T) {
	p := newPair(t, DefaultConfig(core.PinEachComm, false))
	transfer(t, p, 1<<20)
	if got := p.a.Manager().PinnedPages(); got != 0 {
		t.Fatalf("sender still has %d pinned pages", got)
	}
	if got := p.b.Manager().PinnedPages(); got != 0 {
		t.Fatalf("receiver still has %d pinned pages", got)
	}
	if p.a.Manager().NumRegions() != 0 || p.b.Manager().NumRegions() != 0 {
		t.Fatal("regions leaked in no-cache mode")
	}
}

func TestCacheHitOnReuse(t *testing.T) {
	p := newPair(t, DefaultConfig(core.OnDemand, true))
	n := 1 << 20
	sbuf, _ := p.a.Malloc(n)
	rbuf, _ := p.b.Malloc(n)
	fill(t, p.a, sbuf, n, 1)
	p.eng.Go("app", func(pr *sim.Proc) {
		for i := 0; i < 3; i++ {
			rr := p.b.Irecv(rbuf, n, 1, ^uint64(0))
			sr := p.a.Isend(sbuf, n, 1, p.b.Addr())
			p.a.Wait(pr, sr)
			p.b.Wait(pr, rr)
		}
	})
	p.eng.Run()
	// One miss then hits; one driver pin total (stays pinned).
	if st := p.a.Cache().Stats(); st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("sender cache stats = %+v", st)
	}
	if st := p.a.Manager().Stats(); st.PinOps != 1 {
		t.Fatalf("sender pinned %d times, want 1", st.PinOps)
	}
	if st := p.b.Manager().Stats(); st.PinOps != 1 {
		t.Fatalf("receiver pinned %d times, want 1", st.PinOps)
	}
}

func TestUnexpectedMessageMatchedLater(t *testing.T) {
	p := newPair(t, DefaultConfig(core.OnDemand, true))
	n := 1 << 20
	sbuf, _ := p.a.Malloc(n)
	rbuf, _ := p.b.Malloc(n)
	want := fill(t, p.a, sbuf, n, 9)
	var recvDone bool
	p.eng.Go("s", func(pr *sim.Proc) {
		p.a.Wait(pr, p.a.Isend(sbuf, n, 5, p.b.Addr()))
	})
	p.eng.Go("r", func(pr *sim.Proc) {
		pr.Sleep(2 * sim.Millisecond) // rndv arrives long before the recv posts
		req := p.b.Irecv(rbuf, n, 5, ^uint64(0))
		if err := p.b.Wait(pr, req); err != nil {
			t.Errorf("recv: %v", err)
		}
		recvDone = true
	})
	p.eng.Run()
	if !recvDone {
		t.Fatal("late-posted receive never completed")
	}
	got := make([]byte, n)
	p.b.AS.Read(rbuf, got)
	if !bytes.Equal(got, want) {
		t.Fatal("data corrupted via unexpected path")
	}
}

func TestMatchingMaskAndOrder(t *testing.T) {
	p := newPair(t, DefaultConfig(core.OnDemand, true))
	n := 8192
	s1, _ := p.a.Malloc(n)
	s2, _ := p.a.Malloc(n)
	r1, _ := p.b.Malloc(n)
	r2, _ := p.b.Malloc(n)
	d1 := fill(t, p.a, s1, n, 10)
	d2 := fill(t, p.a, s2, n, 20)
	var m1, m2 uint64
	p.eng.Go("r", func(pr *sim.Proc) {
		// Match only on the low 32 bits (tag), any source bits.
		ra := p.b.Irecv(r1, n, 0x100, 0xffffffff)
		rb := p.b.Irecv(r2, n, 0x200, 0xffffffff)
		_ = rb
		p.b.Wait(pr, ra)
		m1 = ra.RecvMatch
	})
	_ = m2
	p.eng.Go("s", func(pr *sim.Proc) {
		p.a.Wait(pr, p.a.Isend(s1, n, 0xdead00000100, p.b.Addr()))
		p.a.Wait(pr, p.a.Isend(s2, n, 0xbeef00000200, p.b.Addr()))
	})
	p.eng.Run()
	if m1 != 0xdead00000100 {
		t.Fatalf("masked match got %#x", m1)
	}
	g1 := make([]byte, n)
	p.b.AS.Read(r1, g1)
	if !bytes.Equal(g1, d1) {
		t.Fatal("message 1 landed in wrong buffer")
	}
	_ = d2
}

func TestTruncationErrors(t *testing.T) {
	p := newPair(t, DefaultConfig(core.OnDemand, true))
	sbuf, _ := p.a.Malloc(256 * 1024)
	rbuf, _ := p.b.Malloc(64 * 1024)
	fill(t, p.a, sbuf, 256*1024, 1)
	var recvErr, sendErr error
	p.eng.Go("r", func(pr *sim.Proc) {
		req := p.b.Irecv(rbuf, 64*1024, 9, ^uint64(0))
		recvErr = p.b.Wait(pr, req)
	})
	p.eng.Go("s", func(pr *sim.Proc) {
		sendErr = p.a.Wait(pr, p.a.Isend(sbuf, 256*1024, 9, p.b.Addr()))
	})
	p.eng.Run()
	if recvErr == nil {
		t.Fatal("truncated receive did not error")
	}
	if sendErr != nil {
		t.Fatalf("sender errored on truncation: %v", sendErr)
	}
}

func TestEagerTruncation(t *testing.T) {
	p := newPair(t, DefaultConfig(core.OnDemand, true))
	sbuf, _ := p.a.Malloc(16 * 1024)
	rbuf, _ := p.b.Malloc(4 * 1024)
	want := fill(t, p.a, sbuf, 16*1024, 2)
	var recvErr error
	var got int
	p.eng.Go("r", func(pr *sim.Proc) {
		req := p.b.Irecv(rbuf, 4*1024, 9, ^uint64(0))
		recvErr = p.b.Wait(pr, req)
		got = req.RecvLen
	})
	p.eng.Go("s", func(pr *sim.Proc) {
		p.a.Wait(pr, p.a.Isend(sbuf, 16*1024, 9, p.b.Addr()))
	})
	p.eng.Run()
	if recvErr == nil || got != 4*1024 {
		t.Fatalf("err=%v len=%d, want truncation error and 4096", recvErr, got)
	}
	g := make([]byte, 4*1024)
	p.b.AS.Read(rbuf, g)
	if !bytes.Equal(g, want[:4*1024]) {
		t.Fatal("truncated prefix corrupted")
	}
}

func TestMessageOrderingPreserved(t *testing.T) {
	// Two same-tag messages must match posted receives in send order.
	p := newPair(t, DefaultConfig(core.OnDemand, true))
	n := 128 * 1024
	s1, _ := p.a.Malloc(n)
	s2, _ := p.a.Malloc(n)
	r1, _ := p.b.Malloc(n)
	r2, _ := p.b.Malloc(n)
	d1 := fill(t, p.a, s1, n, 1)
	d2 := fill(t, p.a, s2, n, 2)
	p.eng.Go("r", func(pr *sim.Proc) {
		ra := p.b.Irecv(r1, n, 7, ^uint64(0))
		rb := p.b.Irecv(r2, n, 7, ^uint64(0))
		p.b.WaitAll(pr, ra, rb)
	})
	p.eng.Go("s", func(pr *sim.Proc) {
		q1 := p.a.Isend(s1, n, 7, p.b.Addr())
		q2 := p.a.Isend(s2, n, 7, p.b.Addr())
		p.a.WaitAll(pr, q1, q2)
	})
	p.eng.Run()
	g1 := make([]byte, n)
	g2 := make([]byte, n)
	p.b.AS.Read(r1, g1)
	p.b.AS.Read(r2, g2)
	if !bytes.Equal(g1, d1) || !bytes.Equal(g2, d2) {
		t.Fatal("same-tag messages matched out of order")
	}
}

func TestVectorialSendRecv(t *testing.T) {
	p := newPair(t, DefaultConfig(core.OnDemand, true))
	a1, _ := p.a.Malloc(300 * 1024)
	a2, _ := p.a.Malloc(300 * 1024)
	b1, _ := p.b.Malloc(400 * 1024)
	b2, _ := p.b.Malloc(400 * 1024)
	d1 := fill(t, p.a, a1, 300*1024, 3)
	d2 := fill(t, p.a, a2, 300*1024, 4)
	p.eng.Go("r", func(pr *sim.Proc) {
		req := p.b.IrecvV([]Segment{{Addr: b1, Len: 400 * 1024}, {Addr: b2, Len: 200 * 1024}}, 1, ^uint64(0))
		if err := p.b.Wait(pr, req); err != nil {
			t.Errorf("recv: %v", err)
		}
	})
	p.eng.Go("s", func(pr *sim.Proc) {
		req := p.a.IsendV([]Segment{{Addr: a1, Len: 300 * 1024}, {Addr: a2, Len: 300 * 1024}}, 1, p.b.Addr())
		if err := p.a.Wait(pr, req); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	p.eng.Run()
	// 600 KiB sent; first 400 KiB land in b1, next 200 KiB in b2.
	g := make([]byte, 400*1024)
	p.b.AS.Read(b1, g)
	if !bytes.Equal(g[:300*1024], d1) || !bytes.Equal(g[300*1024:], d2[:100*1024]) {
		t.Fatal("vectorial segment 1 corrupted")
	}
	g2 := make([]byte, 200*1024)
	p.b.AS.Read(b2, g2)
	if !bytes.Equal(g2, d2[100*1024:]) {
		t.Fatal("vectorial segment 2 corrupted")
	}
}

func TestPacketLossRecovery(t *testing.T) {
	cfg := DefaultConfig(core.OnDemand, true)
	cfg.ReRequestDelay = 100 * sim.Microsecond
	cfg.RetransmitTimeout = 2 * sim.Millisecond
	p := newPair(t, cfg)
	// Drop ~2% of all frames, deterministically.
	count := 0
	p.fabric.DropFilter = func(fr *ethernet.Frame) bool {
		count++
		return count%50 == 0
	}
	transfer(t, p, 4<<20)
	if p.n1.Stats().ReRequests == 0 && p.n0.Stats().Retransmits == 0 && p.n1.Stats().Retransmits == 0 {
		t.Fatal("no recovery activity despite 2% loss")
	}
}

func TestEagerLossRecovery(t *testing.T) {
	cfg := DefaultConfig(core.OnDemand, true)
	cfg.RetransmitTimeout = sim.Millisecond
	p := newPair(t, cfg)
	count := 0
	p.fabric.DropFilter = func(fr *ethernet.Frame) bool {
		count++
		return count == 2 // drop the second frame (an eager frag)
	}
	transfer(t, p, 30*1024)
	if p.n0.Stats().Retransmits == 0 {
		t.Fatal("dropped eager fragment never retransmitted")
	}
}

func TestInvalidSendBufferAborts(t *testing.T) {
	// Paper §3.1: invalid region declares fine; the request aborts when
	// pinning fails at communication time.
	p := newPair(t, DefaultConfig(core.OnDemand, true))
	rbuf, _ := p.b.Malloc(1 << 20)
	var sendErr error
	p.eng.Go("s", func(pr *sim.Proc) {
		req := p.a.Isend(0xdead0000, 1<<20, 3, p.b.Addr()) // unmapped address
		sendErr = p.a.Wait(pr, req)
	})
	p.eng.Go("r", func(pr *sim.Proc) {
		p.b.Irecv(rbuf, 1<<20, 3, ^uint64(0))
	})
	p.eng.RunUntil(sim.Second)
	if sendErr == nil {
		t.Fatal("send from unmapped buffer did not abort")
	}
}

func TestSendToSelfLoopback(t *testing.T) {
	p := newPair(t, DefaultConfig(core.OnDemand, true))
	p.fabric.LoopbackBytesPerSec = 4e9
	n := 256 * 1024
	sbuf, _ := p.a.Malloc(n)
	rbuf, _ := p.a.Malloc(n)
	want := fill(t, p.a, sbuf, n, 6)
	p.eng.Go("self", func(pr *sim.Proc) {
		rr := p.a.Irecv(rbuf, n, 2, ^uint64(0))
		sr := p.a.Isend(sbuf, n, 2, p.a.Addr())
		p.a.WaitAll(pr, sr, rr)
	})
	p.eng.Run()
	got := make([]byte, n)
	p.a.AS.Read(rbuf, got)
	if !bytes.Equal(got, want) {
		t.Fatal("loopback data corrupted")
	}
}

func TestManySmallMessagesBothDirections(t *testing.T) {
	p := newPair(t, DefaultConfig(core.OnDemand, true))
	const iters = 50
	n := 2048
	abuf, _ := p.a.Malloc(n)
	bbuf, _ := p.b.Malloc(n)
	arecv, _ := p.a.Malloc(n)
	brecv, _ := p.b.Malloc(n)
	fill(t, p.a, abuf, n, 1)
	fill(t, p.b, bbuf, n, 2)
	p.eng.Go("a", func(pr *sim.Proc) {
		for i := 0; i < iters; i++ {
			sr := p.a.Isend(abuf, n, uint64(i), p.b.Addr())
			rr := p.a.Irecv(arecv, n, uint64(i), ^uint64(0))
			if err := p.a.WaitAll(pr, sr, rr); err != nil {
				t.Errorf("iter %d: %v", i, err)
				return
			}
		}
	})
	p.eng.Go("b", func(pr *sim.Proc) {
		for i := 0; i < iters; i++ {
			rr := p.b.Irecv(brecv, n, uint64(i), ^uint64(0))
			if err := p.b.Wait(pr, rr); err != nil {
				t.Errorf("iter %d: %v", i, err)
				return
			}
			sr := p.b.Isend(bbuf, n, uint64(i), p.a.Addr())
			if err := p.b.Wait(pr, sr); err != nil {
				t.Errorf("iter %d: %v", i, err)
				return
			}
		}
	})
	p.eng.Run()
}

func TestFreeDuringTransferAborts(t *testing.T) {
	// Freeing the receive buffer mid-pull invalidates the region; the
	// receive must abort rather than DMA into freed memory.
	cfg := DefaultConfig(core.Overlapped, true)
	cfg.RetransmitTimeout = 500 * sim.Microsecond
	p := newPair(t, cfg)
	n := 8 << 20
	sbuf, _ := p.a.Malloc(n)
	rbuf, _ := p.b.Malloc(n)
	fill(t, p.a, sbuf, n, 1)
	var recvErr error
	recvDone := false
	p.eng.Go("r", func(pr *sim.Proc) {
		req := p.b.Irecv(rbuf, n, 1, ^uint64(0))
		pr.Sleep(2 * sim.Millisecond) // transfer is mid-flight
		if err := p.b.Free(rbuf); err != nil {
			t.Errorf("free: %v", err)
		}
		recvErr = p.b.Wait(pr, req)
		recvDone = true
	})
	p.eng.Go("s", func(pr *sim.Proc) {
		p.a.Wait(pr, p.a.Isend(sbuf, n, 1, p.b.Addr()))
	})
	p.eng.RunUntil(2 * sim.Second)
	if !recvDone {
		t.Fatal("receive hung after buffer was freed mid-transfer")
	}
	if recvErr == nil {
		t.Fatal("receive succeeded despite freed buffer")
	}
	if p.b.Manager().PinnedPages() != 0 {
		t.Fatal("pinned pages leaked after abort")
	}
}

func TestEndpointOpenCloseLifecycle(t *testing.T) {
	p := newPair(t, DefaultConfig(core.OnDemand, true))
	if _, err := p.n0.OpenEndpoint(0, 1, DefaultConfig(core.OnDemand, true)); err == nil {
		t.Fatal("duplicate endpoint id accepted")
	}
	ep2, err := p.n0.OpenEndpoint(5, 2, DefaultConfig(core.OnDemand, true))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := p.n0.Endpoint(5); !ok || got != ep2 {
		t.Fatal("endpoint lookup failed")
	}
	ep2.Close()
	if _, ok := p.n0.Endpoint(5); ok {
		t.Fatal("closed endpoint still registered")
	}
}
