package omx

import (
	"fmt"

	"omxsim/internal/core"
	"omxsim/internal/cpu"
	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// Process models one application process on a node: an address space with
// its allocator, the driver-side region manager attached to it (with the
// MMU notifier, paper §3.1), and the user-space region cache. Endpoints
// opened in the same process share all of it — in particular the region
// cache, so a buffer declared through one endpoint is a cache hit on
// every other endpoint of the process (the paper's §3.2 cache is
// per-process, not per-endpoint).
type Process struct {
	node *Node
	pid  int
	cfg  Config

	core  *cpu.Core
	AS    *vm.AddressSpace
	Alloc *vm.Allocator
	mgr   *core.Manager
	cache *core.Cache

	eps []*Endpoint
}

// NewProcess creates a process on the node, bound to core coreIdx. The
// configuration applies to every endpoint later opened in it.
func (n *Node) NewProcess(pid, coreIdx int, cfg Config) (*Process, error) {
	cfg = cfg.withDefaults()
	if _, ok := core.EvictorByName(cfg.CacheEviction); !ok {
		return nil, fmt.Errorf("omx: unknown cache eviction policy %q (have %v)",
			cfg.CacheEviction, core.EvictorNames())
	}
	as := vm.NewAddressSpace(pid, n.Phys)
	alloc, err := vm.NewAllocator(as, 0, 64<<20)
	if err != nil {
		return nil, err
	}
	appCore := n.Machine.Core(coreIdx)
	mgr := core.NewManager(n.Eng, as, appCore, core.ManagerConfig{
		Policy:          cfg.Policy,
		Backend:         cfg.Backend,
		PinnedPageLimit: cfg.PinnedPageLimit,
		PinChunkPages:   cfg.PinChunkPages,
	})
	cache := core.NewCache(n.Eng, mgr, appCore, core.CacheConfig{
		Enabled:      cfg.CacheEnabled,
		Capacity:     cfg.CacheCapacity,
		ByteCapacity: cfg.CacheByteCapacity,
		Eviction:     cfg.CacheEviction,
		DropOnCOW:    cfg.CacheDropOnCOW,
	})
	p := &Process{
		node:  n,
		pid:   pid,
		cfg:   cfg,
		core:  appCore,
		AS:    as,
		Alloc: alloc,
		mgr:   mgr,
		cache: cache,
	}
	// An invalidation that rips pins out from under live users must abort
	// the affected requests on every endpoint of the process.
	mgr.OnInvalidateInUse = func(r *core.Region) {
		for _, ep := range p.eps {
			ep.abortRegionUsers(r)
		}
	}
	return p, nil
}

// PID returns the process id.
func (p *Process) PID() int { return p.pid }

// Node returns the host the process runs on.
func (p *Process) Node() *Node { return p.node }

// Manager exposes the process's driver-side region manager.
func (p *Process) Manager() *core.Manager { return p.mgr }

// Cache exposes the process's shared user-space region cache.
func (p *Process) Cache() *core.Cache { return p.cache }

// Endpoints returns the endpoints currently open in the process.
func (p *Process) Endpoints() []*Endpoint { return p.eps }

// Config returns the process configuration.
func (p *Process) Config() Config { return p.cfg }

// detach removes a closing endpoint; the last one out tears down the
// driver state (cache notifier, region manager pins).
func (p *Process) detach(ep *Endpoint) {
	for i, x := range p.eps {
		if x == ep {
			p.eps = append(p.eps[:i], p.eps[i+1:]...)
			break
		}
	}
	if len(p.eps) == 0 {
		p.cache.Close()
		p.mgr.Close()
	}
}

// OpenEndpointIn opens endpoint epID inside an existing process, sharing
// its address space, allocator, region manager, and region cache. The
// endpoint's thread runs on core coreIdx (threads of one process may sit
// on different cores; cache and declare costs are charged on the calling
// thread's core).
func (n *Node) OpenEndpointIn(p *Process, epID, coreIdx int) (*Endpoint, error) {
	if p.node != n {
		return nil, fmt.Errorf("omx: process %d belongs to node %d, not node %d",
			p.pid, p.node.ID, n.ID)
	}
	if _, dup := n.endpoints[epID]; dup {
		return nil, fmt.Errorf("omx: endpoint %d already open on node %d", epID, n.ID)
	}
	ep := &Endpoint{
		node:        n,
		proc:        p,
		addr:        EndpointAddr{Node: n.ID, EP: epID},
		cfg:         p.cfg,
		core:        n.Machine.Core(coreIdx),
		AS:          p.AS,
		Alloc:       p.Alloc,
		sendSeq:     make(map[EndpointAddr]uint64),
		sends:       make(map[sendKey]*sendState),
		recvNext:    make(map[EndpointAddr]uint64),
		rstates:     make(map[msgKey]*rstate),
		activePulls: make(map[*rstate]struct{}),
	}
	p.eps = append(p.eps, ep)
	n.endpoints[epID] = ep
	return ep, nil
}

// Compute blocks the process for d of application CPU time (workload
// computation on the process's core).
func (p *Process) Compute(pr *sim.Proc, d sim.Duration) {
	p.core.Exec(pr, cpu.User, d)
}
