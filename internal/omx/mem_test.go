package omx

import (
	"testing"

	"omxsim/internal/cpu"
	"omxsim/internal/ethernet"
	"omxsim/internal/sim"
)

// TestConfigureMemoryRunsKswapd: a bounded node under allocation pressure
// has its kswapd wake on the watermark, reclaim toward the high
// watermark, and charge the scan/writeback cost as kernel work — without
// the daemon tick keeping the simulation alive after the workload drains.
func TestConfigureMemoryRunsKswapd(t *testing.T) {
	eng := sim.NewEngine(1)
	fabric := ethernet.NewFabric(eng, ethernet.DefaultLinkConfig())
	n := NewNode(eng, fabric, cpu.XeonE5460, 0, 0)
	n.ConfigureMemory(MemConfig{Frames: 256})
	if n.Kswapd() == nil {
		t.Fatal("kswapd not started")
	}
	p, err := n.NewProcess(0, 1, DefaultConfig(0, false))
	if err != nil {
		t.Fatal(err)
	}
	// Dip free frames below the low watermark (256/8 = 32): touch 230
	// pages, then give the workload enough simulated time for a few
	// kswapd periods.
	eng.Go("app", func(pr *sim.Proc) {
		addr, err := p.Alloc.Malloc(230 * 4096)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if err := p.AS.Write(addr, make([]byte, 230*4096)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		p.Compute(pr, 1*sim.Millisecond)
	})
	eng.Run()

	rs := n.Phys.ReclaimStats()
	if rs.KswapdRuns == 0 || rs.KswapdSteals == 0 {
		t.Fatalf("kswapd never reclaimed: %+v", rs)
	}
	if free := n.Phys.FreeFrames(); free < n.Phys.LowWatermark() {
		t.Fatalf("free = %d still below low watermark %d", free, n.Phys.LowWatermark())
	}
	if kernel := n.RxCore().BusyTime(cpu.Kernel); kernel == 0 {
		t.Fatal("reclaim cost was never charged as kernel work")
	}
	// The engine drained even though the kswapd ticker is still armed.
	if eng.Pending() == 0 {
		t.Fatal("expected the daemon tick to remain pending")
	}
}

// TestConfigureMemoryUnbounded: Frames == 0 leaves the node untouched.
func TestConfigureMemoryUnbounded(t *testing.T) {
	eng := sim.NewEngine(1)
	fabric := ethernet.NewFabric(eng, ethernet.DefaultLinkConfig())
	n := NewNode(eng, fabric, cpu.XeonE5460, 0, 0)
	n.ConfigureMemory(MemConfig{})
	if n.Kswapd() != nil || n.Phys.Capacity() != 0 {
		t.Fatal("unbounded node grew reclaim state")
	}
}
