package omx

import (
	"errors"
	"fmt"
	"testing"
)

// TestAbortLattice pins the typed-abort lattice: which sentinel each error
// does and does not match under errors.Is. Every liveness/admission abort
// must wrap ErrAborted so a caller can handle the whole family with one
// check, while the specific sentinels stay disjoint from each other.
func TestAbortLattice(t *testing.T) {
	sentinels := []struct {
		name string
		err  error
	}{
		{"ErrAborted", ErrAborted},
		{"ErrPeerDead", ErrPeerDead},
		{"ErrTimeout", ErrTimeout},
		{"ErrOverload", ErrOverload},
		{"ErrPinAborted", ErrPinAborted},
		{"ErrTruncated", ErrTruncated},
	}
	cases := []struct {
		name string
		err  error
		is   []error // sentinels errors.Is must match (everything else must not)
	}{
		{"ErrAborted", ErrAborted, []error{ErrAborted}},
		{"ErrPeerDead", ErrPeerDead, []error{ErrPeerDead, ErrAborted}},
		{"ErrTimeout", ErrTimeout, []error{ErrTimeout, ErrAborted}},
		{"ErrOverload", ErrOverload, []error{ErrOverload, ErrAborted}},
		// ErrPinAborted predates the lattice and is deliberately
		// standalone: a pin failure is a resource condition, not a
		// liveness abort, and callers retry it differently.
		{"ErrPinAborted", ErrPinAborted, []error{ErrPinAborted}},
		{"ErrTruncated", ErrTruncated, []error{ErrTruncated}},
		{
			"OverloadError",
			&OverloadError{Limit: 8, Inflight: 8},
			[]error{ErrOverload, ErrAborted},
		},
		{
			"wrapped peer-dead",
			fmt.Errorf("rank 3: %w", ErrPeerDead),
			[]error{ErrPeerDead, ErrAborted},
		},
		{
			"wrapped overload",
			fmt.Errorf("put key 9: %w", &OverloadError{Limit: 4, Inflight: 4}),
			[]error{ErrOverload, ErrAborted},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := map[error]bool{}
			for _, s := range tc.is {
				want[s] = true
			}
			for _, s := range sentinels {
				if got := errors.Is(tc.err, s.err); got != want[s.err] {
					t.Errorf("errors.Is(%v, %s) = %v, want %v", tc.err, s.name, got, want[s.err])
				}
			}
		})
	}
}

// TestOverloadErrorAs checks that the admission-control state survives
// wrapping: errors.As digs the *OverloadError out of a decorated chain.
func TestOverloadErrorAs(t *testing.T) {
	base := &OverloadError{Limit: 16, Inflight: 17}
	wrapped := fmt.Errorf("tenant t2: %w", base)
	var oe *OverloadError
	if !errors.As(wrapped, &oe) {
		t.Fatalf("errors.As failed to find *OverloadError in %v", wrapped)
	}
	if oe.Limit != 16 || oe.Inflight != 17 {
		t.Fatalf("recovered OverloadError %+v, want Limit=16 Inflight=17", oe)
	}
	// A plain sentinel carries no struct payload.
	oe = nil
	if errors.As(ErrTimeout, &oe) {
		t.Fatalf("errors.As(ErrTimeout) unexpectedly matched *OverloadError %+v", oe)
	}
	if got := base.Error(); got == "" || !errors.Is(base, ErrOverload) {
		t.Fatalf("OverloadError.Error/Unwrap broken: %q", got)
	}
}
