package omx

import (
	"fmt"

	"omxsim/internal/core"
	"omxsim/internal/cpu"
	"omxsim/internal/sim"
	"omxsim/internal/trace"
)

// readUserBuf copies the send segments out of the application's virtual
// memory (page-table walk in syscall context — the eager path never pins,
// it copies through statically pinned intermediate buffers, paper §2.2).
func (ep *Endpoint) readUserBuf(segs []Segment, total int) ([]byte, error) {
	buf := make([]byte, total)
	off := 0
	for _, s := range segs {
		if err := ep.AS.Read(s.Addr, buf[off:off+s.Len]); err != nil {
			return nil, err
		}
		off += s.Len
	}
	return buf, nil
}

// startEager sends a small message as MTU-sized fragments carrying the data
// inline. The copy into the intermediate buffer is charged on the sending
// core at kernel priority.
func (ep *Endpoint) startEager(ss *sendState, match uint64) {
	data, err := ep.readUserBuf(ss.req.segs, ss.total)
	if err != nil {
		delete(ep.sends, sendKey{ss.dst, ss.seq})
		ep.complete(ss.req, fmt.Errorf("omx: eager send: %w", err))
		return
	}
	ss.data = data
	copyCost := ep.core.Spec().CopyCost(ss.total)
	ep.core.Submit(cpu.Kernel, copyCost, func() {
		ep.sendEagerFrags(ss, match)
		ep.armSendRetransmit(ss, func() { ep.sendEagerFrags(ss, match) })
	})
}

// sendEagerFrags (re)transmits every fragment of an eager message.
func (ep *Endpoint) sendEagerFrags(ss *sendState, match uint64) {
	maxData := ep.node.maxData()
	nfrags := (ss.total + maxData - 1) / maxData
	if nfrags == 0 {
		nfrags = 1 // zero-length messages still carry an envelope
	}
	db := ep.doneBelow(ss.dst)
	for f := 0; f < nfrags; f++ {
		off := f * maxData
		end := off + maxData
		if end > ss.total {
			end = ss.total
		}
		ep.node.send(ss.dst.Node, end-off, &eagerFrag{
			src: ep.addr, dst: ss.dst, seq: ss.seq, match: match,
			total: ss.total, off: off, data: ss.data[off:end],
			nfrags: nfrags, frag: f, doneBelow: db,
		})
	}
}

// startRendezvous begins a large-message send: declare (cache), pin per
// policy, send the rendezvous envelope. Under synchronous policies the
// rendezvous waits for the pin (Figure 2); under Overlapped it goes out
// immediately and pinning proceeds behind the transfer (Figure 5).
func (ep *Endpoint) startRendezvous(ss *sendState, match uint64) {
	ep.proc.cache.GetAsyncOn(ep.core, ss.req.segs, func(r *core.Region, err error) {
		if err != nil {
			delete(ep.sends, sendKey{ss.dst, ss.seq})
			ep.complete(ss.req, fmt.Errorf("omx: declare: %w", err))
			return
		}
		ss.req.region = r
		acq := ep.proc.mgr.Acquire(r)
		ss.req.acquired = true
		sendRndv := func() {
			if ss.req.done.Done() {
				return
			}
			ep.emit(trace.RndvSent, ss.seq, ss.total, 0)
			ep.node.send(ss.dst.Node, 0, &rndvMsg{
				src: ep.addr, dst: ss.dst, seq: ss.seq, match: match, total: ss.total,
				doneBelow: ep.doneBelow(ss.dst),
			})
			ep.armSendRetransmit(ss, func() {
				ep.node.send(ss.dst.Node, 0, &rndvMsg{
					src: ep.addr, dst: ss.dst, seq: ss.seq, match: match, total: ss.total,
					doneBelow: ep.doneBelow(ss.dst),
				})
			})
		}
		if !ss.req.overlap {
			acq.OnDone(ep.node.Eng, func() {
				if acq.Err() != nil {
					ep.abortSend(ss, fmt.Errorf("%w: %v", ErrPinAborted, acq.Err()))
					return
				}
				sendRndv()
			})
			return
		}
		// Overlapped: transfer first, pin behind it. A pin failure aborts
		// the request; the receiver learns via an abort message.
		acq.OnDone(ep.node.Eng, func() {
			if acq.Err() != nil {
				ep.abortSend(ss, fmt.Errorf("%w: %v", ErrPinAborted, acq.Err()))
			}
		})
		// §4.3 mitigation: hold the rendezvous until a small prefix is
		// pinned, so the first pull requests never outrun the cursor.
		ep.proc.mgr.OnPinProgress(r, ep.cfg.SyncPrefixPages, func(err error) {
			if err != nil {
				return // the acquire completion above handles the abort
			}
			sendRndv()
		})
	})
}

// abortSend fails a send request and stops its timers.
func (ep *Endpoint) abortSend(ss *sendState, err error) {
	if ss.rtxTimer != nil {
		ss.rtxTimer.Cancel()
		ss.rtxTimer = nil
	}
	delete(ep.sends, sendKey{ss.dst, ss.seq})
	ep.complete(ss.req, err)
}

// retryBackoff is the exponential retry-delay schedule shared by the
// sender and receiver liveness timers: the base delay doubles per
// consecutive silent try, capped at 8x, so a dead peer costs
// geometrically fewer probe frames while a lossy-but-alive one (whose
// progress resets tries) keeps the fast cadence.
func retryBackoff(base sim.Duration, tries int) sim.Duration {
	shift := tries
	if shift > 3 {
		shift = 3
	}
	return base << uint(shift)
}

// armSendRetransmit (re)arms the control-message fallback timer.
func (ep *Endpoint) armSendRetransmit(ss *sendState, resend func()) {
	if ss.rtxTimer != nil {
		ss.rtxTimer.Cancel()
	}
	ss.rtxTimer = ep.node.Eng.After(retryBackoff(ep.cfg.RetransmitTimeout, ss.tries), func() {
		if ss.acked || ss.req.done.Done() {
			return
		}
		if quiet := ep.node.Eng.Now() - ss.quietSince; quiet >= ep.cfg.PeerDeadTimeout {
			ep.abortSend(ss, fmt.Errorf("%w: silent for %v", ErrPeerDead, quiet))
			return
		}
		ss.tries++
		if ss.tries > maxRetries {
			ep.abortSend(ss, fmt.Errorf("%w: retransmit limit", ErrAborted))
			return
		}
		ep.node.stats.Retransmits++
		resend()
		ep.armSendRetransmit(ss, resend)
	})
}

// armSendInactivity (re)arms the liveness bound on an in-progress large
// send: if no pull traffic arrives for PeerDeadTimeout (or maxRetries
// consecutive timeout periods), the peer is gone and the request aborts.
func (ep *Endpoint) armSendInactivity(ss *sendState) {
	if ss.rtxTimer != nil {
		ss.rtxTimer.Cancel()
	}
	ss.rtxTimer = ep.node.Eng.After(retryBackoff(ep.cfg.RetransmitTimeout, ss.tries), func() {
		if ss.req.done.Done() {
			return
		}
		if quiet := ep.node.Eng.Now() - ss.quietSince; quiet >= ep.cfg.PeerDeadTimeout {
			ep.abortSend(ss, fmt.Errorf("%w: silent for %v", ErrPeerDead, quiet))
			return
		}
		ss.tries++
		if ss.tries > maxRetries {
			ep.abortSend(ss, fmt.Errorf("%w: peer inactive", ErrAborted))
			return
		}
		ep.armSendInactivity(ss)
	})
}

// handleEagerAck completes an eager send.
func (ep *Endpoint) handleEagerAck(m *eagerAck) {
	ss, ok := ep.sends[sendKey{m.src, m.seq}]
	if !ok {
		return // duplicate ack
	}
	ss.acked = true
	if ss.rtxTimer != nil {
		ss.rtxTimer.Cancel()
		ss.rtxTimer = nil
	}
	delete(ep.sends, sendKey{m.src, m.seq})
	ep.complete(ss.req, nil)
}

// handlePullReq serves a pull request from the send region: the paper's
// sender-side bottom half ("when a pull packet is received, data is read
// from the send region and attached to pull reply packets", §2.2). The read
// goes through the pinned frames — zero-copy, no CPU copy cost, only
// per-reply descriptor work. If the requested range is beyond the pinned
// prefix (overlapped pinning hasn't caught up), the request is dropped and
// the receiver's optimistic re-request recovers it — an overlap miss
// (paper §3.3, §4.3).
func (ep *Endpoint) handlePullReq(m *pullReq) {
	ss, ok := ep.sends[sendKey{m.src, m.seq}]
	if !ok {
		// Completed or aborted here. A receiver still pulling (it missed
		// our abort, or we crashed and restarted) would otherwise
		// re-request until its own liveness bound: nack it. Duplicate
		// pull requests racing the final notify are harmless — the
		// receiver ignores aborts for completed messages.
		ep.node.send(m.src.Node, 0, &abortMsg{src: ep.addr, dst: m.src, seq: m.seq})
		return
	}
	if ss.req.region == nil {
		return // declaration still in flight
	}
	// First pull request implicitly acknowledges the rendezvous. From then
	// on an inactivity timer bounds the wait for the notify: pull traffic
	// re-arms it, total silence for PeerDeadTimeout (a dead or closed
	// peer) aborts the send instead of hanging forever.
	if !ss.acked {
		ss.acked = true
		if ss.rtxTimer != nil {
			ss.rtxTimer.Cancel()
			ss.rtxTimer = nil
		}
	}
	ss.tries = 0
	ss.quietSince = ep.node.Eng.Now()
	ep.armSendInactivity(ss)
	region := ss.req.region
	maxData := ep.node.maxData()
	// Filter the burst through the overlap-miss check per block, then serve
	// every ready block as one bottom-half item: the whole window's reply
	// descriptors are charged (and its fragments enqueued on the wire) in a
	// single event rather than one per block.
	var ready []pullRange
	totalFrags := 0
	for _, b := range m.blocks {
		if !region.Ready(b.off, b.length) {
			ep.node.stats.OverlapMissSender++
			ep.emit(trace.OverlapMissSnd, m.seq, b.off, b.length)
			continue
		}
		ep.emit(trace.PullReplySent, m.seq, b.off, b.length)
		totalFrags += (b.length + maxData - 1) / maxData
		ready = append(ready, b)
	}
	if len(ready) == 0 {
		return
	}
	// Per-reply descriptor cost, charged as one BH item for the burst.
	ep.node.rxCore.Submit(cpu.BottomHalf, sim.Duration(totalFrags)*100*sim.Nanosecond, func() {
		for _, blk := range ready {
			for off := blk.off; off < blk.off+blk.length; off += maxData {
				n := maxData
				if off+n > blk.off+blk.length {
					n = blk.off + blk.length - off
				}
				buf, err := region.ReadBufAt(off, n)
				if err != nil {
					// Region invalidated between the Ready check and the read
					// (application bug: freed a buffer mid-send). Abort.
					ep.abortSend(ss, fmt.Errorf("%w: %v", ErrPinAborted, err))
					return
				}
				ep.node.send(m.src.Node, n, &pullReply{
					src: ep.addr, dst: m.src, seq: m.seq, off: off, buf: buf,
				})
			}
		}
	})
}

// handleNotify completes a large send: all data reached the receiver.
func (ep *Endpoint) handleNotify(m *notifyMsg) {
	// Always ack, even for unknown messages (duplicate notify after our
	// state was reaped).
	ep.node.send(m.src.Node, 0, &notifyAck{src: ep.addr, dst: m.src, seq: m.seq})
	ss, ok := ep.sends[sendKey{m.src, m.seq}]
	if !ok {
		return
	}
	if ss.rtxTimer != nil {
		ss.rtxTimer.Cancel()
		ss.rtxTimer = nil
	}
	delete(ep.sends, sendKey{m.src, m.seq})
	ep.complete(ss.req, nil)
}
