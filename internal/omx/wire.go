// Package omx implements the Open-MX stack on the simulated substrates: the
// MXoE wire protocol (eager messages, rendezvous + pull + notify for large
// ones), endpoints with MX-style 64-bit matching, the kernel driver's
// receive bottom halves, I/OAT receive-copy offload, retransmission, and —
// through internal/core — the paper's decoupled/overlapped/cached memory
// pinning (paper §2.2, §3).
package omx

import (
	"fmt"

	"omxsim/internal/core"
	"omxsim/internal/vm"
)

// EndpointAddr identifies an endpoint as (node, endpoint id), like an MX
// board/endpoint pair.
type EndpointAddr struct {
	Node int
	EP   int
}

// String renders the address as node:ep.
func (a EndpointAddr) String() string { return fmt.Sprintf("%d:%d", a.Node, a.EP) }

// msgKey globally identifies a message: sender address plus the sender's
// per-destination sequence number.
type msgKey struct {
	src EndpointAddr
	seq uint64
}

// Wire message payloads. Each is carried in an ethernet.Frame whose Size
// accounts for the header overhead below plus any data bytes.

// headerBytes is the MXoE header size per frame, charged on the wire in
// addition to data.
const headerBytes = 32

// eagerFrag is one fragment of an eager (<= threshold) message. The
// envelope (match information) travels on every fragment; the first one to
// arrive triggers matching.
type eagerFrag struct {
	src, dst EndpointAddr
	seq      uint64 // per (src,dst) pair ordering
	match    uint64
	total    int
	off      int
	data     []byte
	nfrags   int
	frag     int
	// doneBelow is the sender's finished watermark toward dst: every seq
	// at or below it is delivered or aborted, so the receiver's in-order
	// admission must not wait for gaps below it (gaps appear when a send
	// aborts — peer declared dead, crash — without the receiver ever
	// seeing its envelope).
	doneBelow uint64
}

// eagerAck acknowledges complete receipt of an eager message.
type eagerAck struct {
	src, dst EndpointAddr // src = original receiver
	seq      uint64       // the acked message's seq
}

// rndvMsg announces a large message: the receiver will pull the data from
// the sender's region (paper Figure 2).
type rndvMsg struct {
	src, dst EndpointAddr
	seq      uint64
	match    uint64
	total    int
	// doneBelow: see eagerFrag. Recomputed on every (re)transmission, so
	// later aborts propagate with the retries.
	doneBelow uint64
}

// pullRange names one requested block of a message.
type pullRange struct {
	off, length int
}

// pullReq asks the sender to transmit the listed blocks of message seq.
// The receiver batches a whole pull window into one request frame (block
// descriptors are a few bytes each; the frame stays header-sized), so
// issuing a window costs one wire event instead of one per block.
// Receiver-driven; duplicates are harmless (the sender is stateless for
// pulls and the receiver dedups by offset).
type pullReq struct {
	src, dst EndpointAddr // src = receiver issuing the pull
	seq      uint64
	blocks   []pullRange
}

// pullReply carries data fragment [off, off+buf.Len()) of message seq. The
// payload is a zero-copy view of the sender's pinned frames (vm.Buf): the
// wire Size still charges the full data length, but the host moves no bytes
// unless a page is rewritten mid-flight.
type pullReply struct {
	src, dst EndpointAddr
	seq      uint64
	off      int
	buf      vm.Buf
}

// notifyMsg tells the sender all data arrived (paper Figure 2: "notify").
type notifyMsg struct {
	src, dst EndpointAddr
	seq      uint64
}

// notifyAck confirms the notify so the receiver can stop retransmitting it.
type notifyAck struct {
	src, dst EndpointAddr
	seq      uint64
}

// abortMsg tells the receiver the sender aborted message seq (e.g. its send
// buffer was freed mid-transfer and the pin was invalidated), so the
// receiver stops pulling and errors its request.
type abortMsg struct {
	src, dst EndpointAddr
	seq      uint64
}

// addrs exposes the endpoint pair of every wire payload, for frame
// demultiplexing and flow steering.
func (m *eagerFrag) addrs() (src, dst EndpointAddr) { return m.src, m.dst }
func (m *eagerAck) addrs() (src, dst EndpointAddr)  { return m.src, m.dst }
func (m *rndvMsg) addrs() (src, dst EndpointAddr)   { return m.src, m.dst }
func (m *pullReq) addrs() (src, dst EndpointAddr)   { return m.src, m.dst }
func (m *pullReply) addrs() (src, dst EndpointAddr) { return m.src, m.dst }
func (m *notifyMsg) addrs() (src, dst EndpointAddr) { return m.src, m.dst }
func (m *notifyAck) addrs() (src, dst EndpointAddr) { return m.src, m.dst }
func (m *abortMsg) addrs() (src, dst EndpointAddr)  { return m.src, m.dst }

// wirePayload is the interface every protocol message implements.
type wirePayload interface {
	addrs() (src, dst EndpointAddr)
}

// FlowOf maps an endpoint pair onto a transport flow id, the input of the
// NIC's RSS-style steering: all traffic between one (src endpoint, dst
// endpoint) pair serializes on one tx lane and lands on one rx queue —
// queue-qualified addressing without widening EndpointAddr on the wire.
func FlowOf(src, dst EndpointAddr) uint64 {
	return uint64(uint16(src.Node))<<48 | uint64(uint16(src.EP))<<32 |
		uint64(uint16(dst.Node))<<16 | uint64(uint16(dst.EP))
}

// matches implements MX matching: the receive matches the message iff the
// masked match information is equal.
func matches(recvMatch, recvMask, msgMatch uint64) bool {
	return (msgMatch & recvMask) == (recvMatch & recvMask)
}

// Segment aliases core.Segment for the public API surface of this package.
type Segment = core.Segment
