package omx

import (
	"omxsim/internal/cpu"
	"omxsim/internal/sim"
)

// MemConfig is a node's physical-memory pressure model: a frame budget
// with kswapd-style watermarks. With Frames > 0 the node's PhysMem is
// bounded, a kswapd runs as recurring kernel work on the sim engine
// (charged on a core like any other kernel work), and allocations that
// hit capacity stall in direct reclaim — so swap pressure emerges from
// the allocator instead of being injected by a fault. Zero fields pick
// the defaults below.
type MemConfig struct {
	// Frames is the physical frame budget (0 = unlimited: no reclaim,
	// no kswapd, no LRU cost on the fault path).
	Frames int
	// LowWaterFrames wakes kswapd when free frames drop below it
	// (0 = Frames/8).
	LowWaterFrames int
	// HighWaterFrames is kswapd's reclaim target in free frames
	// (0 = Frames/4).
	HighWaterFrames int
	// KswapdPeriod is the background reclaimer's wakeup interval
	// (0 = 100µs).
	KswapdPeriod sim.Duration
	// ScanCost is the CPU time charged per frame examined by a reclaim
	// scan (0 = 100ns).
	ScanCost sim.Duration
	// WritebackDelay is the CPU/IO time charged per page written to swap
	// (0 = 2µs) — the knob that makes stealing pages expensive, not free.
	WritebackDelay sim.Duration
}

// Defaults for MemConfig's zero fields.
const (
	DefaultKswapdPeriod   = 100 * sim.Microsecond
	DefaultScanCost       = 100 * sim.Nanosecond
	DefaultWritebackDelay = 2 * sim.Microsecond
)

func (m MemConfig) withDefaults() MemConfig {
	if m.KswapdPeriod == 0 {
		m.KswapdPeriod = DefaultKswapdPeriod
	}
	if m.ScanCost == 0 {
		m.ScanCost = DefaultScanCost
	}
	if m.WritebackDelay == 0 {
		m.WritebackDelay = DefaultWritebackDelay
	}
	return m
}

// ConfigureMemory bounds the node's physical memory per mem and starts
// its kswapd. Call it before opening processes (the capacity must be set
// before any frame materializes). A no-op when mem.Frames <= 0.
//
// The kswapd is daemon work: it ticks every KswapdPeriod, and when free
// frames sit below the low watermark it reclaims toward the high
// watermark, charging scan + writeback time as kernel work on the RX
// core (the same core that loses time to bottom halves — memory pressure
// and interrupt pressure compete for it, as they do on a real host).
// Direct-reclaim stalls charge the same way; the state change itself is
// immediate, matching how the driver charges unpin costs.
func (n *Node) ConfigureMemory(mem MemConfig) {
	if mem.Frames <= 0 {
		return
	}
	mem = mem.withDefaults()
	n.Phys.SetCapacity(mem.Frames)
	n.Phys.SetWatermarks(mem.LowWaterFrames, mem.HighWaterFrames)
	n.Phys.SetReclaimHook(func(scanned, stolen int, direct bool) {
		cost := sim.Duration(scanned)*mem.ScanCost + sim.Duration(stolen)*mem.WritebackDelay
		if cost > 0 {
			n.rxCore.Submit(cpu.Kernel, cost, nil)
		}
	})
	n.kswapd = n.Eng.Every(mem.KswapdPeriod, func() {
		n.Phys.KswapdPass()
	})
}

// Kswapd returns the node's background reclaimer handle (nil when the
// node's memory is unbounded).
func (n *Node) Kswapd() *sim.Recurring { return n.kswapd }
