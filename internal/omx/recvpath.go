package omx

import (
	"errors"
	"fmt"
	"sort"

	"omxsim/internal/cpu"
	"omxsim/internal/sim"
	"omxsim/internal/trace"
)

// handleEagerFrag processes one eager fragment in the bottom half: copy into
// the kernel intermediate buffer, reassemble, ack when complete, deliver if
// matched.
func (ep *Endpoint) handleEagerFrag(m *eagerFrag) {
	ep.advanceDone(m.src, m.doneBelow)
	key := msgKey{m.src, m.seq}
	rs, ok := ep.rstates[key]
	if !ok {
		if m.seq <= ep.recvNext[m.src] {
			// Already fully received and reaped: the ack was lost. Re-ack.
			ep.node.send(m.src.Node, 0, &eagerAck{src: ep.addr, dst: m.src, seq: m.seq})
			return
		}
		rs = &rstate{
			key: key, match: m.match, total: m.total,
			buf: make([]byte, m.total), gotFrag: make(map[int]bool), nfrags: m.nfrags,
		}
		ep.rstates[key] = rs
		ep.admit(m.src)
	}
	if rs.gotFrag[m.off] {
		ep.node.stats.DupFrags++
		return
	}
	rs.gotFrag[m.off] = true
	ep.node.stats.EagerFragsRx++
	copy(rs.buf[m.off:], m.data)
	rs.received += len(m.data)
	rs.fragsGot++
	if rs.fragsGot == rs.nfrags {
		// Message is safely buffered in the kernel: acknowledge now; the
		// send completes regardless of when the receive is posted.
		ep.node.send(m.src.Node, 0, &eagerAck{src: ep.addr, dst: m.src, seq: m.seq})
		ep.maybeDeliverEager(rs)
	}
}

// maybeDeliverEager copies a fully buffered eager message into the matched
// user buffer. The copy is charged on the receiving process's core at
// kernel priority (it happens in the library's completion path).
func (ep *Endpoint) maybeDeliverEager(rs *rstate) {
	if rs.matched == nil || rs.fragsGot != rs.nfrags || rs.completed {
		return
	}
	rs.completed = true
	req := rs.matched
	n := rs.total
	var truncErr error
	if n > req.postedLen {
		n = req.postedLen
		truncErr = ErrTruncated
	}
	ep.core.Submit(cpu.Kernel, ep.core.Spec().CopyCost(n), func() {
		off := 0
		for _, s := range req.segs {
			if off >= n {
				break
			}
			l := s.Len
			if off+l > n {
				l = n - off
			}
			if err := ep.AS.Write(s.Addr, rs.buf[off:off+l]); err != nil {
				ep.complete(req, fmt.Errorf("omx: eager deliver: %w", err))
				delete(ep.rstates, rs.key)
				return
			}
			off += l
		}
		delete(ep.rstates, rs.key)
		ep.complete(req, truncErr)
	})
}

// handleRndv admits a large-message envelope; the pull starts when (and if)
// a receive matches it.
func (ep *Endpoint) handleRndv(m *rndvMsg) {
	ep.advanceDone(m.src, m.doneBelow)
	key := msgKey{m.src, m.seq}
	if _, ok := ep.rstates[key]; ok {
		return // duplicate rendezvous; transfer already in progress
	}
	if m.seq <= ep.recvNext[m.src] {
		// Completed and reaped: the sender missed our notify. Resend it.
		ep.node.send(m.src.Node, 0, &notifyMsg{src: ep.addr, dst: m.src, seq: m.seq})
		return
	}
	ep.emit(trace.RndvRecv, m.seq, m.total, 0)
	rs := &rstate{key: key, match: m.match, total: m.total, isLarge: true}
	ep.rstates[key] = rs
	ep.admit(m.src)
}

// startPull begins pulling a matched large message into the receive region:
// acquire (pin per policy), then issue pull requests. Under synchronous
// policies the first pull request waits for the whole pin (Figure 2); under
// Overlapped it goes out immediately (Figure 5) and the per-fragment Ready
// check guards accesses.
func (ep *Endpoint) startPull(rs *rstate, req *Request) {
	if rs.total > req.postedLen {
		// Truncation: don't transfer; tell the sender it's done and error
		// the receive.
		ep.finishPull(rs, ErrTruncated)
		return
	}
	nblocks := (rs.total + ep.cfg.PullBlockSize - 1) / ep.cfg.PullBlockSize
	rs.blocks = make([]blockState, nblocks)
	for i := range rs.blocks {
		off := i * ep.cfg.PullBlockSize
		l := ep.cfg.PullBlockSize
		if off+l > rs.total {
			l = rs.total - off
		}
		rs.blocks[i] = blockState{off: off, length: l}
	}
	ep.activePulls[rs] = struct{}{}
	acq := ep.proc.mgr.Acquire(req.region)
	req.acquired = true
	if !req.overlap {
		acq.OnDone(ep.node.Eng, func() {
			if rs.completed {
				return
			}
			if acq.Err() != nil {
				ep.finishPull(rs, fmt.Errorf("%w: %v", ErrPinAborted, acq.Err()))
				return
			}
			ep.issueBlocks(rs)
			ep.armReRequest(rs)
		})
		return
	}
	acq.OnDone(ep.node.Eng, func() {
		if acq.Err() != nil && !rs.completed {
			ep.finishPull(rs, fmt.Errorf("%w: %v", ErrPinAborted, acq.Err()))
		}
	})
	// §4.3 mitigation: hold the first pull requests until a small prefix
	// is pinned, so early replies never outrun the cursor.
	ep.proc.mgr.OnPinProgress(req.region, ep.cfg.SyncPrefixPages, func(err error) {
		if err != nil || rs.completed {
			return
		}
		ep.issueBlocks(rs)
		ep.armReRequest(rs)
	})
}

// issueBlocks keeps the pull window full. All blocks issued at once ride a
// single request frame — the per-window burst — so filling a window costs
// one wire event instead of one per block.
func (ep *Endpoint) issueBlocks(rs *rstate) {
	var burst []pullRange
	for rs.outstanding < ep.cfg.PullWindow && rs.nextBlockOff < len(rs.blocks) {
		b := &rs.blocks[rs.nextBlockOff]
		rs.nextBlockOff++
		rs.outstanding++
		b.lastReq = ep.node.Eng.Now()
		ep.node.stats.PullReqsRx++ // counted at issue for simplicity
		ep.emit(trace.PullReqSent, rs.key.seq, b.off, b.length)
		burst = append(burst, pullRange{off: b.off, length: b.length})
	}
	if len(burst) > 0 {
		ep.node.send(rs.key.src.Node, 0, &pullReq{
			src: ep.addr, dst: rs.key.src, seq: rs.key.seq, blocks: burst,
		})
	}
	rs.lastProgress = ep.node.Eng.Now()
}

// reRequestBlock reissues the pull request for one block (duplicates are
// deduplicated at the receiver by the fragment bitmap).
func (ep *Endpoint) reRequestBlock(rs *rstate, b *blockState) {
	b.lastReq = ep.node.Eng.Now()
	ep.node.stats.ReRequests++
	ep.emit(trace.ReRequest, rs.key.seq, b.off, b.length)
	ep.node.send(rs.key.src.Node, 0, &pullReq{
		src: ep.addr, dst: rs.key.src, seq: rs.key.seq,
		blocks: []pullRange{{off: b.off, length: b.length}},
	})
}

// noteArrival records an accepted fragment for gap detection and performs
// the paper's optimistic re-request: when data with a higher offset arrives
// while an older block still has holes, the oldest hole is re-requested
// immediately instead of waiting for the retransmission timeout (paper
// footnote 4). Re-requests are rate-limited per block.
func (ep *Endpoint) noteArrival(rs *rstate, off, n int) {
	now := ep.node.Eng.Now()
	rs.lastProgress = now
	bi := off / ep.cfg.PullBlockSize
	rs.blocks[bi].accepted += n
	for rs.lowestHole < len(rs.blocks) &&
		rs.blocks[rs.lowestHole].accepted >= rs.blocks[rs.lowestHole].length {
		rs.lowestHole++
	}
	// Gap evidence: frames are delivered in request order per pair, so an
	// arrival for a block strictly beyond the oldest incomplete one proves
	// that older data was dropped (loss or overlap miss) — re-request it.
	// In-order streaming never triggers: arrivals belong to the lowest hole
	// itself, and the fragment completing block k leaves bi == k below the
	// advanced hole k+1. Duplicates never reach here (bitmap dedup).
	if bi > rs.lowestHole && rs.lowestHole < rs.nextBlockOff {
		hole := &rs.blocks[rs.lowestHole]
		if now-hole.lastReq >= ep.cfg.GapReReqDelay {
			if DebugGapReReq != nil {
				DebugGapReReq(bi, rs.lowestHole, rs.nextBlockOff, hole.accepted, int(rs.key.seq))
			}
			ep.node.stats.OptimisticReReqs++
			ep.reRequestBlock(rs, hole)
		}
	}
	// Cross-message gap evidence: per-pair sequence numbers mean this
	// arrival also proves that anything older from the same node should
	// have arrived. Re-request the oldest hole of other stalled pulls from
	// that node (rate-limited per block by GapReReqDelay). The set is keyed
	// by pointer, so candidates are collected and sorted by message key
	// before any wire traffic: map iteration order would otherwise leak
	// run-to-run nondeterminism into the re-request ordering.
	var stalled []*rstate
	for other := range ep.activePulls {
		if other == rs || other.completed || other.key.src.Node != rs.key.src.Node {
			continue
		}
		if other.lowestHole >= other.nextBlockOff {
			continue // nothing requested-and-missing
		}
		if now-other.lastProgress < ep.cfg.CrossGapDelay {
			continue
		}
		if now-other.blocks[other.lowestHole].lastReq >= ep.cfg.CrossGapDelay {
			stalled = append(stalled, other)
		}
	}
	sort.Slice(stalled, func(i, j int) bool {
		a, b := stalled[i].key, stalled[j].key
		if a.src != b.src {
			return a.src.EP < b.src.EP
		}
		return a.seq < b.seq
	})
	for _, other := range stalled {
		ep.node.stats.OptimisticReReqs++
		ep.reRequestBlock(other, &other.blocks[other.lowestHole])
	}
}

// scheduleMissRetry arms a short local timer after a receiver-side overlap
// miss: when it fires, every requested-but-missing block whose pages are
// now pinned is re-requested. If the pin cursor is still behind, the timer
// re-arms. This is local knowledge (the receiver dropped the fragment
// itself), so it cannot false-fire on wire or service delays.
func (ep *Endpoint) scheduleMissRetry(rs *rstate) {
	if rs.missRetry != nil || rs.completed || rs.matched == nil {
		return
	}
	rs.missRetry = ep.node.Eng.After(ep.cfg.GapReReqDelay, func() {
		rs.missRetry = nil
		if rs.completed || rs.matched == nil {
			return
		}
		region := rs.matched.region
		now := ep.node.Eng.Now()
		again := false
		for i := 0; i < rs.nextBlockOff; i++ {
			b := &rs.blocks[i]
			if b.accepted >= b.length {
				continue
			}
			if !region.Ready(b.off, b.length) {
				again = true // pin still behind: check back later
				continue
			}
			if now-b.lastReq >= ep.cfg.GapReReqDelay {
				ep.reRequestBlock(rs, b)
			}
		}
		if again {
			ep.scheduleMissRetry(rs)
		}
	})
}

// armReRequest arms the block-requeue (silence) timer. The fast recovery
// path is gap-driven (noteArrival), like Open-MX's optimistic re-request;
// this timer catches total silence — a lost pull request with nothing
// behind it, or an overlap-miss avalanche that dropped every outstanding
// fragment — well before the coarse control-message timeout. Sustained
// silence backs the cadence off exponentially and, past PeerDeadTimeout,
// declares the sender dead: the pull aborts with ErrPeerDead instead of
// re-requesting a crashed or partitioned peer forever.
func (ep *Endpoint) armReRequest(rs *rstate) {
	ep.armReRequestAfter(rs, ep.cfg.ReRequestDelay)
}

func (ep *Endpoint) armReRequestAfter(rs *rstate, delay sim.Duration) {
	if rs.reqTimer != nil {
		rs.reqTimer.Cancel()
	}
	rs.reqTimer = ep.node.Eng.After(delay, func() {
		if rs.completed {
			return
		}
		stalled := ep.node.Eng.Now() - rs.lastProgress
		if stalled >= ep.cfg.ReRequestDelay {
			if stalled >= ep.cfg.PeerDeadTimeout {
				ep.finishPull(rs, fmt.Errorf("%w: pull silent for %v", ErrPeerDead, stalled))
				return
			}
			if DebugReReq != nil {
				DebugReReq(rs.received, rs.total, rs.outstanding, int64(stalled))
			}
			for i := 0; i < rs.nextBlockOff; i++ {
				b := &rs.blocks[i]
				if b.accepted >= b.length {
					continue
				}
				ep.reRequestBlock(rs, b)
			}
			next := delay * 2
			if max := 8 * ep.cfg.ReRequestDelay; next > max {
				next = max
			}
			ep.armReRequestAfter(rs, next)
			return
		}
		ep.armReRequest(rs)
	})
}

// handlePullReply lands one data fragment in the receive region. This is
// the receive copy the paper discusses: on-CPU memcpy in the bottom half,
// or offloaded to I/OAT. If the target pages are beyond the pinned prefix,
// the fragment is dropped — an overlap miss — and recovered by re-request
// (paper §3.3: "drop the incoming packet and let retransmission happen").
func (ep *Endpoint) handlePullReply(m *pullReply) {
	rs, ok := ep.rstates[msgKey{m.src, m.seq}]
	if !ok || rs.completed || rs.matched == nil {
		return // late fragment after completion
	}
	region := rs.matched.region
	n := m.buf.Len()
	if rs.gotFrag[m.off] {
		ep.node.stats.DupFrags++
		return
	}
	if !region.Ready(m.off, n) {
		// Receiver-side overlap miss: the fragment outran the pin cursor
		// and is dropped (paper §3.3). Unlike a wire loss, the receiver
		// KNOWS it dropped data, so it arms a local retry that re-requests
		// the affected blocks as soon as the pin catches up — the paper's
		// "resent almost immediately".
		ep.node.stats.OverlapMissReceiver++
		ep.emit(trace.OverlapMissRcv, m.seq, m.off, n)
		ep.scheduleMissRetry(rs)
		return
	}
	if rs.gotFrag == nil {
		rs.gotFrag = make(map[int]bool)
	}
	rs.gotFrag[m.off] = true
	ep.node.stats.PullRepliesRx++
	ep.emit(trace.FragAccepted, m.seq, m.off, n)
	if DebugAccept != nil {
		DebugAccept(m.seq, m.off, n, fmt.Sprintf("%p/%s", rs, m.src))
	}
	// Progress is measured at fragment *arrival* (the paper's optimistic
	// re-request reacts to missing packets, not to copy latency); this also
	// drives the gap-based re-request of older holes.
	ep.noteArrival(rs, m.off, n)
	commit := func() {
		if rs.completed {
			return
		}
		if err := region.WriteBufAt(m.off, &m.buf); err != nil {
			// Invalidated between check and copy: give the fragment back.
			delete(rs.gotFrag, m.off)
			rs.blocks[m.off/ep.cfg.PullBlockSize].accepted -= n
			ep.node.stats.OverlapMissReceiver++
			return
		}
		rs.received += n
		bi := m.off / ep.cfg.PullBlockSize
		b := &rs.blocks[bi]
		b.received += n
		rs.lastProgress = ep.node.Eng.Now()
		if !b.done && b.received >= b.length {
			b.done = true
			rs.outstanding--
			ep.issueBlocks(rs)
		}
		if rs.received >= rs.total {
			ep.finishPull(rs, nil)
		}
	}
	if ep.cfg.UseIOAT {
		ep.node.rxCore.Submit(cpu.BottomHalf, ioatSetupCost, func() {
			ep.node.IOAT.SubmitCopy(n, nil, commit)
		})
		return
	}
	ep.node.rxCore.Submit(cpu.BottomHalf, ep.core.Spec().CopyCost(n), commit)
}

// DebugReReq, when non-nil, observes re-request rounds (diagnostic hook
// used by tests and the overlapmiss tool).
var DebugReReq func(received, total, outstanding int, stalledNs int64)

// DebugGapReReq, when non-nil, observes gap-driven re-requests.
var DebugGapReReq func(bi, lowestHole, nextBlockOff, holeAccepted, holeLen int)

// DebugAccept, when non-nil, observes accepted pull-reply fragments.
var DebugAccept func(seq uint64, off, n int, who string)

// ioatSetupCost is the per-descriptor host cost of programming the DMA
// engine.
const ioatSetupCost = 150 * sim.Nanosecond

// finishPull completes a large receive: notify the sender (with
// retransmission until acked), release the region, complete the request.
func (ep *Endpoint) finishPull(rs *rstate, err error) {
	if rs.completed {
		return
	}
	rs.completed = true
	delete(ep.activePulls, rs)
	if rs.reqTimer != nil {
		rs.reqTimer.Cancel()
		rs.reqTimer = nil
	}
	if rs.missRetry != nil {
		rs.missRetry.Cancel()
		rs.missRetry = nil
	}
	if err != nil && (errors.Is(err, ErrPeerDead) || errors.Is(err, ErrTimeout)) {
		// The sender is dead or presumed dead: notifying it would only
		// spin the retransmit loop against silence. Reap immediately; a
		// surviving sender's own liveness bound cleans up its side.
		delete(ep.rstates, rs.key)
		ep.complete(rs.matched, err)
		return
	}
	sendNotify := func() {
		ep.emit(trace.NotifySent, rs.key.seq, rs.received, rs.total)
		ep.node.send(rs.key.src.Node, 0, &notifyMsg{src: ep.addr, dst: rs.key.src, seq: rs.key.seq})
	}
	sendNotify()
	ep.emit(trace.MsgComplete, rs.key.seq, rs.total, 0)
	var arm func()
	arm = func() {
		rs.notifyTimer = ep.node.Eng.After(ep.cfg.RetransmitTimeout, func() {
			rs.notifyTries++
			if rs.notifyTries > maxRetries {
				delete(ep.rstates, rs.key)
				return
			}
			ep.node.stats.Retransmits++
			sendNotify()
			arm()
		})
	}
	arm()
	ep.complete(rs.matched, err)
}

// handleNotifyAck reaps a completed large receive.
func (ep *Endpoint) handleNotifyAck(m *notifyAck) {
	rs, ok := ep.rstates[msgKey{m.src, m.seq}]
	if !ok {
		return
	}
	if rs.notifyTimer != nil {
		rs.notifyTimer.Cancel()
		rs.notifyTimer = nil
	}
	delete(ep.rstates, rs.key)
}
