package omx

import (
	"omxsim/internal/core"
	"omxsim/internal/policy"
	"omxsim/internal/sim"
)

// Config selects the pinning model and protocol parameters of an endpoint.
// The four throughput curves of the paper's Figures 6 and 7 are spanned by
// (Policy, CacheEnabled):
//
//	Figure 6 "Pin once per Communication": PinEachComm, cache off
//	Figure 6 "Permanent Pinning":          Permanent,   cache on
//	Figure 7 "Regular Pinning":            PinEachComm, cache off
//	Figure 7 "Overlapped Pinning":         Overlapped,  cache off
//	Figure 7 "Pinning Cache":              OnDemand,    cache on
//	Figure 7 "Overlapped Pinning Cache":   Overlapped,  cache on
type Config struct {
	// Policy selects a built-in pinning strategy by enum; it resolves to
	// a policy backend by name. Ignored when Backend is set.
	Policy core.PinPolicy
	// Backend selects the pinning strategy directly — any backend
	// registered with internal/policy, including out-of-tree ones. When
	// nil, Policy resolves it.
	Backend policy.Policy
	// CacheEnabled turns on the user-space region cache (paper §3.2).
	// Backends whose RequiresCache is true (pin-ahead) force it on.
	CacheEnabled bool
	// CacheCapacity bounds cached declarations (0 = 64).
	CacheCapacity int
	// CacheByteCapacity bounds the total bytes covered by cached
	// declarations (0 = unlimited). Under pressure the cache undeclares
	// idle entries per CacheEviction until it fits.
	CacheByteCapacity int
	// CacheEviction names the cache eviction policy: "lru" (default) or
	// "size" (largest idle entry first). See core.EvictorNames.
	CacheEviction string
	// CacheDropOnCOW drops cached declarations on mapping-preserving
	// invalidations (COW, swap, migrate, mprotect) too, not just unmap —
	// the conservative NP-RDMA-style staleness policy. Default off: the
	// driver repins through an intact mapping transparently.
	CacheDropOnCOW bool
	// UseIOAT offloads receive copies of large-message data to the node's
	// I/OAT DMA engine (paper §2.2).
	UseIOAT bool
	// EagerThreshold is the largest message sent eagerly; bigger ones use
	// rendezvous. The MXoE spec fixes 32 KiB (paper §2.2).
	EagerThreshold int
	// PullBlockSize is the granularity of receiver pull requests.
	PullBlockSize int
	// PullWindow is how many pull blocks may be outstanding.
	PullWindow int
	// ReRequestDelay is the pull-block requeue timeout: a requested block
	// with missing fragments and no arrivals at all for this long is
	// re-requested. It sits between service jitter (hundreds of µs under
	// load) and the coarse RetransmitTimeout.
	ReRequestDelay sim.Duration
	// GapReReqDelay rate-limits the gap-driven optimistic re-request — the
	// "requested again optimistically, instead of waiting for the
	// retransmission timeout (1s)" of paper footnote 4: when fragments with
	// higher offsets arrive while an older block still has holes, the hole
	// is re-requested at most this often.
	GapReReqDelay sim.Duration
	// CrossGapDelay is the evidence threshold for cross-message re-request:
	// a stalled pull is re-requested when other traffic from the same node
	// flows but this message saw nothing for this long. It must exceed the
	// receive-copy backlog jitter (several hundred µs at full window) or it
	// false-fires and snowballs duplicate traffic.
	CrossGapDelay sim.Duration
	// RetransmitTimeout is the coarse fallback for lost control messages
	// (rndv, eager, notify). The paper quotes 1 s; experiments here default
	// lower to keep simulated runs short while preserving the two-level
	// (fast optimistic / slow fallback) structure.
	RetransmitTimeout sim.Duration
	// PeerDeadTimeout bounds how long a request keeps retrying against a
	// silent peer before aborting with ErrPeerDead. Retry timers back off
	// exponentially once no progress is seen, and a request whose peer has
	// been quiet this long is declared dead. Defaults to
	// 16 × RetransmitTimeout; it must comfortably exceed the retry cadence
	// so lossy-but-alive links recover rather than abort.
	PeerDeadTimeout sim.Duration
	// PinnedPageLimit caps driver-pinned pages per endpoint (0 = unlimited).
	PinnedPageLimit int
	// PinChunkPages is the pin work granularity on the core (0 = driver
	// default of 32 pages). Bottom halves interleave between chunks.
	PinChunkPages int
	// AdaptiveOverlap enables the per-request policy selection the paper's
	// §5 proposes: "blocking operations benefit more from overlapped
	// pinning while overlap-aware applications may prefer a simple model
	// with lower overhead". With it set (and Policy == Overlapped),
	// blocking requests overlap their pinning with the transfer while
	// non-blocking requests pin synchronously before initiating.
	AdaptiveOverlap bool
	// SyncPrefixPages delays the initiating message (rendezvous on the
	// sender, the first pull requests on the receiver) until this many
	// pages of the region are pinned, under the Overlapped policy — the
	// mitigation the paper evaluates in §4.3 ("pinning a few pages
	// synchronously anyway before sending the initiating message to reduce
	// the chance of getting some overlap-misses"). One pull block (8 pages)
	// suffices: because pin work executes in submission order, the prefix
	// wait also serializes a message's rendezvous behind earlier pins, so
	// pull requests never race a pin that has not effectively started.
	// Set negative to disable (pure drop model).
	SyncPrefixPages int
	// SyscallCost is the user/kernel crossing charged per Isend/Irecv.
	SyscallCost sim.Duration
	// BHFragCost is the bottom-half protocol cost per received frame,
	// excluding data copies.
	BHFragCost sim.Duration
}

// DefaultConfig returns the standard Open-MX configuration with the given
// pinning policy and cache setting.
func DefaultConfig(policy core.PinPolicy, cacheEnabled bool) Config {
	return Config{
		Policy:            policy,
		CacheEnabled:      cacheEnabled,
		EagerThreshold:    32 * 1024,
		PullBlockSize:     32 * 1024,
		PullWindow:        8,
		ReRequestDelay:    2 * sim.Millisecond,
		GapReReqDelay:     100 * sim.Microsecond,
		CrossGapDelay:     sim.Millisecond,
		RetransmitTimeout: 20 * sim.Millisecond,
		SyncPrefixPages:   8, // one pull block (32 KiB)
		SyscallCost:       300 * sim.Nanosecond,
		BHFragCost:        250 * sim.Nanosecond,
	}
}

// PolicyLabel names the effective pinning strategy for reports and
// -policy filters: the explicit backend's name when set, else the enum's.
func (c Config) PolicyLabel() string {
	if c.Backend != nil {
		return c.Backend.Name()
	}
	return c.Policy.String()
}

// withDefaults fills zero fields and resolves the policy backend.
func (c Config) withDefaults() Config {
	if c.Backend == nil {
		c.Backend = c.Policy.Backend()
	}
	if c.Backend.RequiresCache() {
		c.CacheEnabled = true
	}
	if c.CacheEviction == "" {
		c.CacheEviction = "lru"
	}
	d := DefaultConfig(c.Policy, c.CacheEnabled)
	if c.EagerThreshold == 0 {
		c.EagerThreshold = d.EagerThreshold
	}
	if c.PullBlockSize == 0 {
		c.PullBlockSize = d.PullBlockSize
	}
	if c.PullWindow == 0 {
		c.PullWindow = d.PullWindow
	}
	if c.ReRequestDelay == 0 {
		c.ReRequestDelay = d.ReRequestDelay
	}
	if c.GapReReqDelay == 0 {
		c.GapReReqDelay = d.GapReReqDelay
	}
	if c.CrossGapDelay == 0 {
		c.CrossGapDelay = d.CrossGapDelay
	}
	if c.RetransmitTimeout == 0 {
		c.RetransmitTimeout = d.RetransmitTimeout
	}
	if c.PeerDeadTimeout == 0 {
		// Scale from the effective retransmit timeout so short-timeout
		// test configurations keep the two bounds proportioned.
		c.PeerDeadTimeout = 16 * c.RetransmitTimeout
	}
	if c.SyncPrefixPages == 0 {
		c.SyncPrefixPages = d.SyncPrefixPages
	}
	if c.SyncPrefixPages < 0 {
		c.SyncPrefixPages = 0
	}
	if c.SyscallCost == 0 {
		c.SyscallCost = d.SyscallCost
	}
	if c.BHFragCost == 0 {
		c.BHFragCost = d.BHFragCost
	}
	return c
}
