package omx

import (
	"testing"

	"omxsim/internal/core"
	"omxsim/internal/ethernet"
	"omxsim/internal/sim"
)

// TestPinnedPageLimitEndToEnd drives transfers over many distinct buffers
// under a tight driver pinned-page limit: the kernel LRU must keep total
// pinned pages bounded while every transfer still completes and verifies.
func TestPinnedPageLimitEndToEnd(t *testing.T) {
	cfg := DefaultConfig(core.OnDemand, true)
	cfg.PinnedPageLimit = 300 // ~1.2 MiB
	p := newPair(t, cfg)
	const n = 512 * 1024 // 128 pages per buffer
	const rounds = 5
	var peak int
	sample := func() {
		if got := p.b.Manager().PinnedPages(); got > peak {
			peak = got
		}
	}
	var tick func()
	tick = func() {
		sample()
		p.eng.After(50*sim.Microsecond, tick)
	}
	p.eng.After(0, tick)

	p.eng.Go("sender", func(pr *sim.Proc) {
		for i := 0; i < rounds; i++ {
			buf, _ := p.a.Malloc(n)
			fill(t, p.a, buf, n, byte(i))
			if err := p.a.Wait(pr, p.a.Isend(buf, n, uint64(i), p.b.Addr())); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			// Keep the buffer (no Free): distinct buffers accumulate in the
			// cache and exceed the pin limit.
		}
	})
	p.eng.Go("receiver", func(pr *sim.Proc) {
		for i := 0; i < rounds; i++ {
			buf, _ := p.b.Malloc(n)
			if err := p.b.Wait(pr, p.b.Irecv(buf, n, uint64(i), ^uint64(0))); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
		}
	})
	p.eng.RunUntil(2 * sim.Second)
	if p.b.Manager().Stats().LRUUnpins == 0 {
		t.Fatal("pinned-page limit never forced an LRU unpin")
	}
	// Peak can exceed the limit only by in-use regions (at most 2 here).
	if peak > 300+2*128 {
		t.Fatalf("peak pinned pages %d far beyond limit", peak)
	}
}

// TestCloseEndpointMidTraffic closes the receiving endpoint while frames
// are in flight: the sender's request must abort via its retransmit limit
// rather than hang, and late frames for the dead endpoint are dropped.
func TestCloseEndpointMidTraffic(t *testing.T) {
	cfg := DefaultConfig(core.OnDemand, true)
	cfg.RetransmitTimeout = 200 * sim.Microsecond
	p := newPair(t, cfg)
	const n = 8 << 20
	sbuf, _ := p.a.Malloc(n)
	fill(t, p.a, sbuf, n, 1)
	var sendErr error
	sendDone := false
	p.eng.Go("s", func(pr *sim.Proc) {
		req := p.a.Isend(sbuf, n, 1, p.b.Addr())
		sendErr = p.a.Wait(pr, req)
		sendDone = true
	})
	p.eng.Go("r", func(pr *sim.Proc) {
		rbuf, _ := p.b.Malloc(n)
		p.b.Irecv(rbuf, n, 1, ^uint64(0))
		pr.Sleep(2 * sim.Millisecond) // transfer mid-flight
		p.b.Close()
	})
	p.eng.RunUntil(5 * sim.Second)
	if !sendDone {
		t.Fatal("sender hung after peer endpoint closed")
	}
	if sendErr == nil {
		t.Fatal("send succeeded despite the receiver dying mid-transfer")
	}
	if p.a.Manager().PinnedPages() != 0 && p.a.Manager().NumRegions() == 0 {
		t.Fatal("sender leaked pins")
	}
}

// TestMultipleEndpointsPerNode runs independent endpoint pairs sharing
// NICs and RX cores: traffic must not cross-match between endpoints.
func TestMultipleEndpointsPerNode(t *testing.T) {
	p := newPair(t, DefaultConfig(core.OnDemand, true))
	a2, err := p.n0.OpenEndpoint(1, 2, DefaultConfig(core.OnDemand, true))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p.n1.OpenEndpoint(1, 2, DefaultConfig(core.OnDemand, true))
	if err != nil {
		t.Fatal(err)
	}
	const n = 256 * 1024
	s1, _ := p.a.Malloc(n)
	s2, _ := a2.Malloc(n)
	r1, _ := p.b.Malloc(n)
	r2, _ := b2.Malloc(n)
	w1 := fill(t, p.a, s1, n, 1)
	d2 := make([]byte, n)
	for i := range d2 {
		d2[i] = byte(i)*7 + 99
	}
	if err := a2.AS.Write(s2, d2); err != nil {
		t.Fatal(err)
	}
	// Same match value on both endpoint pairs: must not cross over.
	p.eng.Go("pair1", func(pr *sim.Proc) {
		rr := p.b.Irecv(r1, n, 5, ^uint64(0))
		sr := p.a.Isend(s1, n, 5, p.b.Addr())
		p.a.Wait(pr, sr)
		p.b.Wait(pr, rr)
	})
	p.eng.Go("pair2", func(pr *sim.Proc) {
		rr := b2.Irecv(r2, n, 5, ^uint64(0))
		sr := a2.Isend(s2, n, 5, b2.Addr())
		a2.Wait(pr, sr)
		b2.Wait(pr, rr)
	})
	p.eng.Run()
	g1 := make([]byte, n)
	p.b.AS.Read(r1, g1)
	g2 := make([]byte, n)
	b2.AS.Read(r2, g2)
	for i := range g1 {
		if g1[i] != w1[i] {
			t.Fatal("pair 1 data corrupted (cross-endpoint leak?)")
		}
		if g2[i] != d2[i] {
			t.Fatal("pair 2 data corrupted (cross-endpoint leak?)")
		}
	}
}

// TestUnreachablePeerAborts sends into a black hole (all frames dropped):
// the request must abort after the retransmit limit, not hang.
func TestUnreachablePeerAborts(t *testing.T) {
	cfg := DefaultConfig(core.OnDemand, true)
	cfg.RetransmitTimeout = 100 * sim.Microsecond
	p := newPair(t, cfg)
	p.fabric.DropFilter = func(fr *ethernet.Frame) bool { return true }
	var errEager, errLarge error
	done := 0
	p.eng.Go("s", func(pr *sim.Proc) {
		sbuf, _ := p.a.Malloc(1 << 20)
		small, _ := p.a.Malloc(1024)
		errEager = p.a.Wait(pr, p.a.Isend(small, 1024, 1, p.b.Addr()))
		done++
		errLarge = p.a.Wait(pr, p.a.Isend(sbuf, 1<<20, 2, p.b.Addr()))
		done++
	})
	p.eng.RunUntil(10 * sim.Second)
	if done != 2 {
		t.Fatal("sends into a black hole hung")
	}
	if errEager == nil || errLarge == nil {
		t.Fatalf("errors = %v / %v, want aborts", errEager, errLarge)
	}
	if p.n0.Stats().Retransmits == 0 {
		t.Fatal("no retransmit attempts recorded")
	}
}
