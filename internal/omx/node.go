package omx

import (
	"fmt"

	"omxsim/internal/cpu"
	"omxsim/internal/ethernet"
	"omxsim/internal/ioat"
	"omxsim/internal/sim"
	"omxsim/internal/trace"
	"omxsim/internal/vm"
)

// NodeStats aggregates driver-level counters, including the overlap-miss
// counters the paper added for §4.3.
type NodeStats struct {
	FramesRx            uint64
	FramesTx            uint64
	EagerFragsRx        uint64
	PullReqsRx          uint64
	PullRepliesRx       uint64
	OverlapMissSender   uint64 // pull request dropped: send region not pinned far enough
	OverlapMissReceiver uint64 // pull reply dropped: recv region not pinned far enough
	ReRequests          uint64 // pull re-requests issued (all causes)
	OptimisticReReqs    uint64 // gap-driven re-requests (higher offsets seen)
	Retransmits         uint64 // control-message timeouts (rndv/eager/notify)
	DupFrags            uint64 // duplicate data fragments discarded
	ReqAborts           uint64 // requests completed with an error
	Crashes             uint64 // node crash events
	Restarts            uint64 // node restart events
}

// Node is one host: cores, physical memory, a NIC, an I/OAT engine, and the
// Open-MX driver demultiplexing received frames to endpoints.
type Node struct {
	ID      int
	Eng     *sim.Engine
	Machine *cpu.Machine
	Phys    *vm.PhysMem
	NIC     *ethernet.NIC
	IOAT    *ioat.Engine

	// rxCore runs interrupt bottom halves (all RX protocol processing) for
	// rx queue 0; multi-queue nodes spread further queues across cores
	// starting from rxCore's index (ConfigureQueues).
	rxCore *cpu.Core
	// rxCoreIdx remembers the base interrupt core index for the per-queue
	// core mapping; rxQueues is the NIC queue count (>= 1).
	rxCoreIdx int
	rxQueues  int
	endpoints map[int]*Endpoint
	stats     NodeStats

	// kswapd is the background reclaimer started by ConfigureMemory
	// (nil while physical memory is unbounded).
	kswapd *sim.Recurring

	// intrDelay is the latency between a frame landing in the NIC ring and
	// its bottom half being runnable (IRQ signalling + NAPI scheduling).
	// It is pure pipeline latency — it does not consume core time — and is
	// the dominant term in Open-MX's 10-20us rendezvous round trip
	// (paper §3.3 footnote 2). It is applied by the NIC at frame delivery
	// (one event per frame instead of two); use SetIntrDelay to change it.
	intrDelay sim.Duration

	// inflight counts requests issued but not completed; it must drain to
	// zero by the end of a run (the chaos scenarios assert it — a crash
	// may abort requests but must never strand one).
	inflight int
	// crashed marks a node between Crash and Restart.
	crashed bool
	// onAbort, when set, observes every request completing with an error
	// (the chaos stress report counts aborts per interval through it).
	onAbort func(kind ReqKind, err error)
}

// InFlightRequests reports requests issued but not yet completed.
func (n *Node) InFlightRequests() int { return n.inflight }

// Crashed reports whether the node is between Crash and Restart.
func (n *Node) Crashed() bool { return n.crashed }

// SetAbortHook installs an observer for request aborts (err != nil
// completions).
func (n *Node) SetAbortHook(fn func(kind ReqKind, err error)) { n.onAbort = fn }

// SetIntrDelay changes the IRQ/NAPI pipeline latency for this node's NIC.
func (n *Node) SetIntrDelay(d sim.Duration) {
	n.intrDelay = d
	n.NIC.SetRxDelay(d)
}

// IntrDelay returns the node's IRQ/NAPI pipeline latency.
func (n *Node) IntrDelay() sim.Duration { return n.intrDelay }

// DefaultIntrDelay places the simulated rendezvous round trip in the
// paper's 10-20us window.
const DefaultIntrDelay = 5 * sim.Microsecond

// NewNode creates a host on the fabric. rxCoreIdx selects the core that
// services NIC interrupts (the paper's §4.3 overload scenario binds the
// application to this same core).
func NewNode(eng *sim.Engine, fabric *ethernet.Fabric, spec cpu.Spec, id, rxCoreIdx int) *Node {
	n := &Node{
		ID:        id,
		Eng:       eng,
		Machine:   cpu.NewMachine(eng, spec),
		Phys:      vm.NewPhysMem(0),
		NIC:       fabric.AddNICOn(eng, id, 0),
		IOAT:      ioat.New(eng, 0),
		endpoints: make(map[int]*Endpoint),
	}
	n.rxCore = n.Machine.Core(rxCoreIdx)
	n.rxCoreIdx = rxCoreIdx
	n.rxQueues = 1
	n.NIC.SetHandler(n.onFrame)
	n.SetIntrDelay(DefaultIntrDelay)
	return n
}

// ConfigureQueues resizes the node's NIC to q tx/rx queues and spreads the
// rx queues' bottom-half processing across cores: queue i's interrupts
// land on core (rxCoreIdx + i) mod cores, like an MSI-X vector per queue.
// Must be called before any traffic flows.
func (n *Node) ConfigureQueues(q int) {
	if q < 1 {
		q = 1
	}
	n.rxQueues = q
	n.NIC.SetQueues(q)
}

// RxCore returns the core servicing NIC bottom halves (queue 0).
func (n *Node) RxCore() *cpu.Core { return n.rxCore }

// RxCoreFor returns the core servicing rx queue q's bottom halves.
func (n *Node) RxCoreFor(q int) *cpu.Core {
	if q <= 0 || n.rxQueues == 1 {
		return n.rxCore
	}
	return n.Machine.Core((n.rxCoreIdx + q) % n.Machine.NumCores())
}

// RxQueues returns the node's NIC queue count.
func (n *Node) RxQueues() int { return n.rxQueues }

// Stats returns a snapshot of the node's driver counters.
func (n *Node) Stats() NodeStats { return n.stats }

// Endpoint returns the open endpoint with the given id, if any.
func (n *Node) Endpoint(id int) (*Endpoint, bool) {
	ep, ok := n.endpoints[id]
	return ep, ok
}

// Crash takes the node dark, as if it lost power: the NIC stops
// transmitting and discards arrivals, every in-flight request completes
// with a typed ErrPeerDead-wrapped error, and every driver-pinned page is
// released (pins do not survive a crash). Endpoint registrations and
// per-peer sequence state survive — the model's stand-in for stable
// identity across an instance restart — so peers re-establish after
// Restart. Must run as an event on the node's own engine.
func (n *Node) Crash() {
	if n.crashed {
		return
	}
	n.crashed = true
	n.stats.Crashes++
	n.NIC.SetDown(true)
	err := fmt.Errorf("%w: node %d crashed", ErrPeerDead, n.ID)
	procs := make(map[*Process]struct{})
	for _, ep := range n.endpoints {
		ep.emit(trace.NodeCrash, 0, n.ID, 0)
		ep.crashAbort(err)
		procs[ep.proc] = struct{}{}
	}
	for p := range procs {
		p.mgr.ReleaseAll()
	}
}

// Restart brings a crashed node back: the NIC re-registers with the
// fabric and traffic flows again. Regions repin on demand as transfers
// acquire them.
func (n *Node) Restart() {
	if !n.crashed {
		return
	}
	n.crashed = false
	n.stats.Restarts++
	n.NIC.SetDown(false)
	for _, ep := range n.endpoints {
		ep.emit(trace.NodeRestart, 0, n.ID, 0)
	}
}

// ResizeMemory changes the node's physical-frame budget at runtime (a
// chaos budget-shrink event) and re-derives the default kswapd
// watermarks from the new capacity. No-op on nodes with unbounded
// memory; reports whether the resize applied.
func (n *Node) ResizeMemory(frames int) bool {
	if n.Phys.Capacity() <= 0 || frames <= 0 {
		return false
	}
	n.Phys.Resize(frames)
	n.Phys.SetWatermarks(0, 0)
	return true
}

// maxData is the data payload available per frame after the MXoE header.
func (n *Node) maxData() int { return n.NIC.MTU() - headerBytes }

// send transmits one protocol message, sizing the frame from its data and
// steering it onto the flow of its (src endpoint, dst endpoint) pair so
// multi-queue NICs keep each endpoint conversation on one lane.
func (n *Node) send(dst int, dataLen int, payload wirePayload) {
	n.stats.FramesTx++
	src, dstAddr := payload.addrs()
	n.NIC.Send(&ethernet.Frame{
		Dst:     dst,
		Size:    headerBytes + dataLen,
		Payload: payload,
		Flow:    FlowOf(src, dstAddr),
	})
}

// onFrame runs in interrupt context: it only schedules bottom-half work on
// the frame's rx-queue core. All protocol processing happens in the BH at
// BottomHalf priority — which is what starves same-core application
// pinning under flood (paper §4.3).
func (n *Node) onFrame(fr *ethernet.Frame) {
	n.stats.FramesRx++
	p, ok := fr.Payload.(wirePayload)
	if !ok {
		panic(fmt.Sprintf("omx: unknown payload %T", fr.Payload))
	}
	_, dst := p.addrs()
	ep, epOK := n.endpoints[dst.EP]
	if !epOK {
		return // stale frame for a closed endpoint: dropped
	}
	// The IRQ/NAPI pipeline latency was already applied by the NIC's
	// delivery event (SetIntrDelay wires it into the fabric), so the bottom
	// half can be queued directly.
	ep.dispatchBH(fr.Payload, fr.Queue)
}
