package report

import (
	"fmt"
	"math/bits"
)

// Histogram bucket layout: values below 2*histSubCount land in unit-width
// buckets (exact); above that each power-of-two octave is split into
// histSubCount sub-buckets, so the bucket width is value/histSubCount and
// every reported quantile overstates the true value by at most 1/histSubCount
// (3.125%). The layout is a pure function of the value — no auto-ranging,
// no recorded-extreme state — so histograms recorded on different shards
// (or split arbitrarily across recorders) merge by adding counts, exactly:
// Merge(a, b).Quantile(q) == whole.Quantile(q) for any split of the same
// stream. The scenario determinism gates rely on this.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
)

// Hist is an HDR-style log-bucketed histogram of non-negative int64
// samples (latencies in simulated nanoseconds). The zero value is ready to
// use. It is not safe for concurrent use; record into one Hist per shard
// or rank and Merge afterwards.
type Hist struct {
	counts []uint64
	n      uint64
	sum    int64
	max    int64
	min    int64
}

// bucketIndex maps a value to its bucket. Indices are contiguous: values
// in [0, 2*histSubCount) map to themselves; a value with b significant
// bits (b > histSubBits+1) keeps its top histSubBits+1 bits as the
// sub-bucket and the remaining b-histSubBits-1 bits select the octave.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 2*histSubCount {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - histSubBits - 1
	return k<<histSubBits + int(v>>uint(k))
}

// bucketUpper returns the largest value the bucket holds — what quantiles
// report, so a reported percentile never understates the true one.
func bucketUpper(i int) int64 {
	if i < 2*histSubCount {
		return int64(i)
	}
	k := i>>histSubBits - 1
	m := int64(i - k<<histSubBits)
	return (m+1)<<uint(k) - 1
}

// Record adds one sample. Negative samples clamp to zero (simulated
// latencies are never negative; the clamp keeps a bad caller visible in
// bucket zero instead of panicking mid-run).
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Merge folds o into h. Because the bucket layout is fixed, merging is
// exact: the result is indistinguishable from having recorded both streams
// into one histogram.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.n == 0 {
		return
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.n }

// Max returns the largest recorded sample (exact, not a bucket bound).
func (h *Hist) Max() int64 { return h.max }

// Min returns the smallest recorded sample (0 when empty).
func (h *Hist) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Mean returns the exact arithmetic mean of the recorded samples.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the upper bound of the bucket holding the sample of
// rank ceil(q*n) (q in (0, 1]; q=0.5 is the median, q=0.999 the p999).
// The result is within 1/histSubCount of the true order statistic, always
// from above, and identical however the stream was sharded before
// merging. Returns 0 on an empty histogram.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if float64(rank) < q*float64(h.n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return h.max // unreachable: counts sum to n
}

// QuantileUS returns Quantile(q) converted from nanoseconds to
// microseconds. int64 nanosecond latencies are far below 2^53, so the
// division is exact in float64 and byte-stable across platforms.
func (h *Hist) QuantileUS(q float64) float64 { return float64(h.Quantile(q)) / 1000 }

// MaxUS returns the exact maximum in microseconds.
func (h *Hist) MaxUS() float64 { return float64(h.max) / 1000 }

// String summarises the distribution for notes and debugging.
func (h *Hist) String() string {
	if h.n == 0 {
		return "hist{empty}"
	}
	return fmt.Sprintf("hist{n=%d p50=%d p99=%d p999=%d max=%d}",
		h.n, h.Quantile(0.5), h.Quantile(0.99), h.Quantile(0.999), h.max)
}
