package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Result {
	r := &Result{Scenario: "pingpong", Description: "demo", Seed: 7, Passed: true}
	r.Param("sizes", "3")
	t := Table{Title: "throughput", Columns: []string{"size", "regular", "overlapped"}}
	t.AddRow(Bytes(1<<20), F(812.5, 1), F(934.0, 1))
	t.AddRow(Bytes(16<<20), F(901.2, 1), F(1100.4, 1))
	r.AddTable(t)
	r.Cases = append(r.Cases, Case{
		Label: "regular", Size: 1 << 20, Policy: "pin-each-comm",
		Metrics: map[string]float64{"mbps": 812.5},
	})
	r.Assertions = append(r.Assertions, Assertion{Name: "mbps > 0", Passed: true})
	return r
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if back.Scenario != "pingpong" || back.Seed != 7 || !back.Passed {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if len(back.Tables) != 1 || len(back.Tables[0].Rows) != 2 {
		t.Fatalf("tables lost: %+v", back.Tables)
	}
	if back.Cases[0].Metrics["mbps"] != 812.5 {
		t.Fatalf("case metrics lost: %+v", back.Cases)
	}
}

func TestWriteJSONMultipleIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sample(), sample()); err != nil {
		t.Fatal(err)
	}
	var back []Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("multi-result output is not a JSON array: %v", err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d results, want 2", len(back))
	}
}

func TestWriteTextAlignment(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== pingpong (seed 7) ==", "params: sizes=3", "throughput", "[PASS] mbps > 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Every numeric column must be right-aligned: the header cell and the
	// data cells of column 2 end at the same rune offset.
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "regular") && !strings.Contains(l, "label") {
			lines = append(lines, l)
		}
	}
	if len(lines) == 0 {
		t.Fatalf("no table lines found:\n%s", out)
	}
	hdr := strings.Index(lines[0], "regular") + len("regular")
	data := strings.Index(out, "812.5") + len("812.5")
	dataLine := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "812.5") {
			dataLine = l
		}
	}
	if dataLine == "" || strings.Index(dataLine, "812.5")+len("812.5") != hdr {
		t.Fatalf("column not right-aligned (hdr end %d, data end %d):\n%s", hdr, data, out)
	}
}

func TestFailedAndFormatters(t *testing.T) {
	r := sample()
	if r.Failed() {
		t.Fatal("all-pass result reported Failed")
	}
	r.Assertions = append(r.Assertions, Assertion{Name: "x", Passed: false, Detail: "boom"})
	if !r.Failed() {
		t.Fatal("failing assertion not reported")
	}
	if Bytes(4096) != "4kB" || Bytes(16<<20) != "16MB" || Bytes(100) != "100B" {
		t.Fatalf("Bytes formatting: %s %s %s", Bytes(4096), Bytes(16<<20), Bytes(100))
	}
	if Pct(12.34) != "12.3%" || D(42) != "42" || E(0.0001) != "1.00e-04" {
		t.Fatalf("formatters: %s %s %s", Pct(12.34), D(42), E(0.0001))
	}
}
