package report

import (
	"math/rand"
	"sort"
	"testing"
)

// oracleQuantile computes the exact order statistic the histogram
// approximates: the sample of rank ceil(q*n) in the sorted stream.
func oracleQuantile(sorted []int64, q float64) int64 {
	n := len(sorted)
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// streams generates random latency streams with the shapes the workload
// actually produces: uniform, exponential-ish heavy tails, bimodal
// (fast-path plus queueing spikes), and tiny streams around the bucket
// boundaries.
func streams(rng *rand.Rand) [][]int64 {
	var out [][]int64
	// Uniform over several magnitudes.
	for _, span := range []int64{50, 1 << 10, 1 << 20, 1 << 36} {
		s := make([]int64, 500+rng.Intn(1500))
		for i := range s {
			s[i] = rng.Int63n(span)
		}
		out = append(out, s)
	}
	// Heavy tail: most samples small, a few huge.
	ht := make([]int64, 2000)
	for i := range ht {
		ht[i] = int64(rng.ExpFloat64() * 50_000)
	}
	out = append(out, ht)
	// Bimodal: 95% fast path, 5% hundredfold spikes.
	bi := make([]int64, 3000)
	for i := range bi {
		bi[i] = 2_000 + rng.Int63n(500)
		if rng.Float64() < 0.05 {
			bi[i] *= 100
		}
	}
	out = append(out, bi)
	// Boundary hugging: values around the unit/log bucket transition.
	bd := make([]int64, 300)
	for i := range bd {
		bd[i] = int64(rng.Intn(4 * histSubCount))
	}
	out = append(out, bd)
	// Singleton and pair.
	out = append(out, []int64{12345}, []int64{7, 7_000_000})
	return out
}

var quantiles = []float64{0.5, 0.9, 0.99, 0.999, 1}

// TestHistQuantileVsOracle is the histogram property test: for random
// latency streams, every reported percentile must be the upper bound of
// the bucket holding the oracle's order statistic — never below the true
// value, and above it by at most the bucket's relative-error bound
// 1/histSubCount.
func TestHistQuantileVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for si, s := range streams(rng) {
		var h Hist
		for _, v := range s {
			h.Record(v)
		}
		sorted := append([]int64(nil), s...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if h.Count() != uint64(len(s)) {
			t.Fatalf("stream %d: count %d != %d", si, h.Count(), len(s))
		}
		if h.Max() != sorted[len(sorted)-1] || h.Min() != sorted[0] {
			t.Fatalf("stream %d: min/max %d/%d != %d/%d", si, h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
		}
		for _, q := range quantiles {
			got := h.Quantile(q)
			want := oracleQuantile(sorted, q)
			// The histogram picks exactly the bucket the oracle value
			// falls in, so the report is that bucket's upper bound.
			if exact := bucketUpper(bucketIndex(want)); got != exact {
				t.Fatalf("stream %d q=%g: got %d, want bucket upper %d of oracle %d", si, q, got, exact, want)
			}
			if got < want {
				t.Fatalf("stream %d q=%g: reported %d understates oracle %d", si, q, got, want)
			}
			// Relative error bound: bucket width is at most want/histSubCount
			// (and 0 in the exact unit-bucket range).
			slack := want / histSubCount
			if slack < 1 {
				slack = 1
			}
			if got > want+slack {
				t.Fatalf("stream %d q=%g: reported %d exceeds oracle %d by more than %d", si, q, got, want, slack)
			}
		}
	}
}

// TestHistMergeExact asserts the merge identity the sharded runner relies
// on: splitting a stream into arbitrary sub-streams, recording each into
// its own histogram, and merging must be indistinguishable — bucket
// counts, count, sum, min, max, and every quantile — from recording the
// whole stream into one histogram.
func TestHistMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for si, s := range streams(rng) {
		var whole Hist
		for _, v := range s {
			whole.Record(v)
		}
		for trial := 0; trial < 4; trial++ {
			parts := 1 + rng.Intn(6)
			shards := make([]Hist, parts)
			for _, v := range s {
				shards[rng.Intn(parts)].Record(v)
			}
			var merged Hist
			for i := range shards {
				merged.Merge(&shards[i])
			}
			if merged.Count() != whole.Count() || merged.sum != whole.sum ||
				merged.Min() != whole.Min() || merged.Max() != whole.Max() {
				t.Fatalf("stream %d trial %d: merged summary diverges: %v vs %v", si, trial, merged.String(), whole.String())
			}
			for i := range merged.counts {
				var w uint64
				if i < len(whole.counts) {
					w = whole.counts[i]
				}
				if merged.counts[i] != w {
					t.Fatalf("stream %d trial %d: bucket %d: merged %d != whole %d", si, trial, i, merged.counts[i], w)
				}
			}
			for _, q := range quantiles {
				if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
					t.Fatalf("stream %d trial %d q=%g: merged %d != whole %d", si, trial, q, m, w)
				}
			}
		}
	}
}

// TestHistEmptyAndZero pins the edge behaviour: an empty histogram
// reports zeros, and zero/negative samples land in bucket 0.
func TestHistEmptyAndZero(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not all-zero: %s", h.String())
	}
	h.Record(0)
	h.Record(-5)
	if h.Count() != 2 || h.Quantile(1) != 0 || h.Max() != 0 {
		t.Fatalf("zero/negative samples mishandled: %s", h.String())
	}
	var o Hist
	o.Merge(&h)
	if o.Count() != 2 || o.Min() != 0 {
		t.Fatalf("merge into empty mishandled: %s", o.String())
	}
}
