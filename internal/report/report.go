// Package report renders scenario results as structured data: one Result
// per scenario run, serialisable as JSON for machines or as aligned text
// tables for humans. It replaces the per-binary printf blocks the old cmd/
// tools carried around.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is one rectangular block of a result: a title, a header row, and
// string cells (callers format numbers; Cell helpers cover the common
// cases).
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// AddRow appends one row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells[:len(t.Columns)])
}

// Assertion is the outcome of one scenario assertion.
type Assertion struct {
	Name   string `json:"name"`
	Passed bool   `json:"passed"`
	Detail string `json:"detail,omitempty"`
}

// Case is the flattened record of one (policy, size) cell of a scenario's
// run matrix, with every metric the runner and workload recorded.
type Case struct {
	Label   string             `json:"label"`
	Size    int                `json:"size,omitempty"`
	Policy  string             `json:"policy,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Notes   []string           `json:"notes,omitempty"`
	// Chaos is the stress-report time series for chaos-profile runs
	// (omitted entirely for ordinary scenarios, keeping their JSON
	// byte-identical to pre-chaos output).
	Chaos *ChaosSeries `json:"chaos,omitempty"`
}

// ChaosInterval is one bucket of a chaos stress report: cluster-wide
// counts of faults injected, recoveries completed, requests aborted, and
// pin/unpin churn within one interval of simulated time.
type ChaosInterval struct {
	Faults     int `json:"faults"`
	Recoveries int `json:"recoveries"`
	Aborts     int `json:"aborts"`
	PinPages   int `json:"pin_pages"`
	UnpinPages int `json:"unpin_pages"`
}

// ChaosSeries is the per-interval stress time series written alongside a
// chaos scenario's metrics (interval i covers
// [i*interval, (i+1)*interval) of simulated time).
type ChaosSeries struct {
	IntervalUS float64         `json:"interval_us"`
	Intervals  []ChaosInterval `json:"intervals"`
}

// Result is everything one scenario run produced. It deliberately carries
// no wall-clock timestamps: two runs with the same seed must serialise to
// identical bytes (the determinism tests rely on it).
type Result struct {
	Scenario    string            `json:"scenario"`
	Description string            `json:"description,omitempty"`
	Seed        int64             `json:"seed"`
	Params      map[string]string `json:"params,omitempty"`
	Cases       []Case            `json:"cases,omitempty"`
	Tables      []Table           `json:"tables,omitempty"`
	Assertions  []Assertion       `json:"assertions,omitempty"`
	Passed      bool              `json:"passed"`
	Notes       []string          `json:"notes,omitempty"`
}

// Param records a scenario parameter (size schedule, class, flood level).
func (r *Result) Param(key, value string) {
	if r.Params == nil {
		r.Params = make(map[string]string)
	}
	r.Params[key] = value
}

// AddTable appends a rendered table.
func (r *Result) AddTable(t Table) { r.Tables = append(r.Tables, t) }

// Note appends a free-form remark (shown after the tables).
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Failed reports whether any assertion failed.
func (r *Result) Failed() bool {
	for _, a := range r.Assertions {
		if !a.Passed {
			return true
		}
	}
	return false
}

// F formats a float for a table cell with prec decimals.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// E formats a float in scientific notation (miss rates).
func E(v float64) string { return fmt.Sprintf("%.2e", v) }

// D formats an integer cell.
func D(v int64) string { return fmt.Sprintf("%d", v) }

// Pct formats an improvement percentage cell.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// Bytes renders a message size with an adaptive unit (4kB, 16MB).
func Bytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1024 && n%1024 == 0:
		return fmt.Sprintf("%dkB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// WriteJSON emits the results as an indented JSON array (a single object
// when exactly one result is given), suitable for jq-style consumption.
func WriteJSON(w io.Writer, results ...*Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if len(results) == 1 {
		return enc.Encode(results[0])
	}
	return enc.Encode(results)
}

// WriteText renders each result as aligned tables with a header, params,
// assertion outcomes, and notes.
func WriteText(w io.Writer, results ...*Result) error {
	for i, r := range results {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := writeOne(w, r); err != nil {
			return err
		}
	}
	return nil
}

func writeOne(w io.Writer, r *Result) error {
	head := fmt.Sprintf("== %s (seed %d) ==", r.Scenario, r.Seed)
	if _, err := fmt.Fprintln(w, head); err != nil {
		return err
	}
	if r.Description != "" {
		fmt.Fprintln(w, r.Description)
	}
	if len(r.Params) > 0 {
		keys := make([]string, 0, len(r.Params))
		for k := range r.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, k+"="+r.Params[k])
		}
		fmt.Fprintln(w, "params:", strings.Join(parts, " "))
	}
	for _, t := range r.Tables {
		fmt.Fprintln(w)
		if err := writeTable(w, t); err != nil {
			return err
		}
	}
	wroteChaos := false
	for _, c := range r.Cases {
		if c.Chaos == nil {
			continue
		}
		if !wroteChaos {
			fmt.Fprintln(w)
			wroteChaos = true
		}
		var t ChaosInterval
		for _, iv := range c.Chaos.Intervals {
			t.Faults += iv.Faults
			t.Recoveries += iv.Recoveries
			t.Aborts += iv.Aborts
			t.PinPages += iv.PinPages
			t.UnpinPages += iv.UnpinPages
		}
		fmt.Fprintf(w, "chaos %s: %d faults, %d recoveries, %d aborts, pin churn +%d/-%d pages over %d x %.0fus intervals\n",
			c.Label, t.Faults, t.Recoveries, t.Aborts, t.PinPages, t.UnpinPages,
			len(c.Chaos.Intervals), c.Chaos.IntervalUS)
	}
	if len(r.Assertions) > 0 {
		fmt.Fprintln(w)
		for _, a := range r.Assertions {
			mark := "PASS"
			if !a.Passed {
				mark = "FAIL"
			}
			line := fmt.Sprintf("[%s] %s", mark, a.Name)
			if a.Detail != "" {
				line += ": " + a.Detail
			}
			fmt.Fprintln(w, line)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintln(w, "note:", n)
	}
	return nil
}

// writeTable prints a table with every column padded to its widest cell;
// the first column is left-aligned, the rest right-aligned (numbers).
func writeTable(w io.Writer, t Table) error {
	if t.Title != "" {
		if _, err := fmt.Fprintln(w, t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len([]rune(cell))
			if i == 0 {
				b.WriteString(cell + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + cell)
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}
