package chaos

import (
	"strings"
	"testing"

	"omxsim/internal/sim"
)

func TestClassStrings(t *testing.T) {
	cases := []struct {
		c    Class
		want string
	}{
		{NodeCrash, "node-crash"},
		{LinkDegrade, "link-degrade"},
		{Partition, "partition"},
		{BudgetShrink, "budget-shrink"},
		{Class(42), "class(42)"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("Class(%d).String() = %q, want %q", int(tc.c), got, tc.want)
		}
	}
}

func TestArrivalStrings(t *testing.T) {
	cases := []struct {
		a    Arrival
		want string
	}{
		{Poisson, "poisson"},
		{Uniform, "uniform"},
		{Burst, "burst"},
		{Arrival(9), "arrival(9)"},
	}
	for _, tc := range cases {
		if got := tc.a.String(); got != tc.want {
			t.Errorf("Arrival(%d).String() = %q, want %q", int(tc.a), got, tc.want)
		}
	}
}

func TestProfileSummary(t *testing.T) {
	var p *Profile
	if got := p.Summary(); got != "none" {
		t.Errorf("nil profile summary = %q, want \"none\"", got)
	}
	p = &Profile{
		Horizon: 10 * sim.Millisecond,
		Specs: []Spec{
			{Class: NodeCrash, Arrival: Poisson, MeanGap: 2 * sim.Millisecond, Duration: sim.Millisecond},
		},
	}
	sum := p.Summary()
	for _, want := range []string{"node-crash", "poisson"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary %q does not mention %q", sum, want)
		}
	}
}

// TestPlanRespectsNodeFilter checks Spec.Nodes restricts targets.
func TestPlanRespectsNodeFilter(t *testing.T) {
	p := &Profile{
		Horizon: 20 * sim.Millisecond,
		Specs: []Spec{{
			Class:    NodeCrash,
			MeanGap:  sim.Millisecond,
			Duration: sim.Millisecond,
			Nodes:    []int{1, 3},
		}},
	}
	evs := p.Plan(1, 4)
	if len(evs) == 0 {
		t.Fatal("plan is empty")
	}
	for _, ev := range evs {
		if ev.Node != 1 && ev.Node != 3 {
			t.Errorf("event targets node %d, outside the Nodes filter {1, 3}", ev.Node)
		}
	}
}

// TestPlanSeedSensitivity: different seeds must draw different schedules
// (the -chaos-seed knob has to do something).
func TestPlanSeedSensitivity(t *testing.T) {
	p := &Profile{
		Horizon: 20 * sim.Millisecond,
		Specs:   []Spec{{Class: NodeCrash, MeanGap: sim.Millisecond, Duration: sim.Millisecond}},
	}
	a, b := p.Plan(1, 4), p.Plan(2, 4)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical plans")
	}
}

func TestRecorderMerge(t *testing.T) {
	a := NewRecorder(sim.Millisecond)
	b := NewRecorder(sim.Millisecond)
	a.Fault(0)
	a.PinChurn(0, 4, true)
	a.Recovery(sim.Time(1500 * sim.Microsecond))
	b.Abort(sim.Time(1200 * sim.Microsecond))
	b.PinChurn(sim.Time(1200*sim.Microsecond), 4, false)

	series := Merge([]*Recorder{a, b, nil})
	if len(series) != 2 {
		t.Fatalf("merged series has %d buckets, want 2", len(series))
	}
	if series[0].Faults != 1 || series[0].PinPages != 4 {
		t.Errorf("bucket 0 = %+v, want 1 fault and +4 pin pages", series[0])
	}
	if series[1].Recoveries != 1 || series[1].Aborts != 1 || series[1].UnpinPages != 4 {
		t.Errorf("bucket 1 = %+v, want 1 recovery, 1 abort, -4 pages", series[1])
	}
	tot := Totals(series)
	if tot.Faults != 1 || tot.Recoveries != 1 || tot.Aborts != 1 || tot.PinPages != 4 || tot.UnpinPages != 4 {
		t.Errorf("totals = %+v", tot)
	}
}
