package chaos

import "omxsim/internal/sim"

// Bucket holds one interval's chaos-related activity counts.
type Bucket struct {
	Faults     int // fault windows opened
	Recoveries int // fault windows restored
	Aborts     int // requests completed with an error
	PinPages   int // pages pinned (churn)
	UnpinPages int // pages unpinned (churn)
}

func (b *Bucket) add(o Bucket) {
	b.Faults += o.Faults
	b.Recoveries += o.Recoveries
	b.Aborts += o.Aborts
	b.PinPages += o.PinPages
	b.UnpinPages += o.UnpinPages
}

// Recorder buckets one node's chaos activity into fixed simulated-time
// intervals for the stress report. Each node gets its own recorder,
// touched only by events on that node's engine, so no locking is needed
// in sharded runs; the scenario runner merges per-node recorders in node
// order after the run, which keeps the merged series deterministic.
type Recorder struct {
	interval sim.Duration
	buckets  []Bucket
}

// NewRecorder creates a recorder with the given bucket width (<= 0
// selects 1ms).
func NewRecorder(interval sim.Duration) *Recorder {
	if interval <= 0 {
		interval = sim.Millisecond
	}
	return &Recorder{interval: interval}
}

// Interval returns the bucket width.
func (r *Recorder) Interval() sim.Duration { return r.interval }

func (r *Recorder) bucket(t sim.Time) *Bucket {
	i := int(t / sim.Time(r.interval))
	if i < 0 {
		i = 0
	}
	for len(r.buckets) <= i {
		r.buckets = append(r.buckets, Bucket{})
	}
	return &r.buckets[i]
}

// Fault records a fault window opening at t.
func (r *Recorder) Fault(t sim.Time) { r.bucket(t).Faults++ }

// Recovery records a fault window restoring at t.
func (r *Recorder) Recovery(t sim.Time) { r.bucket(t).Recoveries++ }

// Abort records a request completing with an error at t.
func (r *Recorder) Abort(t sim.Time) { r.bucket(t).Aborts++ }

// PinChurn records pages pinned or unpinned at t.
func (r *Recorder) PinChurn(t sim.Time, pages int, pinned bool) {
	if pinned {
		r.bucket(t).PinPages += pages
	} else {
		r.bucket(t).UnpinPages += pages
	}
}

// Buckets returns the recorded series (index i covers
// [i*interval, (i+1)*interval)).
func (r *Recorder) Buckets() []Bucket { return r.buckets }

// Merge produces the cluster-wide series: element-wise sums of the
// per-node recorders, extended to the longest series. Integer sums in
// fixed node order are exact and order-independent, so the merged series
// is identical across shard counts.
func Merge(recs []*Recorder) []Bucket {
	var out []Bucket
	for _, r := range recs {
		if r == nil {
			continue
		}
		for len(out) < len(r.buckets) {
			out = append(out, Bucket{})
		}
		for i, b := range r.buckets {
			out[i].add(b)
		}
	}
	return out
}

// Totals sums a series into one bucket.
func Totals(series []Bucket) Bucket {
	var t Bucket
	for _, b := range series {
		t.add(b)
	}
	return t
}
