// Package chaos turns the scenario layer's one-shot fault injectors into
// a deterministic chaos engine: seeded failure *distributions* (Poisson,
// uniform, or bursty arrival processes per fault class) that produce
// node-level failure events — endpoint crash/restart, link degradation
// and partition windows, runtime memory-budget shrink.
//
// Determinism is the design center. A Profile is compiled by Plan into a
// concrete event list before the simulation starts: every arrival time,
// target node, and window duration is drawn up front from per-spec RNG
// streams seeded off the scenario seed, then sorted into a canonical
// order. Scheduling the resulting events as foreground events on each
// target node's own engine makes chaos runs reproducible across shard
// counts and GOMAXPROCS — the plan depends only on (seed, node count,
// horizon), never on execution order.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"omxsim/internal/ethernet"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
)

// Class enumerates the fault classes the engine injects.
type Class int

// Fault classes.
const (
	// NodeCrash takes a node dark (NIC down, pins released, in-flight
	// requests aborted) and restarts it after the window.
	NodeCrash Class = iota
	// LinkDegrade impairs a node's fabric attachment: extra latency,
	// bandwidth throttle, raised drop probability.
	LinkDegrade
	// Partition is a full partition window (every frame to or from the
	// node is lost) without crashing the node.
	Partition
	// BudgetShrink lowers the node's physical-frame budget for the
	// window — kswapd suddenly has a lower watermark.
	BudgetShrink
)

// String names the class.
func (c Class) String() string {
	switch c {
	case NodeCrash:
		return "node-crash"
	case LinkDegrade:
		return "link-degrade"
	case Partition:
		return "partition"
	case BudgetShrink:
		return "budget-shrink"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Arrival selects a spec's inter-arrival process.
type Arrival int

// Arrival processes.
const (
	// Poisson draws exponential gaps with the spec's mean.
	Poisson Arrival = iota
	// Uniform draws gaps uniformly in [(1-j), (1+j)] x mean.
	Uniform
	// Burst emits BurstLen closely spaced faults, then one mean gap.
	Burst
)

// String names the arrival process.
func (a Arrival) String() string {
	switch a {
	case Poisson:
		return "poisson"
	case Uniform:
		return "uniform"
	case Burst:
		return "burst"
	}
	return fmt.Sprintf("arrival(%d)", int(a))
}

// Spec is one seeded failure distribution: a fault class, an arrival
// process with rate/jitter/duration knobs, and class-specific effect
// parameters.
type Spec struct {
	Class   Class
	Arrival Arrival
	// MeanGap is the mean inter-arrival time between faults of this spec.
	MeanGap sim.Duration
	// Jitter widens Uniform arrivals: gaps span [(1-j), (1+j)] x MeanGap.
	// Zero selects 0.5. Ignored by Poisson (exponential is its own
	// jitter) and Burst.
	Jitter float64
	// Duration is the fault window length (crash-to-restart,
	// degrade-to-restore); DurationJitter spreads it uniformly in
	// [(1-j), (1+j)] x Duration.
	Duration       sim.Duration
	DurationJitter float64
	// BurstLen is the burst size under the Burst arrival (0 = 3).
	BurstLen int
	// Nodes restricts targets (nil = every node in the cluster). Each
	// event picks its target from this set via the spec's RNG stream.
	Nodes []int

	// Link-degradation effects (LinkDegrade only).
	ExtraLatency    sim.Duration
	BandwidthFactor float64
	DropProb        float64

	// ShrinkFactor scales the frame budget under BudgetShrink, in (0,1);
	// Frames sets an absolute target instead when non-zero.
	ShrinkFactor float64
	Frames       int
}

// Profile is a scenario's chaos configuration: the failure distributions
// plus the horizon they fire within and the stress-report bucketing.
type Profile struct {
	// Horizon bounds fault arrivals: no fault fires at or after it.
	// Restore events may land up to one window length past it. Keep it
	// modest — chaos events are foreground events, so the horizon extends
	// unbudgeted runs.
	Horizon sim.Duration
	// Interval is the stress-report bucket width (0 = 1ms).
	Interval sim.Duration
	Specs    []Spec
}

// BucketInterval returns the effective stress-report bucket width.
func (p *Profile) BucketInterval() sim.Duration {
	if p == nil || p.Interval <= 0 {
		return sim.Millisecond
	}
	return p.Interval
}

// Summary renders the profile compactly for scenario listings.
func (p *Profile) Summary() string {
	if p == nil || len(p.Specs) == 0 {
		return "none"
	}
	parts := make([]string, 0, len(p.Specs))
	for _, sp := range p.Specs {
		parts = append(parts, fmt.Sprintf("%s(%s mean=%v dur=%v)",
			sp.Class, sp.Arrival, sp.MeanGap, sp.Duration))
	}
	return fmt.Sprintf("horizon=%v %s", p.Horizon, strings.Join(parts, " "))
}

// Event is one planned fault: apply the class's effect to Node at time
// At, restore after Duration.
type Event struct {
	At       sim.Time
	Node     int
	Class    Class
	Duration sim.Duration

	// Effect parameters copied from the spec.
	ExtraLatency    sim.Duration
	BandwidthFactor float64
	DropProb        float64
	ShrinkFactor    float64
	Frames          int
}

// Plan compiles the profile into a concrete, canonically ordered event
// list for a cluster of the given node count. Every random draw comes
// from a per-spec stream seeded off (seed, spec index), so the plan is a
// pure function of its arguments — identical across shard counts,
// GOMAXPROCS, and run repetitions.
func (p *Profile) Plan(seed int64, nodes int) []Event {
	if p == nil || nodes <= 0 || p.Horizon <= 0 {
		return nil
	}
	var evs []Event
	for i, sp := range p.Specs {
		rng := rand.New(rand.NewSource(seed ^ int64((uint64(i)+1)*0x9e3779b97f4a7c15)))
		evs = append(evs, sp.draw(rng, nodes, p.Horizon)...)
	}
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Class < b.Class
	})
	return evs
}

// draw materializes one spec's arrivals within the horizon.
func (sp Spec) draw(rng *rand.Rand, nodes int, horizon sim.Duration) []Event {
	if sp.MeanGap <= 0 {
		return nil
	}
	mean := float64(sp.MeanGap)
	jitter := sp.Jitter
	if jitter <= 0 {
		jitter = 0.5
	}
	burstLen := sp.BurstLen
	if burstLen <= 0 {
		burstLen = 3
	}
	gap := func() sim.Duration {
		switch sp.Arrival {
		case Uniform:
			return sim.Duration(mean * (1 - jitter + 2*jitter*rng.Float64()))
		default: // Poisson (and the inter-burst gap for Burst)
			return sim.Duration(rng.ExpFloat64() * mean)
		}
	}
	duration := func() sim.Duration {
		d := float64(sp.Duration)
		if sp.DurationJitter > 0 {
			j := sp.DurationJitter
			d *= 1 - j + 2*j*rng.Float64()
		}
		return sim.Duration(d)
	}
	target := func() int {
		if len(sp.Nodes) > 0 {
			return sp.Nodes[rng.Intn(len(sp.Nodes))]
		}
		return rng.Intn(nodes)
	}
	event := func(t sim.Time) Event {
		return Event{
			At: t, Node: target(), Class: sp.Class, Duration: duration(),
			ExtraLatency: sp.ExtraLatency, BandwidthFactor: sp.BandwidthFactor,
			DropProb: sp.DropProb, ShrinkFactor: sp.ShrinkFactor, Frames: sp.Frames,
		}
	}
	var evs []Event
	t := sim.Time(0)
	for {
		t += sim.Time(gap())
		if t >= sim.Time(horizon) {
			return evs
		}
		if sp.Arrival == Burst {
			// The burst's faults land MeanGap/8 apart; the gap above
			// separates bursts.
			bt := t
			for i := 0; i < burstLen && bt < sim.Time(horizon); i++ {
				evs = append(evs, event(bt))
				bt += sim.Time(mean / 8)
			}
			t = bt
			continue
		}
		evs = append(evs, event(t))
	}
}

// Apply fires one planned event against its node, scheduling the
// matching restore on the node's own engine and recording the fault (and
// later the recovery) in rec. It must run as an event on n.Eng — the
// scenario runner arms each event on the target's shard engine, which is
// what keeps chaos shard-safe: all mutated state (NIC, VM budget,
// protocol state) is owned by that engine.
func Apply(n *omx.Node, ev Event, rec *Recorder) {
	eng := n.Eng
	switch ev.Class {
	case NodeCrash:
		if n.Crashed() {
			return // overlapping crash window
		}
		rec.Fault(eng.Now())
		n.Crash()
		eng.After(ev.Duration, func() {
			n.Restart()
			rec.Recovery(eng.Now())
		})
	case LinkDegrade, Partition:
		d := ethernet.Degrade{
			ExtraLatency:    ev.ExtraLatency,
			BandwidthFactor: ev.BandwidthFactor,
			DropProb:        ev.DropProb,
		}
		if ev.Class == Partition {
			d = ethernet.Degrade{DropProb: 1}
		}
		rec.Fault(eng.Now())
		n.NIC.SetDegraded(d)
		eng.After(ev.Duration, func() {
			n.NIC.ClearDegraded()
			rec.Recovery(eng.Now())
		})
	case BudgetShrink:
		prev := n.Phys.Capacity()
		frames := ev.Frames
		if frames <= 0 {
			f := ev.ShrinkFactor
			if f <= 0 || f >= 1 {
				f = 0.5
			}
			frames = int(float64(prev) * f)
		}
		if frames < 1 {
			frames = 1
		}
		if !n.ResizeMemory(frames) {
			return // unbounded node: nothing to shrink
		}
		rec.Fault(eng.Now())
		eng.After(ev.Duration, func() {
			n.ResizeMemory(prev)
			rec.Recovery(eng.Now())
		})
	}
}
