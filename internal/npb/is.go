// Package npb implements the NAS Parallel Benchmarks IS kernel (integer
// bucket sort) on the simulated MPI layer. IS is the large-message-intensive
// NPB code: each iteration redistributes every key with an all-to-all
// exchange, which is why the paper's Table 2 shows it benefiting from both
// the pinning cache (4.2 %) and overlapped pinning (1.9 %).
//
// The sort is performed for real (keys generated, exchanged through
// simulated memory, counted, verified); the CPU cost of the local passes is
// charged as simulated compute time proportional to the work done.
package npb

import (
	"encoding/binary"
	"fmt"

	"omxsim/internal/mpi"
	"omxsim/internal/sim"
)

// Class describes an IS problem size. The canonical NPB classes scale the
// key count; the simulated default is a scaled-down "C-shaped" class that
// keeps per-message sizes in the multi-hundred-KiB range the paper's
// statement ("large-message intensive") depends on, while staying fast to
// simulate.
type Class struct {
	Name       string
	TotalKeys  int
	MaxKey     int32
	Iterations int
}

// Classes, following the NPB scaling rule (keys x16, max key x16 between
// letters) at simulation-friendly sizes.
var (
	ClassS = Class{Name: "S", TotalKeys: 1 << 16, MaxKey: 1 << 11, Iterations: 10}
	ClassW = Class{Name: "W", TotalKeys: 1 << 18, MaxKey: 1 << 13, Iterations: 10}
	ClassA = Class{Name: "A", TotalKeys: 1 << 20, MaxKey: 1 << 15, Iterations: 10}
	// ClassCSim stands in for class C: the real C (2^27 keys) would take
	// hours of wall-clock memcpy without changing the communication shape;
	// this keeps ~1 MiB per-rank exchanges on 4 ranks, squarely in the
	// rendezvous regime.
	ClassCSim = Class{Name: "C-sim", TotalKeys: 1 << 22, MaxKey: 1 << 17, Iterations: 10}
)

// keyGenCost and countCost model the per-key CPU cost of the generation and
// counting/ranking passes (~a few ns per key on the paper-era hosts).
const (
	keyGenCost = 3 * sim.Nanosecond
	countCost  = 2 * sim.Nanosecond
)

// Result summarizes one IS run.
type Result struct {
	Class    Class
	Ranks    int
	Verified bool
	// Elapsed is the timed region (all iterations, NPB convention: the
	// initial untimed iteration is excluded).
	Elapsed sim.Duration
	// MopsTotal is millions of keys ranked per second of simulated time.
	MopsTotal float64
}

func (r Result) String() string {
	status := "VERIFICATION FAILED"
	if r.Verified {
		status = "VERIFICATION SUCCESSFUL"
	}
	return fmt.Sprintf("NPB IS class %s on %d ranks: %v, %.2f Mop/s  [%s]",
		r.Class.Name, r.Ranks, r.Elapsed, r.MopsTotal, status)
}

// lcg is the deterministic key generator (a 64-bit LCG, seeded per rank).
type lcg struct{ state uint64 }

func (g *lcg) next() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return g.state
}

// Run executes IS on the communicator. All ranks must call it. The result
// is returned on every rank (rank 0's copy is authoritative for reporting).
func Run(c *mpi.Comm, class Class) Result {
	p := c.Size()
	nLocal := class.TotalKeys / p
	res := Result{Class: class, Ranks: p}

	// Key generation (charged, and performed for real).
	gen := lcg{state: uint64(c.Rank())*0x9e3779b97f4a7c15 + 12345}
	keys := make([]int32, nLocal)
	for i := range keys {
		keys[i] = int32(gen.next() % uint64(class.MaxKey))
	}
	c.Compute(keyGenCost * sim.Duration(nLocal))

	// Exchange buffers, allocated once and reused every iteration — the
	// buffer-reuse pattern the pinning cache exploits.
	bufBytes := nLocal * 4 * 2 // headroom: buckets are uneven
	sendBuf := c.Malloc(bufBytes)
	recvBuf := c.Malloc(bufBytes)
	defer c.Free(sendBuf)
	defer c.Free(recvBuf)

	// Key range owned by each rank.
	span := (int(class.MaxKey) + p - 1) / p
	owner := func(k int32) int { return int(k) / span }

	var myKeys []int32
	iteration := func() {
		// 1. Count keys per destination bucket (charged).
		counts := make([]int, p)
		for _, k := range keys {
			counts[owner(k)]++
		}
		c.Compute(countCost * sim.Duration(len(keys)))

		// 2. Pack keys by bucket into the send buffer.
		offs := make([]int, p+1)
		for i := 0; i < p; i++ {
			offs[i+1] = offs[i] + counts[i]
		}
		packed := make([]byte, len(keys)*4)
		cursor := append([]int(nil), offs[:p]...)
		for _, k := range keys {
			d := owner(k)
			binary.LittleEndian.PutUint32(packed[cursor[d]*4:], uint32(k))
			cursor[d]++
		}
		c.WriteBytes(sendBuf, packed)
		c.Compute(countCost * sim.Duration(len(keys)))

		// 3. Exchange bucket sizes (small, eager), then the keys (large).
		sendCounts := make([]int, p)
		for i := range sendCounts {
			sendCounts[i] = counts[i] * 4
		}
		countsBuf := c.Malloc(4 * p)
		countsIn := c.Malloc(4 * p)
		cb := make([]byte, 4*p)
		for i, n := range sendCounts {
			binary.LittleEndian.PutUint32(cb[i*4:], uint32(n))
		}
		c.WriteBytes(countsBuf, cb)
		ones := make([]int, p)
		for i := range ones {
			ones[i] = 4
		}
		c.Alltoallv(countsBuf, ones, countsIn, ones)
		rb := c.ReadBytes(countsIn, 4*p)
		recvCounts := make([]int, p)
		totalIn := 0
		for i := 0; i < p; i++ {
			recvCounts[i] = int(binary.LittleEndian.Uint32(rb[i*4:]))
			totalIn += recvCounts[i]
		}
		c.Free(countsBuf)
		c.Free(countsIn)

		c.Alltoallv(sendBuf, sendCounts, recvBuf, recvCounts)

		// 4. Unpack and rank the received keys (counting sort, charged).
		in := c.ReadBytes(recvBuf, totalIn)
		myKeys = myKeys[:0]
		for i := 0; i+4 <= totalIn; i += 4 {
			myKeys = append(myKeys, int32(binary.LittleEndian.Uint32(in[i:])))
		}
		lo := int32(c.Rank() * span)
		hist := make([]int, span)
		for _, k := range myKeys {
			hist[k-lo]++
		}
		c.Compute(countCost * 2 * sim.Duration(len(myKeys)))
	}

	// Untimed warm-up iteration (NPB convention), then the timed run.
	iteration()
	c.Barrier()
	t0 := c.Now()
	for it := 0; it < class.Iterations; it++ {
		iteration()
	}
	c.Barrier()
	res.Elapsed = c.Now() - t0

	// Full verification: every received key lies in this rank's range, and
	// global key conservation holds (Allreduce of counts).
	lo := int32(c.Rank() * span)
	hi := lo + int32(span)
	ok := true
	for _, k := range myKeys {
		if k < lo || k >= hi {
			ok = false
			break
		}
	}
	vbuf := c.Malloc(16)
	vb := make([]byte, 16)
	count := int32(len(myKeys))
	flag := int32(0)
	if ok {
		flag = 1
	}
	binary.LittleEndian.PutUint32(vb[0:], uint32(count))
	binary.LittleEndian.PutUint32(vb[4:], uint32(flag))
	c.WriteBytes(vbuf, vb)
	c.Allreduce(vbuf, 8, mpi.SumInt32)
	out := c.ReadBytes(vbuf, 8)
	totalKeys := int32(binary.LittleEndian.Uint32(out[0:]))
	flags := int32(binary.LittleEndian.Uint32(out[4:]))
	c.Free(vbuf)
	res.Verified = totalKeys == int32(class.TotalKeys) && flags == int32(p)
	if res.Elapsed > 0 {
		res.MopsTotal = float64(class.TotalKeys) * float64(class.Iterations) /
			res.Elapsed.Seconds() / 1e6
	}
	return res
}
