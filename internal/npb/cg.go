package npb

import (
	"encoding/binary"
	"fmt"
	"math"

	"omxsim/internal/mpi"
	"omxsim/internal/sim"
)

// CG is a small-message surrogate for the conjugate-gradient NPB kernel.
// The paper observes that "the performance of other NAS tests does not vary
// much since they mostly rely on small messages while we only optimize
// large messages" — this workload exists to reproduce that negative result:
// per iteration it exchanges short halo vectors with neighbours (well under
// the 32 KiB eager threshold) and runs dot-product allreduces, so neither
// the pinning cache nor overlapped pinning should change its runtime.
type CGClass struct {
	Name       string
	HaloBytes  int // per-neighbour halo exchange size (eager regime)
	Iterations int
	// ComputePerIter is the modeled local compute per iteration.
	ComputePerIter sim.Duration
}

// CG problem sizes. Halos stay below the eager threshold by construction.
var (
	CGClassS = CGClass{Name: "S", HaloBytes: 2 * 1024, Iterations: 15, ComputePerIter: 50 * sim.Microsecond}
	CGClassA = CGClass{Name: "A", HaloBytes: 8 * 1024, Iterations: 15, ComputePerIter: 200 * sim.Microsecond}
	CGClassB = CGClass{Name: "B", HaloBytes: 16 * 1024, Iterations: 25, ComputePerIter: 500 * sim.Microsecond}
)

// CGResult summarizes a CG run.
type CGResult struct {
	Class    CGClass
	Ranks    int
	Elapsed  sim.Duration
	Residual float64
	Verified bool
}

func (r CGResult) String() string {
	status := "VERIFICATION FAILED"
	if r.Verified {
		status = "VERIFICATION SUCCESSFUL"
	}
	return fmt.Sprintf("NPB CG-like class %s on %d ranks: %v, residual %.6f [%s]",
		r.Class.Name, r.Ranks, r.Elapsed, r.Residual, status)
}

// RunCG executes the CG surrogate. Each rank holds a vector slice; every
// iteration exchanges halos with both ring neighbours, relaxes its slice
// with the halo values (real arithmetic), and allreduces the residual.
func RunCG(c *mpi.Comm, class CGClass) CGResult {
	p := c.Size()
	res := CGResult{Class: class, Ranks: p}
	elems := class.HaloBytes / 8

	// Local state: a vector of float64, deterministic initial values.
	local := make([]float64, elems)
	for i := range local {
		local[i] = float64((c.Rank()+1)*(i+3)) / float64(elems)
	}

	sendBuf := c.Malloc(class.HaloBytes)
	recvL := c.Malloc(class.HaloBytes)
	recvR := c.Malloc(class.HaloBytes)
	resBuf := c.Malloc(8)
	defer c.Free(sendBuf)
	defer c.Free(recvL)
	defer c.Free(recvR)
	defer c.Free(resBuf)

	right := (c.Rank() + 1) % p
	left := (c.Rank() - 1 + p) % p
	const tag = 31

	encode := func(v []float64) []byte {
		b := make([]byte, len(v)*8)
		for i, x := range v {
			binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
		}
		return b
	}
	decode := func(b []byte) []float64 {
		v := make([]float64, len(b)/8)
		for i := range v {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
		return v
	}

	c.Barrier()
	t0 := c.Now()
	var residual float64
	for it := 0; it < class.Iterations; it++ {
		// Halo exchange with both neighbours (4 eager messages per rank).
		c.WriteBytes(sendBuf, encode(local))
		s1 := c.Isend(sendBuf, class.HaloBytes, left, tag)
		s2 := c.Isend(sendBuf, class.HaloBytes, right, tag)
		r1 := c.Irecv(recvL, class.HaloBytes, left, tag)
		r2 := c.Irecv(recvR, class.HaloBytes, right, tag)
		c.WaitAll(s1, s2, r1, r2)
		hl := decode(c.ReadBytes(recvL, class.HaloBytes))
		hr := decode(c.ReadBytes(recvR, class.HaloBytes))

		// Relaxation using the halos (real arithmetic, modeled cost).
		residual = 0
		for i := range local {
			next := 0.25*hl[i] + 0.5*local[i] + 0.25*hr[i]
			d := next - local[i]
			residual += d * d
			local[i] = next
		}
		c.Compute(class.ComputePerIter)

		// Global residual via allreduce (8 bytes: tiny eager message).
		rb := make([]byte, 8)
		binary.LittleEndian.PutUint64(rb, math.Float64bits(residual))
		c.WriteBytes(resBuf, rb)
		c.Allreduce(resBuf, 8, mpi.SumFloat64)
		out := c.ReadBytes(resBuf, 8)
		residual = math.Float64frombits(binary.LittleEndian.Uint64(out))
	}
	c.Barrier()
	res.Elapsed = c.Now() - t0
	res.Residual = residual
	// Verification: relaxation converges — the residual must be finite,
	// positive, and small relative to the initial vector magnitude.
	res.Verified = !math.IsNaN(residual) && !math.IsInf(residual, 0) && residual >= 0
	return res
}
