package npb_test

import (
	"testing"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/mpi"
	"omxsim/internal/npb"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
)

func runIS(t *testing.T, class npb.Class, nodes, ranksPerNode int, cfg omx.Config) npb.Result {
	t.Helper()
	cl, err := cluster.New(cluster.Config{Nodes: nodes, RanksPerNode: ranksPerNode, OMX: cfg})
	if err != nil {
		t.Fatal(err)
	}
	var res npb.Result
	cl.Run(func(c *mpi.Comm) {
		r := npb.Run(c, class)
		if c.Rank() == 0 {
			res = r
		}
	})
	return res
}

func TestISVerifiesSmallClasses(t *testing.T) {
	for _, class := range []npb.Class{npb.ClassS, npb.ClassW} {
		res := runIS(t, class, 2, 2, omx.DefaultConfig(core.OnDemand, true))
		if !res.Verified {
			t.Fatalf("class %s failed verification", class.Name)
		}
		if res.Elapsed <= 0 || res.MopsTotal <= 0 {
			t.Fatalf("class %s: no timing", class.Name)
		}
	}
}

func TestISVerifiesUnderAllPolicies(t *testing.T) {
	for _, policy := range []core.PinPolicy{core.PinEachComm, core.OnDemand, core.Overlapped} {
		cacheOn := policy == core.OnDemand
		res := runIS(t, npb.ClassS, 2, 2, omx.DefaultConfig(policy, cacheOn))
		if !res.Verified {
			t.Fatalf("policy %v: verification failed", policy)
		}
	}
}

func TestISRankCounts(t *testing.T) {
	for _, shape := range [][2]int{{2, 1}, {2, 2}, {2, 4}} {
		res := runIS(t, npb.ClassS, shape[0], shape[1], omx.DefaultConfig(core.OnDemand, true))
		if !res.Verified {
			t.Fatalf("%dx%d: verification failed", shape[0], shape[1])
		}
		if res.Ranks != shape[0]*shape[1] {
			t.Fatalf("ranks = %d", res.Ranks)
		}
	}
}

func TestISDeterministic(t *testing.T) {
	a := runIS(t, npb.ClassS, 2, 2, omx.DefaultConfig(core.OnDemand, true))
	b := runIS(t, npb.ClassS, 2, 2, omx.DefaultConfig(core.OnDemand, true))
	if a.Elapsed != b.Elapsed {
		t.Fatalf("identical runs took %v vs %v", a.Elapsed, b.Elapsed)
	}
}

func TestISResultString(t *testing.T) {
	r := npb.Result{Class: npb.ClassS, Ranks: 4, Verified: true,
		Elapsed: 5 * sim.Millisecond, MopsTotal: 42}
	if r.String() == "" {
		t.Fatal("empty string")
	}
	r.Verified = false
	if r.String() == "" {
		t.Fatal("empty string for failed run")
	}
}

func TestCGSmallMessagesUnaffectedByPinningPolicy(t *testing.T) {
	// The paper's negative result: small-message NAS kernels "do not vary
	// much" across pinning models, because only large messages pin.
	measure := func(policy core.PinPolicy, cacheOn bool) sim.Duration {
		cl, err := cluster.New(cluster.Config{Nodes: 2, RanksPerNode: 2,
			OMX: omx.DefaultConfig(policy, cacheOn)})
		if err != nil {
			t.Fatal(err)
		}
		var res npb.CGResult
		cl.Run(func(c *mpi.Comm) {
			r := npb.RunCG(c, npb.CGClassA)
			if c.Rank() == 0 {
				res = r
			}
		})
		if !res.Verified {
			t.Fatalf("CG failed under %v", policy)
		}
		// No pinning at all should have happened: everything is eager.
		for _, ep := range cl.Endpoints {
			if ep.Manager().Stats().PagesPinned != 0 {
				t.Fatalf("%v: CG pinned pages despite eager-only traffic", policy)
			}
		}
		return res.Elapsed
	}
	base := measure(core.PinEachComm, false)
	cached := measure(core.OnDemand, true)
	overlapped := measure(core.Overlapped, false)
	for name, v := range map[string]sim.Duration{"cache": cached, "overlap": overlapped} {
		diff := float64(base-v) / float64(base) * 100
		if diff > 1.0 || diff < -1.0 {
			t.Errorf("%s changed CG runtime by %.2f%%, paper says it should not vary", name, diff)
		}
	}
}

func TestCGDeterministicResidual(t *testing.T) {
	run := func() float64 {
		cl, _ := cluster.New(cluster.Config{Nodes: 2, RanksPerNode: 2,
			OMX: omx.DefaultConfig(core.OnDemand, true)})
		var res npb.CGResult
		cl.Run(func(c *mpi.Comm) {
			r := npb.RunCG(c, npb.CGClassS)
			if c.Rank() == 0 {
				res = r
			}
		})
		return res.Residual
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("residuals differ: %v vs %v", a, b)
	}
}
