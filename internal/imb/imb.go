// Package imb reimplements the Intel MPI Benchmarks kernels used in the
// paper's evaluation: PingPong (Figures 6 and 7) and the Table 2 set
// (SendRecv, Allgatherv, Broadcast, Reduce, Allreduce, Reduce_scatter,
// Exchange). Semantics follow IMB conventions: buffers are allocated once
// per (benchmark, size) and reused across iterations — which is precisely
// the reuse pattern a pinning cache exploits — timing runs between
// barriers, and reported time is per operation.
package imb

import (
	"fmt"

	"omxsim/internal/mpi"
	"omxsim/internal/sim"
)

// Result is one (benchmark, size) measurement.
type Result struct {
	Benchmark  string
	Size       int
	Iterations int
	// AvgTime is simulated time per operation (per half round trip for
	// PingPong, matching IMB's t=Δt/2 convention).
	AvgTime sim.Duration
	// MBps is the IMB throughput metric where defined (PingPong, SendRecv,
	// Exchange), in MiB/s.
	MBps float64
}

func (r Result) String() string {
	return fmt.Sprintf("%-14s %9d B %6d it %12v %10.1f MiB/s",
		r.Benchmark, r.Size, r.Iterations, r.AvgTime, r.MBps)
}

// Iterations picks the IMB-style repetition count for a message size:
// enough to stabilize, capped so huge messages don't dominate runtime.
func Iterations(size int) int {
	switch {
	case size <= 4*1024:
		return 60
	case size <= 64*1024:
		return 30
	case size <= 1<<20:
		return 15
	default:
		return 8
	}
}

// DefaultSizes is the message-size sweep used by the Table 2 runs:
// IMB's power-of-two schedule from 4 B to 4 MiB.
func DefaultSizes() []int {
	var sizes []int
	for s := 4; s <= 4<<20; s *= 4 {
		sizes = append(sizes, s)
	}
	return sizes
}

// LargeSizes is the Figure 6/7 sweep: 64 KiB to 16 MiB (the paper plots
// only the rendezvous range).
func LargeSizes() []int {
	var sizes []int
	for s := 64 * 1024; s <= 16<<20; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// timeRegion runs body between barriers and returns the elapsed time as
// observed by this rank (all ranks leave the first barrier together, so
// rank-local elapsed time includes straggling).
func timeRegion(c *mpi.Comm, body func()) sim.Duration {
	c.Barrier()
	t0 := c.Now()
	body()
	c.Barrier()
	return c.Now() - t0
}

// PingPong bounces a message between ranks 0 and 1 (other ranks idle).
// Returns IMB's half-round-trip time and derived throughput.
func PingPong(c *mpi.Comm, size, iters int) Result {
	const tag = 1000
	var elapsed sim.Duration
	if c.Rank() <= 1 {
		sbuf := c.Malloc(max(size, 1))
		rbuf := c.Malloc(max(size, 1))
		defer c.Free(sbuf)
		defer c.Free(rbuf)
		peer := 1 - c.Rank()
		elapsed = timeRegion(c, func() {
			for i := 0; i < iters; i++ {
				if c.Rank() == 0 {
					c.Send(sbuf, size, peer, tag)
					c.Recv(rbuf, size, peer, tag)
				} else {
					c.Recv(rbuf, size, peer, tag)
					c.Send(sbuf, size, peer, tag)
				}
			}
		})
	} else {
		elapsed = timeRegion(c, func() {})
	}
	avg := elapsed / sim.Duration(2*iters)
	mbps := 0.0
	if avg > 0 {
		mbps = float64(size) / avg.Seconds() / (1 << 20)
	}
	return Result{Benchmark: "PingPong", Size: size, Iterations: iters, AvgTime: avg, MBps: mbps}
}

// SendRecv forms a periodic ring: every rank sends to its right neighbour
// and receives from the left simultaneously (MPI_Sendrecv chain).
func SendRecv(c *mpi.Comm, size, iters int) Result {
	const tag = 1001
	sbuf := c.Malloc(max(size, 1))
	rbuf := c.Malloc(max(size, 1))
	defer c.Free(sbuf)
	defer c.Free(rbuf)
	right := (c.Rank() + 1) % c.Size()
	left := (c.Rank() - 1 + c.Size()) % c.Size()
	elapsed := timeRegion(c, func() {
		for i := 0; i < iters; i++ {
			c.Sendrecv(sbuf, size, right, tag, rbuf, size, left, tag)
		}
	})
	avg := elapsed / sim.Duration(iters)
	mbps := 0.0
	if avg > 0 {
		// IMB counts both directions.
		mbps = 2 * float64(size) / avg.Seconds() / (1 << 20)
	}
	return Result{Benchmark: "SendRecv", Size: size, Iterations: iters, AvgTime: avg, MBps: mbps}
}

// Exchange sends to and receives from both neighbours each iteration (IMB's
// boundary-exchange pattern: 4 messages per rank per iteration).
func Exchange(c *mpi.Comm, size, iters int) Result {
	const tag = 1002
	sbuf1 := c.Malloc(max(size, 1))
	sbuf2 := c.Malloc(max(size, 1))
	rbuf1 := c.Malloc(max(size, 1))
	rbuf2 := c.Malloc(max(size, 1))
	defer c.Free(sbuf1)
	defer c.Free(sbuf2)
	defer c.Free(rbuf1)
	defer c.Free(rbuf2)
	right := (c.Rank() + 1) % c.Size()
	left := (c.Rank() - 1 + c.Size()) % c.Size()
	elapsed := timeRegion(c, func() {
		for i := 0; i < iters; i++ {
			s1 := c.Isend(sbuf1, size, left, tag)
			s2 := c.Isend(sbuf2, size, right, tag)
			r1 := c.Irecv(rbuf1, size, left, tag)
			r2 := c.Irecv(rbuf2, size, right, tag)
			c.WaitAll(s1, s2, r1, r2)
		}
	})
	avg := elapsed / sim.Duration(iters)
	mbps := 0.0
	if avg > 0 {
		mbps = 4 * float64(size) / avg.Seconds() / (1 << 20)
	}
	return Result{Benchmark: "Exchange", Size: size, Iterations: iters, AvgTime: avg, MBps: mbps}
}

// Bcast broadcasts from a rotating root (IMB rotates the root each
// iteration to avoid favouring one rank's cache).
func Bcast(c *mpi.Comm, size, iters int) Result {
	buf := c.Malloc(max(size, 1))
	defer c.Free(buf)
	elapsed := timeRegion(c, func() {
		for i := 0; i < iters; i++ {
			c.Bcast(buf, size, i%c.Size())
		}
	})
	return Result{Benchmark: "Broadcast", Size: size, Iterations: iters,
		AvgTime: elapsed / sim.Duration(iters)}
}

// Reduce sums float64 vectors to a rotating root.
func Reduce(c *mpi.Comm, size, iters int) Result {
	buf := c.Malloc(max(size, 8))
	defer c.Free(buf)
	elapsed := timeRegion(c, func() {
		for i := 0; i < iters; i++ {
			c.Reduce(buf, size&^7, i%c.Size(), mpi.SumFloat64)
		}
	})
	return Result{Benchmark: "Reduce", Size: size, Iterations: iters,
		AvgTime: elapsed / sim.Duration(iters)}
}

// Allreduce sums float64 vectors across all ranks.
func Allreduce(c *mpi.Comm, size, iters int) Result {
	buf := c.Malloc(max(size, 8))
	defer c.Free(buf)
	elapsed := timeRegion(c, func() {
		for i := 0; i < iters; i++ {
			c.Allreduce(buf, size&^7, mpi.SumFloat64)
		}
	})
	return Result{Benchmark: "Allreduce", Size: size, Iterations: iters,
		AvgTime: elapsed / sim.Duration(iters)}
}

// ReduceScatter reduces and scatters equal chunks to every rank.
func ReduceScatter(c *mpi.Comm, size, iters int) Result {
	per := (size / c.Size()) &^ 7
	if per == 0 {
		per = 8
	}
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = per
	}
	buf := c.Malloc(per * c.Size())
	defer c.Free(buf)
	elapsed := timeRegion(c, func() {
		for i := 0; i < iters; i++ {
			c.ReduceScatter(buf, counts, mpi.SumFloat64)
		}
	})
	return Result{Benchmark: "Reduce_scatter", Size: size, Iterations: iters,
		AvgTime: elapsed / sim.Duration(iters)}
}

// Allgatherv gathers size/nranks bytes from every rank to all ranks.
func Allgatherv(c *mpi.Comm, size, iters int) Result {
	per := size / c.Size()
	if per == 0 {
		per = 1
	}
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = per
	}
	send := c.Malloc(per)
	recv := c.Malloc(per * c.Size())
	defer c.Free(send)
	defer c.Free(recv)
	elapsed := timeRegion(c, func() {
		for i := 0; i < iters; i++ {
			c.Allgatherv(send, recv, counts)
		}
	})
	return Result{Benchmark: "Allgatherv", Size: size, Iterations: iters,
		AvgTime: elapsed / sim.Duration(iters)}
}

// Kernel is a runnable IMB benchmark.
type Kernel struct {
	Name string
	Run  func(c *mpi.Comm, size, iters int) Result
}

// Table2Kernels returns the benchmarks of the paper's Table 2, in its row
// order.
func Table2Kernels() []Kernel {
	return []Kernel{
		{"SendRecv", SendRecv},
		{"Allgatherv", Allgatherv},
		{"Broadcast", Bcast},
		{"Reduce", Reduce},
		{"Allreduce", Allreduce},
		{"Reduce_scatter", ReduceScatter},
		{"Exchange", Exchange},
	}
}

// RunSweep executes a kernel over the size schedule and returns the total
// simulated time spent in timed regions plus per-size results. The total is
// what Table 2's "execution time improvement" compares.
func RunSweep(c *mpi.Comm, k Kernel, sizes []int) (sim.Duration, []Result) {
	var total sim.Duration
	var results []Result
	for _, s := range sizes {
		r := k.Run(c, s, Iterations(s))
		results = append(results, r)
		total += r.AvgTime * sim.Duration(r.Iterations)
	}
	return total, results
}

// PingPing: both ranks send simultaneously and then receive (full-duplex
// point-to-point, IMB's PingPing benchmark). Ranks beyond the first two
// idle at the barriers.
func PingPing(c *mpi.Comm, size, iters int) Result {
	const tag = 1003
	var elapsed sim.Duration
	if c.Rank() <= 1 {
		sbuf := c.Malloc(max(size, 1))
		rbuf := c.Malloc(max(size, 1))
		defer c.Free(sbuf)
		defer c.Free(rbuf)
		peer := 1 - c.Rank()
		elapsed = timeRegion(c, func() {
			for i := 0; i < iters; i++ {
				sr := c.Isend(sbuf, size, peer, tag)
				rr := c.Irecv(rbuf, size, peer, tag)
				c.Wait(sr)
				c.Wait(rr)
			}
		})
	} else {
		elapsed = timeRegion(c, func() {})
	}
	avg := elapsed / sim.Duration(iters)
	mbps := 0.0
	if avg > 0 {
		mbps = float64(size) / avg.Seconds() / (1 << 20)
	}
	return Result{Benchmark: "PingPing", Size: size, Iterations: iters, AvgTime: avg, MBps: mbps}
}

// Alltoall exchanges size/nranks bytes with every rank (IMB Alltoall).
func Alltoall(c *mpi.Comm, size, iters int) Result {
	per := size / c.Size()
	if per == 0 {
		per = 1
	}
	send := c.Malloc(per * c.Size())
	recv := c.Malloc(per * c.Size())
	defer c.Free(send)
	defer c.Free(recv)
	elapsed := timeRegion(c, func() {
		for i := 0; i < iters; i++ {
			c.Alltoall(send, per, recv)
		}
	})
	return Result{Benchmark: "Alltoall", Size: size, Iterations: iters,
		AvgTime: elapsed / sim.Duration(iters)}
}

// Gather collects size/nranks bytes to a rotating root (IMB Gather).
func Gather(c *mpi.Comm, size, iters int) Result {
	per := size / c.Size()
	if per == 0 {
		per = 1
	}
	send := c.Malloc(per)
	recv := c.Malloc(per * c.Size())
	defer c.Free(send)
	defer c.Free(recv)
	elapsed := timeRegion(c, func() {
		for i := 0; i < iters; i++ {
			c.Gather(send, per, recv, i%c.Size())
		}
	})
	return Result{Benchmark: "Gather", Size: size, Iterations: iters,
		AvgTime: elapsed / sim.Duration(iters)}
}

// Scatter distributes size/nranks bytes from a rotating root (IMB Scatter).
func Scatter(c *mpi.Comm, size, iters int) Result {
	per := size / c.Size()
	if per == 0 {
		per = 1
	}
	send := c.Malloc(per * c.Size())
	recv := c.Malloc(per)
	defer c.Free(send)
	defer c.Free(recv)
	elapsed := timeRegion(c, func() {
		for i := 0; i < iters; i++ {
			c.Scatter(send, per, recv, i%c.Size())
		}
	})
	return Result{Benchmark: "Scatter", Size: size, Iterations: iters,
		AvgTime: elapsed / sim.Duration(iters)}
}

// Barrier measures barrier latency (IMB Barrier; size is ignored).
func Barrier(c *mpi.Comm, _, iters int) Result {
	elapsed := timeRegion(c, func() {
		for i := 0; i < iters; i++ {
			c.Barrier()
		}
	})
	return Result{Benchmark: "Barrier", Size: 0, Iterations: iters,
		AvgTime: elapsed / sim.Duration(iters)}
}

// AllKernels returns every implemented IMB benchmark (the Table 2 set plus
// the extras), for exhaustive sweeps.
func AllKernels() []Kernel {
	extra := []Kernel{
		{"PingPing", PingPing},
		{"Alltoall", Alltoall},
		{"Gather", Gather},
		{"Scatter", Scatter},
		{"Barrier", Barrier},
	}
	return append(Table2Kernels(), extra...)
}
