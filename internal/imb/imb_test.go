package imb_test

import (
	"testing"

	"omxsim/internal/cluster"
	"omxsim/internal/core"
	"omxsim/internal/imb"
	"omxsim/internal/mpi"
	"omxsim/internal/omx"
	"omxsim/internal/sim"
)

func run(t *testing.T, ranksPerNode int, body func(c *mpi.Comm)) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Nodes:        2,
		RanksPerNode: ranksPerNode,
		OMX:          omx.DefaultConfig(core.OnDemand, true),
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Run(body)
	return cl
}

func TestPingPongProducesThroughput(t *testing.T) {
	var res imb.Result
	run(t, 1, func(c *mpi.Comm) {
		r := imb.PingPong(c, 1<<20, 5)
		if c.Rank() == 0 {
			res = r
		}
	})
	if res.MBps < 500 || res.MBps > 1300 {
		t.Fatalf("PingPong 1MiB = %.0f MiB/s, implausible", res.MBps)
	}
	if res.AvgTime <= 0 {
		t.Fatal("no time measured")
	}
}

func TestPingPongIdleRanksReturn(t *testing.T) {
	// Ranks >= 2 must pass straight through the barriers.
	finished := 0
	run(t, 2, func(c *mpi.Comm) {
		imb.PingPong(c, 64*1024, 3)
		finished++
	})
	if finished != 4 {
		t.Fatalf("only %d/4 ranks finished", finished)
	}
}

func TestAllKernelsCompleteAllSizes(t *testing.T) {
	sizes := []int{8, 4096, 128 * 1024}
	for _, k := range imb.Table2Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			var total sim.Duration
			run(t, 2, func(c *mpi.Comm) {
				tt, results := imb.RunSweep(c, k, sizes)
				if c.Rank() == 0 {
					total = tt
					if len(results) != len(sizes) {
						t.Errorf("got %d results", len(results))
					}
				}
			})
			if total <= 0 {
				t.Fatalf("%s: zero total time", k.Name)
			}
		})
	}
}

func TestSendRecvThroughputCountsBothDirections(t *testing.T) {
	var res imb.Result
	run(t, 1, func(c *mpi.Comm) {
		r := imb.SendRecv(c, 1<<20, 5)
		if c.Rank() == 0 {
			res = r
		}
	})
	// Bidirectional over a full-duplex link: must exceed unidirectional peak.
	if res.MBps < 1000 {
		t.Fatalf("SendRecv 1MiB = %.0f MiB/s, expected ~2x unidirectional", res.MBps)
	}
}

func TestIterationsSchedule(t *testing.T) {
	if imb.Iterations(64) <= imb.Iterations(1<<20) {
		t.Fatal("small messages should iterate more")
	}
	if imb.Iterations(16<<20) < 1 {
		t.Fatal("zero iterations for large size")
	}
}

func TestSizeSchedules(t *testing.T) {
	def := imb.DefaultSizes()
	if def[0] != 4 || def[len(def)-1] != 4<<20 {
		t.Fatalf("DefaultSizes = %v..%v", def[0], def[len(def)-1])
	}
	lg := imb.LargeSizes()
	if lg[0] != 64*1024 || lg[len(lg)-1] != 16<<20 {
		t.Fatalf("LargeSizes = %v..%v", lg[0], lg[len(lg)-1])
	}
	for i := 1; i < len(lg); i++ {
		if lg[i] != lg[i-1]*2 {
			t.Fatal("LargeSizes not doubling")
		}
	}
}

func TestResultString(t *testing.T) {
	r := imb.Result{Benchmark: "PingPong", Size: 1024, Iterations: 10, AvgTime: 5000, MBps: 123.4}
	s := r.String()
	if s == "" {
		t.Fatal("empty result string")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	measure := func() sim.Duration {
		var res imb.Result
		run(t, 1, func(c *mpi.Comm) {
			r := imb.PingPong(c, 256*1024, 4)
			if c.Rank() == 0 {
				res = r
			}
		})
		return res.AvgTime
	}
	a, b := measure(), measure()
	if a != b {
		t.Fatalf("identical runs measured %v vs %v", a, b)
	}
}

func TestExtraKernelsComplete(t *testing.T) {
	sizes := []int{4096, 128 * 1024}
	for _, k := range imb.AllKernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			var res []imb.Result
			run(t, 2, func(c *mpi.Comm) {
				_, rs := imb.RunSweep(c, k, sizes)
				if c.Rank() == 0 {
					res = rs
				}
			})
			for _, r := range res {
				if r.AvgTime <= 0 {
					t.Fatalf("%s size %d: non-positive time", k.Name, r.Size)
				}
			}
		})
	}
}

func TestPingPingFullDuplex(t *testing.T) {
	var pp, ping imb.Result
	run(t, 1, func(c *mpi.Comm) {
		a := imb.PingPong(c, 1<<20, 5)
		b := imb.PingPing(c, 1<<20, 5)
		if c.Rank() == 0 {
			pp, ping = a, b
		}
	})
	// PingPing overlaps both directions: per-message time must beat
	// PingPong's round trip and approach its half-round-trip.
	if ping.AvgTime >= pp.AvgTime*2 {
		t.Fatalf("PingPing %v vs PingPong half-RTT %v: no overlap", ping.AvgTime, pp.AvgTime)
	}
}

func TestBarrierLatency(t *testing.T) {
	var r imb.Result
	run(t, 2, func(c *mpi.Comm) {
		res := imb.Barrier(c, 0, 20)
		if c.Rank() == 0 {
			r = res
		}
	})
	// A 4-rank barrier over a 10G link with 5us interrupt latency lands in
	// the tens of microseconds.
	if r.AvgTime < 10*1000 || r.AvgTime > 500*1000 {
		t.Fatalf("barrier latency = %v, implausible", r.AvgTime)
	}
}
