package cpu

import (
	"testing"

	"omxsim/internal/sim"
)

func TestCoreExecutesSerially(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMachine(e, XeonE5460)
	c := m.Core(0)
	var finish []sim.Time
	c.Submit(User, 100, func() { finish = append(finish, e.Now()) })
	c.Submit(User, 50, func() { finish = append(finish, e.Now()) })
	e.Run()
	if len(finish) != 2 || finish[0] != 100 || finish[1] != 150 {
		t.Fatalf("finish = %v, want [100 150]", finish)
	}
}

func TestPriorityOrdering(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewMachine(e, XeonE5460).Core(0)
	var order []Priority
	// Occupy the core so submissions below all queue.
	c.Submit(User, 10, nil)
	c.Submit(User, 10, func() { order = append(order, User) })
	c.Submit(Kernel, 10, func() { order = append(order, Kernel) })
	c.Submit(BottomHalf, 10, func() { order = append(order, BottomHalf) })
	e.Run()
	want := []Priority{BottomHalf, Kernel, User}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNoPreemptionOfRunningItem(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewMachine(e, XeonE5460).Core(0)
	var bhDone, userDone sim.Time
	c.Submit(User, 100, func() { userDone = e.Now() })
	e.After(10, func() {
		c.Submit(BottomHalf, 5, func() { bhDone = e.Now() })
	})
	e.Run()
	if userDone != 100 {
		t.Fatalf("running user item finished at %v, want 100 (no preemption)", userDone)
	}
	if bhDone != 105 {
		t.Fatalf("bottom half finished at %v, want 105", bhDone)
	}
}

func TestBottomHalfStarvesKernelWork(t *testing.T) {
	// The §4.3 scenario: a flood of BH work delays kernel pinning work.
	e := sim.NewEngine(1)
	c := NewMachine(e, XeonE5460).Core(0)
	var pinDone sim.Time
	for i := 0; i < 100; i++ {
		c.Submit(BottomHalf, 10, nil)
	}
	c.Submit(Kernel, 10, func() { pinDone = e.Now() })
	e.Run()
	if pinDone != 1010 {
		t.Fatalf("kernel work done at %v, want 1010 (after all BH work)", pinDone)
	}
}

func TestExecBlocksProc(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewMachine(e, XeonE5460).Core(0)
	var after sim.Time
	e.Go("app", func(p *sim.Proc) {
		c.Exec(p, User, 250)
		after = p.Now()
	})
	e.Run()
	if after != 250 {
		t.Fatalf("Exec returned at %v, want 250", after)
	}
}

func TestAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewMachine(e, XeonE5460).Core(0)
	c.Submit(User, 100, nil)
	c.Submit(BottomHalf, 50, nil)
	e.Run()
	if c.BusyTime(User) != 100 || c.BusyTime(BottomHalf) != 50 {
		t.Fatalf("busy times = %v/%v", c.BusyTime(User), c.BusyTime(BottomHalf))
	}
	if c.Completed(User) != 1 || c.Completed(BottomHalf) != 1 {
		t.Fatal("completion counters wrong")
	}
	if u := c.Utilization(); u != 1.0 {
		t.Fatalf("Utilization = %v, want 1.0", u)
	}
}

func TestPinCostsMatchTable1(t *testing.T) {
	// Table 1: combined base + per-page costs; pin+unpin must sum exactly.
	for _, spec := range Table1Hosts() {
		for _, pages := range []int{0, 1, 16, 256, 4096} {
			got := spec.PinCost(pages) + spec.UnpinCost(pages)
			want := spec.PinUnpinCost(pages)
			// Allow 1ns rounding from the share split.
			if d := got - want; d < -1 || d > 1 {
				t.Errorf("%s %d pages: pin+unpin = %v, combined = %v", spec.Name, pages, got, want)
			}
		}
	}
}

func TestPinThroughputMatchesTable1(t *testing.T) {
	// Table 1's GB/s column is pagesize / per-page cost. Verify our presets
	// land within 10% of the published column.
	want := map[string]float64{
		"Opteron 265":  5.5,
		"Opteron 8347": 12,
		"Xeon E5435":   16,
		"Xeon E5460":   26.5,
	}
	for _, spec := range Table1Hosts() {
		gbps := 4096.0 / float64(spec.PinPerPage) // bytes/ns == GB/s
		w := want[spec.Name]
		if gbps < w*0.9 || gbps > w*1.15 {
			t.Errorf("%s: pinning throughput %.1f GB/s, paper says %.1f", spec.Name, gbps, w)
		}
	}
}

func TestCopyCost(t *testing.T) {
	spec := XeonE5460
	if d := spec.CopyCost(0); d != 0 {
		t.Fatalf("CopyCost(0) = %v", d)
	}
	// 1.15 GB/s -> 1 MiB in ~911us
	d := spec.CopyCost(1 << 20)
	if d < 880_000 || d > 940_000 {
		t.Fatalf("CopyCost(1MiB) = %v, want ~911us", d)
	}
}

func TestSubmitNegativePanics(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewMachine(e, XeonE5460).Core(0)
	defer func() {
		if recover() == nil {
			t.Error("negative duration did not panic")
		}
	}()
	c.Submit(User, -1, nil)
}

func TestMachineCores(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMachine(e, XeonE5460)
	if m.NumCores() != 8 {
		t.Fatalf("NumCores = %d, want 8", m.NumCores())
	}
	for i := 0; i < m.NumCores(); i++ {
		if m.Core(i).ID() != i {
			t.Fatalf("core %d has ID %d", i, m.Core(i).ID())
		}
	}
}

func TestPriorityString(t *testing.T) {
	if BottomHalf.String() != "bottomhalf" || Kernel.String() != "kernel" || User.String() != "user" {
		t.Fatal("priority names wrong")
	}
	if Priority(9).String() != "priority(9)" {
		t.Fatal("unknown priority name wrong")
	}
}

func TestZeroDurationWork(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewMachine(e, XeonE5460).Core(0)
	ran := false
	c.Submit(User, 0, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("zero-duration work never ran")
	}
}

func TestChainedSubmitFromCompletion(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewMachine(e, XeonE5460).Core(0)
	var times []sim.Time
	c.Submit(User, 10, func() {
		times = append(times, e.Now())
		c.Submit(User, 20, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 30 {
		t.Fatalf("times = %v, want [10 30]", times)
	}
}
