package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"omxsim/internal/sim"
)

// TestPropWorkConservation: a core is never idle while work is queued, and
// total busy time equals the sum of all submitted durations.
func TestPropWorkConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine(seed)
		c := NewMachine(e, XeonE5460).Core(0)
		var total sim.Duration
		n := 20 + rng.Intn(80)
		var lastDone sim.Time
		for i := 0; i < n; i++ {
			d := sim.Duration(1 + rng.Intn(5000))
			total += d
			prio := Priority(rng.Intn(3))
			at := sim.Time(rng.Intn(2000))
			e.At(at, func() {
				c.Submit(prio, d, func() { lastDone = e.Now() })
			})
		}
		e.Run()
		var busy sim.Duration
		for p := Priority(0); p < numPriorities; p++ {
			busy += c.BusyTime(p)
		}
		if busy != total {
			return false
		}
		// Completion can't beat the critical path: at least `total` of work
		// happened, so the last completion is no earlier than total work
		// after the earliest possible start.
		return lastDone >= sim.Time(total)-2000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropPriorityNoStarvationAccounting: within a burst submitted at one
// instant, all bottom-half work completes before any user work starts.
func TestPropPriorityOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine(seed)
		c := NewMachine(e, XeonE5460).Core(0)
		nBH := 1 + rng.Intn(10)
		nUser := 1 + rng.Intn(10)
		var lastBH, firstUser sim.Time
		firstUser = -1
		// Occupy the core so everything below queues.
		c.Submit(User, 10, nil)
		for i := 0; i < nBH; i++ {
			c.Submit(BottomHalf, sim.Duration(1+rng.Intn(100)), func() { lastBH = e.Now() })
		}
		for i := 0; i < nUser; i++ {
			c.Submit(User, sim.Duration(1+rng.Intn(100)), func() {
				if firstUser < 0 {
					firstUser = e.Now()
				}
			})
		}
		e.Run()
		return firstUser > lastBH
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
