// Package cpu models processor cores as non-preemptive, priority-queued
// servers of timed work items.
//
// The model captures the two CPU effects the paper depends on:
//
//   - memory pinning costs CPU time (Table 1: a base cost plus a per-page
//     cost that scales inversely with clock speed), and
//   - interrupt bottom-half processing preempts (here: is queued ahead of)
//     everything else on a core, so a flooded core pins slowly and causes
//     overlap misses (paper §4.3).
//
// A Core executes one work item at a time; queued items are ordered by
// priority then FIFO. Items are expected to be small (per-packet handlers,
// per-chunk pin batches), which approximates preemption closely enough for
// the throughput phenomena under study.
package cpu

import (
	"fmt"

	"omxsim/internal/sim"
)

// Priority orders work on a core. Lower values run first.
type Priority int

const (
	// BottomHalf is interrupt bottom-half (softirq) work: packet RX
	// processing. It starves everything else on the core, which is exactly
	// the overload scenario of paper §4.3.
	BottomHalf Priority = iota
	// Kernel is syscall-context and deferred driver work, e.g. on-demand
	// page pinning.
	Kernel
	// User is application compute.
	User
	numPriorities
)

// String names the priority level.
func (p Priority) String() string {
	switch p {
	case BottomHalf:
		return "bottomhalf"
	case Kernel:
		return "kernel"
	case User:
		return "user"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// Spec describes a host CPU with the pinning costs measured in Table 1 of
// the paper. PinBase and PinPerPage are the *combined* pin+unpin costs; the
// split between the two halves is given by PinShare.
type Spec struct {
	Name       string
	GHz        float64
	PinBase    sim.Duration // combined pin+unpin base overhead
	PinPerPage sim.Duration // combined pin+unpin cost per 4 KiB page
	// PinShare is the fraction of the combined cost charged to the pin
	// operation; the remainder is charged to unpin. get_user_pages (fault +
	// refcount) dominates put_page, hence > 0.5.
	PinShare float64
	// CopyBytesPerSec is the on-core memcpy bandwidth for RX copies into
	// user buffers (cold destination, read+write traffic).
	CopyBytesPerSec float64
	Cores           int
}

// Host presets from Table 1 of the paper. Copy bandwidth scales roughly with
// clock speed; the E5460 value is calibrated so that the no-I/OAT PingPong
// curve saturates near the paper's figure 6 level.
var (
	Opteron265 = Spec{
		Name: "Opteron 265", GHz: 1.8,
		PinBase: 4200, PinPerPage: 720, PinShare: 0.6,
		CopyBytesPerSec: 0.65e9, Cores: 4,
	}
	Opteron8347 = Spec{
		Name: "Opteron 8347", GHz: 1.9,
		PinBase: 2200, PinPerPage: 330, PinShare: 0.6,
		CopyBytesPerSec: 0.80e9, Cores: 8,
	}
	XeonE5435 = Spec{
		Name: "Xeon E5435", GHz: 2.33,
		PinBase: 2300, PinPerPage: 250, PinShare: 0.6,
		CopyBytesPerSec: 0.95e9, Cores: 8,
	}
	XeonE5460 = Spec{
		Name: "Xeon E5460", GHz: 3.16,
		PinBase: 1300, PinPerPage: 150, PinShare: 0.6,
		CopyBytesPerSec: 1.15e9, Cores: 8,
	}
)

// Table1Hosts lists the presets in the order of Table 1 in the paper.
func Table1Hosts() []Spec {
	return []Spec{Opteron265, Opteron8347, XeonE5435, XeonE5460}
}

// PinCost returns the CPU time to pin n pages (the pin half of the combined
// Table 1 cost).
func (s Spec) PinCost(pages int) sim.Duration {
	return scale(s.PinBase, s.PinShare) + sim.Duration(pages)*scale(s.PinPerPage, s.PinShare)
}

// UnpinCost returns the CPU time to unpin n pages.
func (s Spec) UnpinCost(pages int) sim.Duration {
	return scale(s.PinBase, 1-s.PinShare) + sim.Duration(pages)*scale(s.PinPerPage, 1-s.PinShare)
}

// PinUnpinCost returns the combined cost to pin and later unpin n pages,
// which is what Table 1 reports.
func (s Spec) PinUnpinCost(pages int) sim.Duration {
	return s.PinBase + sim.Duration(pages)*s.PinPerPage
}

// CopyCost returns the CPU time for an on-core copy of n bytes.
func (s Spec) CopyCost(bytes int) sim.Duration {
	if bytes <= 0 {
		return 0
	}
	return sim.Duration(float64(bytes) / s.CopyBytesPerSec * 1e9)
}

func scale(d sim.Duration, f float64) sim.Duration {
	return sim.Duration(float64(d)*f + 0.5)
}

// workItem is one queued unit of core time.
type workItem struct {
	dur  sim.Duration
	fn   func()
	prio Priority
	seq  uint64
}

// Core is a single processor core: a non-preemptive server with one FIFO
// queue per priority level.
type Core struct {
	eng    *sim.Engine
	spec   Spec
	id     int
	queues [numPriorities][]workItem
	busy   bool
	seq    uint64

	// running is the item currently executing; finish is the pre-bound
	// completion callback scheduled for it (bound once so dispatching does
	// not allocate a closure per work item).
	running workItem
	finish  func()

	// accounting
	busyTime  [numPriorities]sim.Duration
	completed [numPriorities]uint64
}

// Machine is a set of cores sharing a Spec.
type Machine struct {
	Spec  Spec
	cores []*Core
}

// NewMachine builds a machine with spec.Cores cores on the engine.
func NewMachine(eng *sim.Engine, spec Spec) *Machine {
	if spec.Cores <= 0 {
		panic("cpu: spec with no cores")
	}
	m := &Machine{Spec: spec}
	for i := 0; i < spec.Cores; i++ {
		m.cores = append(m.cores, &Core{eng: eng, spec: spec, id: i})
	}
	return m
}

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// NumCores reports the number of cores.
func (m *Machine) NumCores() int { return len(m.cores) }

// ID returns the core index within its machine.
func (c *Core) ID() int { return c.id }

// Spec returns the host spec the core was built with.
func (c *Core) Spec() Spec { return c.spec }

// Busy reports whether the core is currently executing an item.
func (c *Core) Busy() bool { return c.busy }

// QueueLen reports the number of items waiting at priority p (not counting
// the running item).
func (c *Core) QueueLen(p Priority) int { return len(c.queues[p]) }

// BusyTime reports accumulated execution time at priority p.
func (c *Core) BusyTime(p Priority) sim.Duration { return c.busyTime[p] }

// Completed reports how many items have finished at priority p.
func (c *Core) Completed(p Priority) uint64 { return c.completed[p] }

// Submit queues dur nanoseconds of work at priority prio; fn (which may be
// nil) runs when the work completes. Work at a higher priority that is
// queued while this item waits will run first, but a running item is never
// preempted.
func (c *Core) Submit(prio Priority, dur sim.Duration, fn func()) {
	if dur < 0 {
		panic(fmt.Sprintf("cpu: negative work duration %d", dur))
	}
	if prio < 0 || prio >= numPriorities {
		panic(fmt.Sprintf("cpu: bad priority %d", prio))
	}
	c.queues[prio] = append(c.queues[prio], workItem{dur: dur, fn: fn, prio: prio, seq: c.seq})
	c.seq++
	if !c.busy {
		c.dispatch()
	}
}

// Exec blocks the calling simulated process until dur nanoseconds of core
// time at priority prio have been spent (including any queueing delay).
func (c *Core) Exec(p *sim.Proc, prio Priority, dur sim.Duration) {
	done := &sim.Completion{}
	c.Submit(prio, dur, func() { done.Complete(c.eng, nil) })
	done.Wait(p)
}

func (c *Core) dispatch() {
	for prio := Priority(0); prio < numPriorities; prio++ {
		if len(c.queues[prio]) == 0 {
			continue
		}
		item := c.queues[prio][0]
		c.queues[prio][0] = workItem{}
		c.queues[prio] = c.queues[prio][1:]
		c.busy = true
		c.running = item
		if c.finish == nil {
			c.finish = c.finishItem
		}
		c.eng.After(item.dur, c.finish)
		return
	}
}

// finishItem completes the running work item: it accounts the time, runs
// the item's callback, and dispatches the next item. Exactly one item runs
// at a time, so the running slot is safe to reuse.
func (c *Core) finishItem() {
	item := c.running
	c.running = workItem{}
	c.busy = false
	c.busyTime[item.prio] += item.dur
	c.completed[item.prio]++
	if item.fn != nil {
		item.fn()
	}
	if !c.busy { // fn may have submitted and triggered dispatch
		c.dispatch()
	}
}

// Utilization returns the fraction of time [0,1] the core has been busy
// since the start of the simulation, as of now.
func (c *Core) Utilization() float64 {
	now := c.eng.Now()
	if now == 0 {
		return 0
	}
	var total sim.Duration
	for p := Priority(0); p < numPriorities; p++ {
		total += c.busyTime[p]
	}
	return float64(total) / float64(now)
}
