package core

import (
	"bytes"
	"testing"

	"omxsim/internal/cpu"
)

func TestNoPinningNeverPins(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: NoPinning})
	addr := h.buf(t, 1<<20)
	r, err := m.Declare([]Segment{{addr, 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	done := m.Acquire(r)
	h.eng.Run()
	if done.Err() != nil {
		t.Fatal(done.Err())
	}
	if m.PinnedPages() != 0 || m.Stats().PagesPinned != 0 {
		t.Fatal("NoPinning pinned pages")
	}
	if h.core.BusyTime(cpu.Kernel) > 1000 {
		t.Fatalf("NoPinning consumed %v of kernel time", h.core.BusyTime(cpu.Kernel))
	}
	if !r.Ready(0, 1<<20) {
		t.Fatal("NoPinning region not Ready")
	}
	m.Release(r)
}

func TestNoPinningAccessThroughPageTable(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: NoPinning})
	addr := h.buf(t, 128*1024)
	want := make([]byte, 128*1024)
	for i := range want {
		want[i] = byte(i * 11)
	}
	h.as.Write(addr, want)
	r, _ := m.Declare([]Segment{{addr, 128 * 1024}})
	m.Acquire(r)
	h.eng.Run()
	got := make([]byte, 128*1024)
	if err := r.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("NoPinning read mismatch")
	}
	if err := r.WriteAt(5000, []byte("nic-mmu")); err != nil {
		t.Fatal(err)
	}
	check := make([]byte, 7)
	h.as.Read(addr+5000, check)
	if string(check) != "nic-mmu" {
		t.Fatal("NoPinning write did not land")
	}
}

func TestNoPinningSurvivesMigration(t *testing.T) {
	// The NIC-MMU model follows the page table, so migration (which fires
	// notifiers and would unpin a pinned region) is transparent.
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: NoPinning})
	addr := h.buf(t, 64*1024)
	h.as.Write(addr, []byte("before"))
	r, _ := m.Declare([]Segment{{addr, 64 * 1024}})
	m.Acquire(r)
	h.eng.Run()
	if n, err := h.as.Migrate(addr, 64*1024); err != nil || n == 0 {
		t.Fatalf("migrate = %d, %v", n, err)
	}
	got := make([]byte, 6)
	if err := r.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "before" {
		t.Fatalf("read %q after migration", got)
	}
}

func TestNoPinningVectorial(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: NoPinning})
	a1 := h.buf(t, 8192)
	a2 := h.buf(t, 8192)
	r, _ := m.Declare([]Segment{{a1 + 3, 4000}, {a2 + 7, 5000}})
	m.Acquire(r)
	h.eng.Run()
	data := make([]byte, 9000)
	for i := range data {
		data[i] = byte(i * 3)
	}
	if err := r.WriteAt(0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 9000)
	if err := r.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("vectorial no-pin round trip failed")
	}
}
