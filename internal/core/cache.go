package core

import (
	"encoding/binary"

	"omxsim/internal/cpu"
	"omxsim/internal/sim"
	"omxsim/internal/trace"
)

// User-space cost constants (paper §4.2: "the overhead of the pinning cache
// is higher since it involves looking up a region in the user-space cache
// and checking whether it is already pinned in the driver. But it also
// remains negligible against the transfer time of large messages").
const (
	// CacheLookupCost is the user-space hash lookup per request.
	CacheLookupCost = 150 * sim.Nanosecond
	// DeclareBaseCost is the syscall + driver setup to declare a region.
	DeclareBaseCost = 400 * sim.Nanosecond
	// DeclarePerSegCost is the added cost per segment passed to the kernel.
	DeclarePerSegCost = 40 * sim.Nanosecond
	// UndeclareCost is the syscall to drop a declaration.
	UndeclareCost = 300 * sim.Nanosecond
)

// CacheStats counts user-space cache activity.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Cache is the user-space region cache of paper §3.2: it maps segment lists
// to declared-region descriptors so repeated use of the same buffer reuses
// one declaration, and evicts least-recently-used declarations beyond its
// capacity. It deliberately knows nothing about pinning: the driver may
// unpin and repin a cached region at any time without telling user space —
// that decoupling is the paper's point.
//
// With Enabled=false the cache degrades to declare/undeclare per
// communication, which is the classical model used as the baseline.
type Cache struct {
	eng      *sim.Engine
	mgr      *Manager
	core     *cpu.Core
	enabled  bool
	capacity int

	entries map[string]*cacheEntry
	tick    int64
	stats   CacheStats
}

type cacheEntry struct {
	key     string
	region  *Region
	refs    int
	lastUse int64
}

// NewCache builds a cache in front of mgr. Costs are charged on core.
// capacity <= 0 selects 64 entries. enabled=false turns the cache into the
// declare-per-communication baseline.
func NewCache(eng *sim.Engine, mgr *Manager, core *cpu.Core, capacity int, enabled bool) *Cache {
	if capacity <= 0 {
		capacity = 64
	}
	return &Cache{
		eng:      eng,
		mgr:      mgr,
		core:     core,
		enabled:  enabled,
		capacity: capacity,
		entries:  make(map[string]*cacheEntry),
	}
}

// Enabled reports whether caching is on.
func (c *Cache) Enabled() bool { return c.enabled }

// Stats returns a snapshot of hit/miss/eviction counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Len reports the number of cached declarations.
func (c *Cache) Len() int { return len(c.entries) }

// key serializes a segment list. Two requests hit the same entry iff their
// segment lists are byte-identical (same addresses AND lengths).
func key(segs []Segment) string {
	buf := make([]byte, 0, len(segs)*16)
	var tmp [16]byte
	for _, s := range segs {
		binary.LittleEndian.PutUint64(tmp[0:8], uint64(s.Addr))
		binary.LittleEndian.PutUint64(tmp[8:16], uint64(s.Len))
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}

// GetAsync resolves a segment list to a declared region, charging lookup
// (and declaration, on miss) costs on the cache's core; done receives the
// region. It is callable from event context. The caller must balance with
// Put.
func (c *Cache) GetAsync(segs []Segment, done func(*Region, error)) {
	c.tick++
	tick := c.tick
	if !c.enabled {
		cost := DeclareBaseCost + sim.Duration(len(segs))*DeclarePerSegCost
		c.core.Submit(cpu.Kernel, cost, func() {
			r, err := c.mgr.Declare(segs)
			done(r, err)
		})
		return
	}
	k := key(segs)
	c.core.Submit(cpu.User, CacheLookupCost, func() {
		if e, ok := c.entries[k]; ok {
			c.stats.Hits++
			if c.mgr.Trace != nil {
				c.mgr.Trace.Emit(trace.Event{T: c.eng.Now(), Kind: trace.CacheHit,
					Node: c.mgr.TraceNode, Seq: uint64(e.region.ID())})
			}
			e.refs++
			e.lastUse = tick
			done(e.region, nil)
			return
		}
		c.stats.Misses++
		if c.mgr.Trace != nil {
			c.mgr.Trace.Emit(trace.Event{T: c.eng.Now(), Kind: trace.CacheMiss,
				Node: c.mgr.TraceNode})
		}
		cost := DeclareBaseCost + sim.Duration(len(segs))*DeclarePerSegCost
		c.core.Submit(cpu.Kernel, cost, func() {
			r, err := c.mgr.Declare(segs)
			if err != nil {
				done(nil, err)
				return
			}
			c.entries[k] = &cacheEntry{key: k, region: r, refs: 1, lastUse: tick}
			c.evict()
			done(r, nil)
		})
	})
}

// Get is the blocking-process form of GetAsync.
func (c *Cache) Get(p *sim.Proc, segs []Segment) (*Region, error) {
	var region *Region
	var err error
	done := &sim.Completion{}
	c.GetAsync(segs, func(r *Region, e error) {
		region, err = r, e
		done.Complete(c.eng, nil)
	})
	done.Wait(p)
	return region, err
}

// Put releases a Get reference. Without caching, the declaration is dropped
// immediately (classical behaviour); with caching the entry stays for
// reuse, subject to LRU eviction.
func (c *Cache) Put(r *Region) {
	if !c.enabled {
		c.core.Submit(cpu.Kernel, UndeclareCost, func() {
			// The region may still be finishing its unpin (PinEachComm
			// charges unpin work asynchronously); retry until idle.
			c.undeclareWhenIdle(r)
		})
		return
	}
	k := key(r.segs)
	e, ok := c.entries[k]
	if !ok || e.region != r {
		// Entry was evicted while the caller held the region; drop the
		// declaration now that the communication is done.
		c.core.Submit(cpu.Kernel, UndeclareCost, func() { c.undeclareWhenIdle(r) })
		return
	}
	e.refs--
	c.evict()
}

func (c *Cache) undeclareWhenIdle(r *Region) {
	if r.InUse() {
		c.eng.After(sim.Microsecond, func() { c.undeclareWhenIdle(r) })
		return
	}
	_ = c.mgr.Undeclare(r)
}

// evict undeclares least-recently-used unreferenced entries beyond
// capacity (paper §3.2: "when the number of regions becomes too high, the
// least recently used ones are undeclared").
func (c *Cache) evict() {
	for len(c.entries) > c.capacity {
		var victim *cacheEntry
		for _, e := range c.entries {
			if e.refs > 0 || e.region.InUse() {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return // everything referenced; stay over capacity
		}
		delete(c.entries, victim.key)
		c.stats.Evictions++
		c.core.Submit(cpu.Kernel, UndeclareCost, nil)
		_ = c.mgr.Undeclare(victim.region)
	}
}
