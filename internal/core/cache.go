package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"omxsim/internal/cpu"
	"omxsim/internal/sim"
	"omxsim/internal/trace"
	"omxsim/internal/vm"
)

// User-space cost constants (paper §4.2: "the overhead of the pinning cache
// is higher since it involves looking up a region in the user-space cache
// and checking whether it is already pinned in the driver. But it also
// remains negligible against the transfer time of large messages").
const (
	// CacheLookupCost is the user-space interval lookup per request.
	CacheLookupCost = 150 * sim.Nanosecond
	// DeclareBaseCost is the syscall + driver setup to declare a region.
	DeclareBaseCost = 400 * sim.Nanosecond
	// DeclarePerSegCost is the added cost per segment passed to the kernel.
	DeclarePerSegCost = 40 * sim.Nanosecond
	// UndeclareCost is the syscall to drop a declaration.
	UndeclareCost = 300 * sim.Nanosecond
)

// CacheStats counts user-space cache activity.
type CacheStats struct {
	// Hits are lookups satisfied by an entry with a byte-identical
	// segment list.
	Hits uint64
	// SubrangeHits are lookups fully covered by a larger cached
	// declaration: the request is served as an offset view of the cached
	// region, with no new declaration.
	SubrangeHits uint64
	// Misses are lookups that had to start a new declaration.
	Misses uint64
	// Coalesced are lookups that joined a declaration already in flight
	// for a covering range instead of declaring again.
	Coalesced uint64
	// Merges counts miss declarations that extended over one or more
	// overlapping cached entries (the old entries are retired).
	Merges uint64
	// Evictions counts entries retired by capacity or byte-budget
	// pressure.
	Evictions uint64
	// Invalidations counts entries (and in-flight declarations) dropped
	// because an MMU-notifier invalidation overlapped them.
	Invalidations uint64
	// BytesCached is the current total of cached declaration bytes.
	BytesCached int
}

// Lookups returns the total number of cache lookups (every Get lands in
// exactly one of the four counters).
func (s CacheStats) Lookups() uint64 { return s.Hits + s.SubrangeHits + s.Misses + s.Coalesced }

// CacheConfig tunes the user-space region cache.
type CacheConfig struct {
	// Enabled turns the cache on; when false the cache degrades to
	// declare/undeclare per communication (the classical baseline).
	Enabled bool
	// Capacity bounds the number of cached declarations (0 = 64).
	Capacity int
	// ByteCapacity bounds the total bytes covered by cached declarations
	// (0 = unlimited). Referenced entries never count as evictable, so
	// the budget can be exceeded while everything is in use.
	ByteCapacity int
	// Eviction names the eviction policy: "lru" (default) or "size"
	// (largest idle entry first, ties broken least-recently-used).
	Eviction string
	// DropOnCOW also drops cached entries on mapping-preserving
	// invalidations (COW break, swap-out, migration, mprotect). By
	// default only unmap — which kills the mapping a declaration names —
	// drops entries; the driver transparently repins through an intact
	// mapping, which is the paper's decoupling.
	DropOnCOW bool
}

// Evictor ranks eviction candidates; see RegisterEvictor.
type Evictor interface {
	// Name is the registry key ("lru", "size", ...).
	Name() string
	// Better reports whether a is a better victim than b. Exact ties are
	// broken deterministically by the cache (oldest region id wins) so
	// simulation runs stay reproducible.
	Better(a, b EvictCandidate) bool
}

// EvictCandidate is the per-entry view an Evictor ranks on.
type EvictCandidate struct {
	// Bytes is the entry's declared byte length.
	Bytes int
	// LastUse is the cache tick of the entry's most recent hit.
	LastUse int64
}

type lruEvictor struct{}

func (lruEvictor) Name() string                    { return "lru" }
func (lruEvictor) Better(a, b EvictCandidate) bool { return a.LastUse < b.LastUse }

type sizeEvictor struct{}

func (sizeEvictor) Name() string { return "size" }
func (sizeEvictor) Better(a, b EvictCandidate) bool {
	if a.Bytes != b.Bytes {
		return a.Bytes > b.Bytes
	}
	return a.LastUse < b.LastUse
}

var evictors = map[string]Evictor{}

// RegisterEvictor adds an eviction policy to the registry; duplicate or
// empty names are programming errors.
func RegisterEvictor(e Evictor) {
	if e == nil || e.Name() == "" {
		panic("core: evictor missing name")
	}
	if _, dup := evictors[e.Name()]; dup {
		panic(fmt.Sprintf("core: duplicate evictor %q", e.Name()))
	}
	evictors[e.Name()] = e
}

// EvictorByName resolves an eviction policy ("" selects LRU).
func EvictorByName(name string) (Evictor, bool) {
	if name == "" {
		name = "lru"
	}
	e, ok := evictors[name]
	return e, ok
}

// EvictorNames returns the registered eviction-policy names, sorted.
func EvictorNames() []string {
	names := make([]string, 0, len(evictors))
	for n := range evictors {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterEvictor(lruEvictor{})
	RegisterEvictor(sizeEvictor{})
}

// Cache is the user-space region cache of paper §3.2, grown into a
// production-grade registration cache:
//
//   - Declarations are interval-indexed per address space, so a request
//     fully covered by an existing declaration is a subrange hit (served
//     as an offset view, no syscall) and a request overlapping existing
//     declarations extends them into one merged declaration.
//   - The cache registers as an MMU notifier: an unmap drops every cached
//     entry it overlaps, so a munmap + re-malloc at the same address can
//     never return a declaration over the dead mapping (the staleness
//     problem registration caches are notorious for). Mapping-preserving
//     invalidations (COW, swap, migrate) leave entries cached by default —
//     the driver repins transparently, which is the paper's decoupling —
//     unless CacheConfig.DropOnCOW says otherwise.
//   - Concurrent misses for a covered range coalesce onto one in-flight
//     declaration instead of declaring twice.
//   - Capacity is bounded by entry count and byte budget with pluggable
//     eviction (LRU, size-weighted).
//
// It still deliberately knows nothing about pinning: the driver may unpin
// and repin a cached region at any time without telling user space.
type Cache struct {
	eng     *sim.Engine
	mgr     *Manager
	core    *cpu.Core
	cfg     CacheConfig
	evictor Evictor

	// entries holds attached entries by exact segment-list key.
	entries map[string]*cacheEntry
	// byRegion tracks every live entry — attached or detached with
	// outstanding references — by its base region, for Put.
	byRegion map[*Region]*cacheEntry
	// idx is the interval index: attached single-segment entries sorted
	// by start address, with maxEnd[i] = max(end of idx[0..i]) so
	// coverage and overlap queries can terminate early.
	idx    []*cacheEntry
	maxEnd []vm.Addr
	// pending are in-flight declarations by declared-segment key;
	// pendIdx lists the single-segment ones for coverage joins.
	pending map[string]*pendingDecl
	pendIdx []*pendingDecl

	bytes  int // attached declaration bytes
	tick   int64
	stats  CacheStats
	closed bool
}

type cacheEntry struct {
	key    string
	region *Region
	// segStart/segEnd are the byte span for single-segment entries
	// (single=true); vectorial entries match by exact key only.
	segStart, segEnd vm.Addr
	single           bool
	bytes            int
	refs             int
	lastUse          int64
	// detached entries have been removed from the index (invalidated,
	// evicted, or merged away) but still have outstanding references;
	// the last Put undeclares them.
	detached bool
}

type pendingDecl struct {
	key              string
	segs             []Segment
	segStart, segEnd vm.Addr
	single           bool
	// invalidated is set when an unmap overlaps the range while the
	// declaration is still in flight: the result must not be cached.
	invalidated bool
	waiters     []pendingWaiter
}

type pendingWaiter struct {
	segs []Segment
	done func(*Region, error)
}

// NewCache builds a cache in front of mgr. Costs are charged on core.
// When enabled it registers as an MMU notifier on the manager's address
// space (after the manager, so the driver unpins before the cache drops
// declarations); Close detaches it. An unknown CacheConfig.Eviction name
// panics — validate with EvictorByName first where the name is user input.
func NewCache(eng *sim.Engine, mgr *Manager, core *cpu.Core, cfg CacheConfig) *Cache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	ev, ok := EvictorByName(cfg.Eviction)
	if !ok {
		panic(fmt.Sprintf("core: unknown cache eviction policy %q (have %v)", cfg.Eviction, EvictorNames()))
	}
	c := &Cache{
		eng:      eng,
		mgr:      mgr,
		core:     core,
		cfg:      cfg,
		evictor:  ev,
		entries:  make(map[string]*cacheEntry),
		byRegion: make(map[*Region]*cacheEntry),
		pending:  make(map[string]*pendingDecl),
	}
	if cfg.Enabled {
		mgr.as.RegisterNotifier(c)
	}
	return c
}

// Close detaches the cache from the address space's MMU notifiers. Cached
// declarations are not undeclared here — Manager.Close drops them with
// everything else.
func (c *Cache) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.cfg.Enabled {
		c.mgr.as.UnregisterNotifier(c)
	}
}

// Enabled reports whether caching is on.
func (c *Cache) Enabled() bool { return c.cfg.Enabled }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	s := c.stats
	s.BytesCached = c.bytes
	return s
}

// Len reports the number of cached (attached) declarations.
func (c *Cache) Len() int { return len(c.entries) }

// Bytes reports the total bytes covered by cached declarations.
func (c *Cache) Bytes() int { return c.bytes }

// key serializes a segment list. Two requests share an exact entry iff
// their segment lists are byte-identical (same addresses AND lengths);
// single-segment requests additionally match any covering entry through
// the interval index.
func key(segs []Segment) string {
	buf := make([]byte, 0, len(segs)*16)
	var tmp [16]byte
	for _, s := range segs {
		binary.LittleEndian.PutUint64(tmp[0:8], uint64(s.Addr))
		binary.LittleEndian.PutUint64(tmp[8:16], uint64(s.Len))
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}

// GetAsync resolves a segment list to a declared region, charging lookup
// (and declaration, on miss) costs on the cache's default core; done
// receives the region — possibly an offset view of a larger cached
// declaration. It is callable from event context. The caller must balance
// with Put.
func (c *Cache) GetAsync(segs []Segment, done func(*Region, error)) {
	c.GetAsyncOn(c.core, segs, done)
}

// GetAsyncOn is GetAsync with the costs charged on the calling thread's
// core: the cache is shared per process, but each endpoint's thread pays
// for its own lookup and declare syscalls. Lookups from different cores
// for the same range while a declaration is in flight coalesce onto it.
func (c *Cache) GetAsyncOn(caller *cpu.Core, segs []Segment, done func(*Region, error)) {
	c.tick++
	tick := c.tick
	if !c.cfg.Enabled {
		cost := DeclareBaseCost + sim.Duration(len(segs))*DeclarePerSegCost
		caller.Submit(cpu.Kernel, cost, func() {
			r, err := c.mgr.Declare(segs)
			done(r, err)
		})
		return
	}
	caller.Submit(cpu.User, CacheLookupCost, func() {
		c.lookup(caller, segs, tick, done)
	})
}

// lookup runs the cache decision tree in event context after the lookup
// cost was charged.
func (c *Cache) lookup(caller *cpu.Core, segs []Segment, tick int64, done func(*Region, error)) {
	k := key(segs)
	// 1. Exact segment-list hit.
	if e, ok := c.entries[k]; ok {
		c.stats.Hits++
		c.emit(trace.CacheHit, uint64(e.region.ID()), 0)
		e.refs++
		e.lastUse = tick
		done(e.region, nil)
		return
	}
	single := len(segs) == 1
	// 2. Subrange hit: a single-segment request fully covered by a larger
	// cached declaration is served as an offset view of it.
	if single {
		a, l := segs[0].Addr, segs[0].Len
		if e := c.covering(a, l); e != nil {
			c.stats.SubrangeHits++
			c.emit(trace.CacheHit, uint64(e.region.ID()), 1)
			e.refs++
			e.lastUse = tick
			done(newSubRegion(e.region, segs[0]), nil)
			return
		}
	}
	// 3. Coalesce with a declaration already in flight for a covering
	// range: join its waiter list instead of declaring again.
	if p := c.pendingFor(k, segs, single); p != nil {
		c.stats.Coalesced++
		p.waiters = append(p.waiters, pendingWaiter{segs: segs, done: done})
		return
	}
	// 4. Miss: declare. A single-segment request overlapping cached
	// entries extends the declaration over their union and retires them,
	// so the range converges to one declaration instead of fragmenting.
	c.stats.Misses++
	c.emit(trace.CacheMiss, 0, 0)
	declSegs := segs
	if single {
		a, l := segs[0].Addr, segs[0].Len
		if ov := c.overlapping(a, a+vm.Addr(l)); len(ov) > 0 {
			lo, hi := a, a+vm.Addr(l)
			for _, e := range ov {
				if e.segStart < lo {
					lo = e.segStart
				}
				if e.segEnd > hi {
					hi = e.segEnd
				}
				c.retire(e)
			}
			c.stats.Merges++
			declSegs = []Segment{{Addr: lo, Len: int(hi - lo)}}
		}
	}
	p := &pendingDecl{key: key(declSegs), segs: declSegs, single: len(declSegs) == 1}
	if p.single {
		p.segStart = declSegs[0].Addr
		p.segEnd = declSegs[0].Addr + vm.Addr(declSegs[0].Len)
	}
	p.waiters = append(p.waiters, pendingWaiter{segs: segs, done: done})
	c.pending[p.key] = p
	if p.single {
		c.pendIdx = append(c.pendIdx, p)
	}
	cost := DeclareBaseCost + sim.Duration(len(declSegs))*DeclarePerSegCost
	caller.Submit(cpu.Kernel, cost, func() { c.finishDeclare(p, tick) })
}

// pendingFor returns an in-flight declaration the request can join: the
// exact key, or (single-segment) any pending declaration covering the
// range. Invalidated pendings are not joinable — their result is dead.
func (c *Cache) pendingFor(k string, segs []Segment, single bool) *pendingDecl {
	if p, ok := c.pending[k]; ok && !p.invalidated {
		return p
	}
	if !single {
		return nil
	}
	a := segs[0].Addr
	b := a + vm.Addr(segs[0].Len)
	for _, p := range c.pendIdx {
		if !p.invalidated && p.segStart <= a && b <= p.segEnd {
			return p
		}
	}
	return nil
}

// finishDeclare completes an in-flight declaration: performs the Declare,
// attaches the entry (unless the range was invalidated meanwhile), and
// delivers every coalesced waiter its region or view.
func (c *Cache) finishDeclare(p *pendingDecl, tick int64) {
	// A poisoned pending's key may have been reused by a newer pending
	// (the range was re-malloc'd and re-missed); only deregister ourselves.
	if c.pending[p.key] == p {
		delete(c.pending, p.key)
	}
	if p.single {
		for i, q := range c.pendIdx {
			if q == p {
				c.pendIdx = append(c.pendIdx[:i], c.pendIdx[i+1:]...)
				break
			}
		}
	}
	r, err := c.mgr.Declare(p.segs)
	if err != nil {
		for _, w := range p.waiters {
			w.done(nil, err)
		}
		return
	}
	e := &cacheEntry{
		key:     p.key,
		region:  r,
		single:  p.single,
		bytes:   r.Bytes(),
		refs:    len(p.waiters),
		lastUse: tick,
	}
	if p.single {
		e.segStart, e.segEnd = p.segStart, p.segEnd
	}
	c.byRegion[r] = e
	if p.invalidated || c.closed {
		// The mapping died (or the cache shut down) while the declare was
		// in flight: hand the region to the waiters — their transfers
		// abort at pin time like any use-after-free — but never cache it.
		e.detached = true
	} else {
		c.attach(e)
	}
	for _, w := range p.waiters {
		if key(w.segs) == p.key {
			w.done(r, nil)
		} else {
			w.done(newSubRegion(r, w.segs[0]), nil)
		}
	}
	c.evict()
}

// Get is the blocking-process form of GetAsync.
func (c *Cache) Get(p *sim.Proc, segs []Segment) (*Region, error) {
	var region *Region
	var err error
	done := &sim.Completion{}
	c.GetAsync(segs, func(r *Region, e error) {
		region, err = r, e
		done.Complete(c.eng, nil)
	})
	done.Wait(p)
	return region, err
}

// Put releases a Get reference. Without caching, the declaration is dropped
// immediately (classical behaviour); with caching the entry stays for
// reuse, subject to eviction. Releasing the last reference of a detached
// entry (invalidated, evicted, or merged away while held) drops the
// declaration. Costs are charged on the cache's default core; use PutOn
// to attribute them to the releasing thread's core.
func (c *Cache) Put(r *Region) { c.PutOn(c.core, r) }

// PutOn is Put with any undeclare syscall charged on the calling
// thread's core, mirroring GetAsyncOn.
func (c *Cache) PutOn(caller *cpu.Core, r *Region) {
	if !c.cfg.Enabled {
		caller.Submit(cpu.Kernel, UndeclareCost, func() {
			// The region may still be finishing its unpin (PinEachComm
			// charges unpin work asynchronously); retry until idle.
			c.undeclareWhenIdle(r)
		})
		return
	}
	base := r.Base()
	e, ok := c.byRegion[base]
	if !ok {
		// Not tracked (the entry was force-dropped); drop the declaration
		// now that the communication is done.
		c.submitUndeclare(caller, base)
		return
	}
	if e.refs <= 0 {
		panic("core: cache Put without matching Get")
	}
	e.refs--
	if e.detached {
		if e.refs == 0 {
			delete(c.byRegion, base)
			c.submitUndeclare(caller, base)
		}
		return
	}
	c.evict()
}

// submitUndeclare charges the undeclare syscall on the given core and
// performs the undeclare inside the charged work (not detached from it),
// retrying until the region is idle.
func (c *Cache) submitUndeclare(on *cpu.Core, r *Region) {
	on.Submit(cpu.Kernel, UndeclareCost, func() { c.undeclareWhenIdle(r) })
}

func (c *Cache) undeclareWhenIdle(r *Region) {
	if r.InUse() {
		c.eng.After(sim.Microsecond, func() { c.undeclareWhenIdle(r) })
		return
	}
	_ = c.mgr.Undeclare(r)
}

// InvalidateRange implements vm.Notifier: an unmap (always) or any
// invalidation (with DropOnCOW) drops every cached entry overlapping the
// range, and poisons overlapping in-flight declarations so their results
// are not cached. The driver's own notifier — registered first — has
// already unpinned; this callback removes the user-space mapping from
// range to declaration, which is what makes a later re-malloc at the same
// address a clean miss instead of a stale hit.
func (c *Cache) InvalidateRange(nr vm.NotifierRange) {
	if !c.cfg.Enabled {
		return
	}
	if nr.Reason != vm.InvalidateUnmap && !c.cfg.DropOnCOW {
		return
	}
	var dead []*cacheEntry
	for _, e := range c.entries {
		if e.region.overlaps(nr.Start, nr.End) {
			dead = append(dead, e)
		}
	}
	// Deterministic drop order (map iteration is not).
	sort.Slice(dead, func(i, j int) bool { return dead[i].region.id < dead[j].region.id })
	for _, e := range dead {
		c.stats.Invalidations++
		c.emit(trace.CacheInvalidate, uint64(e.region.ID()), int(nr.Reason))
		c.retire(e)
	}
	for _, p := range c.pendIdx {
		if !p.invalidated && p.segStart < nr.End && nr.Start < p.segEnd {
			p.invalidated = true
			c.stats.Invalidations++
		}
	}
	for _, p := range c.pending {
		if p.single || p.invalidated {
			continue
		}
		for _, s := range p.segs {
			sStart := vm.PageAlignDown(s.Addr)
			sEnd := vm.PageAlignUp(s.Addr + vm.Addr(s.Len))
			if sStart < nr.End && nr.Start < sEnd {
				p.invalidated = true
				c.stats.Invalidations++
				break
			}
		}
	}
}

// retire removes an entry from the cache. Unreferenced entries are
// undeclared (as charged kernel work on the cache's default core —
// notifier and eviction context, not a particular thread); referenced
// ones are detached and the last Put undeclares them.
func (c *Cache) retire(e *cacheEntry) {
	c.detach(e)
	if e.refs == 0 {
		delete(c.byRegion, e.region)
		c.submitUndeclare(c.core, e.region)
	}
}

// evict retires unreferenced entries while the cache exceeds its entry
// capacity or byte budget, choosing victims through the configured
// Evictor (paper §3.2: "when the number of regions becomes too high, the
// least recently used ones are undeclared").
func (c *Cache) evict() {
	for c.overBudget() {
		var victim *cacheEntry
		for _, e := range c.entries {
			if e.refs > 0 || e.region.InUse() {
				continue
			}
			if victim == nil {
				victim = e
				continue
			}
			ec := EvictCandidate{Bytes: e.bytes, LastUse: e.lastUse}
			vc := EvictCandidate{Bytes: victim.bytes, LastUse: victim.lastUse}
			if c.evictor.Better(ec, vc) ||
				(!c.evictor.Better(vc, ec) && e.region.id < victim.region.id) {
				victim = e
			}
		}
		if victim == nil {
			return // everything referenced; stay over budget
		}
		c.stats.Evictions++
		c.retire(victim)
	}
}

func (c *Cache) overBudget() bool {
	if len(c.entries) > c.cfg.Capacity {
		return true
	}
	return c.cfg.ByteCapacity > 0 && c.bytes > c.cfg.ByteCapacity
}

// ---- interval index ----

// attach inserts an entry into the exact map and, for single-segment
// entries, the interval index.
func (c *Cache) attach(e *cacheEntry) {
	// Defense in depth: never silently overwrite an entry under the same
	// key (its bytes and byRegion tracking would leak) — retire it.
	if old, ok := c.entries[e.key]; ok {
		c.retire(old)
	}
	c.entries[e.key] = e
	c.bytes += e.bytes
	if !e.single {
		return
	}
	i := sort.Search(len(c.idx), func(i int) bool {
		if c.idx[i].segStart != e.segStart {
			return c.idx[i].segStart > e.segStart
		}
		return c.idx[i].region.id > e.region.id
	})
	c.idx = append(c.idx, nil)
	copy(c.idx[i+1:], c.idx[i:])
	c.idx[i] = e
	c.rebuildMaxEnd()
}

// detach removes an entry from the exact map and interval index, marking
// it detached; the caller decides whether to undeclare now (refs == 0) or
// let Put drain it.
func (c *Cache) detach(e *cacheEntry) {
	if e.detached {
		return
	}
	delete(c.entries, e.key)
	c.bytes -= e.bytes
	e.detached = true
	if !e.single {
		return
	}
	for i, x := range c.idx {
		if x == e {
			c.idx = append(c.idx[:i], c.idx[i+1:]...)
			break
		}
	}
	c.rebuildMaxEnd()
}

// rebuildMaxEnd refreshes the running-maximum augmentation after an index
// mutation. O(n), bounded by the cache capacity.
func (c *Cache) rebuildMaxEnd() {
	c.maxEnd = c.maxEnd[:0]
	var max vm.Addr
	for _, e := range c.idx {
		if e.segEnd > max {
			max = e.segEnd
		}
		c.maxEnd = append(c.maxEnd, max)
	}
}

// covering returns an attached single-segment entry whose byte span
// covers [a, a+l), or nil. The scan walks left from the rightmost entry
// starting at or before a, stopping as soon as the running maximum end
// proves nothing further left can reach the range.
func (c *Cache) covering(a vm.Addr, l int) *cacheEntry {
	b := a + vm.Addr(l)
	i := sort.Search(len(c.idx), func(i int) bool { return c.idx[i].segStart > a }) - 1
	for ; i >= 0; i-- {
		if c.maxEnd[i] < b {
			return nil // no entry at or left of i ends late enough
		}
		if c.idx[i].segEnd >= b {
			return c.idx[i]
		}
	}
	return nil
}

// overlapping returns the attached single-segment entries whose byte
// spans intersect [a, b), in index order.
func (c *Cache) overlapping(a, b vm.Addr) []*cacheEntry {
	var out []*cacheEntry
	hi := sort.Search(len(c.idx), func(i int) bool { return c.idx[i].segStart >= b })
	for j := hi - 1; j >= 0; j-- {
		if c.maxEnd[j] <= a {
			break
		}
		if c.idx[j].segEnd > a {
			out = append(out, c.idx[j])
		}
	}
	// Restore ascending order (collected right-to-left).
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// emit records a cache trace event through the manager's recorder.
func (c *Cache) emit(k trace.Kind, seq uint64, a int) {
	if c.mgr.Trace == nil {
		return
	}
	c.mgr.Trace.Emit(trace.Event{T: c.eng.Now(), Kind: k, Node: c.mgr.TraceNode, Seq: seq, A: a})
}
