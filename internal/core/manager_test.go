package core

import (
	"bytes"
	"testing"

	"omxsim/internal/cpu"
	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

type harness struct {
	eng     *sim.Engine
	as      *vm.AddressSpace
	al      *vm.Allocator
	machine *cpu.Machine
	core    *cpu.Core
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	eng := sim.NewEngine(3)
	as := vm.NewAddressSpace(1, vm.NewPhysMem(0))
	al, err := vm.NewAllocator(as, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.NewMachine(eng, cpu.XeonE5460)
	return &harness{eng: eng, as: as, al: al, machine: m, core: m.Core(0)}
}

func (h *harness) manager(cfg ManagerConfig) *Manager {
	return NewManager(h.eng, h.as, h.core, cfg)
}

func (h *harness) buf(t *testing.T, size int) vm.Addr {
	t.Helper()
	a, err := h.al.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDeclareDoesNotPin(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	addr := h.buf(t, 1<<20)
	r, err := m.Declare([]Segment{{addr, 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	h.eng.Run()
	if r.Pinned() || r.PinnedPages() != 0 || m.PinnedPages() != 0 {
		t.Fatal("declare pinned pages under OnDemand")
	}
	if r.Pages() != 256 || r.Bytes() != 1<<20 {
		t.Fatalf("pages=%d bytes=%d", r.Pages(), r.Bytes())
	}
}

func TestPermanentPinsAtDeclare(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: Permanent})
	addr := h.buf(t, 256*1024)
	r, err := m.Declare([]Segment{{addr, 256 * 1024}})
	if err != nil {
		t.Fatal(err)
	}
	h.eng.Run()
	if !r.Pinned() || m.PinnedPages() != 64 {
		t.Fatalf("pinned=%v total=%d, want pinned 64 pages", r.Pinned(), m.PinnedPages())
	}
}

func TestAcquirePinsOnDemandAndStaysPinned(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	addr := h.buf(t, 512*1024)
	r, _ := m.Declare([]Segment{{addr, 512 * 1024}})
	var errs []error
	done := m.Acquire(r)
	done.OnDone(h.eng, func() { errs = append(errs, done.Err()) })
	h.eng.Run()
	if len(errs) != 1 || errs[0] != nil {
		t.Fatalf("acquire errs = %v", errs)
	}
	if !r.Pinned() {
		t.Fatal("region not pinned after acquire")
	}
	m.Release(r)
	h.eng.Run()
	if !r.Pinned() {
		t.Fatal("OnDemand region unpinned at release; must stay pinned")
	}
	// Second acquire is a pin-cache hit.
	m.Acquire(r)
	h.eng.Run()
	if m.Stats().AcquiresPinned != 1 {
		t.Fatalf("AcquiresPinned = %d, want 1", m.Stats().AcquiresPinned)
	}
}

func TestPinEachCommUnpinsAtRelease(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: PinEachComm})
	addr := h.buf(t, 256*1024)
	r, _ := m.Declare([]Segment{{addr, 256 * 1024}})
	m.Acquire(r)
	h.eng.Run()
	if !r.Pinned() {
		t.Fatal("not pinned after acquire")
	}
	m.Release(r)
	h.eng.Run()
	if r.Pinned() || m.PinnedPages() != 0 {
		t.Fatal("PinEachComm left pages pinned after release")
	}
	st := m.Stats()
	if st.PinOps != 1 || st.UnpinOps != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPinCostChargedOnCore(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	addr := h.buf(t, 1<<20) // 256 pages
	r, _ := m.Declare([]Segment{{addr, 1 << 20}})
	m.Acquire(r)
	h.eng.Run()
	want := cpu.XeonE5460.PinCost(256)
	got := h.core.BusyTime(cpu.Kernel)
	// Chunked rounding may add a few ns.
	if got < want-100 || got > want+100 {
		t.Fatalf("kernel busy time = %v, want ~%v", got, want)
	}
}

func TestOverlappedPinProgressesInChunks(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: Overlapped, PinChunkPages: 32})
	addr := h.buf(t, 1<<20) // 256 pages
	r, _ := m.Declare([]Segment{{addr, 1 << 20}})
	if Overlapped.WaitBeforeUse() {
		t.Fatal("Overlapped must not wait before use")
	}
	m.Acquire(r)
	var progress []int
	// Sample the cursor as the pin advances.
	var sample func()
	sample = func() {
		progress = append(progress, r.PinnedPages())
		if !r.Pinned() {
			h.eng.After(2*sim.Microsecond, sample)
		}
	}
	h.eng.After(0, sample)
	h.eng.Run()
	if !r.Pinned() {
		t.Fatal("overlapped pin never completed")
	}
	// Cursor must be monotone and hit intermediate values (not 0 -> 256).
	sawPartial := false
	for i := 1; i < len(progress); i++ {
		if progress[i] < progress[i-1] {
			t.Fatal("pin cursor went backwards")
		}
		if progress[i] > 0 && progress[i] < 256 {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatalf("never observed partial pin progress: %v", progress)
	}
}

func TestReadyTracksPinnedPrefix(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: Overlapped, PinChunkPages: 16})
	addr := h.buf(t, 256*1024) // 64 pages
	r, _ := m.Declare([]Segment{{addr, 256 * 1024}})
	m.Acquire(r)
	checked := false
	var check func()
	check = func() {
		pp := r.PinnedPages()
		if pp > 0 && pp < 64 {
			if !r.Ready(0, pp*vm.PageSize) {
				t.Errorf("prefix of %d pages not Ready", pp)
			}
			if r.Ready(0, (pp+1)*vm.PageSize) {
				t.Errorf("range beyond %d pinned pages reported Ready", pp)
			}
			checked = true
		}
		if !r.Pinned() {
			h.eng.After(sim.Microsecond, check)
		}
	}
	h.eng.After(0, check)
	h.eng.Run()
	if !checked {
		t.Fatal("never sampled a partial state")
	}
	if !r.Ready(0, 256*1024) {
		t.Fatal("fully pinned region not Ready")
	}
}

func TestPinFailsOnInvalidSegmentAtAcquireTime(t *testing.T) {
	// Paper §3.1: declaring an invalid region succeeds; pinning fails at
	// communication time and the request aborts.
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	r, err := m.Declare([]Segment{{0xdead0000, 64 * 1024}})
	if err != nil {
		t.Fatalf("declare of invalid region failed: %v", err)
	}
	done := m.Acquire(r)
	h.eng.Run()
	if done.Err() == nil {
		t.Fatal("acquire of invalid region succeeded")
	}
	if m.Stats().PinFailures != 1 {
		t.Fatal("pin failure not counted")
	}
	if m.PinnedPages() != 0 {
		t.Fatal("partial pin leaked")
	}
}

func TestNotifierUnpinsOnFree(t *testing.T) {
	// The paper's Figure 3 scenario: malloc, communicate (pin), free
	// (invalidate -> unpin), malloc again (same buffer), communicate
	// (repin).
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	addr := h.buf(t, 1<<20)
	r, _ := m.Declare([]Segment{{addr, 1 << 20}})
	m.Acquire(r)
	h.eng.Run()
	m.Release(r)
	if err := h.al.Free(addr); err != nil {
		t.Fatal(err)
	}
	h.eng.Run()
	if r.Pinned() || m.PinnedPages() != 0 {
		t.Fatal("region still pinned after free/invalidate")
	}
	if m.Stats().InvalidateHits != 1 {
		t.Fatalf("InvalidateHits = %d, want 1", m.Stats().InvalidateHits)
	}
	// Realloc lands at the same address; the still-declared region repins.
	addr2 := h.buf(t, 1<<20)
	if addr2 != addr {
		t.Fatalf("allocator did not reuse address: %#x vs %#x", uint64(addr2), uint64(addr))
	}
	done := m.Acquire(r)
	h.eng.Run()
	if done.Err() != nil {
		t.Fatalf("repin after realloc failed: %v", done.Err())
	}
	if !r.Pinned() {
		t.Fatal("region not repinned")
	}
	if m.Stats().Repins != 1 {
		t.Fatalf("Repins = %d, want 1", m.Stats().Repins)
	}
}

func TestInvalidateDuringOverlappedPinAbortsWaiters(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: Overlapped, PinChunkPages: 8})
	addr := h.buf(t, 1<<20)
	r, _ := m.Declare([]Segment{{addr, 1 << 20}})
	done := m.Acquire(r)
	// Free the buffer mid-pin.
	h.eng.After(5*sim.Microsecond, func() {
		m.Release(r)
		if err := h.al.Free(addr); err != nil {
			t.Errorf("free: %v", err)
		}
	})
	h.eng.Run()
	if done.Err() == nil {
		t.Fatal("waiter succeeded despite invalidation mid-pin")
	}
	if m.PinnedPages() != 0 {
		t.Fatalf("pinned pages leaked: %d", m.PinnedPages())
	}
	if r.Pinned() {
		t.Fatal("region pinned after invalidation")
	}
}

func TestPinnedPageLimitEvictsLRU(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand, PinnedPageLimit: 100})
	a1 := h.buf(t, 256*1024) // 64 pages
	a2 := h.buf(t, 256*1024) // 64 pages
	r1, _ := m.Declare([]Segment{{a1, 256 * 1024}})
	r2, _ := m.Declare([]Segment{{a2, 256 * 1024}})
	m.Acquire(r1)
	h.eng.Run()
	m.Release(r1)
	m.Acquire(r2)
	h.eng.Run()
	if r1.Pinned() {
		t.Fatal("LRU region r1 still pinned despite limit")
	}
	if !r2.Pinned() {
		t.Fatal("r2 not pinned")
	}
	if m.PinnedPages() > 100 {
		t.Fatalf("pinned total %d exceeds limit", m.PinnedPages())
	}
	if m.Stats().LRUUnpins == 0 {
		t.Fatal("LRU unpin not counted")
	}
	// r1 remains declared and repins on next use.
	m.Release(r2)
	done := m.Acquire(r1)
	h.eng.Run()
	if done.Err() != nil || !r1.Pinned() {
		t.Fatal("r1 did not repin after LRU eviction")
	}
}

func TestActiveRegionsNeverEvicted(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand, PinnedPageLimit: 100})
	a1 := h.buf(t, 256*1024)
	a2 := h.buf(t, 256*1024)
	r1, _ := m.Declare([]Segment{{a1, 256 * 1024}})
	r2, _ := m.Declare([]Segment{{a2, 256 * 1024}})
	m.Acquire(r1) // stays in use
	h.eng.Run()
	m.Acquire(r2)
	h.eng.Run()
	if !r1.Pinned() || !r2.Pinned() {
		t.Fatal("active regions must both stay pinned (limit exceeded by necessity)")
	}
	if m.PinnedPages() != 128 {
		t.Fatalf("pinned = %d, want 128", m.PinnedPages())
	}
}

func TestRegionDataAccessThroughPins(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	addr := h.buf(t, 64*1024)
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	if err := h.as.Write(addr, payload); err != nil {
		t.Fatal(err)
	}
	r, _ := m.Declare([]Segment{{addr, 64 * 1024}})
	m.Acquire(r)
	h.eng.Run()
	got := make([]byte, 64*1024)
	if err := r.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("ReadAt mismatch")
	}
	// Device write lands in the app's virtual view.
	if err := r.WriteAt(1000, []byte("dma-landed")); err != nil {
		t.Fatal(err)
	}
	check := make([]byte, 10)
	h.as.Read(addr+1000, check)
	if string(check) != "dma-landed" {
		t.Fatalf("app sees %q", check)
	}
}

func TestVectorialRegion(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	a1 := h.buf(t, 8192)
	a2 := h.buf(t, 12*1024)
	// Unaligned sub-ranges of two separate buffers.
	segs := []Segment{{a1 + 100, 5000}, {a2 + 3, 10000}}
	r, err := m.Declare(segs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes() != 15000 {
		t.Fatalf("bytes = %d", r.Bytes())
	}
	m.Acquire(r)
	h.eng.Run()
	if !r.Pinned() {
		t.Fatal("vectorial region not pinned")
	}
	data := make([]byte, 15000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if err := r.WriteAt(0, data); err != nil {
		t.Fatal(err)
	}
	// First segment bytes land in buffer 1, rest in buffer 2.
	g1 := make([]byte, 5000)
	h.as.Read(a1+100, g1)
	g2 := make([]byte, 10000)
	h.as.Read(a2+3, g2)
	if !bytes.Equal(g1, data[:5000]) || !bytes.Equal(g2, data[5000:]) {
		t.Fatal("vectorial write did not land in the right segments")
	}
	got := make([]byte, 15000)
	if err := r.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("vectorial read-back mismatch")
	}
}

func TestUndeclareBusyRegionFails(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	addr := h.buf(t, 128*1024)
	r, _ := m.Declare([]Segment{{addr, 128 * 1024}})
	m.Acquire(r)
	h.eng.Run()
	if err := m.Undeclare(r); err != ErrRegionBusy {
		t.Fatalf("err = %v, want ErrRegionBusy", err)
	}
	m.Release(r)
	if err := m.Undeclare(r); err != nil {
		t.Fatalf("undeclare after release: %v", err)
	}
	if m.NumRegions() != 0 {
		t.Fatal("region not removed")
	}
	if err := m.Undeclare(r); err != ErrUnknownRegion {
		t.Fatalf("double undeclare err = %v", err)
	}
}

func TestDeclareValidation(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	if _, err := m.Declare(nil); err == nil {
		t.Fatal("empty declare succeeded")
	}
	segs := make([]Segment, MaxSegments+1)
	for i := range segs {
		segs[i] = Segment{vm.Addr(0x1000 * (i + 1)), 10}
	}
	if _, err := m.Declare(segs); err == nil {
		t.Fatal("oversegmented declare succeeded")
	}
	if _, err := m.Declare([]Segment{{0x1000, 0}}); err == nil {
		t.Fatal("zero-length segment accepted")
	}
}

func TestCloseUnpinsEverything(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: Permanent})
	addr := h.buf(t, 256*1024)
	m.Declare([]Segment{{addr, 256 * 1024}})
	h.eng.Run()
	if m.PinnedPages() == 0 {
		t.Fatal("setup: nothing pinned")
	}
	m.Close()
	if m.PinnedPages() != 0 {
		t.Fatal("Close left pages pinned")
	}
	// Notifier detached: a free must not touch the (gone) manager.
	if err := h.al.Free(addr); err != nil {
		t.Fatal(err)
	}
	h.eng.Run()
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	addr := h.buf(t, 4096)
	r, _ := m.Declare([]Segment{{addr, 4096}})
	defer func() {
		if recover() == nil {
			t.Error("Release without Acquire did not panic")
		}
	}()
	m.Release(r)
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[PinPolicy]string{
		PinEachComm: "pin-each-comm",
		Permanent:   "permanent",
		OnDemand:    "on-demand",
		Overlapped:  "overlapped",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestForkDoesNotDisturbPinnedRegion(t *testing.T) {
	// Fork copies pinned pages eagerly, so a pinned region's frames (the
	// device's DMA targets) survive a fork untouched and no invalidation
	// fires — while writes to COW-shared unpinned pages still notify.
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	addr := h.buf(t, 256*1024)
	other := h.buf(t, 4096)
	h.as.Write(other, []byte("x"))
	r, _ := m.Declare([]Segment{{addr, 256 * 1024}})
	m.Acquire(r)
	h.eng.Run()
	if !r.Pinned() {
		t.Fatal("setup: not pinned")
	}
	if _, err := h.as.Fork(2); err != nil {
		t.Fatal(err)
	}
	if m.Stats().InvalidateHits != 0 {
		t.Fatal("fork invalidated a pinned region")
	}
	// Writing the region through the app still works (pinned pages stayed
	// writable in the parent).
	if err := h.as.Write(addr, []byte("post-fork write")); err != nil {
		t.Fatal(err)
	}
	if h.as.COWBreaks() != 0 {
		t.Fatal("write to pinned page broke COW")
	}
	// Writing the unpinned COW-shared page fires the notifier path.
	if err := h.as.Write(other, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if h.as.COWBreaks() != 1 {
		t.Fatal("unpinned COW page did not duplicate")
	}
	if !r.Pinned() {
		t.Fatal("region lost its pins")
	}
	m.Release(r)
}
