package core

import (
	"math/rand"
	"testing"

	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// TestCacheContractRandomized drives a long random interleaving of
// Get/Put, subrange requests, evict pressure, and free/realloc churn
// through the cache and checks the contract at quiescence:
//
//   - every lookup lands in exactly one of hit/subrange/miss/coalesced;
//   - references balance: once every Get is Put, every surviving
//     declaration is an attached cache entry (nothing detached leaks);
//   - the byte budget holds once nothing is referenced;
//   - the cache never returns a declaration over an unmapped range.
func TestCacheContractRandomized(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{Capacity: 8, ByteCapacity: 4 << 20})
	rng := rand.New(rand.NewSource(42))

	const nbufs = 5
	const bufSize = 1 << 20
	bufs := make([]vm.Addr, nbufs)
	for i := range bufs {
		bufs[i] = h.buf(t, bufSize)
	}

	gets := 0
	h.eng.Go("app", func(p *sim.Proc) {
		type held struct {
			r   *Region
			buf int
		}
		var out []held
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // Get a random subrange of a random buffer
				b := rng.Intn(nbufs)
				off := rng.Intn(bufSize - 4096)
				l := 1 + rng.Intn(bufSize-off-1)
				r, err := c.Get(p, []Segment{{bufs[b] + vm.Addr(off), l}})
				if err != nil {
					t.Errorf("step %d: get: %v", step, err)
					return
				}
				gets++
				out = append(out, held{r, b})
			case op < 8: // Put a random outstanding region
				if len(out) == 0 {
					continue
				}
				i := rng.Intn(len(out))
				c.Put(out[i].r)
				out = append(out[:i], out[i+1:]...)
			default: // free + re-malloc a buffer (the churn case)
				b := rng.Intn(nbufs)
				// Drop outstanding references on it first so the entry
				// detach path and the in-use path both get exercised over
				// the run (some frees land with refs held).
				if rng.Intn(2) == 0 {
					kept := out[:0]
					for _, o := range out {
						if o.buf == b {
							c.Put(o.r)
						} else {
							kept = append(kept, o)
						}
					}
					out = kept
				}
				if err := h.al.Free(bufs[b]); err != nil {
					t.Errorf("step %d: free: %v", step, err)
					return
				}
				p.Yield()
				a, err := h.al.Malloc(bufSize)
				if err != nil {
					t.Errorf("step %d: malloc: %v", step, err)
					return
				}
				bufs[b] = a
			}
		}
		for _, o := range out {
			c.Put(o.r)
		}
	})
	h.eng.Run()

	st := c.Stats()
	if got := st.Lookups(); got != uint64(gets) {
		t.Errorf("lookup accounting: hits %d + subrange %d + misses %d + coalesced %d = %d, want %d gets",
			st.Hits, st.SubrangeHits, st.Misses, st.Coalesced, got, gets)
	}
	if m.NumRegions() != c.Len() {
		t.Errorf("ref balance: %d declared regions vs %d cached entries — detached declarations leaked",
			m.NumRegions(), c.Len())
	}
	if c.Bytes() > 4<<20 {
		t.Errorf("byte budget violated at quiescence: %d > %d", c.Bytes(), 4<<20)
	}
	// Every surviving cached declaration must still name a live mapping —
	// a cached entry over an unmapped range is exactly the staleness bug.
	for _, e := range c.entries {
		for _, s := range e.region.Segments() {
			if !h.as.Mapped(s.Addr, s.Len) {
				t.Errorf("stale cache entry over unmapped range [%#x,+%d)", uint64(s.Addr), s.Len)
			}
		}
	}
	if st.Misses == 0 || st.Evictions == 0 || st.Invalidations == 0 {
		t.Errorf("run not representative: stats = %+v", st)
	}
}

// TestCacheContractStatsConsistent checks the per-entry invariants the
// eviction loop relies on: attached bytes equal the sum of entries, and
// no attached entry is marked detached.
func TestCacheContractStatsConsistent(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{Capacity: 4})
	bufs := []vm.Addr{h.buf(t, 256*1024), h.buf(t, 512*1024), h.buf(t, 1<<20)}
	h.eng.Go("app", func(p *sim.Proc) {
		for round := 0; round < 3; round++ {
			for _, a := range bufs {
				r, _ := c.Get(p, []Segment{{a, 128 * 1024}})
				c.Put(r)
			}
		}
	})
	h.eng.Run()
	sum := 0
	for _, e := range c.entries {
		if e.detached {
			t.Errorf("attached entry marked detached")
		}
		sum += e.bytes
	}
	if sum != c.Bytes() {
		t.Errorf("bytes accounting: sum of entries %d != tracked %d", sum, c.Bytes())
	}
	if len(c.byRegion) < len(c.entries) {
		t.Errorf("byRegion %d < entries %d", len(c.byRegion), len(c.entries))
	}
}
