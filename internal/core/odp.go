package core

import (
	"omxsim/internal/cpu"
	"omxsim/internal/sim"
	"omxsim/internal/trace"
	"omxsim/internal/vm"
)

// odpFaultLatency is the device→host page-request round trip (the PCIe
// PRI/ATS handshake an ODP-capable NIC performs) charged before the
// kernel's fault service for a batch of pages begins.
const odpFaultLatency = 3 * sim.Microsecond

// odpFault services an ODP page request: the NIC hit non-resident pages
// of region r (region page indexes in pages) and dropped the packet;
// the host now faults those pages in as kernel work on the manager's
// core. Pages with a request already in flight are not requested twice.
// The NIC side retries through the protocol's existing miss/re-request
// machinery — by the time it does, the pages are resident.
//
// The cost model mirrors pinning's page-walk half: the same per-page
// get_user_pages-style walk runs, minus the pin bookkeeping — which is
// exactly NP-RDMA's claim that ODP trades pin syscalls for fault
// round trips.
func (m *Manager) odpFault(r *Region, pages []int) {
	if r.odpPending == nil {
		r.odpPending = make(map[int]struct{})
	}
	var fresh []int
	for _, p := range pages {
		if _, inflight := r.odpPending[p]; inflight {
			continue
		}
		r.odpPending[p] = struct{}{}
		fresh = append(fresh, p)
	}
	if len(fresh) == 0 {
		return
	}
	cost := odpFaultLatency + sim.Duration(len(fresh))*perPagePin(m.spec)
	m.core.Submit(cpu.Kernel, cost, func() {
		for _, p := range fresh {
			delete(r.odpPending, p)
		}
		if _, live := m.regions[r.id]; !live {
			return // undeclared while the request was in flight
		}
		// Service the batch one contiguous run at a time (fresh is
		// ascending; consecutive region pages are virtually contiguous
		// within a segment). A read fault suffices for residency; a
		// device write through the live page table breaks COW at access
		// time, like any store. Unmapped pages (the buffer was freed)
		// stay missing; the transfer aborts through the unmap notifier.
		materialized := 0
		for i := 0; i < len(fresh); {
			si, pi := r.locatePageFrom(fresh[i])
			segRem := r.segPin[si].pages - pi
			j := i + 1
			for j < len(fresh) && fresh[j] == fresh[j-1]+1 && fresh[j]-fresh[i] < segRem {
				j++
			}
			addr := vm.PageAlignDown(r.segs[si].Addr) + vm.Addr(pi)<<vm.PageShift
			// An unmapped hole mid-run is tolerated: the pages faulted
			// before it still count, the rest stay missing.
			n, _ := m.as.Populate(addr, fresh[j-1]-fresh[i]+1)
			materialized += n
			i = j
		}
		m.stats.ODPFaults++
		m.stats.ODPFaultPages += uint64(materialized)
		m.emit(trace.OdpFault, uint64(r.id), materialized, len(fresh))
	})
}
