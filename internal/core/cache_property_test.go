package core

import (
	"math/rand"
	"sort"
	"testing"

	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// indexHarness drives the interval index (attach/detach/covering/
// overlapping) directly with synthetic entries, mirroring every operation
// into a brute-force oracle.
type indexHarness struct {
	c      *Cache
	oracle []*cacheEntry
	nextID RegionID
}

func newIndexHarness(t *testing.T) *indexHarness {
	t.Helper()
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	// The index is pure data structure; no engine time is needed.
	return &indexHarness{c: cacheOn(h, m, CacheConfig{Capacity: 1 << 20})}
}

func (ih *indexHarness) insert(start vm.Addr, length int) *cacheEntry {
	ih.nextID++
	e := &cacheEntry{
		key:      key([]Segment{{start, length}}),
		region:   &Region{id: ih.nextID, segs: []Segment{{start, length}}},
		segStart: start,
		segEnd:   start + vm.Addr(length),
		single:   true,
		bytes:    length,
	}
	ih.c.attach(e)
	ih.oracle = append(ih.oracle, e)
	return e
}

func (ih *indexHarness) remove(e *cacheEntry) {
	ih.c.detach(e)
	for i, x := range ih.oracle {
		if x == e {
			ih.oracle = append(ih.oracle[:i], ih.oracle[i+1:]...)
			return
		}
	}
}

func (ih *indexHarness) oracleCovering(a vm.Addr, l int) []*cacheEntry {
	var out []*cacheEntry
	for _, e := range ih.oracle {
		if e.segStart <= a && a+vm.Addr(l) <= e.segEnd {
			out = append(out, e)
		}
	}
	return out
}

func (ih *indexHarness) oracleOverlapping(a, b vm.Addr) []*cacheEntry {
	var out []*cacheEntry
	for _, e := range ih.oracle {
		if e.segStart < b && a < e.segEnd {
			out = append(out, e)
		}
	}
	return out
}

func ids(es []*cacheEntry) []int {
	out := make([]int, len(es))
	for i, e := range es {
		out[i] = int(e.region.id)
	}
	sort.Ints(out)
	return out
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIntervalIndexProperty compares the augmented sorted interval index
// against a brute-force oracle over thousands of random insert, remove,
// coverage, and overlap operations — including entries that overlap each
// other and share start addresses.
func TestIntervalIndexProperty(t *testing.T) {
	ih := newIndexHarness(t)
	rng := rand.New(rand.NewSource(7))
	const space = 1 << 22 // 4 MiB of address space, page-ish granularity
	randRange := func() (vm.Addr, int) {
		start := vm.Addr(rng.Intn(space-8192)) &^ 0xff
		l := (1 + rng.Intn((space-int(start))/256)) * 256
		return start, l
	}

	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert
			if len(ih.oracle) < 64 {
				s, l := randRange()
				ih.insert(s, l)
			}
		case op < 6: // remove
			if len(ih.oracle) > 0 {
				ih.remove(ih.oracle[rng.Intn(len(ih.oracle))])
			}
		case op < 8: // coverage query
			a, l := randRange()
			got := ih.c.covering(a, l)
			want := ih.oracleCovering(a, l)
			if (got == nil) != (len(want) == 0) {
				t.Fatalf("step %d: covering(%#x,%d) = %v, oracle found %d candidates",
					step, uint64(a), l, got, len(want))
			}
			if got != nil && !(got.segStart <= a && a+vm.Addr(l) <= got.segEnd) {
				t.Fatalf("step %d: covering returned non-covering entry [%#x,%#x) for [%#x,+%d)",
					step, uint64(got.segStart), uint64(got.segEnd), uint64(a), l)
			}
		default: // overlap query
			a, l := randRange()
			got := ids(ih.c.overlapping(a, a+vm.Addr(l)))
			want := ids(ih.oracleOverlapping(a, a+vm.Addr(l)))
			if !equalIDs(got, want) {
				t.Fatalf("step %d: overlapping(%#x,+%d) = %v, oracle %v", step, uint64(a), l, got, want)
			}
		}
		// Structural invariants after every mutation.
		if len(ih.c.idx) != len(ih.c.maxEnd) {
			t.Fatalf("step %d: idx/maxEnd length mismatch", step)
		}
		var max vm.Addr
		for i, e := range ih.c.idx {
			if i > 0 && ih.c.idx[i-1].segStart > e.segStart {
				t.Fatalf("step %d: idx not sorted", step)
			}
			if e.segEnd > max {
				max = e.segEnd
			}
			if ih.c.maxEnd[i] != max {
				t.Fatalf("step %d: maxEnd[%d] = %#x, want %#x", step, i, uint64(ih.c.maxEnd[i]), uint64(max))
			}
		}
	}
}

// TestIntervalIndexOverlappingOrder pins that overlapping returns entries
// in ascending start order (merge relies on scanning them predictably).
func TestIntervalIndexOverlappingOrder(t *testing.T) {
	ih := newIndexHarness(t)
	ih.insert(0x3000, 0x1000)
	ih.insert(0x1000, 0x1000)
	ih.insert(0x2000, 0x2000)
	got := ih.c.overlapping(0x0, 0x10000)
	if len(got) != 3 {
		t.Fatalf("got %d entries", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].segStart > got[i].segStart {
			t.Fatalf("overlapping not in ascending start order")
		}
	}
}

// TestCacheDeterministicEviction runs the same eviction-heavy workload
// twice and requires identical stats — victim selection must not depend
// on map iteration order.
func TestCacheDeterministicEviction(t *testing.T) {
	run := func() (CacheStats, Stats) {
		h := newHarness(t)
		m := h.manager(ManagerConfig{Policy: OnDemand})
		c := cacheOn(h, m, CacheConfig{Capacity: 3})
		var bufs []vm.Addr
		for i := 0; i < 8; i++ {
			bufs = append(bufs, h.buf(t, 256*1024))
		}
		h.eng.Go("app", func(p *sim.Proc) {
			for round := 0; round < 3; round++ {
				for _, a := range bufs {
					r, _ := c.Get(p, []Segment{{a, 256 * 1024}})
					c.Put(r)
				}
			}
		})
		h.eng.Run()
		return c.Stats(), m.Stats()
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Fatalf("nondeterministic eviction:\n run1 cache=%+v mgr=%+v\n run2 cache=%+v mgr=%+v", c1, m1, c2, m2)
	}
}
