package core

import (
	"fmt"

	"omxsim/internal/cpu"
	"omxsim/internal/policy"
	"omxsim/internal/sim"
	"omxsim/internal/trace"
	"omxsim/internal/vm"
)

// ManagerConfig tunes the driver-side pinning engine.
type ManagerConfig struct {
	// Policy selects a built-in backend by enum; ignored when Backend is
	// set explicitly.
	Policy PinPolicy
	// Backend is the pinning strategy the manager consults. When nil it
	// is resolved from Policy through the internal/policy registry.
	Backend policy.Policy
	// PinnedPageLimit caps the total pages the manager keeps pinned; when a
	// pin would exceed it, least-recently-used idle regions are unpinned
	// first (paper §3.1: "if there are too many pinned pages ... it may
	// also request some unpinning"). 0 means unlimited.
	PinnedPageLimit int
	// PinChunkPages is the granularity of pin/unpin work on the core, so
	// bottom-half processing can interleave with a large pin. 0 lets the
	// backend choose (the driver default is 32 pages, 128 KiB).
	PinChunkPages int
}

// Stats counts the manager's activity.
type Stats struct {
	Declares         uint64
	Undeclares       uint64
	PinOps           uint64 // full-region pin completions
	UnpinOps         uint64 // full-region unpins
	PagesPinned      uint64
	PagesUnpinned    uint64
	Repins           uint64 // pins of a region previously invalidated
	InvalidateHits   uint64 // notifier callbacks overlapping declared regions
	LRUUnpins        uint64 // unpins forced by the pinned-page limit
	PinFailures      uint64
	AcquiresPinned   uint64 // acquires that found the region already pinned
	AcquiresUnpinned uint64
	SpeculativePins  uint64 // pins started with no communication waiting (declare/hint driven)
	ODPFaults        uint64 // ODP page-request rounds serviced for the NIC
	ODPFaultPages    uint64 // pages materialized by ODP fault service
}

// Manager is the driver-side pinning engine: it owns declared regions,
// executes pin/unpin work on a core at kernel priority, listens to MMU
// notifiers, and enforces the pinned-page limit. It implements vm.Notifier.
type Manager struct {
	eng  *sim.Engine
	as   *vm.AddressSpace
	core *cpu.Core
	spec cpu.Spec
	cfg  ManagerConfig
	pol  policy.Policy

	regions map[RegionID]*Region
	nextID  RegionID
	tick    int64

	// Trace, when non-nil, records pinning lifecycle events.
	Trace *trace.Recorder
	// TraceNode labels trace events with a host id.
	TraceNode int

	// OnInvalidateInUse, when non-nil, is called after an MMU-notifier
	// invalidation unpins a region that still has active users — i.e. the
	// application freed a buffer mid-communication. The protocol layer uses
	// it to abort the affected requests instead of retrying forever against
	// a mapping that no longer exists.
	OnInvalidateInUse func(*Region)

	// OnPinChurn, when non-nil, observes every pin/unpin page-count
	// change (pinned=true for pins). The chaos stress report buckets the
	// churn per interval through it.
	OnPinChurn func(pages int, pinned bool)

	pinnedTotal int // pages currently pinned across regions
	stats       Stats
}

// NewManager builds a manager for address space as, running pin work on
// core. It registers itself as an MMU notifier on as (the paper attaches
// the notifier when an endpoint is opened).
func NewManager(eng *sim.Engine, as *vm.AddressSpace, core *cpu.Core, cfg ManagerConfig) *Manager {
	if cfg.Backend == nil {
		cfg.Backend = cfg.Policy.Backend()
	}
	cfg.PinChunkPages = cfg.Backend.PinChunkPages(cfg.PinChunkPages)
	m := &Manager{
		eng:     eng,
		as:      as,
		core:    core,
		spec:    core.Spec(),
		cfg:     cfg,
		pol:     cfg.Backend,
		regions: make(map[RegionID]*Region),
	}
	as.RegisterNotifier(m)
	return m
}

// Close detaches the manager from the address space and unpins everything.
func (m *Manager) Close() {
	m.as.UnregisterNotifier(m)
	for _, r := range m.regions {
		m.unpinNow(r)
	}
	m.regions = make(map[RegionID]*Region)
}

// ReleaseAll drops every pin the manager holds without detaching it — the
// driver's crash path: pinned pages do not survive the instance, but the
// declarations do, so surviving regions repin on demand when the node
// restarts. Waiters on in-flight pins fail with ErrPinFailed.
func (m *Manager) ReleaseAll() {
	for _, r := range m.regions {
		if r.state == stateUnpinned && r.pinnedPages == 0 {
			continue
		}
		err := fmt.Errorf("%w: pins released on crash", ErrPinFailed)
		m.failWaiters(r, err)
		m.failPrefixWaiters(r, err)
		m.unpinNow(r)
	}
}

// Policy returns the configured pin-policy enum value (the zero value
// when the manager was built from an explicit Backend).
func (m *Manager) Policy() PinPolicy { return m.cfg.Policy }

// Backend returns the policy backend the manager consults.
func (m *Manager) Backend() policy.Policy { return m.pol }

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats { return m.stats }

// PinnedPages reports the total pages currently pinned.
func (m *Manager) PinnedPages() int { return m.pinnedTotal }

// NumRegions reports the number of declared regions.
func (m *Manager) NumRegions() int { return len(m.regions) }

// Region looks up a declared region by descriptor.
func (m *Manager) Region(id RegionID) (*Region, bool) {
	r, ok := m.regions[id]
	return r, ok
}

// Declare registers a region without pinning it (except under the
// Permanent policy, which pins immediately). Declaration validates only the
// segment count and lengths — NOT the addresses: an invalid address is
// detected when pinning fails at communication time, aborting that request
// (paper §3.1).
func (m *Manager) Declare(segs []Segment) (*Region, error) {
	if len(segs) == 0 || len(segs) > MaxSegments {
		return nil, ErrTooManySegs
	}
	r := &Region{segs: make([]Segment, len(segs))}
	copy(r.segs, segs)
	for _, s := range segs {
		if s.Len <= 0 {
			return nil, fmt.Errorf("core: segment length %d: %w", s.Len, ErrTooManySegs)
		}
		pages := vm.PageCount(s.Addr, s.Len)
		r.segPin = append(r.segPin, segPin{pages: pages})
		r.bytes += s.Len
		r.pages += pages
	}
	r.as = m.as
	r.mgr = m
	r.noPin = m.pol.Access() != policy.AccessPinned
	r.odp = m.pol.Access() == policy.AccessODP
	m.nextID++
	r.id = m.nextID
	m.regions[r.id] = r
	m.stats.Declares++
	if m.pol.PinAtDeclare() && !r.noPin {
		m.startPin(r)
	}
	return r, nil
}

// Undeclare removes a region, unpinning it if needed. Regions with active
// users cannot be undeclared. Subrange views cannot be undeclared — only
// the base declaration can (the cache owns that lifecycle).
func (m *Manager) Undeclare(r *Region) error {
	if r.parent != nil {
		return fmt.Errorf("core: undeclare of a subrange view: %w", ErrUnknownRegion)
	}
	if _, ok := m.regions[r.id]; !ok {
		return ErrUnknownRegion
	}
	if r.useCount > 0 {
		return ErrRegionBusy
	}
	m.unpinNow(r)
	delete(m.regions, r.id)
	m.stats.Undeclares++
	return nil
}

// WaitBeforeUse reports whether communications under this policy must wait
// for the Acquire completion before touching the region (synchronous
// pinning) or may proceed immediately (overlapped). It is the complement
// of the backend's blocking-request OverlapTransfer answer.
func (p PinPolicy) WaitBeforeUse() bool { return !p.Backend().OverlapTransfer(true, false) }

// OnPinProgress registers fn to run once at least pages of r are pinned
// (immediately if they already are). If the pin fails or the region is
// invalidated first, fn receives the error. Used by the overlapped send
// path to delay the initiating message until a small prefix is pinned —
// the mitigation sketched in the paper's §4.3.
func (m *Manager) OnPinProgress(r *Region, pages int, fn func(error)) {
	if r.parent != nil {
		// Translate the view-relative threshold onto the parent's pin
		// cursor (which counts from the parent's first page).
		if pages > r.pages {
			pages = r.pages
		}
		m.OnPinProgress(r.parent, r.parentPageOff+pages, fn)
		return
	}
	if r.noPin {
		fn(nil)
		return
	}
	if pages > r.pages {
		pages = r.pages
	}
	if r.pinnedPages >= pages && (r.state == statePinned || r.state == statePinning) {
		fn(nil)
		return
	}
	if r.state == stateUnpinned {
		fn(fmt.Errorf("%w: region not being pinned", ErrPinFailed))
		return
	}
	r.prefixWaiters = append(r.prefixWaiters, prefixWaiter{epoch: r.epoch, pages: pages, done: fn})
}

// wakePrefixWaiters fires progress callbacks whose thresholds are reached.
func (m *Manager) wakePrefixWaiters(r *Region) {
	kept := r.prefixWaiters[:0]
	for _, w := range r.prefixWaiters {
		if w.epoch == r.epoch && r.pinnedPages >= w.pages {
			w.done(nil)
			continue
		}
		if w.epoch != r.epoch {
			w.done(fmt.Errorf("%w: invalidated during pin", ErrPinFailed))
			continue
		}
		kept = append(kept, w)
	}
	r.prefixWaiters = kept
}

// failPrefixWaiters errors out all pending progress callbacks.
func (m *Manager) failPrefixWaiters(r *Region, err error) {
	ws := r.prefixWaiters
	r.prefixWaiters = nil
	for _, w := range ws {
		w.done(err)
	}
}

// Acquire marks the region in use by a communication request and ensures
// pinning per the policy. The returned completion fires when the region is
// fully pinned (with an error if pinning failed). Under Overlapped the
// caller proceeds immediately and uses Region.Ready per access instead of
// waiting.
func (m *Manager) Acquire(r *Region) *sim.Completion {
	// A subrange view acquires its base declaration: pin state, use
	// counts, and LRU recency all live there.
	r = r.Base()
	m.tick++
	r.lastUse = m.tick
	r.useCount++
	done := &sim.Completion{}
	if r.noPin {
		// QsNet model: nothing to pin, ever.
		m.stats.AcquiresPinned++
		done.Complete(m.eng, nil)
		return done
	}
	switch r.state {
	case statePinned:
		m.stats.AcquiresPinned++
		done.Complete(m.eng, nil)
	case statePinning:
		m.stats.AcquiresUnpinned++
		r.waiters = append(r.waiters, pinWaiter{epoch: r.epoch, done: func(err error) {
			done.Complete(m.eng, err)
		}})
	case stateUnpinned:
		m.stats.AcquiresUnpinned++
		r.waiters = append(r.waiters, pinWaiter{epoch: r.epoch, done: func(err error) {
			done.Complete(m.eng, err)
		}})
		m.startPin(r)
	}
	return done
}

// Release drops a communication's reference. Backends with UnpinOnRelease
// (pin-each-comm) unpin once no users remain; the decoupled policies
// leave the region pinned for reuse.
func (m *Manager) Release(r *Region) {
	r = r.Base()
	if r.useCount <= 0 {
		panic("core: Release without Acquire")
	}
	r.useCount--
	if m.pol.UnpinOnRelease() && r.useCount == 0 {
		m.startUnpin(r)
	}
}

// startPin begins chunked pinning of r at kernel priority. All chunks are
// submitted upfront so they execute contiguously on the core, exactly like
// get_user_pages running in syscall context: later syscalls queue behind
// the whole pin, while bottom halves (higher priority) still interleave
// between chunks — which is what lets an interrupt flood starve pinning
// (paper §4.3).
func (m *Manager) startPin(r *Region) {
	if r.state != stateUnpinned {
		return
	}
	r.state = statePinning
	if r.invalidated {
		m.stats.Repins++
	}
	if r.useCount == 0 {
		// Nobody is waiting: this pin is speculation (permanent's
		// declare-time pin, pin-ahead's hint-driven pin).
		m.stats.SpeculativePins++
	}
	m.emit(trace.PinStart, uint64(r.id), r.pages, 0)
	epoch := r.epoch
	if r.pages == 0 {
		m.finishPin(r, nil)
		return
	}
	first := true
	for start := 0; start < r.pages; {
		si, pageInSeg := r.locatePageFrom(start)
		count := m.cfg.PinChunkPages
		if rem := r.pages - start; count > rem {
			count = rem
		}
		// Clamp the chunk at the segment boundary: one vm call per segment.
		if segRem := r.segPin[si].pages - pageInSeg; count > segRem {
			count = segRem
		}
		cost := sim.Duration(count) * perPagePin(m.spec)
		if first {
			cost += m.spec.PinCost(0) // base overhead charged once per pin
			first = false
		}
		segIdx, segPage, n := si, pageInSeg, count
		last := start+count >= r.pages
		m.core.Submit(cpu.Kernel, cost, func() {
			if r.epoch != epoch || r.state != statePinning {
				return // invalidated while the work was queued/running
			}
			m.evictForLimit(n, r)
			h, err := m.as.PinPages(r.segs[segIdx].Addr, segPage, n)
			if err != nil {
				m.finishPin(r, fmt.Errorf("%w: %v", ErrPinFailed, err))
				return
			}
			sp := &r.segPin[segIdx]
			sp.handles = append(sp.handles, h)
			sp.frames = append(sp.frames, h.Frames()...)
			r.pinnedPages += n
			m.pinnedTotal += n
			m.stats.PagesPinned += uint64(n)
			if m.OnPinChurn != nil {
				m.OnPinChurn(n, true)
			}
			m.wakePrefixWaiters(r)
			if last {
				m.finishPin(r, nil)
			}
		})
		start += count
	}
}

func perPagePin(spec cpu.Spec) sim.Duration {
	return spec.PinCost(1) - spec.PinCost(0)
}

func (m *Manager) finishPin(r *Region, err error) {
	if err != nil {
		m.stats.PinFailures++
		m.emit(trace.PinFail, uint64(r.id), r.pinnedPages, r.pages)
		m.failWaiters(r, err)
		m.failPrefixWaiters(r, err)
		// Roll back whatever was pinned so the region can be retried.
		m.unpinNow(r)
		return
	}
	r.state = statePinned
	m.stats.PinOps++
	m.emit(trace.PinDone, uint64(r.id), r.pages, 0)
	m.wakeReadyWaiters(r)
}

func (m *Manager) wakeReadyWaiters(r *Region) {
	if r.state != statePinned {
		return
	}
	ws := r.waiters
	r.waiters = nil
	for _, w := range ws {
		if w.epoch == r.epoch {
			w.done(nil)
		}
	}
}

func (m *Manager) failWaiters(r *Region, err error) {
	ws := r.waiters
	r.waiters = nil
	for _, w := range ws {
		w.done(err)
	}
}

// startUnpin schedules the unpin cost on the core, then drops the pins.
func (m *Manager) startUnpin(r *Region) {
	if r.state == stateUnpinned && r.pinnedPages == 0 {
		return
	}
	pages := r.pinnedPages
	epoch := r.epoch
	r.epoch++ // cancel in-flight pin chunks
	cost := m.spec.UnpinCost(pages)
	m.core.Submit(cpu.Kernel, cost, func() {
		// The region may have moved on while the unpin cost was queued: an
		// MMU-notifier invalidation already dropped the pins (advancing the
		// epoch past the one this unpin established) and a later Acquire
		// started a fresh pin, or a new communication re-acquired the
		// still-pinned region. Unpinning in either case would drop pins a
		// live request depends on — and the epoch bump in unpinNow would
		// cancel the in-flight repin chunks, wedging their waiters forever.
		if r.epoch != epoch+1 || r.useCount > 0 {
			return
		}
		m.unpinNow(r)
	})
}

// unpinNow synchronously drops every pin the region holds (state only; cost
// must have been charged by the caller where relevant).
func (m *Manager) unpinNow(r *Region) {
	dropped := 0
	for si := range r.segPin {
		sp := &r.segPin[si]
		for _, h := range sp.handles {
			dropped += h.NumPages()
			h.Unpin()
		}
		sp.handles = nil
		sp.frames = nil
	}
	if dropped > 0 {
		m.pinnedTotal -= dropped
		m.stats.PagesUnpinned += uint64(dropped)
		m.stats.UnpinOps++
		if m.OnPinChurn != nil {
			m.OnPinChurn(dropped, false)
		}
		m.emit(trace.Unpin, uint64(r.id), dropped, 0)
	}
	r.pinnedPages = 0
	r.state = stateUnpinned
	r.epoch++
}

// locatePageFrom maps a region page index to (segment index, page within
// segment).
func (r *Region) locatePageFrom(page int) (seg, pageInSeg int) {
	for si := range r.segPin {
		if page < r.segPin[si].pages {
			return si, page
		}
		page -= r.segPin[si].pages
	}
	panic(fmt.Sprintf("core: page index %d beyond region", page))
}

// evictForLimit unpins idle LRU regions until adding n pages respects the
// pinned-page limit. Active regions are never evicted; if only active
// regions remain the limit is exceeded (correctness over policy).
func (m *Manager) evictForLimit(n int, pinning *Region) {
	if m.cfg.PinnedPageLimit <= 0 {
		return
	}
	for m.pinnedTotal+n > m.cfg.PinnedPageLimit {
		var victim *Region
		for _, r := range m.regions {
			if r == pinning || r.useCount > 0 || r.pinnedPages == 0 {
				continue
			}
			if victim == nil || r.lastUse < victim.lastUse {
				victim = r
			}
		}
		if victim == nil {
			return
		}
		// Charge the unpin cost; the state change is immediate so the
		// accounting stays consistent with the decision just made.
		m.core.Submit(cpu.Kernel, m.spec.UnpinCost(victim.pinnedPages), nil)
		m.unpinNow(victim)
		m.stats.LRUUnpins++
	}
}

// InvalidateRange implements vm.Notifier: any region overlapping the
// invalidated range is unpinned immediately (the callback runs before the
// mapping changes, so the pins being dropped are still valid). The region
// stays declared and will be repinned at its next use (paper §3.1). The
// unpin CPU cost is charged at kernel priority on the manager's core — in
// Linux it executes in the context of the thread performing the unmap.
//
// Page-table-translated regions (no-pinning, ODP) hold no pins, but an
// unmap under an in-use region still kills the transfer: the live
// translation the NIC depends on is gone, so the affected requests abort
// through OnInvalidateInUse instead of retrying against a dead mapping.
func (m *Manager) InvalidateRange(nr vm.NotifierRange) {
	for _, r := range m.regions {
		if r.noPin {
			if nr.Reason == vm.InvalidateUnmap && r.useCount > 0 &&
				r.overlaps(nr.Start, nr.End) {
				m.stats.InvalidateHits++
				m.emit(trace.Invalidate, uint64(r.id), int(nr.Start), int(nr.End-nr.Start))
				if m.OnInvalidateInUse != nil {
					m.OnInvalidateInUse(r)
				}
			}
			continue
		}
		if r.pinnedPages == 0 && r.state != statePinning {
			continue
		}
		if !r.overlaps(nr.Start, nr.End) {
			continue
		}
		// Page-granular invalidations (COW break, swap-out, migration)
		// leave the mapping intact and, by construction, never touch a
		// pinned page — pinning is what exempts a page from them. They
		// only concern the driver if they hit the pinned prefix (which a
		// concurrent pin of the same range can race into); an invalidation
		// confined to the region's still-unpinned tail drops nothing the
		// driver holds, and get_user_pages simply faults those pages back
		// in when the pin cursor reaches them. An unmap kills the mapping
		// itself, so it always invalidates the declared region.
		if nr.Reason != vm.InvalidateUnmap && !r.pinnedOverlaps(nr.Start, nr.End) {
			continue
		}
		m.stats.InvalidateHits++
		m.emit(trace.Invalidate, uint64(r.id), int(nr.Start), int(nr.End-nr.Start))
		r.invalidated = true
		// Outstanding waiters see the pin fail: their communication aborts
		// rather than DMA-ing through a dying mapping.
		m.failWaiters(r, fmt.Errorf("%w: invalidated (%v)", ErrPinFailed, nr.Reason))
		m.failPrefixWaiters(r, fmt.Errorf("%w: invalidated (%v)", ErrPinFailed, nr.Reason))
		m.core.Submit(cpu.Kernel, m.spec.UnpinCost(r.pinnedPages), nil)
		m.unpinNow(r)
		if r.useCount > 0 && m.OnInvalidateInUse != nil {
			m.OnInvalidateInUse(r)
		}
	}
}

// emit records a trace event if a recorder is attached.
func (m *Manager) emit(k trace.Kind, seq uint64, a, b int) {
	if m.Trace == nil {
		return
	}
	m.Trace.Emit(trace.Event{T: m.eng.Now(), Kind: k, Node: m.TraceNode, Seq: seq, A: a, B: b})
}
