package core

import (
	"bytes"
	"testing"

	"omxsim/internal/policy"
)

// The policy contract: every registered backend — built-in or out-of-tree
// — must keep the driver's invariants. These tests iterate the policy
// registry, so a newly registered backend is covered without writing a
// line of test code (and a backend that breaks an invariant fails here
// before any scenario sees it).

// contractManager builds a manager driven by the backend directly,
// bypassing the enum, exactly like an out-of-tree plugin would.
func contractManager(h *harness, pol policy.Policy) *Manager {
	return NewManager(h.eng, h.as, h.core, ManagerConfig{Backend: pol})
}

// waitReady drains the engine until the range is Ready (ODP needs one
// round of fault service after the first Ready check raises the page
// request; pinned backends need the pin work to run).
func waitReady(t *testing.T, h *harness, r *Region, off, length int) {
	t.Helper()
	for i := 0; i < 10; i++ {
		if r.Ready(off, length) {
			return
		}
		h.eng.Run()
	}
	t.Fatalf("region never became Ready([%d,%d)): pinned %d/%d pages",
		off, off+length, r.PinnedPages(), r.Pages())
}

// TestPolicyContractAccounting: through a full declare → acquire → access
// → release → undeclare lifecycle, pin and unpin page counts balance and
// no page stays pinned after teardown.
func TestPolicyContractAccounting(t *testing.T) {
	for _, pol := range policy.All() {
		t.Run(pol.Name(), func(t *testing.T) {
			h := newHarness(t)
			m := contractManager(h, pol)
			const size = 1 << 20
			addr := h.buf(t, size)

			r, err := m.Declare([]Segment{{addr, size}})
			if err != nil {
				t.Fatal(err)
			}
			h.eng.Run()

			done := m.Acquire(r)
			h.eng.Run()
			if done.Err() != nil {
				t.Fatalf("acquire: %v", done.Err())
			}

			waitReady(t, h, r, 0, size)
			want := []byte("policy-contract")
			if err := r.WriteAt(4096, want); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(want))
			if err := r.ReadAt(4096, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("round trip: got %q", got)
			}

			m.Release(r)
			h.eng.Run()
			if err := m.Undeclare(r); err != nil {
				t.Fatal(err)
			}
			h.eng.Run()

			st := m.Stats()
			if m.PinnedPages() != 0 {
				t.Fatalf("pinned-page leak after teardown: %d", m.PinnedPages())
			}
			if st.PagesPinned != st.PagesUnpinned {
				t.Fatalf("accounting unbalanced: pinned %d, unpinned %d",
					st.PagesPinned, st.PagesUnpinned)
			}
			if pol.Access() != policy.AccessPinned && st.PagesPinned != 0 {
				t.Fatalf("page-table backend pinned %d pages", st.PagesPinned)
			}
		})
	}
}

// TestPolicyContractInvalidation: an MMU-notifier unmap under a declared,
// in-use region must leave no pins behind, and the protocol must be told
// (OnInvalidateInUse) so it aborts instead of DMA-ing a dead mapping.
func TestPolicyContractInvalidation(t *testing.T) {
	for _, pol := range policy.All() {
		t.Run(pol.Name(), func(t *testing.T) {
			h := newHarness(t)
			m := contractManager(h, pol)
			aborted := 0
			m.OnInvalidateInUse = func(*Region) { aborted++ }
			const size = 512 * 1024
			addr := h.buf(t, size)

			r, err := m.Declare([]Segment{{addr, size}})
			if err != nil {
				t.Fatal(err)
			}
			m.Acquire(r)
			h.eng.Run()
			waitReady(t, h, r, 0, size)
			pinnedBefore := m.PinnedPages()

			if err := h.al.Free(addr); err != nil {
				t.Fatal(err)
			}
			h.eng.Run()

			if m.PinnedPages() != 0 {
				t.Fatalf("stale pins after unmap notifier: %d", m.PinnedPages())
			}
			if pol.Access() == policy.AccessPinned {
				if pinnedBefore == 0 {
					t.Fatal("pinned backend held no pins before the unmap")
				}
				if m.Stats().InvalidateHits == 0 {
					t.Fatal("unmap notifier not counted")
				}
			}
			if aborted == 0 {
				t.Fatal("in-use region invalidated without aborting its users")
			}

			m.Release(r)
			h.eng.Run()
			if err := m.Undeclare(r); err != nil {
				t.Fatal(err)
			}
			h.eng.Run()
			st := m.Stats()
			if st.PagesPinned != st.PagesUnpinned {
				t.Fatalf("accounting unbalanced after invalidation: pinned %d, unpinned %d",
					st.PagesPinned, st.PagesUnpinned)
			}
		})
	}
}

// TestPolicyContractClose: Close with regions still declared (and even
// acquired) drops every pin — the endpoint-teardown path.
func TestPolicyContractClose(t *testing.T) {
	for _, pol := range policy.All() {
		t.Run(pol.Name(), func(t *testing.T) {
			h := newHarness(t)
			m := contractManager(h, pol)
			for i := 0; i < 2; i++ {
				addr := h.buf(t, 256*1024)
				r, err := m.Declare([]Segment{{addr, 256 * 1024}})
				if err != nil {
					t.Fatal(err)
				}
				m.Acquire(r)
			}
			h.eng.Run()
			m.Close()
			h.eng.Run()
			st := m.Stats()
			if m.PinnedPages() != 0 {
				t.Fatalf("pinned-page leak after Close: %d", m.PinnedPages())
			}
			if st.PagesPinned != st.PagesUnpinned {
				t.Fatalf("accounting unbalanced after Close: pinned %d, unpinned %d",
					st.PagesPinned, st.PagesUnpinned)
			}
		})
	}
}

// TestPolicyContractBehaviours pins down the decision matrix the built-in
// backends promise, so a refactor of the manager cannot silently flip
// one.
func TestPolicyContractBehaviours(t *testing.T) {
	cases := []struct {
		pol          PinPolicy
		access       policy.AccessMode
		pinAtDeclare bool
		wait         bool
		unpinRelease bool
	}{
		{PinEachComm, policy.AccessPinned, false, true, true},
		{Permanent, policy.AccessPinned, true, true, false},
		{OnDemand, policy.AccessPinned, false, true, false},
		{Overlapped, policy.AccessPinned, false, false, false},
		{NoPinning, policy.AccessPageTable, false, true, false},
		{NoPinODP, policy.AccessODP, false, true, false},
		{PinAhead, policy.AccessPinned, true, true, false},
	}
	for _, c := range cases {
		b := c.pol.Backend()
		if b.Name() != c.pol.String() {
			t.Errorf("%v: backend name %q", c.pol, b.Name())
		}
		if b.Access() != c.access {
			t.Errorf("%v: access %v, want %v", c.pol, b.Access(), c.access)
		}
		if b.PinAtDeclare() != c.pinAtDeclare {
			t.Errorf("%v: PinAtDeclare %v", c.pol, b.PinAtDeclare())
		}
		if c.pol.WaitBeforeUse() != c.wait {
			t.Errorf("%v: WaitBeforeUse %v", c.pol, c.pol.WaitBeforeUse())
		}
		if b.UnpinOnRelease() != c.unpinRelease {
			t.Errorf("%v: UnpinOnRelease %v", c.pol, b.UnpinOnRelease())
		}
	}
	if !PinAhead.Backend().RequiresCache() {
		t.Error("pin-ahead must require the region cache")
	}
	if Overlapped.Backend().OverlapTransfer(false, true) {
		t.Error("adaptive overlap must pin non-blocking requests synchronously")
	}
	if !Overlapped.Backend().OverlapTransfer(false, false) {
		t.Error("plain overlapped must overlap every request")
	}
}
