package core

import (
	"testing"

	"omxsim/internal/vm"
)

// TestUnpinSkippedWhenReacquired: under PinEachComm a Release schedules the
// unpin as deferred kernel work. If a new communication acquires the region
// before that work executes, the stale closure must not drop the fresh
// user's pins.
func TestUnpinSkippedWhenReacquired(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: PinEachComm})
	addr := h.buf(t, 512*1024)
	r, err := m.Declare([]Segment{{addr, 512 * 1024}})
	if err != nil {
		t.Fatal(err)
	}
	done := m.Acquire(r)
	h.eng.Run()
	if done.Err() != nil || !r.Pinned() {
		t.Fatalf("initial pin failed: err=%v pinned=%v", done.Err(), r.Pinned())
	}
	m.Release(r) // schedules the deferred unpin
	done2 := m.Acquire(r)
	h.eng.Run()
	if done2.Err() != nil {
		t.Fatalf("re-acquire failed: %v", done2.Err())
	}
	if !r.Pinned() || r.PinnedPages() == 0 {
		t.Fatalf("stale scheduled unpin dropped a re-acquired region's pins (pinned=%v pages=%d)",
			r.Pinned(), r.PinnedPages())
	}
	m.Release(r)
	h.eng.Run()
	if r.Pinned() || m.PinnedPages() != 0 {
		t.Fatalf("final release left pages pinned: %d", m.PinnedPages())
	}
}

// TestStaleUnpinDoesNotCancelRepin: Release schedules an unpin, then an MMU
// notifier invalidates the region immediately (free/munmap path) and a new
// communication re-pins it. The stale unpin closure fires first in the
// kernel queue; without the epoch guard its unpinNow bumps the epoch and
// silently cancels every in-flight repin chunk, so the acquire never
// completes.
func TestStaleUnpinDoesNotCancelRepin(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: PinEachComm})
	addr := h.buf(t, 512*1024)
	r, err := m.Declare([]Segment{{addr, 512 * 1024}})
	if err != nil {
		t.Fatal(err)
	}
	done := m.Acquire(r)
	h.eng.Run()
	if done.Err() != nil {
		t.Fatal(done.Err())
	}
	m.Release(r) // deferred unpin queued at kernel priority
	m.InvalidateRange(vm.NotifierRange{Start: addr, End: addr + 512*1024, Reason: vm.InvalidateUnmap})
	if r.Pinned() {
		t.Fatal("invalidation should have unpinned synchronously")
	}
	done2 := m.Acquire(r) // repin races the stale unpin closure
	h.eng.Run()
	if !done2.Done() {
		t.Fatal("acquire never completed: stale unpin cancelled the repin chunks")
	}
	if done2.Err() != nil {
		t.Fatalf("repin failed: %v", done2.Err())
	}
	if !r.Pinned() || r.PinnedPages() != 128 {
		t.Fatalf("repinned region lost its pins: pinned=%v pages=%d", r.Pinned(), r.PinnedPages())
	}
	if m.Stats().Repins != 1 {
		t.Fatalf("repins=%d, want 1", m.Stats().Repins)
	}
	m.Release(r)
	h.eng.Run()
	if m.PinnedPages() != 0 {
		t.Fatalf("final release left %d pages pinned", m.PinnedPages())
	}
}
