package core

import (
	"testing"

	"omxsim/internal/sim"
	"omxsim/internal/vm"
)

// cacheOn builds an enabled cache with the given config defaults.
func cacheOn(h *harness, m *Manager, cfg CacheConfig) *Cache {
	cfg.Enabled = true
	return NewCache(h.eng, m, h.core, cfg)
}

func TestCacheHitReusesDeclaration(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{})
	addr := h.buf(t, 1<<20)
	segs := []Segment{{addr, 1 << 20}}
	var r1, r2 *Region
	h.eng.Go("app", func(p *sim.Proc) {
		var err error
		r1, err = c.Get(p, segs)
		if err != nil {
			t.Errorf("get1: %v", err)
		}
		c.Put(r1)
		r2, err = c.Get(p, segs)
		if err != nil {
			t.Errorf("get2: %v", err)
		}
		c.Put(r2)
	})
	h.eng.Run()
	if r1 != r2 {
		t.Fatal("cache did not reuse the declaration")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
	if m.Stats().Declares != 1 {
		t.Fatalf("driver saw %d declares, want 1", m.Stats().Declares)
	}
}

func TestCacheDisabledDeclaresEachTime(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: PinEachComm})
	c := NewCache(h.eng, m, h.core, CacheConfig{Enabled: false})
	addr := h.buf(t, 256*1024)
	segs := []Segment{{addr, 256 * 1024}}
	h.eng.Go("app", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			r, err := c.Get(p, segs)
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			done := m.Acquire(r)
			done.Wait(p)
			m.Release(r)
			c.Put(r)
		}
	})
	h.eng.Run()
	if m.Stats().Declares != 3 || m.Stats().Undeclares != 3 {
		t.Fatalf("declares/undeclares = %d/%d, want 3/3",
			m.Stats().Declares, m.Stats().Undeclares)
	}
	if m.NumRegions() != 0 {
		t.Fatal("regions leaked in no-cache mode")
	}
}

func TestCacheDistinctBuffersMissSubrangeHits(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{})
	a1 := h.buf(t, 256*1024)
	a2 := h.buf(t, 256*1024)
	h.eng.Go("app", func(p *sim.Proc) {
		r1, _ := c.Get(p, []Segment{{a1, 256 * 1024}})
		r2, _ := c.Get(p, []Segment{{a2, 256 * 1024}})
		// Same addr, shorter length: covered by r1's declaration — a
		// subrange hit served as a view, not a new declaration.
		r3, _ := c.Get(p, []Segment{{a1, 128 * 1024}})
		if r1 == r2 {
			t.Error("distinct buffers shared a region")
		}
		if !r3.IsView() || r3.Base() != r1 {
			t.Errorf("subrange request: IsView=%v Base==r1=%v", r3.IsView(), r3.Base() == r1)
		}
		if r3.Bytes() != 128*1024 {
			t.Errorf("view bytes = %d", r3.Bytes())
		}
		c.Put(r1)
		c.Put(r2)
		c.Put(r3)
	})
	h.eng.Run()
	if st := c.Stats(); st.Misses != 2 || st.SubrangeHits != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses 1 subrange hit", st)
	}
	if m.Stats().Declares != 2 {
		t.Fatalf("declares = %d, want 2", m.Stats().Declares)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{Capacity: 2})
	bufs := []vm.Addr{h.buf(t, 256*1024), h.buf(t, 256*1024), h.buf(t, 256*1024)}
	h.eng.Go("app", func(p *sim.Proc) {
		for _, a := range bufs {
			r, err := c.Get(p, []Segment{{a, 256 * 1024}})
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			c.Put(r)
		}
		// First buffer was evicted; getting it again is a miss.
		r, _ := c.Get(p, []Segment{{bufs[0], 256 * 1024}})
		c.Put(r)
	})
	h.eng.Run()
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite capacity 2 and 3 buffers")
	}
	if st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 4 misses (re-get after eviction misses)", st)
	}
	if c.Len() > 2 {
		t.Fatalf("cache len %d exceeds capacity", c.Len())
	}
	if m.NumRegions() != c.Len() {
		t.Fatalf("NumRegions %d != cached entries %d: evicted declarations leaked",
			m.NumRegions(), c.Len())
	}
}

func TestCacheReferencedEntriesNotEvicted(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{Capacity: 1})
	a1 := h.buf(t, 256*1024)
	a2 := h.buf(t, 256*1024)
	h.eng.Go("app", func(p *sim.Proc) {
		r1, _ := c.Get(p, []Segment{{a1, 256 * 1024}})
		// r1 still referenced: inserting r2 must not undeclare r1.
		r2, _ := c.Get(p, []Segment{{a2, 256 * 1024}})
		if _, ok := m.Region(r1.ID()); !ok {
			t.Error("referenced region was undeclared")
		}
		c.Put(r1)
		c.Put(r2)
	})
	h.eng.Run()
}

// TestCacheStaleRegionDroppedOnUnmap is the regression test for the
// stale-hit-after-munmap bug: the cache used to keep the entry across a
// free, so a re-malloc at the same address got the declaration over the
// dead mapping back. With the cache registered as an MMU notifier the
// unmap drops the entry, the re-get is a clean miss, and the fresh
// declaration pins the new mapping.
func TestCacheStaleRegionDroppedOnUnmap(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{})
	addr := h.buf(t, 1<<20)
	segs := []Segment{{addr, 1 << 20}}
	h.eng.Go("app", func(p *sim.Proc) {
		r, _ := c.Get(p, segs)
		m.Acquire(r).Wait(p)
		m.Release(r)
		c.Put(r)
		// Free + realloc (same address).
		if err := h.al.Free(addr); err != nil {
			t.Error(err)
		}
		p.Yield()
		addr2, _ := h.al.Malloc(1 << 20)
		if addr2 != addr {
			t.Error("address not reused")
		}
		r2, err := c.Get(p, segs)
		if err != nil {
			t.Errorf("re-get: %v", err)
			return
		}
		if r2 == r {
			t.Error("stale cache hit: got the declaration over the unmapped buffer back")
		}
		if err := m.Acquire(r2).Wait(p); err != nil {
			t.Errorf("pin of fresh declaration failed: %v", err)
		}
		if !r2.Pinned() {
			t.Error("fresh region not pinned")
		}
		m.Release(r2)
		c.Put(r2)
	})
	h.eng.Run()
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", st.Invalidations)
	}
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 0 hits 2 misses", st)
	}
	if m.Stats().PinFailures != 0 {
		t.Fatalf("PinFailures = %d: something pinned through the dead mapping", m.Stats().PinFailures)
	}
	// The dead declaration was undeclared; only the fresh one remains.
	if m.NumRegions() != 1 {
		t.Fatalf("NumRegions = %d, want 1", m.NumRegions())
	}
}

// TestCacheHitAfterDriverUnpin is the decoupling in action: a
// mapping-preserving invalidation (mprotect here) makes the driver unpin,
// but the mapping — and therefore the cached declaration — survives; the
// next use is a cache hit and the acquire repins transparently.
func TestCacheHitAfterDriverUnpin(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{})
	addr := h.buf(t, 1<<20)
	segs := []Segment{{addr, 1 << 20}}
	h.eng.Go("app", func(p *sim.Proc) {
		r, _ := c.Get(p, segs)
		m.Acquire(r).Wait(p)
		m.Release(r)
		c.Put(r)
		// Write-protect: the notifier rips the pins out, the mapping stays.
		if err := h.as.MProtect(addr, 1<<20, false); err != nil {
			t.Error(err)
		}
		if r.Pinned() {
			t.Error("region still pinned after mprotect invalidation")
		}
		r2, _ := c.Get(p, segs)
		if r2 != r {
			t.Error("cache missed after a mapping-preserving invalidation")
		}
		if err := m.Acquire(r2).Wait(p); err != nil {
			t.Errorf("repin failed: %v", err)
		}
		if !r2.Pinned() {
			t.Error("not repinned")
		}
		m.Release(r2)
		c.Put(r2)
	})
	h.eng.Run()
	if m.Stats().Repins != 1 {
		t.Fatalf("Repins = %d, want 1", m.Stats().Repins)
	}
	if st := c.Stats(); st.Hits != 1 || st.Invalidations != 0 {
		t.Fatalf("stats = %+v, want 1 hit 0 invalidations", st)
	}
}

// TestCacheDropOnCOW: with the conservative policy, mapping-preserving
// invalidations drop entries too.
func TestCacheDropOnCOW(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{DropOnCOW: true})
	addr := h.buf(t, 1<<20)
	segs := []Segment{{addr, 1 << 20}}
	h.eng.Go("app", func(p *sim.Proc) {
		r, _ := c.Get(p, segs)
		m.Acquire(r).Wait(p)
		m.Release(r)
		c.Put(r)
		if err := h.as.MProtect(addr, 1<<20, false); err != nil {
			t.Error(err)
		}
		r2, _ := c.Get(p, segs)
		if r2 == r {
			t.Error("DropOnCOW cache returned the invalidated declaration")
		}
		c.Put(r2)
	})
	h.eng.Run()
	if st := c.Stats(); st.Invalidations != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 invalidation 2 misses", st)
	}
}

// TestCacheEvictionUndeclaresInsideChargedWork: the undeclare of an
// evicted entry must happen inside the charged kernel work, not
// synchronously at eviction-decision time with a detached cost.
func TestCacheEvictionUndeclaresInsideChargedWork(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{Capacity: 1})
	a1 := h.buf(t, 256*1024)
	a2 := h.buf(t, 256*1024)
	h.eng.Go("app", func(p *sim.Proc) {
		r1, _ := c.Get(p, []Segment{{a1, 256 * 1024}})
		c.Put(r1)
		r2, _ := c.Get(p, []Segment{{a2, 256 * 1024}})
		c.Put(r2)
		// The eviction decision has been made (entry detached) but the
		// undeclare is queued kernel work — the driver must still know
		// the region at this instant.
		if c.Len() != 1 {
			t.Errorf("cache len = %d, want 1", c.Len())
		}
		if m.NumRegions() != 2 {
			t.Errorf("NumRegions = %d at eviction time, want 2 (undeclare not yet executed)",
				m.NumRegions())
		}
	})
	h.eng.Run()
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	if m.NumRegions() != 1 {
		t.Fatalf("NumRegions = %d after run, want 1 (victim undeclared)", m.NumRegions())
	}
	if m.Stats().Undeclares != 1 {
		t.Fatalf("Undeclares = %d, want 1", m.Stats().Undeclares)
	}
}

// TestCacheCoalescesInFlightMisses: two threads (cores) missing on the
// same range while the declaration is in flight must produce ONE
// declaration, with the second lookup joining the first — not a second
// Declare whose entry overwrites the first and orphans its refcount.
func TestCacheCoalescesInFlightMisses(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{})
	addr := h.buf(t, 1<<20)
	segs := []Segment{{addr, 1 << 20}}
	coreB := h.machine.Core(1)
	var r1, r2 *Region
	c.GetAsyncOn(h.core, segs, func(r *Region, err error) { r1 = r })
	c.GetAsyncOn(coreB, segs, func(r *Region, err error) { r2 = r })
	h.eng.Run()
	if r1 == nil || r2 == nil {
		t.Fatal("a waiter never completed")
	}
	if r1 != r2 {
		t.Fatal("coalesced misses got different regions")
	}
	if m.Stats().Declares != 1 {
		t.Fatalf("Declares = %d, want 1 (misses must coalesce)", m.Stats().Declares)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != 1 {
		t.Fatalf("stats = %+v, want 1 miss 1 coalesced", st)
	}
	// Both references drain cleanly; nothing orphaned.
	c.Put(r1)
	c.Put(r2)
	h.eng.Run()
	if m.NumRegions() != 1 || c.Len() != 1 {
		t.Fatalf("NumRegions=%d Len=%d, want 1/1", m.NumRegions(), c.Len())
	}
}

// TestCacheCoalescesSubrangeOntoPending: a lookup covered by an in-flight
// declaration joins it and receives a view.
func TestCacheCoalescesSubrangeOntoPending(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{})
	addr := h.buf(t, 1<<20)
	coreB := h.machine.Core(1)
	var whole, sub *Region
	c.GetAsyncOn(h.core, []Segment{{addr, 1 << 20}}, func(r *Region, err error) { whole = r })
	c.GetAsyncOn(coreB, []Segment{{addr + 4096, 64 * 1024}}, func(r *Region, err error) { sub = r })
	h.eng.Run()
	if whole == nil || sub == nil {
		t.Fatal("a waiter never completed")
	}
	if !sub.IsView() || sub.Base() != whole {
		t.Fatalf("subrange joiner: IsView=%v base==whole=%v", sub.IsView(), sub.Base() == whole)
	}
	if m.Stats().Declares != 1 {
		t.Fatalf("Declares = %d, want 1", m.Stats().Declares)
	}
	c.Put(whole)
	c.Put(sub)
}

// TestCacheMergeExtendsOverlappingDeclarations: an overlapping miss
// extends the declaration over the union and retires the old entry, and
// later requests anywhere in the union hit.
func TestCacheMergeExtendsOverlappingDeclarations(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{})
	addr := h.buf(t, 512*1024)
	h.eng.Go("app", func(p *sim.Proc) {
		r1, _ := c.Get(p, []Segment{{addr, 256 * 1024}})
		c.Put(r1)
		// Overlaps [128K, 384K): merged declaration covers [0, 384K).
		r2, _ := c.Get(p, []Segment{{addr + 128*1024, 256 * 1024}})
		if !r2.IsView() {
			t.Error("merge requester should get a view of the union declaration")
		}
		if got := r2.Base().Bytes(); got != 384*1024 {
			t.Errorf("union declaration covers %d bytes, want %d", got, 384*1024)
		}
		c.Put(r2)
		// Anywhere inside the union now hits without declaring.
		r3, _ := c.Get(p, []Segment{{addr + 64*1024, 64 * 1024}})
		if r3.Base() != r2.Base() {
			t.Error("post-merge request missed the union declaration")
		}
		c.Put(r3)
	})
	h.eng.Run()
	st := c.Stats()
	if st.Misses != 2 || st.Merges != 1 || st.SubrangeHits != 1 {
		t.Fatalf("stats = %+v, want 2 misses 1 merge 1 subrange hit", st)
	}
	if m.NumRegions() != 1 {
		t.Fatalf("NumRegions = %d, want 1 (old entry retired and undeclared)", m.NumRegions())
	}
}

// TestCacheByteBudgetEviction: the byte budget evicts idle entries even
// when the entry-count capacity is not exceeded.
func TestCacheByteBudgetEviction(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{ByteCapacity: 1 << 20})
	bufs := []vm.Addr{h.buf(t, 512*1024), h.buf(t, 512*1024), h.buf(t, 512*1024)}
	h.eng.Go("app", func(p *sim.Proc) {
		for _, a := range bufs {
			r, _ := c.Get(p, []Segment{{a, 512 * 1024}})
			c.Put(r)
		}
	})
	h.eng.Run()
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite byte budget pressure")
	}
	if c.Bytes() > 1<<20 {
		t.Fatalf("cached bytes %d exceed budget %d", c.Bytes(), 1<<20)
	}
}

// TestCacheSizeWeightedEvictor: under "size" eviction the largest idle
// entry goes first even if it is the most recently used.
func TestCacheSizeWeightedEvictor(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{ByteCapacity: 1 << 20, Eviction: "size"})
	small := h.buf(t, 128*1024)
	big := h.buf(t, 768*1024)
	mid := h.buf(t, 256*1024)
	h.eng.Go("app", func(p *sim.Proc) {
		r1, _ := c.Get(p, []Segment{{small, 128 * 1024}})
		c.Put(r1)
		r2, _ := c.Get(p, []Segment{{big, 768 * 1024}}) // most recent, but biggest
		c.Put(r2)
		r3, _ := c.Get(p, []Segment{{mid, 256 * 1024}}) // pushes bytes to 1152K > 1M
		c.Put(r3)
		// The big entry must be the victim; small and mid still hit.
		r4, _ := c.Get(p, []Segment{{small, 128 * 1024}})
		c.Put(r4)
		r5, _ := c.Get(p, []Segment{{mid, 256 * 1024}})
		c.Put(r5)
	})
	h.eng.Run()
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	if st.Hits != 2 {
		t.Fatalf("Hits = %d, want 2 (small+mid survived, big evicted)", st.Hits)
	}
}

// TestCachePendingInvalidatedNotCached: an unmap racing an in-flight
// declaration poisons it — the waiters still get their (doomed) region,
// but it is never cached, and a later request re-declares.
func TestCachePendingInvalidatedNotCached(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{})
	addr := h.buf(t, 1<<20)
	segs := []Segment{{addr, 1 << 20}}
	var r1 *Region
	c.GetAsyncOn(h.core, segs, func(r *Region, err error) { r1 = r })
	// The free lands after the lookup created the pending declaration but
	// while the declare cost is still being charged (lookup takes 150ns,
	// the declare another ~440ns).
	h.eng.After(300*sim.Nanosecond, func() {
		if err := h.al.Free(addr); err != nil {
			t.Error(err)
		}
	})
	h.eng.Run()
	if r1 == nil {
		t.Fatal("waiter never completed")
	}
	if c.Len() != 0 {
		t.Fatalf("poisoned declaration was cached (len=%d)", c.Len())
	}
	c.Put(r1)
	h.eng.Run()
	if m.NumRegions() != 0 {
		t.Fatalf("NumRegions = %d, want 0 (poisoned declaration dropped at last Put)", m.NumRegions())
	}
}

// TestCacheViewAccessMapsOffsets: data written through a view lands at
// the right offset of the parent declaration.
func TestCacheViewAccessMapsOffsets(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{})
	addr := h.buf(t, 1<<20)
	const viewOff = 256 * 1024
	h.eng.Go("app", func(p *sim.Proc) {
		whole, _ := c.Get(p, []Segment{{addr, 1 << 20}})
		view, _ := c.Get(p, []Segment{{addr + viewOff, 128 * 1024}})
		if err := m.Acquire(view).Wait(p); err != nil {
			t.Errorf("acquire view: %v", err)
			return
		}
		if !view.Pinned() || view.PinnedPages() != view.Pages() {
			t.Errorf("view not pinned: pinned=%v pages=%d/%d", view.Pinned(), view.PinnedPages(), view.Pages())
		}
		src := []byte("through-the-view")
		if err := view.WriteAt(100, src); err != nil {
			t.Errorf("view write: %v", err)
		}
		dst := make([]byte, len(src))
		if err := whole.ReadAt(viewOff+100, dst); err != nil {
			t.Errorf("parent read: %v", err)
		}
		if string(dst) != string(src) {
			t.Errorf("view offset mapping wrong: %q != %q", dst, src)
		}
		if !view.Ready(0, 128*1024) || view.Ready(-1, 10) || view.Ready(0, 128*1024+1) {
			t.Error("view Ready bounds wrong")
		}
		m.Release(view)
		c.Put(view)
		c.Put(whole)
	})
	h.eng.Run()
}

func TestCacheCostsCharged(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: OnDemand})
	c := cacheOn(h, m, CacheConfig{})
	addr := h.buf(t, 256*1024)
	segs := []Segment{{addr, 256 * 1024}}
	h.eng.Go("app", func(p *sim.Proc) {
		r, _ := c.Get(p, segs)
		c.Put(r)
	})
	h.eng.Run()
	if h.core.BusyTime(0)+h.core.BusyTime(1)+h.core.BusyTime(2) == 0 {
		t.Fatal("cache charged no CPU time")
	}
}

// TestCachePinAheadReArmsAfterInvalidation: under a PinAtDeclare backend
// the fresh declaration after an unmap-invalidation starts a new
// speculative pin — the RequiresCache interplay the pin-ahead policy
// depends on.
func TestCachePinAheadReArmsAfterInvalidation(t *testing.T) {
	h := newHarness(t)
	m := h.manager(ManagerConfig{Policy: PinAhead})
	c := cacheOn(h, m, CacheConfig{})
	addr := h.buf(t, 512*1024)
	segs := []Segment{{addr, 512 * 1024}}
	h.eng.Go("app", func(p *sim.Proc) {
		r, _ := c.Get(p, segs) // declare-time speculative pin
		c.Put(r)
		p.Sleep(sim.Millisecond) // let the speculation finish
		if err := h.al.Free(addr); err != nil {
			t.Error(err)
		}
		p.Yield()
		if _, err := h.al.Malloc(512 * 1024); err != nil {
			t.Error(err)
		}
		r2, _ := c.Get(p, segs) // fresh declaration re-arms the speculation
		if r2 == r {
			t.Error("stale declaration after unmap under pin-ahead")
		}
		c.Put(r2)
		p.Sleep(sim.Millisecond)
	})
	h.eng.Run()
	if got := m.Stats().SpeculativePins; got != 2 {
		t.Fatalf("SpeculativePins = %d, want 2 (re-armed after invalidation)", got)
	}
}

func TestKeyDeterminism(t *testing.T) {
	segs := []Segment{{0x1000, 50}, {0x2000, 60}}
	if key(segs) != key([]Segment{{0x1000, 50}, {0x2000, 60}}) {
		t.Fatal("identical segment lists produced different keys")
	}
	if key(segs) == key([]Segment{{0x2000, 60}, {0x1000, 50}}) {
		t.Fatal("order-swapped segments collided")
	}
	if key(segs) == key(segs[:1]) {
		t.Fatal("prefix collided")
	}
}
